// Quickstart: elect a leader communication-efficiently among five
// simulated processes and watch the message economy.
//
// This is the smallest end-to-end use of the library: build a scenario
// (system size, link regime, algorithm), run it on the deterministic
// simulator, and read off the Omega verdict and the message accounting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Five processes, all links eventually timely, network chaotic for
	// the first 200ms (GST), then delays bounded by 2ms.
	sys, err := scenario.Build(scenario.Config{
		N:         5,
		Seed:      42,
		Algorithm: scenario.AlgoCore, // the paper's communication-efficient Omega
		Regime:    scenario.RegimeAllET,
		GST:       sim.At(200 * time.Millisecond),
	})
	if err != nil {
		return err
	}

	// Watch the leader outputs converge second by second.
	fmt.Println("time     leaders (one column per process)")
	for step := 0; step < 5; step++ {
		sys.Run(time.Second)
		fmt.Printf("%-8v", sys.World.Kernel.Now())
		for _, l := range sys.Leaders() {
			fmt.Printf(" p%v", l)
		}
		fmt.Println()
	}

	rep := sys.OmegaReport()
	if !rep.Holds {
		return fmt.Errorf("omega violated: %s", rep.Reason)
	}
	fmt.Printf("\nOmega holds: every process trusts p%v (stable since %v)\n", rep.Leader, rep.StabilizedAt)

	// Communication efficiency: in the last second of the run, only the
	// leader sent anything, on exactly n-1 links.
	tail := sys.World.Kernel.Now().Add(-time.Second)
	ce := sys.CommEffReport(tail)
	fmt.Printf("communication-efficient: %v\n", ce.Efficient)
	fmt.Printf("  senders in final second: %v\n", ce.Senders)
	fmt.Printf("  links in use:            %d (n-1 = %d)\n", ce.LinksUsed, sys.Config.N-1)
	fmt.Printf("  messages per η:          %.1f\n", ce.MessagesPerPeriod)

	// The crash test: kill the leader and watch a new one take over.
	fmt.Printf("\ncrashing p%v...\n", rep.Leader)
	sys.World.Crash(rep.Leader)
	sys.Run(2 * time.Second)
	rep2 := sys.OmegaReport()
	if !rep2.Holds {
		return fmt.Errorf("omega violated after crash: %s", rep2.Reason)
	}
	fmt.Printf("re-elected: every survivor now trusts p%v (took %v)\n",
		rep2.Leader, rep2.StabilizedAt-sys.World.Kernel.Now().Add(-2*time.Second))
	_ = node.None
	return nil
}
