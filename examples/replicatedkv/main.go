// Replicatedkv: a tiny replicated key-value store on top of the repeated
// consensus engine (internal/consensus/rsm), itself driven by the
// communication-efficient Omega.
//
// Commands are "SET key value" strings decided into a shared log; every
// replica applies the log in order via the engine's OnApply hook — the
// engine batches bursts of commands into shared instances and unpacks
// them again at apply time, so the store never sees batch envelopes. With
// Forget on, applied log prefixes are pruned cluster-wide, keeping each
// replica's memory bounded. All stores converge to the same state —
// through a leader crash in the middle of the write stream.
//
// Each replica also writes through a real write-ahead log
// (internal/durable, DESIGN.md §15): acceptor promises and votes are on
// disk before they are on the wire, and a checkpoint every few applied
// commands keeps the log short. After the run, the example reopens one
// replica's WAL directory offline — exactly what a kill -9'd process
// would see at restart — rebuilds the store from checkpoint + decided
// tail, and checks it matches the live replicas bit for bit.
//
//	go run ./examples/replicatedkv
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/network"
	"repro/internal/node"
)

// store is a replica's state machine. The engine invokes apply through
// its OnApply hook, in log order, once per command — batch envelopes are
// already unpacked.
type store struct {
	data    map[string]string
	applied int // commands applied, noops included
}

func newStore() *store { return &store{data: make(map[string]string)} }

func (s *store) apply(cmd string) {
	s.applied++
	if cmd == string(consensus.Noop) {
		return
	}
	parts := strings.SplitN(cmd, " ", 3)
	if len(parts) == 3 && parts[0] == "SET" {
		s.data[parts[1]] = parts[2]
	}
}

// fingerprint doubles as the checkpoint encoding: keys and values in
// this example never contain '=' or ';', so the deterministic
// "k=v;k=v;" form round-trips through restore.
func (s *store) fingerprint() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, s.data[k])
	}
	return b.String()
}

func (s *store) restore(snap string) {
	for _, pair := range strings.Split(snap, ";") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			s.data[k] = v
		}
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	walRoot, err := os.MkdirTemp("", "replicatedkv-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walRoot)

	world, err := node.NewWorld(node.WorldConfig{
		N: n, Seed: 99, DefaultLink: network.Timely(2 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	logs := make([]*rsm.Node, n)
	stores := make([]*store, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(10 * time.Millisecond))
		// SyncOff: page-cache durability survives kill -9, which is the
		// failure mode this example replays. Production would pick
		// SyncAlways or SyncGroup (power-failure durability).
		wal, err := durable.Open(filepath.Join(walRoot, fmt.Sprintf("p%d", i)), durable.Options{Sync: durable.SyncOff})
		if err != nil {
			return err
		}
		stores[i] = newStore()
		st := stores[i]
		logs[i] = rsm.New(det, rsm.Config{
			Forget:        true,
			Store:         wal,
			SnapshotEvery: 5,
			SnapshotState: func() []byte { return []byte(st.fingerprint()) },
			RestoreState:  func(b []byte) { st.restore(string(b)) },
		})
		logs[i].OnApply(func(inst, cmd int, v consensus.Value) { st.apply(string(v)) })
		world.SetAutomaton(node.ID(i), node.Compose(det, logs[i]))
	}
	world.Start()
	world.RunFor(500 * time.Millisecond) // leader elected, ballot prepared

	// Phase 1: clients on different replicas write ten keys.
	fmt.Println("phase 1: 10 writes via replicas p1..p4")
	for i := 0; i < 10; i++ {
		replica := 1 + i%4 // never the leader: exercises forwarding
		logs[replica].Submit(consensus.Value(fmt.Sprintf("SET key%d v%d", i, i)))
	}
	world.RunFor(2 * time.Second)

	// Phase 2: the leader dies mid-stream.
	fmt.Println("phase 2: crash the leader, write 5 more keys")
	world.Crash(0)
	for i := 10; i < 15; i++ {
		logs[2].Submit(consensus.Value(fmt.Sprintf("SET key%d v%d", i, i)))
	}
	world.RunFor(5 * time.Second)

	// Compare the continuously applied states.
	fmt.Println("\nreplica  applied  retained  state fingerprint")
	var want string
	for i := 1; i < n; i++ {
		fp := stores[i].fingerprint()
		fmt.Printf("p%-7d %-8d %-9d %s\n", i, stores[i].applied, logs[i].Retained(), truncate(fp, 55))
		if want == "" {
			want = fp
		} else if fp != want {
			return fmt.Errorf("replica p%d diverged", i)
		}
	}
	for i := 0; i < 15; i++ {
		if stores[1].data[fmt.Sprintf("key%d", i)] != fmt.Sprintf("v%d", i) {
			return fmt.Errorf("key%d missing or wrong", i)
		}
	}
	fmt.Println("\nall surviving replicas converged to the same 15-key state ✓")

	// Phase 3: kill -9 replay. Reopen p1's WAL directory offline — the
	// live handle is deliberately left un-Closed, exactly as a killed
	// process leaves it — and rebuild the store a restart would recover:
	// checkpoint state plus the decided tail above it.
	fmt.Println("\nphase 3: reopen p1's write-ahead log offline, replay, compare")
	recovered, err := recoverStore(filepath.Join(walRoot, "p1"))
	if err != nil {
		return err
	}
	if fp := recovered.fingerprint(); fp != want {
		return fmt.Errorf("recovered state diverged:\n  live %s\n  wal  %s", want, fp)
	}
	fmt.Println("state rebuilt from checkpoint + decided tail matches the live replicas ✓")
	return nil
}

// recoverStore is the offline half of crash-recovery: open the WAL
// directory, install the checkpointed application state, then apply the
// contiguous decided entries above the checkpoint in instance order —
// unpacking batch envelopes the same way the live applier does.
func recoverStore(dir string) (*store, error) {
	w, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	st := w.State()
	if st == nil {
		return nil, fmt.Errorf("recoverStore: %s holds no state", dir)
	}
	s := newStore()
	s.restore(string(st.App))
	s.applied = int(st.SnapCount)
	decided := make(map[uint64]string, len(st.Decided))
	for _, d := range st.Decided {
		decided[d.Inst] = d.V
	}
	for inst := st.SnapIndex; ; inst++ {
		v, ok := decided[inst]
		if !ok {
			return s, nil
		}
		for _, cmd := range rsm.DecodeBatch(consensus.Value(v)) {
			s.apply(string(cmd))
		}
	}
}

func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}
