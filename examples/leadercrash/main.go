// Leadercrash: the economics of re-election under serial leader failures.
//
// Eight processes run the communication-efficient Omega; every two seconds
// the current leader is killed. The program prints, for each reign, who
// led, how long re-election took after the crash, and how many messages
// the system spent — showing that the cost of the algorithm is
// concentrated in the (finite) re-election bursts while steady state stays
// at n−1 messages per η.
//
//	go run ./examples/leadercrash
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 8
	sys, err := scenario.Build(scenario.Config{
		N:         n,
		Seed:      7,
		Algorithm: scenario.AlgoCore,
		Regime:    scenario.RegimeAllTimely,
	})
	if err != nil {
		return err
	}

	fmt.Println("reign  leader  crash at    re-elected in  msgs in reign  msgs/η steady")
	alive := n
	for reign := 0; alive > 1; reign++ {
		startMsgs := sys.World.Stats.TotalSent()
		startAt := sys.World.Kernel.Now()
		sys.Run(2 * time.Second)

		rep := sys.OmegaReport()
		if !rep.Holds {
			return fmt.Errorf("omega violated in reign %d: %s", reign, rep.Reason)
		}
		leader := rep.Leader

		// Steady-state rate over the last 500ms of the reign.
		now := sys.World.Kernel.Now()
		window := now.Add(-500 * time.Millisecond)
		perEta := float64(sys.World.Stats.MessagesInWindow(window, now)) / 50.0

		// Re-election latency: last leader change minus the previous
		// crash (reign 0 has no crash; report the boot convergence).
		elected := rep.StabilizedAt - startAt
		if reign == 0 {
			elected = rep.StabilizedAt
		}

		fmt.Printf("%-6d p%-6v %-11v %-14v %-14d %.1f (n-1=%d)\n",
			reign, leader, sys.World.Kernel.Now(),
			time.Duration(elected),
			sys.World.Stats.TotalSent()-startMsgs,
			perEta, n-1)

		sys.World.Crash(leader)
		alive--
	}

	// With one process left, it trusts itself and talks to no one alive.
	sys.Run(time.Second)
	last := survivors(sys)
	fmt.Printf("\nlast survivor: p%v, trusting p%v\n", last[0], sys.Leaders()[last[0]])
	return nil
}

func survivors(sys *scenario.System) []node.ID {
	var out []node.ID
	for i := 0; i < sys.Config.N; i++ {
		if sys.World.Alive(node.ID(i)) {
			out = append(out, node.ID(i))
		}
	}
	return out
}

var _ = sim.TimeZero
