// Livecluster: the same communication-efficient Omega automatons, but on
// real goroutines, wall-clock timers and UDP sockets instead of the
// deterministic simulator — messages cross real process boundaries through
// the binary wire codec.
//
// The program starts a five-endpoint UDP cluster on the loopback
// interface, waits for leader agreement, measures steady-state traffic,
// kills the leader and waits for the re-election.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	dets := make([]*core.Detector, n)
	autos := make([]node.Automaton, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(20 * time.Millisecond))
		autos[i] = dets[i]
	}
	cluster, err := transport.NewUDPCluster(transport.Config{N: n, Seed: 1, Quiet: true}, autos)
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Println("five UDP endpoints on 127.0.0.1:")
	for i := 0; i < n; i++ {
		fmt.Printf("  p%d @ %v\n", i, cluster.Addr(node.ID(i)))
	}

	leader, err := waitAgreement(dets, nil, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("\nleader agreed: p%v\n", leader)

	// Steady-state traffic: sample one second of sends.
	time.Sleep(300 * time.Millisecond)
	before := cluster.Stats().TotalSent()
	time.Sleep(time.Second)
	rate := cluster.Stats().TotalSent() - before
	fmt.Printf("steady-state traffic: %d msgs/s ≈ (n-1)·(1s/η) = %d\n", rate, (n-1)*50)

	fmt.Printf("\nkilling p%v...\n", leader)
	start := time.Now()
	cluster.Crash(leader)
	newLeader, err := waitAgreement(dets, map[node.ID]bool{leader: true}, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("re-elected p%v in %v (wall clock)\n", newLeader, time.Since(start).Round(time.Millisecond))
	fmt.Printf("total traffic: %s\n", cluster.Stats().Summary())
	return nil
}

// waitAgreement polls the detector histories (thread-safe) until every
// non-skipped process outputs the same leader.
func waitAgreement(dets []*core.Detector, skip map[node.ID]bool, timeout time.Duration) (node.ID, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		leader := node.None
		agreed := true
		for i, d := range dets {
			if skip[node.ID(i)] {
				continue
			}
			l := d.History().Current()
			if leader == node.None {
				leader = l
			} else if l != leader {
				agreed = false
				break
			}
		}
		if agreed && leader != node.None && !skip[leader] {
			return leader, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return node.None, fmt.Errorf("no agreement within %v", timeout)
}
