package repro

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeBuildAndRun(t *testing.T) {
	sys, err := Build(Scenario{N: 4, Seed: 1, Algorithm: AlgoCore, Regime: RegimeAllTimely})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Second)
	rep := sys.OmegaReport()
	if !rep.Holds || rep.Leader != 0 {
		t.Fatalf("facade scenario did not converge: %+v", rep)
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var b strings.Builder
	if err := RunExperiment(&b, "E5", ExperimentOpts{Quick: true, Seeds: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "links used") {
		t.Fatalf("unexpected output: %q", b.String())
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	if _, err := Build(Scenario{N: 0}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
