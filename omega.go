// Package repro is a reproduction of "Communication-efficient leader
// election and consensus with limited link synchrony" (Aguilera,
// Delporte-Gallet, Fauconnier, Toueg — PODC 2004).
//
// The repository implements, from scratch and on the standard library
// only:
//
//   - the paper's communication-efficient Omega failure detector
//     (internal/core): eventual leader election in which, after
//     stabilization, only the leader sends messages — n−1 links in use
//     forever — under reliable links and a single eventually-timely
//     source;
//   - the weak-assumption gossiped-counter Omega and the classic
//     all-to-all heartbeat detector as baselines (internal/detector/...);
//   - leader-driven consensus: a single-decree synod protocol and a
//     repeated-consensus replicated log whose steady state is Θ(n)
//     messages per decision, against a rotating-coordinator Θ(n²)
//     baseline (internal/consensus/...);
//   - the substrates they need: a deterministic discrete-event simulator,
//     link models with GST-style partial synchrony, a process runtime,
//     metrics, tracing, property checkers, a binary wire codec, and live
//     goroutine/UDP transports.
//
// This file is the front door: build and run a scenario, check the
// paper's properties on it, or regenerate the full experiment suite. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for results.
package repro

import (
	"io"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// Re-exported scenario vocabulary. A Scenario pairs a leader-election
// algorithm with a link-synchrony regime and a failure plan; Build wires
// it onto the deterministic simulator.
type (
	// Scenario configures a runnable system (see scenario.Config).
	Scenario = scenario.Config
	// System is a built scenario: world, detectors, checkers.
	System = scenario.System
	// Algorithm selects an Omega implementation.
	Algorithm = scenario.Algorithm
	// Regime selects a link-synchrony configuration.
	Regime = scenario.Regime
	// Crash schedules a process failure.
	Crash = scenario.Crash
	// OmegaReport is the Omega-property verdict for a run.
	OmegaReport = check.OmegaReport
	// CommEffReport is the communication-efficiency verdict for a run.
	CommEffReport = check.CommEffReport
	// ExperimentOpts scales the experiment suite.
	ExperimentOpts = experiments.Opts
)

// Algorithms and regimes.
const (
	// AlgoCore is the paper's communication-efficient Omega.
	AlgoCore = scenario.AlgoCore
	// AlgoAllToAll is the classic all-to-all heartbeat baseline.
	AlgoAllToAll = scenario.AlgoAllToAll
	// AlgoSource is the gossiped-counter weak-assumption baseline.
	AlgoSource = scenario.AlgoSource

	// RegimeAllTimely: every link timely from time zero.
	RegimeAllTimely = scenario.RegimeAllTimely
	// RegimeAllET: every link eventually timely (GST).
	RegimeAllET = scenario.RegimeAllET
	// RegimeSourceReliable: one ◊-source, reliable asynchronous rest.
	RegimeSourceReliable = scenario.RegimeSourceReliable
	// RegimeSourceFairLossy: one ◊-source, fair-lossy rest.
	RegimeSourceFairLossy = scenario.RegimeSourceFairLossy
	// RegimeLossy: arbitrary loss everywhere.
	RegimeLossy = scenario.RegimeLossy
)

// Build constructs a runnable system from a scenario.
func Build(cfg Scenario) (*System, error) { return scenario.Build(cfg) }

// RunExperiments regenerates the full E1–E13 suite (DESIGN.md §4),
// writing rendered tables and figures to w.
func RunExperiments(w io.Writer, opts ExperimentOpts) error {
	return experiments.RunAll(w, opts)
}

// RunExperiment regenerates a single experiment by id, e.g. "E3".
func RunExperiment(w io.Writer, id string, opts ExperimentOpts) error {
	return experiments.RunOne(w, id, opts)
}
