// Command traceview merges flight-recorder dumps (written by chaossoak,
// consload, or omegasim under -trace-dir) into one causally ordered
// timeline: request latency percentiles with a per-stage breakdown
// (queue / quorum / wire / apply), the reconstructed leader-election
// downtime intervals, the slowest request's span tree, and optionally
// the whole merge as Chrome trace_event JSON.
//
// Usage examples:
//
//	traceview /tmp/dumps                       # summary + slowest request
//	traceview -top 3 runA/ runB/               # merge two runs
//	traceview -chrome out.json /tmp/dumps      # open in chrome://tracing
//	traceview -require-request -require-election /tmp/dumps   # CI gate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/traceview"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		top        = fs.Int("top", 1, "print the span trees of the N slowest complete requests")
		chrome     = fs.String("chrome", "", "also write the merged timeline as Chrome trace_event JSON to this file")
		reqRequest = fs.Bool("require-request", false, "exit nonzero unless at least one complete request chain (request→queue→quorum→apply) was reconstructed")
		reqElect   = fs.Bool("require-election", false, "exit nonzero unless at least one leader-election transition was captured")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: traceview [flags] <dump-dir-or-file>...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("traceview: no dump directories given")
	}

	m, err := traceview.Load(fs.Args()...)
	if err != nil {
		return err
	}
	traces := traceview.BuildTraces(m)
	reqs := traceview.Requests(traces)
	el := traceview.Elections(m)
	traceview.WriteSummary(os.Stdout, m, traces, reqs, el)

	// Slowest complete requests, whole-chain trees.
	complete := make([]traceview.Request, 0, len(reqs))
	for _, r := range reqs {
		if r.Complete {
			complete = append(complete, r)
		}
	}
	sort.Slice(complete, func(i, j int) bool { return complete[i].Stages.Total > complete[j].Stages.Total })
	byID := make(map[uint64]traceview.Trace, len(traces))
	for _, tr := range traces {
		byID[tr.ID] = tr
	}
	for i := 0; i < *top && i < len(complete); i++ {
		r := complete[i]
		fmt.Printf("\nslowest #%d: total %v (queue %v quorum %v wire %v apply %v)\n",
			i+1, r.Stages.Total, r.Stages.Queue, r.Stages.Quorum, r.Stages.Wire, r.Stages.Apply)
		traceview.WriteTraceTree(os.Stdout, byID[r.Trace])
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return fmt.Errorf("traceview: -chrome: %w", err)
		}
		werr := traceview.WriteChrome(f, m)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("chrome:    wrote %s (%d spans)\n", *chrome, len(m.Spans))
	}

	if *reqRequest && len(complete) == 0 {
		return fmt.Errorf("traceview: -require-request: no complete request chain in %d dumps (%d traced requests)", len(m.Files), len(reqs))
	}
	if *reqElect && el.Changes == 0 {
		return fmt.Errorf("traceview: -require-election: no leader-change marks in %d dumps", len(m.Files))
	}
	return nil
}
