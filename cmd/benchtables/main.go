// Command benchtables regenerates every experiment table and figure
// (E1–E13) of the reproduction. The output is the source of the numbers
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtables             # run the full suite
//	benchtables -quick      # scaled-down sweeps (CI-sized)
//	benchtables -only E3    # a single experiment
//	benchtables -seeds 10   # more seeds per cell
//	benchtables -j 4        # four sweep workers
//	benchtables -parallel=false  # force the sequential path
//
// Independent (cell, seed) runs are fanned across CPU cores; results are
// merged deterministically, so the output is byte-identical for any -j.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "run scaled-down sweeps")
	only := flag.String("only", "", "run a single experiment by id (e.g. E3)")
	seeds := flag.Int("seeds", 0, "seeds per cell (default 5, quick 2)")
	md := flag.Bool("md", false, "emit markdown sections (the EXPERIMENTS.md format)")
	parallel := flag.Bool("parallel", true, "fan independent runs across CPU cores")
	jobs := flag.Int("j", 0, "sweep workers (0 = one per core; implies -parallel)")
	flag.Parse()

	workers := *jobs
	if !*parallel && *jobs == 0 {
		workers = 1
	}
	opts := experiments.Opts{Quick: *quick, Seeds: *seeds, Workers: workers}
	if *only != "" {
		return experiments.RunOne(os.Stdout, *only, opts)
	}
	if *md {
		return experiments.RunAllMarkdown(os.Stdout, opts)
	}
	return experiments.RunAll(os.Stdout, opts)
}
