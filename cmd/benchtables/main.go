// Command benchtables regenerates every experiment table and figure
// (E1–E13) of the reproduction. The output is the source of the numbers
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtables             # run the full suite
//	benchtables -quick      # scaled-down sweeps (CI-sized)
//	benchtables -only E3    # a single experiment
//	benchtables -seeds 10   # more seeds per cell
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "run scaled-down sweeps")
	only := flag.String("only", "", "run a single experiment by id (e.g. E3)")
	seeds := flag.Int("seeds", 0, "seeds per cell (default 5, quick 2)")
	md := flag.Bool("md", false, "emit markdown sections (the EXPERIMENTS.md format)")
	flag.Parse()

	opts := experiments.Opts{Quick: *quick, Seeds: *seeds}
	if *only != "" {
		return experiments.RunOne(os.Stdout, *only, opts)
	}
	if *md {
		return experiments.RunAllMarkdown(os.Stdout, opts)
	}
	return experiments.RunAll(os.Stdout, opts)
}
