package main

import (
	"os"
	"testing"
)

// The smoke tests run a short burst on each transport and rely on run's
// own sanity check (delivered > 0). They ride in `make test-race`.

func TestRunMem(t *testing.T) {
	if err := run([]string{"-transport", "mem", "-n", "3", "-rate", "500", "-dur", "300ms"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunUDP(t *testing.T) {
	if err := run([]string{"-transport", "udp", "-n", "3", "-rate", "500", "-dur", "300ms"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTCPBothVersions(t *testing.T) {
	for _, v := range []string{"varint", "fixed"} {
		if err := run([]string{"-transport", "tcp", "-n", "3", "-rate", "500", "-dur", "300ms", "-version", v}, os.Stdout); err != nil {
			t.Fatalf("version %s: %v", v, err)
		}
	}
}

func TestRunTCPPerFrameBaseline(t *testing.T) {
	if err := run([]string{"-transport", "tcp", "-n", "2", "-rate", "500", "-dur", "300ms", "-batch-frames", "1"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunVectorPayload(t *testing.T) {
	if err := run([]string{"-transport", "mem", "-n", "3", "-rate", "500", "-dur", "300ms", "-msg", "vector"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown transport": {"-transport", "smoke-signal"},
		"unknown version":   {"-version", "v3"},
		"unknown msg":       {"-msg", "jumbo"},
		"n too small":       {"-n", "1"},
		"zero rate":         {"-rate", "0"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Fatalf("%s: accepted %v", name, args)
		}
	}
}
