// Command wireload is a throughput harness for the live transports: it
// drives an all-to-all heartbeat load — the paper's steady-state traffic
// shape — through a mem, UDP or TCP cluster at a configurable per-link
// rate and reports what the wire actually cost: messages per second,
// bytes per message, allocations per message, and drops. Every number
// comes out of the same obs/metrics pipeline the protocols are
// instrumented with, so the harness measures the path production code
// runs, not a synthetic copy of it.
//
// Usage examples:
//
//	wireload -transport tcp -n 5 -rate 2000 -dur 5s
//	wireload -transport udp -n 3 -version fixed -msg vector
//	wireload -transport tcp -batch-frames 1   # pre-batching baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/detector/source"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cluster is the transport surface the load generator drives; all three
// live clusters satisfy it.
type cluster interface {
	Start()
	Stop()
	Inject(from, to node.ID, m node.Message)
	Stats() *metrics.MessageStats
}

// nop is a silent automaton: wireload's traffic is injected from the
// pacing goroutines, so the stations only receive.
type nop struct{}

func (nop) Start(node.Env)                {}
func (nop) Tick(string)                   {}
func (nop) Deliver(node.ID, node.Message) {}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wireload", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "tcp", "live transport: mem, udp, tcp")
		n             = fs.Int("n", 3, "number of processes")
		rate          = fs.Int("rate", 1000, "messages per second per directed link")
		dur           = fs.Duration("dur", 3*time.Second, "how long to drive the load")
		seed          = fs.Int64("seed", 1, "delay/loss randomness seed")
		version       = fs.String("version", "varint", "wire encoding: varint, fixed")
		msgName       = fs.String("msg", "hb", "payload: hb (leader heartbeat), vector (SOURCE counter vector)")
		sendQueue     = fs.Int("sendqueue", 0, "TCP per-link queue bound (0 = default)")
		batchFrames   = fs.Int("batch-frames", 0, "TCP coalescing frame cap (0 = default, 1 = per-frame writes)")
		batchBytes    = fs.Int("batch-bytes", 0, "TCP coalescing byte cap (0 = default)")
		metricsAddr   = fs.String("metrics-addr", "", "serve /metrics, /healthz and pprof on this address (e.g. :8080)")
		snapshotJSON  = fs.String("snapshot-json", "", "write the final merged metrics+histogram snapshot to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("wireload: n = %d, need at least 2", *n)
	}
	if *rate <= 0 || *dur <= 0 {
		return fmt.Errorf("wireload: rate and dur must be positive")
	}

	codec := wire.NewCodec()
	switch *version {
	case "varint":
		codec.SetEncodeVersion(wire.VersionVarint)
	case "fixed":
		codec.SetEncodeVersion(wire.VersionFixed)
	default:
		return fmt.Errorf("wireload: unknown version %q (want varint, fixed)", *version)
	}

	var msg node.Message
	switch *msgName {
	case "hb":
		msg = core.LeaderMsg{Epoch: 7}
	case "vector":
		counters := make([]uint64, *n)
		for i := range counters {
			counters[i] = uint64(3 * i)
		}
		msg = source.AliveMsg{Counters: counters}
	default:
		return fmt.Errorf("wireload: unknown msg %q (want hb, vector)", *msgName)
	}

	autos := make([]node.Automaton, *n)
	for i := range autos {
		autos[i] = nop{}
	}
	tel := telemetry.New(*n)
	cfg := transport.Config{
		N: *n, Seed: *seed, Quiet: true,
		Codec:       codec,
		SendQueue:   *sendQueue,
		BatchFrames: *batchFrames,
		BatchBytes:  *batchBytes,
		Observer:    tel,
	}
	var c cluster
	var err error
	switch *transportName {
	case "mem":
		c, err = transport.NewCluster(cfg, autos)
	case "udp":
		c, err = transport.NewUDPCluster(cfg, autos)
	case "tcp":
		c, err = transport.NewTCPCluster(cfg, autos)
	default:
		return fmt.Errorf("wireload: unknown transport %q (want mem, udp, tcp)", *transportName)
	}
	if err != nil {
		return err
	}
	tel.AttachStats(c.Stats())
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, tel)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: serving /metrics, /healthz, /debug/pprof on http://%s\n", srv.Addr())
	}
	c.Start()

	// One pacing goroutine per sender: every tick it injects the messages
	// the elapsed time owes on each of its n-1 out-links, round-robin, so
	// the load is all-to-all at -rate per directed link. Bursts within a
	// tick are exactly what coalescing should absorb.
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	begin := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(*n)
	for i := 0; i < *n; i++ {
		go func(from int) {
			defer wg.Done()
			const tick = 2 * time.Millisecond
			t := time.NewTicker(tick)
			defer t.Stop()
			sent := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				owed := int(float64(*rate)*time.Since(begin).Seconds()) - sent
				for k := 0; k < owed; k++ {
					for to := 0; to < *n; to++ {
						if to == from {
							continue
						}
						c.Inject(node.ID(from), node.ID(to), msg)
					}
					sent++
				}
			}
		}(i)
	}
	time.Sleep(*dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(begin)
	c.Stop()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	s := c.Stats()
	sent, delivered, dropped := s.TotalSent(), s.Delivered(), s.Dropped()
	wireBytes := s.WireBytes()
	report := func(f string, args ...any) { fmt.Fprintf(out, f+"\n", args...) }
	report("wireload: %s n=%d rate=%d/link dur=%v version=%s msg=%s",
		*transportName, *n, *rate, elapsed.Round(time.Millisecond), *version, *msgName)
	report("  sent      %10d  (%.0f msgs/sec offered)", sent, float64(sent)/elapsed.Seconds())
	report("  delivered %10d  (%.0f msgs/sec)", delivered, float64(delivered)/elapsed.Seconds())
	report("  dropped   %10d", dropped)
	if sent > 0 {
		report("  wire      %10d B  (%.1f B/msg)", wireBytes, float64(wireBytes)/float64(sent))
		allocs := memAfter.Mallocs - memBefore.Mallocs
		report("  allocs    %10d  (%.2f allocs/msg end to end)", allocs, float64(allocs)/float64(sent))
	}
	if hb := tel.HeartbeatJitter(); hb.Count > 0 {
		report("  hb-gap    p50=%v p99=%v max=%v (per-link inter-arrival)",
			hb.Quantile(0.5), hb.Quantile(0.99), hb.Max)
	}
	if *snapshotJSON != "" {
		if err := tel.WriteJSON(*snapshotJSON); err != nil {
			return err
		}
		report("  snapshot  wrote %s", *snapshotJSON)
	}
	if delivered == 0 {
		return fmt.Errorf("wireload: nothing delivered — transport broken")
	}
	return nil
}
