package main

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestParseCrashes(t *testing.T) {
	plan, err := parseCrashes("0@300ms,2@1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("len = %d", len(plan))
	}
	if plan[0].ID != 0 || plan[0].At != sim.At(300*time.Millisecond) {
		t.Fatalf("plan[0] = %+v", plan[0])
	}
	if plan[1].ID != 2 || plan[1].At != sim.At(time.Second) {
		t.Fatalf("plan[1] = %+v", plan[1])
	}
}

func TestParseCrashesEmpty(t *testing.T) {
	plan, err := parseCrashes("")
	if err != nil || plan != nil {
		t.Fatalf("plan=%v err=%v", plan, err)
	}
}

func TestParseCrashesErrors(t *testing.T) {
	for _, bad := range []string{"nonsense", "1@", "@3s", "1@xyz", "1-3s"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the whole CLI path on a small scenario; output goes to
	// the test's stdout.
	err := run([]string{"-n", "3", "-algo", "core", "-run", "200ms", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCrashAndTrace(t *testing.T) {
	err := run([]string{"-n", "3", "-algo", "alltoall", "-run", "100ms", "-crash", "0@20ms", "-trace"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRelayAlgorithmOnTimelyPathRegime(t *testing.T) {
	err := run([]string{"-n", "4", "-algo", "core-relay", "-regime", "timely-path", "-run", "500ms"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestRunRejectsBadCrashSpec(t *testing.T) {
	if err := run([]string{"-crash", "zzz"}); err == nil {
		t.Fatal("bad crash spec accepted")
	}
}

func TestRunSweep(t *testing.T) {
	if err := run([]string{"-n", "3", "-algo", "core", "-run", "500ms", "-sweep", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepRejectsBadRegime(t *testing.T) {
	if err := run([]string{"-regime", "nope", "-sweep", "2"}); err == nil {
		t.Fatal("bad regime accepted in sweep")
	}
}
