// Command omegasim runs one leader-election scenario on the deterministic
// simulator and reports what happened: final leaders, the Omega and
// communication-efficiency verdicts, message accounting, and (optionally)
// the full event trace.
//
// Usage examples:
//
//	omegasim -n 5 -algo core -regime all-et -gst 500ms -run 5s
//	omegasim -n 5 -algo alltoall -crash 0@300ms,1@600ms -run 3s
//	omegasim -n 4 -algo source -regime source-fairlossy -drop 0.4 -run 60s
//	omegasim -n 3 -algo core -run 1s -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("omegasim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 5, "number of processes")
		seed     = fs.Int64("seed", 1, "random seed")
		algo     = fs.String("algo", "core", "algorithm: core, core-nogrowth, core-noguard, core-noaccuse, alltoall, source")
		regime   = fs.String("regime", "all-timely", "link regime: all-timely, all-et, source-reliable, source-fairlossy, lossy")
		gst      = fs.Duration("gst", 0, "global stabilization time")
		eta      = fs.Duration("eta", 10*time.Millisecond, "heartbeat period η")
		drop     = fs.Float64("drop", 0.3, "drop probability for lossy regimes")
		source   = fs.Int("source", 0, "◊-source process id (default n-1)")
		runFor   = fs.Duration("run", 3*time.Second, "virtual time to simulate")
		crashes  = fs.String("crash", "", "crash plan, e.g. 0@300ms,2@1s")
		trace    = fs.Bool("trace", false, "print the full event trace")
		sweepN   = fs.Int("sweep", 0, "run this many seeds and report aggregate verdicts")
		jobs     = fs.Int("j", 0, "sweep workers (0 = one per core; output is identical for any value)")
		metrics  = fs.String("metrics-addr", "", "serve the run's telemetry (/metrics, /healthz, pprof) on this address and keep serving after the run until interrupted")
		traceDir = fs.String("trace-dir", "", "record leader-election spans and write a flight-recorder dump into this directory; feed it to traceview")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plan, err := parseCrashes(*crashes)
	if err != nil {
		return err
	}
	if *sweepN > 0 {
		if *traceDir != "" {
			return fmt.Errorf("omegasim: -trace-dir records a single run; it cannot be combined with -sweep")
		}
		return runSweep(sweepParams{
			n: *n, algo: *algo, regime: *regime, gst: *gst, eta: *eta,
			drop: *drop, source: *source, runFor: *runFor, plan: plan,
			seeds: *sweepN, workers: *jobs,
		})
	}
	cfg := scenario.Config{
		N:           *n,
		Seed:        *seed,
		Algorithm:   scenario.Algorithm(*algo),
		Regime:      scenario.Regime(*regime),
		Eta:         *eta,
		GST:         sim.At(*gst),
		DropProb:    *drop,
		Source:      node.ID(*source),
		Crashes:     plan,
		EnableTrace: *trace,
	}
	var tel *telemetry.Collector
	if *metrics != "" {
		tel = telemetry.New(*n)
		cfg.Observer = tel
	}
	sys, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	if tel != nil {
		// The collector reads the simulator's virtual clock; after the
		// run it freezes at the horizon, so scraped gauges describe the
		// run's final instant.
		tel.AttachStats(sys.World.Stats)
		tel.SetClock(sys.World.Kernel.Now)
		for i, om := range sys.Omegas {
			tel.WatchOmega(node.ID(i), om.History())
		}
	}
	var tset *tracing.Set
	if *traceDir != "" {
		// Leader-output transitions become "leader-change" marks stamped
		// with virtual time; crashes from the plan are marked at their
		// scheduled instants so traceview's agreement replay can exclude
		// dead processes. AddNotify rides alongside telemetry's hook
		// (WatchOmega's SetNotify replaces, so it must come first).
		tset = tracing.New(tracing.Config{Procs: *n, Dir: *traceDir})
		for i, om := range sys.Omegas {
			om.History().AddNotify(tset.WatchLeader(i))
		}
		for _, cr := range plan {
			tset.Tracer(int(cr.ID)).Mark(cr.At, "down", -1)
		}
	}
	sys.Run(*runFor)

	fmt.Printf("scenario: n=%d algo=%s regime=%s gst=%v seed=%d run=%v\n",
		*n, *algo, *regime, *gst, *seed, *runFor)
	fmt.Printf("leaders:  ")
	for i, l := range sys.Leaders() {
		alive := " "
		if !sys.World.Alive(node.ID(i)) {
			alive = "†"
		}
		fmt.Printf("p%d%s→p%v  ", i, alive, l)
	}
	fmt.Println()

	rep := sys.OmegaReport()
	if rep.Holds {
		fmt.Printf("omega:    HOLDS — leader p%v, stabilized at %v after %d changes\n",
			rep.Leader, rep.StabilizedAt, rep.Changes)
	} else {
		fmt.Printf("omega:    VIOLATED — %s\n", rep.Reason)
	}

	tail := sim.At(*runFor * 3 / 4)
	ce := sys.CommEffReport(tail)
	fmt.Printf("commeff:  efficient=%v quietSince=%v senders(tail)=%v links(tail)=%d msgs/η(tail)=%.1f\n",
		ce.Efficient, ce.QuietSince, ce.Senders, ce.LinksUsed, ce.MessagesPerPeriod)
	fmt.Printf("traffic:  %s\n", sys.World.Stats.Summary())
	for _, kind := range sys.World.Stats.Kinds() {
		fmt.Printf("          %-10s %d\n", kind, sys.World.Stats.KindCount(kind))
	}

	if *trace {
		fmt.Println("\ntrace:")
		if _, err := sys.World.Trace.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	if tset != nil {
		path, err := tset.Final()
		if err != nil {
			return err
		}
		fmt.Printf("tracing:  %d anomaly dumps; final dump %s\n", tset.Triggered(), path)
	}
	if tel != nil {
		var srvOpts []telemetry.ServeOption
		if tset != nil {
			srvOpts = append(srvOpts, telemetry.WithTraceSource(tset.WriteJSON))
		}
		srv, err := telemetry.Serve(*metrics, tel, srvOpts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving the finished run on http://%s — Ctrl-C to exit\n", srv.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
	}
	return nil
}

// sweepParams carries the scenario knobs for a multi-seed sweep.
type sweepParams struct {
	n       int
	algo    string
	regime  string
	gst     time.Duration
	eta     time.Duration
	drop    float64
	source  int
	runFor  time.Duration
	plan    []scenario.Crash
	seeds   int
	workers int
}

// runSweep executes the scenario across many seeds — fanned across CPU
// cores, one isolated System per seed — and prints aggregate Omega /
// communication-efficiency verdicts: a quick boundary probe without the
// full experiment harness. Per-seed results are aggregated in seed order,
// so the output is identical for any worker count.
func runSweep(p sweepParams) error {
	type verdict struct {
		holds, efficient bool
		changes          int
		err              error
	}
	results := sweep.Map(sweep.New(p.workers), p.seeds, func(seed int) verdict {
		sys, err := scenario.Build(scenario.Config{
			N: p.n, Seed: int64(seed),
			Algorithm: scenario.Algorithm(p.algo),
			Regime:    scenario.Regime(p.regime),
			Eta:       p.eta, GST: sim.At(p.gst), DropProb: p.drop,
			Source: node.ID(p.source), Crashes: p.plan,
		})
		if err != nil {
			return verdict{err: err}
		}
		sys.Run(p.runFor)
		rep := sys.OmegaReport()
		v := verdict{changes: rep.Changes}
		if rep.Holds && rep.StabilizedAt <= sim.At(p.runFor*3/4) {
			v.holds = true
			v.efficient = sys.CommEffReport(sim.At(p.runFor * 3 / 4)).Efficient
		}
		return v
	})
	holds, efficient := 0, 0
	var worstChanges int
	for _, v := range results {
		if v.err != nil {
			return v.err
		}
		if v.holds {
			holds++
		}
		if v.efficient {
			efficient++
		}
		if v.changes > worstChanges {
			worstChanges = v.changes
		}
	}
	fmt.Printf("sweep:    %d seeds × %v, n=%d algo=%s regime=%s\n",
		p.seeds, p.runFor, p.n, p.algo, p.regime)
	fmt.Printf("omega:    holds (with margin) in %d/%d seeds\n", holds, p.seeds)
	fmt.Printf("commeff:  efficient in %d/%d seeds\n", efficient, p.seeds)
	fmt.Printf("churn:    worst-case leader changes %d\n", worstChanges)
	return nil
}

// parseCrashes parses "id@dur,id@dur" crash plans.
func parseCrashes(s string) ([]scenario.Crash, error) {
	if s == "" {
		return nil, nil
	}
	var out []scenario.Crash
	for _, part := range strings.Split(s, ",") {
		var id int
		at := ""
		if _, err := fmt.Sscanf(part, "%d@%s", &id, &at); err != nil {
			return nil, fmt.Errorf("bad crash spec %q (want id@duration): %w", part, err)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("bad crash time in %q: %w", part, err)
		}
		out = append(out, scenario.Crash{ID: node.ID(id), At: sim.At(d)})
	}
	return out, nil
}
