// Command chaossoak runs a live cluster — real UDP or TCP sockets on
// loopback, or the in-process mem transport — under a scripted fault
// plan: seeded per-link chaos, scheduled leader crashes, runtime
// partitions and heals. It drives replicated-state-machine traffic
// through the surviving majority and verifies, at the end, that leader
// election converged and that no consensus instance ever decided two
// values.
//
// Usage examples:
//
//	chaossoak -transport udp -plan full -n 5 -seed 42
//	chaossoak -transport tcp -plan crash -n 3
//	chaossoak -transport udp -plan chaos -gst 2s -bound 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cluster is the transport surface the soak drives; all three live
// clusters satisfy it.
type cluster interface {
	Start()
	Stop()
	Crash(node.ID)
	Inject(from, to node.ID, m node.Message)
	Stats() *metrics.MessageStats
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaossoak", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "udp", "live transport: mem, udp, tcp")
		n             = fs.Int("n", 5, "number of processes (full/partition plans need n >= 5 for quorum math)")
		seed          = fs.Int64("seed", 42, "fault-injection seed (same seed + plan = same drop/delay decisions)")
		eta           = fs.Duration("eta", 5*time.Millisecond, "heartbeat period η")
		planName      = fs.String("plan", "full", "fault plan: crash, partition, chaos, full")
		gst           = fs.Duration("gst", 1500*time.Millisecond, "global stabilization time for the chaos plan")
		bound         = fs.Duration("bound", 30*time.Second, "per-phase convergence bound")
		commands      = fs.Int("commands", 5, "consensus instances to commit per traffic phase")
		drop          = fs.Float64("drop", 0.4, "pre-GST drop probability for the chaos plan")
		metricsAddr   = fs.String("metrics-addr", "", "serve /metrics, /healthz and pprof on this address (e.g. :8080)")
		snapshotJSON  = fs.String("snapshot-json", "", "write the final merged metrics+histogram snapshot to this path")
		traceTail     = fs.Int("trace-tail", 0, "record message events in a bounded ring and print the last N at exit")
		lease         = fs.Duration("lease", 0, "leader read lease; 0 disables (leases trade failover latency for local reads, so chaos plans default off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := &soak{eta: *eta, bound: *bound, commands: *commands, lease: *lease}
	switch *planName {
	case "crash", "partition", "full":
		if *n < 3 {
			return fmt.Errorf("plan %s needs n >= 3, got %d", *planName, *n)
		}
		if (*planName == "partition" || *planName == "full") && *n < 5 {
			return fmt.Errorf("plan %s needs n >= 5 (crash + minority cut must leave a quorum), got %d", *planName, *n)
		}
		inj, err := faultline.New(*n, *seed, faultline.Plan{})
		if err != nil {
			return err
		}
		s.inj = inj
	case "chaos":
		// Pre-GST chaos via the scenario bridge: the simulator's all-et
		// regime, replayed on live sockets. The simulated regime is
		// lossless (wild delays only), so layer pre-GST loss on top — the
		// combination the soak tests exercise.
		plan, err := scenario.LiveFaultPlan(scenario.Config{
			N:      *n,
			Regime: scenario.RegimeAllET,
			Delta:  2 * time.Millisecond,
			Eta:    *eta,
			GST:    sim.At(*gst),
		})
		if err != nil {
			return err
		}
		if *drop > 0 {
			plan.Default = network.EventuallyTimely(2*time.Millisecond, 30*time.Millisecond, *drop)
		}
		inj, err := faultline.New(*n, *seed, plan)
		if err != nil {
			return err
		}
		s.inj = inj
	default:
		return fmt.Errorf("unknown plan %q (want crash, partition, chaos, full)", *planName)
	}

	autos := s.buildReplicas(*n)
	tel := telemetry.New(*n, telemetry.WithHeartbeatKinds(core.KindLeader))
	s.tel = tel
	var ring *trace.Log
	observer := obs.Sink(tel)
	if *traceTail > 0 {
		ring = trace.NewRing(*traceTail)
		ring.SetWallStart(time.Now())
		observer = obs.Tee(tel, ring.MessageSink())
	}
	cfg := transport.Config{
		N: *n, Seed: *seed, Quiet: true, Fault: s.inj,
		WriteTimeout: 200 * time.Millisecond, Observer: observer,
		OnFlush: tel.RecordFlush,
	}
	var c cluster
	var err error
	switch *transportName {
	case "mem":
		c, err = transport.NewCluster(cfg, autos)
	case "udp":
		c, err = transport.NewUDPCluster(cfg, autos)
	case "tcp":
		c, err = transport.NewTCPCluster(cfg, autos)
	default:
		return fmt.Errorf("unknown transport %q (want mem, udp, tcp)", *transportName)
	}
	if err != nil {
		return err
	}
	s.c = c
	tel.AttachStats(c.Stats())
	for i, d := range s.dets {
		tel.WatchOmega(node.ID(i), d.History())
	}
	for i, l := range s.logs {
		tel.WatchRecorder(node.ID(i), l.Recorder())
		tel.WatchLease(func() (bool, uint64, uint64) {
			return l.LeaseHeld(), l.LocalReads(), l.FallbackReads()
		})
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, tel)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving /metrics, /healthz, /debug/pprof on http://%s\n", srv.Addr())
	}
	c.Start()
	defer c.Stop()

	fmt.Printf("chaossoak: transport=%s plan=%s n=%d seed=%d eta=%v\n", *transportName, *planName, *n, *seed, *eta)
	switch *planName {
	case "crash":
		err = s.runCrash()
	case "partition":
		err = s.runPartition(false)
	case "chaos":
		err = s.runChaos(*gst)
	case "full":
		err = s.runPartition(true)
	}
	if err != nil {
		return err
	}
	if err := s.checkSafety(); err != nil {
		return err
	}
	st := c.Stats()
	fmt.Printf("traffic:   sent=%d delivered=%d dropped=%d\n", st.TotalSent(), st.Delivered(), st.Dropped())
	if down := tel.ElectionDowntime(); down.Count > 0 {
		fmt.Printf("telemetry: elections=%d downtime p50=%v max=%v decide p99=%v hb-gap p99=%v\n",
			tel.Elections(), down.Quantile(0.5), down.Max,
			tel.DecisionLatency().Quantile(0.99), tel.HeartbeatJitter().Quantile(0.99))
	}
	if ring != nil {
		fmt.Printf("trace:     last %d of %d message events (%d evicted)\n",
			len(ring.Tail(*traceTail)), ring.Len(), ring.Dropped())
		if _, err := ring.WriteTail(os.Stdout, *traceTail); err != nil {
			return err
		}
	}
	if *snapshotJSON != "" {
		if err := tel.WriteJSON(*snapshotJSON); err != nil {
			return err
		}
		fmt.Printf("snapshot:  wrote %s\n", *snapshotJSON)
	}
	fmt.Println("verdict:   PASS — single leader converged, consensus safety holds")
	return nil
}

// soak holds the replicas and fault handles for one run.
type soak struct {
	eta      time.Duration
	bound    time.Duration
	lease    time.Duration
	commands int
	inj      *faultline.Injector
	c        cluster
	tel      *telemetry.Collector
	dets     []*core.Detector
	logs     []*rsm.Node
}

// crash crash-stops a process and tells the telemetry layer, so the dead
// process's frozen leader output doesn't wedge agreement tracking.
func (s *soak) crash(id node.ID) {
	s.c.Crash(id)
	s.tel.MarkDown(id)
}

// buildReplicas composes one rebuff-hardened detector plus a replicated
// log per process. Rebuff matters here: chaos plans lose accusations,
// and the base algorithm (built for reliable links) can deadlock after a
// heal with every process electing itself.
func (s *soak) buildReplicas(n int) []node.Automaton {
	autos := make([]node.Automaton, n)
	s.dets = make([]*core.Detector, n)
	s.logs = make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		s.dets[i] = core.New(core.WithEta(s.eta), core.WithRebuff())
		s.logs[i] = rsm.New(s.dets[i], rsm.Config{DriveInterval: 2 * s.eta, Lease: s.lease})
		autos[i] = node.Compose(s.dets[i], s.logs[i])
	}
	return autos
}

// agreement reports the common leader among processes not in skip.
func (s *soak) agreement(skip map[int]bool) (node.ID, bool) {
	leader := node.None
	for i, d := range s.dets {
		if skip[i] {
			continue
		}
		l := d.History().Current()
		if leader == node.None {
			leader = l
		} else if l != leader {
			return node.None, false
		}
	}
	return leader, leader != node.None
}

// waitFor polls cond until it holds or the phase bound expires.
func (s *soak) waitFor(cond func() bool, what string) error {
	deadline := time.Now().Add(s.bound)
	for time.Now().Before(deadline) {
		if cond() {
			fmt.Printf("phase:     %s ok\n", what)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", s.bound, what)
}

// pump keeps injecting client requests at the current leader until every
// replica in correct has decided target instances.
func (s *soak) pump(correct []int, prefix string, target int) error {
	i := 0
	return s.waitFor(func() bool {
		if l, ok := s.agreement(skipAllBut(len(s.dets), correct)); ok {
			from := node.ID(correct[0])
			if from == l {
				from = node.ID(correct[1])
			}
			s.c.Inject(from, l, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("%s-%d", prefix, i))})
			i++
		}
		for _, p := range correct {
			if s.logs[p].Recorder().Count() < target {
				return false
			}
		}
		return true
	}, prefix+" consensus progress")
}

func skipAllBut(n int, keep []int) map[int]bool {
	skip := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		skip[i] = true
	}
	for _, p := range keep {
		skip[p] = false
	}
	return skip
}

func ints(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// runCrash commits a batch, crashes the leader, and requires re-election
// plus renewed consensus progress among the survivors.
func (s *soak) runCrash() error {
	n := len(s.dets)
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "initial agreement"); err != nil {
		return err
	}
	if err := s.pump(ints(0, n), "pre", s.commands); err != nil {
		return err
	}
	leader, _ := s.agreement(nil)
	s.crash(leader)
	fmt.Printf("fault:     crashed leader p%v\n", leader)
	skip := map[int]bool{int(leader): true}
	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if node.ID(i) != leader {
			survivors = append(survivors, i)
		}
	}
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skip)
		return ok && l != leader
	}, "re-election after crash"); err != nil {
		return err
	}
	return s.pump(survivors, "post", 2*s.commands)
}

// runPartition runs the full acceptance script: optional leader crash,
// then a minority cut, majority progress, heal, and convergence.
func (s *soak) runPartition(crashFirst bool) error {
	n := len(s.dets)
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "initial agreement"); err != nil {
		return err
	}
	if err := s.pump(ints(0, n), "pre", s.commands); err != nil {
		return err
	}
	skip := map[int]bool{}
	correct := ints(0, n)
	if crashFirst {
		s.crash(0)
		fmt.Println("fault:     crashed p0")
		skip[0] = true
		correct = ints(1, n)
		if err := s.waitFor(func() bool {
			l, ok := s.agreement(skip)
			return ok && l != 0
		}, "re-election after crash"); err != nil {
			return err
		}
	}
	// Cut the highest id away from the rest; the majority side keeps a
	// quorum and must keep deciding.
	minority := node.ID(n - 1)
	majority := correct[:len(correct)-1]
	s.inj.Cut([]node.ID{minority}, idsOf(majority))
	fmt.Printf("fault:     cut p%v from %v\n", minority, majority)
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skipAllBut(n, majority))
		return ok && !skip[int(l)] && l != minority
	}, "majority agreement during partition"); err != nil {
		return err
	}
	if err := s.pump(majority, "cut", s.commands+1); err != nil {
		return err
	}
	s.inj.Heal()
	fmt.Println("fault:     healed all partitions")
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skip)
		return ok && !skip[int(l)]
	}, "convergence after heal"); err != nil {
		return err
	}
	return s.pump(correct, "post", s.commands+2)
}

// runChaos rides out pre-GST link chaos and requires stabilization — a
// single common leader — once the wall-clock GST has passed.
func (s *soak) runChaos(gst time.Duration) error {
	start := time.Now()
	time.Sleep(gst / 2)
	if s.c.Stats().Dropped() == 0 {
		return fmt.Errorf("pre-GST chaos injected no drops")
	}
	fmt.Printf("fault:     pre-GST chaos dropped %d messages\n", s.c.Stats().Dropped())
	if err := s.waitFor(func() bool {
		_, ok := s.agreement(nil)
		return ok && time.Since(start) > gst
	}, "post-GST stabilization"); err != nil {
		return err
	}
	return s.pump(ints(0, len(s.dets)), "post-gst", s.commands)
}

// checkSafety verifies no consensus instance decided two values anywhere
// — crashed and once-partitioned replicas included.
func (s *soak) checkSafety() error {
	recs := make([]*consensus.Recorder, len(s.logs))
	for i, l := range s.logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		return fmt.Errorf("consensus disagreement: %v", rep.Violations)
	}
	return nil
}

func idsOf(ps []int) []node.ID {
	out := make([]node.ID, len(ps))
	for i, p := range ps {
		out[i] = node.ID(p)
	}
	return out
}
