// Command chaossoak runs a live cluster — real UDP or TCP sockets on
// loopback, or the in-process mem transport — under a scripted fault
// plan: seeded per-link chaos, scheduled leader crashes, runtime
// partitions and heals. It drives replicated-state-machine traffic
// through the surviving majority and verifies, at the end, that leader
// election converged and that no consensus instance ever decided two
// values.
//
// Usage examples:
//
//	chaossoak -transport udp -plan full -n 5 -seed 42
//	chaossoak -transport tcp -plan crash -n 3
//	chaossoak -transport udp -plan chaos -gst 2s -bound 30s
//	chaossoak -transport mem -plan recovery -n 3 -fsync group
//	chaossoak -transport mem -plan recovery -n 3 -groups 4
//
// The recovery plan is the kill -9 drill: every replica journals its
// consensus state through internal/durable, the leader is killed mid
// batch, the survivors keep deciding, and the dead process is rebuilt
// from its WAL directory. It must rejoin, catch up on what it missed,
// and regain proposer eligibility — then the run re-reads the WAL
// directories offline and cross-checks them against the in-memory
// decision logs (replay equivalence).
//
// With -groups G the recovery drill shards every process into G
// consensus groups (internal/consensus/group), each journaling to its
// own WAL directory (walroot/p<i>/g<g>). The killed replica hosts all G
// groups at once — the rebuild must reopen every one of its G WALs, and
// the offline replay check runs per group.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultline"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cluster is the transport surface the soak drives; all three live
// clusters satisfy it.
type cluster interface {
	Start()
	Stop()
	Crash(node.ID)
	Inject(from, to node.ID, m node.Message)
	Stats() *metrics.MessageStats
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("chaossoak", flag.ContinueOnError)
	var (
		transportName = fs.String("transport", "udp", "live transport: mem, udp, tcp")
		n             = fs.Int("n", 5, "number of processes (full/partition plans need n >= 5 for quorum math)")
		seed          = fs.Int64("seed", 42, "fault-injection seed (same seed + plan = same drop/delay decisions)")
		eta           = fs.Duration("eta", 5*time.Millisecond, "heartbeat period η")
		planName      = fs.String("plan", "full", "fault plan: crash, partition, chaos, full, recovery")
		gst           = fs.Duration("gst", 1500*time.Millisecond, "global stabilization time for the chaos plan")
		bound         = fs.Duration("bound", 30*time.Second, "per-phase convergence bound")
		commands      = fs.Int("commands", 5, "consensus instances to commit per traffic phase")
		drop          = fs.Float64("drop", 0.4, "pre-GST drop probability for the chaos plan")
		metricsAddr   = fs.String("metrics-addr", "", "serve /metrics, /healthz and pprof on this address (e.g. :8080)")
		snapshotJSON  = fs.String("snapshot-json", "", "write the final merged metrics+histogram snapshot to this path")
		traceTail     = fs.Int("trace-tail", 0, "record message events in a bounded ring and print the last N at exit")
		traceTailOut  = fs.String("trace-tail-out", "", "with -trace-tail, also write the tail to this file (parent directories are created)")
		traceDir      = fs.String("trace-dir", "", "record causal spans and write flight-recorder dumps (plus a final dump) into this directory; feed it to traceview")
		traceSample   = fs.Int("trace-sample", 1, "with -trace-dir, sample one in this many client requests")
		lease         = fs.Duration("lease", 0, "leader read lease; 0 disables (leases trade failover latency for local reads, so chaos plans default off)")
		fsyncName     = fs.String("fsync", "group", "WAL fsync policy for the recovery plan: always, group, off")
		walDir        = fs.String("wal-dir", "", "WAL root for the recovery plan (default: a fresh temp dir, removed on success)")
		snapEvery     = fs.Int("snapshot-every", 8, "checkpoint the WAL every this many applied commands in the recovery plan")
		groupsFlag    = fs.Int("groups", 0, "shard the recovery plan into this many consensus groups, one WAL dir per group (0 = unsharded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *groupsFlag < 0 {
		return fmt.Errorf("-groups %d must be >= 0", *groupsFlag)
	}
	if *groupsFlag > 0 && *planName != "recovery" {
		return fmt.Errorf("-groups needs -plan recovery (sharded soaking is the durable multi-group drill)")
	}

	s := &soak{eta: *eta, bound: *bound, commands: *commands, lease: *lease, groups: *groupsFlag}
	switch *planName {
	case "recovery":
		if *transportName != "mem" {
			return fmt.Errorf("plan recovery needs -transport mem (restart is an in-process rebuild)")
		}
		if *n < 3 {
			return fmt.Errorf("plan recovery needs n >= 3, got %d", *n)
		}
		switch *fsyncName {
		case "always":
			s.sync = durable.SyncAlways
		case "group":
			s.sync = durable.SyncGroup
		case "off":
			s.sync = durable.SyncOff
		default:
			return fmt.Errorf("unknown fsync policy %q (want always, group, off)", *fsyncName)
		}
		s.walRoot = *walDir
		if s.walRoot == "" {
			dir, err := os.MkdirTemp("", "chaossoak-wal-")
			if err != nil {
				return err
			}
			s.walRoot = dir
			defer func() {
				if err == nil {
					os.RemoveAll(dir)
				}
			}()
		}
		s.snapEvery = *snapEvery
		s.inj, err = faultline.New(*n, *seed, faultline.Plan{})
		if err != nil {
			return err
		}
	case "crash", "partition", "full":
		if *n < 3 {
			return fmt.Errorf("plan %s needs n >= 3, got %d", *planName, *n)
		}
		if (*planName == "partition" || *planName == "full") && *n < 5 {
			return fmt.Errorf("plan %s needs n >= 5 (crash + minority cut must leave a quorum), got %d", *planName, *n)
		}
		inj, err := faultline.New(*n, *seed, faultline.Plan{})
		if err != nil {
			return err
		}
		s.inj = inj
	case "chaos":
		// Pre-GST chaos via the scenario bridge: the simulator's all-et
		// regime, replayed on live sockets. The simulated regime is
		// lossless (wild delays only), so layer pre-GST loss on top — the
		// combination the soak tests exercise.
		plan, err := scenario.LiveFaultPlan(scenario.Config{
			N:      *n,
			Regime: scenario.RegimeAllET,
			Delta:  2 * time.Millisecond,
			Eta:    *eta,
			GST:    sim.At(*gst),
		})
		if err != nil {
			return err
		}
		if *drop > 0 {
			plan.Default = network.EventuallyTimely(2*time.Millisecond, 30*time.Millisecond, *drop)
		}
		inj, err := faultline.New(*n, *seed, plan)
		if err != nil {
			return err
		}
		s.inj = inj
	default:
		return fmt.Errorf("unknown plan %q (want crash, partition, chaos, full)", *planName)
	}

	tel := telemetry.New(*n, telemetry.WithHeartbeatKinds(core.KindLeader))
	s.tel = tel
	if *traceDir != "" {
		// The flight recorder: spans from every layer land in per-process
		// rings; anomalies (leader changes, crashes, fallback reads, slow
		// fsyncs, drops) snapshot them into trace-*.json dumps.
		s.tset = tracing.New(tracing.Config{Procs: *n, Dir: *traceDir, SampleEvery: *traceSample})
	}
	var autos []node.Automaton
	if s.groups > 0 {
		autos, err = s.buildGroupReplicas(*n)
	} else {
		autos, err = s.buildReplicas(*n)
	}
	if err != nil {
		return err
	}
	var ring *trace.Log
	sinks := []obs.Sink{tel}
	if *traceTail > 0 {
		ring = trace.NewRing(*traceTail)
		ring.SetWallStart(time.Now())
		sinks = append(sinks, ring.MessageSink())
	}
	if s.tset != nil {
		sinks = append(sinks, s.tset.Sink())
	}
	observer := obs.Sink(tel)
	if len(sinks) > 1 {
		observer = obs.Tee(sinks...)
	}
	cfg := transport.Config{
		N: *n, Seed: *seed, Quiet: true, Fault: s.inj,
		WriteTimeout: 200 * time.Millisecond, Observer: observer,
		OnFlush: tel.RecordFlush,
	}
	var c cluster
	switch *transportName {
	case "mem":
		c, err = transport.NewCluster(cfg, autos)
	case "udp":
		c, err = transport.NewUDPCluster(cfg, autos)
	case "tcp":
		c, err = transport.NewTCPCluster(cfg, autos)
	default:
		return fmt.Errorf("unknown transport %q (want mem, udp, tcp)", *transportName)
	}
	if err != nil {
		return err
	}
	s.c = c
	if *planName == "recovery" {
		s.memc = c.(*transport.Cluster)
	}
	// Anchor trace timestamps to the cluster clock's zero (set at
	// construction just above) so span offsets and telemetry wall times
	// merge on the same axis.
	s.tset.SetWallStart(time.Now())
	tel.AttachStats(c.Stats())
	// Omega watching stays unsharded-only: each group's detectors speak a
	// rotated logical id space, so the cluster-wide leader gauge would read
	// garbage. Sharded runs get per-group labeled series instead.
	// Tracing subscribes after telemetry: WatchOmega installs via
	// SetNotify, which replaces every hook installed before it.
	for i, d := range s.dets {
		tel.WatchOmega(node.ID(i), d.History())
		d.History().AddNotify(s.tset.WatchLeader(i))
	}
	for i, l := range s.logs {
		tel.WatchRecorder(node.ID(i), l.Recorder())
		tel.WatchLease(func() (bool, uint64, uint64) {
			return l.LeaseHeld(), l.LocalReads(), l.FallbackReads()
		})
	}
	for i := range s.glogs {
		for g := 0; g < s.groups; g++ {
			tel.WatchGroupRecorder(g, node.ID(i), s.glogs[i][g].Recorder())
		}
	}
	if *metricsAddr != "" {
		var opts []telemetry.ServeOption
		if s.tset != nil {
			opts = append(opts, telemetry.WithTraceSource(s.tset.WriteJSON))
		}
		srv, err := telemetry.Serve(*metricsAddr, tel, opts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving /metrics, /healthz, /debug/pprof on http://%s\n", srv.Addr())
	}
	c.Start()
	defer c.Stop()

	fmt.Printf("chaossoak: transport=%s plan=%s n=%d seed=%d eta=%v\n", *transportName, *planName, *n, *seed, *eta)
	switch *planName {
	case "crash":
		err = s.runCrash()
	case "partition":
		err = s.runPartition(false)
	case "chaos":
		err = s.runChaos(*gst)
	case "full":
		err = s.runPartition(true)
	case "recovery":
		if s.groups > 0 {
			err = s.runGroupRecovery()
		} else {
			err = s.runRecovery()
		}
	}
	if err != nil {
		return err
	}
	if s.groups > 0 {
		err = s.checkGroupSafety()
	} else {
		err = s.checkSafety()
	}
	if err != nil {
		return err
	}
	if *planName == "recovery" {
		// Quiesce before re-reading the WAL directories offline: an open
		// on a live, appending log would race the node loops. Sharded runs
		// additionally halt every engine's group loops — their timers fire
		// process-internally, outside the cluster's control.
		c.Stop()
		for _, e := range s.engines {
			e.Halt()
		}
		if s.groups > 0 {
			err = s.checkGroupReplayEquivalence()
		} else {
			err = s.checkReplayEquivalence()
		}
		if err != nil {
			return err
		}
	}
	st := c.Stats()
	fmt.Printf("traffic:   sent=%d delivered=%d dropped=%d\n", st.TotalSent(), st.Delivered(), st.Dropped())
	if down := tel.ElectionDowntime(); down.Count > 0 {
		fmt.Printf("telemetry: elections=%d downtime p50=%v max=%v decide p99=%v hb-gap p99=%v\n",
			tel.Elections(), down.Quantile(0.5), down.Max,
			tel.DecisionLatency().Quantile(0.99), tel.HeartbeatJitter().Quantile(0.99))
	}
	if appends := tel.WALAppendBytes(); appends.Count > 0 {
		fsync := tel.FsyncLatency()
		fmt.Printf("durability: wal appends=%d bytes=%d fsyncs=%d fsync p99=%v recovery max=%v\n",
			appends.Count, int64(appends.Sum), fsync.Count, fsync.Quantile(0.99), tel.RecoveryTime().Max)
	}
	if ring != nil {
		fmt.Printf("trace:     last %d of %d message events (%d evicted)\n",
			len(ring.Tail(*traceTail)), ring.Len(), ring.Dropped())
		if _, err := ring.WriteTail(os.Stdout, *traceTail); err != nil {
			return err
		}
		if *traceTailOut != "" {
			if dir := filepath.Dir(*traceTailOut); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return fmt.Errorf("create -trace-tail-out directory %s: %w", dir, err)
				}
			}
			f, err := os.Create(*traceTailOut)
			if err != nil {
				return fmt.Errorf("write -trace-tail-out %s: %w", *traceTailOut, err)
			}
			_, werr := ring.WriteTail(f, *traceTail)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("write -trace-tail-out %s: %w", *traceTailOut, werr)
			}
			fmt.Printf("trace:     wrote %s\n", *traceTailOut)
		}
	}
	if *snapshotJSON != "" {
		if dir := filepath.Dir(*snapshotJSON); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("create -snapshot-json directory %s: %w", dir, err)
			}
		}
		if err := tel.WriteJSON(*snapshotJSON); err != nil {
			return fmt.Errorf("write -snapshot-json %s: %w", *snapshotJSON, err)
		}
		fmt.Printf("snapshot:  wrote %s\n", *snapshotJSON)
	}
	if s.tset != nil {
		path, err := s.tset.Final()
		if err != nil {
			return err
		}
		fmt.Printf("tracing:   %d anomaly dumps; final dump %s\n", s.tset.Triggered(), path)
	}
	fmt.Println("verdict:   PASS — single leader converged, consensus safety holds")
	return nil
}

// soak holds the replicas and fault handles for one run.
type soak struct {
	eta      time.Duration
	bound    time.Duration
	lease    time.Duration
	commands int
	inj      *faultline.Injector
	c        cluster
	memc     *transport.Cluster // recovery plan only: restart needs the mem cluster
	tel      *telemetry.Collector
	tset     *tracing.Set // nil without -trace-dir; every method no-ops then
	dets     []*core.Detector
	logs     []*rsm.Node

	// Sharded recovery (-groups > 0): per-process engines and the
	// [process][group] detector/log matrices; dets and logs stay nil.
	groups  int
	engines []*group.Engine
	gdets   [][]*core.Detector
	glogs   [][]*rsm.Node

	// Durability wiring, recovery plan only.
	walRoot   string
	sync      durable.SyncPolicy
	snapEvery int
	stores    []*durable.WAL
	recovered node.ID // the process killed and rebuilt from disk
}

// crash crash-stops a process and tells the telemetry and tracing
// layers, so the dead process's frozen leader output doesn't wedge
// agreement tracking (in either layer's reconstruction).
func (s *soak) crash(id node.ID) {
	s.c.Crash(id)
	s.tel.MarkDown(id)
	s.tset.MarkDown(int(id))
}

// buildReplicas composes one rebuff-hardened detector plus a replicated
// log per process. Rebuff matters here: chaos plans lose accusations,
// and the base algorithm (built for reliable links) can deadlock after a
// heal with every process electing itself.
func (s *soak) buildReplicas(n int) ([]node.Automaton, error) {
	autos := make([]node.Automaton, n)
	s.dets = make([]*core.Detector, n)
	s.logs = make([]*rsm.Node, n)
	if s.walRoot != "" {
		s.stores = make([]*durable.WAL, n)
	}
	for i := 0; i < n; i++ {
		auto, err := s.buildReplica(i)
		if err != nil {
			return nil, err
		}
		autos[i] = auto
	}
	return autos, nil
}

// buildReplica composes one detector+log pair, journaling through the
// process's WAL directory when the recovery plan is active. It is also
// the rebuild path: reopening the same directory recovers everything the
// previous incarnation persisted.
func (s *soak) buildReplica(i int) (node.Automaton, error) {
	cfg := rsm.Config{DriveInterval: 2 * s.eta, Lease: s.lease, Tracer: s.tset.Tracer(i)}
	var al *appliedLog
	if s.stores != nil {
		opts := durable.Options{Sync: s.sync}
		opts.OnAppend, opts.OnFsync, opts.OnRecover = s.tel.DurableHooks(node.ID(i))
		opts.OnFsync = chainFsync(opts.OnFsync, s.tset.FsyncThreshold(i, traceFsyncThreshold))
		w, err := durable.Open(s.walPath(node.ID(i)), opts)
		if err != nil {
			return nil, err
		}
		s.stores[i] = w
		cfg.Store = w
		cfg.SnapshotEvery = s.snapEvery
		// The "application" here is the applied command sequence itself:
		// snapshots absorb it, restarts restore it, and the offline
		// replay-equivalence check re-derives it from the WAL alone.
		al = &appliedLog{}
		cfg.SnapshotState = al.snapshot
		cfg.RestoreState = al.restore
	}
	s.dets[i] = core.New(core.WithEta(s.eta), core.WithRebuff())
	s.logs[i] = rsm.New(s.dets[i], cfg)
	if al != nil {
		s.logs[i].OnApply(func(inst, cmd int, v consensus.Value) { al.cmds = append(al.cmds, string(v)) })
	}
	return node.Compose(s.dets[i], s.logs[i]), nil
}

// traceFsyncThreshold is the WAL fsync duration past which the flight
// recorder fires (reason "fsync-slow"): an order of magnitude above a
// healthy loopback fsync, low enough to catch a stalling disk mid-soak.
const traceFsyncThreshold = 25 * time.Millisecond

// chainFsync runs the telemetry fsync hook and the tracing threshold
// watcher off one durable.Options.OnFsync slot. Either side may be nil.
func chainFsync(tel func(time.Duration), tr func(time.Duration)) func(time.Duration) {
	if tr == nil {
		return tel
	}
	if tel == nil {
		return tr
	}
	return func(d time.Duration) {
		tel(d)
		tr(d)
	}
}

// appliedLog is one incarnation's applied command sequence; all methods
// run on the node loop (SnapshotState, RestoreState, OnApply), so no
// locking is needed.
type appliedLog struct{ cmds []string }

func (a *appliedLog) snapshot() []byte { return []byte(strings.Join(a.cmds, appliedSep)) }
func (a *appliedLog) restore(b []byte) {
	if len(b) > 0 {
		a.cmds = strings.Split(string(b), appliedSep)
	}
}

// appliedSep separates commands in the snapshot payload; no command in
// this soak (or gap-fill no-op) contains a unit separator.
const appliedSep = "\x1f"

func (s *soak) walPath(id node.ID) string {
	return filepath.Join(s.walRoot, fmt.Sprintf("p%d", id))
}

// groupWALPath is group g's journal directory on process id: each group
// in a sharded replica recovers independently, so each gets its own WAL.
func (s *soak) groupWALPath(id node.ID, g int) string {
	return filepath.Join(s.walPath(id), fmt.Sprintf("g%d", g))
}

// buildGroupReplicas builds the sharded fleet: one engine per process,
// each running s.groups detector+log pairs on their own loops, each pair
// journaling to its own WAL directory.
func (s *soak) buildGroupReplicas(n int) ([]node.Automaton, error) {
	autos := make([]node.Automaton, n)
	s.engines = make([]*group.Engine, n)
	s.gdets = make([][]*core.Detector, n)
	s.glogs = make([][]*rsm.Node, n)
	for i := 0; i < n; i++ {
		auto, err := s.buildGroupReplica(i)
		if err != nil {
			return nil, err
		}
		autos[i] = auto
	}
	return autos, nil
}

// buildGroupReplica composes one process's engine, opening (or, on the
// restart path, reopening) all of its per-group WAL directories. Build
// runs synchronously inside group.New, so WAL open errors are carried out
// through the closure.
func (s *soak) buildGroupReplica(i int) (node.Automaton, error) {
	s.gdets[i] = make([]*core.Detector, s.groups)
	s.glogs[i] = make([]*rsm.Node, s.groups)
	var buildErr error
	eng := group.New(group.Config{
		Groups: s.groups,
		Build: func(g int) node.Automaton {
			cfg := rsm.Config{DriveInterval: 2 * s.eta, Group: g, Tracer: s.tset.Tracer(i)}
			opts := durable.Options{Sync: s.sync}
			opts.OnAppend, opts.OnFsync, opts.OnRecover = s.tel.DurableHooks(node.ID(i))
			opts.OnFsync = chainFsync(opts.OnFsync, s.tset.FsyncThreshold(i, traceFsyncThreshold))
			al := &appliedLog{}
			if w, err := durable.Open(s.groupWALPath(node.ID(i), g), opts); err != nil {
				buildErr = err
			} else {
				cfg.Store = w
				cfg.SnapshotEvery = s.snapEvery
				cfg.SnapshotState = al.snapshot
				cfg.RestoreState = al.restore
			}
			s.gdets[i][g] = core.New(core.WithEta(s.eta), core.WithRebuff())
			s.glogs[i][g] = rsm.New(s.gdets[i][g], cfg)
			s.glogs[i][g].OnApply(func(inst, cmd int, v consensus.Value) { al.cmds = append(al.cmds, string(v)) })
			return node.Compose(s.gdets[i][g], s.glogs[i][g])
		},
	})
	if buildErr != nil {
		return nil, buildErr
	}
	s.engines[i] = eng
	return eng, nil
}

// restartGroup rebuilds process id's engine from its G WAL directories
// and reboots it in place. The caller must have Halted the dead
// incarnation first: its group loops own timers that fire process-
// internally, and a zombie loop appending to a WAL the new incarnation is
// recovering from would corrupt kill -9 semantics into a two-writer race.
func (s *soak) restartGroup(id node.ID) error {
	auto, err := s.buildGroupReplica(int(id))
	if err != nil {
		return err
	}
	for g := 0; g < s.groups; g++ {
		s.tel.WatchGroupRecorder(g, id, s.glogs[id][g].Recorder())
	}
	s.tel.MarkUp(id)
	s.tset.MarkUp(int(id))
	s.memc.Restart(id, auto)
	return nil
}

// restart rebuilds process id from its WAL directory and reboots it in
// place. The dead incarnation's WAL handle is abandoned unclosed,
// exactly as kill -9 leaves it; recovery reads the directory fresh.
func (s *soak) restart(id node.ID) error {
	auto, err := s.buildReplica(int(id))
	if err != nil {
		return err
	}
	s.tel.WatchOmega(id, s.dets[id].History())
	s.dets[id].History().AddNotify(s.tset.WatchLeader(int(id)))
	s.tel.WatchRecorder(id, s.logs[id].Recorder())
	s.tel.MarkUp(id)
	s.tset.MarkUp(int(id))
	s.memc.Restart(id, auto)
	return nil
}

// agreement reports the common leader among processes not in skip.
func (s *soak) agreement(skip map[int]bool) (node.ID, bool) {
	leader := node.None
	for i, d := range s.dets {
		if skip[i] {
			continue
		}
		l := d.History().Current()
		if leader == node.None {
			leader = l
		} else if l != leader {
			return node.None, false
		}
	}
	return leader, leader != node.None
}

// waitFor polls cond until it holds or the phase bound expires.
func (s *soak) waitFor(cond func() bool, what string) error {
	deadline := time.Now().Add(s.bound)
	for time.Now().Before(deadline) {
		if cond() {
			fmt.Printf("phase:     %s ok\n", what)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", s.bound, what)
}

// pump keeps injecting client requests at the current leader until every
// replica in correct has decided target instances.
func (s *soak) pump(correct []int, prefix string, target int) error {
	i := 0
	return s.waitFor(func() bool {
		if l, ok := s.agreement(skipAllBut(len(s.dets), correct)); ok {
			from := node.ID(correct[0])
			if from == l {
				from = node.ID(correct[1])
			}
			req := node.Message(rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("%s-%d", prefix, i))})
			// Client-side trace ingress: a sampled request carries its
			// context from the injection hop onward.
			if ctx := s.tset.Tracer(int(from)).StartTrace(s.tset.Stamp(), "request"); ctx.Valid() {
				req = tracing.Wrap{Ctx: ctx, Inner: req}
			}
			s.c.Inject(from, l, req)
			i++
		}
		for _, p := range correct {
			if s.logs[p].Recorder().Count() < target {
				return false
			}
		}
		return true
	}, prefix+" consensus progress")
}

func skipAllBut(n int, keep []int) map[int]bool {
	skip := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		skip[i] = true
	}
	for _, p := range keep {
		skip[p] = false
	}
	return skip
}

func ints(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// runCrash commits a batch, crashes the leader, and requires re-election
// plus renewed consensus progress among the survivors.
func (s *soak) runCrash() error {
	n := len(s.dets)
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "initial agreement"); err != nil {
		return err
	}
	if err := s.pump(ints(0, n), "pre", s.commands); err != nil {
		return err
	}
	leader, _ := s.agreement(nil)
	s.crash(leader)
	fmt.Printf("fault:     crashed leader p%v\n", leader)
	skip := map[int]bool{int(leader): true}
	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if node.ID(i) != leader {
			survivors = append(survivors, i)
		}
	}
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skip)
		return ok && l != leader
	}, "re-election after crash"); err != nil {
		return err
	}
	return s.pump(survivors, "post", 2*s.commands)
}

// runPartition runs the full acceptance script: optional leader crash,
// then a minority cut, majority progress, heal, and convergence.
func (s *soak) runPartition(crashFirst bool) error {
	n := len(s.dets)
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "initial agreement"); err != nil {
		return err
	}
	if err := s.pump(ints(0, n), "pre", s.commands); err != nil {
		return err
	}
	skip := map[int]bool{}
	correct := ints(0, n)
	if crashFirst {
		s.crash(0)
		fmt.Println("fault:     crashed p0")
		skip[0] = true
		correct = ints(1, n)
		if err := s.waitFor(func() bool {
			l, ok := s.agreement(skip)
			return ok && l != 0
		}, "re-election after crash"); err != nil {
			return err
		}
	}
	// Cut the highest id away from the rest; the majority side keeps a
	// quorum and must keep deciding.
	minority := node.ID(n - 1)
	majority := correct[:len(correct)-1]
	s.inj.Cut([]node.ID{minority}, idsOf(majority))
	fmt.Printf("fault:     cut p%v from %v\n", minority, majority)
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skipAllBut(n, majority))
		return ok && !skip[int(l)] && l != minority
	}, "majority agreement during partition"); err != nil {
		return err
	}
	if err := s.pump(majority, "cut", s.commands+1); err != nil {
		return err
	}
	s.inj.Heal()
	fmt.Println("fault:     healed all partitions")
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(skip)
		return ok && !skip[int(l)]
	}, "convergence after heal"); err != nil {
		return err
	}
	return s.pump(correct, "post", s.commands+2)
}

// runChaos rides out pre-GST link chaos and requires stabilization — a
// single common leader — once the wall-clock GST has passed.
func (s *soak) runChaos(gst time.Duration) error {
	start := time.Now()
	time.Sleep(gst / 2)
	if s.c.Stats().Dropped() == 0 {
		return fmt.Errorf("pre-GST chaos injected no drops")
	}
	fmt.Printf("fault:     pre-GST chaos dropped %d messages\n", s.c.Stats().Dropped())
	if err := s.waitFor(func() bool {
		_, ok := s.agreement(nil)
		return ok && time.Since(start) > gst
	}, "post-GST stabilization"); err != nil {
		return err
	}
	return s.pump(ints(0, len(s.dets)), "post-gst", s.commands)
}

// runRecovery is the kill -9 drill (mem transport, per-process WALs):
// commit a batch, kill the leader with a burst of requests in flight,
// let the survivors advance, rebuild the dead process from its WAL
// directory, and require it to rejoin, catch up on the outage, and win
// back proposer eligibility before the final safety and replay checks.
func (s *soak) runRecovery() error {
	n := len(s.dets)
	all := ints(0, n)
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "initial agreement"); err != nil {
		return err
	}
	if err := s.pump(all, "pre", s.commands); err != nil {
		return err
	}
	leader, _ := s.agreement(nil)
	s.recovered = leader

	// Kill the leader mid-batch: a burst of requests is still in flight
	// when it dies, so its WAL tail holds accepts that may never have
	// reached a quorum — recovery must carry them without inventing
	// decisions.
	from := node.ID(all[0])
	if from == leader {
		from = node.ID(all[1])
	}
	for i := 0; i < s.commands; i++ {
		s.c.Inject(from, leader, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("burst-%d", i))})
	}
	s.crash(leader)
	fmt.Printf("fault:     killed leader p%v mid-batch\n", leader)

	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if node.ID(i) != leader {
			survivors = append(survivors, i)
		}
	}
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(map[int]bool{int(leader): true})
		return ok && l != leader
	}, "re-election after kill"); err != nil {
		return err
	}
	if err := s.pump(survivors, "outage", 2*s.commands); err != nil {
		return err
	}
	// The highest instance the survivors decided while the process was
	// down: the bar its catch-up has to clear.
	outageMax := 0
	for _, d := range s.logs[survivors[0]].Recorder().All() {
		if d.Instance > outageMax {
			outageMax = d.Instance
		}
	}

	if err := s.restart(leader); err != nil {
		return err
	}
	fmt.Printf("fault:     restarted p%v from %s\n", leader, s.walPath(leader))
	if err := s.waitFor(func() bool { _, ok := s.agreement(nil); return ok }, "convergence after restart"); err != nil {
		return err
	}
	if err := s.waitFor(func() bool {
		_, ok := s.logs[leader].Recorder().Get(outageMax)
		return ok
	}, "restarted replica catch-up"); err != nil {
		return err
	}

	// Proposer eligibility: kill the current leader. If the restarted
	// process already leads again, progress below proves the point
	// directly; otherwise the cluster must keep deciding with the
	// restarted process voting in (and possibly leading) every quorum.
	// Agreement can be momentarily in dispute after the catch-up wait
	// (the rejoin itself may trigger a leader change), so capture the
	// second leader from a settled view rather than a one-shot snapshot.
	second := node.None
	if err := s.waitFor(func() bool {
		l, ok := s.agreement(nil)
		if ok {
			second = l
		}
		return ok
	}, "settled leader before second kill"); err != nil {
		return err
	}
	correct := all
	if second != leader {
		s.crash(second)
		fmt.Printf("fault:     crashed second leader p%v\n", second)
		correct = make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if node.ID(i) != second {
				correct = append(correct, i)
			}
		}
		if err := s.waitFor(func() bool {
			l, ok := s.agreement(map[int]bool{int(second): true})
			return ok && l != second
		}, "re-election after second kill"); err != nil {
			return err
		}
	}
	return s.pump(correct, "post", 3*s.commands)
}

// groupAgreement reports the common leader of group g — in the group's
// logical id space — among processes not in skip.
func (s *soak) groupAgreement(g int, skip map[int]bool) (node.ID, bool) {
	leader := node.None
	for i := range s.gdets {
		if skip[i] {
			continue
		}
		l := s.gdets[i][g].History().Current()
		if leader == node.None {
			leader = l
		} else if l != leader {
			return node.None, false
		}
	}
	return leader, leader != node.None
}

// allGroupsAgree returns every group's agreed logical leader, or nil if
// any group is still in dispute among the processes not in skip.
func (s *soak) allGroupsAgree(skip map[int]bool) []node.ID {
	leaders := make([]node.ID, s.groups)
	for g := 0; g < s.groups; g++ {
		l, ok := s.groupAgreement(g, skip)
		if !ok {
			return nil
		}
		leaders[g] = l
	}
	return leaders
}

// groupPump keeps injecting client requests at every group's current
// physical leader until each replica in correct has decided target
// instances in every group.
func (s *soak) groupPump(correct []int, prefix string, target int) error {
	n := len(s.gdets)
	skip := skipAllBut(n, correct)
	counters := make([]int, s.groups)
	return s.waitFor(func() bool {
		for g := 0; g < s.groups; g++ {
			l, ok := s.groupAgreement(g, skip)
			if !ok {
				continue
			}
			phys := group.Physical(l, g, n)
			if skip[int(phys)] {
				continue // this group's leader is outside the correct set
			}
			from := node.ID(correct[0])
			if from == phys {
				from = node.ID(correct[1])
			}
			s.c.Inject(from, phys, group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("%s-g%d-%d", prefix, g, counters[g]))}))
			counters[g]++
		}
		for _, p := range correct {
			for g := 0; g < s.groups; g++ {
				if s.glogs[p][g].Recorder().Count() < target {
					return false
				}
			}
		}
		return true
	}, prefix+" sharded consensus progress")
}

// runGroupRecovery is the sharded kill -9 drill: commit a batch in every
// group, kill the process that leads group 0 — it hosts all G groups, so
// G WAL directories die with it and G-1 other groups lose a follower —
// with bursts in flight in every group it led, let the survivors advance
// everywhere, rebuild the dead process from all G of its WALs at once,
// and require per-group catch-up before the per-group safety and replay
// checks.
func (s *soak) runGroupRecovery() error {
	n := len(s.gdets)
	all := ints(0, n)
	if err := s.waitFor(func() bool { return s.allGroupsAgree(nil) != nil }, "initial agreement in every group"); err != nil {
		return err
	}
	if err := s.groupPump(all, "pre", s.commands); err != nil {
		return err
	}

	l0, _ := s.groupAgreement(0, nil)
	victim := group.Physical(l0, 0, n)
	s.recovered = victim
	led := 0
	for g := 0; g < s.groups; g++ {
		l, ok := s.groupAgreement(g, nil)
		if !ok || group.Physical(l, g, n) != victim {
			continue
		}
		from := node.ID(0)
		if from == victim {
			from = node.ID(1)
		}
		for i := 0; i < s.commands; i++ {
			s.c.Inject(from, victim, group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("burst-g%d-%d", g, i))}))
		}
		led++
	}
	s.crash(victim)
	// The cluster stops delivering to the victim, but its group loops run
	// their own timers — halt them so the dead incarnation truly stops
	// appending before its WAL directories are reopened.
	s.engines[victim].Halt()
	fmt.Printf("fault:     killed p%v mid-batch — led %d of %d groups, hosted %d WALs\n", victim, led, s.groups, s.groups)

	survivors := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if node.ID(i) != victim {
			survivors = append(survivors, i)
		}
	}
	skip := map[int]bool{int(victim): true}
	if err := s.waitFor(func() bool {
		leaders := s.allGroupsAgree(skip)
		if leaders == nil {
			return false
		}
		for g, l := range leaders {
			if group.Physical(l, g, n) == victim {
				return false
			}
		}
		return true
	}, "live leader in every group after kill"); err != nil {
		return err
	}
	if err := s.groupPump(survivors, "outage", 2*s.commands); err != nil {
		return err
	}
	// Per group, the highest instance the survivors decided while the
	// victim was down: the bar each of its G recoveries has to clear.
	outageMax := make([]int, s.groups)
	for g := 0; g < s.groups; g++ {
		for _, d := range s.glogs[survivors[0]][g].Recorder().All() {
			if d.Instance > outageMax[g] {
				outageMax[g] = d.Instance
			}
		}
	}

	if err := s.restartGroup(victim); err != nil {
		return err
	}
	fmt.Printf("fault:     restarted p%v from %d WAL directories under %s\n", victim, s.groups, s.walPath(victim))
	if err := s.waitFor(func() bool { return s.allGroupsAgree(nil) != nil }, "convergence after restart"); err != nil {
		return err
	}
	if err := s.waitFor(func() bool {
		for g := 0; g < s.groups; g++ {
			if _, ok := s.glogs[victim][g].Recorder().Get(outageMax[g]); !ok {
				return false
			}
		}
		return true
	}, "restarted replica catch-up in every group"); err != nil {
		return err
	}
	return s.groupPump(all, "post", 3*s.commands)
}

// reopen loads one WAL directory offline and returns its recovered state.
func (s *soak) reopen(id node.ID) (*durable.State, error) {
	return reopenPath(s.walPath(id))
}

// reopenPath loads a WAL directory offline and returns its recovered
// state.
func reopenPath(dir string) (*durable.State, error) {
	w, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		return nil, err
	}
	st := w.State()
	return st, w.Close()
}

// recoveredSequence re-derives, from a recovered durable state alone,
// the applied command sequence a restart would rebuild: the snapshot's
// absorbed prefix plus the contiguous decided tail, batch envelopes
// fanned out exactly as the applier would.
func recoveredSequence(st *durable.State) []string {
	var seq []string
	if len(st.App) > 0 {
		seq = strings.Split(string(st.App), appliedSep)
	}
	decided := make(map[uint64]string, len(st.Decided))
	for _, d := range st.Decided {
		decided[d.Inst] = d.V
	}
	for next := st.SnapIndex; ; next++ {
		v, ok := decided[next]
		if !ok {
			return seq
		}
		for _, c := range rsm.DecodeBatch(consensus.Value(v)) {
			seq = append(seq, string(c))
		}
	}
}

// checkReplayEquivalence re-reads every WAL directory offline, twice,
// after the cluster has stopped. Recovery must be deterministic (equal
// state across opens), and the applied sequence each WAL rebuilds must
// be a prefix of every longer one — same commands, same order, nothing
// lost, nothing doubled. The restarted process's sequence must be
// non-empty so the check cannot pass vacuously.
func (s *soak) checkReplayEquivalence() error {
	seqs := make([][]string, len(s.logs))
	for i := range s.logs {
		a, err := s.reopen(node.ID(i))
		if err != nil {
			return err
		}
		b, err := s.reopen(node.ID(i))
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(a, b) {
			return fmt.Errorf("replay of p%d is not deterministic across opens", i)
		}
		if a == nil {
			return fmt.Errorf("p%d recovered no durable state", i)
		}
		seqs[i] = recoveredSequence(a)
	}
	if len(seqs[s.recovered]) == 0 {
		return fmt.Errorf("replay check vacuous: restarted p%v rebuilds an empty sequence", s.recovered)
	}
	for i := range seqs {
		for j := i + 1; j < len(seqs); j++ {
			short, long := seqs[i], seqs[j]
			if len(short) > len(long) {
				short, long = long, short
			}
			for k := range short {
				if short[k] != long[k] {
					return fmt.Errorf("replay divergence: applied command %d is %q on p%d, %q on p%d", k, seqs[i][k], i, seqs[j][k], j)
				}
			}
		}
	}
	fmt.Printf("replay:    WAL recovery deterministic; applied sequences prefix-consistent (restarted p%v rebuilds %d commands)\n",
		s.recovered, len(seqs[s.recovered]))
	return nil
}

// checkGroupReplayEquivalence is the sharded offline replay check: for
// every group independently, re-read each process's group WAL directory
// twice (determinism), then require the G applied sequences the cluster
// would rebuild to be pairwise prefix-consistent within the group. The
// restarted process must rebuild a non-empty sequence in every group it
// hosted, so no group's check can pass vacuously.
func (s *soak) checkGroupReplayEquivalence() error {
	rebuilt := make([]int, s.groups)
	for g := 0; g < s.groups; g++ {
		seqs := make([][]string, len(s.glogs))
		for i := range s.glogs {
			dir := s.groupWALPath(node.ID(i), g)
			a, err := reopenPath(dir)
			if err != nil {
				return err
			}
			b, err := reopenPath(dir)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(a, b) {
				return fmt.Errorf("group %d: replay of p%d is not deterministic across opens", g, i)
			}
			if a == nil {
				return fmt.Errorf("group %d: p%d recovered no durable state", g, i)
			}
			seqs[i] = recoveredSequence(a)
		}
		if len(seqs[s.recovered]) == 0 {
			return fmt.Errorf("group %d replay check vacuous: restarted p%v rebuilds an empty sequence", g, s.recovered)
		}
		rebuilt[g] = len(seqs[s.recovered])
		for i := range seqs {
			for j := i + 1; j < len(seqs); j++ {
				short, long := seqs[i], seqs[j]
				if len(short) > len(long) {
					short, long = long, short
				}
				for k := range short {
					if short[k] != long[k] {
						return fmt.Errorf("group %d replay divergence: applied command %d is %q on p%d, %q on p%d", g, k, seqs[i][k], i, seqs[j][k], j)
					}
				}
			}
		}
	}
	fmt.Printf("replay:    %d WAL dirs per process deterministic; applied sequences prefix-consistent per group (restarted p%v rebuilds %v commands)\n",
		s.groups, s.recovered, rebuilt)
	return nil
}

// checkGroupSafety verifies, per group, that no consensus instance
// decided two values on any process.
func (s *soak) checkGroupSafety() error {
	for g := 0; g < s.groups; g++ {
		recs := make([]*consensus.Recorder, len(s.glogs))
		for i := range s.glogs {
			recs[i] = s.glogs[i][g].Recorder()
		}
		rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
		if !rep.Agreement {
			return fmt.Errorf("group %d consensus disagreement: %v", g, rep.Violations)
		}
	}
	return nil
}

// checkSafety verifies no consensus instance decided two values anywhere
// — crashed and once-partitioned replicas included.
func (s *soak) checkSafety() error {
	recs := make([]*consensus.Recorder, len(s.logs))
	for i, l := range s.logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		return fmt.Errorf("consensus disagreement: %v", rep.Violations)
	}
	return nil
}

func idsOf(ps []int) []node.ID {
	out := make([]node.ID, len(ps))
	for i, p := range ps {
		out[i] = node.ID(p)
	}
	return out
}
