package main

import (
	"strings"
	"testing"
)

func TestRunCrashPlanMem(t *testing.T) {
	if err := run([]string{"-transport", "mem", "-plan", "crash", "-n", "3", "-commands", "2", "-bound", "20s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFullPlanMem(t *testing.T) {
	if err := run([]string{"-transport", "mem", "-plan", "full", "-n", "5", "-commands", "2", "-bound", "20s"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRecoveryPlanMem is the CI recovery soak: kill -9 the leader
// mid-batch, restart it from its WAL directory, and require rejoin,
// catch-up, renewed proposer eligibility, and replay equivalence. It
// stays enabled under -short so the -race CI job always runs it.
func TestRunRecoveryPlanMem(t *testing.T) {
	if err := run([]string{
		"-transport", "mem", "-plan", "recovery", "-n", "3",
		"-commands", "2", "-bound", "30s", "-fsync", "group",
		"-wal-dir", t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRecoveryPlanGroups is the sharded variant: the killed replica
// hosts 2 consensus groups, so 2 WAL directories must recover at once
// and the replay-equivalence check runs per group. Enabled under -short
// so the -race CI job always runs it.
func TestRunRecoveryPlanGroups(t *testing.T) {
	if err := run([]string{
		"-transport", "mem", "-plan", "recovery", "-n", "3",
		"-commands", "2", "-bound", "30s", "-fsync", "group",
		"-groups", "2", "-wal-dir", t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoveryPlanRequiresMem(t *testing.T) {
	if err := run([]string{"-transport", "udp", "-plan", "recovery", "-n", "3"}); err == nil {
		t.Fatal("recovery plan accepted a socket transport")
	}
}

func TestRunChaosPlanMem(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos plan waits out a wall-clock GST")
	}
	if err := run([]string{"-transport", "mem", "-plan", "chaos", "-n", "3", "-gst", "400ms", "-commands", "2", "-bound", "20s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"unknown transport":     {"-transport", "carrier-pigeon"},
		"unknown plan":          {"-plan", "mayhem"},
		"partition needs 5":     {"-plan", "partition", "-n", "3"},
		"crash needs 3":         {"-plan", "crash", "-n", "2"},
		"groups needs recovery": {"-plan", "crash", "-n", "3", "-groups", "2"},
	}
	for name, args := range cases {
		err := run(args)
		if err == nil {
			t.Fatalf("%s: accepted %v", name, args)
		}
		if strings.Contains(err.Error(), "timed out") {
			t.Fatalf("%s: ran instead of rejecting: %v", name, err)
		}
	}
}
