// Command consload is a throughput harness for the layered consensus
// engine over a live loopback TCP cluster: real sockets, real wire codec,
// real Omega detectors — the path production code runs. It drives a
// closed-loop client against the elected leader and reports decided
// commands per second, consensus messages per command, and wire bytes per
// command.
//
// By default it runs the comparison the engine exists for: a
// single-command baseline (-batch 1 -window 1 — one instance in flight,
// one command per instance) against the batched + pipelined configuration
// (defaults BatchMax 16, Window 8), and prints the speedup.
//
// With -groups G it adds a fourth arm: the sharded write engine
// (internal/consensus/group), G independent consensus groups multiplexed
// over the same per-peer TCP links, each group driven by its own closed
// loop at its own physical leader. The run fails unless the cluster held
// exactly one TCP connection per directed peer pair — the shared-socket
// property is asserted from counters, never eyeballed.
//
// Usage examples:
//
//	consload                          # baseline vs batched, 3s each
//	consload -n 5 -dur 5s -json BENCH_consensus.json
//	consload -batch 4 -window 2      # tune the batched arm
//	consload -groups 4               # add the sharded arm, 4 groups
//	consload -cpuprofile cpu.pprof   # per-arm cpu-<arm>.pprof over the load window
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// rsmKinds are the replicated-log message kinds, counted so Omega
// heartbeats don't pollute the per-command cost. Read requests/replies
// and lease grants/acks count too: the msgs-per-read claim must survive
// the read path's own traffic.
var rsmKinds = []string{
	rsm.KindRequest, rsm.KindPrepare, rsm.KindPromise, rsm.KindNack,
	rsm.KindAccept, rsm.KindAccepted, rsm.KindDecide, rsm.KindLearn,
	rsm.KindLeaseGrant, rsm.KindLeaseAck, rsm.KindReadReq, rsm.KindReadReply,
	// Sampled frames ride inside TRACE wrappers and are counted by the
	// wrapper kind; heartbeats are never wrapped, so including it keeps
	// msgs-per-cmd honest with -trace-dir on.
	tracing.KindTrace,
}

// readChunk is how many sequence numbers one injected ReadReqMsg covers —
// the client-side analogue of command batching: one request/reply pair
// amortized over readChunk reads.
const readChunk = 64

// result is one run's measurement, marshalled into BENCH_consensus.json.
// For the reads arm PeakPerSec covers total served operations (applied
// writes + answered reads) and the read-specific fields are populated.
type result struct {
	Name          string  `json:"name"`
	BatchMax      int     `json:"batch_max"`
	Window        int     `json:"window"`
	Submitted     int     `json:"submitted"`
	Applied       int     `json:"applied"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	AppliedPerSec float64 `json:"applied_per_sec"`
	PeakPerSec    float64 `json:"peak_applied_per_sec"`
	Msgs          uint64  `json:"consensus_msgs"`
	MsgsPerCmd    float64 `json:"msgs_per_cmd"`
	BytesPerCmd   float64 `json:"wire_bytes_per_cmd"`
	Dropped       uint64  `json:"dropped_frames"`

	LeaseSec      float64 `json:"lease_sec,omitempty"`
	Reads         int64   `json:"reads,omitempty"`
	ReadsPerSec   float64 `json:"reads_per_sec,omitempty"`
	LocalReads    uint64  `json:"reads_local,omitempty"`
	FallbackReads uint64  `json:"reads_fallback,omitempty"`
	// MsgsPerRead is measured over a trailing pure-read window: consensus
	// messages (including lease refreshes and the read req/reply hops)
	// divided by reads answered, with no writes in flight.
	MsgsPerRead float64 `json:"msgs_per_read,omitempty"`
	ReadP50NS   int64   `json:"read_latency_p50_ns,omitempty"`
	ReadP99NS   int64   `json:"read_latency_p99_ns,omitempty"`

	// Sharded-arm fields: group count, per-group applied counts, and the
	// shared-socket evidence (receiver-side open TCP connections, lifetime
	// sender dials, distinct directed links used) — each must equal
	// n*(n-1) no matter how many groups multiplexed over the mesh.
	Groups          int    `json:"groups,omitempty"`
	AppliedPerGroup []int  `json:"applied_per_group,omitempty"`
	OpenConns       int    `json:"open_conns,omitempty"`
	Dials           uint64 `json:"dials,omitempty"`
	ActiveLinks     int    `json:"active_links,omitempty"`
}

type report struct {
	Harness    string   `json:"harness"`
	N          int      `json:"n"`
	DurSec     float64  `json:"dur_sec"`
	Reps       int      `json:"reps"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Runs       []result `json:"runs"`
	// Speedup is the legacy batched/baseline ratio; Speedups names every
	// pairwise ratio so consumers key by name instead of grepping
	// positional fields.
	Speedup  float64            `json:"speedup"`
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("consload", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 3, "number of replicas")
		dur      = fs.Duration("dur", 3*time.Second, "load window per run")
		seed     = fs.Int64("seed", 1, "transport randomness seed")
		batch    = fs.Int("batch", 0, "batched arm's BatchMax (0 = engine default)")
		window   = fs.Int("window", 0, "batched arm's pipelining window (0 = engine default)")
		inflight = fs.Int("inflight", 1024, "closed-loop cap on outstanding commands")
		drive    = fs.Duration("drive", 5*time.Millisecond, "engine drive tick (partial-batch flush bound)")
		reps     = fs.Int("reps", 1, "runs per arm; the best run is reported (damps single-core scheduler noise)")
		jsonPath = fs.String("json", "", "write the machine-readable report to this path")
		profile  = fs.String("cpuprofile", "", "write per-arm CPU profiles (suffixed <base>-<arm>.pprof) covering only the sustained load window")
		memprof  = fs.String("memprofile", "", "write per-arm heap profiles (suffixed <base>-<arm>.pprof) at the end of the load window")
		reads    = fs.Float64("reads", 0, "run a third arm with this fraction of operations as reads (e.g. 0.9); 0 disables it")
		lease    = fs.Duration("lease", 300*time.Millisecond, "leader read lease for the reads arm")
		minspeed = fs.Float64("minspeedup", 0, "fail unless batched/baseline speedup reaches this factor (CI gate; 0 disables)")
		groups   = fs.Int("groups", 0, "run a sharded arm with this many consensus groups over shared links; 0 disables it")
		mingroup = fs.Float64("mingroupspeedup", 0, "fail unless sharded/batched speedup reaches this factor (CI gate; skipped with a warning below 4 CPUs; 0 disables)")
		traceDir = fs.String("trace-dir", "", "record causal request spans and write per-arm flight-recorder dumps under this directory (subdir per arm); feed them to traceview")
		traceSmp = fs.Int("trace-sample", 1, "with -trace-dir, sample one in this many client requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("consload: n = %d, need at least 2", *n)
	}
	if *dur <= 0 || *inflight <= 0 || *reps <= 0 {
		return fmt.Errorf("consload: dur, inflight and reps must be positive")
	}
	if *groups < 0 {
		return fmt.Errorf("consload: -groups %d must be >= 0", *groups)
	}
	if *mingroup > 0 && *groups < 1 {
		return fmt.Errorf("consload: -mingroupspeedup requires -groups")
	}

	rep := report{
		Harness: "consload", N: *n, DurSec: dur.Seconds(), Reps: *reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	type loadArm struct {
		name          string
		batch, window int
		lease         time.Duration
		readFrac      float64
		groups        int
	}
	arms := []loadArm{
		{name: "baseline", batch: 1, window: 1},
		{name: "batched", batch: *batch, window: *window},
	}
	if *reads > 0 {
		if *reads >= 1 {
			return fmt.Errorf("consload: -reads %v must be in (0, 1)", *reads)
		}
		arms = append(arms, loadArm{name: "reads", batch: *batch, window: *window, lease: *lease, readFrac: *reads})
	}
	if *groups > 0 {
		arms = append(arms, loadArm{name: "sharded", batch: *batch, window: *window, groups: *groups})
	}
	for _, arm := range arms {
		var best result
		for i := 0; i < *reps; i++ {
			// Profiles are captured on the final rep only, covering just
			// the sustained load window (probe and lease warmup excluded).
			cpuP, memP, traceP := "", "", ""
			if i == *reps-1 {
				cpuP, memP = profPath(*profile, "cpu", arm.name), profPath(*memprof, "mem", arm.name)
				if *traceDir != "" {
					// Dump names restart per Set; a subdir per arm keeps
					// the arms' flight recorders from clobbering each other.
					traceP = filepath.Join(*traceDir, arm.name)
				}
			}
			var r result
			var err error
			if arm.groups > 0 {
				r, err = runSharded(arm.name, *n, arm.groups, *seed+int64(i), arm.batch, arm.window, *inflight, *dur, *drive, cpuP, memP)
			} else {
				r, err = runOne(arm.name, *n, *seed+int64(i), arm.batch, arm.window, *inflight, *dur, *drive, arm.lease, arm.readFrac, cpuP, memP, traceP, *traceSmp)
			}
			if err != nil {
				return err
			}
			if i == 0 || r.PeakPerSec > best.PeakPerSec {
				best = r
			}
		}
		rep.Runs = append(rep.Runs, best)
		fmt.Fprintf(out, "consload: %-8s batch=%-3d window=%-2d  %8.0f ops/sec (peak %.0f)  %6.2f msgs/cmd  %7.1f B/cmd  (%d applied in %.2fs, %d dropped)\n",
			best.Name, best.BatchMax, best.Window, best.AppliedPerSec, best.PeakPerSec, best.MsgsPerCmd, best.BytesPerCmd, best.Applied, best.ElapsedSec, best.Dropped)
		if arm.readFrac > 0 {
			fmt.Fprintf(out, "consload: %-8s reads %8.0f/sec (local %d, fallback %d)  %0.4f msgs/read  read p50 %v p99 %v\n",
				"", best.ReadsPerSec, best.LocalReads, best.FallbackReads, best.MsgsPerRead,
				time.Duration(best.ReadP50NS), time.Duration(best.ReadP99NS))
		}
		if arm.groups > 0 {
			fmt.Fprintf(out, "consload: %-8s groups=%d per-group applied %v  conns %d dials %d links %d\n",
				"", best.Groups, best.AppliedPerGroup, best.OpenConns, best.Dials, best.ActiveLinks)
		}
	}

	// Named speedups: every pairwise ratio keyed by name, so nothing
	// downstream greps positional fields.
	peaks := make(map[string]float64, len(rep.Runs))
	for _, r := range rep.Runs {
		peaks[r.Name] = r.PeakPerSec
	}
	rep.Speedups = make(map[string]float64)
	if base := peaks["baseline"]; base > 0 {
		rep.Speedups["batched/baseline"] = peaks["batched"] / base
	}
	if base := peaks["batched"]; base > 0 {
		if v, ok := peaks["reads"]; ok {
			rep.Speedups["reads/batched"] = v / base
		}
		if v, ok := peaks["sharded"]; ok {
			rep.Speedups["sharded/batched"] = v / base
		}
	}
	rep.Speedup = rep.Speedups["batched/baseline"]
	for _, k := range []string{"batched/baseline", "sharded/batched", "reads/batched"} {
		if v, ok := rep.Speedups[k]; ok {
			fmt.Fprintf(out, "consload: speedup %-16s %.1fx\n", k, v)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "consload: wrote %s\n", *jsonPath)
	}
	for _, r := range rep.Runs {
		if r.Applied == 0 {
			return fmt.Errorf("consload: run %q applied nothing — engine or transport broken", r.Name)
		}
	}
	if *minspeed > 0 && rep.Speedup < *minspeed {
		return fmt.Errorf("consload: batched/baseline speedup %.2fx below required %.2fx", rep.Speedup, *minspeed)
	}
	if *mingroup > 0 {
		if runtime.NumCPU() < 4 {
			fmt.Fprintf(out, "consload: WARNING: %d CPUs — skipping the -mingroupspeedup %.1fx gate; the sharded engine needs >= 4 cores to show scaling (run make bench-consensus-mc on a multi-core box)\n",
				runtime.NumCPU(), *mingroup)
		} else if v := rep.Speedups["sharded/batched"]; v < *mingroup {
			return fmt.Errorf("consload: sharded/batched speedup %.2fx below required %.2fx", v, *mingroup)
		}
	}
	return nil
}

// profPath derives the per-arm profile path from the flag's base path:
// ("prof.pprof", "cpu", "sharded") → "prof-cpu-sharded.pprof" when both
// cpu and mem profiles share a base, or just the arm suffix when the base
// already names the kind ("cpu.pprof" → "cpu-sharded.pprof").
func profPath(base, kind, arm string) string {
	if base == "" {
		return ""
	}
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	if !strings.Contains(stem, kind) {
		arm = kind + "-" + arm
	}
	return stem + "-" + arm + ext
}

// readLoop is the client-side read bookkeeping for the reads arm: a
// closed loop of chunked ReadReqMsgs with per-chunk latency tracking.
// Submission runs on the load loop; completion runs on the origin
// replica's node loop via the OnReadReply hook.
type readLoop struct {
	mu      sync.Mutex
	sent    map[uint64]time.Time // chunk base seq → submit time
	nextSeq uint64
	lat     *telemetry.Histogram

	submitted atomic.Int64 // reads submitted (chunk count × readChunk)
	answered  atomic.Int64 // reads answered
	lost      atomic.Int64 // reads written off after chunkTimeout
}

// chunkTimeout writes off an unanswered chunk so a dropped frame can
// never wedge the closed loop.
const chunkTimeout = time.Second

func newReadLoop() *readLoop {
	return &readLoop{sent: make(map[uint64]time.Time), nextSeq: 1, lat: telemetry.NewHistogram("read_latency", 1)}
}

// onReply is the OnReadReply hook body.
func (rl *readLoop) onReply(m rsm.ReadReplyMsg) {
	rl.mu.Lock()
	t0, ok := rl.sent[m.Seq]
	if ok {
		delete(rl.sent, m.Seq)
	}
	rl.mu.Unlock()
	if ok {
		rl.lat.Record(0, time.Since(t0))
		rl.answered.Add(int64(m.Count))
	}
}

// outstanding counts unanswered chunks, writing off any older than
// chunkTimeout.
func (rl *readLoop) outstanding() int {
	now := time.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	for seq, t0 := range rl.sent {
		if now.Sub(t0) > chunkTimeout {
			delete(rl.sent, seq)
			rl.lost.Add(readChunk)
		}
	}
	return len(rl.sent)
}

// next registers one chunk and returns the request to inject.
func (rl *readLoop) next(origin node.ID) rsm.ReadReqMsg {
	rl.mu.Lock()
	seq := rl.nextSeq
	rl.nextSeq += readChunk
	rl.sent[seq] = time.Now()
	rl.mu.Unlock()
	rl.submitted.Add(readChunk)
	return rsm.ReadReqMsg{Seq: seq, Count: readChunk, Origin: origin}
}

// sample is one throughput observation: cumulative served operations at t.
type sample struct {
	t time.Time
	c int
}

// peakRate returns the best served-ops rate over any >=250ms span of the
// samples. On one-core boxes whole-run means are hostage to scheduler
// regimes; the peak window reads the engine's demonstrated capacity.
func peakRate(samples []sample) float64 {
	var peak float64
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			span := samples[j].t.Sub(samples[i].t)
			if span < 250*time.Millisecond {
				continue
			}
			if rate := float64(samples[j].c-samples[i].c) / span.Seconds(); rate > peak {
				peak = rate
			}
			break // longer spans from i only dilute the window
		}
	}
	return peak
}

// startCPUProfile begins a CPU profile into path (no-op on ""), returning
// a stop func. Started after probe/lease warmup so the profile covers only
// the sustained load window.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile dumps a post-GC heap profile to path (no-op on "").
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runOne boots a fresh TCP cluster with the given engine knobs, drives the
// closed loop for dur, and measures from first submit to drain. When
// readFrac > 0 the loop mixes chunked reads with the writes at the given
// ratio and a trailing pure-read window measures msgs-per-read.
func runOne(name string, n int, seed int64, batchMax, window, inflight int, dur, driveInterval, lease time.Duration, readFrac float64, cpuProf, memProf, traceDir string, traceSample int) (result, error) {
	// Flight recorder: nil without -trace-dir, and every method on a nil
	// Set no-ops, so the measured path stays byte-for-byte the untraced one.
	var tset *tracing.Set
	if traceDir != "" {
		tset = tracing.New(tracing.Config{Procs: n, Dir: traceDir, SampleEvery: traceSample})
	}
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
		logs[i] = rsm.New(dets[i], rsm.Config{
			DriveInterval: driveInterval,
			BatchMax:      batchMax,
			Window:        window,
			Lease:         lease,
			Tracer:        tset.Tracer(i),
		})
		autos[i] = node.Compose(dets[i], logs[i])
		dets[i].History().AddNotify(tset.WatchLeader(i))
	}
	var reads *readLoop
	if readFrac > 0 {
		reads = newReadLoop()
		for i := range logs {
			logs[i].OnReadReply(reads.onReply)
		}
	}
	// The ingress link carries the request flood AND that follower's
	// consensus replies; size the queue above the closed-loop cap so load
	// can never crowd out protocol traffic.
	c, err := transport.NewTCPCluster(transport.Config{
		N: n, Seed: seed, Quiet: true, SendQueue: 2*inflight + 1024,
		Observer: tset.Sink(),
	}, autos)
	if err != nil {
		return result{}, err
	}
	// The cluster clock's zero is its construction instant; anchor span
	// wall times there so client StartTrace stamps line up with env.Now().
	tset.SetWallStart(time.Now())
	c.Start()
	defer c.Stop()

	// Wait for one stable leader with a prepared ballot.
	leader, err := awaitLeader(dets, 10*time.Second)
	if err != nil {
		return result{}, err
	}
	// Clients enter through one follower — a single ingress link keeps the
	// request stream coalescing well — and throughput is measured at a
	// different non-leader replica.
	follower := (int(leader) + 1) % n
	observer := (int(leader) + 2) % n

	// Probe until the leader's ballot is prepared: requests that land
	// before phase 1 completes are dropped (clients re-forward), so retry
	// a probe command until it applies everywhere we measure.
	probeDeadline := time.Now().Add(10 * time.Second)
	for logs[observer].Recorder().Count() == 0 {
		if time.Now().After(probeDeadline) {
			return result{}, fmt.Errorf("consload: leader never served the probe command")
		}
		c.Inject(node.ID(follower), leader, rsm.RequestMsg{V: consensus.Value(name + "-probe")})
		time.Sleep(50 * time.Millisecond)
	}
	// With leases on, wait until the leader actually holds one (grants
	// ride the probe's accepts) so the measured run serves reads locally
	// from the first operation.
	if lease > 0 {
		leaseDeadline := time.Now().Add(5 * time.Second)
		for !logs[leader].LeaseHeld() {
			if time.Now().After(leaseDeadline) {
				return result{}, fmt.Errorf("consload: leader never acquired the read lease")
			}
			c.Inject(node.ID(follower), leader, rsm.RequestMsg{V: consensus.Value(name + "-lease-probe")})
			time.Sleep(20 * time.Millisecond)
		}
	}

	stopProf, err := startCPUProfile(cpuProf)
	if err != nil {
		return result{}, err
	}

	msgsBefore := kindTotal(c.Stats())
	bytesBefore := c.Stats().WireBytes()
	droppedBefore := c.Stats().Dropped()
	appliedBefore := logs[observer].Recorder().Count()

	// Closed loop: keep at most inflight commands outstanding, measured
	// against the observer's applied count. Requests enter through a
	// follower — the real client path — and are forwarded to the leader.
	// Applied counts are sampled as the run goes so peak sustained
	// throughput can be read off afterwards.
	// maxReadChunks caps outstanding read chunks — a separate closed loop
	// riding alongside the write loop.
	const maxReadChunks = 64
	begin := time.Now()
	deadline := begin.Add(dur)
	samples := []sample{{begin, 0}}
	submitted := 0
	for time.Now().Before(deadline) {
		applied := logs[observer].Recorder().Count() - appliedBefore
		served := applied
		if reads != nil {
			served += int(reads.answered.Load())
		}
		if now := time.Now(); now.Sub(samples[len(samples)-1].t) >= 50*time.Millisecond {
			samples = append(samples, sample{now, served})
		}
		// Keep reads flowing at readFrac of total operations: for a 90/10
		// mix, nine reads per write submitted.
		if reads != nil {
			target := int64(float64(submitted) * readFrac / (1 - readFrac))
			for reads.submitted.Load() < target && reads.outstanding() < maxReadChunks {
				c.Inject(node.ID(follower), leader, reads.next(node.ID(follower)))
			}
		}
		room := inflight - (submitted - applied)
		if room <= 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if room > 64 {
			room = 64 // bursts bounded below the send queue
		}
		// The client batches its queue into request envelopes of the
		// engine's batch size — the request hop amortizes exactly like
		// phase 2 does (BatchRequest of one command is a plain request).
		chunkMax := logs[0].Config().BatchMax
		for room > 0 {
			chunk := chunkMax
			if chunk > room {
				chunk = room
			}
			cmds := make([]consensus.Value, chunk)
			for k := range cmds {
				cmds[k] = consensus.Value(fmt.Sprintf("%s-%d", name, submitted))
				submitted++
			}
			// Client-side trace ingress: a sampled request envelope carries
			// its context on the wire, and the root "request" span's start
			// is the submit instant.
			req := node.Message(rsm.BatchRequest(cmds))
			if ctx := tset.Tracer(follower).StartTrace(tset.Stamp(), "request"); ctx.Valid() {
				req = tracing.Wrap{Ctx: ctx, Inner: req}
			}
			c.Inject(node.ID(follower), leader, req)
			room -= chunk
		}
		runtime.Gosched() // single-core boxes: let the stations work the burst
	}
	// Drain: wait until the observer's applied count stops moving (lost
	// requests — e.g. a queue overflow — are simply not counted).
	last, lastMove := logs[observer].Recorder().Count(), time.Now()
	for time.Since(lastMove) < time.Second && last-appliedBefore < submitted {
		time.Sleep(10 * time.Millisecond)
		if cur := logs[observer].Recorder().Count(); cur > last {
			last, lastMove = cur, time.Now()
		}
	}
	stopProf()
	if err := writeHeapProfile(memProf); err != nil {
		return result{}, err
	}
	elapsed := lastMove.Sub(begin)
	applied := last - appliedBefore
	served := applied
	if reads != nil {
		served += int(reads.answered.Load())
	}
	samples = append(samples, sample{lastMove, served})
	msgs := kindTotal(c.Stats()) - msgsBefore
	wireBytes := c.Stats().WireBytes() - bytesBefore

	// Trailing pure-read window: with no writes in flight the only
	// consensus traffic is the read req/reply hops and idle lease
	// refreshes, so messages ÷ reads over this span is the zero-message
	// read-path claim, measured.
	var msgsPerRead float64
	if reads != nil {
		drainReads := time.Now().Add(time.Second)
		for reads.outstanding() > 0 && time.Now().Before(drainReads) {
			time.Sleep(5 * time.Millisecond)
		}
		msgsA, readsA := kindTotal(c.Stats()), reads.answered.Load()
		pureDeadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(pureDeadline) {
			for reads.outstanding() < maxReadChunks {
				c.Inject(node.ID(follower), leader, reads.next(node.ID(follower)))
			}
			time.Sleep(200 * time.Microsecond)
		}
		drainReads = time.Now().Add(time.Second)
		for reads.outstanding() > 0 && time.Now().Before(drainReads) {
			time.Sleep(5 * time.Millisecond)
		}
		if delta := reads.answered.Load() - readsA; delta > 0 {
			msgsPerRead = float64(kindTotal(c.Stats())-msgsA) / float64(delta)
		}
	}

	peak := peakRate(samples)

	r := result{
		Name:       name,
		BatchMax:   logs[0].Config().BatchMax,
		Window:     logs[0].Config().Window,
		Submitted:  submitted,
		Applied:    applied,
		ElapsedSec: elapsed.Seconds(),
		Msgs:       msgs,
		Dropped:    c.Stats().Dropped() - droppedBefore,
		PeakPerSec: peak,
	}
	if elapsed > 0 {
		r.AppliedPerSec = float64(applied) / elapsed.Seconds()
	}
	if r.PeakPerSec < r.AppliedPerSec {
		r.PeakPerSec = r.AppliedPerSec // short runs: the whole run is the window
	}
	if applied > 0 {
		r.MsgsPerCmd = float64(msgs) / float64(applied)
		r.BytesPerCmd = float64(wireBytes) / float64(applied)
	}
	if reads != nil {
		answeredMixed := int64(served - applied)
		r.LeaseSec = lease.Seconds()
		r.Reads = reads.answered.Load()
		// Sum over replicas: leadership (and with it the lease) can move
		// mid-run when the serving core starves heartbeats, and the new
		// leaseholder keeps serving forwarded reads locally.
		for i := range logs {
			r.LocalReads += logs[i].LocalReads()
			r.FallbackReads += logs[i].FallbackReads()
		}
		r.MsgsPerRead = msgsPerRead
		if elapsed > 0 {
			r.ReadsPerSec = float64(answeredMixed) / elapsed.Seconds()
		}
		lat := reads.lat.Snapshot()
		r.ReadP50NS = int64(lat.Quantile(0.50))
		r.ReadP99NS = int64(lat.Quantile(0.99))
	}
	if tset != nil {
		// Stop before the final dump (idempotent with the deferred Stop):
		// connection teardown drops in-flight frames, and those triggers
		// must not write dumps after the "final" one.
		c.Stop()
		path, err := tset.Final()
		if err != nil {
			return result{}, err
		}
		fmt.Printf("consload: %-8s %d anomaly dumps; final trace dump %s\n", name, tset.Triggered(), path)
	}
	return r, nil
}

// runSharded boots a fresh TCP cluster of n sharded processes — G
// independent consensus groups (internal/consensus/group) multiplexed over
// the shared per-peer links — and drives one closed write loop per group
// in parallel, each entering at its own group's physical leader (the id
// rotation spreads leaders across processes). Throughput is the aggregate
// applied count across groups; the run FAILS unless the cluster held
// exactly one TCP connection per directed peer pair, so the shared-socket
// property is part of the measurement, not a claim.
//
// Message accounting: every sharded frame carries the GROUP wrapper kind,
// so msgs-per-cmd counts KindGroup — the wrapped Omega heartbeats ride
// along in the numerator, which only makes the reported cost conservative.
func runSharded(name string, n, groups int, seed int64, batchMax, window, inflight int, dur, driveInterval time.Duration, cpuProf, memProf string) (result, error) {
	autos := make([]node.Automaton, n)
	dets := make([][]*core.Detector, n)
	logs := make([][]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = make([]*core.Detector, groups)
		logs[i] = make([]*rsm.Node, groups)
		i := i
		autos[i] = group.New(group.Config{
			Groups: groups,
			Build: func(g int) node.Automaton {
				dets[i][g] = core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
				logs[i][g] = rsm.New(dets[i][g], rsm.Config{
					DriveInterval: driveInterval,
					BatchMax:      batchMax,
					Window:        window,
					Group:         g,
				})
				return node.Compose(dets[i][g], logs[i][g])
			},
		})
	}
	c, err := transport.NewTCPCluster(transport.Config{
		N: n, Seed: seed, Quiet: true, SendQueue: 2*inflight + 1024,
	}, autos)
	if err != nil {
		return result{}, err
	}
	c.Start()
	defer func() {
		for _, a := range autos {
			a.(*group.Engine).Halt()
		}
	}()
	defer c.Stop()

	// Every group must stabilize: all processes agree on the group's
	// logical leader, which the rotation places on physical g mod n.
	leaderPhys := make([]node.ID, groups)
	follower := make([]node.ID, groups)
	observer := make([]int, groups)
	for g := 0; g < groups; g++ {
		col := make([]*core.Detector, n)
		for i := 0; i < n; i++ {
			col[i] = dets[i][g]
		}
		l, err := awaitLeader(col, 10*time.Second)
		if err != nil {
			return result{}, fmt.Errorf("group %d: %w", g, err)
		}
		leaderPhys[g] = group.Physical(l, g, n)
		follower[g] = node.ID((int(leaderPhys[g]) + 1) % n)
		observer[g] = (int(leaderPhys[g]) + 2) % n
	}

	// Probe every group until its leader's ballot is prepared.
	probeDeadline := time.Now().Add(10 * time.Second)
	for g := 0; g < groups; g++ {
		for logs[observer[g]][g].Recorder().Count() == 0 {
			if time.Now().After(probeDeadline) {
				return result{}, fmt.Errorf("consload: group %d leader never served the probe command", g)
			}
			c.Inject(follower[g], leaderPhys[g], group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("%s-g%d-probe", name, g))}))
			time.Sleep(50 * time.Millisecond)
		}
	}

	stopProf, err := startCPUProfile(cpuProf)
	if err != nil {
		return result{}, err
	}

	msgsBefore := c.Stats().KindCount(group.KindGroup)
	bytesBefore := c.Stats().WireBytes()
	droppedBefore := c.Stats().Dropped()
	appliedBefore := make([]int, groups)
	for g := range appliedBefore {
		appliedBefore[g] = logs[observer[g]][g].Recorder().Count()
	}
	appliedByGroup := func(g int) int {
		return logs[observer[g]][g].Recorder().Count() - appliedBefore[g]
	}
	appliedNow := func() int {
		total := 0
		for g := 0; g < groups; g++ {
			total += appliedByGroup(g)
		}
		return total
	}

	// One closed loop per group on its own goroutine — the multi-core
	// ingress the sharded engine exists for. The global inflight budget is
	// split evenly across groups.
	perCap := inflight / groups
	if perCap < 1 {
		perCap = 1
	}
	begin := time.Now()
	loadDeadline := begin.Add(dur)
	submitted := make([]int, groups)
	var wg sync.WaitGroup
	wg.Add(groups)
	for g := 0; g < groups; g++ {
		go func(g int) {
			defer wg.Done()
			sub := 0
			chunkMax := logs[0][g].Config().BatchMax
			for time.Now().Before(loadDeadline) {
				room := perCap - (sub - appliedByGroup(g))
				if room <= 0 {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if room > 64 {
					room = 64 // bursts bounded below the send queue
				}
				for room > 0 {
					chunk := chunkMax
					if chunk > room {
						chunk = room
					}
					cmds := make([]consensus.Value, chunk)
					for k := range cmds {
						cmds[k] = consensus.Value(fmt.Sprintf("%s-g%d-%d", name, g, sub))
						sub++
					}
					c.Inject(follower[g], leaderPhys[g], group.Wrap(g, rsm.BatchRequest(cmds)))
					room -= chunk
				}
				runtime.Gosched()
			}
			submitted[g] = sub
		}(g)
	}

	// Aggregate sampler for the peak window, on the main goroutine.
	samples := []sample{{begin, 0}}
	for time.Now().Before(loadDeadline) {
		time.Sleep(50 * time.Millisecond)
		samples = append(samples, sample{time.Now(), appliedNow()})
	}
	wg.Wait()
	totalSubmitted := 0
	for _, s := range submitted {
		totalSubmitted += s
	}

	// Drain: wait until the aggregate applied count stops moving.
	last, lastMove := appliedNow(), time.Now()
	for time.Since(lastMove) < time.Second && last < totalSubmitted {
		time.Sleep(10 * time.Millisecond)
		if cur := appliedNow(); cur > last {
			last, lastMove = cur, time.Now()
		}
	}
	stopProf()
	if err := writeHeapProfile(memProf); err != nil {
		return result{}, err
	}
	elapsed := lastMove.Sub(begin)
	samples = append(samples, sample{lastMove, last})
	msgs := c.Stats().KindCount(group.KindGroup) - msgsBefore
	wireBytes := c.Stats().WireBytes() - bytesBefore

	// The shared-socket assertion, from counters: G groups' frames rode
	// exactly n*(n-1) sockets, each dialed once, spanning exactly the full
	// mesh of directed links.
	wantConns := n * (n - 1)
	if got := c.OpenConns(); got != wantConns {
		return result{}, fmt.Errorf("consload: sharded cluster holds %d open conns, want %d — groups opened extra sockets", got, wantConns)
	}
	if got := c.Dials(); got != uint64(wantConns) {
		return result{}, fmt.Errorf("consload: sharded cluster dialed %d times, want %d", got, wantConns)
	}

	r := result{
		Name:        name,
		Groups:      groups,
		BatchMax:    logs[0][0].Config().BatchMax,
		Window:      logs[0][0].Config().Window,
		Submitted:   totalSubmitted,
		Applied:     last,
		ElapsedSec:  elapsed.Seconds(),
		Msgs:        msgs,
		Dropped:     c.Stats().Dropped() - droppedBefore,
		PeakPerSec:  peakRate(samples),
		OpenConns:   c.OpenConns(),
		Dials:       c.Dials(),
		ActiveLinks: c.Stats().LinksUsedSince(0),
	}
	for g := 0; g < groups; g++ {
		r.AppliedPerGroup = append(r.AppliedPerGroup, appliedByGroup(g))
	}
	if elapsed > 0 {
		r.AppliedPerSec = float64(last) / elapsed.Seconds()
	}
	if r.PeakPerSec < r.AppliedPerSec {
		r.PeakPerSec = r.AppliedPerSec // short runs: the whole run is the window
	}
	if last > 0 {
		r.MsgsPerCmd = float64(msgs) / float64(last)
		r.BytesPerCmd = float64(wireBytes) / float64(last)
	}
	return r, nil
}

// awaitLeader blocks until every detector's history agrees on one leader.
func awaitLeader(dets []*core.Detector, bound time.Duration) (node.ID, error) {
	deadline := time.Now().Add(bound)
	for time.Now().Before(deadline) {
		leader := node.None
		ok := true
		for _, d := range dets {
			l := d.History().Current()
			if l == node.None || (leader != node.None && l != leader) {
				ok = false
				break
			}
			leader = l
		}
		if ok {
			return leader, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return node.None, fmt.Errorf("consload: no stable leader within %v", bound)
}

func kindTotal(s interface{ KindCount(string) uint64 }) uint64 {
	var total uint64
	for _, k := range rsmKinds {
		total += s.KindCount(k)
	}
	return total
}
