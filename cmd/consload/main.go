// Command consload is a throughput harness for the layered consensus
// engine over a live loopback TCP cluster: real sockets, real wire codec,
// real Omega detectors — the path production code runs. It drives a
// closed-loop client against the elected leader and reports decided
// commands per second, consensus messages per command, and wire bytes per
// command.
//
// By default it runs the comparison the engine exists for: a
// single-command baseline (-batch 1 -window 1 — one instance in flight,
// one command per instance) against the batched + pipelined configuration
// (defaults BatchMax 16, Window 8), and prints the speedup.
//
// Usage examples:
//
//	consload                          # baseline vs batched, 3s each
//	consload -n 5 -dur 5s -json BENCH_consensus.json
//	consload -batch 4 -window 2      # tune the batched arm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// rsmKinds are the replicated-log message kinds, counted so Omega
// heartbeats don't pollute the per-command cost. Read requests/replies
// and lease grants/acks count too: the msgs-per-read claim must survive
// the read path's own traffic.
var rsmKinds = []string{
	rsm.KindRequest, rsm.KindPrepare, rsm.KindPromise, rsm.KindNack,
	rsm.KindAccept, rsm.KindAccepted, rsm.KindDecide, rsm.KindLearn,
	rsm.KindLeaseGrant, rsm.KindLeaseAck, rsm.KindReadReq, rsm.KindReadReply,
}

// readChunk is how many sequence numbers one injected ReadReqMsg covers —
// the client-side analogue of command batching: one request/reply pair
// amortized over readChunk reads.
const readChunk = 64

// result is one run's measurement, marshalled into BENCH_consensus.json.
// For the reads arm PeakPerSec covers total served operations (applied
// writes + answered reads) and the read-specific fields are populated.
type result struct {
	Name          string  `json:"name"`
	BatchMax      int     `json:"batch_max"`
	Window        int     `json:"window"`
	Submitted     int     `json:"submitted"`
	Applied       int     `json:"applied"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	AppliedPerSec float64 `json:"applied_per_sec"`
	PeakPerSec    float64 `json:"peak_applied_per_sec"`
	Msgs          uint64  `json:"consensus_msgs"`
	MsgsPerCmd    float64 `json:"msgs_per_cmd"`
	BytesPerCmd   float64 `json:"wire_bytes_per_cmd"`
	Dropped       uint64  `json:"dropped_frames"`

	LeaseSec      float64 `json:"lease_sec,omitempty"`
	Reads         int64   `json:"reads,omitempty"`
	ReadsPerSec   float64 `json:"reads_per_sec,omitempty"`
	LocalReads    uint64  `json:"reads_local,omitempty"`
	FallbackReads uint64  `json:"reads_fallback,omitempty"`
	// MsgsPerRead is measured over a trailing pure-read window: consensus
	// messages (including lease refreshes and the read req/reply hops)
	// divided by reads answered, with no writes in flight.
	MsgsPerRead float64 `json:"msgs_per_read,omitempty"`
	ReadP50NS   int64   `json:"read_latency_p50_ns,omitempty"`
	ReadP99NS   int64   `json:"read_latency_p99_ns,omitempty"`
}

type report struct {
	Harness    string   `json:"harness"`
	N          int      `json:"n"`
	DurSec     float64  `json:"dur_sec"`
	Reps       int      `json:"reps"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Runs       []result `json:"runs"`
	Speedup    float64  `json:"speedup"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("consload", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 3, "number of replicas")
		dur      = fs.Duration("dur", 3*time.Second, "load window per run")
		seed     = fs.Int64("seed", 1, "transport randomness seed")
		batch    = fs.Int("batch", 0, "batched arm's BatchMax (0 = engine default)")
		window   = fs.Int("window", 0, "batched arm's pipelining window (0 = engine default)")
		inflight = fs.Int("inflight", 1024, "closed-loop cap on outstanding commands")
		drive    = fs.Duration("drive", 5*time.Millisecond, "engine drive tick (partial-batch flush bound)")
		reps     = fs.Int("reps", 1, "runs per arm; the best run is reported (damps single-core scheduler noise)")
		jsonPath = fs.String("json", "", "write the machine-readable report to this path")
		profile  = fs.String("cpuprofile", "", "write a CPU profile of the load runs to this path")
		reads    = fs.Float64("reads", 0, "run a third arm with this fraction of operations as reads (e.g. 0.9); 0 disables it")
		lease    = fs.Duration("lease", 300*time.Millisecond, "leader read lease for the reads arm")
		minspeed = fs.Float64("minspeedup", 0, "fail unless batched/baseline speedup reaches this factor (CI gate; 0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("consload: n = %d, need at least 2", *n)
	}
	if *dur <= 0 || *inflight <= 0 || *reps <= 0 {
		return fmt.Errorf("consload: dur, inflight and reps must be positive")
	}

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Harness: "consload", N: *n, DurSec: dur.Seconds(), Reps: *reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	type loadArm struct {
		name          string
		batch, window int
		lease         time.Duration
		readFrac      float64
	}
	arms := []loadArm{
		{name: "baseline", batch: 1, window: 1},
		{name: "batched", batch: *batch, window: *window},
	}
	if *reads > 0 {
		if *reads >= 1 {
			return fmt.Errorf("consload: -reads %v must be in (0, 1)", *reads)
		}
		arms = append(arms, loadArm{name: "reads", batch: *batch, window: *window, lease: *lease, readFrac: *reads})
	}
	for _, arm := range arms {
		var best result
		for i := 0; i < *reps; i++ {
			r, err := runOne(arm.name, *n, *seed+int64(i), arm.batch, arm.window, *inflight, *dur, *drive, arm.lease, arm.readFrac)
			if err != nil {
				return err
			}
			if r.PeakPerSec > best.PeakPerSec {
				best = r
			}
		}
		rep.Runs = append(rep.Runs, best)
		fmt.Fprintf(out, "consload: %-8s batch=%-3d window=%-2d  %8.0f ops/sec (peak %.0f)  %6.2f msgs/cmd  %7.1f B/cmd  (%d applied in %.2fs, %d dropped)\n",
			best.Name, best.BatchMax, best.Window, best.AppliedPerSec, best.PeakPerSec, best.MsgsPerCmd, best.BytesPerCmd, best.Applied, best.ElapsedSec, best.Dropped)
		if arm.readFrac > 0 {
			fmt.Fprintf(out, "consload: %-8s reads %8.0f/sec (local %d, fallback %d)  %0.4f msgs/read  read p50 %v p99 %v\n",
				"", best.ReadsPerSec, best.LocalReads, best.FallbackReads, best.MsgsPerRead,
				time.Duration(best.ReadP50NS), time.Duration(best.ReadP99NS))
		}
	}
	if base := rep.Runs[0].PeakPerSec; base > 0 {
		rep.Speedup = rep.Runs[1].PeakPerSec / base
	}
	fmt.Fprintf(out, "consload: batched/baseline speedup %.1fx\n", rep.Speedup)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "consload: wrote %s\n", *jsonPath)
	}
	for _, r := range rep.Runs {
		if r.Applied == 0 {
			return fmt.Errorf("consload: run %q applied nothing — engine or transport broken", r.Name)
		}
	}
	if *minspeed > 0 && rep.Speedup < *minspeed {
		return fmt.Errorf("consload: batched/baseline speedup %.2fx below required %.2fx", rep.Speedup, *minspeed)
	}
	return nil
}

// readLoop is the client-side read bookkeeping for the reads arm: a
// closed loop of chunked ReadReqMsgs with per-chunk latency tracking.
// Submission runs on the load loop; completion runs on the origin
// replica's node loop via the OnReadReply hook.
type readLoop struct {
	mu      sync.Mutex
	sent    map[uint64]time.Time // chunk base seq → submit time
	nextSeq uint64
	lat     *telemetry.Histogram

	submitted atomic.Int64 // reads submitted (chunk count × readChunk)
	answered  atomic.Int64 // reads answered
	lost      atomic.Int64 // reads written off after chunkTimeout
}

// chunkTimeout writes off an unanswered chunk so a dropped frame can
// never wedge the closed loop.
const chunkTimeout = time.Second

func newReadLoop() *readLoop {
	return &readLoop{sent: make(map[uint64]time.Time), nextSeq: 1, lat: telemetry.NewHistogram("read_latency", 1)}
}

// onReply is the OnReadReply hook body.
func (rl *readLoop) onReply(m rsm.ReadReplyMsg) {
	rl.mu.Lock()
	t0, ok := rl.sent[m.Seq]
	if ok {
		delete(rl.sent, m.Seq)
	}
	rl.mu.Unlock()
	if ok {
		rl.lat.Record(0, time.Since(t0))
		rl.answered.Add(int64(m.Count))
	}
}

// outstanding counts unanswered chunks, writing off any older than
// chunkTimeout.
func (rl *readLoop) outstanding() int {
	now := time.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	for seq, t0 := range rl.sent {
		if now.Sub(t0) > chunkTimeout {
			delete(rl.sent, seq)
			rl.lost.Add(readChunk)
		}
	}
	return len(rl.sent)
}

// next registers one chunk and returns the request to inject.
func (rl *readLoop) next(origin node.ID) rsm.ReadReqMsg {
	rl.mu.Lock()
	seq := rl.nextSeq
	rl.nextSeq += readChunk
	rl.sent[seq] = time.Now()
	rl.mu.Unlock()
	rl.submitted.Add(readChunk)
	return rsm.ReadReqMsg{Seq: seq, Count: readChunk, Origin: origin}
}

// runOne boots a fresh TCP cluster with the given engine knobs, drives the
// closed loop for dur, and measures from first submit to drain. When
// readFrac > 0 the loop mixes chunked reads with the writes at the given
// ratio and a trailing pure-read window measures msgs-per-read.
func runOne(name string, n int, seed int64, batchMax, window, inflight int, dur, driveInterval, lease time.Duration, readFrac float64) (result, error) {
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
		logs[i] = rsm.New(dets[i], rsm.Config{
			DriveInterval: driveInterval,
			BatchMax:      batchMax,
			Window:        window,
			Lease:         lease,
		})
		autos[i] = node.Compose(dets[i], logs[i])
	}
	var reads *readLoop
	if readFrac > 0 {
		reads = newReadLoop()
		for i := range logs {
			logs[i].OnReadReply(reads.onReply)
		}
	}
	// The ingress link carries the request flood AND that follower's
	// consensus replies; size the queue above the closed-loop cap so load
	// can never crowd out protocol traffic.
	c, err := transport.NewTCPCluster(transport.Config{
		N: n, Seed: seed, Quiet: true, SendQueue: 2*inflight + 1024,
	}, autos)
	if err != nil {
		return result{}, err
	}
	c.Start()
	defer c.Stop()

	// Wait for one stable leader with a prepared ballot.
	leader, err := awaitLeader(dets, 10*time.Second)
	if err != nil {
		return result{}, err
	}
	// Clients enter through one follower — a single ingress link keeps the
	// request stream coalescing well — and throughput is measured at a
	// different non-leader replica.
	follower := (int(leader) + 1) % n
	observer := (int(leader) + 2) % n

	// Probe until the leader's ballot is prepared: requests that land
	// before phase 1 completes are dropped (clients re-forward), so retry
	// a probe command until it applies everywhere we measure.
	probeDeadline := time.Now().Add(10 * time.Second)
	for logs[observer].Recorder().Count() == 0 {
		if time.Now().After(probeDeadline) {
			return result{}, fmt.Errorf("consload: leader never served the probe command")
		}
		c.Inject(node.ID(follower), leader, rsm.RequestMsg{V: consensus.Value(name + "-probe")})
		time.Sleep(50 * time.Millisecond)
	}
	// With leases on, wait until the leader actually holds one (grants
	// ride the probe's accepts) so the measured run serves reads locally
	// from the first operation.
	if lease > 0 {
		leaseDeadline := time.Now().Add(5 * time.Second)
		for !logs[leader].LeaseHeld() {
			if time.Now().After(leaseDeadline) {
				return result{}, fmt.Errorf("consload: leader never acquired the read lease")
			}
			c.Inject(node.ID(follower), leader, rsm.RequestMsg{V: consensus.Value(name + "-lease-probe")})
			time.Sleep(20 * time.Millisecond)
		}
	}

	msgsBefore := kindTotal(c.Stats())
	bytesBefore := c.Stats().WireBytes()
	droppedBefore := c.Stats().Dropped()
	appliedBefore := logs[observer].Recorder().Count()

	// Closed loop: keep at most inflight commands outstanding, measured
	// against the observer's applied count. Requests enter through a
	// follower — the real client path — and are forwarded to the leader.
	// Applied counts are sampled as the run goes so peak sustained
	// throughput can be read off afterwards.
	type sample struct {
		t time.Time
		c int
	}
	// maxReadChunks caps outstanding read chunks — a separate closed loop
	// riding alongside the write loop.
	const maxReadChunks = 64
	begin := time.Now()
	deadline := begin.Add(dur)
	samples := []sample{{begin, 0}}
	submitted := 0
	for time.Now().Before(deadline) {
		applied := logs[observer].Recorder().Count() - appliedBefore
		served := applied
		if reads != nil {
			served += int(reads.answered.Load())
		}
		if now := time.Now(); now.Sub(samples[len(samples)-1].t) >= 50*time.Millisecond {
			samples = append(samples, sample{now, served})
		}
		// Keep reads flowing at readFrac of total operations: for a 90/10
		// mix, nine reads per write submitted.
		if reads != nil {
			target := int64(float64(submitted) * readFrac / (1 - readFrac))
			for reads.submitted.Load() < target && reads.outstanding() < maxReadChunks {
				c.Inject(node.ID(follower), leader, reads.next(node.ID(follower)))
			}
		}
		room := inflight - (submitted - applied)
		if room <= 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if room > 64 {
			room = 64 // bursts bounded below the send queue
		}
		// The client batches its queue into request envelopes of the
		// engine's batch size — the request hop amortizes exactly like
		// phase 2 does (BatchRequest of one command is a plain request).
		chunkMax := logs[0].Config().BatchMax
		for room > 0 {
			chunk := chunkMax
			if chunk > room {
				chunk = room
			}
			cmds := make([]consensus.Value, chunk)
			for k := range cmds {
				cmds[k] = consensus.Value(fmt.Sprintf("%s-%d", name, submitted))
				submitted++
			}
			c.Inject(node.ID(follower), leader, rsm.BatchRequest(cmds))
			room -= chunk
		}
		runtime.Gosched() // single-core boxes: let the stations work the burst
	}
	// Drain: wait until the observer's applied count stops moving (lost
	// requests — e.g. a queue overflow — are simply not counted).
	last, lastMove := logs[observer].Recorder().Count(), time.Now()
	for time.Since(lastMove) < time.Second && last-appliedBefore < submitted {
		time.Sleep(10 * time.Millisecond)
		if cur := logs[observer].Recorder().Count(); cur > last {
			last, lastMove = cur, time.Now()
		}
	}
	elapsed := lastMove.Sub(begin)
	applied := last - appliedBefore
	served := applied
	if reads != nil {
		served += int(reads.answered.Load())
	}
	samples = append(samples, sample{lastMove, served})
	msgs := kindTotal(c.Stats()) - msgsBefore
	wireBytes := c.Stats().WireBytes() - bytesBefore

	// Trailing pure-read window: with no writes in flight the only
	// consensus traffic is the read req/reply hops and idle lease
	// refreshes, so messages ÷ reads over this span is the zero-message
	// read-path claim, measured.
	var msgsPerRead float64
	if reads != nil {
		drainReads := time.Now().Add(time.Second)
		for reads.outstanding() > 0 && time.Now().Before(drainReads) {
			time.Sleep(5 * time.Millisecond)
		}
		msgsA, readsA := kindTotal(c.Stats()), reads.answered.Load()
		pureDeadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(pureDeadline) {
			for reads.outstanding() < maxReadChunks {
				c.Inject(node.ID(follower), leader, reads.next(node.ID(follower)))
			}
			time.Sleep(200 * time.Microsecond)
		}
		drainReads = time.Now().Add(time.Second)
		for reads.outstanding() > 0 && time.Now().Before(drainReads) {
			time.Sleep(5 * time.Millisecond)
		}
		if delta := reads.answered.Load() - readsA; delta > 0 {
			msgsPerRead = float64(kindTotal(c.Stats())-msgsA) / float64(delta)
		}
	}

	// Peak sustained throughput: the best rate over any ≥250ms span of
	// the run. On one-core boxes whole-run means are hostage to scheduler
	// regimes; the peak window reads the engine's demonstrated capacity.
	var peak float64
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			span := samples[j].t.Sub(samples[i].t)
			if span < 250*time.Millisecond {
				continue
			}
			if rate := float64(samples[j].c-samples[i].c) / span.Seconds(); rate > peak {
				peak = rate
			}
			break // longer spans from i only dilute the window
		}
	}

	r := result{
		Name:       name,
		BatchMax:   logs[0].Config().BatchMax,
		Window:     logs[0].Config().Window,
		Submitted:  submitted,
		Applied:    applied,
		ElapsedSec: elapsed.Seconds(),
		Msgs:       msgs,
		Dropped:    c.Stats().Dropped() - droppedBefore,
		PeakPerSec: peak,
	}
	if elapsed > 0 {
		r.AppliedPerSec = float64(applied) / elapsed.Seconds()
	}
	if r.PeakPerSec < r.AppliedPerSec {
		r.PeakPerSec = r.AppliedPerSec // short runs: the whole run is the window
	}
	if applied > 0 {
		r.MsgsPerCmd = float64(msgs) / float64(applied)
		r.BytesPerCmd = float64(wireBytes) / float64(applied)
	}
	if reads != nil {
		answeredMixed := int64(served - applied)
		r.LeaseSec = lease.Seconds()
		r.Reads = reads.answered.Load()
		// Sum over replicas: leadership (and with it the lease) can move
		// mid-run when the serving core starves heartbeats, and the new
		// leaseholder keeps serving forwarded reads locally.
		for i := range logs {
			r.LocalReads += logs[i].LocalReads()
			r.FallbackReads += logs[i].FallbackReads()
		}
		r.MsgsPerRead = msgsPerRead
		if elapsed > 0 {
			r.ReadsPerSec = float64(answeredMixed) / elapsed.Seconds()
		}
		lat := reads.lat.Snapshot()
		r.ReadP50NS = int64(lat.Quantile(0.50))
		r.ReadP99NS = int64(lat.Quantile(0.99))
	}
	return r, nil
}

// awaitLeader blocks until every detector's history agrees on one leader.
func awaitLeader(dets []*core.Detector, bound time.Duration) (node.ID, error) {
	deadline := time.Now().Add(bound)
	for time.Now().Before(deadline) {
		leader := node.None
		ok := true
		for _, d := range dets {
			l := d.History().Current()
			if l == node.None || (leader != node.None && l != leader) {
				ok = false
				break
			}
			leader = l
		}
		if ok {
			return leader, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return node.None, fmt.Errorf("consload: no stable leader within %v", bound)
}

func kindTotal(s interface{ KindCount(string) uint64 }) uint64 {
	var total uint64
	for _, k := range rsmKinds {
		total += s.KindCount(k)
	}
	return total
}
