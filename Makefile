GO ?= go

.PHONY: all build vet test test-race soak bench bench-micro bench-json bench-wire tables

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the live transports, the
# fault injector, the sharded observer sink they record into (plus the kind
# interner), the parallel sweep pool (its stress test hammers the
# work-claiming counter), the wire codec (which replays the committed
# FuzzEnvelopeRoundTrip seed corpus in testdata/), and the wireload
# throughput-harness smoke tests. -short trims the chaos soaks'
# wall-clock GST.
test-race:
	$(GO) test -race -short ./internal/transport/... ./internal/faultline/... ./internal/metrics/... ./internal/obs/... ./internal/sweep/... ./internal/wire/... ./cmd/wireload/

# Full chaos soak under the race detector: live UDP and TCP clusters
# through leader crash, asymmetric partition + heal, and pre-GST link
# chaos, with consensus safety checked at the end (see DESIGN.md §10).
soak:
	$(GO) test -race -count=1 -run 'ChaosSoak' -v ./internal/transport/
	$(GO) test -race -count=1 ./cmd/chaossoak/

# Full benchmark suite (experiment regeneration + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the per-message-path micro-benchmarks: observer sink recording and
# wire encode/decode. The SinkRecordSend and Wire*Encode benches must stay
# at 0 allocs/op.
bench-micro:
	$(GO) test -run '^$$' -bench 'SinkRecordSend|StatsRecordSendLegacy|Wire' -benchmem .

# Hot-path benchmarks as machine-readable JSON: the kernel event pool, the
# fabric send path, and the sweep pool. The kernel and fabric benches must
# stay at 0 allocs/op.
bench-json:
	$(GO) test -run '^$$' -bench 'KernelScheduleFire|KernelScheduleCancel|FabricSendSteadyState|SweepPool' -benchmem -json ./internal/sim ./internal/network ./internal/sweep > BENCH_sweep.json
	$(GO) test -run '^$$' -bench 'Envelope|TCPSend|UDPReceiveSteadyState' -benchmem -benchtime 3s -json ./internal/wire ./internal/transport > BENCH_wire.json

# Just the wire + live-transport benchmarks, human-readable. The batched
# TCP sender must stay >= 3x the per-frame baseline's msgs/sec, and the
# Envelope and UDPReceive benches must stay at 0 allocs/op. -benchtime 3s
# steadies the socket-bound TCP numbers.
bench-wire:
	$(GO) test -run '^$$' -bench 'Envelope|TCPSend|UDPReceiveSteadyState' -benchmem -benchtime 3s ./internal/wire ./internal/transport

# Regenerate EXPERIMENTS.md-style tables at full size.
tables:
	$(GO) run ./cmd/benchtables
