GO ?= go

.PHONY: all build vet test test-race bench bench-micro bench-json tables

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the live transports, the
# sharded observer sink they record into (plus the kind interner), and the
# parallel sweep pool (its stress test hammers the work-claiming counter).
test-race:
	$(GO) test -race ./internal/transport/... ./internal/metrics/... ./internal/obs/... ./internal/sweep/...

# Full benchmark suite (experiment regeneration + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the per-message-path micro-benchmarks: observer sink recording and
# wire encode/decode. The SinkRecordSend and Wire*Encode benches must stay
# at 0 allocs/op.
bench-micro:
	$(GO) test -run '^$$' -bench 'SinkRecordSend|StatsRecordSendLegacy|Wire' -benchmem .

# Hot-path benchmarks as machine-readable JSON: the kernel event pool, the
# fabric send path, and the sweep pool. The kernel and fabric benches must
# stay at 0 allocs/op.
bench-json:
	$(GO) test -run '^$$' -bench 'KernelScheduleFire|KernelScheduleCancel|FabricSendSteadyState|SweepPool' -benchmem -json ./internal/sim ./internal/network ./internal/sweep > BENCH_sweep.json

# Regenerate EXPERIMENTS.md-style tables at full size.
tables:
	$(GO) run ./cmd/benchtables
