GO ?= go

.PHONY: all build vet test test-race bench bench-micro tables

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages with real concurrency: the live transports and
# the sharded observer sink they record into (plus the kind interner).
test-race:
	$(GO) test -race ./internal/transport/... ./internal/metrics/... ./internal/obs/...

# Full benchmark suite (experiment regeneration + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the per-message-path micro-benchmarks: observer sink recording and
# wire encode/decode. The SinkRecordSend and Wire*Encode benches must stay
# at 0 allocs/op.
bench-micro:
	$(GO) test -run '^$$' -bench 'SinkRecordSend|StatsRecordSendLegacy|Wire' -benchmem .

# Regenerate EXPERIMENTS.md-style tables at full size.
tables:
	$(GO) run ./cmd/benchtables
