GO ?= go

.PHONY: all build vet test test-race soak recovery-soak telemetry-smoke trace-smoke bench bench-micro bench-json bench-wire bench-consensus bench-consensus-mc bench-durable tables

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check everything. Real concurrency lives in the live transports,
# the fault injector, the sharded observer sink and telemetry collector
# they record into, the parallel sweep pool, and the wireload harness —
# but the purely sequential packages are cheap under -race, so run the
# whole module rather than maintain a list. -short trims the chaos
# soaks' wall-clock GST.
test-race:
	$(GO) test -race -short ./...

# Full chaos soak under the race detector: live UDP and TCP clusters
# through leader crash, asymmetric partition + heal, and pre-GST link
# chaos, with consensus safety checked at the end (see DESIGN.md §10).
#
# With METRICS set (make soak METRICS=:8080) the soak instead runs as a
# watchable live cluster: the full TCP fault plan with the telemetry
# endpoint serving /metrics, /healthz and pprof on that address for the
# duration of the run (see README "watching a live cluster").
ifdef METRICS
soak:
	$(GO) run ./cmd/chaossoak -transport tcp -plan full -metrics-addr $(METRICS)
else
soak:
	$(GO) test -race -count=1 -run 'ChaosSoak' -v ./internal/transport/
	$(GO) test -race -count=1 ./cmd/chaossoak/
endif

# Kill -9 recovery soak under the race detector (DESIGN.md §15): the
# leader dies mid-batch, restarts from its write-ahead log, and must
# rejoin, catch up, and regain proposer eligibility; afterwards every
# WAL is reopened twice to check deterministic recovery and
# prefix-consistent applied sequences. The restart/rejoin transport
# tests ride along. The -groups run repeats the drill sharded: the killed
# replica hosts 4 groups, so 4 WAL directories must recover at once and
# the replay check runs per group.
recovery-soak:
	$(GO) test -race -count=1 -run 'TestRunRecoveryPlan|Restart' -v ./cmd/chaossoak/ ./internal/transport/
	$(GO) run ./cmd/chaossoak -transport mem -plan recovery -n 5 -fsync always
	$(GO) run ./cmd/chaossoak -transport mem -plan recovery -n 3 -groups 4

# Boot wireload with the telemetry endpoint, scrape /healthz and /metrics
# mid-run with curl, and let the run finish. /healthz reads 503 here by
# design: wireload's stations run no detector, so no leader agreement ever
# forms — the scrape proves the endpoint, not the election.
telemetry-smoke:
	$(GO) build -o /tmp/wireload-smoke ./cmd/wireload
	/tmp/wireload-smoke -transport tcp -dur 4s -metrics-addr 127.0.0.1:9109 & \
	pid=$$!; sleep 2; \
	curl -sS http://127.0.0.1:9109/healthz; \
	curl -fsS http://127.0.0.1:9109/metrics | grep -E 'omega_(sent_total|active_links|leader) ' ; \
	wait $$pid

# Full benchmark suite (experiment regeneration + substrate micro-benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the per-message-path micro-benchmarks: observer sink recording and
# wire encode/decode. The SinkRecordSend and Wire*Encode benches must stay
# at 0 allocs/op.
bench-micro:
	$(GO) test -run '^$$' -bench 'SinkRecordSend|StatsRecordSendLegacy|Wire' -benchmem .

# End-to-end tracing smoke (DESIGN.md §17): a traced consensus load run
# and a traced chaossoak leader-crash run, then traceview over both sets
# of flight-recorder dumps. -require-request gates on at least one
# complete request→queue→quorum→apply chain; -require-election gates on
# a captured leader election.
trace-smoke:
	$(GO) build -o /tmp/consload-trace ./cmd/consload
	$(GO) build -o /tmp/chaossoak-trace ./cmd/chaossoak
	$(GO) build -o /tmp/traceview-smoke ./cmd/traceview
	rm -rf /tmp/trace-smoke && mkdir -p /tmp/trace-smoke
	/tmp/consload-trace -n 3 -dur 2s -reps 1 -trace-dir /tmp/trace-smoke/consload
	/tmp/chaossoak-trace -transport tcp -plan crash -trace-dir /tmp/trace-smoke/soak
	/tmp/traceview-smoke -require-request /tmp/trace-smoke/consload/batched
	/tmp/traceview-smoke -require-election -chrome /tmp/trace-smoke/soak.chrome.json /tmp/trace-smoke/soak

# Hot-path benchmarks as machine-readable JSON: the kernel event pool, the
# fabric send path, the sweep pool, and the tracing tax (the disabled and
# sampled-out record paths must stay at 0 allocs/op). The kernel and
# fabric benches must stay at 0 allocs/op.
bench-json:
	$(GO) test -run '^$$' -bench 'KernelScheduleFire|KernelScheduleCancel|FabricSendSteadyState|SweepPool|Tracing' -benchmem -json ./internal/sim ./internal/network ./internal/sweep ./internal/tracing > BENCH_sweep.json
	$(GO) test -run '^$$' -bench 'Envelope|TCPSend|UDPReceiveSteadyState' -benchmem -benchtime 3s -json ./internal/wire ./internal/transport > BENCH_wire.json

# Just the wire + live-transport benchmarks, human-readable. The batched
# TCP sender must stay >= 3x the per-frame baseline's msgs/sec, and the
# Envelope and UDPReceive benches must stay at 0 allocs/op. -benchtime 3s
# steadies the socket-bound TCP numbers.
bench-wire:
	$(GO) test -run '^$$' -bench 'Envelope|TCPSend|UDPReceiveSteadyState' -benchmem -benchtime 3s ./internal/wire ./internal/transport

# Consensus engine throughput on loopback TCP: the single-command baseline
# (batch 1, window 1) against the batched + pipelined configuration, three
# runs per arm with the best kept. Writes BENCH_consensus.json; the
# batched arm's peak decided-commands/sec should be ≥5x the baseline's.
bench-consensus:
	$(GO) run ./cmd/consload -n 5 -dur 2s -reps 3 -reads 0.9 -json BENCH_consensus.json

# Multi-core rerun with the sharded arm: 4 consensus groups multiplexed
# over one TCP connection per directed peer pair, all cores enabled.
# Feeds the same BENCH_consensus.json (the report records num_cpu, so a
# sharded series from this target is distinguishable from a 1-core run).
# On >= 4 cores the sharded arm's aggregate peak should be >= 3x the
# single-group batched arm's.
bench-consensus-mc:
	GOMAXPROCS=$(shell nproc) $(GO) run ./cmd/consload -n 5 -dur 2s -reps 3 -reads 0.9 -groups 4 -json BENCH_consensus.json

# Durability cost surface as machine-readable JSON: WAL append ns/op and
# B/op per fsync policy (off / group64k / always), and recovery time vs
# log length. The append benches bound what a durable vote adds to the
# phase-2 path; the recovery benches bound restart downtime.
bench-durable:
	$(GO) test -run '^$$' -bench 'WALAppend|WALRecovery' -benchmem -json ./internal/durable > BENCH_durable.json

# Regenerate EXPERIMENTS.md-style tables at full size.
tables:
	$(GO) run ./cmd/benchtables
