package repro

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detector/source"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------
// Experiment benchmarks: one per table/figure (E1–E9). Each iteration
// regenerates the artifact on scaled-down sweeps; run `cmd/benchtables`
// for the full-size tables recorded in EXPERIMENTS.md.
// ---------------------------------------------------------------------

var benchOpts = experiments.Opts{Quick: true, Seeds: 1}

func BenchmarkE1SteadyStateMessages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1SteadyStateMessages(benchOpts)
	}
}

func BenchmarkE2ConvergenceSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2ConvergenceSeries(benchOpts)
	}
}

func BenchmarkE3StabilizationVsGST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3StabilizationVsGST(benchOpts)
	}
}

func BenchmarkE4CrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4CrashRecovery(benchOpts)
	}
}

func BenchmarkE5LinksUsed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5LinksUsed(benchOpts)
	}
}

func BenchmarkE6ConsensusCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6ConsensusCost(benchOpts)
	}
}

func BenchmarkE7RepeatedConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7RepeatedConsensus(benchOpts)
	}
}

func BenchmarkE8AssumptionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8AssumptionMatrix(experiments.Opts{Quick: true, Seeds: 1})
	}
}

func BenchmarkE9Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Ablations(benchOpts)
	}
}

func BenchmarkE10RelayedPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E10RelayedPaths(benchOpts)
	}
}

func BenchmarkE11FSourceBoundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11FSourceBoundary(experiments.Opts{Quick: true, Seeds: 1})
	}
}

func BenchmarkE12PiggybackAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E12PiggybackAblation(benchOpts)
	}
}

func BenchmarkE13PartitionHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E13PartitionHeal(benchOpts)
	}
}

func BenchmarkE14LeaseReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E14LeaseReads(benchOpts)
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkSimKernel measures raw event throughput of the discrete-event
// kernel (schedule + fire).
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	var tick func()
	remaining := b.N
	tick = func() {
		if remaining > 0 {
			remaining--
			k.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(0, tick)
	k.RunUntil(sim.TimeMax, nil)
}

// BenchmarkWireRoundTrip measures codec marshal+unmarshal of a typical
// heartbeat.
func BenchmarkWireRoundTrip(b *testing.B) {
	codec := wire.NewCodec()
	msg := core.LeaderMsg{Epoch: 123456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireVectorRoundTrip exercises the vector-carrying heartbeat of
// the gossiped-counter detector.
func BenchmarkWireVectorRoundTrip(b *testing.B) {
	codec := wire.NewCodec()
	msg := sourceAlive(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSinkRecordSend measures the steady-state observer record path:
// one pre-interned OnSend into a wrapped (full) send-log ring. This is the
// per-message instrumentation cost every simulated or live send pays; it
// must stay allocation-free.
func BenchmarkSinkRecordSend(b *testing.B) {
	const n, window = 8, 1024
	stats := metrics.NewMessageStatsWindow(n, window)
	kind := obs.Intern("LEADER")
	// Fill past the window so the ring is wrapped (steady state: evict in
	// place, never grow) before measurement starts.
	for i := 0; i < n*window+1; i++ {
		stats.OnSend(sim.Time(i), i%n, (i+1)%n, kind)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.OnSend(sim.Time(i), i%n, (i+1)%n, kind)
	}
}

// BenchmarkSinkRecordSendParallel measures the same path with every
// process recording from its own goroutine — the live-transport shape the
// sharding exists for.
func BenchmarkSinkRecordSendParallel(b *testing.B) {
	const n, window = 8, 1024
	stats := metrics.NewMessageStatsWindow(n, window)
	kind := obs.Intern("LEADER")
	for i := 0; i < n*window+1; i++ {
		stats.OnSend(sim.Time(i), i%n, (i+1)%n, kind)
	}
	var nextID atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		from := int(nextID.Add(1)-1) % n
		to := (from + 1) % n
		var t sim.Time
		for pb.Next() {
			t++
			stats.OnSend(t, from, to, kind)
		}
	})
}

// BenchmarkStatsRecordSendLegacy measures the string-kind compatibility
// wrapper (interner lookup included) for comparison with the pre-interned
// sink path.
func BenchmarkStatsRecordSendLegacy(b *testing.B) {
	const n, window = 8, 1024
	stats := metrics.NewMessageStatsWindow(n, window)
	for i := 0; i < n*window+1; i++ {
		stats.RecordSend(sim.Time(i), i%n, (i+1)%n, "LEADER")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.RecordSend(sim.Time(i), i%n, (i+1)%n, "LEADER")
	}
}

// BenchmarkWireHeartbeatEncode measures encoding the steady-state leader
// heartbeat into a reused buffer; with the pooled append-style path this
// must stay allocation-free.
func BenchmarkWireHeartbeatEncode(b *testing.B) {
	codec := wire.NewCodec()
	// Box the message once: the transports hold node.Message interfaces, so
	// the per-send cost being measured starts at the interface call.
	var msg node.Message = core.LeaderMsg{Epoch: 123456}
	buf, err := codec.MarshalAppend(nil, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = codec.MarshalAppend(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEnvelopeEncode measures the full datagram frame (sender
// header + heartbeat) the UDP transport writes per message.
func BenchmarkWireEnvelopeEncode(b *testing.B) {
	codec := wire.NewCodec()
	var msg node.Message = core.LeaderMsg{Epoch: 123456}
	buf, err := codec.MarshalEnvelopeAppend(nil, 3, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = codec.MarshalEnvelopeAppend(buf[:0], 3, msg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireHeartbeatDecode measures the receive half on its own.
func BenchmarkWireHeartbeatDecode(b *testing.B) {
	codec := wire.NewCodec()
	data, err := codec.Marshal(core.LeaderMsg{Epoch: 123456})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaderElection10 measures a full 10-process election to
// quiescence on the simulator.
func BenchmarkLeaderElection10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := scenario.Build(scenario.Config{
			N: 10, Seed: int64(i), Algorithm: scenario.AlgoCore, Regime: scenario.RegimeAllTimely,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(time.Second)
		if !sys.OmegaReport().Holds {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkSimulatedSecond40AllToAll measures simulating one virtual
// second of the heaviest workload in the suite (n=40 all-to-all).
func BenchmarkSimulatedSecond40AllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := scenario.Build(scenario.Config{
			N: 40, Seed: 1, Algorithm: scenario.AlgoAllToAll, Regime: scenario.RegimeAllTimely,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(time.Second)
	}
	// One virtual second of n=40 all-to-all is ~156k messages.
	b.ReportMetric(156000, "virtual-msgs/op")
}

// BenchmarkWorldMessagePath measures the end-to-end simulated send →
// deliver path including metrics accounting.
func BenchmarkWorldMessagePath(b *testing.B) {
	w, err := node.NewWorld(node.WorldConfig{N: 2, Seed: 1, DefaultLink: network.Timely(time.Microsecond)})
	if err != nil {
		b.Fatal(err)
	}
	sink := &benchSink{}
	w.SetAutomaton(0, sink)
	w.SetAutomaton(1, sink)
	w.Start()
	env := w.Env(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Send(1, benchMsg{})
		w.RunFor(2 * time.Microsecond)
	}
}

type benchMsg struct{}

func (benchMsg) Kind() string { return "BENCH" }

type benchSink struct{ got int }

func (s *benchSink) Start(node.Env)                {}
func (s *benchSink) Deliver(node.ID, node.Message) { s.got++ }
func (s *benchSink) Tick(string)                   {}

// sourceAlive builds a counter heartbeat of the given width.
func sourceAlive(n int) node.Message {
	counters := make([]uint64, n)
	for i := range counters {
		counters[i] = uint64(i) * 7
	}
	return source.NewAliveMsg(counters)
}

// Example regenerating the suite (kept out of the benchmark loop).
func ExampleRunExperiment() {
	if err := RunExperiment(io.Discard, "E5", ExperimentOpts{Quick: true, Seeds: 1}); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("ok")
	// Output: ok
}
