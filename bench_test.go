package repro

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detector/source"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------
// Experiment benchmarks: one per table/figure (E1–E9). Each iteration
// regenerates the artifact on scaled-down sweeps; run `cmd/benchtables`
// for the full-size tables recorded in EXPERIMENTS.md.
// ---------------------------------------------------------------------

var benchOpts = experiments.Opts{Quick: true, Seeds: 1}

func BenchmarkE1SteadyStateMessages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1SteadyStateMessages(benchOpts)
	}
}

func BenchmarkE2ConvergenceSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2ConvergenceSeries(benchOpts)
	}
}

func BenchmarkE3StabilizationVsGST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3StabilizationVsGST(benchOpts)
	}
}

func BenchmarkE4CrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4CrashRecovery(benchOpts)
	}
}

func BenchmarkE5LinksUsed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5LinksUsed(benchOpts)
	}
}

func BenchmarkE6ConsensusCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6ConsensusCost(benchOpts)
	}
}

func BenchmarkE7RepeatedConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7RepeatedConsensus(benchOpts)
	}
}

func BenchmarkE8AssumptionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8AssumptionMatrix(experiments.Opts{Quick: true, Seeds: 1})
	}
}

func BenchmarkE9Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Ablations(benchOpts)
	}
}

func BenchmarkE10RelayedPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E10RelayedPaths(benchOpts)
	}
}

func BenchmarkE11FSourceBoundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11FSourceBoundary(experiments.Opts{Quick: true, Seeds: 1})
	}
}

func BenchmarkE12PiggybackAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E12PiggybackAblation(benchOpts)
	}
}

func BenchmarkE13PartitionHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E13PartitionHeal(benchOpts)
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkSimKernel measures raw event throughput of the discrete-event
// kernel (schedule + fire).
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	var tick func()
	remaining := b.N
	tick = func() {
		if remaining > 0 {
			remaining--
			k.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(0, tick)
	k.RunUntil(sim.TimeMax, nil)
}

// BenchmarkWireRoundTrip measures codec marshal+unmarshal of a typical
// heartbeat.
func BenchmarkWireRoundTrip(b *testing.B) {
	codec := wire.NewCodec()
	msg := core.LeaderMsg{Epoch: 123456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireVectorRoundTrip exercises the vector-carrying heartbeat of
// the gossiped-counter detector.
func BenchmarkWireVectorRoundTrip(b *testing.B) {
	codec := wire.NewCodec()
	msg := sourceAlive(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaderElection10 measures a full 10-process election to
// quiescence on the simulator.
func BenchmarkLeaderElection10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := scenario.Build(scenario.Config{
			N: 10, Seed: int64(i), Algorithm: scenario.AlgoCore, Regime: scenario.RegimeAllTimely,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(time.Second)
		if !sys.OmegaReport().Holds {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkSimulatedSecond40AllToAll measures simulating one virtual
// second of the heaviest workload in the suite (n=40 all-to-all).
func BenchmarkSimulatedSecond40AllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := scenario.Build(scenario.Config{
			N: 40, Seed: 1, Algorithm: scenario.AlgoAllToAll, Regime: scenario.RegimeAllTimely,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(time.Second)
	}
	// One virtual second of n=40 all-to-all is ~156k messages.
	b.ReportMetric(156000, "virtual-msgs/op")
}

// BenchmarkWorldMessagePath measures the end-to-end simulated send →
// deliver path including metrics accounting.
func BenchmarkWorldMessagePath(b *testing.B) {
	w, err := node.NewWorld(node.WorldConfig{N: 2, Seed: 1, DefaultLink: network.Timely(time.Microsecond)})
	if err != nil {
		b.Fatal(err)
	}
	sink := &benchSink{}
	w.SetAutomaton(0, sink)
	w.SetAutomaton(1, sink)
	w.Start()
	env := w.Env(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Send(1, benchMsg{})
		w.RunFor(2 * time.Microsecond)
	}
}

type benchMsg struct{}

func (benchMsg) Kind() string { return "BENCH" }

type benchSink struct{ got int }

func (s *benchSink) Start(node.Env)                {}
func (s *benchSink) Deliver(node.ID, node.Message) { s.got++ }
func (s *benchSink) Tick(string)                   {}

// sourceAlive builds a counter heartbeat of the given width.
func sourceAlive(n int) node.Message {
	counters := make([]uint64, n)
	for i := range counters {
		counters[i] = uint64(i) * 7
	}
	return source.NewAliveMsg(counters)
}

// Example regenerating the suite (kept out of the benchmark loop).
func ExampleRunExperiment() {
	if err := RunExperiment(io.Discard, "E5", ExperimentOpts{Quick: true, Seeds: 1}); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("ok")
	// Output: ok
}
