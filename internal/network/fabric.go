package network

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DeliverFunc receives a payload at its destination.
type DeliverFunc func(from, to int, payload any)

// Fabric is the simulated network connecting n processes. Each of the n*(n-1)
// directed links has its own Profile; the fabric owns the global
// stabilization time (GST) that eventually-timely links refer to, and a
// "cut" overlay for injecting partitions on top of any profile.
//
// The send path is allocation-free in steady state: in-flight messages ride
// pooled delivery records (see delivery) instead of per-send closures, and
// SendKind takes a pre-interned kind id so no string is hashed.
type Fabric struct {
	kernel   *sim.Kernel
	n        int
	gst      sim.Time
	profiles []Profile
	cut      []bool
	sink     obs.Sink
	deliver  DeliverFunc

	// freeDeliveries is the delivery-record free list. The fabric is
	// single-threaded (it lives inside one kernel), so no lock is needed.
	freeDeliveries *inFlight
}

// inFlight is one in-flight message. Each record binds its fire method to a
// func() exactly once, at pool-creation time, so scheduling a delivery
// reuses that method value instead of allocating a fresh closure per send.
type inFlight struct {
	f       *Fabric
	from    int32
	to      int32
	kind    obs.Kind
	payload any
	run     func()
	next    *inFlight // free-list link
}

// fire hands the message to its destination and returns the record to the
// pool. The record is released before the delivery callback runs, so sends
// performed inside the callback reuse the hot record.
func (d *inFlight) fire() {
	f := d.f
	from, to, kind, payload := int(d.from), int(d.to), d.kind, d.payload
	d.payload = nil
	d.next = f.freeDeliveries
	f.freeDeliveries = d
	f.sink.OnDeliver(f.kernel.Now(), from, to, kind)
	f.deliver(from, to, payload)
}

// newDelivery takes a record from the pool, or mints one with its run
// method value bound (the only allocation this path can make, amortized to
// zero in steady state).
func (f *Fabric) newDelivery() *inFlight {
	d := f.freeDeliveries
	if d == nil {
		d = &inFlight{f: f}
		d.run = d.fire
		return d
	}
	f.freeDeliveries = d.next
	d.next = nil
	return d
}

// NewFabric creates a fabric for n processes whose links all start with the
// given default profile. Every message event is reported to sink (nil for
// no instrumentation); compose observers with obs.Tee.
func NewFabric(k *sim.Kernel, n int, def Profile, sink obs.Sink) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("network: fabric needs at least one process, got %d", n)
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("default profile: %w", err)
	}
	if sink == nil {
		sink = obs.Nop{}
	}
	f := &Fabric{
		kernel:   k,
		n:        n,
		gst:      sim.TimeZero,
		profiles: make([]Profile, n*n),
		cut:      make([]bool, n*n),
		sink:     sink,
	}
	for i := range f.profiles {
		f.profiles[i] = def
	}
	return f, nil
}

// N returns the number of processes.
func (f *Fabric) N() int { return f.n }

// SetDeliver installs the delivery callback. It must be set before the
// first Send.
func (f *Fabric) SetDeliver(fn DeliverFunc) { f.deliver = fn }

// GST returns the fabric's global stabilization time.
func (f *Fabric) GST() sim.Time { return f.gst }

// SetGST sets the instant after which eventually-timely links are timely.
func (f *Fabric) SetGST(t sim.Time) { f.gst = t }

func (f *Fabric) index(from, to int) int {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		panic(fmt.Sprintf("network: link %d→%d out of range for n=%d", from, to, f.n))
	}
	return from*f.n + to
}

// Profile returns the current profile of the from→to link.
func (f *Fabric) Profile(from, to int) Profile { return f.profiles[f.index(from, to)] }

// SetProfile replaces the profile of one directed link.
func (f *Fabric) SetProfile(from, to int, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	f.profiles[f.index(from, to)] = p
	return nil
}

// SetOutgoing replaces the profiles of all links leaving from (self link
// excluded).
func (f *Fabric) SetOutgoing(from int, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for to := 0; to < f.n; to++ {
		if to != from {
			f.profiles[f.index(from, to)] = p
		}
	}
	return nil
}

// SetIncoming replaces the profiles of all links arriving at to (self link
// excluded).
func (f *Fabric) SetIncoming(to int, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for from := 0; from < f.n; from++ {
		if from != to {
			f.profiles[f.index(from, to)] = p
		}
	}
	return nil
}

// SetAll replaces every link profile.
func (f *Fabric) SetAll(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i := range f.profiles {
		f.profiles[i] = p
	}
	return nil
}

// Cut force-drops all traffic on the from→to link until Heal.
func (f *Fabric) Cut(from, to int) { f.cut[f.index(from, to)] = true }

// Heal removes a Cut.
func (f *Fabric) Heal(from, to int) { f.cut[f.index(from, to)] = false }

// CutBidirectional cuts both directions between a and b.
func (f *Fabric) CutBidirectional(a, b int) {
	f.Cut(a, b)
	f.Cut(b, a)
}

// HealBidirectional heals both directions between a and b.
func (f *Fabric) HealBidirectional(a, b int) {
	f.Heal(a, b)
	f.Heal(b, a)
}

// Isolate cuts every link to and from id.
func (f *Fabric) Isolate(id int) {
	for other := 0; other < f.n; other++ {
		if other != id {
			f.CutBidirectional(id, other)
		}
	}
}

// Rejoin heals every link to and from id.
func (f *Fabric) Rejoin(id int) {
	for other := 0; other < f.n; other++ {
		if other != id {
			f.HealBidirectional(id, other)
		}
	}
}

// Send transmits payload on the from→to directed link. The message is
// dropped or scheduled for delivery according to the link profile; kind is
// used only for accounting. Hot paths should pre-intern the kind and call
// SendKind directly.
func (f *Fabric) Send(from, to int, kind string, payload any) {
	f.SendKind(from, to, obs.Intern(kind), payload)
}

// SendKind is Send with a pre-interned kind id: the steady-state send path
// for protocol messages, performing zero map lookups and zero allocations.
func (f *Fabric) SendKind(from, to int, kind obs.Kind, payload any) {
	if f.deliver == nil {
		panic("network: Send before SetDeliver")
	}
	if from == to {
		panic(fmt.Sprintf("network: process %d sending to itself", from))
	}
	now := f.kernel.Now()
	idx := f.index(from, to)
	f.sink.OnSend(now, from, to, kind)
	delay, ok := f.profiles[idx].Transmit(now >= f.gst, f.kernel.Rand())
	if !ok || f.cut[idx] {
		f.sink.OnDrop(now, from, to, kind)
		return
	}
	d := f.newDelivery()
	d.from, d.to, d.kind, d.payload = int32(from), int32(to), kind, payload
	f.kernel.Schedule(delay, d.run)
}

// MaxDelta returns the largest Delta across all timely or eventually-timely
// links, useful for sizing experiment stabilization margins.
func (f *Fabric) MaxDelta() time.Duration {
	var max time.Duration
	for _, p := range f.profiles {
		if (p.Kind == LinkTimely || p.Kind == LinkEventuallyTimely) && p.Delta > max {
			max = p.Delta
		}
	}
	return max
}
