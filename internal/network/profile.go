// Package network models point-to-point links with the timeliness and loss
// regimes of the reproduced paper: timely, eventually timely (with an
// unknown global stabilization time GST and bound delta), reliable
// asynchronous, fair lossy, and lossy links. A Fabric wires n processes
// together, applies per-link profiles, injects partitions, and records
// every send/delivery/drop into metrics and trace.
package network

import (
	"fmt"
	"math/rand"
	"time"
)

// LinkKind classifies a link's timeliness/loss behaviour.
type LinkKind int

// Link kinds, in decreasing order of strength.
const (
	// LinkTimely delivers within Delta from time zero.
	LinkTimely LinkKind = iota + 1
	// LinkEventuallyTimely delivers within Delta any message sent at or
	// after the fabric's GST. Messages sent before GST may be delayed up
	// to MaxDelay or dropped with probability DropProb.
	LinkEventuallyTimely
	// LinkReliable delivers every message, with unbounded (up to
	// MaxDelay-sampled) delay. This is the "reliable asynchronous" link
	// of the paper's communication-efficient system.
	LinkReliable
	// LinkFairLossy drops each message with probability DropProb < 1;
	// since senders retransmit forever, infinitely many messages of each
	// type get through (the paper's fair-lossy link, probabilistically).
	LinkFairLossy
	// LinkLossy may drop arbitrarily many messages (DropProb may be 1).
	LinkLossy
	// LinkDown delivers nothing, ever.
	LinkDown
)

// String returns the kind's short name.
func (k LinkKind) String() string {
	switch k {
	case LinkTimely:
		return "timely"
	case LinkEventuallyTimely:
		return "eventually-timely"
	case LinkReliable:
		return "reliable"
	case LinkFairLossy:
		return "fair-lossy"
	case LinkLossy:
		return "lossy"
	case LinkDown:
		return "down"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Profile describes one directed link's behaviour.
type Profile struct {
	Kind LinkKind
	// Delta bounds post-GST delay for timely kinds.
	Delta time.Duration
	// MinDelay floors every delivery delay.
	MinDelay time.Duration
	// MaxDelay caps sampled delays for asynchronous behaviour (pre-GST
	// eventually-timely, reliable, fair-lossy, lossy).
	MaxDelay time.Duration
	// DropProb is the per-message loss probability where the kind allows
	// loss. For eventually-timely links it applies only before GST.
	DropProb float64
}

// Validate reports configuration errors in the profile.
func (p Profile) Validate() error {
	switch p.Kind {
	case LinkTimely, LinkEventuallyTimely:
		if p.Delta <= 0 {
			return fmt.Errorf("network: %v link requires positive Delta", p.Kind)
		}
		if p.MinDelay > p.Delta {
			return fmt.Errorf("network: MinDelay %v exceeds Delta %v", p.MinDelay, p.Delta)
		}
	case LinkReliable, LinkFairLossy, LinkLossy:
		if p.MaxDelay <= 0 {
			return fmt.Errorf("network: %v link requires positive MaxDelay", p.Kind)
		}
		if p.MinDelay > p.MaxDelay {
			return fmt.Errorf("network: MinDelay %v exceeds MaxDelay %v", p.MinDelay, p.MaxDelay)
		}
	case LinkDown:
		return nil
	default:
		return fmt.Errorf("network: unknown link kind %d", int(p.Kind))
	}
	if p.DropProb < 0 || p.DropProb > 1 {
		return fmt.Errorf("network: DropProb %v out of [0,1]", p.DropProb)
	}
	if p.Kind == LinkFairLossy && p.DropProb >= 1 {
		return fmt.Errorf("network: fair-lossy link requires DropProb < 1, got %v", p.DropProb)
	}
	return nil
}

// Timely returns a timely link with the given delay bound.
func Timely(delta time.Duration) Profile {
	return Profile{Kind: LinkTimely, Delta: delta}
}

// EventuallyTimely returns an eventually timely link: before the fabric's
// GST it behaves like a lossy asynchronous link (drop probability preDrop,
// delays up to maxDelay); from GST on it delivers within delta.
func EventuallyTimely(delta, maxDelay time.Duration, preDrop float64) Profile {
	return Profile{Kind: LinkEventuallyTimely, Delta: delta, MaxDelay: maxDelay, DropProb: preDrop}
}

// Reliable returns a reliable asynchronous link with delays in
// [minDelay, maxDelay].
func Reliable(minDelay, maxDelay time.Duration) Profile {
	return Profile{Kind: LinkReliable, MinDelay: minDelay, MaxDelay: maxDelay}
}

// FairLossy returns a fair-lossy link dropping each message with
// probability drop (< 1) and otherwise delivering within maxDelay.
func FairLossy(minDelay, maxDelay time.Duration, drop float64) Profile {
	return Profile{Kind: LinkFairLossy, MinDelay: minDelay, MaxDelay: maxDelay, DropProb: drop}
}

// Lossy returns a lossy asynchronous link dropping each message with
// probability drop (which may be 1).
func Lossy(minDelay, maxDelay time.Duration, drop float64) Profile {
	return Profile{Kind: LinkLossy, MinDelay: minDelay, MaxDelay: maxDelay, DropProb: drop}
}

// Down returns a link that never delivers.
func Down() Profile { return Profile{Kind: LinkDown} }

// Transmit decides the fate of a message sent now: lost, or delivered
// after the returned delay. afterGST tells whether now >= the fabric GST.
// It is exported so the live fault injector (internal/faultline) applies
// the exact same link semantics as the simulator's Fabric.
func (p Profile) Transmit(afterGST bool, rng *rand.Rand) (time.Duration, bool) {
	switch p.Kind {
	case LinkTimely:
		return sampleDelay(rng, p.MinDelay, p.Delta), true
	case LinkEventuallyTimely:
		if afterGST {
			return sampleDelay(rng, p.MinDelay, p.Delta), true
		}
		if rng.Float64() < p.DropProb {
			return 0, false
		}
		return sampleDelay(rng, p.MinDelay, p.MaxDelay), true
	case LinkReliable:
		return sampleDelay(rng, p.MinDelay, p.MaxDelay), true
	case LinkFairLossy, LinkLossy:
		if rng.Float64() < p.DropProb {
			return 0, false
		}
		return sampleDelay(rng, p.MinDelay, p.MaxDelay), true
	case LinkDown:
		return 0, false
	default:
		panic(fmt.Sprintf("network: unknown link kind %d", int(p.Kind)))
	}
}

// sampleDelay draws a uniform delay in [lo, hi].
func sampleDelay(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}
