package network

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

const ms = time.Millisecond

type delivery struct {
	at       sim.Time
	from, to int
	payload  any
}

func newTestFabric(t *testing.T, n int, def Profile, gst sim.Time) (*sim.Kernel, *Fabric, *[]delivery, *metrics.MessageStats) {
	t.Helper()
	k := sim.NewKernel(1)
	stats := metrics.NewMessageStats(n)
	f, err := NewFabric(k, n, def, obs.Tee(stats, trace.NewLog().MessageSink()))
	if err != nil {
		t.Fatal(err)
	}
	f.SetGST(gst)
	var got []delivery
	f.SetDeliver(func(from, to int, payload any) {
		got = append(got, delivery{at: k.Now(), from: from, to: to, payload: payload})
	})
	return k, f, &got, stats
}

func TestTimelyLinkDeliversWithinDelta(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 2, Timely(10*ms), 0)
	for i := 0; i < 50; i++ {
		f.Send(0, 1, "X", i)
	}
	k.RunFor(time.Second)
	if len(*got) != 50 {
		t.Fatalf("delivered %d, want 50", len(*got))
	}
	for _, d := range *got {
		if d.at > sim.At(10*ms) {
			t.Fatalf("delivery at %v exceeds delta", d.at)
		}
	}
}

func TestEventuallyTimelyBeforeAndAfterGST(t *testing.T) {
	gst := sim.At(100 * ms)
	k, f, got, stats := newTestFabric(t, 2, EventuallyTimely(5*ms, 500*ms, 0.5), gst)
	// Pre-GST sends: some must be dropped, the rest arbitrarily delayed.
	for i := 0; i < 200; i++ {
		f.Send(0, 1, "PRE", i)
	}
	k.RunUntil(gst, nil)
	// Post-GST sends must all arrive within delta.
	preDelivered := len(*got)
	*got = nil
	for i := 0; i < 100; i++ {
		f.Send(0, 1, "POST", i)
	}
	k.RunFor(5 * ms)
	var post int
	for _, d := range *got {
		if d.at < gst {
			continue
		}
		post++
	}
	_ = preDelivered
	if post < 100 {
		// Some pre-GST stragglers may also be in got; count only POST by
		// checking totals instead.
		t.Fatalf("post-GST deliveries = %d, want >= 100 within delta", post)
	}
	if stats.Dropped() == 0 {
		t.Fatal("expected some pre-GST drops with DropProb=0.5")
	}
	if stats.Dropped() >= 200 {
		t.Fatalf("dropped %d of 200 pre-GST messages; expected roughly half", stats.Dropped())
	}
}

func TestReliableLinkNeverDrops(t *testing.T) {
	k, f, got, stats := newTestFabric(t, 2, Reliable(ms, 300*ms), 0)
	for i := 0; i < 200; i++ {
		f.Send(0, 1, "X", i)
	}
	k.RunFor(time.Second)
	if len(*got) != 200 {
		t.Fatalf("delivered %d, want 200", len(*got))
	}
	if stats.Dropped() != 0 {
		t.Fatalf("dropped %d on reliable link", stats.Dropped())
	}
}

func TestFairLossyDropsSomeNotAll(t *testing.T) {
	k, f, got, stats := newTestFabric(t, 2, FairLossy(ms, 10*ms, 0.4), 0)
	for i := 0; i < 500; i++ {
		f.Send(0, 1, "X", i)
	}
	k.RunFor(time.Second)
	if stats.Dropped() == 0 {
		t.Fatal("fair-lossy dropped nothing over 500 sends")
	}
	if len(*got) == 0 {
		t.Fatal("fair-lossy delivered nothing")
	}
	if int(stats.Dropped())+len(*got) != 500 {
		t.Fatalf("drop+deliver = %d+%d != 500", stats.Dropped(), len(*got))
	}
}

func TestLossyCanDropEverything(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 2, Lossy(ms, 10*ms, 1.0), 0)
	for i := 0; i < 50; i++ {
		f.Send(0, 1, "X", i)
	}
	k.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("lossy(p=1) delivered %d messages", len(*got))
	}
}

func TestDownLinkDeliversNothing(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 2, Down(), 0)
	f.Send(0, 1, "X", nil)
	k.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("down link delivered")
	}
}

func TestCutAndHeal(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 2, Timely(ms), 0)
	f.Cut(0, 1)
	f.Send(0, 1, "X", "dropped")
	k.RunFor(10 * ms)
	if len(*got) != 0 {
		t.Fatal("cut link delivered")
	}
	f.Heal(0, 1)
	f.Send(0, 1, "X", "ok")
	k.RunFor(10 * ms)
	if len(*got) != 1 {
		t.Fatalf("healed link delivered %d, want 1", len(*got))
	}
}

func TestIsolateAndRejoin(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 3, Timely(ms), 0)
	f.Isolate(1)
	f.Send(0, 1, "X", nil)
	f.Send(1, 2, "X", nil)
	f.Send(0, 2, "X", nil) // unaffected link
	k.RunFor(10 * ms)
	if len(*got) != 1 || (*got)[0].to != 2 {
		t.Fatalf("deliveries after isolate = %v", *got)
	}
	f.Rejoin(1)
	f.Send(0, 1, "X", nil)
	k.RunFor(10 * ms)
	if len(*got) != 2 {
		t.Fatalf("deliveries after rejoin = %d, want 2", len(*got))
	}
}

func TestPerLinkProfileOverrides(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 3, Down(), 0)
	if err := f.SetOutgoing(0, Timely(ms)); err != nil {
		t.Fatal(err)
	}
	f.Send(0, 1, "X", nil)
	f.Send(0, 2, "X", nil)
	f.Send(1, 2, "X", nil) // still down
	k.RunFor(10 * ms)
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2 (only source links are up)", len(*got))
	}
	if f.Profile(1, 2).Kind != LinkDown {
		t.Fatal("non-source link profile changed")
	}
	if f.Profile(0, 1).Kind != LinkTimely {
		t.Fatal("source link profile not applied")
	}
}

func TestSetIncoming(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 3, Down(), 0)
	if err := f.SetIncoming(2, Timely(ms)); err != nil {
		t.Fatal(err)
	}
	f.Send(0, 2, "X", nil)
	f.Send(1, 2, "X", nil)
	f.Send(0, 1, "X", nil)
	k.RunFor(10 * ms)
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Profile
		wantErr bool
	}{
		{"timely ok", Timely(ms), false},
		{"timely no delta", Profile{Kind: LinkTimely}, true},
		{"timely min>delta", Profile{Kind: LinkTimely, Delta: ms, MinDelay: 2 * ms}, true},
		{"et ok", EventuallyTimely(ms, 10*ms, 0.5), false},
		{"reliable ok", Reliable(0, ms), false},
		{"reliable no max", Profile{Kind: LinkReliable}, true},
		{"reliable min>max", Profile{Kind: LinkReliable, MinDelay: 2 * ms, MaxDelay: ms}, true},
		{"fairlossy drop 1", Profile{Kind: LinkFairLossy, MaxDelay: ms, DropProb: 1}, true},
		{"lossy drop 1 ok", Lossy(0, ms, 1), false},
		{"drop out of range", Profile{Kind: LinkLossy, MaxDelay: ms, DropProb: 1.5}, true},
		{"down ok", Down(), false},
		{"unknown kind", Profile{Kind: LinkKind(42)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestLinkKindStrings(t *testing.T) {
	for k, want := range map[LinkKind]string{
		LinkTimely: "timely", LinkEventuallyTimely: "eventually-timely",
		LinkReliable: "reliable", LinkFairLossy: "fair-lossy",
		LinkLossy: "lossy", LinkDown: "down", LinkKind(9): "LinkKind(9)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, f, _, _ := newTestFabric(t, 2, Timely(ms), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-send")
		}
	}()
	f.Send(0, 0, "X", nil)
}

func TestSendBeforeDeliverPanics(t *testing.T) {
	k := sim.NewKernel(1)
	f, err := NewFabric(k, 2, Timely(ms), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic before SetDeliver")
		}
	}()
	f.Send(0, 1, "X", nil)
}

func TestNewFabricRejectsBadConfig(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewFabric(k, 0, Timely(ms), nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewFabric(k, 2, Profile{Kind: LinkTimely}, nil); err == nil {
		t.Fatal("invalid default profile accepted")
	}
}

func TestMaxDelta(t *testing.T) {
	_, f, _, _ := newTestFabric(t, 3, Timely(5*ms), 0)
	if err := f.SetProfile(0, 1, EventuallyTimely(20*ms, 100*ms, 0)); err != nil {
		t.Fatal(err)
	}
	if got := f.MaxDelta(); got != 20*ms {
		t.Fatalf("MaxDelta = %v, want 20ms", got)
	}
}

func TestStatsRecorded(t *testing.T) {
	k, f, _, stats := newTestFabric(t, 2, Timely(ms), 0)
	f.Send(0, 1, "PING", nil)
	k.RunFor(10 * ms)
	if stats.TotalSent() != 1 || stats.Delivered() != 1 {
		t.Fatalf("stats sent=%d delivered=%d", stats.TotalSent(), stats.Delivered())
	}
	if stats.KindCount("PING") != 1 {
		t.Fatal("kind not recorded")
	}
}
