package network

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestCutAffectsSendsNotInFlight pins down the partition semantics: Cut
// decides the fate of messages at send time; messages already in flight
// still deliver. (A real cable cut would also kill in-flight traffic, but
// for the protocols under test the difference is one delivery of at most
// δ age, and send-time semantics keep runs deterministic.)
func TestCutAffectsSendsNotInFlight(t *testing.T) {
	k, f, got, _ := newTestFabric(t, 2, Timely(10*ms), 0)
	f.Send(0, 1, "X", "in-flight")
	f.Cut(0, 1)
	f.Send(0, 1, "X", "after-cut")
	k.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want only the in-flight message", len(*got))
	}
	if (*got)[0].payload != "in-flight" {
		t.Fatalf("delivered %v", (*got)[0].payload)
	}
}

// TestReliableDelayWithinBounds samples many deliveries and checks the
// configured bounds hold exactly.
func TestReliableDelayWithinBounds(t *testing.T) {
	lo, hi := 5*ms, 50*ms
	k, f, got, _ := newTestFabric(t, 2, Reliable(lo, hi), 0)
	const sends = 400
	for i := 0; i < sends; i++ {
		f.Send(0, 1, "X", i)
	}
	k.RunFor(time.Second)
	if len(*got) != sends {
		t.Fatalf("delivered %d, want %d", len(*got), sends)
	}
	var below, above int
	for _, d := range *got {
		delay := d.at.Duration()
		if delay < lo {
			below++
		}
		if delay > hi {
			above++
		}
	}
	if below != 0 || above != 0 {
		t.Fatalf("delays out of [%v,%v]: %d below, %d above", lo, hi, below, above)
	}
	// The samples should actually spread over the range, not cluster at
	// one endpoint.
	var nearLo, nearHi int
	for _, d := range *got {
		if d.at.Duration() < lo+(hi-lo)/4 {
			nearLo++
		}
		if d.at.Duration() > hi-(hi-lo)/4 {
			nearHi++
		}
	}
	if nearLo == 0 || nearHi == 0 {
		t.Fatalf("delay distribution degenerate: %d near lo, %d near hi", nearLo, nearHi)
	}
}

// TestGSTBoundaryExactlyAtGSTIsTimely: a message sent at t == GST already
// enjoys the bound (the definition is "sent at or after GST").
func TestGSTBoundaryExactlyAtGSTIsTimely(t *testing.T) {
	gst := sim.At(100 * ms)
	k, f, got, stats := newTestFabric(t, 2, EventuallyTimely(5*ms, 500*ms, 1.0), gst)
	// Pre-GST with drop=1.0: everything sent strictly before GST is lost.
	f.Send(0, 1, "PRE", nil)
	k.RunUntil(gst, nil)
	for i := 0; i < 50; i++ {
		f.Send(0, 1, "AT", i)
	}
	k.RunFor(time.Second)
	if stats.Dropped() != 1 {
		t.Fatalf("dropped = %d, want exactly the pre-GST message", stats.Dropped())
	}
	for _, d := range *got {
		if d.at > gst.Add(5*ms) {
			t.Fatalf("post-GST delivery at %v exceeds GST+δ", d.at)
		}
	}
	if len(*got) != 50 {
		t.Fatalf("delivered %d, want 50", len(*got))
	}
}
