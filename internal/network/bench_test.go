package network

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

type benchPayload struct{ seq uint64 }

// BenchmarkFabricSendSteadyState measures the full steady-state send path —
// accounting sink, link profile draw, delivery scheduling, and delivery —
// the way a stable leader's heartbeat pays it every η. It must stay at
// 0 allocs/op: delivery records and kernel events are pooled, and the kind
// is pre-interned.
func BenchmarkFabricSendSteadyState(b *testing.B) {
	k := sim.NewKernel(1)
	// A small bounded window keeps the stats ring from growing mid-benchmark.
	stats := metrics.NewMessageStatsWindow(2, 1024)
	f, err := NewFabric(k, 2, Timely(time.Millisecond), stats)
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	f.SetDeliver(func(from, to int, payload any) { delivered++ })
	var payload any = benchPayload{}
	kind := obs.Intern("BENCH") // protocols pre-intern at construction
	// Warm the pools and fill the stats ring to its bound.
	for i := 0; i < 2048; i++ {
		f.SendKind(0, 1, kind, payload)
		for k.Step() {
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SendKind(0, 1, kind, payload)
		for k.Step() {
		}
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
