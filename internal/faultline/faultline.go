// Package faultline injects deterministic, seeded faults into the live
// transports (internal/transport): per-directed-link drop/delay decisions
// driven by the same network.Profile semantics the simulator's Fabric
// applies — timely, eventually timely with a wall-clock GST, reliable,
// fair-lossy, lossy, down — plus runtime partitions (Cut/Heal) and a
// scheduled crash plan.
//
// Determinism guarantee: decision k on a directed link is a pure function
// of (seed, plan, k, afterGST_k), where afterGST_k tells whether the k-th
// send on that link happened at or after the plan's GST. Each link draws
// from a private RNG seeded by (seed, from, to); a cut link still computes
// its profile decision and only then masks it to "drop", so Cut/Heal never
// perturb the decision stream. Two runs with the same seed and plan
// therefore inject identical drop/delay sequences as long as each link
// classifies the same sends as pre-GST.
//
// The injector only decides; the transports report every injected drop
// through their obs.Sink (OnDrop), so metrics and trace observe injected
// faults exactly like organic loss.
package faultline

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/network"
	"repro/internal/node"
)

// Link names one directed link.
type Link struct {
	From, To node.ID
}

// Crash schedules one crash-stop failure, After the cluster starts.
type Crash struct {
	ID    node.ID
	After time.Duration
}

// Restart schedules one crash-recovery cycle: the process crash-stops
// After the cluster starts and reboots Downtime later. Unlike Crash, the
// process comes back — rebuilt from whatever its durable.Store recovered —
// and must rejoin the protocol. A zero Downtime means "reboot
// immediately".
type Restart struct {
	ID       node.ID
	After    time.Duration
	Downtime time.Duration
}

// Plan describes the faults to inject into a live cluster.
type Plan struct {
	// Default applies to every directed link without an override in
	// Links. The zero Profile means a perfect link: deliver immediately,
	// never drop.
	Default network.Profile
	// Links overrides the profile of individual directed links.
	Links map[Link]network.Profile
	// GST is the wall-clock global stabilization time as an offset from
	// cluster start. Before GST, eventually-timely links may delay up to
	// MaxDelay and drop with DropProb; from GST on they deliver within
	// Delta. Zero means "timely from boot".
	GST time.Duration
	// Crashes is the scheduled crash-stop plan; the transports arm one
	// timer per entry at Start.
	Crashes []Crash
	// Restarts is the scheduled crash-recovery plan; each entry kills the
	// process at After and reboots it at After+Downtime. A process may
	// appear in several entries (kill -9 it repeatedly) but scheduling
	// both a Crash and a Restart for the same process is rejected — the
	// permanent crash would race the reboot.
	Restarts []Restart
}

// linkState is one directed link's fault machinery. The profile is read
// and the RNG advanced under the link's own mutex, so concurrent senders
// on different links never contend.
type linkState struct {
	mu      sync.Mutex
	profile network.Profile
	perfect bool // zero-valued profile: no drop, no delay
	rng     *rand.Rand
}

// Injector decides the fate of every message on a live cluster's links.
// It is safe for concurrent use: Transmit may be called from any sender
// goroutine while Cut/Heal/SetLink reconfigure the topology.
type Injector struct {
	n    int
	seed int64
	gst  time.Duration

	crashes  []Crash
	restarts []Restart
	links    []linkState // n*n, row-major [from*n+to]

	cutMu sync.RWMutex
	cut   []bool // n*n, true = severed (delivers nothing)
}

// New validates the plan and builds an injector for an n-process cluster.
func New(n int, seed int64, plan Plan) (*Injector, error) {
	if n < 2 {
		return nil, fmt.Errorf("faultline: n = %d, need at least 2", n)
	}
	if plan.GST < 0 {
		return nil, fmt.Errorf("faultline: negative GST %v", plan.GST)
	}
	if !isPerfect(plan.Default) {
		if err := plan.Default.Validate(); err != nil {
			return nil, err
		}
	}
	for l, p := range plan.Links {
		if err := checkLink(n, l.From, l.To); err != nil {
			return nil, err
		}
		if !isPerfect(p) {
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("faultline: link %d->%d: %w", l.From, l.To, err)
			}
		}
	}
	crashed := make(map[node.ID]bool, len(plan.Crashes))
	for _, cr := range plan.Crashes {
		if int(cr.ID) < 0 || int(cr.ID) >= n {
			return nil, fmt.Errorf("faultline: crash id %d out of range", cr.ID)
		}
		if cr.After < 0 {
			return nil, fmt.Errorf("faultline: crash of %d at negative offset %v", cr.ID, cr.After)
		}
		crashed[cr.ID] = true
	}
	for _, rs := range plan.Restarts {
		if int(rs.ID) < 0 || int(rs.ID) >= n {
			return nil, fmt.Errorf("faultline: restart id %d out of range", rs.ID)
		}
		if rs.After < 0 {
			return nil, fmt.Errorf("faultline: restart of %d at negative offset %v", rs.ID, rs.After)
		}
		if rs.Downtime < 0 {
			return nil, fmt.Errorf("faultline: restart of %d with negative downtime %v", rs.ID, rs.Downtime)
		}
		if crashed[rs.ID] {
			return nil, fmt.Errorf("faultline: process %d has both a crash and a restart scheduled", rs.ID)
		}
	}
	inj := &Injector{
		n:        n,
		seed:     seed,
		gst:      plan.GST,
		crashes:  append([]Crash(nil), plan.Crashes...),
		restarts: append([]Restart(nil), plan.Restarts...),
		links:    make([]linkState, n*n),
		cut:      make([]bool, n*n),
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			p := plan.Default
			if over, ok := plan.Links[Link{From: node.ID(from), To: node.ID(to)}]; ok {
				p = over
			}
			ls := &inj.links[from*n+to]
			ls.profile = p
			ls.perfect = isPerfect(p)
			ls.rng = rand.New(rand.NewSource(linkSeed(seed, from, to, n)))
		}
	}
	return inj, nil
}

// isPerfect reports whether p is the zero Profile, meaning "no fault".
func isPerfect(p network.Profile) bool { return p == (network.Profile{}) }

func checkLink(n int, from, to node.ID) error {
	if int(from) < 0 || int(from) >= n || int(to) < 0 || int(to) >= n {
		return fmt.Errorf("faultline: link %d->%d out of range for n=%d", from, to, n)
	}
	if from == to {
		return fmt.Errorf("faultline: self-link %d->%d", from, to)
	}
	return nil
}

// linkSeed derives a per-directed-link RNG seed from the injector seed via
// a splitmix64 step, so links draw independent, reproducible streams.
func linkSeed(seed int64, from, to, n int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(from*n+to+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// N returns the cluster size the injector was built for.
func (inj *Injector) N() int { return inj.n }

// GST returns the plan's wall-clock global stabilization offset.
func (inj *Injector) GST() time.Duration { return inj.gst }

// Crashes returns a copy of the scheduled crash plan. Callers get their
// own slice: mutating it cannot corrupt the injector's schedule.
func (inj *Injector) Crashes() []Crash { return append([]Crash(nil), inj.crashes...) }

// Restarts returns a copy of the scheduled crash-recovery plan.
func (inj *Injector) Restarts() []Restart { return append([]Restart(nil), inj.restarts...) }

// Transmit decides the fate of one message sent on from→to at the given
// elapsed time since cluster start: lost, or delivered after the returned
// extra delay. The profile decision is computed (advancing the link's RNG)
// even when the link is cut, preserving the package's determinism
// guarantee across Cut/Heal.
func (inj *Injector) Transmit(from, to node.ID, elapsed time.Duration) (time.Duration, bool) {
	if err := checkLink(inj.n, from, to); err != nil {
		panic(err)
	}
	idx := int(from)*inj.n + int(to)
	ls := &inj.links[idx]
	ls.mu.Lock()
	var delay time.Duration
	ok := true
	if !ls.perfect {
		delay, ok = ls.profile.Transmit(elapsed >= inj.gst, ls.rng)
	}
	ls.mu.Unlock()

	inj.cutMu.RLock()
	severed := inj.cut[idx]
	inj.cutMu.RUnlock()
	if severed {
		return 0, false
	}
	return delay, ok
}

// CutLink severs the directed link from→to: it delivers nothing until
// healed. The underlying profile keeps advancing, so healing resumes the
// link's decision stream where an uncut run would be.
func (inj *Injector) CutLink(from, to node.ID) {
	if err := checkLink(inj.n, from, to); err != nil {
		panic(err)
	}
	inj.cutMu.Lock()
	inj.cut[int(from)*inj.n+int(to)] = true
	inj.cutMu.Unlock()
}

// HealLink restores the directed link from→to to its profile behaviour.
func (inj *Injector) HealLink(from, to node.ID) {
	if err := checkLink(inj.n, from, to); err != nil {
		panic(err)
	}
	inj.cutMu.Lock()
	inj.cut[int(from)*inj.n+int(to)] = false
	inj.cutMu.Unlock()
}

// Cut partitions groups a and b: every link between a member of a and a
// member of b, in both directions, is severed. Links within each group are
// untouched. Ids present in both groups cut themselves off from everyone
// in the other listing, as written.
func (inj *Injector) Cut(a, b []node.ID) {
	inj.cutMu.Lock()
	defer inj.cutMu.Unlock()
	for _, p := range a {
		for _, q := range b {
			if p == q {
				continue
			}
			inj.cut[int(p)*inj.n+int(q)] = true
			inj.cut[int(q)*inj.n+int(p)] = true
		}
	}
}

// Isolate severs every link to and from id (a total partition of one).
func (inj *Injector) Isolate(id node.ID) {
	inj.cutMu.Lock()
	defer inj.cutMu.Unlock()
	for q := 0; q < inj.n; q++ {
		if node.ID(q) == id {
			continue
		}
		inj.cut[int(id)*inj.n+q] = true
		inj.cut[q*inj.n+int(id)] = true
	}
}

// Heal removes every cut, restoring all links to their profiles.
func (inj *Injector) Heal() {
	inj.cutMu.Lock()
	for i := range inj.cut {
		inj.cut[i] = false
	}
	inj.cutMu.Unlock()
}

// SetLink swaps the profile of the directed link from→to at runtime.
// Unlike Cut/Heal, a swap changes how many RNG draws each decision
// consumes, so determinism across runs requires swaps at the same
// per-link send index.
func (inj *Injector) SetLink(from, to node.ID, p network.Profile) error {
	if err := checkLink(inj.n, from, to); err != nil {
		return err
	}
	if !isPerfect(p) {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	ls := &inj.links[int(from)*inj.n+int(to)]
	ls.mu.Lock()
	ls.profile = p
	ls.perfect = isPerfect(p)
	ls.mu.Unlock()
	return nil
}
