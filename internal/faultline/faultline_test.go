package faultline

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
)

// decision is one recorded Transmit outcome.
type decision struct {
	delay   time.Duration
	deliver bool
}

// runSequence replays k Transmit calls on every directed link of inj at
// the given elapsed times and returns the flattened decision log.
func runSequence(inj *Injector, elapsed []time.Duration) []decision {
	var out []decision
	for _, e := range elapsed {
		for from := 0; from < inj.N(); from++ {
			for to := 0; to < inj.N(); to++ {
				if from == to {
					continue
				}
				d, ok := inj.Transmit(node.ID(from), node.ID(to), e)
				out = append(out, decision{delay: d, deliver: ok})
			}
		}
	}
	return out
}

func elapsedRamp(k int, step time.Duration) []time.Duration {
	out := make([]time.Duration, k)
	for i := range out {
		out[i] = time.Duration(i) * step
	}
	return out
}

func lossyPlan() Plan {
	return Plan{
		Default: network.FairLossy(0, 5*time.Millisecond, 0.5),
		Links: map[Link]network.Profile{
			{From: 0, To: 1}: network.EventuallyTimely(time.Millisecond, 20*time.Millisecond, 0.8),
		},
		GST: 50 * time.Millisecond,
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Injector {
		inj, err := New(4, 42, lossyPlan())
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	times := elapsedRamp(200, time.Millisecond)
	a := runSequence(mk(), times)
	b := runSequence(mk(), times)
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	mk := func(seed int64) *Injector {
		inj, err := New(4, seed, lossyPlan())
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	times := elapsedRamp(200, time.Millisecond)
	a := runSequence(mk(1), times)
	b := runSequence(mk(2), times)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("independent seeds produced identical decision logs")
	}
}

func TestCutHealPreservesDecisionStream(t *testing.T) {
	// A run with a mid-stream cut must agree with an uncut run on every
	// decision outside the cut window: cuts mask, they don't consume.
	mk := func() *Injector {
		inj, err := New(2, 7, Plan{Default: network.FairLossy(0, time.Millisecond, 0.4)})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	plain, cut := mk(), mk()
	var plainLog, cutLog []decision
	for k := 0; k < 300; k++ {
		if k == 100 {
			cut.Cut([]node.ID{0}, []node.ID{1})
		}
		if k == 200 {
			cut.Heal()
		}
		d1, ok1 := plain.Transmit(0, 1, 0)
		d2, ok2 := cut.Transmit(0, 1, 0)
		plainLog = append(plainLog, decision{d1, ok1})
		cutLog = append(cutLog, decision{d2, ok2})
	}
	for k := 0; k < 300; k++ {
		if k >= 100 && k < 200 {
			if cutLog[k].deliver {
				t.Fatalf("decision %d delivered across a cut", k)
			}
			continue
		}
		if plainLog[k] != cutLog[k] {
			t.Fatalf("decision %d diverged outside cut window: %+v vs %+v", k, plainLog[k], cutLog[k])
		}
	}
}

func TestGSTSwitchesEventuallyTimely(t *testing.T) {
	gst := 100 * time.Millisecond
	inj, err := New(2, 3, Plan{
		Default: network.EventuallyTimely(2*time.Millisecond, 50*time.Millisecond, 0.9),
		GST:     gst,
	})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for k := 0; k < 200; k++ {
		if _, ok := inj.Transmit(0, 1, 0); !ok {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("pre-GST eventually-timely link never dropped at 0.9 loss")
	}
	for k := 0; k < 200; k++ {
		d, ok := inj.Transmit(0, 1, gst)
		if !ok {
			t.Fatal("post-GST eventually-timely link dropped")
		}
		if d > 2*time.Millisecond {
			t.Fatalf("post-GST delay %v exceeds Delta", d)
		}
	}
}

func TestPerfectDefaultAndDownOverride(t *testing.T) {
	inj, err := New(3, 1, Plan{
		Links: map[Link]network.Profile{{From: 0, To: 2}: network.Down()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := inj.Transmit(0, 1, 0); !ok || d != 0 {
		t.Fatalf("perfect link: got (%v, %v)", d, ok)
	}
	if _, ok := inj.Transmit(0, 2, 0); ok {
		t.Fatal("down link delivered")
	}
}

func TestIsolateAndHealLink(t *testing.T) {
	inj, err := New(3, 1, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	inj.Isolate(1)
	for _, l := range []Link{{0, 1}, {1, 0}, {2, 1}, {1, 2}} {
		if _, ok := inj.Transmit(l.From, l.To, 0); ok {
			t.Fatalf("isolated link %v delivered", l)
		}
	}
	if _, ok := inj.Transmit(0, 2, 0); !ok {
		t.Fatal("unrelated link severed by Isolate")
	}
	inj.HealLink(0, 1)
	if _, ok := inj.Transmit(0, 1, 0); !ok {
		t.Fatal("healed link still severed")
	}
	if _, ok := inj.Transmit(1, 0, 0); ok {
		t.Fatal("reverse link healed by one-directional HealLink")
	}
}

func TestSetLinkSwapsProfile(t *testing.T) {
	inj, err := New(2, 1, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.SetLink(0, 1, network.Down()); err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Transmit(0, 1, 0); ok {
		t.Fatal("down-swapped link delivered")
	}
	if err := inj.SetLink(0, 1, network.Profile{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := inj.Transmit(0, 1, 0); !ok {
		t.Fatal("perfect-swapped link dropped")
	}
	if err := inj.SetLink(0, 0, network.Down()); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := inj.SetLink(0, 1, network.Profile{Kind: network.LinkTimely}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, Plan{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := New(2, 0, Plan{GST: -time.Second}); err == nil {
		t.Fatal("negative GST accepted")
	}
	if _, err := New(2, 0, Plan{Default: network.Profile{Kind: network.LinkTimely}}); err == nil {
		t.Fatal("invalid default profile accepted")
	}
	if _, err := New(2, 0, Plan{Links: map[Link]network.Profile{{0, 0}: network.Down()}}); err == nil {
		t.Fatal("self-link override accepted")
	}
	if _, err := New(2, 0, Plan{Links: map[Link]network.Profile{{0, 5}: network.Down()}}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := New(2, 0, Plan{Crashes: []Crash{{ID: 9}}}); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	if _, err := New(2, 0, Plan{Crashes: []Crash{{ID: 0, After: -time.Second}}}); err == nil {
		t.Fatal("negative crash offset accepted")
	}
	if _, err := New(2, 0, Plan{Restarts: []Restart{{ID: 9}}}); err == nil {
		t.Fatal("out-of-range restart accepted")
	}
	if _, err := New(2, 0, Plan{Restarts: []Restart{{ID: 0, After: -time.Second}}}); err == nil {
		t.Fatal("negative restart offset accepted")
	}
	if _, err := New(2, 0, Plan{Restarts: []Restart{{ID: 0, Downtime: -time.Second}}}); err == nil {
		t.Fatal("negative restart downtime accepted")
	}
	if _, err := New(2, 0, Plan{
		Crashes:  []Crash{{ID: 0, After: time.Second}},
		Restarts: []Restart{{ID: 0, After: 2 * time.Second}},
	}); err == nil {
		t.Fatal("crash+restart of the same process accepted")
	}
}

func TestScheduleAccessorsReturnCopies(t *testing.T) {
	plan := Plan{
		Crashes:  []Crash{{ID: 0, After: time.Second}},
		Restarts: []Restart{{ID: 1, After: 2 * time.Second, Downtime: time.Second}},
	}
	inj, err := New(3, 7, plan)
	if err != nil {
		t.Fatal(err)
	}

	// A caller mutating the returned slice must not corrupt the schedule
	// the transports will read later.
	cr := inj.Crashes()
	cr[0] = Crash{ID: 2, After: 0}
	if got := inj.Crashes(); got[0] != (Crash{ID: 0, After: time.Second}) {
		t.Fatalf("crash schedule corrupted through accessor: %+v", got[0])
	}

	rs := inj.Restarts()
	rs[0] = Restart{ID: 0}
	if got := inj.Restarts(); got[0] != (Restart{ID: 1, After: 2 * time.Second, Downtime: time.Second}) {
		t.Fatalf("restart schedule corrupted through accessor: %+v", got[0])
	}

	// The plan slices handed to New are copied too: later caller-side
	// mutation of the plan must not reach the injector.
	plan.Crashes[0].ID = 2
	plan.Restarts[0].Downtime = 0
	if got := inj.Crashes(); got[0].ID != 0 {
		t.Fatalf("injector aliases the caller's crash plan: %+v", got[0])
	}
	if got := inj.Restarts(); got[0].Downtime != time.Second {
		t.Fatalf("injector aliases the caller's restart plan: %+v", got[0])
	}
}
