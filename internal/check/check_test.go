package check

import (
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

func at(msec int) sim.Time { return sim.At(time.Duration(msec) * ms) }

func history(changes ...Changeish) *detector.History {
	h := detector.NewHistory()
	for _, c := range changes {
		h.Record(at(c.ms), node.ID(c.leader))
	}
	return h
}

// Changeish is a compact literal for building test histories.
type Changeish struct {
	ms     int
	leader int
}

func TestOmegaHoldsOnAgreement(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 0}, Changeish{50, 1}),
			history(Changeish{0, 1}),
			history(Changeish{0, 0}, Changeish{70, 1}),
		},
		Crashed: map[node.ID]sim.Time{},
		Horizon: at(1000),
	}
	rep := Omega(in)
	if !rep.Holds {
		t.Fatalf("Holds = false: %s", rep.Reason)
	}
	if rep.Leader != 1 {
		t.Fatalf("Leader = %v, want 1", rep.Leader)
	}
	if rep.StabilizedAt != at(70) {
		t.Fatalf("StabilizedAt = %v, want 70ms", rep.StabilizedAt)
	}
	if rep.Changes != 5 {
		t.Fatalf("Changes = %d, want 5", rep.Changes)
	}
}

func TestOmegaFailsOnDisagreement(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 0}),
			history(Changeish{0, 1}),
		},
		Crashed: map[node.ID]sim.Time{},
		Horizon: at(100),
	}
	rep := Omega(in)
	if rep.Holds {
		t.Fatal("Holds = true on disagreement")
	}
	if rep.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestOmegaFailsOnCrashedLeader(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 2}),
			history(Changeish{0, 2}),
			history(Changeish{0, 2}),
		},
		Crashed: map[node.ID]sim.Time{2: at(10)},
		Horizon: at(100),
	}
	rep := Omega(in)
	if rep.Holds {
		t.Fatal("Holds = true with crashed leader")
	}
}

func TestOmegaIgnoresCrashedProcessOutputs(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 0}),
			history(Changeish{0, 1}), // crashed: its disagreement is fine
			history(Changeish{0, 0}),
		},
		Crashed: map[node.ID]sim.Time{1: at(5)},
		Horizon: at(100),
	}
	rep := Omega(in)
	if !rep.Holds || rep.Leader != 0 {
		t.Fatalf("rep = %+v, want holds with leader 0", rep)
	}
}

func TestOmegaNoCorrectProcess(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{history(Changeish{0, 0})},
		Crashed:   map[node.ID]sim.Time{0: at(1)},
		Horizon:   at(100),
	}
	if rep := Omega(in); rep.Holds {
		t.Fatal("Holds = true with no correct process")
	}
}

func TestCommEffEfficientRun(t *testing.T) {
	s := metrics.NewMessageStats(3)
	// Noise from everyone early, then only p1.
	s.RecordSend(at(5), 0, 1, "X")
	s.RecordSend(at(8), 2, 1, "X")
	for msec := 100; msec < 200; msec += 10 {
		s.RecordSend(at(msec), 1, 0, "L")
		s.RecordSend(at(msec), 1, 2, "L")
	}
	rep := CommEff(s.Snapshot(), 1, at(50), at(200), 10*ms)
	if !rep.Efficient {
		t.Fatalf("Efficient = false, QuietSince = %v", rep.QuietSince)
	}
	if len(rep.Senders) != 1 || rep.Senders[0] != 1 {
		t.Fatalf("Senders = %v, want [1]", rep.Senders)
	}
	if rep.LinksUsed != 2 {
		t.Fatalf("LinksUsed = %d, want 2", rep.LinksUsed)
	}
	// 20 messages over a 150ms window at 10ms period = 20/15 per period.
	if rep.MessagesPerPeriod < 1.2 || rep.MessagesPerPeriod > 1.5 {
		t.Fatalf("MessagesPerPeriod = %v", rep.MessagesPerPeriod)
	}
}

func TestCommEffInefficientRun(t *testing.T) {
	s := metrics.NewMessageStats(3)
	for msec := 0; msec < 200; msec += 10 {
		for from := 0; from < 3; from++ {
			s.RecordSend(at(msec), from, (from+1)%3, "A")
		}
	}
	rep := CommEff(s.Snapshot(), 0, at(100), at(200), 10*ms)
	if rep.Efficient {
		t.Fatal("Efficient = true for all-to-all traffic")
	}
	if len(rep.Senders) != 3 {
		t.Fatalf("Senders = %v", rep.Senders)
	}
}

func TestAgreementAt(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 0}, Changeish{50, 1}),
			history(Changeish{0, 1}),
		},
		Crashed: map[node.ID]sim.Time{},
		Horizon: at(100),
	}
	if _, ok := AgreementAt(in, at(20)); ok {
		t.Fatal("agreement reported before p0 switched")
	}
	l, ok := AgreementAt(in, at(60))
	if !ok || l != 1 {
		t.Fatalf("AgreementAt(60ms) = %v,%v", l, ok)
	}
}

func TestAgreementAtRejectsLeaderCrashedByT(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 2}),
			history(Changeish{0, 2}),
		},
		Crashed: map[node.ID]sim.Time{2: at(30)},
		Horizon: at(100),
	}
	if _, ok := AgreementAt(in, at(50)); ok {
		t.Fatal("agreement on a leader already crashed at t")
	}
	// Histories indexed 0,1 only; leader 2 is a third process whose own
	// history is irrelevant here. Before its crash, agreement holds.
	if _, ok := AgreementAt(in, at(10)); !ok {
		t.Fatal("agreement should hold before the leader crashed")
	}
}

func TestConvergenceTime(t *testing.T) {
	in := OmegaInput{
		Histories: []*detector.History{
			history(Changeish{0, 0}, Changeish{40, 1}),
			history(Changeish{0, 1}),
		},
		Crashed: map[node.ID]sim.Time{},
		Horizon: at(100),
	}
	got, ok := ConvergenceTime(in)
	if !ok || got != at(40) {
		t.Fatalf("ConvergenceTime = %v,%v want 40ms", got, ok)
	}
	bad := OmegaInput{
		Histories: []*detector.History{history(Changeish{0, 0}), history(Changeish{0, 1})},
		Crashed:   map[node.ID]sim.Time{},
		Horizon:   at(100),
	}
	if _, ok := ConvergenceTime(bad); ok {
		t.Fatal("ConvergenceTime on diverged run")
	}
}
