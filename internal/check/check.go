// Package check turns the paper's "eventually forever" theorem statements
// into machine-checkable predicates over finite executions.
//
// A finite run cannot prove an eventual property, so the checkers use the
// standard reproduction compromise: they verify that the property holds
// from some instant up to the run's horizon and report that instant, and
// the experiment harness runs long past the expected stabilization point
// (GST plus timeout-adaptation slack) over many seeds.
package check

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/sim"
)

// OmegaInput bundles what the Omega checker needs about a finished run.
type OmegaInput struct {
	// Histories holds each process's leader-output history, indexed by id.
	Histories []*detector.History
	// Crashed maps crashed process ids to their crash instants.
	Crashed map[node.ID]sim.Time
	// Horizon is the virtual end time of the run.
	Horizon sim.Time
}

// OmegaReport is the verdict on the Omega property for one run.
type OmegaReport struct {
	// Holds is true when every correct process's final output is the
	// same correct process.
	Holds bool
	// Leader is the agreed leader when Holds.
	Leader node.ID
	// StabilizedAt is the latest leader change at any correct process —
	// from then until the horizon the outputs were simultaneously stable.
	StabilizedAt sim.Time
	// Changes is the total number of leader transitions across correct
	// processes (a churn measure).
	Changes int
	// Reason explains a failed check.
	Reason string
}

// Omega evaluates the Omega property on a finished run.
func Omega(in OmegaInput) OmegaReport {
	var rep OmegaReport
	leader := node.None
	for id, h := range in.Histories {
		if _, crashed := in.Crashed[node.ID(id)]; crashed {
			continue
		}
		cur := h.Current()
		at, _ := h.StableSince()
		rep.Changes += h.NumChanges()
		if at > rep.StabilizedAt {
			rep.StabilizedAt = at
		}
		if leader == node.None {
			leader = cur
			continue
		}
		if cur != leader {
			rep.Reason = fmt.Sprintf("p%d trusts p%v while another correct process trusts p%v", id, cur, leader)
			return rep
		}
	}
	if leader == node.None {
		rep.Reason = "no correct process"
		return rep
	}
	if _, crashed := in.Crashed[leader]; crashed {
		rep.Reason = fmt.Sprintf("agreed leader p%v is crashed", leader)
		return rep
	}
	rep.Holds = true
	rep.Leader = leader
	return rep
}

// CommEffReport is the verdict on the communication-efficiency property.
type CommEffReport struct {
	// Efficient is true when, from CheckFrom to the horizon, only the
	// agreed leader sent messages.
	Efficient bool
	// QuietSince is the earliest instant after which only the leader
	// sent (may exceed the horizon's CheckFrom when inefficient).
	QuietSince sim.Time
	// Senders is the set of processes that sent in [CheckFrom, horizon].
	Senders []int
	// LinksUsed is the number of directed links carrying traffic in
	// [CheckFrom, horizon].
	LinksUsed int
	// MessagesPerPeriod is the average number of messages per period in
	// [CheckFrom, horizon].
	MessagesPerPeriod float64
}

// CommEff evaluates communication efficiency over the tail window
// [checkFrom, horizon] of a finished run, for the given agreed leader.
// It queries an immutable metrics snapshot (stats.Snapshot()), so the
// verdict is computed over one consistent view even while a live cluster
// keeps recording.
func CommEff(snap *metrics.Snapshot, leader node.ID, checkFrom, horizon sim.Time, period time.Duration) CommEffReport {
	rep := CommEffReport{
		QuietSince: snap.QuietSince(int(leader)),
		Senders:    snap.SendersSince(checkFrom),
		LinksUsed:  snap.LinksUsedSince(checkFrom),
	}
	sort.Ints(rep.Senders)
	rep.Efficient = rep.QuietSince <= checkFrom
	if horizon > checkFrom && period > 0 {
		windows := float64(horizon.Sub(checkFrom)) / float64(period)
		rep.MessagesPerPeriod = float64(snap.MessagesInWindow(checkFrom, horizon)) / windows
	}
	return rep
}

// AgreementAt reports whether all correct processes agreed on one correct
// leader at instant t (useful for plotting convergence curves).
func AgreementAt(in OmegaInput, t sim.Time) (node.ID, bool) {
	leader := node.None
	for id, h := range in.Histories {
		if _, crashed := in.Crashed[node.ID(id)]; crashed {
			continue
		}
		cur := h.LeaderAt(t)
		if leader == node.None {
			leader = cur
		} else if cur != leader {
			return node.None, false
		}
	}
	if leader == node.None {
		return node.None, false
	}
	if crashAt, crashed := in.Crashed[leader]; crashed && crashAt <= t {
		return node.None, false
	}
	return leader, true
}

// ConvergenceTime returns the earliest instant from which agreement on a
// single correct leader held continuously to the horizon, and whether such
// an instant exists. It is the empirical "stabilization time" reported by
// experiments E3/E4.
func ConvergenceTime(in OmegaInput) (sim.Time, bool) {
	rep := Omega(in)
	if !rep.Holds {
		return 0, false
	}
	// The outputs are piecewise constant, so agreement holds from the
	// last change onward; verify it held at that instant too.
	if _, ok := AgreementAt(in, rep.StabilizedAt); !ok {
		return 0, false
	}
	return rep.StabilizedAt, true
}
