// Package scenario assembles complete experiment setups: a link regime
// (which links are timely, reliable, or lossy), a leader-election
// algorithm, a failure plan, and seeds. It is the shared entry point for
// the test suite, the benchmarks (bench_test.go), the experiment harness
// (internal/experiments) and the CLI (cmd/omegasim).
package scenario

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/detector/alltoall"
	"repro/internal/detector/source"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/sim"
)

// Algorithm names an Omega implementation.
type Algorithm string

// Available algorithms.
const (
	// AlgoCore is the paper's communication-efficient Omega
	// (internal/core).
	AlgoCore Algorithm = "core"
	// AlgoCoreNoGrowth is the core algorithm without timeout adaptation
	// (ablation).
	AlgoCoreNoGrowth Algorithm = "core-nogrowth"
	// AlgoCoreNoGuard is the core algorithm without the accusation epoch
	// guard (ablation).
	AlgoCoreNoGuard Algorithm = "core-noguard"
	// AlgoCoreNoAccuse is the core algorithm with local-only accusations
	// (ablation).
	AlgoCoreNoAccuse Algorithm = "core-noaccuse"
	// AlgoCoreRelay is the core algorithm behind a flooding relay
	// (internal/relay): eventually timely *paths* suffice.
	AlgoCoreRelay Algorithm = "core-relay"
	// AlgoCoreRebuff is the core algorithm with stale-leader rebuffs
	// (partition-heal robustness extension).
	AlgoCoreRebuff Algorithm = "core-rebuff"
	// AlgoAllToAll is the classic all-to-all heartbeat baseline.
	AlgoAllToAll Algorithm = "alltoall"
	// AlgoSource is the gossiped-counter PODC'03 baseline.
	AlgoSource Algorithm = "source"
)

// Algorithms lists every selectable algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoCore, AlgoCoreNoGrowth, AlgoCoreNoGuard, AlgoCoreNoAccuse, AlgoCoreRelay, AlgoCoreRebuff, AlgoAllToAll, AlgoSource}
}

// Regime names a link-synchrony configuration.
type Regime string

// Available link regimes.
const (
	// RegimeAllTimely makes every link timely from time zero.
	RegimeAllTimely Regime = "all-timely"
	// RegimeAllET makes every link eventually timely (lossless, wild
	// delays before GST).
	RegimeAllET Regime = "all-et"
	// RegimeSourceReliable gives only the source eventually-timely
	// output links; all other links are reliable with unbounded delays.
	// This is the minimal assumption of the paper's core algorithm.
	RegimeSourceReliable Regime = "source-reliable"
	// RegimeSourceFairLossy gives only the source eventually-timely
	// output links; all other links are fair-lossy. The core algorithm
	// is expected to fail here; the gossiped-counter baseline survives.
	RegimeSourceFairLossy Regime = "source-fairlossy"
	// RegimeLossy makes every link lossy — no Omega algorithm in this
	// repository is expected to stabilize.
	RegimeLossy Regime = "lossy"
	// RegimeTimelyPath provides only an eventually timely *path* from
	// the source to every process (source→hub, hub→everyone, and the
	// reverse), with 90%-lossy links elsewhere. Only relayed algorithms
	// are expected to stabilize here.
	RegimeTimelyPath Regime = "timely-path"
)

// Regimes lists every selectable link regime.
func Regimes() []Regime {
	return []Regime{RegimeAllTimely, RegimeAllET, RegimeSourceReliable, RegimeSourceFairLossy, RegimeLossy, RegimeTimelyPath}
}

// Crash schedules one process failure.
type Crash struct {
	ID node.ID
	At sim.Time
}

// Restart schedules a crash-stop followed by a reboot from durable
// state. The simulator has no restart path — its automatons hold state
// in memory only — so restarts are live-cluster only: Build rejects a
// Config carrying them, while LiveFaultPlan maps them onto
// faultline.Restart for the in-memory transport's reboot machinery.
type Restart struct {
	ID node.ID
	// At is when the process crash-stops.
	At sim.Time
	// Downtime is how long it stays down before rebooting.
	Downtime sim.Time
}

// Config fully describes a runnable scenario. Zero values select defaults.
type Config struct {
	N         int
	Seed      int64
	Algorithm Algorithm
	Regime    Regime

	// Eta is the heartbeat period (default 10ms).
	Eta time.Duration
	// Delta is the post-GST delay bound of timely links (default 2ms).
	Delta time.Duration
	// MaxDelay caps asynchronous delays (default 100ms).
	MaxDelay time.Duration
	// DropProb is the loss probability of fair-lossy/lossy links
	// (default 0.3).
	DropProb float64
	// GST is the global stabilization time (default 0).
	GST sim.Time
	// Source is the ◊-source id for source regimes (default n-1, the
	// process the naive min-id choice would pick last).
	Source node.ID
	// Crashes is the failure plan.
	Crashes []Crash
	// Restarts schedules crash-then-reboot cycles. Live clusters only:
	// Build returns an error when set (the simulator cannot rebuild an
	// automaton from durable state), LiveFaultPlan translates them.
	Restarts []Restart
	// EnableTrace turns on the structured event log.
	EnableTrace bool
	// Observer is an optional extra obs.Sink teed with the world's stats
	// and trace; the telemetry layer hooks in here so sim runs feed the
	// same collector live clusters do.
	Observer obs.Sink
}

func (c *Config) fill() error {
	if c.N < 2 {
		return fmt.Errorf("scenario: N = %d, need at least 2", c.N)
	}
	if c.Algorithm == "" {
		c.Algorithm = AlgoCore
	}
	if c.Regime == "" {
		c.Regime = RegimeAllTimely
	}
	if c.Eta <= 0 {
		c.Eta = 10 * time.Millisecond
	}
	if c.Delta <= 0 {
		c.Delta = 2 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 100 * time.Millisecond
	}
	if c.DropProb == 0 {
		c.DropProb = 0.3
	}
	if c.Source == 0 {
		c.Source = node.ID(c.N - 1)
	}
	if int(c.Source) < 0 || int(c.Source) >= c.N {
		return fmt.Errorf("scenario: source %d out of range", c.Source)
	}
	for _, cr := range c.Crashes {
		if int(cr.ID) < 0 || int(cr.ID) >= c.N {
			return fmt.Errorf("scenario: crash id %d out of range", cr.ID)
		}
	}
	for _, rs := range c.Restarts {
		if int(rs.ID) < 0 || int(rs.ID) >= c.N {
			return fmt.Errorf("scenario: restart id %d out of range", rs.ID)
		}
		if rs.Downtime < 0 {
			return fmt.Errorf("scenario: restart p%d has negative downtime", rs.ID)
		}
	}
	return nil
}

// System is a built, runnable scenario.
type System struct {
	Config Config
	World  *node.World
	Omegas []detector.Omega

	booted bool
}

// Build constructs the world, applies the link regime, installs the
// algorithm at every process, and schedules the failure plan. The system
// is not started; call Start (or Run, which starts it on first use).
func Build(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(cfg.Restarts) > 0 {
		return nil, fmt.Errorf("scenario: restarts are live-cluster only (use LiveFaultPlan); the simulator cannot rebuild an automaton from durable state")
	}
	w, err := node.NewWorld(node.WorldConfig{
		N:           cfg.N,
		Seed:        cfg.Seed,
		GST:         cfg.GST,
		DefaultLink: network.Timely(cfg.Delta), // replaced below
		EnableTrace: cfg.EnableTrace,
		Observer:    cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	if err := applyRegime(w.Fabric, cfg); err != nil {
		return nil, err
	}
	s := &System{Config: cfg, World: w, Omegas: make([]detector.Omega, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		auto, om, err := buildDetector(cfg)
		if err != nil {
			return nil, err
		}
		s.Omegas[i] = om
		w.SetAutomaton(node.ID(i), auto)
	}
	for _, cr := range cfg.Crashes {
		w.CrashAt(cr.ID, cr.At)
	}
	return s, nil
}

// buildDetector returns the automaton to install and the Omega view to
// observe — they differ when the detector runs behind a relay.
func buildDetector(cfg Config) (node.Automaton, detector.Omega, error) {
	var om detector.Omega
	switch cfg.Algorithm {
	case AlgoCore:
		om = core.New(core.WithEta(cfg.Eta))
	case AlgoCoreNoGrowth:
		om = core.New(core.WithEta(cfg.Eta), core.WithoutTimeoutGrowth())
	case AlgoCoreNoGuard:
		om = core.New(core.WithEta(cfg.Eta), core.WithoutEpochGuard())
	case AlgoCoreNoAccuse:
		om = core.New(core.WithEta(cfg.Eta), core.WithoutAccuseMessages())
	case AlgoCoreRelay:
		d := core.New(core.WithEta(cfg.Eta))
		return relay.Wrap(d), d, nil
	case AlgoCoreRebuff:
		om = core.New(core.WithEta(cfg.Eta), core.WithRebuff())
	case AlgoAllToAll:
		om = alltoall.New(alltoall.Config{Eta: cfg.Eta})
	case AlgoSource:
		om = source.New(source.Config{Eta: cfg.Eta})
	default:
		return nil, nil, fmt.Errorf("scenario: unknown algorithm %q", cfg.Algorithm)
	}
	return om, om, nil
}

func applyRegime(f *network.Fabric, cfg Config) error {
	switch cfg.Regime {
	case RegimeAllTimely:
		return f.SetAll(network.Timely(cfg.Delta))
	case RegimeAllET:
		return f.SetAll(network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0))
	case RegimeSourceReliable:
		if err := f.SetAll(network.Reliable(cfg.Delta, cfg.MaxDelay)); err != nil {
			return err
		}
		return f.SetOutgoing(int(cfg.Source), network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0))
	case RegimeSourceFairLossy:
		if err := f.SetAll(network.FairLossy(cfg.Delta, cfg.MaxDelay, cfg.DropProb)); err != nil {
			return err
		}
		return f.SetOutgoing(int(cfg.Source), network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0))
	case RegimeLossy:
		return f.SetAll(network.Lossy(cfg.Delta, cfg.MaxDelay, cfg.DropProb))
	case RegimeTimelyPath:
		if err := f.SetAll(network.FairLossy(cfg.Delta, cfg.MaxDelay, 0.9)); err != nil {
			return err
		}
		// Timely chain: source ↔ hub, hub ↔ everyone else.
		src := int(cfg.Source)
		hub := (src + cfg.N - 1) % cfg.N
		timely := network.Timely(cfg.Delta)
		if err := f.SetProfile(src, hub, timely); err != nil {
			return err
		}
		if err := f.SetProfile(hub, src, timely); err != nil {
			return err
		}
		for q := 0; q < cfg.N; q++ {
			if q == hub || q == src {
				continue
			}
			if err := f.SetProfile(hub, q, timely); err != nil {
				return err
			}
			if err := f.SetProfile(q, hub, timely); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown regime %q", cfg.Regime)
	}
}

// Start boots the system.
func (s *System) Start() {
	if s.booted {
		return
	}
	s.booted = true
	s.World.Start()
}

// Run starts the system if needed and advances it by d.
func (s *System) Run(d time.Duration) {
	s.Start()
	s.World.RunFor(d)
}

// OmegaInput packages the run for the property checkers.
func (s *System) OmegaInput() check.OmegaInput {
	histories := make([]*detector.History, len(s.Omegas))
	for i, om := range s.Omegas {
		histories[i] = om.History()
	}
	crashed := make(map[node.ID]sim.Time)
	for i := range s.Omegas {
		if at, ok := s.World.CrashedAt(node.ID(i)); ok {
			crashed[node.ID(i)] = at
		}
	}
	return check.OmegaInput{
		Histories: histories,
		Crashed:   crashed,
		Horizon:   s.World.Kernel.Now(),
	}
}

// OmegaReport runs the Omega checker on the current state.
func (s *System) OmegaReport() check.OmegaReport {
	return check.Omega(s.OmegaInput())
}

// CommEffReport runs the communication-efficiency checker over the tail
// window starting at checkFrom.
func (s *System) CommEffReport(checkFrom sim.Time) check.CommEffReport {
	rep := s.OmegaReport()
	leader := rep.Leader
	if leader == node.None {
		leader = 0
	}
	return check.CommEff(s.World.Stats.Snapshot(), leader, checkFrom, s.World.Kernel.Now(), s.Config.Eta)
}

// Leaders returns each process's current output.
func (s *System) Leaders() []node.ID {
	out := make([]node.ID, len(s.Omegas))
	for i, om := range s.Omegas {
		out[i] = om.Leader()
	}
	return out
}
