package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestTraceCapturesTheRunStory: with tracing on, a scenario's event log
// contains sends, deliveries, the crash, and the leader-change notes —
// everything omegasim -trace prints.
func TestTraceCapturesTheRunStory(t *testing.T) {
	s, err := Build(Config{
		N: 3, Seed: 5, EnableTrace: true,
		Crashes: []Crash{{ID: 0, At: sim.At(200 * time.Millisecond)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Second)

	log := s.World.Trace
	if len(log.Filter(trace.KindSend)) == 0 {
		t.Fatal("no SEND entries")
	}
	if len(log.Filter(trace.KindDeliver)) == 0 {
		t.Fatal("no DELIVER entries")
	}
	crashes := log.Filter(trace.KindCrash)
	if len(crashes) != 1 || crashes[0].Node != 0 {
		t.Fatalf("crash entries = %v", crashes)
	}
	var sawLeaderNote bool
	for _, e := range log.Filter(trace.KindNote) {
		if strings.Contains(e.Note, "leader") {
			sawLeaderNote = true
			break
		}
	}
	if !sawLeaderNote {
		t.Fatal("no leader-change notes in trace")
	}
	// Entries are time-ordered.
	entries := log.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].T < entries[i-1].T {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

// TestTraceOffByDefault keeps benchmark runs lean.
func TestTraceOffByDefault(t *testing.T) {
	s, err := Build(Config{N: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(200 * time.Millisecond)
	if got := s.World.Trace.Len(); got != 0 {
		t.Fatalf("trace recorded %d entries with tracing off", got)
	}
}
