package scenario

import (
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

func TestBuildDefaults(t *testing.T) {
	s, err := Build(Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config.Algorithm != AlgoCore || s.Config.Regime != RegimeAllTimely {
		t.Fatalf("defaults = %+v", s.Config)
	}
	if s.Config.Source != 3 {
		t.Fatalf("default source = %v, want n-1", s.Config.Source)
	}
	s.Run(500 * ms)
	rep := s.OmegaReport()
	if !rep.Holds || rep.Leader != 0 {
		t.Fatalf("default scenario did not converge: %+v", rep)
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []Config{
		{N: 1},
		{N: 3, Algorithm: "nope"},
		{N: 3, Regime: "nope"},
		{N: 3, Source: 7},
		{N: 3, Crashes: []Crash{{ID: 9}}},
		{N: 3, Restarts: []Restart{{ID: 9}}},
		{N: 3, Restarts: []Restart{{ID: 0, Downtime: -1}}},
	}
	for i, cfg := range cases {
		if _, err := Build(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestEveryAlgorithmBuildsAndConvergesOnTimelyLinks(t *testing.T) {
	for _, algo := range Algorithms() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			s, err := Build(Config{N: 4, Seed: 1, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			s.Run(2 * time.Second)
			rep := s.OmegaReport()
			if !rep.Holds {
				t.Fatalf("%s did not converge on all-timely links: %s", algo, rep.Reason)
			}
		})
	}
}

func TestCoreEfficientBaselinesNot(t *testing.T) {
	for _, tc := range []struct {
		algo      Algorithm
		efficient bool
	}{
		{AlgoCore, true},
		{AlgoAllToAll, false},
		{AlgoSource, false},
	} {
		s, err := Build(Config{N: 5, Seed: 2, Algorithm: tc.algo})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(2 * time.Second)
		rep := s.CommEffReport(sim.At(1500 * ms))
		if rep.Efficient != tc.efficient {
			t.Fatalf("%s: Efficient = %v, want %v (senders %v)",
				tc.algo, rep.Efficient, tc.efficient, rep.Senders)
		}
	}
}

func TestCrashPlanApplied(t *testing.T) {
	s, err := Build(Config{
		N:       4,
		Seed:    3,
		Crashes: []Crash{{ID: 0, At: sim.At(100 * ms)}, {ID: 1, At: sim.At(200 * ms)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Second)
	rep := s.OmegaReport()
	if !rep.Holds || rep.Leader != 2 {
		t.Fatalf("report = %+v, want leader p2", rep)
	}
	in := s.OmegaInput()
	if len(in.Crashed) != 2 {
		t.Fatalf("crashed map = %v", in.Crashed)
	}
}

func TestSourceReliableRegime(t *testing.T) {
	s, err := Build(Config{N: 4, Seed: 4, Regime: RegimeSourceReliable, MaxDelay: 60 * ms})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20 * time.Second)
	rep := s.OmegaReport()
	if !rep.Holds {
		t.Fatalf("core under source-reliable did not converge: %s", rep.Reason)
	}
	ce := s.CommEffReport(sim.At(19 * time.Second))
	if !ce.Efficient {
		t.Fatalf("not communication-efficient in tail: senders %v", ce.Senders)
	}
}

func TestSourceFairLossyRegimeSourceAlgo(t *testing.T) {
	s, err := Build(Config{
		N: 4, Seed: 5, Algorithm: AlgoSource,
		Regime: RegimeSourceFairLossy, MaxDelay: 40 * ms, DropProb: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60 * time.Second)
	rep := s.OmegaReport()
	if !rep.Holds {
		t.Fatalf("source algorithm under fair-lossy did not converge: %s", rep.Reason)
	}
	if rep.StabilizedAt > sim.At(40*time.Second) {
		t.Fatalf("stabilized too late: %v", rep.StabilizedAt)
	}
}

func TestTimelyPathRegimeNeedsRelay(t *testing.T) {
	// Only a relayed algorithm stabilizes when timeliness exists solely
	// along a path through the hub.
	relayed, err := Build(Config{N: 4, Seed: 9, Algorithm: AlgoCoreRelay, Regime: RegimeTimelyPath, MaxDelay: 30 * ms})
	if err != nil {
		t.Fatal(err)
	}
	relayed.Run(30 * time.Second)
	rep := relayed.OmegaReport()
	if !rep.Holds || rep.StabilizedAt > sim.At(20*time.Second) {
		t.Fatalf("relayed core did not stabilize on timely-path regime: %+v", rep)
	}

	bare, err := Build(Config{N: 4, Seed: 9, Algorithm: AlgoCore, Regime: RegimeTimelyPath, MaxDelay: 30 * ms})
	if err != nil {
		t.Fatal(err)
	}
	bare.Run(30 * time.Second)
	bareRep := bare.OmegaReport()
	if bareRep.Holds && bareRep.StabilizedAt <= sim.At(20*time.Second) {
		t.Fatalf("bare core unexpectedly stabilized without timely links: %+v", bareRep)
	}
}

func TestLeadersSnapshot(t *testing.T) {
	s, err := Build(Config{N: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Second)
	leaders := s.Leaders()
	if len(leaders) != 3 {
		t.Fatalf("leaders = %v", leaders)
	}
	for i, l := range leaders {
		if l != 0 {
			t.Fatalf("p%d leader = %v, want p0", i, l)
		}
	}
}

func TestRunIsIncremental(t *testing.T) {
	s, err := Build(Config{N: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100 * ms)
	first := s.World.Kernel.Now()
	s.Run(100 * ms)
	if got := s.World.Kernel.Now(); got != first.Add(100*ms) {
		t.Fatalf("second Run ended at %v, want %v", got, first.Add(100*ms))
	}
}

func TestGSTDelaysConvergence(t *testing.T) {
	late, err := Build(Config{N: 4, Seed: 8, Regime: RegimeAllET, GST: sim.At(500 * ms)})
	if err != nil {
		t.Fatal(err)
	}
	late.Run(5 * time.Second)
	lateRep := late.OmegaReport()
	if !lateRep.Holds {
		t.Fatalf("late-GST run did not converge: %s", lateRep.Reason)
	}

	early, err := Build(Config{N: 4, Seed: 8, Regime: RegimeAllET, GST: 0})
	if err != nil {
		t.Fatal(err)
	}
	early.Run(5 * time.Second)
	earlyRep := early.OmegaReport()
	if !earlyRep.Holds {
		t.Fatalf("early-GST run did not converge: %s", earlyRep.Reason)
	}
	if lateRep.StabilizedAt <= earlyRep.StabilizedAt {
		t.Fatalf("GST=500ms stabilized at %v, GST=0 at %v; expected later stabilization",
			lateRep.StabilizedAt, earlyRep.StabilizedAt)
	}
}

func TestCrashedProcessExcludedFromChecks(t *testing.T) {
	s, err := Build(Config{N: 2, Seed: 9, Crashes: []Crash{{ID: 1, At: sim.At(50 * ms)}}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(time.Second)
	rep := s.OmegaReport()
	if !rep.Holds || rep.Leader != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !s.World.Alive(node.ID(0)) || s.World.Alive(node.ID(1)) {
		t.Fatal("alive bookkeeping wrong")
	}
}
