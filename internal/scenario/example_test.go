package scenario_test

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// Example shows the complete verification loop: build a scenario under the
// paper's minimal assumption, run it, and check both Omega and
// communication efficiency.
func Example() {
	sys, err := scenario.Build(scenario.Config{
		N:         5,
		Seed:      42,
		Algorithm: scenario.AlgoCore,
		Regime:    scenario.RegimeAllTimely,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Run(2 * time.Second)

	rep := sys.OmegaReport()
	fmt.Println("omega holds:", rep.Holds)
	fmt.Println("leader:", rep.Leader)

	ce := sys.CommEffReport(sim.At(1500 * time.Millisecond))
	fmt.Println("communication-efficient:", ce.Efficient)
	fmt.Println("steady-state links:", ce.LinksUsed)
	// Output:
	// omega holds: true
	// leader: 0
	// communication-efficient: true
	// steady-state links: 4
}

// Example_leaderCrash demonstrates failure handling: the elected leader is
// crashed mid-run and a new correct leader takes over.
func Example_leaderCrash() {
	sys, err := scenario.Build(scenario.Config{
		N:       4,
		Seed:    7,
		Crashes: []scenario.Crash{{ID: 0, At: sim.At(500 * time.Millisecond)}},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Run(2 * time.Second)
	rep := sys.OmegaReport()
	fmt.Println("holds:", rep.Holds)
	fmt.Println("new leader:", rep.Leader)
	// Output:
	// holds: true
	// new leader: 1
}
