package scenario

import (
	"fmt"
	"time"

	"repro/internal/faultline"
	"repro/internal/network"
	"repro/internal/node"
)

// LiveFaultPlan translates a simulator scenario Config into a
// faultline.Plan for the live clusters (internal/transport), so the same
// named regimes and failure plans drive real sockets. The mapping mirrors
// applyRegime link for link: the per-link profiles are identical, the
// simulated GST becomes a wall-clock offset from cluster start, each
// scheduled crash becomes a wall-clock crash-stop, and each restart
// becomes a crash-then-reboot cycle (the in-memory transport rebuilds
// the automaton from its durable store after Downtime).
//
// The translation is semantic, not bit-exact: the simulator draws delays
// on a virtual clock while the injector draws them on top of real socket
// latency, so traces differ — but which links are timely, lossy, or down,
// and with what parameters, is the same experiment.
func LiveFaultPlan(cfg Config) (faultline.Plan, error) {
	if err := cfg.fill(); err != nil {
		return faultline.Plan{}, err
	}
	plan := faultline.Plan{
		GST:     time.Duration(cfg.GST),
		Crashes: make([]faultline.Crash, 0, len(cfg.Crashes)),
	}
	for _, cr := range cfg.Crashes {
		plan.Crashes = append(plan.Crashes, faultline.Crash{ID: cr.ID, After: time.Duration(cr.At)})
	}
	for _, rs := range cfg.Restarts {
		plan.Restarts = append(plan.Restarts, faultline.Restart{
			ID:       rs.ID,
			After:    time.Duration(rs.At),
			Downtime: time.Duration(rs.Downtime),
		})
	}

	setOutgoing := func(from int, p network.Profile) {
		for q := 0; q < cfg.N; q++ {
			if q == from {
				continue
			}
			plan.Links[faultline.Link{From: node.ID(from), To: node.ID(q)}] = p
		}
	}
	setPair := func(a, b int, p network.Profile) {
		plan.Links[faultline.Link{From: node.ID(a), To: node.ID(b)}] = p
		plan.Links[faultline.Link{From: node.ID(b), To: node.ID(a)}] = p
	}

	switch cfg.Regime {
	case RegimeAllTimely:
		plan.Default = network.Timely(cfg.Delta)
	case RegimeAllET:
		plan.Default = network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0)
	case RegimeSourceReliable:
		plan.Default = network.Reliable(cfg.Delta, cfg.MaxDelay)
		plan.Links = make(map[faultline.Link]network.Profile, cfg.N-1)
		setOutgoing(int(cfg.Source), network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0))
	case RegimeSourceFairLossy:
		plan.Default = network.FairLossy(cfg.Delta, cfg.MaxDelay, cfg.DropProb)
		plan.Links = make(map[faultline.Link]network.Profile, cfg.N-1)
		setOutgoing(int(cfg.Source), network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0))
	case RegimeLossy:
		plan.Default = network.Lossy(cfg.Delta, cfg.MaxDelay, cfg.DropProb)
	case RegimeTimelyPath:
		plan.Default = network.FairLossy(cfg.Delta, cfg.MaxDelay, 0.9)
		plan.Links = make(map[faultline.Link]network.Profile, 2*cfg.N)
		src := int(cfg.Source)
		hub := (src + cfg.N - 1) % cfg.N
		timely := network.Timely(cfg.Delta)
		setPair(src, hub, timely)
		for q := 0; q < cfg.N; q++ {
			if q == hub || q == src {
				continue
			}
			setPair(hub, q, timely)
		}
	default:
		return faultline.Plan{}, fmt.Errorf("scenario: unknown regime %q", cfg.Regime)
	}
	return plan, nil
}
