package scenario

import (
	"testing"
	"time"

	"repro/internal/faultline"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// TestLiveFaultPlanMirrorsRegimes checks that every named regime maps to
// the same per-link profiles applyRegime would install in the simulator,
// and that the resulting plan is accepted by faultline.New.
func TestLiveFaultPlanMirrorsRegimes(t *testing.T) {
	base := Config{N: 4, Seed: 1, Eta: 10 * time.Millisecond, Delta: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond, DropProb: 0.25}
	for _, regime := range Regimes() {
		cfg := base
		cfg.Regime = regime
		plan, err := LiveFaultPlan(cfg)
		if err != nil {
			t.Fatalf("%s: %v", regime, err)
		}
		if _, err := faultline.New(cfg.N, cfg.Seed, plan); err != nil {
			t.Fatalf("%s: plan rejected by faultline: %v", regime, err)
		}
	}

	cfg := base
	cfg.Regime = RegimeAllTimely
	plan, _ := LiveFaultPlan(cfg)
	if want := network.Timely(cfg.Delta); plan.Default != want {
		t.Fatalf("all-timely default = %+v, want %+v", plan.Default, want)
	}
	if len(plan.Links) != 0 {
		t.Fatalf("all-timely has %d link overrides", len(plan.Links))
	}

	cfg.Regime = RegimeSourceReliable
	plan, _ = LiveFaultPlan(cfg)
	// Default source is n-1; its outgoing links carry the ET profile.
	src := node.ID(cfg.N - 1)
	et := network.EventuallyTimely(cfg.Delta, cfg.MaxDelay, 0)
	if want := network.Reliable(cfg.Delta, cfg.MaxDelay); plan.Default != want {
		t.Fatalf("source-reliable default = %+v, want %+v", plan.Default, want)
	}
	if len(plan.Links) != cfg.N-1 {
		t.Fatalf("source-reliable overrides %d links, want %d", len(plan.Links), cfg.N-1)
	}
	for q := 0; q < cfg.N; q++ {
		if node.ID(q) == src {
			continue
		}
		if got := plan.Links[faultline.Link{From: src, To: node.ID(q)}]; got != et {
			t.Fatalf("source link %d→%d = %+v, want ET", src, q, got)
		}
	}

	cfg.Regime = RegimeTimelyPath
	plan, _ = LiveFaultPlan(cfg)
	hub := node.ID((int(src) + cfg.N - 1) % cfg.N)
	timely := network.Timely(cfg.Delta)
	if got := plan.Links[faultline.Link{From: src, To: hub}]; got != timely {
		t.Fatalf("src→hub = %+v, want timely", got)
	}
	if got := plan.Links[faultline.Link{From: hub, To: 0}]; got != timely {
		t.Fatalf("hub→0 = %+v, want timely", got)
	}
	if plan.Default != network.FairLossy(cfg.Delta, cfg.MaxDelay, 0.9) {
		t.Fatalf("timely-path default = %+v", plan.Default)
	}
}

func TestLiveFaultPlanCarriesGSTAndCrashes(t *testing.T) {
	cfg := Config{
		N:       3,
		Regime:  RegimeAllET,
		GST:     sim.Time(250 * time.Millisecond),
		Crashes: []Crash{{ID: 1, At: sim.Time(40 * time.Millisecond)}},
	}
	plan, err := LiveFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GST != 250*time.Millisecond {
		t.Fatalf("GST = %v", plan.GST)
	}
	if len(plan.Crashes) != 1 || plan.Crashes[0].ID != 1 || plan.Crashes[0].After != 40*time.Millisecond {
		t.Fatalf("crashes = %+v", plan.Crashes)
	}
}

// TestLiveFaultPlanCarriesRestarts checks the live-only restart mapping:
// LiveFaultPlan translates scheduled reboots, while Build rejects them
// because the simulator cannot rebuild an automaton from durable state.
func TestLiveFaultPlanCarriesRestarts(t *testing.T) {
	cfg := Config{
		N:        3,
		Restarts: []Restart{{ID: 2, At: sim.Time(60 * time.Millisecond), Downtime: sim.Time(15 * time.Millisecond)}},
	}
	plan, err := LiveFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Restarts) != 1 {
		t.Fatalf("restarts = %+v", plan.Restarts)
	}
	rs := plan.Restarts[0]
	if rs.ID != 2 || rs.After != 60*time.Millisecond || rs.Downtime != 15*time.Millisecond {
		t.Fatalf("restart = %+v", rs)
	}
	if _, err := Build(cfg); err == nil {
		t.Fatal("Build accepted a restart plan; restarts are live-cluster only")
	}
}

func TestLiveFaultPlanRejectsBadConfig(t *testing.T) {
	if _, err := LiveFaultPlan(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := LiveFaultPlan(Config{N: 3, Regime: Regime("warp")}); err == nil {
		t.Fatal("unknown regime accepted")
	}
}
