package scenario

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestWorldLevelDeterminism: identical configurations replay bit-for-bit —
// same message counts, same leader histories, same stabilization instants.
// This is the property that makes every experiment in EXPERIMENTS.md
// regenerable.
func TestWorldLevelDeterminism(t *testing.T) {
	run := func() (uint64, []sim.Time, []int) {
		s, err := Build(Config{
			N: 6, Seed: 1234, Algorithm: AlgoCore, Regime: RegimeAllET,
			GST:     sim.At(200 * time.Millisecond),
			Crashes: []Crash{{ID: 0, At: sim.At(700 * time.Millisecond)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(3 * time.Second)
		var stabilized []sim.Time
		var changes []int
		for _, om := range s.Omegas {
			at, _ := om.History().StableSince()
			stabilized = append(stabilized, at)
			changes = append(changes, om.History().NumChanges())
		}
		return s.World.Stats.TotalSent(), stabilized, changes
	}
	sent1, stab1, ch1 := run()
	sent2, stab2, ch2 := run()
	if sent1 != sent2 {
		t.Fatalf("message counts diverged: %d vs %d", sent1, sent2)
	}
	for i := range stab1 {
		if stab1[i] != stab2[i] || ch1[i] != ch2[i] {
			t.Fatalf("p%d history diverged: (%v,%d) vs (%v,%d)", i, stab1[i], ch1[i], stab2[i], ch2[i])
		}
	}
}

// TestSeedsActuallyMatter guards against accidentally ignoring the seed.
func TestSeedsActuallyMatter(t *testing.T) {
	counts := make(map[uint64]bool)
	for seed := int64(0); seed < 4; seed++ {
		s, err := Build(Config{N: 5, Seed: seed, Regime: RegimeAllET, GST: sim.At(300 * time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(2 * time.Second)
		counts[s.World.Stats.TotalSent()] = true
	}
	if len(counts) < 2 {
		t.Fatalf("4 different seeds produced %d distinct runs", len(counts))
	}
}
