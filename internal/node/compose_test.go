package node

import (
	"testing"
	"time"

	"repro/internal/network"
)

// recordingAutomaton notes which callbacks it saw.
type recordingAutomaton struct {
	acceptKind string
	acceptKey  string
	started    bool
	delivered  []Message
	ticked     []string
}

func (r *recordingAutomaton) Start(Env) { r.started = true }

func (r *recordingAutomaton) Deliver(_ ID, m Message) {
	if m.Kind() == r.acceptKind {
		r.delivered = append(r.delivered, m)
	}
}

func (r *recordingAutomaton) Tick(key string) {
	if key == r.acceptKey {
		r.ticked = append(r.ticked, key)
	}
}

func TestComposeFansOut(t *testing.T) {
	w, err := NewWorld(WorldConfig{N: 2, Seed: 1, DefaultLink: network.Timely(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	a := &recordingAutomaton{acceptKind: "PING", acceptKey: "a/t"}
	b := &recordingAutomaton{acceptKind: "PONG", acceptKey: "b/t"}
	w.SetAutomaton(0, Compose(a, b))
	sender := &recordingAutomaton{}
	w.SetAutomaton(1, sender)
	w.Start()

	if !a.started || !b.started {
		t.Fatal("children not started")
	}
	env := w.Env(1)
	env.Send(0, pingMsg{})
	w.RunFor(10 * time.Millisecond)
	if len(a.delivered) != 1 {
		t.Fatalf("a saw %d PINGs, want 1", len(a.delivered))
	}
	if len(b.delivered) != 0 {
		t.Fatal("b accepted a PING")
	}

	w.Env(0).SetTimer("b/t", time.Millisecond)
	w.RunFor(10 * time.Millisecond)
	if len(b.ticked) != 1 || len(a.ticked) != 0 {
		t.Fatalf("ticks routed wrong: a=%v b=%v", a.ticked, b.ticked)
	}
}
