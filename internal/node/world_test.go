package node

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
)

const ms = time.Millisecond

// pingMsg is a trivial test message.
type pingMsg struct{ Seq int }

func (pingMsg) Kind() string { return "PING" }

// echoAutomaton replies to every PING with a PING carrying Seq+1 and counts
// timer ticks.
type echoAutomaton struct {
	env      Env
	got      []int
	ticks    []string
	onStart  func(Env)
	onTick   func(key string)
	delivers int
}

func (a *echoAutomaton) Start(env Env) {
	a.env = env
	if a.onStart != nil {
		a.onStart(env)
	}
}

func (a *echoAutomaton) Deliver(from ID, m Message) {
	a.delivers++
	p, ok := m.(pingMsg)
	if !ok {
		return
	}
	a.got = append(a.got, p.Seq)
	if p.Seq < 5 {
		a.env.Send(from, pingMsg{Seq: p.Seq + 1})
	}
}

func (a *echoAutomaton) Tick(key string) {
	a.ticks = append(a.ticks, key)
	if a.onTick != nil {
		a.onTick(key)
	}
}

func newEchoWorld(t *testing.T, n int) (*World, []*echoAutomaton) {
	t.Helper()
	w, err := NewWorld(WorldConfig{
		N:           n,
		Seed:        7,
		DefaultLink: network.Timely(ms),
		EnableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	autos := make([]*echoAutomaton, n)
	for i := range autos {
		autos[i] = &echoAutomaton{}
		w.SetAutomaton(ID(i), autos[i])
	}
	return w, autos
}

func TestPingPong(t *testing.T) {
	w, autos := newEchoWorld(t, 2)
	autos[0].onStart = func(env Env) { env.Send(1, pingMsg{Seq: 0}) }
	w.Start()
	w.RunFor(time.Second)
	// 0 → 1 (0), 1 → 0 (1), ... until Seq 5.
	if got := autos[1].got; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("p1 got %v, want [0 2 4]", got)
	}
	if got := autos[0].got; len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("p0 got %v, want [1 3 5]", got)
	}
}

func TestBroadcastReachesAllInOrder(t *testing.T) {
	w, autos := newEchoWorld(t, 5)
	autos[2].onStart = func(env Env) { env.Broadcast(pingMsg{Seq: 99}) }
	w.Start()
	w.RunFor(time.Second)
	for i, a := range autos {
		want := 1
		if i == 2 {
			want = 0
		}
		if len(a.got) != want {
			t.Fatalf("p%d received %d pings, want %d", i, len(a.got), want)
		}
	}
	if w.Stats.TotalSent() != 4 {
		t.Fatalf("broadcast sent %d messages, want 4", w.Stats.TotalSent())
	}
}

func TestTimersFireAndReset(t *testing.T) {
	w, autos := newEchoWorld(t, 2)
	var firedAt sim.Time
	autos[0].onStart = func(env Env) {
		env.SetTimer("x", 10*ms)
		env.SetTimer("x", 30*ms) // reset replaces the deadline
	}
	autos[0].onTick = func(key string) { firedAt = w.Kernel.Now() }
	w.Start()
	w.RunFor(time.Second)
	if len(autos[0].ticks) != 1 || autos[0].ticks[0] != "x" {
		t.Fatalf("ticks = %v, want one 'x'", autos[0].ticks)
	}
	if firedAt != sim.At(30*ms) {
		t.Fatalf("timer fired at %v, want 30ms (reset deadline)", firedAt)
	}
}

func TestStopTimer(t *testing.T) {
	w, autos := newEchoWorld(t, 2)
	autos[0].onStart = func(env Env) {
		env.SetTimer("x", 10*ms)
		env.StopTimer("x")
		env.StopTimer("never-armed") // must be a no-op
	}
	w.Start()
	w.RunFor(time.Second)
	if len(autos[0].ticks) != 0 {
		t.Fatalf("stopped timer ticked: %v", autos[0].ticks)
	}
}

func TestMultipleTimerKeys(t *testing.T) {
	w, autos := newEchoWorld(t, 2)
	autos[0].onStart = func(env Env) {
		env.SetTimer("b", 20*ms)
		env.SetTimer("a", 10*ms)
	}
	w.Start()
	w.RunFor(time.Second)
	if len(autos[0].ticks) != 2 || autos[0].ticks[0] != "a" || autos[0].ticks[1] != "b" {
		t.Fatalf("ticks = %v, want [a b]", autos[0].ticks)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	w, autos := newEchoWorld(t, 3)
	autos[0].onStart = func(env Env) {
		env.SetTimer("x", 50*ms)
	}
	w.Start()
	w.CrashAt(0, sim.At(10*ms))
	w.Kernel.ScheduleAt(sim.At(20*ms), func() {
		// A message to the crashed process must vanish silently.
		w.Env(1).Send(0, pingMsg{Seq: 0})
	})
	w.RunFor(time.Second)
	if len(autos[0].ticks) != 0 {
		t.Fatal("crashed process's timer fired")
	}
	if autos[0].delivers != 0 {
		t.Fatal("crashed process received a message")
	}
	if w.Alive(0) {
		t.Fatal("Alive(0) after crash")
	}
	if _, ok := w.CrashedAt(0); !ok {
		t.Fatal("CrashedAt(0) not recorded")
	}
	correct := w.Correct()
	if len(correct) != 2 || correct[0] != 1 || correct[1] != 2 {
		t.Fatalf("Correct() = %v, want [1 2]", correct)
	}
}

func TestCrashedProcessCannotSend(t *testing.T) {
	w, _ := newEchoWorld(t, 2)
	w.Start()
	w.Crash(0)
	w.Env(0).Send(1, pingMsg{}) // silently ignored
	w.RunFor(time.Second)
	if w.Stats.TotalSent() != 0 {
		t.Fatal("crashed process sent a message")
	}
}

func TestDoubleCrashIsIdempotent(t *testing.T) {
	w, _ := newEchoWorld(t, 2)
	w.Start()
	w.Crash(0)
	w.Crash(0)
	at, _ := w.CrashedAt(0)
	if at != sim.TimeZero {
		t.Fatalf("crash time moved: %v", at)
	}
}

func TestClockRateSkewsTimers(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		N:           2,
		Seed:        1,
		DefaultLink: network.Timely(ms),
		ClockRates:  []float64{2.0, 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	autos := []*echoAutomaton{{}, {}}
	for i := range autos {
		w.SetAutomaton(ID(i), autos[i])
	}
	var slowAt, nominalAt sim.Time
	autos[0].onStart = func(env Env) { env.SetTimer("t", 10*ms) }
	autos[0].onTick = func(string) { slowAt = w.Kernel.Now() }
	autos[1].onStart = func(env Env) { env.SetTimer("t", 10*ms) }
	autos[1].onTick = func(string) { nominalAt = w.Kernel.Now() }
	w.Start()
	w.RunFor(time.Second)
	if slowAt != sim.At(20*ms) {
		t.Fatalf("skewed timer fired at %v, want 20ms", slowAt)
	}
	if nominalAt != sim.At(10*ms) {
		t.Fatalf("nominal timer fired at %v, want 10ms", nominalAt)
	}
}

func TestWorldConfigValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{N: 1, DefaultLink: network.Timely(ms)}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewWorld(WorldConfig{N: 3, DefaultLink: network.Timely(ms), ClockRates: []float64{1}}); err == nil {
		t.Fatal("bad ClockRates length accepted")
	}
	if _, err := NewWorld(WorldConfig{N: 3, DefaultLink: network.Profile{}}); err == nil {
		t.Fatal("invalid link profile accepted")
	}
}

func TestStartRequiresAutomatons(t *testing.T) {
	w, err := NewWorld(WorldConfig{N: 2, DefaultLink: network.Timely(ms)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing automaton")
		}
	}()
	w.Start()
}

func TestEnvIdentity(t *testing.T) {
	w, _ := newEchoWorld(t, 3)
	w.Start()
	env := w.Env(2)
	if env.ID() != 2 || env.N() != 3 {
		t.Fatalf("env ID/N = %v/%v", env.ID(), env.N())
	}
	env.Logf("note %d", 1) // must not panic
}
