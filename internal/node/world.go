package node

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WorldConfig configures a simulated system.
type WorldConfig struct {
	// N is the number of processes (required, > 1).
	N int
	// Seed drives all randomness (link delays, losses).
	Seed int64
	// GST is the global stabilization time for eventually-timely links.
	GST sim.Time
	// DefaultLink is applied to every link; individual links can be
	// overridden through World.Fabric afterwards.
	DefaultLink network.Profile
	// EnableTrace turns on the structured event log (off by default:
	// long benchmark runs record millions of events).
	EnableTrace bool
	// ClockRates optionally skews each process's timer durations by a
	// multiplicative factor (1.0 = nominal). Length must be N if set.
	ClockRates []float64
	// StartAt optionally staggers process boot times; length must be N
	// if set. Messages reaching a process before it starts are lost
	// (the process "does not exist yet"), which is how real deployments
	// behave during rollout.
	StartAt []sim.Time
	// Observer is an optional extra obs.Sink teed with the world's stats
	// and trace; it sees every send/deliver/drop.
	Observer obs.Sink
	// RecordWindow bounds the per-sender send log retained for checker
	// queries (0 = metrics.DefaultWindow). Counters are never windowed.
	RecordWindow int
}

// World is a complete simulated system: kernel, fabric, and n processes
// running automatons. It is single-threaded and deterministic per seed.
type World struct {
	Kernel *sim.Kernel
	Fabric *network.Fabric
	Stats  *metrics.MessageStats
	Trace  *trace.Log

	nodes     []*proc
	started   bool
	startAt   []sim.Time
	crashedAt map[ID]sim.Time
}

// proc is the per-process runtime state; it implements Env.
type proc struct {
	world     *World
	id        ID
	automaton Automaton
	alive     bool
	started   bool
	rate      float64
	timers    map[string]*timerRec
}

// timerRec is one named timer's slot. Keys are stable per protocol, so the
// record — and the callback bound once at creation — is reused across
// re-arms: arming a heartbeat timer every η allocates nothing.
type timerRec struct {
	p      *proc
	key    string
	handle sim.Handle
	run    func()
}

// fire delivers the timer tick. The kernel has already retired the handle,
// so a StopTimer or re-arm from inside the automaton behaves correctly.
func (r *timerRec) fire() {
	if !r.p.alive {
		return
	}
	r.p.automaton.Tick(r.key)
}

var _ Env = (*proc)(nil)

// NewWorld builds a world from cfg. Automatons are installed with
// SetAutomaton and the system boots on Start.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("node: world needs at least 2 processes, got %d", cfg.N)
	}
	if cfg.ClockRates != nil && len(cfg.ClockRates) != cfg.N {
		return nil, fmt.Errorf("node: ClockRates has %d entries for %d processes", len(cfg.ClockRates), cfg.N)
	}
	if cfg.StartAt != nil && len(cfg.StartAt) != cfg.N {
		return nil, fmt.Errorf("node: StartAt has %d entries for %d processes", len(cfg.StartAt), cfg.N)
	}
	k := sim.NewKernel(cfg.Seed)
	stats := metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow)
	log := trace.NewLog()
	log.SetEnabled(cfg.EnableTrace)
	fabric, err := network.NewFabric(k, cfg.N, cfg.DefaultLink,
		obs.Tee(stats, log.MessageSink(), cfg.Observer))
	if err != nil {
		return nil, err
	}
	fabric.SetGST(cfg.GST)
	w := &World{
		Kernel:    k,
		Fabric:    fabric,
		Stats:     stats,
		Trace:     log,
		startAt:   cfg.StartAt,
		crashedAt: make(map[ID]sim.Time),
	}
	w.nodes = make([]*proc, cfg.N)
	for i := range w.nodes {
		rate := 1.0
		if cfg.ClockRates != nil {
			rate = cfg.ClockRates[i]
		}
		w.nodes[i] = &proc{
			world:  w,
			id:     ID(i),
			alive:  true,
			rate:   rate,
			timers: make(map[string]*timerRec),
		}
	}
	fabric.SetDeliver(w.deliverPayload)
	return w, nil
}

// N returns the number of processes.
func (w *World) N() int { return len(w.nodes) }

// SetAutomaton installs the protocol for process id. It must be called for
// every process before Start.
func (w *World) SetAutomaton(id ID, a Automaton) {
	if w.started {
		panic("node: SetAutomaton after Start")
	}
	w.nodes[id].automaton = a
}

// Start boots the system: every process starts at the current instant, or
// at its WorldConfig.StartAt time if staggered starts were configured.
// Immediate starts run in ascending id order.
func (w *World) Start() {
	if w.started {
		panic("node: world started twice")
	}
	for _, p := range w.nodes {
		if p.automaton == nil {
			panic(fmt.Sprintf("node: process %d has no automaton", p.id))
		}
	}
	w.started = true
	for _, p := range w.nodes {
		p := p
		at := w.Kernel.Now()
		if w.startAt != nil {
			at = w.startAt[p.id]
		}
		if at <= w.Kernel.Now() {
			p.boot()
			continue
		}
		w.Kernel.ScheduleAt(at, p.boot)
	}
}

// boot runs the automaton's Start callback unless the process crashed
// before its staggered start time.
func (p *proc) boot() {
	if !p.alive || p.started {
		return
	}
	p.started = true
	p.automaton.Start(p)
}

// Started reports whether id has booted.
func (w *World) Started(id ID) bool { return w.nodes[id].started }

// Crash kills process id immediately: its timers are cancelled and it
// neither sends nor receives from now on (crash-stop, no recovery).
func (w *World) Crash(id ID) {
	p := w.nodes[id]
	if !p.alive {
		return
	}
	p.alive = false
	for _, r := range p.timers {
		r.handle.Cancel()
	}
	p.timers = make(map[string]*timerRec)
	w.crashedAt[id] = w.Kernel.Now()
	w.Trace.Add(trace.Entry{T: w.Kernel.Now(), Kind: trace.KindCrash, Node: int(id), Peer: -1})
}

// CrashAt schedules a crash of id at virtual instant t.
func (w *World) CrashAt(id ID, t sim.Time) {
	w.Kernel.ScheduleAt(t, func() { w.Crash(id) })
}

// Alive reports whether id has not crashed.
func (w *World) Alive(id ID) bool { return w.nodes[id].alive }

// CrashedAt returns the crash instant of id, if it crashed.
func (w *World) CrashedAt(id ID) (sim.Time, bool) {
	t, ok := w.crashedAt[id]
	return t, ok
}

// Correct returns the ids of processes that are still alive, in ascending
// order. At the end of a run these are the "correct" processes in the
// crash-stop sense.
func (w *World) Correct() []ID {
	var out []ID
	for _, p := range w.nodes {
		if p.alive {
			out = append(out, p.id)
		}
	}
	return out
}

// RunFor advances the simulation by d.
func (w *World) RunFor(d time.Duration) sim.RunResult { return w.Kernel.RunFor(d) }

// RunUntil advances the simulation to horizon or until stop returns true.
func (w *World) RunUntil(horizon sim.Time, stop func() bool) sim.RunResult {
	return w.Kernel.RunUntil(horizon, stop)
}

// Env returns the runtime handle of process id, mainly for tests that need
// to poke automatons directly.
func (w *World) Env(id ID) Env { return w.nodes[id] }

func (w *World) deliverPayload(from, to int, payload any) {
	p := w.nodes[to]
	if !p.alive || !p.started {
		return
	}
	m, ok := payload.(Message)
	if !ok {
		panic(fmt.Sprintf("node: payload %T delivered to %d is not a Message", payload, to))
	}
	p.automaton.Deliver(ID(from), m)
}

// --- Env implementation -------------------------------------------------

func (p *proc) ID() ID { return p.id }

func (p *proc) N() int { return len(p.world.nodes) }

func (p *proc) Now() sim.Time { return p.world.Kernel.Now() }

func (p *proc) Send(to ID, m Message) {
	if !p.alive || !p.started {
		return
	}
	if to == p.id {
		panic(fmt.Sprintf("node: process %d sending to itself", p.id))
	}
	p.world.Fabric.SendKind(int(p.id), int(to), MessageKind(m), m)
}

func (p *proc) Broadcast(m Message) {
	for to := 0; to < len(p.world.nodes); to++ {
		if ID(to) != p.id {
			p.Send(ID(to), m)
		}
	}
}

func (p *proc) SetTimer(key string, d time.Duration) {
	if !p.alive {
		return
	}
	r, ok := p.timers[key]
	if !ok {
		r = &timerRec{p: p, key: key}
		r.run = r.fire
		p.timers[key] = r
	} else {
		r.handle.Cancel()
	}
	if p.rate != 1.0 {
		d = time.Duration(float64(d) * p.rate)
	}
	r.handle = p.world.Kernel.Schedule(d, r.run)
}

func (p *proc) StopTimer(key string) {
	if r, ok := p.timers[key]; ok {
		r.handle.Cancel()
	}
}

func (p *proc) Logf(format string, args ...any) {
	p.world.Trace.Addf(p.world.Kernel.Now(), int(p.id), format, args...)
}
