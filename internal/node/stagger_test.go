package node

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
)

func TestStaggeredStartBootsAtConfiguredTimes(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		N: 3, Seed: 1,
		DefaultLink: network.Timely(ms),
		StartAt:     []sim.Time{0, sim.At(50 * ms), sim.At(100 * ms)},
	})
	if err != nil {
		t.Fatal(err)
	}
	autos := make([]*echoAutomaton, 3)
	bootTimes := make([]sim.Time, 3)
	for i := range autos {
		i := i
		autos[i] = &echoAutomaton{onStart: func(Env) { bootTimes[i] = w.Kernel.Now() }}
		w.SetAutomaton(ID(i), autos[i])
	}
	w.Start()
	if !w.Started(0) || w.Started(1) || w.Started(2) {
		t.Fatal("immediate/deferred boot mix wrong at t=0")
	}
	w.RunFor(time.Second)
	want := []sim.Time{0, sim.At(50 * ms), sim.At(100 * ms)}
	for i, bt := range bootTimes {
		if bt != want[i] {
			t.Fatalf("p%d booted at %v, want %v", i, bt, want[i])
		}
	}
}

func TestMessagesToUnstartedProcessAreLost(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		N: 2, Seed: 1,
		DefaultLink: network.Timely(ms),
		StartAt:     []sim.Time{0, sim.At(100 * ms)},
	})
	if err != nil {
		t.Fatal(err)
	}
	autos := []*echoAutomaton{{}, {}}
	autos[0].onStart = func(env Env) { env.Send(1, pingMsg{Seq: 7}) }
	for i := range autos {
		w.SetAutomaton(ID(i), autos[i])
	}
	w.Start()
	w.RunFor(time.Second)
	if autos[1].delivers != 0 {
		t.Fatalf("unstarted process received %d messages", autos[1].delivers)
	}
}

func TestUnstartedProcessCannotSend(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		N: 2, Seed: 1,
		DefaultLink: network.Timely(ms),
		StartAt:     []sim.Time{0, sim.At(500 * ms)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w.SetAutomaton(ID(i), &echoAutomaton{})
	}
	w.Start()
	w.Env(1).Send(0, pingMsg{}) // silently ignored before boot
	w.RunFor(10 * ms)
	if w.Stats.TotalSent() != 0 {
		t.Fatal("unstarted process sent a message")
	}
}

func TestCrashBeforeStaggeredStartSuppressesBoot(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		N: 2, Seed: 1,
		DefaultLink: network.Timely(ms),
		StartAt:     []sim.Time{0, sim.At(100 * ms)},
	})
	if err != nil {
		t.Fatal(err)
	}
	autos := []*echoAutomaton{{}, {}}
	booted := false
	autos[1].onStart = func(Env) { booted = true }
	for i := range autos {
		w.SetAutomaton(ID(i), autos[i])
	}
	w.Start()
	w.CrashAt(1, sim.At(50*ms))
	w.RunFor(time.Second)
	if booted {
		t.Fatal("process booted after crashing")
	}
	if w.Started(1) {
		t.Fatal("Started(1) true for crashed-before-boot process")
	}
}

func TestStartAtValidation(t *testing.T) {
	_, err := NewWorld(WorldConfig{
		N: 3, DefaultLink: network.Timely(ms), StartAt: []sim.Time{0},
	})
	if err == nil {
		t.Fatal("bad StartAt length accepted")
	}
}
