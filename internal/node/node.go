// Package node defines the process-runtime abstraction shared by the
// deterministic simulator and the live transports: a protocol is an
// Automaton reacting to message deliveries and timer expirations through an
// Env handle, never touching threads or wall-clock time directly. The same
// Automaton implementations (internal/core, internal/detector/...,
// internal/consensus/...) therefore run unchanged on virtual time
// (node.World) and on real goroutines (internal/transport).
package node

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ID identifies a process; processes are numbered 0..n-1.
type ID int

// None is the null process id.
const None ID = -1

// Message is a protocol message. Kind returns a short stable tag (for
// example "LEADER") used for accounting, tracing and wire encoding.
// Messages must behave as immutable values once sent: implementations
// carrying slices must copy them at construction.
type Message interface {
	Kind() string
}

// KindIDer is optionally implemented by messages that pre-intern their kind
// tag (typically in a package-level var at init). Runtimes use it to skip
// the obs.Intern map lookup on every send, which keeps the steady-state
// send path allocation- and hash-free. KindID must equal obs.Intern(Kind()).
type KindIDer interface {
	KindID() obs.Kind
}

// MessageKind returns m's interned kind id, using the KindID fast path when
// the message provides one and falling back to interning the kind string.
func MessageKind(m Message) obs.Kind {
	if k, ok := m.(KindIDer); ok {
		return k.KindID()
	}
	return obs.Intern(m.Kind())
}

// Traced is optionally implemented by wrapper messages carrying a causal
// trace context (internal/tracing's Wrap, and envelopes like the group
// wrapper that may hold one inside). Transports read the context off
// outbound messages to report per-link send events to the tracing layer.
// A zero trace id means "no context"; implementations must not allocate.
type Traced interface {
	TraceContext() (trace, span uint64)
}

// Env is the runtime handle an Automaton uses to interact with the world.
// All methods must be called only from within the automaton's callbacks
// (Start, Deliver, Tick); the runtimes guarantee those never run
// concurrently for a given process.
type Env interface {
	// ID returns this process's identity.
	ID() ID
	// N returns the total number of processes in the system.
	N() int
	// Now returns the current local clock reading.
	Now() sim.Time
	// Send transmits m to process to over the network.
	Send(to ID, m Message)
	// Broadcast sends m to every other process, in ascending id order.
	Broadcast(m Message)
	// SetTimer (re)arms the named timer to fire after d. Arming an
	// already-armed key replaces the previous deadline.
	SetTimer(key string, d time.Duration)
	// StopTimer disarms the named timer if armed.
	StopTimer(key string)
	// Logf records a protocol annotation in the trace.
	Logf(format string, args ...any)
}

// Automaton is a protocol state machine. Implementations must be fully
// event-driven: all state changes happen inside these callbacks.
type Automaton interface {
	// Start runs once when the process boots, before any delivery.
	Start(env Env)
	// Deliver handles a message from another process.
	Deliver(from ID, m Message)
	// Tick handles the expiration of the named timer.
	Tick(key string)
}
