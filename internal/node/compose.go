package node

// Compose runs several automatons as one process: every delivery and timer
// tick is offered to each child in order. Children must ignore message
// types and timer keys they do not own — all protocol automatons in this
// repository follow that convention (messages are dispatched by concrete
// type, timer keys carry a package prefix) — so composition lets one
// process run, for example, an Omega detector and a consensus engine side
// by side on a single runtime slot.
func Compose(children ...Automaton) Automaton {
	return composite(children)
}

type composite []Automaton

// Start implements Automaton.
func (c composite) Start(env Env) {
	for _, a := range c {
		a.Start(env)
	}
}

// Deliver implements Automaton.
func (c composite) Deliver(from ID, m Message) {
	for _, a := range c {
		a.Deliver(from, m)
	}
}

// Tick implements Automaton.
func (c composite) Tick(key string) {
	for _, a := range c {
		a.Tick(key)
	}
}
