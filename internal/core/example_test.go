package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
)

// Example wires three communication-efficient Omega detectors into a
// simulated world and reads the agreed leader.
func Example() {
	world, err := node.NewWorld(node.WorldConfig{
		N:           3,
		Seed:        1,
		DefaultLink: network.Timely(2 * time.Millisecond),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	detectors := make([]*core.Detector, 3)
	for i := range detectors {
		detectors[i] = core.New(core.WithEta(10 * time.Millisecond))
		world.SetAutomaton(node.ID(i), detectors[i])
	}
	world.Start()
	world.RunFor(time.Second)

	for i, d := range detectors {
		fmt.Printf("p%d trusts p%v\n", i, d.Leader())
	}
	// After stabilization only the leader sends: n-1 = 2 messages per η.
	fmt.Println("steady-state senders:", len(world.Stats.SendersSince(world.Kernel.Now().Add(-100*time.Millisecond))))
	// Output:
	// p0 trusts p0
	// p1 trusts p0
	// p2 trusts p0
	// steady-state senders: 1
}
