package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// TestRandomAdversaryLosslessAlwaysConverges is the core liveness property
// under the paper's assumptions, tested against a randomized adversary:
// every directed link independently gets a random lossless profile
// (timely with random bound, eventually timely with random GST-era chaos,
// or reliable with random delays), and a random minority of processes
// crashes at random times. In every such world the algorithm must reach
// agreement on a correct leader and stay there.
func TestRandomAdversaryLosslessAlwaysConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized sweep")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3..6
		gst := sim.At(time.Duration(rng.Intn(300)) * time.Millisecond)

		w, err := node.NewWorld(node.WorldConfig{
			N: n, Seed: seed, GST: gst,
			DefaultLink: network.Timely(2 * time.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				if err := w.Fabric.SetProfile(from, to, randomLosslessProfile(rng)); err != nil {
					t.Fatal(err)
				}
			}
		}
		ds := make([]*Detector, n)
		for i := range ds {
			ds[i] = New(WithEta(10 * time.Millisecond))
			w.SetAutomaton(node.ID(i), ds[i])
		}
		w.Start()
		// Crash a random strict minority at random times.
		crashes := rng.Intn(n) // 0..n-1, keeps at least one alive
		perm := rng.Perm(n)
		for i := 0; i < crashes; i++ {
			w.CrashAt(node.ID(perm[i]), sim.At(time.Duration(rng.Intn(500))*time.Millisecond))
		}
		// "Eventually forever" under random delays has heavy tails: a
		// rare long delivery gap can flip the leader once more before
		// the grown timeout absorbs it. Run until the outputs have been
		// simultaneously stable and agreed for 15 virtual seconds, with
		// a generous cap.
		const (
			stableFor  = 15 * time.Second
			horizonCap = 5 * time.Minute
		)
		stableAndAgreed := func() (node.ID, bool) {
			leader := node.None
			lastChange := sim.TimeZero
			for i, d := range ds {
				if !w.Alive(node.ID(i)) {
					continue
				}
				if leader == node.None {
					leader = d.Leader()
				} else if d.Leader() != leader {
					return node.None, false
				}
				if at, _ := d.History().StableSince(); at > lastChange {
					lastChange = at
				}
			}
			if leader == node.None || !w.Alive(leader) {
				return node.None, false
			}
			return leader, w.Kernel.Now().Sub(lastChange) >= stableFor
		}
		var leader node.ID
		for {
			w.RunFor(5 * time.Second)
			var ok bool
			if leader, ok = stableAndAgreed(); ok {
				break
			}
			if w.Kernel.Now() > sim.At(horizonCap) {
				t.Fatalf("seed %d (n=%d, gst=%v): no stable agreement within %v", seed, n, gst, horizonCap)
			}
		}
		// Communication efficiency: only the leader sent during the
		// stable window.
		senders := w.Stats.SendersSince(w.Kernel.Now().Add(-stableFor + time.Second))
		if len(senders) != 1 || senders[0] != int(leader) {
			t.Fatalf("seed %d: steady-state senders = %v, leader = p%v", seed, senders, leader)
		}
	}
}

// randomLosslessProfile draws a profile that never loses messages after
// its chaos era — the reliability assumption of the core algorithm.
func randomLosslessProfile(rng *rand.Rand) network.Profile {
	ms := time.Millisecond
	switch rng.Intn(3) {
	case 0:
		return network.Timely(time.Duration(1+rng.Intn(20)) * ms)
	case 1:
		return network.EventuallyTimely(
			time.Duration(1+rng.Intn(5))*ms,
			time.Duration(20+rng.Intn(100))*ms,
			0, // lossless chaos before GST
		)
	default:
		lo := time.Duration(1+rng.Intn(5)) * ms
		return network.Reliable(lo, lo+time.Duration(10+rng.Intn(80))*ms)
	}
}
