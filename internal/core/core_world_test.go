package core

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

// eta is the heartbeat period used by the end-to-end tests.
const eta = 10 * ms

// buildWorld wires n core detectors into a simulated world.
func buildWorld(t *testing.T, n int, seed int64, link network.Profile, gst sim.Time, opts ...Option) (*node.World, []*Detector) {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{
		N:           n,
		Seed:        seed,
		GST:         gst,
		DefaultLink: link,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*Detector, n)
	for i := range ds {
		ds[i] = New(append([]Option{WithEta(eta)}, opts...)...)
		w.SetAutomaton(node.ID(i), ds[i])
	}
	return w, ds
}

// assertAgreement checks that every alive process trusts the same correct
// process.
func assertAgreement(t *testing.T, w *node.World, ds []*Detector) node.ID {
	t.Helper()
	leader := node.None
	for i, d := range ds {
		if !w.Alive(node.ID(i)) {
			continue
		}
		if leader == node.None {
			leader = d.Leader()
		} else if d.Leader() != leader {
			t.Fatalf("disagreement: p%d trusts p%v, others trust p%v", i, d.Leader(), leader)
		}
	}
	if leader == node.None {
		t.Fatal("no alive process")
	}
	if !w.Alive(leader) {
		t.Fatalf("agreed leader p%v is crashed", leader)
	}
	return leader
}

func TestConvergesWithTimelyLinks(t *testing.T) {
	w, ds := buildWorld(t, 5, 1, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	if got := assertAgreement(t, w, ds); got != 0 {
		t.Fatalf("leader = p%v, want p0 with all links timely", got)
	}
	// Communication efficiency: after stabilization only p0 sends.
	quiet := w.Stats.QuietSince(0)
	if quiet > sim.At(500*ms) {
		t.Fatalf("not quiet until %v; someone besides the leader keeps sending", quiet)
	}
	senders := w.Stats.SendersSince(sim.At(500 * ms))
	if len(senders) != 1 || senders[0] != 0 {
		t.Fatalf("senders after stabilization = %v, want [0]", senders)
	}
}

func TestLeaderCrashTriggersReelection(t *testing.T) {
	w, ds := buildWorld(t, 5, 2, network.Timely(2*ms), 0)
	w.Start()
	w.CrashAt(0, sim.At(300*ms))
	w.RunFor(time.Second)
	leader := assertAgreement(t, w, ds)
	if leader == 0 {
		t.Fatal("crashed p0 still trusted")
	}
	if leader != 1 {
		t.Fatalf("leader = p%v, want p1 (next lowest id)", leader)
	}
	senders := w.Stats.SendersSince(sim.At(800 * ms))
	if len(senders) != 1 || senders[0] != int(leader) {
		t.Fatalf("senders after re-election = %v, want [%d]", senders, leader)
	}
}

func TestCascadingCrashes(t *testing.T) {
	w, ds := buildWorld(t, 6, 3, network.Timely(2*ms), 0)
	w.Start()
	w.CrashAt(0, sim.At(200*ms))
	w.CrashAt(1, sim.At(400*ms))
	w.CrashAt(2, sim.At(600*ms))
	w.RunFor(1500 * ms)
	leader := assertAgreement(t, w, ds)
	if leader != 3 {
		t.Fatalf("leader = p%v, want p3 after p0..p2 crashed", leader)
	}
}

func TestConvergesAfterGST(t *testing.T) {
	// Note the pre-GST drop probability is zero: the paper's
	// communication-efficient algorithm assumes reliable links (delays
	// may be wild before GST, but nothing is lost). Loss regimes are
	// probed by experiment E8, where this algorithm is expected to fail.
	gst := sim.At(300 * ms)
	w, ds := buildWorld(t, 5, 4, network.EventuallyTimely(2*ms, 200*ms, 0), gst)
	w.Start()
	w.RunFor(3 * time.Second)
	assertAgreement(t, w, ds)
	// After GST plus slack, only the leader should be talking.
	leader := ds[0].Leader()
	quiet := w.Stats.QuietSince(int(leader))
	if quiet > sim.At(2500*ms) {
		t.Fatalf("no communication quiescence by %v", quiet)
	}
}

func TestSourceOnlyTopologyStillElects(t *testing.T) {
	// Only p3's outgoing links are eventually timely; every other link is
	// reliable but slow. The paper's minimal assumption for the
	// communication-efficient algorithm.
	const n, src = 5, 3
	w, ds := buildWorld(t, n, 5, network.Reliable(5*ms, 120*ms), 0)
	if err := w.Fabric.SetOutgoing(src, network.Timely(2*ms)); err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.RunFor(20 * time.Second)
	leader := assertAgreement(t, w, ds)
	// Any correct stable leader satisfies Omega; with growing timeouts a
	// reliable-link process may stabilize too. What must hold is
	// communication efficiency from some point on.
	senders := w.Stats.SendersSince(sim.At(19 * time.Second))
	if len(senders) != 1 || senders[0] != int(leader) {
		t.Fatalf("senders in final second = %v, leader = p%v", senders, leader)
	}
}

func TestSourceTopologyWithCrashes(t *testing.T) {
	// p0 and p1 crash; p2 is the ◊-source. The system must converge on a
	// correct process and go quiet.
	const n, src = 5, 2
	w, ds := buildWorld(t, n, 6, network.Reliable(5*ms, 120*ms), 0)
	if err := w.Fabric.SetOutgoing(src, network.Timely(2*ms)); err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.CrashAt(0, sim.At(100*ms))
	w.CrashAt(1, sim.At(150*ms))
	w.RunFor(20 * time.Second)
	leader := assertAgreement(t, w, ds)
	if leader == 0 || leader == 1 {
		t.Fatalf("crashed process p%v trusted", leader)
	}
	senders := w.Stats.SendersSince(sim.At(19 * time.Second))
	if len(senders) != 1 || senders[0] != int(leader) {
		t.Fatalf("senders in final second = %v, leader = p%v", senders, leader)
	}
}

func TestOnlyLeaderLinksCarryTrafficForever(t *testing.T) {
	w, ds := buildWorld(t, 8, 7, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(2 * time.Second)
	leader := assertAgreement(t, w, ds)
	links := w.Stats.LinksUsedSince(sim.At(1500 * ms))
	if links != 7 {
		t.Fatalf("links used in steady state = %d, want n-1 = 7 (leader p%v)", links, leader)
	}
}

func TestSteadyStateMessageRate(t *testing.T) {
	w, ds := buildWorld(t, 10, 8, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(2 * time.Second)
	assertAgreement(t, w, ds)
	// In one η window the leader broadcasts once: n-1 messages.
	got := w.Stats.MessagesInWindow(sim.At(1800*ms), sim.At(1800*ms+eta))
	if got != 9 {
		t.Fatalf("steady-state messages per η = %d, want 9", got)
	}
}

func TestManySeedsAlwaysConverge(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		gst := sim.At(200 * ms)
		w, ds := buildWorld(t, 4, seed, network.EventuallyTimely(3*ms, 100*ms, 0), gst)
		w.Start()
		w.CrashAt(node.ID(seed%4), sim.At(50*ms*time.Duration(seed%7+1)).Add(0))
		w.RunFor(5 * time.Second)
		leader := node.None
		for i, d := range ds {
			if !w.Alive(node.ID(i)) {
				continue
			}
			if leader == node.None {
				leader = d.Leader()
			}
			if d.Leader() != leader || !w.Alive(leader) {
				t.Fatalf("seed %d: p%d trusts p%v (alive leaders must agree)", seed, i, d.Leader())
			}
		}
	}
}

func TestAsymmetricDelaysNoSplitBrain(t *testing.T) {
	// Adversarial: p0's links to half the system are fast, to the other
	// half slow; likewise p1 in mirror. Without accusation messages this
	// is the classic split-brain scenario (see ablation test below).
	w, ds := buildWorld(t, 6, 9, network.Timely(2*ms), 0)
	slow := network.Reliable(60*ms, 100*ms)
	for _, to := range []int{3, 4, 5} {
		if err := w.Fabric.SetProfile(0, to, slow); err != nil {
			t.Fatal(err)
		}
	}
	for _, to := range []int{1, 2} {
		if err := w.Fabric.SetProfile(1, to, slow); err != nil {
			t.Fatal(err)
		}
	}
	w.Start()
	w.RunFor(30 * time.Second)
	assertAgreement(t, w, ds)
	senders := w.Stats.SendersSince(sim.At(29 * time.Second))
	if len(senders) != 1 {
		t.Fatalf("multiple senders in steady state: %v", senders)
	}
}

func TestAblationNoTimeoutGrowthOscillates(t *testing.T) {
	// The only viable leader's messages always arrive after the fixed
	// timeout, so without growth the followers suspect it forever.
	w, ds := buildWorld(t, 3, 10, network.Timely(50*ms), 0,
		WithBaseTimeout(20*ms), WithoutTimeoutGrowth())
	w.Fabric.SetGST(0)
	w.Start()
	w.RunFor(3 * time.Second)
	// Leadership must keep changing at some process: compare change
	// counts in the first and second halves of the run.
	totalChanges := 0
	for _, d := range ds {
		totalChanges += d.History().NumChanges()
	}
	if totalChanges < 20 {
		t.Fatalf("expected sustained oscillation, saw only %d changes", totalChanges)
	}
	// Control: with growth the same system stabilizes.
	w2, ds2 := buildWorld(t, 3, 10, network.Timely(50*ms), 0, WithBaseTimeout(20*ms))
	w2.Start()
	w2.RunFor(10 * time.Second)
	assertAgreement(t, w2, ds2)
	last := sim.TimeZero
	for _, d := range ds2 {
		if at, _ := d.History().StableSince(); at > last {
			last = at
		}
	}
	if last > sim.At(8*time.Second) {
		t.Fatalf("control run still changing leaders at %v", last)
	}
}

func TestAblationNoAccuseMessagesSplitBrain(t *testing.T) {
	// p0 is fast toward p2..p5 but its link to p1 is down; p1 never hears
	// p0, accuses locally only, and believes itself leader forever while
	// everyone else follows p0: permanent split-brain, two senders.
	w, ds := buildWorld(t, 6, 11, network.Timely(2*ms), 0, WithoutAccuseMessages())
	if err := w.Fabric.SetProfile(0, 1, network.Down()); err != nil {
		t.Fatal(err)
	}
	// Also silence everyone else toward p1 so it cannot learn p0's
	// heartbeat epoch indirectly... (no relaying in the base algorithm,
	// so this is already the case; the cut link alone suffices.)
	w.Start()
	w.RunFor(5 * time.Second)
	if ds[1].Leader() != 1 {
		t.Fatalf("p1 leader = p%v, want itself (split-brain)", ds[1].Leader())
	}
	if ds[2].Leader() != 0 {
		t.Fatalf("p2 leader = p%v, want p0", ds[2].Leader())
	}
	senders := w.Stats.SendersSince(sim.At(4 * time.Second))
	if len(senders) != 2 {
		t.Fatalf("senders = %v, want the two split leaders", senders)
	}
	// Control: with accusation messages the identical topology converges,
	// because p1's accusations raise p0's counter at p0 itself... they
	// cannot (p1→p0 works; p0 hears and demotes? p0's counter rises and
	// it eventually yields). Assert single steady-state sender.
	w2, ds2 := buildWorld(t, 6, 11, network.Timely(2*ms), 0)
	if err := w2.Fabric.SetProfile(0, 1, network.Down()); err != nil {
		t.Fatal(err)
	}
	w2.Start()
	w2.RunFor(30 * time.Second)
	senders2 := w2.Stats.SendersSince(sim.At(29 * time.Second))
	if len(senders2) != 1 {
		t.Fatalf("control run kept %v senders", senders2)
	}
	_ = ds2
}
