package core

import (
	"testing"
	"time"

	"repro/internal/node"
)

// startDetector boots a detector on a fake env and clears boot traffic.
func startDetector(id node.ID, n int, opts ...Option) (*Detector, *fakeEnv) {
	d := New(opts...)
	env := newFakeEnv(id, n)
	d.Start(env)
	return d, env
}

func TestInitialLeaderIsLowestID(t *testing.T) {
	for id := 0; id < 3; id++ {
		d, _ := startDetector(node.ID(id), 3)
		if got := d.Leader(); got != 0 {
			t.Fatalf("p%d initial leader = %v, want p0", id, got)
		}
	}
}

func TestSelfBelievedLeaderBroadcastsOnHeartbeat(t *testing.T) {
	d, env := startDetector(0, 4)
	env.drain() // boot announcement
	d.Tick(timerHeartbeat)
	msgs := env.drain()
	if len(msgs) != 3 {
		t.Fatalf("heartbeat sent %d messages, want 3", len(msgs))
	}
	for _, s := range msgs {
		lm, ok := s.msg.(LeaderMsg)
		if !ok {
			t.Fatalf("sent %T, want LeaderMsg", s.msg)
		}
		if lm.Epoch != 0 {
			t.Fatalf("epoch = %d, want 0", lm.Epoch)
		}
	}
	if !env.armed(timerHeartbeat) {
		t.Fatal("heartbeat timer not re-armed")
	}
}

func TestNonLeaderStaysSilentOnHeartbeat(t *testing.T) {
	d, env := startDetector(2, 4)
	env.drain()
	d.Tick(timerHeartbeat)
	if msgs := env.drain(); len(msgs) != 0 {
		t.Fatalf("non-leader sent %d messages on heartbeat", len(msgs))
	}
	if !env.armed(timerMonitor) {
		t.Fatal("non-leader is not monitoring the leader")
	}
}

func TestBootAnnouncement(t *testing.T) {
	_, env := startDetector(0, 3)
	msgs := env.drain()
	if len(msgs) != 2 {
		t.Fatalf("boot broadcast %d messages, want 2", len(msgs))
	}
}

func TestTimeoutAccusesLeader(t *testing.T) {
	d, env := startDetector(1, 3)
	env.drain()
	d.Tick(timerMonitor)
	msgs := env.drain()
	// One ACCUSE to p0, plus a boot announcement now that p1 thinks it
	// leads (counter[0]=1 makes p1 the argmin).
	var accuses, leaders int
	for _, s := range msgs {
		switch m := s.msg.(type) {
		case AccuseMsg:
			accuses++
			if s.to != 0 {
				t.Fatalf("accusation sent to p%d, want p0", s.to)
			}
			if m.Epoch != 0 {
				t.Fatalf("accusation epoch = %d, want 0", m.Epoch)
			}
		case LeaderMsg:
			leaders++
		}
	}
	if accuses != 1 {
		t.Fatalf("accusations = %d, want 1", accuses)
	}
	if leaders != 2 {
		t.Fatalf("leadership announcements = %d, want 2", leaders)
	}
	if d.Leader() != 1 {
		t.Fatalf("leader after accusing p0 = %v, want self", d.Leader())
	}
	if d.Counter(0) != 1 {
		t.Fatalf("counter[0] = %d, want 1", d.Counter(0))
	}
	if d.AccusationsSent() != 1 {
		t.Fatalf("AccusationsSent = %d", d.AccusationsSent())
	}
}

func TestTimeoutPrefersNextCandidateOverSelf(t *testing.T) {
	// p2 times out on p0; the next argmin is p1 (counter 0), not p2.
	d, env := startDetector(2, 3)
	env.drain()
	d.Tick(timerMonitor)
	if d.Leader() != 1 {
		t.Fatalf("leader = %v, want p1", d.Leader())
	}
	if !env.armed(timerMonitor) {
		t.Fatal("not monitoring the new leader")
	}
}

func TestLeaderMsgMergesEpochAndRefreshesWatchdog(t *testing.T) {
	d, env := startDetector(1, 3)
	env.drain()
	env.StopTimer(timerMonitor)
	d.Deliver(0, LeaderMsg{Epoch: 0})
	if !env.armed(timerMonitor) {
		t.Fatal("heartbeat from leader did not refresh watchdog")
	}
	d.Deliver(0, LeaderMsg{Epoch: 7})
	if d.Counter(0) != 7 {
		t.Fatalf("counter[0] = %d, want 7 (max-merge)", d.Counter(0))
	}
	// Lower epochs must not roll the counter back.
	d.Deliver(0, LeaderMsg{Epoch: 3})
	if d.Counter(0) != 7 {
		t.Fatalf("counter[0] = %d after stale heartbeat, want 7", d.Counter(0))
	}
}

func TestHeartbeatFromNonLeaderDoesNotRefreshWatchdog(t *testing.T) {
	// If the watchdog were refreshed by any traffic, a silent leader
	// could be masked forever by a chatty non-leader.
	d, env := startDetector(2, 4)
	env.drain()
	env.StopTimer(timerMonitor)
	d.Deliver(3, LeaderMsg{Epoch: 5}) // p3 is not p2's leader (p0 is)
	if d.Leader() != 0 {
		t.Fatalf("leader = %v, want p0", d.Leader())
	}
	if env.armed(timerMonitor) {
		t.Fatal("watchdog refreshed by non-leader heartbeat")
	}
}

func TestDemotionOnBetterCandidate(t *testing.T) {
	// p0 believes it leads; an accusation pushes its counter past p1's,
	// so p0 must demote itself and start monitoring p1.
	d, env := startDetector(0, 3)
	env.drain()
	d.Deliver(2, AccuseMsg{Epoch: 0})
	if d.Counter(0) != 1 {
		t.Fatalf("counter[self] = %d, want 1", d.Counter(0))
	}
	if d.Leader() != 1 {
		t.Fatalf("leader = %v, want p1 after self-demotion", d.Leader())
	}
	if !env.armed(timerMonitor) {
		t.Fatal("demoted leader is not monitoring its successor")
	}
	d.Tick(timerHeartbeat)
	for _, s := range env.drain() {
		if _, ok := s.msg.(LeaderMsg); ok {
			t.Fatal("demoted leader still broadcasting")
		}
	}
}

func TestEpochGuardIgnoresStaleAccusations(t *testing.T) {
	d, _ := startDetector(0, 2)
	d.Deliver(1, AccuseMsg{Epoch: 0})
	if d.Counter(0) != 1 {
		t.Fatalf("counter = %d, want 1", d.Counter(0))
	}
	// A duplicate accusation for epoch 0 must be ignored.
	d.Deliver(1, AccuseMsg{Epoch: 0})
	if d.Counter(0) != 1 {
		t.Fatalf("counter = %d after duplicate, want 1", d.Counter(0))
	}
	// An accusation for a future epoch fast-forwards.
	d.Deliver(1, AccuseMsg{Epoch: 5})
	if d.Counter(0) != 6 {
		t.Fatalf("counter = %d, want 6", d.Counter(0))
	}
}

func TestWithoutEpochGuardInflatesCounter(t *testing.T) {
	d, _ := startDetector(0, 2, WithoutEpochGuard())
	d.Deliver(1, AccuseMsg{Epoch: 0})
	d.Deliver(1, AccuseMsg{Epoch: 0})
	d.Deliver(1, AccuseMsg{Epoch: 0})
	if d.Counter(0) != 3 {
		t.Fatalf("counter = %d, want 3 (no guard)", d.Counter(0))
	}
}

func TestTimeoutGrowth(t *testing.T) {
	eta := 10 * time.Millisecond
	d, env := startDetector(1, 2, WithEta(eta))
	env.drain()
	first := env.timers[timerMonitor]
	// Round 1: p1 accuses p0 and takes over; an accusation against p1
	// then hands leadership back to p0 (tie broken by id), so p1 arms a
	// fresh watchdog on p0 with the grown timeout.
	d.Tick(timerMonitor)
	d.Deliver(0, AccuseMsg{Epoch: 0})
	if got, want := env.timers[timerMonitor], first+eta; got != want {
		t.Fatalf("timeout after one accusation = %v, want %v", got, want)
	}
	// Round 2 grows it again.
	d.Tick(timerMonitor)
	d.Deliver(0, AccuseMsg{Epoch: 1})
	if got, want := env.timers[timerMonitor], first+2*eta; got != want {
		t.Fatalf("timeout after two accusations = %v, want %v", got, want)
	}
}

func TestWithoutTimeoutGrowthKeepsTimeoutFixed(t *testing.T) {
	d, env := startDetector(1, 2, WithoutTimeoutGrowth())
	env.drain()
	first := env.timers[timerMonitor]
	d.Tick(timerMonitor)
	d.Deliver(0, AccuseMsg{Epoch: 0}) // hands leadership back to p0
	second := env.timers[timerMonitor]
	if second != first {
		t.Fatalf("timeout changed without growth: %v → %v", first, second)
	}
}

func TestWithoutAccuseMessagesBumpsOnlyLocally(t *testing.T) {
	d, env := startDetector(1, 2, WithoutAccuseMessages())
	env.drain()
	d.Tick(timerMonitor)
	for _, s := range env.drain() {
		if _, ok := s.msg.(AccuseMsg); ok {
			t.Fatal("ablation still sent an ACCUSE message")
		}
	}
	if d.Counter(0) != 1 {
		t.Fatalf("local counter = %d, want 1", d.Counter(0))
	}
	if d.AccusationsSent() != 0 {
		t.Fatal("AccusationsSent counted without messages")
	}
}

func TestStaleMonitorTickWhileLeaderIsHarmless(t *testing.T) {
	d, env := startDetector(0, 2)
	env.drain()
	// p0 is its own leader; a stray monitor tick must not accuse anyone.
	d.Tick(timerMonitor)
	if msgs := env.drain(); len(msgs) != 0 {
		t.Fatalf("stray tick sent %v", msgs)
	}
	if d.Leader() != 0 {
		t.Fatalf("leader = %v", d.Leader())
	}
}

func TestUnknownMessageIgnored(t *testing.T) {
	d, env := startDetector(1, 2)
	env.drain()
	d.Deliver(0, pingMsg{})
	if msgs := env.drain(); len(msgs) != 0 {
		t.Fatalf("unknown message triggered sends: %v", msgs)
	}
	if d.Leader() != 0 {
		t.Fatal("unknown message changed the leader")
	}
}

type pingMsg struct{}

func (pingMsg) Kind() string { return "PING" }

func TestHistoryRecordsTransitions(t *testing.T) {
	d, env := startDetector(1, 3)
	env.advance(time.Millisecond)
	d.Tick(timerMonitor) // leader p0 → p1? argmin after bump is p1
	changes := d.History().Changes()
	if len(changes) != 2 {
		t.Fatalf("changes = %v, want boot + one transition", changes)
	}
	if changes[0].Leader != 0 || changes[1].Leader != 1 {
		t.Fatalf("changes = %v, want p0 then p1", changes)
	}
}

func TestTieBreakByID(t *testing.T) {
	d, _ := startDetector(2, 3)
	// All counters equal → lowest id wins.
	if d.Leader() != 0 {
		t.Fatalf("leader = %v, want p0 on all-zero counters", d.Leader())
	}
	// counter[0]=1, counter[1]=1, counter[2]=0 → p2.
	d.Deliver(0, LeaderMsg{Epoch: 1})
	d.Deliver(1, LeaderMsg{Epoch: 1})
	if d.Leader() != 2 {
		t.Fatalf("leader = %v, want p2", d.Leader())
	}
}

func TestNewPanicsOnBadEta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eta <= 0")
		}
	}()
	New(WithEta(-time.Second))
}
