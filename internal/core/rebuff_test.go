package core

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// partitionedWorld builds an n-process world, isolates the initial leader
// p0 during [from, to) (dropping everything — harsher than the paper's
// reliable-link model), then heals.
func partitionedWorld(t *testing.T, seed int64, opts ...Option) (*node.World, []*Detector) {
	t.Helper()
	w, ds := buildWorld(t, 5, seed, network.Timely(2*ms), 0, opts...)
	w.Start()
	w.Kernel.ScheduleAt(sim.At(300*ms), func() { w.Fabric.Isolate(0) })
	w.Kernel.ScheduleAt(sim.At(1500*ms), func() { w.Fabric.Rejoin(0) })
	return w, ds
}

// TestLossyPartitionStrandsStaleLeader documents the limitation the paper's
// reliable-link assumption avoids: if a partition *drops* the accusations
// aimed at the isolated leader, after healing it keeps believing it leads
// (its self-count never caught up) and the system is stuck with two
// senders.
func TestLossyPartitionStrandsStaleLeader(t *testing.T) {
	w, ds := partitionedWorld(t, 1)
	w.RunFor(10 * time.Second)
	if got := ds[0].Leader(); got != 0 {
		t.Fatalf("p0 leader = p%v; expected it to remain stuck on itself", got)
	}
	if got := ds[1].Leader(); got == 0 {
		t.Fatalf("p1 still trusts the stale p0")
	}
	senders := w.Stats.SendersSince(sim.At(9 * time.Second))
	if len(senders) != 2 {
		t.Fatalf("steady-state senders = %v, want the split pair", senders)
	}
}

// TestRebuffHealsPartition shows the WithRebuff extension repairing the
// same scenario: the first heartbeat the healed p0 sends is answered with
// its real accusation count, p0 demotes itself, and the system returns to
// one leader and one sender.
func TestRebuffHealsPartition(t *testing.T) {
	w, ds := partitionedWorld(t, 1, WithRebuff())
	w.RunFor(10 * time.Second)
	leader := ds[1].Leader()
	for i, d := range ds {
		if d.Leader() != leader {
			t.Fatalf("p%d trusts p%v, others p%v", i, d.Leader(), leader)
		}
	}
	if leader == 0 {
		t.Fatalf("stale p0 still leads after rebuff")
	}
	senders := w.Stats.SendersSince(sim.At(9 * time.Second))
	if len(senders) != 1 || senders[0] != int(leader) {
		t.Fatalf("steady-state senders = %v, want only p%v", senders, leader)
	}
	// Rebuffs are finite: none in the steady-state tail.
	if got := w.Stats.KindCount(KindRebuff); got == 0 {
		t.Fatal("no rebuffs were sent at all")
	}
}

// TestRebuffNeverFiresUnderModelAssumptions: with reliable (here timely)
// links and no partition, heartbeat epochs are always current, so the
// extension costs nothing.
func TestRebuffNeverFiresUnderModelAssumptions(t *testing.T) {
	w, ds := buildWorld(t, 5, 2, network.Timely(2*ms), 0, WithRebuff())
	w.Start()
	w.CrashAt(0, sim.At(300*ms))
	w.RunFor(5 * time.Second)
	assertAgreement(t, w, ds)
	if got := w.Stats.KindCount(KindRebuff); got != 0 {
		t.Fatalf("rebuffs sent in a well-behaved run: %d", got)
	}
}

// TestRebuffUnitSemantics checks the message handlers directly.
func TestRebuffUnitSemantics(t *testing.T) {
	d, env := startDetector(0, 3, WithRebuff())
	env.drain()
	// A heartbeat from p2 claiming epoch 1 while we know 5 gets rebuffed.
	d.counter[2] = 5
	d.Deliver(2, LeaderMsg{Epoch: 1})
	out := env.drain()
	found := false
	for _, s := range out {
		if rb, ok := s.msg.(RebuffMsg); ok {
			found = true
			if s.to != 2 || rb.Epoch != 5 {
				t.Fatalf("rebuff = %+v to p%v", rb, s.to)
			}
		}
	}
	if !found {
		t.Fatalf("no rebuff sent: %v", out)
	}
	// Receiving a rebuff raises our own count (and only raises).
	d.Deliver(1, RebuffMsg{Epoch: 9})
	if d.Counter(0) != 9 {
		t.Fatalf("counter = %d, want 9", d.Counter(0))
	}
	d.Deliver(1, RebuffMsg{Epoch: 3})
	if d.Counter(0) != 9 {
		t.Fatalf("counter rolled back to %d", d.Counter(0))
	}
}

// TestNoRebuffWithoutOption: the base algorithm must not send rebuffs.
func TestNoRebuffWithoutOption(t *testing.T) {
	d, env := startDetector(0, 3)
	env.drain()
	d.counter[2] = 5
	d.Deliver(2, LeaderMsg{Epoch: 1})
	for _, s := range env.drain() {
		if _, ok := s.msg.(RebuffMsg); ok {
			t.Fatal("rebuff sent without the option")
		}
	}
}
