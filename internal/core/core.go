// Package core implements the paper's primary contribution: a
// communication-efficient Omega (eventual leader election) algorithm for
// crash-stop systems with limited link synchrony.
//
// # System assumptions
//
// Links never duplicate or corrupt messages and are reliable (every message
// sent between live processes is eventually delivered), but delays are
// unbounded except for the output links of at least one correct process —
// an "eventually timely source" (◊-source): there is an unknown global
// stabilization time GST and an unknown bound δ such that every message the
// source sends after GST arrives within δ.
//
// # Algorithm
//
// Every process p keeps an accusation counter counter[q] for each process q
// and elects leader(p) = argmin over q of the pair (counter[q], q) under
// lexicographic order. Only a process that currently believes itself leader
// sends heartbeats: every η it broadcasts LEADER(epoch), where epoch is its
// own accusation count. A process monitoring a leader q arms a timeout;
// when the timeout fires it sends an ACCUSE(epoch) message to q — carrying
// the epoch it is accusing — bumps its local counter[q] to epoch+1,
// increases its timeout for q (so premature suspicions die out after GST),
// and re-elects. A process receiving ACCUSE(e) with e >= its own counter
// advances its counter to e+1 (the epoch guard makes stale or duplicate
// accusations harmless) and re-elects.
//
// # Why it implements Omega and is communication-efficient
//
//   - Accusation counters are monotone and merge by maximum, so the
//     relation "p believes q was accused k times" only grows; the epoch
//     guard ties each increment at the accused to a distinct accusation
//     epoch, so the accused's self-counter always dominates every remote
//     view of it once its heartbeats propagate (links are reliable). This
//     rules out permanent split-brain: two self-believed leaders exchange
//     heartbeats and the lexicographically larger one demotes itself.
//   - A ◊-source that becomes leader stops being accused: each of the
//     finitely many accusations grows the accuser's timeout past δ + η
//     eventually, so the source's counter stabilizes system-wide. Any
//     process with a forever-smaller (counter, id) pair either broadcasts
//     timely forever (then it is a stable correct leader — Omega holds with
//     it) or keeps being accused until it is ordered after the source.
//     Hence eventually exactly one correct process believes itself leader
//     and everyone else trusts it.
//   - After that point only the leader sends: heartbeats flow on exactly
//     n−1 links, and no accusations are generated — the algorithm is
//     communication-efficient in the paper's sense.
//
// The package also exposes ablation switches (WithoutTimeoutGrowth,
// WithoutEpochGuard, WithoutAccuseMessages) used by experiment E9 to show
// that each mechanism is load-bearing, and one robustness extension beyond
// the paper's model (WithRebuff, experiment E13) that repairs the
// stale-self-leader deadlock left behind by message loss the reliable-link
// assumption forbids.
package core

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/node"
	"repro/internal/obs"
)

// Message kind tags.
const (
	// KindLeader tags heartbeat broadcasts from self-believed leaders.
	KindLeader = "LEADER"
	// KindAccuse tags point-to-point accusations.
	KindAccuse = "ACCUSE"
	// KindRebuff tags stale-leader corrections (WithRebuff extension).
	KindRebuff = "REBUFF"
)

// Kind ids are interned once at package init so the steady-state send path
// (a leader heartbeat every η) never hashes a kind string.
var (
	kindLeaderID = obs.Intern(KindLeader)
	kindAccuseID = obs.Intern(KindAccuse)
	kindRebuffID = obs.Intern(KindRebuff)
)

// LeaderMsg is the heartbeat a self-believed leader broadcasts every η.
// Epoch is the sender's own accusation count, letting receivers max-merge.
type LeaderMsg struct {
	Epoch uint64
}

// Kind implements node.Message.
func (LeaderMsg) Kind() string { return KindLeader }

// KindID implements node.KindIDer.
func (LeaderMsg) KindID() obs.Kind { return kindLeaderID }

// AccuseMsg tells its receiver "I timed out on you while you were my leader
// during your reign Epoch".
type AccuseMsg struct {
	Epoch uint64
}

// Kind implements node.Message.
func (AccuseMsg) Kind() string { return KindAccuse }

// KindID implements node.KindIDer.
func (AccuseMsg) KindID() obs.Kind { return kindAccuseID }

// RebuffMsg tells a stale self-believed leader "your accusation count is
// really Epoch" (see WithRebuff). It merges existing lattice information;
// it never invents accusations.
type RebuffMsg struct {
	Epoch uint64
}

// Kind implements node.Message.
func (RebuffMsg) Kind() string { return KindRebuff }

// KindID implements node.KindIDer.
func (RebuffMsg) KindID() obs.Kind { return kindRebuffID }

// Timer keys.
const (
	timerHeartbeat = "core/hb"
	timerMonitor   = "core/mon"
)

type config struct {
	eta           time.Duration
	baseTimeout   time.Duration
	increment     time.Duration
	timeoutGrowth bool
	epochGuard    bool
	accuseMsgs    bool
	rebuff        bool
}

// Option customizes the detector.
type Option func(*config)

// WithEta sets the heartbeat period η (default 10ms).
func WithEta(d time.Duration) Option { return func(c *config) { c.eta = d } }

// WithBaseTimeout sets the initial per-process monitoring timeout
// (default 3η).
func WithBaseTimeout(d time.Duration) Option { return func(c *config) { c.baseTimeout = d } }

// WithTimeoutIncrement sets how much a timeout grows per accusation
// (default η).
func WithTimeoutIncrement(d time.Duration) Option { return func(c *config) { c.increment = d } }

// WithoutTimeoutGrowth is an ablation: timeouts stay fixed, so premature
// suspicions never die out and leadership can oscillate forever.
func WithoutTimeoutGrowth() Option { return func(c *config) { c.timeoutGrowth = false } }

// WithoutEpochGuard is an ablation: every received accusation bumps the
// counter, so stale and duplicate accusations inflate it.
func WithoutEpochGuard() Option { return func(c *config) { c.epochGuard = false } }

// WithoutAccuseMessages is an ablation: accusers bump only their local
// counter without telling the accused, which permits permanent split-brain
// under asymmetric delays.
func WithoutAccuseMessages() Option { return func(c *config) { c.accuseMsgs = false } }

// WithRebuff is a robustness extension beyond the paper's model: a process
// receiving a heartbeat from a non-leader whose claimed epoch lags the
// receiver's view answers with the higher count. Under the paper's
// reliable links this never fires after stabilization (heartbeat epochs
// are current), but it repairs the stale-self-leader deadlock left behind
// by a *lossy* partition that swallowed accusations — see experiment E13.
func WithRebuff() Option { return func(c *config) { c.rebuff = true } }

// Detector is the communication-efficient Omega automaton for one process.
type Detector struct {
	cfg  config
	env  node.Env
	me   node.ID
	n    int
	hist *detector.History

	counter []uint64
	timeout []time.Duration
	leader  node.ID

	// accusationsSent counts ACCUSE messages issued, exposed for
	// experiments probing stabilization cost.
	accusationsSent uint64
}

var _ detector.Omega = (*Detector)(nil)

// New returns a detector with the given options applied.
func New(opts ...Option) *Detector {
	cfg := config{
		eta:           10 * time.Millisecond,
		timeoutGrowth: true,
		epochGuard:    true,
		accuseMsgs:    true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.baseTimeout == 0 {
		cfg.baseTimeout = 3 * cfg.eta
	}
	if cfg.increment == 0 {
		cfg.increment = cfg.eta
	}
	if cfg.eta <= 0 {
		panic(fmt.Sprintf("core: non-positive eta %v", cfg.eta))
	}
	return &Detector{cfg: cfg, hist: detector.NewHistory(), leader: node.None}
}

// Leader implements detector.Omega.
func (d *Detector) Leader() node.ID { return d.leader }

// History implements detector.Omega.
func (d *Detector) History() *History { return d.hist }

// History is re-exported so callers needn't import internal/detector for
// the common case.
type History = detector.History

// AccusationsSent returns how many ACCUSE messages this process issued.
func (d *Detector) AccusationsSent() uint64 { return d.accusationsSent }

// Counter returns this process's current accusation count for q (test and
// experiment hook).
func (d *Detector) Counter(q node.ID) uint64 { return d.counter[q] }

// Start implements node.Automaton.
func (d *Detector) Start(env node.Env) {
	d.env = env
	d.me = env.ID()
	d.n = env.N()
	d.counter = make([]uint64, d.n)
	d.timeout = make([]time.Duration, d.n)
	for i := range d.timeout {
		d.timeout[i] = d.cfg.baseTimeout
	}
	d.elect()
	env.SetTimer(timerHeartbeat, d.cfg.eta)
}

// Deliver implements node.Automaton.
func (d *Detector) Deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case LeaderMsg:
		if msg.Epoch > d.counter[from] {
			d.counter[from] = msg.Epoch
		}
		d.elect()
		if d.leader == from {
			// Heartbeat from the current leader refreshes the watchdog.
			d.env.SetTimer(timerMonitor, d.timeout[from])
		} else if d.cfg.rebuff && d.counter[from] > msg.Epoch {
			// The sender believes it leads but its self-count is
			// stale: relay the lattice so it can demote itself.
			d.env.Send(from, RebuffMsg{Epoch: d.counter[from]})
		}
	case RebuffMsg:
		if msg.Epoch > d.counter[d.me] {
			d.counter[d.me] = msg.Epoch
			d.elect()
		}
	case AccuseMsg:
		if d.cfg.epochGuard {
			if msg.Epoch >= d.counter[d.me] {
				d.counter[d.me] = msg.Epoch + 1
			}
		} else {
			d.counter[d.me]++
		}
		d.elect()
	default:
		// Unknown messages are ignored: the detector may share a world
		// with consensus automatons routed by a demultiplexer.
	}
}

// Tick implements node.Automaton.
func (d *Detector) Tick(key string) {
	switch key {
	case timerHeartbeat:
		d.env.SetTimer(timerHeartbeat, d.cfg.eta)
		if d.leader == d.me {
			d.env.Broadcast(LeaderMsg{Epoch: d.counter[d.me]})
		}
	case timerMonitor:
		d.suspectLeader()
	}
}

// suspectLeader handles a monitoring timeout on the current leader.
func (d *Detector) suspectLeader() {
	l := d.leader
	if l == d.me || l == node.None {
		return // stale timer; nothing to accuse
	}
	epoch := d.counter[l]
	if d.cfg.accuseMsgs {
		d.env.Send(l, AccuseMsg{Epoch: epoch})
		d.accusationsSent++
	}
	d.counter[l] = epoch + 1
	if d.cfg.timeoutGrowth {
		d.timeout[l] += d.cfg.increment
	}
	d.elect()
	if d.leader != d.me {
		// Keep monitoring whichever process is now believed leader
		// (possibly the same one, with its larger timeout).
		d.env.SetTimer(timerMonitor, d.timeout[d.leader])
	}
}

// best returns argmin over q of (counter[q], q).
func (d *Detector) best() node.ID {
	best := node.ID(0)
	for q := 1; q < d.n; q++ {
		if d.counter[q] < d.counter[best] {
			best = node.ID(q)
		}
	}
	return best
}

// elect recomputes the leader and, on change, updates the history and the
// monitoring machinery.
func (d *Detector) elect() {
	b := d.best()
	if b == d.leader {
		if d.leader == node.None {
			// Unreachable: best always returns a valid id.
			panic("core: elected no-one")
		}
		return
	}
	d.leader = b
	d.hist.Record(d.env.Now(), b)
	d.env.Logf("leader → p%d (counter=%d)", b, d.counter[b])
	if b == d.me {
		d.env.StopTimer(timerMonitor)
		// Announce leadership immediately rather than waiting for the
		// next heartbeat tick; this speeds up convergence and costs
		// only finitely many extra messages.
		d.env.Broadcast(LeaderMsg{Epoch: d.counter[d.me]})
	} else {
		d.env.SetTimer(timerMonitor, d.timeout[b])
	}
}
