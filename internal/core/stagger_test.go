package core

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// buildStaggered boots n processes one by one (p4 first, p0 last), a
// rolling deployment. Messages to a not-yet-booted process are lost, so —
// like the lossy partition of E13 — a rollout sits outside the paper's
// reliable-link model: accusations against a process that "does not exist
// yet" are swallowed, and its self-count can lag forever.
func buildStaggered(t *testing.T, opts ...Option) (*node.World, []*Detector) {
	t.Helper()
	const n = 5
	starts := make([]sim.Time, n)
	for i := range starts {
		starts[i] = sim.At(time.Duration(n-1-i) * 120 * ms)
	}
	w, err := node.NewWorld(node.WorldConfig{
		N: n, Seed: 3,
		DefaultLink: network.Timely(2 * ms),
		StartAt:     starts,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*Detector, n)
	for i := range ds {
		ds[i] = New(append([]Option{WithEta(eta)}, opts...)...)
		w.SetAutomaton(node.ID(i), ds[i])
	}
	w.Start()
	return w, ds
}

// TestStaggeredRolloutCanStrandWithoutRebuff documents the limitation: the
// base algorithm can deadlock in split-brain after a rollout, because the
// accusations aimed at late-booting processes were lost before they
// existed.
func TestStaggeredRolloutCanStrandWithoutRebuff(t *testing.T) {
	w, ds := buildStaggered(t)
	w.RunFor(5 * time.Second)
	// For this seed, p1 never learns it was accused while unborn and
	// trusts itself next to the majority's leader.
	if ds[1].Leader() == ds[2].Leader() {
		t.Skip("seed converged; the strand is schedule-dependent")
	}
	senders := w.Stats.SendersSince(sim.At(4 * time.Second))
	if len(senders) < 2 {
		t.Fatalf("expected a split-brain sender pair, got %v", senders)
	}
}

// TestStaggeredRolloutConvergesWithRebuff: the rebuff extension repairs
// rollouts exactly as it repairs healed partitions — the stale process's
// first heartbeat is answered with its true accusation count.
func TestStaggeredRolloutConvergesWithRebuff(t *testing.T) {
	w, ds := buildStaggered(t, WithRebuff())
	w.RunFor(5 * time.Second)
	leader := assertAgreement(t, w, ds)
	senders := w.Stats.SendersSince(sim.At(4 * time.Second))
	if len(senders) != 1 || senders[0] != int(leader) {
		t.Fatalf("steady-state senders = %v, leader p%v", senders, leader)
	}
	// The earliest-booting process p4 led itself at some point during
	// its solo phase (it cycles through the unborn lower ids first).
	ledItself := false
	for _, c := range ds[4].History().Changes() {
		if c.Leader == 4 {
			ledItself = true
			break
		}
	}
	if !ledItself {
		t.Fatalf("p4 never led during the rollout: %v", ds[4].History().Changes())
	}
}
