// Package relay implements the paper's assumption-relaxation device:
// message relaying. Wrapping a protocol automaton in a relay makes every
// message flood the system — the first time a process receives a message
// it re-broadcasts it before delivering — so the protocol only needs an
// eventually timely *path* from the source to each process instead of a
// direct eventually timely link.
//
// Messages are made unique with an (origin, sequence) pair; receivers
// deduplicate with a per-origin watermark plus a sparse set, so memory
// stays proportional to reordering, not to history. Point-to-point
// messages carry their destination and are delivered only there, but they
// are still flooded, which is what lets an accusation reach a leader whose
// direct link from the accuser is useless.
//
// The trade, stated by the paper and measured by experiment E10: a relayed
// algorithm is communication-efficient only with respect to processes that
// *originate* new messages forever — the flooding itself keeps all n(n−1)
// links busy. Wrapper.Originated exposes the per-process origination count
// so the checker can verify that eventually only the leader creates new
// messages.
package relay

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// KindRelay tags relayed envelopes. The inner kind is appended for
// accounting, e.g. "RELAY/LEADER".
const KindRelay = "RELAY"

// BroadcastDest marks an envelope addressed to everyone.
const BroadcastDest node.ID = node.None

// Msg is the relayed envelope.
type Msg struct {
	Origin node.ID
	Seq    uint64
	Dest   node.ID // BroadcastDest or a specific process
	Inner  node.Message
}

// Kind implements node.Message.
func (m Msg) Kind() string { return KindRelay + "/" + m.Inner.Kind() }

// relayKindIDs caches the interned "RELAY/<inner>" id per inner kind id
// (+1, so zero means unset), so flooding a heartbeat neither concatenates
// nor hashes strings after the first envelope of each inner kind.
var relayKindIDs [obs.MaxKinds]atomic.Uint32

// KindID implements node.KindIDer.
func (m Msg) KindID() obs.Kind {
	inner := node.MessageKind(m.Inner)
	if v := relayKindIDs[inner].Load(); v != 0 {
		return obs.Kind(v - 1)
	}
	k := obs.Intern(KindRelay + "/" + obs.KindName(inner))
	relayKindIDs[inner].Store(uint32(k) + 1)
	return k
}

// Wrapper runs an inner automaton behind a flooding relay. It implements
// node.Automaton; the inner automaton sees a node.Env whose sends are
// wrapped and flooded.
type Wrapper struct {
	inner node.Automaton
	env   node.Env
	me    node.ID
	seq   uint64
	seen  map[node.ID]*dedup

	originated uint64
	relayed    uint64
}

var _ node.Automaton = (*Wrapper)(nil)

// Wrap returns a relay around inner.
func Wrap(inner node.Automaton) *Wrapper {
	return &Wrapper{inner: inner, seen: make(map[node.ID]*dedup)}
}

// Originated returns how many new (non-relay) messages this process has
// created. With a communication-efficient inner algorithm, eventually only
// the leader's count grows.
func (w *Wrapper) Originated() uint64 { return w.originated }

// Relayed returns how many envelopes this process has forwarded.
func (w *Wrapper) Relayed() uint64 { return w.relayed }

// Inner returns the wrapped automaton (for reading protocol state).
func (w *Wrapper) Inner() node.Automaton { return w.inner }

// Start implements node.Automaton.
func (w *Wrapper) Start(env node.Env) {
	w.env = env
	w.me = env.ID()
	w.inner.Start(&relayEnv{w: w})
}

// Deliver implements node.Automaton.
func (w *Wrapper) Deliver(from node.ID, m node.Message) {
	rm, ok := m.(Msg)
	if !ok {
		// Not a relayed envelope (e.g. a co-located protocol that is
		// not wrapped): pass through untouched.
		w.inner.Deliver(from, m)
		return
	}
	if rm.Origin == w.me {
		return // our own flood came back around
	}
	if !w.firstSighting(rm.Origin, rm.Seq) {
		return
	}
	// Re-broadcast before delivering, skipping the process we got it
	// from and the origin (they have it by definition).
	w.relayed++
	for to := 0; to < w.env.N(); to++ {
		id := node.ID(to)
		if id == w.me || id == from || id == rm.Origin {
			continue
		}
		w.env.Send(id, rm)
	}
	if rm.Dest == BroadcastDest || rm.Dest == w.me {
		w.inner.Deliver(rm.Origin, rm.Inner)
	}
}

// Tick implements node.Automaton.
func (w *Wrapper) Tick(key string) { w.inner.Tick(key) }

// firstSighting records (origin, seq) and reports whether it was new.
func (w *Wrapper) firstSighting(origin node.ID, seq uint64) bool {
	d, ok := w.seen[origin]
	if !ok {
		d = newDedup()
		w.seen[origin] = d
	}
	return d.add(seq)
}

// relayEnv is the Env the inner automaton sees: sends become flooded
// envelopes.
type relayEnv struct {
	w *Wrapper
}

var _ node.Env = (*relayEnv)(nil)

func (e *relayEnv) ID() node.ID   { return e.w.env.ID() }
func (e *relayEnv) N() int        { return e.w.env.N() }
func (e *relayEnv) Now() sim.Time { return e.w.env.Now() }

func (e *relayEnv) Send(to node.ID, m node.Message) {
	e.w.flood(to, m)
}

func (e *relayEnv) Broadcast(m node.Message) {
	e.w.flood(BroadcastDest, m)
}

func (e *relayEnv) SetTimer(key string, d time.Duration) { e.w.env.SetTimer(key, d) }
func (e *relayEnv) StopTimer(key string)                 { e.w.env.StopTimer(key) }
func (e *relayEnv) Logf(format string, args ...any)      { e.w.env.Logf(format, args...) }

// flood creates a fresh envelope and sends it to every other process.
func (w *Wrapper) flood(dest node.ID, m node.Message) {
	if dest != BroadcastDest && (int(dest) < 0 || int(dest) >= w.env.N()) {
		panic(fmt.Sprintf("relay: destination %d out of range", dest))
	}
	rm := Msg{Origin: w.me, Seq: w.seq, Dest: dest, Inner: m}
	w.seq++
	w.originated++
	for to := 0; to < w.env.N(); to++ {
		if node.ID(to) != w.me {
			w.env.Send(node.ID(to), rm)
		}
	}
}

// dedup tracks a set of sequence numbers as a contiguous watermark plus a
// sparse overflow, so long runs use O(reordering) memory.
type dedup struct {
	// watermark w means every seq < w has been seen.
	watermark uint64
	sparse    map[uint64]bool
}

func newDedup() *dedup {
	return &dedup{sparse: make(map[uint64]bool)}
}

// add records seq, returning true if it was new.
func (d *dedup) add(seq uint64) bool {
	if seq < d.watermark || d.sparse[seq] {
		return false
	}
	d.sparse[seq] = true
	for d.sparse[d.watermark] {
		delete(d.sparse, d.watermark)
		d.watermark++
	}
	return true
}

// contains reports whether seq has been seen.
func (d *dedup) contains(seq uint64) bool {
	return seq < d.watermark || d.sparse[seq]
}
