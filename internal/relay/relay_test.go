package relay

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

func TestDedupWatermarkAdvances(t *testing.T) {
	d := newDedup()
	for _, seq := range []uint64{0, 1, 2} {
		if !d.add(seq) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	if d.watermark != 3 {
		t.Fatalf("watermark = %d, want 3", d.watermark)
	}
	if len(d.sparse) != 0 {
		t.Fatalf("sparse not compacted: %v", d.sparse)
	}
	if d.add(1) {
		t.Fatal("duplicate below watermark accepted")
	}
}

func TestDedupOutOfOrder(t *testing.T) {
	d := newDedup()
	order := []uint64{5, 0, 3, 1, 2, 4}
	for _, seq := range order {
		if !d.add(seq) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	if d.watermark != 6 || len(d.sparse) != 0 {
		t.Fatalf("watermark=%d sparse=%v", d.watermark, d.sparse)
	}
	for _, seq := range order {
		if d.add(seq) {
			t.Fatalf("duplicate %d accepted", seq)
		}
	}
}

// TestDedupMatchesSetSemantics is a property test: dedup behaves exactly
// like a set over any insertion sequence.
func TestDedupMatchesSetSemantics(t *testing.T) {
	property := func(seqs []uint16) bool {
		d := newDedup()
		ref := make(map[uint64]bool)
		for _, s := range seqs {
			seq := uint64(s % 128) // force collisions
			wantNew := !ref[seq]
			ref[seq] = true
			if d.add(seq) != wantNew {
				return false
			}
		}
		for seq := uint64(0); seq < 128; seq++ {
			if d.contains(seq) != ref[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// echoInner counts deliveries and answers PING with PONG to the sender.
type echoInner struct {
	env   node.Env
	got   []node.ID // senders of received pings
	pongs int
}

type ping struct{}

func (ping) Kind() string { return "PING" }

type pong struct{}

func (pong) Kind() string { return "PONG" }

func (e *echoInner) Start(env node.Env) { e.env = env }
func (e *echoInner) Deliver(from node.ID, m node.Message) {
	switch m.(type) {
	case ping:
		e.got = append(e.got, from)
		e.env.Send(from, pong{})
	case pong:
		e.pongs++
	}
}
func (e *echoInner) Tick(string) {}

func buildRelayWorld(t *testing.T, n int, link network.Profile) (*node.World, []*Wrapper, []*echoInner) {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: 3, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	wraps := make([]*Wrapper, n)
	inners := make([]*echoInner, n)
	for i := 0; i < n; i++ {
		inners[i] = &echoInner{}
		wraps[i] = Wrap(inners[i])
		w.SetAutomaton(node.ID(i), wraps[i])
	}
	w.Start()
	return w, wraps, inners
}

func TestPointToPointDeliveredOnlyAtDest(t *testing.T) {
	w, _, inners := buildRelayWorld(t, 4, network.Timely(ms))
	// p0 pings p2; everybody floods, but only p2 must deliver.
	inners[0].env.Send(2, ping{})
	w.RunFor(100 * ms)
	if len(inners[2].got) != 1 || inners[2].got[0] != 0 {
		t.Fatalf("p2 got %v, want one ping from p0", inners[2].got)
	}
	for _, i := range []int{1, 3} {
		if len(inners[i].got) != 0 {
			t.Fatalf("bystander p%d delivered a point-to-point ping", i)
		}
	}
	// The pong comes back (also flooded) with from = p2.
	if inners[0].pongs != 1 {
		t.Fatalf("p0 pongs = %d, want 1", inners[0].pongs)
	}
}

func TestBroadcastDeliveredEverywhereOnce(t *testing.T) {
	w, _, inners := buildRelayWorld(t, 5, network.Timely(ms))
	inners[3].env.Broadcast(ping{})
	w.RunFor(100 * ms)
	for i, inner := range inners {
		if i == 3 {
			continue
		}
		if len(inner.got) != 1 {
			t.Fatalf("p%d delivered %d copies, want exactly 1 (dedup)", i, len(inner.got))
		}
		if inner.got[0] != 3 {
			t.Fatalf("p%d saw sender %v, want origin p3", i, inner.got[0])
		}
	}
}

func TestRelayCrossesDeadDirectLink(t *testing.T) {
	w, _, inners := buildRelayWorld(t, 4, network.Timely(ms))
	// Kill the direct links both ways between p0 and p2; the flood must
	// route around them.
	w.Fabric.CutBidirectional(0, 2)
	inners[0].env.Send(2, ping{})
	w.RunFor(100 * ms)
	if len(inners[2].got) != 1 {
		t.Fatalf("p2 got %d pings across dead link, want 1 via relay", len(inners[2].got))
	}
	if inners[0].pongs != 1 {
		t.Fatal("pong did not route back around the dead link")
	}
}

func TestOriginationAccounting(t *testing.T) {
	w, wraps, inners := buildRelayWorld(t, 4, network.Timely(ms))
	inners[0].env.Broadcast(ping{})
	w.RunFor(100 * ms)
	if got := wraps[0].Originated(); got != 1 {
		t.Fatalf("p0 originated = %d, want 1", got)
	}
	// The three receivers each originate one pong.
	for i := 1; i < 4; i++ {
		if got := wraps[i].Originated(); got != 1 {
			t.Fatalf("p%d originated = %d, want 1 (its pong)", i, got)
		}
		if wraps[i].Relayed() == 0 {
			t.Fatalf("p%d relayed nothing", i)
		}
	}
}

func TestNonRelayMessagePassesThrough(t *testing.T) {
	inner := &echoInner{}
	w := Wrap(inner)
	env := &stubEnv{id: 1, n: 3}
	w.Start(env)
	w.Deliver(0, ping{}) // bare message, not an envelope
	if len(inner.got) != 1 || inner.got[0] != 0 {
		t.Fatalf("pass-through failed: %v", inner.got)
	}
}

func TestOwnFloodIgnored(t *testing.T) {
	inner := &echoInner{}
	w := Wrap(inner)
	env := &stubEnv{id: 1, n: 3}
	w.Start(env)
	w.Deliver(2, Msg{Origin: 1, Seq: 0, Dest: BroadcastDest, Inner: ping{}})
	if len(inner.got) != 0 {
		t.Fatal("delivered our own flooded message")
	}
}

func TestInnerAccessor(t *testing.T) {
	inner := &echoInner{}
	if Wrap(inner).Inner() != inner {
		t.Fatal("Inner() mismatch")
	}
}

// TestOmegaOverTimelyPathsOnly is the headline relay test: the ◊-source
// p3 has eventually timely links only to p2, and p2 only to p0/p1 — a
// timely *path* from p3 to everyone, while direct links lose 90% of
// messages. The relayed core algorithm must stabilize; the bare one must
// not.
func TestOmegaOverTimelyPathsOnly(t *testing.T) {
	build := func(relayOn bool) (*node.World, []*core.Detector) {
		w, err := node.NewWorld(node.WorldConfig{
			N: 4, Seed: 9,
			DefaultLink: network.FairLossy(ms, 30*ms, 0.9),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, link := range [][2]int{{3, 2}, {2, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 3}} {
			if err := w.Fabric.SetProfile(link[0], link[1], network.Timely(2*ms)); err != nil {
				t.Fatal(err)
			}
		}
		dets := make([]*core.Detector, 4)
		for i := range dets {
			dets[i] = core.New(core.WithEta(10 * ms))
			if relayOn {
				w.SetAutomaton(node.ID(i), Wrap(dets[i]))
			} else {
				w.SetAutomaton(node.ID(i), dets[i])
			}
		}
		w.Start()
		return w, dets
	}

	w, dets := build(true)
	w.RunFor(30 * time.Second)
	leader := dets[0].Leader()
	lastChange := sim.TimeZero
	for i, d := range dets {
		if d.Leader() != leader {
			t.Fatalf("relayed run diverged: p%d trusts p%v, p0 trusts p%v", i, d.Leader(), leader)
		}
		if at, _ := d.History().StableSince(); at > lastChange {
			lastChange = at
		}
	}
	if lastChange > sim.At(20*time.Second) {
		t.Fatalf("relayed run still flapping at %v", lastChange)
	}

	// Control: without relaying the same topology keeps churning.
	w2, dets2 := build(false)
	w2.RunFor(30 * time.Second)
	flapping := false
	for _, d := range dets2 {
		if at, _ := d.History().StableSince(); at > sim.At(20*time.Second) {
			flapping = true
		}
	}
	agree := true
	for _, d := range dets2 {
		if d.Leader() != dets2[0].Leader() {
			agree = false
		}
	}
	if !flapping && agree {
		t.Fatal("bare algorithm unexpectedly stabilized without timely links")
	}
}

// stubEnv is a minimal env for direct Deliver tests.
type stubEnv struct {
	id node.ID
	n  int
}

func (s *stubEnv) ID() node.ID                    { return s.id }
func (s *stubEnv) N() int                         { return s.n }
func (s *stubEnv) Now() sim.Time                  { return 0 }
func (s *stubEnv) Send(node.ID, node.Message)     {}
func (s *stubEnv) Broadcast(node.Message)         {}
func (s *stubEnv) SetTimer(string, time.Duration) {}
func (s *stubEnv) StopTimer(string)               {}
func (s *stubEnv) Logf(string, ...any)            {}
