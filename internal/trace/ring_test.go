package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func entryAt(i int) Entry {
	return Entry{T: sim.Time(i), Kind: KindNote, Node: i, Peer: -1, Note: "e"}
}

func TestRingEvictsOldest(t *testing.T) {
	l := NewRing(3)
	for i := 0; i < 5; i++ {
		l.Add(entryAt(i))
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Node != i+2 {
			t.Fatalf("entries = %v, want nodes 2,3,4", got)
		}
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	if l.Limit() != 3 {
		t.Fatalf("limit = %d", l.Limit())
	}
}

func TestRingTailAndFilterWrapAware(t *testing.T) {
	l := NewRing(4)
	for i := 0; i < 7; i++ {
		l.Add(entryAt(i))
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Node != 5 || tail[1].Node != 6 {
		t.Fatalf("tail = %v, want nodes 5,6", tail)
	}
	if got := l.FilterNode(4); len(got) != 1 || got[0].Node != 4 {
		t.Fatalf("FilterNode(4) = %v", got)
	}
	if got := l.Filter(KindNote); len(got) != 4 {
		t.Fatalf("Filter = %v, want the 4 retained entries", got)
	}
}

func TestSetLimitShrinksAndUnbounds(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6; i++ {
		l.Add(entryAt(i))
	}
	l.SetLimit(2) // keeps the newest two
	got := l.Entries()
	if len(got) != 2 || got[0].Node != 4 || got[1].Node != 5 {
		t.Fatalf("after shrink: %v, want nodes 4,5", got)
	}
	if l.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped())
	}

	l.SetLimit(0) // back to unbounded; appends keep order
	for i := 6; i < 9; i++ {
		l.Add(entryAt(i))
	}
	got = l.Entries()
	want := []int{4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("after unbound: %v", got)
	}
	for i, e := range got {
		if e.Node != want[i] {
			t.Fatalf("after unbound: %v, want nodes %v", got, want)
		}
	}
}

func TestWallStartRendersAbsoluteTimestamps(t *testing.T) {
	l := NewLog()
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	l.SetWallStart(start)
	l.Add(Entry{T: sim.At(1500 * time.Millisecond), Kind: KindCrash, Node: 2, Peer: -1})
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "12:00:01.500000 ") {
		t.Fatalf("wall-anchored line = %q, want 12:00:01.500000 prefix", out)
	}
	if !strings.Contains(out, "CRASH") {
		t.Fatalf("line missing event: %q", out)
	}
}

func TestWriteTail(t *testing.T) {
	l := NewRing(3)
	start := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	l.SetWallStart(start)
	for i := 0; i < 5; i++ {
		l.Add(entryAt(i))
	}
	var b strings.Builder
	if _, err := l.WriteTail(&b, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("WriteTail wrote %d lines: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "09:00:00.000000 ") || !strings.Contains(lines[0], "p3") {
		t.Fatalf("tail line = %q, want wall prefix and node 3", lines[0])
	}
}

func TestStamp(t *testing.T) {
	l := NewLog()
	if l.Stamp() != 0 {
		t.Fatal("Stamp without anchor should be 0")
	}
	l.SetWallStart(time.Now().Add(-time.Second))
	if s := l.Stamp(); s < sim.At(900*time.Millisecond) || s > sim.At(10*time.Second) {
		t.Fatalf("Stamp = %v, want ~1s", s)
	}
}

// TestRingWrapConcurrentWriters exercises ring wrap-around with many
// goroutines appending at once — the live-transport shape, where every
// station's receive loop feeds one shared ring through MessageSink. Run
// with -race; the invariant is conservation: every Add is either retained
// or counted by Dropped, and the ring never exceeds its limit.
func TestRingWrapConcurrentWriters(t *testing.T) {
	const (
		limit   = 32
		writers = 8
		each    = 1000
	)
	l := NewRing(limit)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Add(Entry{T: sim.Time(i), Kind: KindNote, Node: w, Peer: -1, Note: "c"})
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != limit {
		t.Fatalf("len = %d, want full ring of %d", got, limit)
	}
	if got, want := l.Dropped(), uint64(writers*each-limit); got != want {
		t.Fatalf("dropped = %d, want %d (conservation: adds - retained)", got, want)
	}
	// The snapshot is taken under the same lock as Add, so it must be
	// internally consistent even right after heavy contention.
	if got := len(l.Tail(limit)); got != limit {
		t.Fatalf("tail = %d entries, want %d", got, limit)
	}
}
