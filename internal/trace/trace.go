// Package trace records a structured, time-ordered log of simulation
// events: message sends/deliveries/drops, crashes, leader changes and
// consensus decisions. Traces are the debugging companion to the aggregate
// counters in internal/metrics: where metrics answer "how many", traces
// answer "what happened, in order".
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// EventKind classifies a trace entry.
type EventKind uint8

// Trace event kinds.
const (
	// KindSend records a message leaving a process.
	KindSend EventKind = iota + 1
	// KindDeliver records a message arriving at a process.
	KindDeliver
	// KindDrop records a message lost by its link.
	KindDrop
	// KindCrash records a process crash.
	KindCrash
	// KindLeaderChange records a change in a process's Omega output.
	KindLeaderChange
	// KindDecide records a consensus decision.
	KindDecide
	// KindNote records free-form protocol annotations.
	KindNote
)

// String returns the kind's short name.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "SEND"
	case KindDeliver:
		return "DELIVER"
	case KindDrop:
		return "DROP"
	case KindCrash:
		return "CRASH"
	case KindLeaderChange:
		return "LEADER"
	case KindDecide:
		return "DECIDE"
	case KindNote:
		return "NOTE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Entry is one trace record. Peer is -1 when not applicable.
type Entry struct {
	T    sim.Time
	Kind EventKind
	Node int
	Peer int
	Msg  string // message kind for SEND/DELIVER/DROP; free-form otherwise
	Note string
}

// String formats an entry for human consumption.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-7s p%d", e.T, e.Kind, e.Node)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, "→p%d", e.Peer)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " %s", e.Msg)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// Log is an append-only trace. The zero value is a valid, enabled log.
// Disable recording with SetEnabled(false) for large benchmark runs.
type Log struct {
	mu       sync.Mutex
	disabled bool
	entries  []Entry
}

// NewLog returns an enabled, empty log.
func NewLog() *Log { return &Log{} }

// SetEnabled turns recording on or off. Entries recorded earlier are kept.
func (l *Log) SetEnabled(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disabled = !on
}

// Enabled reports whether the log is currently recording.
func (l *Log) Enabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.disabled
}

// Add appends an entry if the log is enabled.
func (l *Log) Add(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return
	}
	l.entries = append(l.entries, e)
}

// Addf appends a KindNote entry with a formatted note.
func (l *Log) Addf(t sim.Time, node int, format string, args ...any) {
	l.Add(Entry{T: t, Kind: KindNote, Node: node, Peer: -1, Note: fmt.Sprintf(format, args...)})
}

// Len returns the number of recorded entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of all recorded entries.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Filter returns a copy of the entries matching the given kind.
func (l *Log) Filter(kind EventKind) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// FilterNode returns a copy of the entries for the given node.
func (l *Log) FilterNode(node int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo writes the formatted trace to w, one entry per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	entries := make([]Entry, len(l.entries))
	copy(entries, l.entries)
	l.mu.Unlock()
	var total int64
	for _, e := range entries {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MessageSink adapts the log to the observer pipeline: message events
// reported through the returned obs.Sink become SEND/DELIVER/DROP entries.
// Recording still honors SetEnabled.
func (l *Log) MessageSink() obs.Sink { return msgSink{l} }

type msgSink struct{ l *Log }

func (m msgSink) OnSend(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindSend, Node: from, Peer: to, Msg: obs.KindName(kind)})
}

func (m msgSink) OnDeliver(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindDeliver, Node: to, Peer: from, Msg: obs.KindName(kind)})
}

func (m msgSink) OnDrop(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindDrop, Node: from, Peer: to, Msg: obs.KindName(kind)})
}

// Tail returns the last n entries (or all of them if fewer exist).
func (l *Log) Tail(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]Entry, n)
	copy(out, l.entries[len(l.entries)-n:])
	return out
}
