// Package trace records a structured, time-ordered log of simulation
// events: message sends/deliveries/drops, crashes, leader changes and
// consensus decisions. Traces are the debugging companion to the aggregate
// counters in internal/metrics: where metrics answer "how many", traces
// answer "what happened, in order".
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// EventKind classifies a trace entry.
type EventKind uint8

// Trace event kinds.
const (
	// KindSend records a message leaving a process.
	KindSend EventKind = iota + 1
	// KindDeliver records a message arriving at a process.
	KindDeliver
	// KindDrop records a message lost by its link.
	KindDrop
	// KindCrash records a process crash.
	KindCrash
	// KindLeaderChange records a change in a process's Omega output.
	KindLeaderChange
	// KindDecide records a consensus decision.
	KindDecide
	// KindNote records free-form protocol annotations.
	KindNote
)

// String returns the kind's short name.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "SEND"
	case KindDeliver:
		return "DELIVER"
	case KindDrop:
		return "DROP"
	case KindCrash:
		return "CRASH"
	case KindLeaderChange:
		return "LEADER"
	case KindDecide:
		return "DECIDE"
	case KindNote:
		return "NOTE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Entry is one trace record. Peer is -1 when not applicable.
type Entry struct {
	T    sim.Time
	Kind EventKind
	Node int
	Peer int
	Msg  string // message kind for SEND/DELIVER/DROP; free-form otherwise
	Note string
}

// String formats an entry for human consumption.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-7s p%d", e.T, e.Kind, e.Node)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, "→p%d", e.Peer)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " %s", e.Msg)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// Log is a time-ordered trace. The zero value is a valid, enabled,
// unbounded log. Disable recording with SetEnabled(false) for large
// benchmark runs; bound memory for long-running live clusters with
// SetLimit (ring mode: the oldest entries are evicted).
//
// Entry times are sim.Time — virtual in the simulator, nanoseconds since
// cluster start on the live transports. SetWallStart anchors that clock
// to an absolute wall instant so WriteTo can render real timestamps for
// live runs.
type Log struct {
	mu        sync.Mutex
	disabled  bool
	limit     int // 0 = unbounded; otherwise ring capacity
	dropped   uint64
	entries   []Entry
	head      int // index of the oldest entry once the ring wrapped
	wallStart time.Time
}

// NewLog returns an enabled, empty, unbounded log.
func NewLog() *Log { return &Log{} }

// NewRing returns an enabled log bounded to the newest limit entries —
// the mode long soaks use so the trace cannot grow without bound.
func NewRing(limit int) *Log {
	l := &Log{}
	l.SetLimit(limit)
	return l
}

// SetLimit bounds the log to the newest limit entries (ring mode); the
// oldest entries are evicted and counted by Dropped. limit <= 0 restores
// unbounded growth. Shrinking below the current length evicts immediately.
func (l *Log) SetLimit(limit int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if limit <= 0 {
		// Unwrap the ring so plain appends resume in order.
		l.entries = l.snapshotLocked()
		l.head = 0
		l.limit = 0
		return
	}
	if drop := len(l.entries) - limit; drop > 0 {
		all := l.snapshotLocked()
		l.entries = all[drop:]
		l.dropped += uint64(drop)
	} else {
		l.entries = l.snapshotLocked()
	}
	l.head = 0
	l.limit = limit
}

// Limit returns the ring bound, 0 when unbounded.
func (l *Log) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Dropped returns how many entries ring mode has evicted.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// SetWallStart anchors entry times to an absolute wall-clock instant:
// an entry at T renders as start.Add(T). Live clusters pass their start
// time so event logs line up with external logs and packet captures.
func (l *Log) SetWallStart(start time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wallStart = start
}

// Stamp returns the current trace timestamp for a log anchored with
// SetWallStart: wall time since the anchor. It lets live-cluster code
// record ordered events (crashes, partitions, verdicts) on the same
// clock as the message events flowing in via MessageSink.
func (l *Log) Stamp() sim.Time {
	l.mu.Lock()
	start := l.wallStart
	l.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return sim.Time(time.Since(start).Nanoseconds())
}

// snapshotLocked returns the retained entries oldest-first; callers hold
// l.mu.
func (l *Log) snapshotLocked() []Entry {
	out := make([]Entry, len(l.entries))
	for i := range l.entries {
		out[i] = l.entries[(l.head+i)%len(l.entries)]
	}
	return out
}

// SetEnabled turns recording on or off. Entries recorded earlier are kept.
func (l *Log) SetEnabled(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disabled = !on
}

// Enabled reports whether the log is currently recording.
func (l *Log) Enabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.disabled
}

// Add appends an entry if the log is enabled. In ring mode a full log
// evicts its oldest entry.
func (l *Log) Add(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return
	}
	if l.limit > 0 && len(l.entries) == l.limit {
		l.entries[l.head] = e
		l.head = (l.head + 1) % l.limit
		l.dropped++
		return
	}
	l.entries = append(l.entries, e)
}

// Addf appends a KindNote entry with a formatted note.
func (l *Log) Addf(t sim.Time, node int, format string, args ...any) {
	l.Add(Entry{T: t, Kind: KindNote, Node: node, Peer: -1, Note: fmt.Sprintf(format, args...)})
}

// Len returns the number of recorded entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of the retained entries, oldest first.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

// Filter returns a copy of the retained entries matching the given kind.
func (l *Log) Filter(kind EventKind) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for i := range l.entries {
		if e := l.entries[(l.head+i)%len(l.entries)]; e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// FilterNode returns a copy of the retained entries for the given node.
func (l *Log) FilterNode(node int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for i := range l.entries {
		if e := l.entries[(l.head+i)%len(l.entries)]; e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo writes the formatted trace to w, one entry per line. With a
// wall anchor (SetWallStart) each line is prefixed with the absolute
// timestamp the entry's offset corresponds to.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	entries := l.snapshotLocked()
	start := l.wallStart
	l.mu.Unlock()
	return writeEntries(w, entries, start)
}

// WriteTail writes the last n retained entries like WriteTo — the
// flight-recorder dump for ring-mode logs.
func (l *Log) WriteTail(w io.Writer, n int) (int64, error) {
	entries := l.Tail(n)
	l.mu.Lock()
	start := l.wallStart
	l.mu.Unlock()
	return writeEntries(w, entries, start)
}

func writeEntries(w io.Writer, entries []Entry, start time.Time) (int64, error) {
	var total int64
	for _, e := range entries {
		var n int
		var err error
		if start.IsZero() {
			n, err = fmt.Fprintln(w, e.String())
		} else {
			n, err = fmt.Fprintf(w, "%s %s\n",
				start.Add(time.Duration(e.T)).Format("15:04:05.000000"), e.String())
		}
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MessageSink adapts the log to the observer pipeline: message events
// reported through the returned obs.Sink become SEND/DELIVER/DROP entries.
// Recording still honors SetEnabled.
func (l *Log) MessageSink() obs.Sink { return msgSink{l} }

type msgSink struct{ l *Log }

func (m msgSink) OnSend(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindSend, Node: from, Peer: to, Msg: obs.KindName(kind)})
}

func (m msgSink) OnDeliver(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindDeliver, Node: to, Peer: from, Msg: obs.KindName(kind)})
}

func (m msgSink) OnDrop(t sim.Time, from, to int, kind obs.Kind) {
	m.l.Add(Entry{T: t, Kind: KindDrop, Node: from, Peer: to, Msg: obs.KindName(kind)})
}

// Tail returns the last n retained entries (or all of them if fewer
// exist).
func (l *Log) Tail(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]Entry, n)
	skip := len(l.entries) - n
	for i := 0; i < n; i++ {
		out[i] = l.entries[(l.head+skip+i)%len(l.entries)]
	}
	return out
}
