package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestAddAndQuery(t *testing.T) {
	l := NewLog()
	l.Add(Entry{T: sim.At(time.Millisecond), Kind: KindSend, Node: 0, Peer: 1, Msg: "LEADER"})
	l.Add(Entry{T: sim.At(2 * time.Millisecond), Kind: KindDeliver, Node: 1, Peer: 0, Msg: "LEADER"})
	l.Add(Entry{T: sim.At(3 * time.Millisecond), Kind: KindCrash, Node: 0, Peer: -1})

	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if got := l.Filter(KindCrash); len(got) != 1 || got[0].Node != 0 {
		t.Fatalf("Filter(crash) = %v", got)
	}
	if got := l.FilterNode(1); len(got) != 1 || got[0].Kind != KindDeliver {
		t.Fatalf("FilterNode(1) = %v", got)
	}
	entries := l.Entries()
	entries[0].Node = 99 // mutating the copy must not affect the log
	if l.Entries()[0].Node == 99 {
		t.Fatal("Entries returned aliased storage")
	}
}

func TestDisableStopsRecording(t *testing.T) {
	l := NewLog()
	if !l.Enabled() {
		t.Fatal("new log should be enabled")
	}
	l.Add(Entry{Kind: KindNote, Node: 0, Peer: -1, Note: "kept"})
	l.SetEnabled(false)
	if l.Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	l.Add(Entry{Kind: KindNote, Node: 0, Peer: -1, Note: "dropped"})
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	l.SetEnabled(true)
	l.Add(Entry{Kind: KindNote, Node: 0, Peer: -1, Note: "kept2"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{T: sim.At(time.Millisecond), Kind: KindSend, Node: 0, Peer: 2, Msg: "ACCUSE", Note: "epoch 3"}
	s := e.String()
	for _, want := range []string{"SEND", "p0", "p2", "ACCUSE", "epoch 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	solo := Entry{T: 0, Kind: KindCrash, Node: 3, Peer: -1}
	if strings.Contains(solo.String(), "→") {
		t.Fatalf("no-peer entry rendered a peer arrow: %q", solo.String())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		KindSend: "SEND", KindDeliver: "DELIVER", KindDrop: "DROP",
		KindCrash: "CRASH", KindLeaderChange: "LEADER", KindDecide: "DECIDE",
		KindNote: "NOTE", EventKind(200): "KIND(200)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("%v.String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestWriteTo(t *testing.T) {
	l := NewLog()
	l.Addf(sim.At(time.Millisecond), 2, "leader is now p%d", 4)
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "leader is now p4") {
		t.Fatalf("WriteTo output %q missing note", b.String())
	}
}

func TestTail(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Addf(sim.Time(i), i, "e%d", i)
	}
	tail := l.Tail(3)
	if len(tail) != 3 || tail[0].Node != 7 || tail[2].Node != 9 {
		t.Fatalf("Tail(3) = %v", tail)
	}
	if got := l.Tail(100); len(got) != 10 {
		t.Fatalf("Tail(100) returned %d entries", len(got))
	}
}
