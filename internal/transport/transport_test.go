package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/node"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// liveDetectors builds n core detectors with a fast eta for real time.
func liveDetectors(n int) ([]node.Automaton, []*core.Detector) {
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5 * time.Millisecond))
		autos[i] = dets[i]
	}
	return autos, dets
}

func agreement(dets []*core.Detector, skip map[int]bool) (node.ID, bool) {
	leader := node.None
	for i, d := range dets {
		if skip[i] {
			continue
		}
		l := d.History().Current()
		if leader == node.None {
			leader = l
		} else if l != leader {
			return node.None, false
		}
	}
	return leader, leader != node.None
}

func TestMemClusterElectsLeader(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewCluster(Config{N: 4, Seed: 1, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "leader agreement on p0")
}

func TestMemClusterLeaderCrash(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewCluster(Config{N: 4, Seed: 2, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	c.Crash(0)
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l == 1
	}, "re-election of p1")
}

func TestMemClusterCommunicationEfficiency(t *testing.T) {
	autos, dets := liveDetectors(5)
	c, err := NewCluster(Config{N: 5, Seed: 3, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement")
	expectSteadySender(t, c.stations[0], c.Stats(), 0)
}

// expectSteadySender polls 300ms windows until one passes in which only
// leader sent — the steady-state communication-efficiency property.
// Polling (rather than one fixed settle-then-measure window) keeps the
// check robust on a loaded machine, where a late heartbeat can trigger a
// stray accusation well after initial agreement.
func expectSteadySender(t *testing.T, clock *station, stats *metrics.MessageStats, leader int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mark := clock.Now()
		time.Sleep(300 * time.Millisecond)
		senders := stats.SendersSince(mark)
		if len(senders) == 1 && senders[0] == leader {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("steady-state senders = %v, want [%d]", senders, leader)
		}
	}
}

func TestMemClusterWithLossStillElectsEventually(t *testing.T) {
	// The core algorithm formally needs reliable links; light loss makes
	// it re-elect occasionally but the gossip keeps recovering. Use the
	// source-omega... keep core with very light loss and only assert no
	// deadlock in the runtime (processes keep exchanging messages).
	autos, _ := liveDetectors(3)
	c, err := NewCluster(Config{N: 3, Seed: 4, DropProb: 0.05, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	time.Sleep(200 * time.Millisecond)
	if c.Stats().TotalSent() == 0 {
		t.Fatal("no traffic at all under loss")
	}
}

func TestMemClusterReplicatedLog(t *testing.T) {
	const n = 3
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5 * time.Millisecond))
		logs[i] = rsm.New(dets[i], rsm.Config{DriveInterval: 10 * time.Millisecond})
		autos[i] = node.Compose(dets[i], logs[i])
	}
	c, err := NewCluster(Config{N: n, Seed: 5, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		l := dets[0].History().Current()
		return l == 0 && dets[1].History().Current() == 0 && dets[2].History().Current() == 0
	}, "leader stabilization")
	// Submit is not goroutine-safe, so push commands through the
	// leader's Deliver path with request messages. A request that
	// arrives before the leader's ballot is prepared is dropped (real
	// clients re-forward), so keep sending until the log grows.
	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < 5; i++ {
			c.stations[1].net.send(1, 0, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("cmd%d", i))})
		}
		for _, l := range logs {
			if l.Recorder().Count() < 5 {
				return false
			}
		}
		return true
	}, "all replicas decide 5 instances")
	recs := make([]*consensus.Recorder, n)
	for i, l := range logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("disagreement: %v", rep.Violations)
	}
}

func TestUDPClusterElectsLeader(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewUDPCluster(Config{N: 4, Seed: 6, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "UDP leader agreement")
	if c.Addr(0) == nil || c.Addr(0).Port == 0 {
		t.Fatal("no bound address")
	}
}

func TestUDPClusterLeaderCrash(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewUDPCluster(Config{N: 3, Seed: 7, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	c.Crash(0)
	waitFor(t, 15*time.Second, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l == 1
	}, "UDP re-election")
}

func TestUDPReplicatedLog(t *testing.T) {
	const n = 3
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5 * time.Millisecond))
		logs[i] = rsm.New(dets[i], rsm.Config{DriveInterval: 10 * time.Millisecond})
		autos[i] = node.Compose(dets[i], logs[i])
	}
	c, err := NewUDPCluster(Config{N: n, Seed: 20, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		for _, d := range dets {
			if d.History().Current() != 0 {
				return false
			}
		}
		return true
	}, "UDP leader stabilization")
	// Push commands through real datagrams until the logs fill.
	net := &udpNet{cluster: c}
	waitFor(t, 15*time.Second, func() bool {
		for i := 0; i < 3; i++ {
			net.send(1, 0, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("udp-cmd%d", i))})
		}
		for _, l := range logs {
			if l.Recorder().Count() < 3 {
				return false
			}
		}
		return true
	}, "UDP replicas decide 3 instances")
	recs := make([]*consensus.Recorder, n)
	for i, l := range logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("disagreement over UDP: %v", rep.Violations)
	}
}

func TestClusterStopIsIdempotentAndClean(t *testing.T) {
	autos, _ := liveDetectors(3)
	c, err := NewCluster(Config{N: 3, Seed: 8, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	c.Stop() // must not panic or hang
	u, err := NewUDPCluster(Config{N: 3, Seed: 9, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	time.Sleep(50 * time.Millisecond)
	u.Stop()
	u.Stop()
}

func TestConfigValidation(t *testing.T) {
	autos, _ := liveDetectors(2)
	if _, err := NewCluster(Config{N: 1}, autos[:1]); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewCluster(Config{N: 2, DropProb: 2}, autos); err == nil {
		t.Fatal("DropProb=2 accepted")
	}
	if _, err := NewCluster(Config{N: 2, MinDelay: 10 * time.Millisecond, MaxDelay: time.Millisecond}, autos); err == nil {
		t.Fatal("min>max accepted")
	}
	if _, err := NewCluster(Config{N: 3}, autos); err == nil {
		t.Fatal("wrong automaton count accepted")
	}
}

func TestHistoriesAreConcurrencySafe(t *testing.T) {
	// Reading detector state from the test goroutine while node loops
	// run exercises the History mutex; run with -race to verify.
	autos, dets := liveDetectors(3)
	c, err := NewCluster(Config{N: 3, Seed: 10, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(300 * time.Millisecond)
	var h *detector.History
	for time.Now().Before(deadline) {
		for _, d := range dets {
			h = d.History()
			_ = h.Current()
			_ = h.NumChanges()
		}
	}
}
