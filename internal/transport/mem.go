package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faultline"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes a live cluster.
type Config struct {
	// N is the number of processes (required, > 1).
	N int
	// Seed drives delay/loss randomness.
	Seed int64
	// MinDelay/MaxDelay bound the injected per-message delay
	// (default 0 / 2ms).
	MinDelay time.Duration
	MaxDelay time.Duration
	// DropProb injects message loss (default 0).
	DropProb float64
	// Codec serializes messages across process boundaries
	// (default wire.NewCodec()).
	Codec *wire.Codec
	// Quiet suppresses per-process logging.
	Quiet bool
	// Observer is an optional extra obs.Sink teed with the cluster's
	// stats; it sees every send/deliver/drop. Implementations must be
	// safe for concurrent use.
	Observer obs.Sink
	// RecordWindow bounds the per-sender send log retained for queries
	// (0 = metrics.DefaultWindow). Counters are never windowed.
	RecordWindow int
	// Fault optionally subjects every link to a faultline.Injector: each
	// send consults the injector for a drop/delay decision, and the
	// injector's crash plan is armed at Start. Injected drops are
	// reported through the cluster's obs.Sink exactly like organic loss.
	// The injector must be built for the same N and must not be shared
	// between clusters (sharing desynchronizes its decision streams).
	Fault *faultline.Injector
	// Rebuild constructs the next incarnation of a rebooting process —
	// typically a fresh automaton recovered from the process's durable
	// store. It is called once per scheduled faultline.Restart reboot,
	// from a timer goroutine, so it must be safe to run concurrently with
	// the rest of the cluster. Required when Fault carries a restart
	// plan; only the in-memory Cluster arms restart plans (the socket
	// transports would need process supervision, not an in-process swap).
	Rebuild func(node.ID) node.Automaton
	// WriteTimeout bounds each socket write — a TCP frame or a UDP
	// datagram — so a peer that stops reading can never wedge a sender
	// (default 1s).
	WriteTimeout time.Duration
	// DialTimeout bounds each TCP dial attempt (default 1s).
	DialTimeout time.Duration
	// SendQueue bounds each TCP per-peer outbound queue; when a link's
	// queue is full the message is dropped, never blocking the node loop
	// (default 128).
	SendQueue int
	// BatchFrames caps how many queued frames a TCP sender coalesces
	// into one vectored write (default 256; 1 disables coalescing).
	BatchFrames int
	// BatchBytes caps the payload bytes a TCP sender coalesces into one
	// vectored write (default 64 KiB).
	BatchBytes int
	// BatchWait, when positive, lets an under-filled TCP batch wait this
	// long for more frames before its vectored write — fewer, larger
	// writes under sustained load at the cost of that much added latency
	// on the first frame. 0 flushes as soon as the queue empties.
	BatchWait time.Duration
	// BatchWaitMax, when positive, makes each TCP sender's batch wait
	// adaptive within [0, BatchWaitMax]: stretched when flushes
	// degenerate to one or two frames under load, backed off when
	// batches arrive full or the link idles (see link.Config.
	// BatchWaitMax). BatchWait seeds the initial value.
	BatchWaitMax time.Duration
	// OnFlush, when set, observes every successful TCP vectored write
	// with its coalesced frame and payload counts — the flush-size
	// signal for telemetry. Runs on sender goroutines; must be safe for
	// concurrent use and cheap.
	OnFlush func(from, to node.ID, frames, bytes int)
}

func (c *Config) fill() error {
	if c.N < 2 {
		return fmt.Errorf("transport: N = %d, need at least 2", c.N)
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MinDelay < 0 || c.MinDelay > c.MaxDelay {
		return fmt.Errorf("transport: bad delay bounds [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("transport: DropProb %v out of range", c.DropProb)
	}
	if c.Codec == nil {
		c.Codec = wire.NewCodec()
	}
	if c.Fault != nil && c.Fault.N() != c.N {
		return fmt.Errorf("transport: fault injector built for n=%d, cluster has N=%d", c.Fault.N(), c.N)
	}
	if c.Fault != nil && len(c.Fault.Restarts()) > 0 && c.Rebuild == nil {
		return fmt.Errorf("transport: fault plan schedules restarts but Config.Rebuild is nil")
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 128
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 256
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	return nil
}

// Cluster runs n automatons on real goroutines connected by an in-memory
// network that serializes every message through the wire codec and injects
// configurable delay and loss.
type Cluster struct {
	cfg      Config
	stations []*station
	stats    *metrics.MessageStats
	sink     obs.Sink
	bytes    obs.ByteSink // byte-accounting view of sink, nil if unsupported
	ctx      obs.CtxSink  // trace-context view of sink, nil if unsupported
	start    time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	crashers []*time.Timer

	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewCluster builds a live in-memory cluster; automatons[i] runs as
// process i.
func NewCluster(cfg Config, automatons []node.Automaton) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(automatons) != cfg.N {
		return nil, fmt.Errorf("transport: %d automatons for N=%d", len(automatons), cfg.N)
	}
	c := &Cluster{
		cfg:   cfg,
		stats: metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow),
		start: time.Now(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	c.sink = obs.Tee(c.stats, cfg.Observer)
	c.bytes = obs.Bytes(c.sink)
	c.ctx = obs.Ctx(c.sink)
	logf := func(string, ...any) {}
	c.stations = make([]*station, cfg.N)
	for i := range c.stations {
		var nodeLogf func(string, ...any)
		if cfg.Quiet {
			nodeLogf = logf
		}
		c.stations[i] = newStation(node.ID(i), cfg.N, automatons[i], (*memNet)(c), c.start, nodeLogf)
	}
	return c, nil
}

// Stats returns the cluster's message accounting.
func (c *Cluster) Stats() *metrics.MessageStats { return c.stats }

// Start boots every process and arms the fault plan's scheduled crashes.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(len(c.stations))
	for _, s := range c.stations {
		go s.run(&c.wg)
	}
	c.mu.Lock()
	c.crashers = scheduleCrashes(c.cfg.Fault, c.Crash)
	c.crashers = append(c.crashers, scheduleRestarts(c.cfg.Fault, c.cfg.Rebuild, c.Crash, c.Restart, c.armTimer)...)
	c.mu.Unlock()
}

// Crash makes process id inert (crash-stop).
func (c *Cluster) Crash(id node.ID) { c.stations[id].crash() }

// Restart reboots process id with a fresh automaton — the in-process
// equivalent of restarting a kill -9'd process from its durable state.
// The swap happens on the process's node loop; the new automaton's Start
// runs under the same single-threaded Env contract as at boot. Safe to
// call from any goroutine.
func (c *Cluster) Restart(id node.ID, a node.Automaton) { c.stations[id].reboot(a) }

// armTimer registers t for cancellation at Stop; when the cluster has
// already stopped it cancels t immediately and reports false.
func (c *Cluster) armTimer(t *time.Timer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		t.Stop()
		return false
	}
	c.crashers = append(c.crashers, t)
	return true
}

// Inject hands m to the cluster's send path as if process from had sent
// it to process to — the entry point for external clients (tests, the
// chaossoak runner) to drive requests into the cluster. Safe to call from
// any goroutine.
func (c *Cluster) Inject(from, to node.ID, m node.Message) { (*memNet)(c).send(from, to, m) }

// Stop shuts the cluster down and waits for every node loop to exit.
func (c *Cluster) Stop() {
	if c.stopped || !c.started {
		return
	}
	c.mu.Lock()
	c.stopped = true // under mu: armTimer reads it from timer goroutines
	for _, t := range c.crashers {
		t.Stop()
	}
	c.mu.Unlock()
	for _, s := range c.stations {
		s.mbox.close()
	}
	c.wg.Wait()
}

// memNet implements sender over the cluster's in-memory links.
type memNet Cluster

func (m *memNet) send(from, to node.ID, msg node.Message) {
	c := (*Cluster)(m)
	now := c.stations[from].Now()
	k := node.MessageKind(msg)
	c.sink.OnSend(now, int(from), int(to), k)
	reportSendCtx(c.ctx, now, int(from), int(to), k, msg)
	// Serialize immediately: the receiver must observe an independent
	// copy, exactly as over a socket. The buffer is pooled and returned
	// once the receiver has decoded (or the message is dropped).
	bp := encBufs.Get()
	data, err := c.cfg.Codec.MarshalAppend((*bp)[:0], msg)
	if err != nil {
		encBufs.Put(bp)
		panic(fmt.Sprintf("transport: marshal %T: %v", msg, err))
	}
	*bp = data
	if c.bytes != nil {
		c.bytes.OnWireBytes(now, int(from), int(to), k, len(data))
	}
	c.mu.Lock()
	drop := c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb
	span := c.cfg.MaxDelay - c.cfg.MinDelay
	delay := c.cfg.MinDelay
	if span > 0 {
		delay += time.Duration(c.rng.Int63n(int64(span) + 1))
	}
	c.mu.Unlock()
	// Consult the injector even when the cluster's own loss already chose
	// to drop, so the injector's per-link decision stream stays indexed
	// purely by send count.
	if c.cfg.Fault != nil {
		extra, ok := c.cfg.Fault.Transmit(from, to, time.Since(c.start))
		drop = drop || !ok
		delay += extra
	}
	if drop {
		c.sink.OnDrop(now, int(from), int(to), k)
		encBufs.Put(bp)
		return
	}
	time.AfterFunc(delay, func() {
		decoded, err := c.cfg.Codec.Unmarshal(data)
		encBufs.Put(bp) // Unmarshal copies what it keeps
		if err != nil {
			panic(fmt.Sprintf("transport: unmarshal: %v", err))
		}
		c.sink.OnDeliver(c.stations[to].Now(), int(from), int(to), k)
		c.stations[to].deliver(from, decoded)
	})
}
