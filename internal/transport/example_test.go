package transport_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/transport"
)

// Example runs the communication-efficient Omega on real goroutines with
// an in-memory network that still serializes every message through the
// wire codec.
func Example() {
	const n = 3
	dets := make([]*core.Detector, n)
	autos := make([]node.Automaton, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5 * time.Millisecond))
		autos[i] = dets[i]
	}
	cluster, err := transport.NewCluster(transport.Config{N: n, Seed: 1, Quiet: true}, autos)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cluster.Start()
	defer cluster.Stop()

	// Poll the (thread-safe) histories until everyone agrees.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		agreed := true
		for _, d := range dets {
			if d.History().Current() != 0 {
				agreed = false
				break
			}
		}
		if agreed {
			fmt.Println("all processes trust p0")
			return
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("no agreement")
	// Output: all processes trust p0
}
