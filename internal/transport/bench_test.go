package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/wire"
)

// countingAutomaton counts deliveries and nothing else — the receive side
// of the throughput benchmarks.
type countingAutomaton struct{ delivered atomic.Uint64 }

func (a *countingAutomaton) Start(node.Env)                {}
func (a *countingAutomaton) Tick(string)                   {}
func (a *countingAutomaton) Deliver(node.ID, node.Message) { a.delivered.Add(1) }

// benchTCPSend measures end-to-end TCP link throughput: inject heartbeats
// on the 0→1 link as fast as the sender drains them and time until every
// one is delivered. Injection runs ahead of the sender (bounded by half
// the queue, so nothing ever hits the queue-full drop path), which is
// exactly the regime coalescing exists for: the sender finds frames
// already queued and flushes them with one vectored write. The reported
// msgs/sec for batchFrames = 32 versus 1 is the batching win.
func benchTCPSend(b *testing.B, batchFrames int) {
	const queue = 1 << 14
	recv := &countingAutomaton{}
	autos := []node.Automaton{&countingAutomaton{}, recv}
	c, err := NewTCPCluster(Config{
		N: 2, Seed: 1, Quiet: true,
		SendQueue:   queue,
		BatchFrames: batchFrames,
	}, autos)
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// Warm the link so the dial is outside the timed region.
	c.Inject(0, 1, core.LeaderMsg{Epoch: 0})
	for recv.delivered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// A steady-state heartbeat: the epoch is small and stable, so boxing
	// it into node.Message hits the runtime's static cache — the injection
	// path stays allocation-free, as it is in a real cluster.
	hb := core.LeaderMsg{Epoch: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for int64(i)+1-int64(recv.delivered.Load()) > queue/2 {
			time.Sleep(20 * time.Microsecond)
		}
		c.Inject(0, 1, hb)
	}
	total := uint64(b.N) + 1
	for recv.delivered.Load() < total {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	if dropped := c.Stats().Dropped(); dropped != 0 {
		b.Fatalf("%d drops during benchmark — backpressure bound failed", dropped)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkTCPSendBatched is the coalescing sender at its default batch
// cap: queued frames go out in one vectored write per flush.
func BenchmarkTCPSendBatched(b *testing.B) { benchTCPSend(b, 0) }

// BenchmarkTCPSendPerFrame pins the pre-batching baseline — BatchFrames=1
// makes every frame its own write syscall, the behaviour this PR replaced.
func BenchmarkTCPSendPerFrame(b *testing.B) { benchTCPSend(b, 1) }

// BenchmarkUDPReceiveSteadyState times the full datagram receive path —
// kernel read, envelope decode — over real loopback sockets. It must run
// at 0 allocs/op: one reusable read buffer, an address returned by value,
// and the pooled decoder (TestUDPSteadyStateReceiveAllocs pins the same
// invariant as a test; this feeds BENCH_wire.json).
func BenchmarkUDPReceiveSteadyState(b *testing.B) {
	codec := wire.NewCodec()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	dst := recv.LocalAddr().(*net.UDPAddr).AddrPort()
	_ = recv.SetReadDeadline(time.Now().Add(10 * time.Minute))

	frame, err := codec.MarshalEnvelope(1, core.LeaderMsg{Epoch: 5})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := send.WriteToUDPAddrPort(frame, dst); err != nil {
			b.Fatal(err)
		}
		n, _, err := recv.ReadFromUDPAddrPort(buf)
		if err != nil {
			b.Fatal(err)
		}
		env, err := codec.UnmarshalEnvelope(buf[:n])
		if err != nil || env.From != 1 {
			b.Fatal("bad datagram")
		}
	}
}
