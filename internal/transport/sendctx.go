package transport

import (
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// reportSendCtx feeds one outbound message's trace context to the
// sink's CtxSink extension, shared by all three transports' send paths.
// The common case — no trace-consuming observer — is one nil check;
// with an observer attached, untraced messages cost one type assertion
// and traced wrappers (node.Traced with a nonzero trace id) report a
// per-link send event to the tracing layer.
func reportSendCtx(cs obs.CtxSink, t sim.Time, from, to int, kind obs.Kind, msg node.Message) {
	if cs == nil {
		return
	}
	tm, ok := msg.(node.Traced)
	if !ok {
		return
	}
	trace, span := tm.TraceContext()
	if trace == 0 {
		return
	}
	cs.OnSendCtx(t, from, to, kind, trace, span)
}
