package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/wire"
)

// epochRecorder is a silent automaton that records every LeaderMsg epoch
// it receives, in delivery order.
type epochRecorder struct {
	mu     sync.Mutex
	epochs []uint64
}

func (r *epochRecorder) Start(node.Env) {}
func (r *epochRecorder) Tick(string)    {}
func (r *epochRecorder) Deliver(from node.ID, m node.Message) {
	if lm, ok := m.(core.LeaderMsg); ok {
		r.mu.Lock()
		r.epochs = append(r.epochs, lm.Epoch)
		r.mu.Unlock()
	}
}

func (r *epochRecorder) snapshot() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.epochs...)
}

// TestTCPBatchedDeliveryPreservesOrder floods one link faster than the
// sender drains it, so frames coalesce into multi-frame vectored writes,
// and asserts the receiver still observes every message exactly once and
// in FIFO order — batching must be invisible to the protocol layer.
func TestTCPBatchedDeliveryPreservesOrder(t *testing.T) {
	const burst = 500
	recs := []*epochRecorder{{}, {}}
	autos := []node.Automaton{recs[0], recs[1]}
	c, err := NewTCPCluster(Config{N: 2, Seed: 30, Quiet: true, SendQueue: burst + 8}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for e := uint64(1); e <= burst; e++ {
		c.Inject(0, 1, core.LeaderMsg{Epoch: e})
	}
	waitFor(t, 10*time.Second, func() bool {
		return len(recs[1].snapshot()) == burst
	}, "burst delivery")
	got := recs[1].snapshot()
	for i, e := range got {
		if e != uint64(i+1) {
			t.Fatalf("epoch at position %d = %d, want %d (reordered or lost under batching)", i, e, i+1)
		}
	}
}

// TestTCPBufferLifecycleExactOnce drives frames down every exit path the
// sender has — batched writes, queue-full drops, mid-batch write errors,
// failed redials, shutdown drains — and asserts the encode-buffer pool's
// get/put balance returns exactly to its baseline: each pooled buffer is
// released once and only once, whatever happened to its frame.
func TestTCPBufferLifecycleExactOnce(t *testing.T) {
	// Let stray buffers from earlier tests' delayed deliveries settle
	// before taking the baseline.
	settle := encBufs.Balance()
	waitFor(t, 2*time.Second, func() bool {
		b := encBufs.Balance()
		ok := b == settle
		settle = b
		return ok
	}, "pool baseline to settle")
	base := encBufs.Balance()

	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{
		N: 3, Seed: 31, Quiet: true,
		SendQueue:    4,
		WriteTimeout: 200 * time.Millisecond,
	}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement")

	// Kill process 1's endpoint: close its listener and sever every
	// established connection. Links into 1 now hit mid-batch write errors,
	// then failed redials.
	_ = c.listeners[1].Close()
	c.mu.Lock()
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	c.accepted = c.accepted[:0]
	c.mu.Unlock()

	// Flood the dead link with the tiny queue: frames pile up behind the
	// sender's backoff sleeps and overflow, exercising queue-full drops.
	dropped := c.Stats().Dropped()
	for i := 0; i < 400; i++ {
		c.Inject(0, 1, core.LeaderMsg{Epoch: uint64(i)})
	}
	waitFor(t, 10*time.Second, func() bool {
		return c.Stats().Dropped() > dropped
	}, "drops on the dead link")

	c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		return encBufs.Balance() == base
	}, "pool balance to return to baseline")
	// A double put would drive the balance below base after the waiter
	// passes; give any straggler a moment and recheck.
	time.Sleep(50 * time.Millisecond)
	if got := encBufs.Balance(); got != base {
		t.Fatalf("pool balance = %d after quiesce, want %d (leak if higher, double put if lower)", got, base)
	}
}

// TestUDPSteadyStateReceiveAllocs pins the allocation-free UDP receive
// loop: one reusable read buffer, an address returned by value, and a
// pooled decoder make the steady-state datagram → message path cost zero
// allocations per op.
func TestUDPSteadyStateReceiveAllocs(t *testing.T) {
	codec := wire.NewCodec()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	dst := recv.LocalAddr().(*net.UDPAddr).AddrPort()
	_ = recv.SetReadDeadline(time.Now().Add(30 * time.Second))

	frame, err := codec.MarshalEnvelope(1, core.LeaderMsg{Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	loop := func() {
		if _, err := send.WriteToUDPAddrPort(frame, dst); err != nil {
			t.Fatal(err)
		}
		n, _, err := recv.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatal(err)
		}
		env, err := codec.UnmarshalEnvelope(buf[:n])
		if err != nil || env.From != 1 {
			t.Fatal("bad datagram")
		}
	}
	for i := 0; i < 16; i++ {
		loop() // warm the socket path and the decoder pool
	}
	if allocs := testing.AllocsPerRun(200, loop); allocs != 0 {
		t.Errorf("UDP receive steady state: %v allocs/op, want 0", allocs)
	}
}
