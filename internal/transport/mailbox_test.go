package transport

import (
	"testing"

	"repro/internal/node"
)

// boxMsg is a heap-allocated payload so the retention test has a real
// pointer to look for in the ring.
type boxMsg struct{ payload []byte }

func (boxMsg) Kind() string { return "BOX" }

func TestMailboxFIFOAcrossGrowth(t *testing.T) {
	m := newMailbox()
	const total = 100 // forces several doublings from the initial 16
	for i := 0; i < total; i++ {
		m.push(event{from: node.ID(i)})
	}
	got := m.drain(nil)
	if len(got) != total {
		t.Fatalf("drained %d events, want %d", len(got), total)
	}
	for i, e := range got {
		if e.from != node.ID(i) {
			t.Fatalf("event %d has from=%d, want %d (FIFO order broken)", i, e.from, i)
		}
	}
}

func TestMailboxFIFOAcrossWrap(t *testing.T) {
	m := newMailbox()
	// Interleave pushes and drains so head moves off zero and the ring
	// wraps without growing.
	next, seen := 0, 0
	var batch []event
	for round := 0; round < 10; round++ {
		for i := 0; i < 11; i++ { // 11 is coprime with the ring size 16
			m.push(event{from: node.ID(next)})
			next++
		}
		batch = m.drain(batch[:0])
		for _, e := range batch {
			if e.from != node.ID(seen) {
				t.Fatalf("got event %d, want %d (FIFO order broken across wrap)", e.from, seen)
			}
			seen++
		}
	}
	if seen != next {
		t.Fatalf("drained %d events, pushed %d", seen, next)
	}
}

// TestMailboxDrainReleasesReferences is the regression test for the old
// pop-based mailbox, which kept consumed events alive in the slice backing
// array. A drained mailbox must hold no references to the events it handed
// out: every ring slot must be the zero event.
func TestMailboxDrainReleasesReferences(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 40; i++ {
		m.push(event{from: 1, msg: boxMsg{payload: make([]byte, 1024)}})
	}
	got := m.drain(nil)
	if len(got) != 40 {
		t.Fatalf("drained %d events, want 40", len(got))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count != 0 || m.head != 0 {
		t.Fatalf("drained mailbox has count=%d head=%d, want 0 0", m.count, m.head)
	}
	for i, e := range m.ring {
		if e != (event{}) {
			t.Fatalf("ring slot %d still holds %+v after drain", i, e)
		}
	}
}

func TestMailboxPushAfterCloseIsDropped(t *testing.T) {
	m := newMailbox()
	m.push(event{from: 1})
	m.close()
	m.push(event{from: 2})
	if !m.isClosed() {
		t.Fatal("mailbox not closed")
	}
	if got := m.drain(nil); len(got) != 0 {
		t.Fatalf("closed mailbox drained %d events, want 0", len(got))
	}
}
