package transport

import (
	"time"

	"repro/internal/faultline"
	"repro/internal/node"
)

// scheduleCrashes arms one timer per entry in the injector's crash plan,
// calling crash from the timer goroutine (crash-stop is an atomic flag
// flip, safe from anywhere). The returned timers let Stop cancel pending
// crashes.
func scheduleCrashes(fault *faultline.Injector, crash func(node.ID)) []*time.Timer {
	if fault == nil {
		return nil
	}
	plan := fault.Crashes()
	timers := make([]*time.Timer, 0, len(plan))
	for _, cr := range plan {
		id := cr.ID
		timers = append(timers, time.AfterFunc(cr.After, func() { crash(id) }))
	}
	return timers
}
