package transport

import (
	"time"

	"repro/internal/faultline"
	"repro/internal/node"
)

// scheduleCrashes arms one timer per entry in the injector's crash plan,
// calling crash from the timer goroutine (crash-stop is an atomic flag
// flip, safe from anywhere). The returned timers let Stop cancel pending
// crashes.
func scheduleCrashes(fault *faultline.Injector, crash func(node.ID)) []*time.Timer {
	if fault == nil {
		return nil
	}
	plan := fault.Crashes()
	timers := make([]*time.Timer, 0, len(plan))
	for _, cr := range plan {
		id := cr.ID
		timers = append(timers, time.AfterFunc(cr.After, func() { crash(id) }))
	}
	return timers
}

// scheduleRestarts arms the injector's crash-recovery plan: each entry
// crashes its process at After and reboots it Downtime later with an
// automaton from rebuild. The reboot timer is armed only after the crash
// has taken effect, so crash always precedes reboot even at zero
// Downtime; arm registers the late timer for Stop cancellation (a
// stopped cluster cancels it immediately, abandoning the reboot).
func scheduleRestarts(fault *faultline.Injector, rebuild func(node.ID) node.Automaton,
	crash func(node.ID), restart func(node.ID, node.Automaton), arm func(*time.Timer) bool) []*time.Timer {
	if fault == nil {
		return nil
	}
	plan := fault.Restarts()
	timers := make([]*time.Timer, 0, len(plan))
	for _, rs := range plan {
		id, down := rs.ID, rs.Downtime
		timers = append(timers, time.AfterFunc(rs.After, func() {
			crash(id)
			arm(time.AfterFunc(down, func() { restart(id, rebuild(id)) }))
		}))
	}
	return timers
}
