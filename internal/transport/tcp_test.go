package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
)

func TestTCPClusterElectsLeader(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewTCPCluster(Config{N: 4, Seed: 11, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "TCP leader agreement")
	if c.Addr(0) == nil {
		t.Fatal("no bound address")
	}
}

func TestTCPClusterLeaderCrash(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 12, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	c.Crash(0)
	waitFor(t, 15*time.Second, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l == 1
	}, "TCP re-election")
}

func TestTCPClusterCommunicationEfficiency(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewTCPCluster(Config{N: 4, Seed: 13, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement")
	expectSteadySender(t, c.stations[0], c.Stats(), 0)
}

func TestTCPStopIsIdempotentAndClean(t *testing.T) {
	autos, _ := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 14, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	c.Stop()
}

// hostileConn dials process id's listener and returns the raw connection,
// for injecting malformed frames.
func hostileConn(t *testing.T, c *TCPCluster, id node.ID) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", c.Addr(id).String())
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// expectClosed asserts the peer closes conn within the deadline (reads
// drain anything pending, then hit EOF/reset).
func expectClosed(t *testing.T, conn net.Conn, what string) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func TestTCPOversizedFrameDropsConnectionNotStation(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 16, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement before attack")

	conn := hostileConn(t, c, 0)
	defer conn.Close()
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], maxFrame+1)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn, "oversized frame")

	// The station survived: the cluster keeps its leader and traffic.
	sent := c.Stats().TotalSent()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0 && c.Stats().TotalSent() > sent
	}, "agreement after oversized frame")
}

func TestTCPCorruptEnvelopeDropsConnectionNotStation(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 17, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement before attack")

	conn := hostileConn(t, c, 0)
	defer conn.Close()
	// A well-framed but undecodable envelope: framing can no longer be
	// trusted, so the receiver must cut the connection.
	garbage := []byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(garbage)))
	if _, err := conn.Write(append(header[:], garbage...)); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn, "corrupt envelope")

	sent := c.Stats().TotalSent()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0 && c.Stats().TotalSent() > sent
	}, "agreement after corrupt envelope")
}

func TestTCPReconnectRecoversDelivery(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 18, Quiet: true, WriteTimeout: 200 * time.Millisecond}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement before reset")

	// Sever every established connection server-side. The per-peer
	// senders must notice the broken links, back off, re-dial, and
	// restore delivery without any station dying.
	c.mu.Lock()
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	c.accepted = c.accepted[:0]
	c.mu.Unlock()

	// The lost heartbeats may cost p0 an accusation, legitimately moving
	// leadership — what must hold is that delivery resumes and every
	// process converges on one leader again.
	delivered := c.Stats().Delivered()
	waitFor(t, 15*time.Second, func() bool {
		_, ok := agreement(dets, nil)
		return ok && c.Stats().Delivered() > delivered+20
	}, "delivery recovery after connection reset")
}

func TestTCPSendAfterStopDropsQuietly(t *testing.T) {
	dets := []*core.Detector{core.New(core.WithEta(5 * time.Millisecond)), core.New(core.WithEta(5 * time.Millisecond))}
	autos := []node.Automaton{dets[0], dets[1]}
	c, err := NewTCPCluster(Config{N: 2, Seed: 15, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(30 * time.Millisecond)
	c.Stop()
	before := c.Stats().Dropped()
	(&tcpNet{cluster: c}).send(0, 1, core.LeaderMsg{Epoch: 1})
	if c.Stats().Dropped() != before+1 {
		t.Fatal("send after stop not accounted as drop")
	}
}
