package transport

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
)

func TestTCPClusterElectsLeader(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewTCPCluster(Config{N: 4, Seed: 11, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "TCP leader agreement")
	if c.Addr(0) == nil {
		t.Fatal("no bound address")
	}
}

func TestTCPClusterLeaderCrash(t *testing.T) {
	autos, dets := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 12, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	c.Crash(0)
	waitFor(t, 15*time.Second, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l == 1
	}, "TCP re-election")
}

func TestTCPClusterCommunicationEfficiency(t *testing.T) {
	autos, dets := liveDetectors(4)
	c, err := NewTCPCluster(Config{N: 4, Seed: 13, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "agreement")
	time.Sleep(300 * time.Millisecond)
	mark := c.stations[0].Now()
	time.Sleep(300 * time.Millisecond)
	senders := c.Stats().SendersSince(mark)
	if len(senders) != 1 || senders[0] != 0 {
		t.Fatalf("steady-state senders = %v, want [0]", senders)
	}
}

func TestTCPStopIsIdempotentAndClean(t *testing.T) {
	autos, _ := liveDetectors(3)
	c, err := NewTCPCluster(Config{N: 3, Seed: 14, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(50 * time.Millisecond)
	c.Stop()
	c.Stop()
}

func TestTCPSendAfterStopDropsQuietly(t *testing.T) {
	dets := []*core.Detector{core.New(core.WithEta(5 * time.Millisecond)), core.New(core.WithEta(5 * time.Millisecond))}
	autos := []node.Automaton{dets[0], dets[1]}
	c, err := NewTCPCluster(Config{N: 2, Seed: 15, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(30 * time.Millisecond)
	c.Stop()
	before := c.Stats().Dropped()
	(&tcpNet{cluster: c}).send(0, 1, core.LeaderMsg{Epoch: 1})
	if c.Stats().Dropped() != before+1 {
		t.Fatal("send after stop not accounted as drop")
	}
}
