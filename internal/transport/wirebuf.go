package transport

import "sync"

// encBufs pools encode buffers so steady-state sends marshal into reused
// memory instead of allocating per message. Buffers are pointers to slices
// (the pool stores interface values; a *[]byte avoids boxing the header).
var encBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}
