package transport

import "repro/internal/link"

// encBufs pools encode buffers for the mem, UDP and TCP send paths. The
// pool lives in internal/link (the per-link sender releases into it) and
// counts gets/puts; tests quiesce a cluster and assert Balance() == 0 to
// catch leaks and double puts on every frame path.
var encBufs = link.NewPool(512)
