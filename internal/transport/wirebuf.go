package transport

import (
	"sync"
	"sync/atomic"
)

// bufPool pools encode buffers so steady-state sends marshal into reused
// memory instead of allocating per message. Buffers are pointers to slices
// (the pool stores interface values; a *[]byte avoids boxing the header).
//
// The pool counts gets and puts: every buffer handed out must come back
// exactly once, whatever path the frame takes — written, queue-full drop,
// injected drop, mid-batch write error, shutdown. Tests quiesce a cluster
// and assert balance() == 0, which catches both leaks (balance stays
// positive) and double puts (balance goes negative).
type bufPool struct {
	pool sync.Pool
	gets atomic.Int64
	puts atomic.Int64
}

var encBufs = bufPool{
	pool: sync.Pool{
		New: func() any {
			b := make([]byte, 0, 512)
			return &b
		},
	},
}

func (p *bufPool) get() *[]byte {
	p.gets.Add(1)
	return p.pool.Get().(*[]byte)
}

func (p *bufPool) put(b *[]byte) {
	p.puts.Add(1)
	p.pool.Put(b)
}

// balance returns the number of outstanding buffers: gets minus puts.
func (p *bufPool) balance() int64 { return p.gets.Load() - p.puts.Load() }
