package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	nodepkg "repro/internal/node"
	"repro/internal/obs"
)

// UDPCluster runs n automatons as real UDP endpoints on the loopback
// interface. Each process owns a socket; messages are framed with the wire
// envelope (sender id + typed payload). UDP gives genuine asynchrony —
// kernel scheduling jitter, no delivery-order guarantee — so this is the
// closest thing to a deployment this repository ships.
type UDPCluster struct {
	cfg      Config
	stations []*station
	conns    []*net.UDPConn
	addrs    []*net.UDPAddr
	stats    *metrics.MessageStats
	sink     obs.Sink
	bytes    obs.ByteSink // byte-accounting view of sink, nil if unsupported
	ctx      obs.CtxSink  // trace-context view of sink, nil if unsupported
	start    time.Time

	mu       sync.Mutex
	crashers []*time.Timer

	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewUDPCluster builds a UDP cluster on 127.0.0.1 with kernel-assigned
// ports; automatons[i] runs as process i.
func NewUDPCluster(cfg Config, automatons []nodepkg.Automaton) (*UDPCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(automatons) != cfg.N {
		return nil, fmt.Errorf("transport: %d automatons for N=%d", len(automatons), cfg.N)
	}
	c := &UDPCluster{
		cfg:   cfg,
		stats: metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow),
		start: time.Now(),
		conns: make([]*net.UDPConn, cfg.N),
		addrs: make([]*net.UDPAddr, cfg.N),
	}
	c.sink = obs.Tee(c.stats, cfg.Observer)
	c.bytes = obs.Bytes(c.sink)
	c.ctx = obs.Ctx(c.sink)
	for i := 0; i < cfg.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			c.closeConns()
			return nil, fmt.Errorf("listen udp for p%d: %w", i, err)
		}
		c.conns[i] = conn
		addr, ok := conn.LocalAddr().(*net.UDPAddr)
		if !ok {
			c.closeConns()
			return nil, fmt.Errorf("unexpected local addr type %T", conn.LocalAddr())
		}
		c.addrs[i] = addr
	}
	quiet := func(string, ...any) {}
	c.stations = make([]*station, cfg.N)
	for i := range c.stations {
		var logf func(string, ...any)
		if cfg.Quiet {
			logf = quiet
		}
		c.stations[i] = newStation(nodepkg.ID(i), cfg.N, automatons[i], &udpNet{cluster: c}, c.start, logf)
	}
	return c, nil
}

func (c *UDPCluster) closeConns() {
	for _, conn := range c.conns {
		if conn != nil {
			_ = conn.Close()
		}
	}
}

// Stats returns the cluster's message accounting.
func (c *UDPCluster) Stats() *metrics.MessageStats { return c.stats }

// Addr returns the UDP address of process id.
func (c *UDPCluster) Addr(id nodepkg.ID) *net.UDPAddr { return c.addrs[id] }

// Start boots every process — one reader goroutine and one node loop each
// — and arms the fault plan's scheduled crashes.
func (c *UDPCluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(2 * len(c.stations))
	for i, s := range c.stations {
		go s.run(&c.wg)
		go c.readLoop(i)
	}
	c.mu.Lock()
	c.crashers = scheduleCrashes(c.cfg.Fault, c.Crash)
	c.mu.Unlock()
}

// readLoop decodes datagrams for process i into its mailbox. Only a
// closed socket ends the loop: transient kernel errors (buffer pressure,
// ICMP-induced errors) are logged and survived, so a live endpoint is
// never silently killed.
//
// The loop is allocation-free in steady state: one reusable read buffer,
// ReadFromUDPAddrPort (which returns the source address by value instead
// of allocating a *net.UDPAddr per datagram), and a pooled decoder inside
// UnmarshalEnvelope that copies only what the message keeps.
func (c *UDPCluster) readLoop(i int) {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.conns[i].ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			c.stations[i].logf("udp read: %v (continuing)", err)
			continue
		}
		env, err := c.cfg.Codec.UnmarshalEnvelope(buf[:n])
		if err != nil {
			continue // a corrupt datagram must not kill the endpoint
		}
		if env.From < 0 || int(env.From) >= c.cfg.N {
			continue
		}
		c.sink.OnDeliver(c.stations[i].Now(), int(env.From), i, nodepkg.MessageKind(env.Msg))
		c.stations[i].deliver(env.From, env.Msg)
	}
}

// Crash makes process id inert (crash-stop). Its socket keeps draining so
// late datagrams do not pile up in kernel buffers.
func (c *UDPCluster) Crash(id nodepkg.ID) { c.stations[id].crash() }

// Inject hands m to the cluster's send path as if process from had sent
// it to process to, through a real datagram — the entry point for
// external clients (tests, the chaossoak runner). Safe to call from any
// goroutine.
func (c *UDPCluster) Inject(from, to nodepkg.ID, m nodepkg.Message) {
	(&udpNet{cluster: c}).send(from, to, m)
}

// Stop closes every socket and waits for all goroutines.
func (c *UDPCluster) Stop() {
	if c.stopped || !c.started {
		return
	}
	c.stopped = true
	c.mu.Lock()
	for _, t := range c.crashers {
		t.Stop()
	}
	c.mu.Unlock()
	c.closeConns()
	for _, s := range c.stations {
		s.mbox.close()
	}
	c.wg.Wait()
}

// udpNet implements sender over the cluster's sockets.
type udpNet struct {
	cluster *UDPCluster
}

func (u *udpNet) send(from, to nodepkg.ID, msg nodepkg.Message) {
	c := u.cluster
	k := nodepkg.MessageKind(msg)
	now := c.stations[from].Now()
	c.sink.OnSend(now, int(from), int(to), k)
	reportSendCtx(c.ctx, now, int(from), int(to), k, msg)
	var delay time.Duration
	if c.cfg.Fault != nil {
		d, ok := c.cfg.Fault.Transmit(from, to, time.Since(c.start))
		if !ok {
			c.sink.OnDrop(now, int(from), int(to), k)
			return
		}
		delay = d
	}
	bp := encBufs.Get()
	data, err := c.cfg.Codec.MarshalEnvelopeAppend((*bp)[:0], from, msg)
	if err != nil {
		encBufs.Put(bp)
		panic(fmt.Sprintf("transport: marshal %T: %v", msg, err))
	}
	*bp = data
	if c.bytes != nil {
		c.bytes.OnWireBytes(now, int(from), int(to), k, len(data))
	}
	if delay > 0 {
		// Injected link delay: the datagram leaves later, from a timer
		// goroutine (net.UDPConn is safe for concurrent writes). The
		// pooled buffer is retained until the deferred write completes.
		time.AfterFunc(delay, func() { c.writeDatagram(bp, from, to, k) })
		return
	}
	c.writeDatagram(bp, from, to, k)
}

// writeDatagram writes one encoded envelope with a bounded deadline, so a
// peer (or kernel) that stops accepting writes can never wedge the caller
// — the station's node loop in the direct path.
func (c *UDPCluster) writeDatagram(bp *[]byte, from, to nodepkg.ID, k obs.Kind) {
	conn := c.conns[from]
	_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err := conn.WriteToUDP(*bp, c.addrs[to]); err != nil {
		// Socket closed during shutdown, a write timeout, or a transient
		// kernel error: UDP is lossy by contract, so account and move on.
		c.sink.OnDrop(c.stations[from].Now(), int(from), int(to), k)
	}
	encBufs.Put(bp)
}
