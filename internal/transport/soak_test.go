package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
)

// liveCluster is the surface the chaos soak drives, satisfied by the UDP
// and TCP clusters alike.
type liveCluster interface {
	Start()
	Stop()
	Crash(node.ID)
	Inject(from, to node.ID, m node.Message)
	Stats() *metrics.MessageStats
}

// soakReplicas builds n composed detector+replicated-log automatons.
// The detectors run with the rebuff extension: pre-GST loss and
// partitions desynchronize accusation counters, and without stale-leader
// rebuffs a healed cluster can deadlock with every process electing
// itself (each ignoring the others' stale-epoch heartbeats forever).
func soakReplicas(n int) ([]node.Automaton, []*core.Detector, []*rsm.Node) {
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
		logs[i] = rsm.New(dets[i], rsm.Config{DriveInterval: 10 * time.Millisecond})
		autos[i] = node.Compose(dets[i], logs[i])
	}
	return autos, dets, logs
}

// pumpCommands keeps injecting client requests at the current leader until
// every correct replica's decision log reaches target instances.
func pumpCommands(t *testing.T, c liveCluster, dets []*core.Detector, logs []*rsm.Node, correct []int, prefix string, target int, bound time.Duration) {
	t.Helper()
	i := 0
	waitFor(t, bound, func() bool {
		if l, ok := agreement(dets, skipAllBut(len(dets), correct)); ok {
			// Forward from a correct non-leader, like a real client
			// re-sending through any reachable replica.
			from := node.ID(correct[0])
			if from == l {
				from = node.ID(correct[1])
			}
			c.Inject(from, l, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("%s-%d", prefix, i))})
			i++
		}
		for _, p := range correct {
			if logs[p].Recorder().Count() < target {
				return false
			}
		}
		return true
	}, prefix+" consensus progress")
}

// skipAllBut returns the agreement-skip map excluding everything outside
// keep.
func skipAllBut(n int, keep []int) map[int]bool {
	skip := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		skip[i] = true
	}
	for _, p := range keep {
		skip[p] = false
	}
	return skip
}

// runChaosSoak drives one live cluster through the scripted fault plan of
// the acceptance criteria: commit entries, crash the leader, cut a
// minority partition, heal — then assert re-election, renewed consensus
// progress, and that no instance ever decided two values.
func runChaosSoak(t *testing.T, build func(Config, []node.Automaton) (liveCluster, error)) {
	// n = 5 so the quorum (3) survives the crash of p0 AND the cut of p4:
	// the majority side {1,2,3} can still decide during the partition.
	const n = 5
	const bound = 20 * time.Second
	commands := 5
	if testing.Short() {
		commands = 2
	}
	inj, err := faultline.New(n, 42, faultline.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	autos, dets, logs := soakReplicas(n)
	c, err := build(Config{N: n, Seed: 42, Quiet: true, Fault: inj, WriteTimeout: 200 * time.Millisecond}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// Phase 0: stabilize on p0 and commit a first batch.
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	pumpCommands(t, c, dets, logs, []int{0, 1, 2, 3, 4}, "pre", commands, bound)

	// Phase 1: crash the leader; the survivors must re-elect.
	c.Crash(0)
	correct := []int{1, 2, 3, 4}
	var newLeader node.ID
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		newLeader = l
		return ok && l != 0
	}, "re-election after leader crash")

	// Phase 2: cut the minority {4} away from the majority {1,2,3}. The
	// majority must keep a leader; p4 may elect whoever it likes but can
	// never decide a consensus instance alone.
	inj.Cut([]node.ID{4}, []node.ID{1, 2, 3})
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, skipAllBut(n, []int{1, 2, 3}))
		return ok && l != 0 && l != 4
	}, "majority agreement during partition")
	pumpCommands(t, c, dets, logs, []int{1, 2, 3}, "cut", commands+1, bound)

	// Phase 3: heal. Every correct process must converge on one leader.
	inj.Heal()
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		newLeader = l
		return ok && l != 0
	}, "convergence after heal")

	// Phase 4: consensus keeps making progress with the whole quorum.
	pumpCommands(t, c, dets, logs, correct, "post", commands+2, bound)

	// Safety holds across everyone — crashed and once-partitioned
	// replicas included: no instance ever decided two values.
	recs := make([]*consensus.Recorder, n)
	for i, l := range logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("consensus disagreement after chaos (final leader %v): %v", newLeader, rep.Violations)
	}
}

func TestChaosSoakUDP(t *testing.T) {
	runChaosSoak(t, func(cfg Config, autos []node.Automaton) (liveCluster, error) {
		return NewUDPCluster(cfg, autos)
	})
}

func TestChaosSoakTCP(t *testing.T) {
	runChaosSoak(t, func(cfg Config, autos []node.Automaton) (liveCluster, error) {
		return NewTCPCluster(cfg, autos)
	})
}

// TestChaosSoakPreGSTChaosHeals runs a live UDP cluster on
// eventually-timely links: before the wall-clock GST every link drops and
// delays wildly; from GST on the links are timely and the detectors must
// stabilize — the paper's GST model, on real sockets.
func TestChaosSoakPreGSTChaosHeals(t *testing.T) {
	const n = 3
	gst := 1500 * time.Millisecond
	if testing.Short() {
		gst = 400 * time.Millisecond
	}
	inj, err := faultline.New(n, 7, faultline.Plan{
		Default: network.EventuallyTimely(2*time.Millisecond, 30*time.Millisecond, 0.4),
		GST:     gst,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuff detectors: pre-GST loss desynchronizes accusation counters,
	// and the base algorithm (built for reliable links) can then deadlock
	// with every process electing itself — see soakReplicas.
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
		autos[i] = dets[i]
	}
	c, err := NewUDPCluster(Config{N: n, Seed: 7, Quiet: true, Fault: inj}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	time.Sleep(gst / 2)
	if c.Stats().Dropped() == 0 {
		t.Fatal("pre-GST chaos injected no drops")
	}
	waitFor(t, 20*time.Second, func() bool {
		_, ok := agreement(dets, nil)
		return ok && time.Since(c.start) > gst
	}, "post-GST stabilization")
}
