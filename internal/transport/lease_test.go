package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/node"
)

// leaseCluster is the slice of cluster surface the lease safety test
// drives, satisfied by both the mem and TCP clusters.
type leaseCluster interface {
	Start()
	Stop()
	Inject(from, to node.ID, m node.Message)
}

// runLeaseCrashSafety is the linearizability-across-a-crash check for
// the read path: stabilize a lease-holding leader, kill it from the
// cluster's point of view via faultline (isolation — unlike a station
// crash, the partitioned leader keeps running, which is exactly the
// dangerous case), decide new writes under the successor, then verify
// the old leader refuses to serve any read at its stale applied index.
// The lease argument says its grants must have expired before the new
// leader could complete phase 1, so by the time the successor's write
// is observed decided, the old leader must answer zero reads: local
// serving is forbidden (lease lapsed, unrecoverable while isolated) and
// the fallback barrier cannot reach a quorum.
func runLeaseCrashSafety(t *testing.T, build func(inj *faultline.Injector, autos []node.Automaton) (leaseCluster, []*station)) {
	const n = 3
	const lease = 400 * time.Millisecond
	inj, err := faultline.New(n, 7, faultline.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	var armed atomic.Bool
	var replies, staleLocal atomic.Int64
	for i := 0; i < n; i++ {
		dets[i] = core.New(core.WithEta(5 * time.Millisecond))
		logs[i] = rsm.New(dets[i], rsm.Config{DriveInterval: 10 * time.Millisecond, Lease: lease})
		autos[i] = node.Compose(dets[i], logs[i])
	}
	logs[0].OnReadReply(func(m rsm.ReadReplyMsg) {
		if !armed.Load() {
			return
		}
		replies.Add(1)
		if m.Local {
			staleLocal.Add(1)
		}
	})
	c, stations := build(inj, autos)
	c.Start()
	defer c.Stop()

	waitFor(t, 10*time.Second, func() bool {
		for _, d := range dets {
			if d.History().Current() != 0 {
				return false
			}
		}
		return true
	}, "leader 0 stabilization")

	// Writes through the lease-holding leader; grants ride the accepts.
	// Deciding 5 instances also proves leader 0's ballot is prepared.
	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < 5; i++ {
			c.Inject(1, 0, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("pre-iso-%d", i))})
		}
		for _, l := range logs {
			if l.Recorder().Count() < 5 {
				return false
			}
		}
		return true
	}, "pre-isolation writes decided everywhere")
	waitFor(t, 10*time.Second, func() bool { return logs[0].LeaseHeld() }, "leader holds the read lease")

	// "Kill" the leader mid-lease: cut every link to and from it. The
	// leader itself keeps running — and keeps believing it leads.
	inj.Isolate(0)

	// The survivors must elect a successor, wait out the lease, prepare,
	// and decide a fresh write. The probe value is distinguishable from
	// every pre-isolation command and is only ever injected toward the
	// successor, so seeing it decided proves a post-isolation leader
	// completed phase 1 and phase 2 — in-flight decides from the old
	// leader cannot fake it.
	decided := func(l *rsm.Node) bool {
		for _, d := range l.Recorder().All() {
			if d.Value == consensus.Value("post-iso") {
				return true
			}
		}
		return false
	}
	waitFor(t, 20*time.Second, func() bool {
		l := dets[1].History().Current()
		if l == node.None || l == 0 {
			return false
		}
		from := node.ID(1)
		if l == 1 {
			from = 2
		}
		c.Inject(from, l, rsm.RequestMsg{V: consensus.Value("post-iso")})
		return decided(logs[1]) && decided(logs[2])
	}, "successor decides a write after isolation")

	// By now the old leader's conservative lease validity must have
	// lapsed — its expiry strictly precedes any successor's phase 1.
	if logs[0].LeaseHeld() {
		t.Fatal("old leader still claims the lease after the successor decided")
	}

	// Drive reads straight into the old leader, as a client colocated
	// with it would. None may be answered: a Local reply would be a
	// stale read (its applied index misses the post-isolation writes),
	// and the fallback barrier cannot commit without a quorum.
	armed.Store(true)
	for i := 0; i < 30; i++ {
		stations[0].deliver(0, rsm.ReadReqMsg{Seq: uint64(1000 + i), Count: 1, Origin: 0})
		time.Sleep(10 * time.Millisecond)
	}
	if got := staleLocal.Load(); got != 0 {
		t.Fatalf("old leader served %d stale local reads after the successor decided", got)
	}
	if got := replies.Load(); got != 0 {
		t.Fatalf("old leader answered %d reads while isolated (fallback barrier cannot have committed)", got)
	}
}

func TestMemLeaseCrashSafety(t *testing.T) {
	runLeaseCrashSafety(t, func(inj *faultline.Injector, autos []node.Automaton) (leaseCluster, []*station) {
		c, err := NewCluster(Config{N: 3, Seed: 7, Quiet: true, Fault: inj}, autos)
		if err != nil {
			t.Fatal(err)
		}
		return c, c.stations
	})
}

func TestTCPLeaseCrashSafety(t *testing.T) {
	runLeaseCrashSafety(t, func(inj *faultline.Injector, autos []node.Automaton) (leaseCluster, []*station) {
		c, err := NewTCPCluster(Config{N: 3, Seed: 7, Quiet: true, Fault: inj}, autos)
		if err != nil {
			t.Fatal(err)
		}
		return c, c.stations
	})
}
