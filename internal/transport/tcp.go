package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	nodepkg "repro/internal/node"
	"repro/internal/obs"
)

// maxFrame bounds a TCP frame so a corrupt length prefix cannot trigger a
// huge allocation.
const maxFrame = 1 << 20

// TCPCluster runs n automatons as TCP endpoints on the loopback interface.
// Each process listens on a kernel-assigned port; senders dial lazily and
// keep the connection open, writing length-prefixed wire envelopes. TCP
// gives reliable, ordered per-connection delivery — the "reliable link"
// regime of the paper, live.
type TCPCluster struct {
	cfg       Config
	stations  []*station
	listeners []net.Listener
	addrs     []net.Addr
	stats     *metrics.MessageStats
	sink      obs.Sink
	start     time.Time

	mu       sync.Mutex
	conns    map[connKey]net.Conn // sender-side cache
	accepted []net.Conn           // receiver-side, for shutdown

	wg      sync.WaitGroup
	started bool
	stopped bool
}

type connKey struct {
	from, to nodepkg.ID
}

// NewTCPCluster builds a TCP cluster on 127.0.0.1; automatons[i] runs as
// process i.
func NewTCPCluster(cfg Config, automatons []nodepkg.Automaton) (*TCPCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(automatons) != cfg.N {
		return nil, fmt.Errorf("transport: %d automatons for N=%d", len(automatons), cfg.N)
	}
	c := &TCPCluster{
		cfg:       cfg,
		stats:     metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow),
		start:     time.Now(),
		listeners: make([]net.Listener, cfg.N),
		addrs:     make([]net.Addr, cfg.N),
		conns:     make(map[connKey]net.Conn),
	}
	c.sink = obs.Tee(c.stats, cfg.Observer)
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.closeAll()
			return nil, fmt.Errorf("listen tcp for p%d: %w", i, err)
		}
		c.listeners[i] = ln
		c.addrs[i] = ln.Addr()
	}
	quiet := func(string, ...any) {}
	c.stations = make([]*station, cfg.N)
	for i := range c.stations {
		var logf func(string, ...any)
		if cfg.Quiet {
			logf = quiet
		}
		c.stations[i] = newStation(nodepkg.ID(i), cfg.N, automatons[i], &tcpNet{cluster: c}, c.start, logf)
	}
	return c, nil
}

func (c *TCPCluster) closeAll() {
	for _, ln := range c.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	c.mu.Lock()
	for _, conn := range c.conns {
		_ = conn.Close()
	}
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	c.mu.Unlock()
}

// Stats returns the cluster's message accounting.
func (c *TCPCluster) Stats() *metrics.MessageStats { return c.stats }

// Addr returns the TCP address of process id.
func (c *TCPCluster) Addr(id nodepkg.ID) net.Addr { return c.addrs[id] }

// Start boots every process: one accept loop and one node loop each.
func (c *TCPCluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(2 * len(c.stations))
	for i, s := range c.stations {
		go s.run(&c.wg)
		go c.acceptLoop(i)
	}
}

// acceptLoop accepts inbound connections for process i and spawns a frame
// reader for each.
func (c *TCPCluster) acceptLoop(i int) {
	defer c.wg.Done()
	for {
		conn, err := c.listeners[i].Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.accepted = append(c.accepted, conn)
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(i, conn)
	}
}

// readLoop decodes length-prefixed envelopes from one connection.
func (c *TCPCluster) readLoop(i int, conn net.Conn) {
	defer c.wg.Done()
	var header [4]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:])
		if size == 0 || size > maxFrame {
			_ = conn.Close()
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		env, err := c.cfg.Codec.UnmarshalEnvelope(body)
		if err != nil {
			continue // a corrupt frame must not kill the endpoint
		}
		if env.From < 0 || int(env.From) >= c.cfg.N {
			continue
		}
		c.sink.OnDeliver(c.stations[i].Now(), int(env.From), i, nodepkg.MessageKind(env.Msg))
		c.stations[i].deliver(env.From, env.Msg)
	}
}

// Crash makes process id inert (crash-stop).
func (c *TCPCluster) Crash(id nodepkg.ID) { c.stations[id].crash() }

// Stop closes all sockets and waits for every goroutine.
func (c *TCPCluster) Stop() {
	if c.stopped || !c.started {
		return
	}
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.closeAll()
	for _, s := range c.stations {
		s.mbox.close()
	}
	c.wg.Wait()
}

// tcpNet implements sender over cached per-destination connections.
type tcpNet struct {
	cluster *TCPCluster
}

func (t *tcpNet) send(from, to nodepkg.ID, msg nodepkg.Message) {
	c := t.cluster
	k := nodepkg.MessageKind(msg)
	c.sink.OnSend(c.stations[from].Now(), int(from), int(to), k)
	// Encode the length-prefixed frame in one pooled buffer: reserve the
	// prefix, append the envelope, then patch the length in.
	bp := encBufs.Get().(*[]byte)
	defer encBufs.Put(bp)
	frame := append((*bp)[:0], 0, 0, 0, 0)
	frame, err := c.cfg.Codec.MarshalEnvelopeAppend(frame, from, msg)
	if err != nil {
		panic(fmt.Sprintf("transport: marshal %T: %v", msg, err))
	}
	*bp = frame
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	conn, err := c.dial(from, to)
	if err != nil {
		c.sink.OnDrop(c.stations[from].Now(), int(from), int(to), k)
		return
	}
	if _, err := conn.Write(frame); err != nil {
		// Connection broke: drop it so the next send re-dials. TCP's
		// reliability is per-connection; across reconnects the link is
		// "reliable unless the process is down", which matches the
		// crash-stop model.
		c.dropConn(from, to, conn)
		c.sink.OnDrop(c.stations[from].Now(), int(from), int(to), k)
	}
}

// dial returns the cached connection from→to, establishing it if needed.
func (c *TCPCluster) dial(from, to nodepkg.ID) (net.Conn, error) {
	key := connKey{from: from, to: to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil, errors.New("transport: cluster stopped")
	}
	if conn, ok := c.conns[key]; ok {
		return conn, nil
	}
	conn, err := net.DialTimeout("tcp", c.addrs[to].String(), time.Second)
	if err != nil {
		return nil, err
	}
	c.conns[key] = conn
	return conn, nil
}

// dropConn evicts a broken cached connection.
func (c *TCPCluster) dropConn(from, to nodepkg.ID, conn net.Conn) {
	_ = conn.Close()
	key := connKey{from: from, to: to}
	c.mu.Lock()
	if c.conns[key] == conn {
		delete(c.conns, key)
	}
	c.mu.Unlock()
}
