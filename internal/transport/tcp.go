package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultline"
	"repro/internal/link"
	"repro/internal/metrics"
	nodepkg "repro/internal/node"
	"repro/internal/obs"
)

// maxFrame bounds a TCP frame so a corrupt length prefix cannot trigger a
// huge allocation.
const maxFrame = 1 << 20

// TCPCluster runs n automatons as TCP endpoints on the loopback interface.
// Each process listens on a kernel-assigned port. Every directed link is
// owned by a dedicated link.Sender goroutine with a bounded outbound
// queue: the node loop hands a frame over with a non-blocking enqueue, and
// the sender dials (with capped exponential backoff plus jitter), applies
// write deadlines, and reconnects on failure. A dead or stalled peer
// therefore costs at most a queue-full drop — it can never block another
// link or a station's node loop. The sender coalesces whatever is already
// queued (up to Config.BatchFrames / Config.BatchBytes) into one vectored
// write, so n frames per interval cost one writev syscall, not n write
// syscalls. TCP gives reliable, ordered per-connection delivery — the
// "reliable link" regime of the paper, live.
//
// The queueing/coalescing/redial machinery itself lives in internal/link;
// this file only encodes frames, consults the fault injector, and wires
// the cluster's observability into the senders.
type TCPCluster struct {
	cfg       Config
	stations  []*station
	listeners []net.Listener
	addrs     []net.Addr
	stats     *metrics.MessageStats
	sink      obs.Sink
	bytes     obs.ByteSink // byte-accounting view of sink, nil if unsupported
	ctx       obs.CtxSink  // trace-context view of sink, nil if unsupported
	start     time.Time
	senders   []*link.Sender // n*n row-major, nil on the diagonal
	stopCh    chan struct{}
	conns     atomic.Int64 // receiver-side open connections (accepted - closed)

	mu       sync.Mutex
	accepted []net.Conn    // receiver-side, for shutdown
	crashers []*time.Timer // armed fault-plan crashes

	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewTCPCluster builds a TCP cluster on 127.0.0.1; automatons[i] runs as
// process i.
func NewTCPCluster(cfg Config, automatons []nodepkg.Automaton) (*TCPCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(automatons) != cfg.N {
		return nil, fmt.Errorf("transport: %d automatons for N=%d", len(automatons), cfg.N)
	}
	c := &TCPCluster{
		cfg:       cfg,
		stats:     metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow),
		start:     time.Now(),
		listeners: make([]net.Listener, cfg.N),
		addrs:     make([]net.Addr, cfg.N),
		senders:   make([]*link.Sender, cfg.N*cfg.N),
		stopCh:    make(chan struct{}),
	}
	c.sink = obs.Tee(c.stats, cfg.Observer)
	c.bytes = obs.Bytes(c.sink)
	c.ctx = obs.Ctx(c.sink)
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.closeAll()
			return nil, fmt.Errorf("listen tcp for p%d: %w", i, err)
		}
		c.listeners[i] = ln
		c.addrs[i] = ln.Addr()
	}
	for from := 0; from < cfg.N; from++ {
		for to := 0; to < cfg.N; to++ {
			if from == to {
				continue
			}
			from, to := from, to
			var onFlush func(frames, bytes int)
			if cfg.OnFlush != nil {
				onFlush = func(frames, bytes int) {
					cfg.OnFlush(nodepkg.ID(from), nodepkg.ID(to), frames, bytes)
				}
			}
			c.senders[from*cfg.N+to] = link.NewSender(link.Config{
				Addr:         c.addrs[to].String(),
				Queue:        cfg.SendQueue,
				BatchFrames:  cfg.BatchFrames,
				BatchBytes:   cfg.BatchBytes,
				BatchWait:    cfg.BatchWait,
				BatchWaitMax: cfg.BatchWaitMax,
				WriteTimeout: cfg.WriteTimeout,
				DialTimeout:  cfg.DialTimeout,
				Seed:         cfg.Seed ^ int64(from*cfg.N+to+1),
				Pool:         encBufs,
				Stop:         c.stopCh,
				OnDrop: func(f link.Frame) {
					c.sink.OnDrop(c.stations[from].Now(), from, to, f.Kind)
				},
				OnFlush: onFlush,
			})
		}
	}
	quiet := func(string, ...any) {}
	c.stations = make([]*station, cfg.N)
	for i := range c.stations {
		var logf func(string, ...any)
		if cfg.Quiet {
			logf = quiet
		}
		c.stations[i] = newStation(nodepkg.ID(i), cfg.N, automatons[i], &tcpNet{cluster: c}, c.start, logf)
	}
	return c, nil
}

func (c *TCPCluster) closeAll() {
	for _, ln := range c.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	c.mu.Lock()
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	c.mu.Unlock()
}

// Stats returns the cluster's message accounting.
func (c *TCPCluster) Stats() *metrics.MessageStats { return c.stats }

// OpenConns returns the receiver-side count of currently open inbound
// connections across the cluster. A quiesced n-process cluster with every
// directed link in use reads exactly n*(n-1) — one TCP connection per
// directed peer pair — no matter how many consensus groups multiplex over
// the links. Safe from any goroutine.
func (c *TCPCluster) OpenConns() int { return int(c.conns.Load()) }

// Dials returns the lifetime total of successful dials across every
// directed link: n*(n-1) when no link ever re-dialed. Together with
// OpenConns this asserts the shared-socket property of multi-group mode
// from counters, not eyeballs.
func (c *TCPCluster) Dials() uint64 {
	var total uint64
	for _, s := range c.senders {
		if s != nil {
			total += s.Dials()
		}
	}
	return total
}

// Addr returns the TCP address of process id.
func (c *TCPCluster) Addr(id nodepkg.ID) net.Addr { return c.addrs[id] }

// Fault returns the cluster's fault injector (nil when none configured).
func (c *TCPCluster) Fault() *faultline.Injector { return c.cfg.Fault }

// Start boots every process: one accept loop, one node loop, and one
// sender goroutine per outgoing link each, and arms the fault plan's
// scheduled crashes.
func (c *TCPCluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(2 * len(c.stations))
	for i, s := range c.stations {
		go s.run(&c.wg)
		go c.acceptLoop(i)
	}
	for _, s := range c.senders {
		if s == nil {
			continue
		}
		c.wg.Add(1)
		go func(s *link.Sender) {
			defer c.wg.Done()
			s.Run()
		}(s)
	}
	c.mu.Lock()
	c.crashers = scheduleCrashes(c.cfg.Fault, c.Crash)
	c.mu.Unlock()
}

// acceptLoop accepts inbound connections for process i and spawns a frame
// reader for each.
func (c *TCPCluster) acceptLoop(i int) {
	defer c.wg.Done()
	for {
		conn, err := c.listeners[i].Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.accepted = append(c.accepted, conn)
		c.mu.Unlock()
		c.conns.Add(1)
		c.wg.Add(1)
		go c.readLoop(i, conn)
	}
}

// readLoop decodes length-prefixed envelopes from one connection. Reads
// go through a buffered reader sized to the sender's batch cap, so a
// coalesced vectored write arriving as one TCP segment costs one read
// syscall for the whole batch, not two per frame. The body buffer is
// per-connection and reused across frames (the codec copies anything it
// keeps), so a steady-state receive performs no allocations. Any sign of
// a corrupt stream — an oversized length prefix or an envelope that fails
// to decode — closes the connection: framing cannot be trusted past the
// first bad byte, and the peer's sender re-establishes the link. The
// station itself is never affected.
func (c *TCPCluster) readLoop(i int, conn net.Conn) {
	defer c.wg.Done()
	defer c.conns.Add(-1)
	var header [4]byte
	body := make([]byte, 4096)
	br := bufio.NewReaderSize(conn, c.cfg.BatchBytes)
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:])
		if size == 0 || size > maxFrame {
			_ = conn.Close()
			return
		}
		if int(size) > cap(body) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		env, err := c.cfg.Codec.UnmarshalEnvelope(body)
		if err != nil || env.From < 0 || int(env.From) >= c.cfg.N {
			_ = conn.Close()
			return
		}
		c.sink.OnDeliver(c.stations[i].Now(), int(env.From), i, nodepkg.MessageKind(env.Msg))
		c.stations[i].deliver(env.From, env.Msg)
	}
}

// Crash makes process id inert (crash-stop).
func (c *TCPCluster) Crash(id nodepkg.ID) { c.stations[id].crash() }

// Inject hands m to the cluster's send path as if process from had sent
// it to process to, over the from→to link's sender — the entry point for
// external clients (tests, the chaossoak runner). Safe to call from any
// goroutine.
func (c *TCPCluster) Inject(from, to nodepkg.ID, m nodepkg.Message) {
	(&tcpNet{cluster: c}).send(from, to, m)
}

// Stop closes all sockets and waits for every goroutine.
func (c *TCPCluster) Stop() {
	c.mu.Lock()
	if c.stopped || !c.started {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	for _, t := range c.crashers {
		t.Stop()
	}
	c.mu.Unlock()
	close(c.stopCh)
	c.closeAll()
	for _, s := range c.stations {
		s.mbox.close()
	}
	c.wg.Wait()
	// The senders have exited and nothing enqueues after stopCh closes;
	// whatever frames remain queued are dead. Account and release them so
	// the pool balance stays exact.
	for _, s := range c.senders {
		if s != nil {
			s.Drain()
		}
	}
}

// tcpNet hands frames to the per-link senders.
type tcpNet struct {
	cluster *TCPCluster
}

func (t *tcpNet) send(from, to nodepkg.ID, msg nodepkg.Message) {
	c := t.cluster
	k := nodepkg.MessageKind(msg)
	now := c.stations[from].Now()
	c.sink.OnSend(now, int(from), int(to), k)
	reportSendCtx(c.ctx, now, int(from), int(to), k, msg)
	select {
	case <-c.stopCh:
		c.sink.OnDrop(now, int(from), int(to), k)
		return
	default:
	}
	var delay time.Duration
	if c.cfg.Fault != nil {
		d, ok := c.cfg.Fault.Transmit(from, to, time.Since(c.start))
		if !ok {
			c.sink.OnDrop(now, int(from), int(to), k)
			return
		}
		delay = d
	}
	// Encode the length-prefixed frame in one pooled buffer: reserve the
	// prefix, append the envelope, then patch the length in.
	bp := encBufs.Get()
	frame := append((*bp)[:0], 0, 0, 0, 0)
	frame, err := c.cfg.Codec.MarshalEnvelopeAppend(frame, from, msg)
	if err != nil {
		encBufs.Put(bp)
		panic(fmt.Sprintf("transport: marshal %T: %v", msg, err))
	}
	*bp = frame
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if c.bytes != nil {
		c.bytes.OnWireBytes(now, int(from), int(to), k, len(frame))
	}

	s := c.senders[int(from)*c.cfg.N+int(to)]
	if !s.Enqueue(link.Frame{Buf: bp, Kind: k, Delay: delay}) {
		// Queue full: the peer is dead or stalled. The message is lost —
		// never block the node loop waiting for a sick link.
		c.sink.OnDrop(now, int(from), int(to), k)
		encBufs.Put(bp)
	}
}
