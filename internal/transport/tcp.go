package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/faultline"
	"repro/internal/metrics"
	nodepkg "repro/internal/node"
	"repro/internal/obs"
)

// maxFrame bounds a TCP frame so a corrupt length prefix cannot trigger a
// huge allocation.
const maxFrame = 1 << 20

// Reconnect backoff bounds for the per-peer senders: capped exponential
// with jitter, so a flapping peer neither gets hammered nor starves.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffCap  = 500 * time.Millisecond
)

// TCPCluster runs n automatons as TCP endpoints on the loopback interface.
// Each process listens on a kernel-assigned port. Every directed link is
// owned by a dedicated sender goroutine with a bounded outbound queue:
// the node loop hands a frame over with a non-blocking enqueue, and the
// sender dials (with capped exponential backoff plus jitter), applies
// write deadlines, and reconnects on failure. A dead or stalled peer
// therefore costs at most a queue-full drop — it can never block another
// link or a station's node loop. The sender coalesces whatever is already
// queued (up to Config.BatchFrames / Config.BatchBytes) into one vectored
// write, so n frames per interval cost one writev syscall, not n write
// syscalls. TCP gives reliable, ordered per-connection delivery — the
// "reliable link" regime of the paper, live.
type TCPCluster struct {
	cfg       Config
	stations  []*station
	listeners []net.Listener
	addrs     []net.Addr
	stats     *metrics.MessageStats
	sink      obs.Sink
	bytes     obs.ByteSink // byte-accounting view of sink, nil if unsupported
	start     time.Time
	senders   []*tcpSender // n*n row-major, nil on the diagonal
	stopCh    chan struct{}

	mu       sync.Mutex
	accepted []net.Conn    // receiver-side, for shutdown
	crashers []*time.Timer // armed fault-plan crashes

	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewTCPCluster builds a TCP cluster on 127.0.0.1; automatons[i] runs as
// process i.
func NewTCPCluster(cfg Config, automatons []nodepkg.Automaton) (*TCPCluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(automatons) != cfg.N {
		return nil, fmt.Errorf("transport: %d automatons for N=%d", len(automatons), cfg.N)
	}
	c := &TCPCluster{
		cfg:       cfg,
		stats:     metrics.NewMessageStatsWindow(cfg.N, cfg.RecordWindow),
		start:     time.Now(),
		listeners: make([]net.Listener, cfg.N),
		addrs:     make([]net.Addr, cfg.N),
		senders:   make([]*tcpSender, cfg.N*cfg.N),
		stopCh:    make(chan struct{}),
	}
	c.sink = obs.Tee(c.stats, cfg.Observer)
	c.bytes = obs.Bytes(c.sink)
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.closeAll()
			return nil, fmt.Errorf("listen tcp for p%d: %w", i, err)
		}
		c.listeners[i] = ln
		c.addrs[i] = ln.Addr()
	}
	for from := 0; from < cfg.N; from++ {
		for to := 0; to < cfg.N; to++ {
			if from == to {
				continue
			}
			c.senders[from*cfg.N+to] = &tcpSender{
				c:     c,
				from:  nodepkg.ID(from),
				to:    nodepkg.ID(to),
				queue: make(chan tcpFrame, cfg.SendQueue),
				rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(from*cfg.N+to+1))),
			}
		}
	}
	quiet := func(string, ...any) {}
	c.stations = make([]*station, cfg.N)
	for i := range c.stations {
		var logf func(string, ...any)
		if cfg.Quiet {
			logf = quiet
		}
		c.stations[i] = newStation(nodepkg.ID(i), cfg.N, automatons[i], &tcpNet{cluster: c}, c.start, logf)
	}
	return c, nil
}

func (c *TCPCluster) closeAll() {
	for _, ln := range c.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	c.mu.Lock()
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	c.mu.Unlock()
}

// Stats returns the cluster's message accounting.
func (c *TCPCluster) Stats() *metrics.MessageStats { return c.stats }

// Addr returns the TCP address of process id.
func (c *TCPCluster) Addr(id nodepkg.ID) net.Addr { return c.addrs[id] }

// Fault returns the cluster's fault injector (nil when none configured).
func (c *TCPCluster) Fault() *faultline.Injector { return c.cfg.Fault }

// Start boots every process: one accept loop, one node loop, and one
// sender goroutine per outgoing link each, and arms the fault plan's
// scheduled crashes.
func (c *TCPCluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(2 * len(c.stations))
	for i, s := range c.stations {
		go s.run(&c.wg)
		go c.acceptLoop(i)
	}
	for _, s := range c.senders {
		if s == nil {
			continue
		}
		c.wg.Add(1)
		go s.run()
	}
	c.mu.Lock()
	c.crashers = scheduleCrashes(c.cfg.Fault, c.Crash)
	c.mu.Unlock()
}

// acceptLoop accepts inbound connections for process i and spawns a frame
// reader for each.
func (c *TCPCluster) acceptLoop(i int) {
	defer c.wg.Done()
	for {
		conn, err := c.listeners[i].Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.accepted = append(c.accepted, conn)
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(i, conn)
	}
}

// readLoop decodes length-prefixed envelopes from one connection. Reads
// go through a buffered reader sized to the sender's batch cap, so a
// coalesced vectored write arriving as one TCP segment costs one read
// syscall for the whole batch, not two per frame. The body buffer is
// per-connection and reused across frames (the codec copies anything it
// keeps), so a steady-state receive performs no allocations. Any sign of
// a corrupt stream — an oversized length prefix or an envelope that fails
// to decode — closes the connection: framing cannot be trusted past the
// first bad byte, and the peer's sender re-establishes the link. The
// station itself is never affected.
func (c *TCPCluster) readLoop(i int, conn net.Conn) {
	defer c.wg.Done()
	var header [4]byte
	body := make([]byte, 4096)
	br := bufio.NewReaderSize(conn, c.cfg.BatchBytes)
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:])
		if size == 0 || size > maxFrame {
			_ = conn.Close()
			return
		}
		if int(size) > cap(body) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		env, err := c.cfg.Codec.UnmarshalEnvelope(body)
		if err != nil || env.From < 0 || int(env.From) >= c.cfg.N {
			_ = conn.Close()
			return
		}
		c.sink.OnDeliver(c.stations[i].Now(), int(env.From), i, nodepkg.MessageKind(env.Msg))
		c.stations[i].deliver(env.From, env.Msg)
	}
}

// Crash makes process id inert (crash-stop).
func (c *TCPCluster) Crash(id nodepkg.ID) { c.stations[id].crash() }

// Inject hands m to the cluster's send path as if process from had sent
// it to process to, over the from→to link's sender — the entry point for
// external clients (tests, the chaossoak runner). Safe to call from any
// goroutine.
func (c *TCPCluster) Inject(from, to nodepkg.ID, m nodepkg.Message) {
	(&tcpNet{cluster: c}).send(from, to, m)
}

// Stop closes all sockets and waits for every goroutine.
func (c *TCPCluster) Stop() {
	c.mu.Lock()
	if c.stopped || !c.started {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	for _, t := range c.crashers {
		t.Stop()
	}
	c.mu.Unlock()
	close(c.stopCh)
	c.closeAll()
	for _, s := range c.stations {
		s.mbox.close()
	}
	c.wg.Wait()
	// The senders have exited and nothing enqueues after stopCh closes;
	// whatever frames remain queued are dead. Account and release them so
	// the pool balance stays exact.
	for _, s := range c.senders {
		if s == nil {
			continue
		}
	drain:
		for {
			select {
			case f := <-s.queue:
				s.dropFrame(f)
			default:
				break drain
			}
		}
	}
}

// tcpNet hands frames to the per-link sender goroutines.
type tcpNet struct {
	cluster *TCPCluster
}

func (t *tcpNet) send(from, to nodepkg.ID, msg nodepkg.Message) {
	c := t.cluster
	k := nodepkg.MessageKind(msg)
	now := c.stations[from].Now()
	c.sink.OnSend(now, int(from), int(to), k)
	select {
	case <-c.stopCh:
		c.sink.OnDrop(now, int(from), int(to), k)
		return
	default:
	}
	var delay time.Duration
	if c.cfg.Fault != nil {
		d, ok := c.cfg.Fault.Transmit(from, to, time.Since(c.start))
		if !ok {
			c.sink.OnDrop(now, int(from), int(to), k)
			return
		}
		delay = d
	}
	// Encode the length-prefixed frame in one pooled buffer: reserve the
	// prefix, append the envelope, then patch the length in.
	bp := encBufs.get()
	frame := append((*bp)[:0], 0, 0, 0, 0)
	frame, err := c.cfg.Codec.MarshalEnvelopeAppend(frame, from, msg)
	if err != nil {
		encBufs.put(bp)
		panic(fmt.Sprintf("transport: marshal %T: %v", msg, err))
	}
	*bp = frame
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if c.bytes != nil {
		c.bytes.OnWireBytes(now, int(from), int(to), k, len(frame))
	}

	s := c.senders[int(from)*c.cfg.N+int(to)]
	select {
	case s.queue <- tcpFrame{buf: bp, kind: k, delay: delay}:
	default:
		// Queue full: the peer is dead or stalled. The message is lost —
		// never block the node loop waiting for a sick link.
		c.sink.OnDrop(now, int(from), int(to), k)
		encBufs.put(bp)
	}
}

// tcpFrame is one encoded, length-prefixed envelope queued on a link.
type tcpFrame struct {
	buf   *[]byte
	kind  obs.Kind
	delay time.Duration // injected link delay, applied before the write
}

// tcpSender owns one directed link: its queue, its connection, and its
// reconnect state. All dialing and writing happens here, so a slow dial
// or a stalled write can only ever delay this link's own frames.
//
// Buffer ownership: once a frame is in s.frames, this sender owns its
// pooled buffer and releaseBatch returns every one exactly once — whether
// the batch was written or dropped. s.bufs is only a view for the
// vectored write, never an owner.
type tcpSender struct {
	c        *TCPCluster
	from, to nodepkg.ID
	queue    chan tcpFrame
	rng      *rand.Rand

	conn     net.Conn
	backoff  time.Duration
	nextDial time.Time

	frames []tcpFrame   // collected batch (owns the buffers)
	bufs   net.Buffers  // reusable writev view over frames
	view   *net.Buffers // heap box handed to WriteTo, which consumes it
}

func (s *tcpSender) run() {
	defer s.c.wg.Done()
	defer s.closeConn()
	for {
		select {
		case <-s.c.stopCh:
			return
		default:
		}
		select {
		case <-s.c.stopCh:
			return
		case f := <-s.queue:
			s.collect(f)
		}
	}
}

// collect gathers the zero-delay frames already queued behind first — up
// to the byte/frame caps — and flushes them with one vectored write. A
// frame carrying an injected link delay ends the batch: everything queued
// before it is flushed first (FIFO order holds), then the delay is served
// and the frame goes out alone, exactly as the un-batched sender did.
// Serving the delay inside the sender goroutine is what models link
// latency: a slow link delays only its own frames.
func (s *tcpSender) collect(first tcpFrame) {
	if first.delay > 0 {
		s.delayedSingle(first)
		return
	}
	s.frames = append(s.frames[:0], first)
	bytes := len(*first.buf)
	maxFrames, maxBytes := s.c.cfg.BatchFrames, s.c.cfg.BatchBytes
	// len() on the buffered queue tells how many frames are ready right
	// now; receiving that many plain (no select-with-default per frame)
	// keeps the per-frame drain cost to a bare channel op. Frames enqueued
	// during the drain are picked up by the next len() round or batch.
	for len(s.frames) < maxFrames && bytes < maxBytes {
		n := len(s.queue)
		if n == 0 {
			break
		}
		for ; n > 0 && len(s.frames) < maxFrames && bytes < maxBytes; n-- {
			f := <-s.queue
			if f.delay > 0 {
				s.flush()
				s.delayedSingle(f)
				return
			}
			s.frames = append(s.frames, f)
			bytes += len(*f.buf)
		}
	}
	s.flush()
}

// delayedSingle serves f's injected delay, then writes it on its own.
func (s *tcpSender) delayedSingle(f tcpFrame) {
	if !s.sleep(f.delay) {
		s.dropFrame(f) // cluster stopping
		return
	}
	s.frames = append(s.frames[:0], f)
	s.flush()
}

// sleep waits for d, returning false if the cluster stops first.
func (s *tcpSender) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		return true
	case <-s.c.stopCh:
		t.Stop()
		return false
	}
}

// flush writes the collected batch with one vectored write (writev on a
// TCP connection) under one deadline, dialing first if needed. On any
// failure the whole batch is dropped: a partial write poisons the frame
// stream, so the connection is torn down and re-dialed with backoff. TCP's
// reliability is per-connection; across reconnects the link is "reliable
// unless the process is down", which matches the crash-stop model. Either
// way every pooled buffer in the batch is released exactly once.
func (s *tcpSender) flush() {
	if len(s.frames) == 0 {
		return
	}
	if s.conn == nil && !s.redial() {
		s.releaseBatch(true)
		return
	}
	s.bufs = s.bufs[:0]
	for i := range s.frames {
		s.bufs = append(s.bufs, *s.frames[i].buf)
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.c.cfg.WriteTimeout))
	// WriteTo consumes the Buffers it is called on; hand it a reusable
	// boxed copy of the header so s.bufs keeps its backing array for the
	// next flush and no slice header escapes per flush.
	if s.view == nil {
		s.view = new(net.Buffers)
	}
	*s.view = s.bufs
	_, err := s.view.WriteTo(s.conn)
	*s.view = nil
	for i := range s.bufs {
		s.bufs[i] = nil // do not retain pooled bytes across batches
	}
	s.bufs = s.bufs[:0]
	if err != nil {
		s.closeConn()
		s.scheduleRedial()
		s.releaseBatch(true)
		return
	}
	s.backoff = 0
	s.releaseBatch(false)
}

// releaseBatch returns every buffer in the current batch to the pool
// exactly once, accounting each frame as dropped when drop is set.
func (s *tcpSender) releaseBatch(drop bool) {
	for i := range s.frames {
		if drop {
			s.dropFrame(s.frames[i])
		} else {
			encBufs.put(s.frames[i].buf)
		}
		s.frames[i] = tcpFrame{}
	}
	s.frames = s.frames[:0]
}

// redial re-establishes the connection, honouring the backoff window.
// Frames arriving while the link is down are dropped immediately — like
// packets sent into a dead link — so send latency stays bounded.
func (s *tcpSender) redial() bool {
	if !s.nextDial.IsZero() && time.Now().Before(s.nextDial) {
		return false
	}
	conn, err := net.DialTimeout("tcp", s.c.addrs[s.to].String(), s.c.cfg.DialTimeout)
	if err != nil {
		s.scheduleRedial()
		return false
	}
	s.conn = conn
	s.backoff = 0
	s.nextDial = time.Time{}
	return true
}

// scheduleRedial advances the capped exponential backoff and jitters the
// next dial time over [backoff/2, backoff].
func (s *tcpSender) scheduleRedial() {
	if s.backoff == 0 {
		s.backoff = dialBackoffBase
	} else if s.backoff *= 2; s.backoff > dialBackoffCap {
		s.backoff = dialBackoffCap
	}
	wait := s.backoff/2 + time.Duration(s.rng.Int63n(int64(s.backoff/2)+1))
	s.nextDial = time.Now().Add(wait)
}

func (s *tcpSender) closeConn() {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}

// dropFrame accounts one frame as dropped and returns its buffer.
func (s *tcpSender) dropFrame(f tcpFrame) {
	c := s.c
	c.sink.OnDrop(c.stations[s.from].Now(), int(s.from), int(s.to), f.kind)
	encBufs.put(f.buf)
}
