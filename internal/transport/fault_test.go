package transport

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/network"
	"repro/internal/node"
)

// pingMsg returns a small registered wire message for hand-driven sends.
func pingMsg() node.Message { return core.LeaderMsg{Epoch: 1} }

// bigMsg returns a frame-filling registered message of roughly size bytes.
func bigMsg(size int) node.Message {
	return rsm.RequestMsg{V: consensus.Value(strings.Repeat("x", size))}
}

// idleAutomaton does nothing; tests use it when they drive the send path
// by hand and only care about transport mechanics, not protocol traffic.
type idleAutomaton struct{}

func (idleAutomaton) Start(node.Env)                {}
func (idleAutomaton) Deliver(node.ID, node.Message) {}
func (idleAutomaton) Tick(string)                   {}

func idleAutomatons(n int) []node.Automaton {
	autos := make([]node.Automaton, n)
	for i := range autos {
		autos[i] = idleAutomaton{}
	}
	return autos
}

func mustInjector(t *testing.T, n int, seed int64, plan faultline.Plan) *faultline.Injector {
	t.Helper()
	inj, err := faultline.New(n, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestConfigRejectsMismatchedInjector(t *testing.T) {
	inj := mustInjector(t, 3, 1, faultline.Plan{})
	if _, err := NewCluster(Config{N: 4, Fault: inj}, idleAutomatons(4)); err == nil {
		t.Fatal("injector for n=3 accepted by N=4 cluster")
	}
}

func TestMemClusterDownLinksDropEverything(t *testing.T) {
	inj := mustInjector(t, 3, 1, faultline.Plan{Default: network.Down()})
	c, err := NewCluster(Config{N: 3, Seed: 1, Quiet: true, Fault: inj}, idleAutomatons(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for i := 0; i < 20; i++ {
		c.Inject(0, 1, pingMsg())
	}
	if got := c.Stats().Dropped(); got != 20 {
		t.Fatalf("dropped = %d, want 20", got)
	}
	if got := c.Stats().Delivered(); got != 0 {
		t.Fatalf("delivered = %d over down links", got)
	}
}

func TestUDPClusterPartitionCutAndHeal(t *testing.T) {
	inj := mustInjector(t, 2, 2, faultline.Plan{})
	c, err := NewUDPCluster(Config{N: 2, Seed: 2, Quiet: true, Fault: inj}, idleAutomatons(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	c.Inject(0, 1, pingMsg())
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Delivered() >= 1 }, "pre-cut delivery")

	inj.Cut([]node.ID{0}, []node.ID{1})
	dropsBefore := c.Stats().Dropped()
	for i := 0; i < 10; i++ {
		c.Inject(0, 1, pingMsg())
	}
	if got := c.Stats().Dropped(); got != dropsBefore+10 {
		t.Fatalf("dropped = %d, want %d: cut link leaked", got, dropsBefore+10)
	}

	inj.Heal()
	delivered := c.Stats().Delivered()
	c.Inject(0, 1, pingMsg())
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Delivered() > delivered }, "post-heal delivery")
}

func TestScheduledCrashPlanFires(t *testing.T) {
	inj := mustInjector(t, 3, 3, faultline.Plan{
		Crashes: []faultline.Crash{{ID: 0, After: 30 * time.Millisecond}},
	})
	autos, dets := liveDetectors(3)
	c, err := NewCluster(Config{N: 3, Seed: 3, Quiet: true, Fault: inj}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	// The planned crash of p0 must force the survivors to re-elect p1.
	waitFor(t, 10*time.Second, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l == 1
	}, "re-election after scheduled crash")
	if !c.stations[0].crashed.Load() {
		t.Fatal("crash plan did not crash p0")
	}
}

func TestTCPInjectedDropsAreAccounted(t *testing.T) {
	inj := mustInjector(t, 2, 4, faultline.Plan{Default: network.Down()})
	c, err := NewTCPCluster(Config{N: 2, Seed: 4, Quiet: true, Fault: inj}, idleAutomatons(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for i := 0; i < 15; i++ {
		c.Inject(0, 1, pingMsg())
	}
	if got := c.Stats().Dropped(); got != 15 {
		t.Fatalf("dropped = %d, want 15", got)
	}
}

// TestTCPStalledPeerKeepsOtherLinksFast is the regression for the old
// lock-held lazy dial and deadline-less write: with one peer's reads
// frozen, sends to that peer must stay non-blocking (queue-full drops)
// and sends to healthy peers must keep bounded latency.
func TestTCPStalledPeerKeepsOtherLinksFast(t *testing.T) {
	c, err := NewTCPCluster(Config{
		N: 3, Seed: 5, Quiet: true,
		WriteTimeout: 150 * time.Millisecond,
		SendQueue:    8,
	}, idleAutomatons(3))
	if err != nil {
		t.Fatal(err)
	}
	// Replace p2's endpoint with a listener that accepts and never
	// reads: connections to it stall once kernel buffers fill.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	frozen := make(chan net.Conn, 16)
	go func() {
		for {
			conn, err := stall.Accept()
			if err != nil {
				return
			}
			frozen <- conn // hold, never read
		}
	}()
	defer func() {
		for {
			select {
			case conn := <-frozen:
				_ = conn.Close()
			default:
				return
			}
		}
	}()
	_ = c.listeners[2].Close()
	c.addrs[2] = stall.Addr()
	c.Start()
	defer c.Stop()

	// Saturate the 0→2 link with large frames. Every send call must
	// return quickly — the node loop hands frames over with a
	// non-blocking enqueue, so a frozen peer costs drops, not latency.
	big := bigMsg(64 * 1024)
	var worst time.Duration
	for i := 0; i < 300; i++ {
		t0 := time.Now()
		c.Inject(0, 2, big)
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	if worst > 100*time.Millisecond {
		t.Fatalf("send latency to stalled peer reached %v", worst)
	}
	waitFor(t, 10*time.Second, func() bool { return c.Stats().Dropped() > 0 }, "stalled link drops")

	// The healthy 0→1 link must be completely unaffected: keep sending
	// and require sustained delivery (the stalled 0→2 frames never
	// deliver, so Delivered counts 0→1 alone).
	waitFor(t, 10*time.Second, func() bool {
		t0 := time.Now()
		c.Inject(0, 1, pingMsg())
		if d := time.Since(t0); d > worst {
			worst = d
		}
		return c.Stats().Delivered() >= 20
	}, "healthy link delivery beside stalled peer")
	if worst > 100*time.Millisecond {
		t.Fatalf("send latency on healthy link reached %v", worst)
	}
}

// TestTCPUnreachablePeerDoesNotStallOthers covers the dial side: nobody
// listens at p2's address at all, so every 0→2 frame fails its dial (with
// backoff), while 0→1 keeps flowing with bounded send latency.
func TestTCPUnreachablePeerDoesNotStallOthers(t *testing.T) {
	c, err := NewTCPCluster(Config{
		N: 3, Seed: 6, Quiet: true,
		DialTimeout: 200 * time.Millisecond,
	}, idleAutomatons(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = c.listeners[2].Close() // refuse all connections to p2
	c.Start()
	defer c.Stop()

	var worst time.Duration
	for i := 0; i < 100; i++ {
		t0 := time.Now()
		c.Inject(0, 2, pingMsg())
		c.Inject(0, 1, pingMsg())
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	if worst > 100*time.Millisecond {
		t.Fatalf("send latency with unreachable peer reached %v", worst)
	}
	waitFor(t, 10*time.Second, func() bool { return c.Stats().Dropped() > 0 }, "unreachable link drops")
	waitFor(t, 10*time.Second, func() bool { return c.Stats().LinkCount(0, 1) >= 100 && c.Stats().Delivered() >= 50 }, "healthy link delivery")
}

func TestLiveFaultDeterminismAcrossClusters(t *testing.T) {
	// Two injectors with the same seed and plan feed two clusters whose
	// links carry the same send sequence; the injected drop pattern must
	// be identical. (The per-link decision streams are pure functions of
	// seed/plan/send-index — see faultline's package doc.)
	run := func() uint64 {
		inj := mustInjector(t, 2, 99, faultline.Plan{Default: network.Lossy(0, time.Millisecond, 0.5)})
		c, err := NewCluster(Config{N: 2, Seed: 1, Quiet: true, Fault: inj}, idleAutomatons(2))
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		defer c.Stop()
		for i := 0; i < 200; i++ {
			c.Inject(0, 1, pingMsg())
		}
		return c.Stats().Dropped()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed+plan dropped %d vs %d messages", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("degenerate drop count %d", a)
	}
}
