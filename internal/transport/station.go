package transport

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

// event is one unit of work for a node loop: a delivery, a timer firing,
// or a reboot carrying the next incarnation's automaton.
type event struct {
	from     node.ID
	msg      node.Message
	timerKey string
	timerGen uint64
	reboot   node.Automaton
}

// sender is how a station hands an outbound message to the network layer.
type sender interface {
	send(from, to node.ID, m node.Message)
}

// ConcurrentDeliverer is implemented by automatons that can accept
// deliveries from arbitrary goroutines — the multi-group sharded engine
// (internal/consensus/group), which demuxes each message into a per-group
// mailbox. When a station's automaton implements it, inbound messages are
// handed over directly from the transport's receive goroutines (TCP read
// loops, UDP receive loops, mem delivery timers), skipping the station
// loop's serialization point entirely. DeliverConcurrent reports whether
// the message was consumed; on false the message takes the ordinary
// station-loop path.
type ConcurrentDeliverer interface {
	DeliverConcurrent(from node.ID, m node.Message) bool
}

// fastBox wraps the fast-path deliverer for atomic.Value storage (which
// needs one consistent concrete type across stores).
type fastBox struct{ d ConcurrentDeliverer }

func boxOf(a node.Automaton) fastBox {
	d, _ := a.(ConcurrentDeliverer)
	return fastBox{d: d}
}

// station runs one process: a single goroutine consumes the mailbox and
// invokes the automaton, so the node.Env single-threading contract holds.
type station struct {
	id        node.ID
	n         int
	automaton node.Automaton
	mbox      *mailbox
	net       sender
	start     time.Time
	logf      func(format string, args ...any)

	// timers maps key → latest generation; a timer event fires only if
	// its generation is still current. Accessed only from the node loop.
	timers map[string]uint64

	crashed atomic.Bool
	done    chan struct{}

	// fast holds the automaton's ConcurrentDeliverer (boxed, nil inside
	// the box when unsupported). It is read by receive goroutines on
	// every delivery and swapped on reboot, hence the atomic.
	fast atomic.Value // of fastBox
}

var _ node.Env = (*station)(nil)

func newStation(id node.ID, n int, a node.Automaton, net sender, start time.Time, logf func(string, ...any)) *station {
	if logf == nil {
		logf = func(format string, args ...any) {
			log.Printf("p%d: %s", id, fmt.Sprintf(format, args...))
		}
	}
	s := &station{
		id:        id,
		n:         n,
		automaton: a,
		mbox:      newMailbox(),
		net:       net,
		start:     start,
		logf:      logf,
		timers:    make(map[string]uint64),
		done:      make(chan struct{}),
	}
	s.fast.Store(boxOf(a))
	return s
}

// run is the node loop; it returns when the mailbox closes. Each wake-up
// drains the whole mailbox in one batch, so the per-event cost is a slice
// read, not a lock acquisition.
func (s *station) run(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(s.done)
	s.automaton.Start(s)
	var batch []event
	for range s.mbox.C {
		for {
			batch = s.mbox.drain(batch[:0])
			if len(batch) == 0 {
				break
			}
			for i := range batch {
				s.dispatch(batch[i])
				batch[i] = event{} // do not retain messages until the next batch
			}
		}
		if s.mbox.isClosed() {
			return
		}
	}
}

func (s *station) dispatch(e event) {
	if e.reboot != nil {
		// Handled before the crashed check: the whole point is waking a
		// crashed process. Runs on the node loop, so the new automaton's
		// Start sees the same single-threaded Env as a boot-time Start.
		s.rebootNow(e.reboot)
		return
	}
	if s.crashed.Load() {
		return
	}
	if e.timerKey != "" {
		if s.timers[e.timerKey] != e.timerGen {
			return // superseded or stopped
		}
		delete(s.timers, e.timerKey)
		s.automaton.Tick(e.timerKey)
		return
	}
	s.automaton.Deliver(e.from, e.msg)
}

// deliver enqueues an inbound message. When the automaton supports
// concurrent delivery (the sharded group engine), the message is demuxed
// on this goroutine — the transport's receive path — without waking the
// station loop; ordering within a (peer, group) pair is preserved because
// each TCP connection is read by one goroutine. A crashed station drops
// on the fast path exactly as dispatch would.
func (s *station) deliver(from node.ID, m node.Message) {
	if d := s.fast.Load().(fastBox).d; d != nil {
		if s.crashed.Load() {
			return
		}
		if d.DeliverConcurrent(from, m) {
			return
		}
	}
	s.mbox.push(event{from: from, msg: m})
}

// crash makes the station inert (crash-stop).
func (s *station) crash() {
	s.crashed.Store(true)
}

// reboot schedules a restart of the station with a fresh automaton —
// typically one rebuilt from the process's durable store. Safe from any
// goroutine; the swap itself happens on the node loop.
func (s *station) reboot(a node.Automaton) {
	s.mbox.push(event{reboot: a})
}

// rebootNow performs the restart on the node loop: every timer of the
// previous incarnation is invalidated (its RAM died with it; pending
// AfterFuncs fire into stale generations), the automaton is swapped, and
// the new incarnation boots exactly like a fresh process.
func (s *station) rebootNow(a node.Automaton) {
	for k := range s.timers {
		s.timers[k]++
	}
	s.automaton = a
	s.fast.Store(boxOf(a)) // receive goroutines route to the new incarnation
	s.crashed.Store(false)
	s.automaton.Start(s)
}

// stop terminates the node loop.
func (s *station) stop() {
	s.mbox.close()
	<-s.done
}

// --- node.Env -----------------------------------------------------------

// ID implements node.Env.
func (s *station) ID() node.ID { return s.id }

// N implements node.Env.
func (s *station) N() int { return s.n }

// Now implements node.Env: wall-clock time since the cluster started.
func (s *station) Now() sim.Time { return sim.Time(time.Since(s.start).Nanoseconds()) }

// Send implements node.Env.
func (s *station) Send(to node.ID, m node.Message) {
	if s.crashed.Load() {
		return
	}
	if to == s.id {
		panic(fmt.Sprintf("transport: process %d sending to itself", s.id))
	}
	s.net.send(s.id, to, m)
}

// Broadcast implements node.Env.
func (s *station) Broadcast(m node.Message) {
	for to := 0; to < s.n; to++ {
		if node.ID(to) != s.id {
			s.Send(node.ID(to), m)
		}
	}
}

// SetTimer implements node.Env. It must be called from the node loop (the
// automaton's callbacks), which is the node.Env contract.
func (s *station) SetTimer(key string, d time.Duration) {
	if s.crashed.Load() {
		return
	}
	gen := s.timers[key] + 1
	s.timers[key] = gen
	time.AfterFunc(d, func() {
		s.mbox.push(event{timerKey: key, timerGen: gen})
	})
}

// StopTimer implements node.Env.
func (s *station) StopTimer(key string) {
	// Bumping the generation invalidates the pending AfterFunc event.
	if _, ok := s.timers[key]; ok {
		s.timers[key]++
	}
}

// Logf implements node.Env.
func (s *station) Logf(format string, args ...any) {
	s.logf(format, args...)
}
