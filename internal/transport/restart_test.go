package transport

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultline"
	"repro/internal/node"
)

// bootMark counts incarnations and deliveries: enough to verify the
// crash→reboot mechanics without protocol traffic.
type bootMark struct {
	boots      *atomic.Int32
	deliveries *atomic.Int32
}

func (b bootMark) Start(node.Env) { b.boots.Add(1) }
func (b bootMark) Deliver(node.ID, node.Message) {
	if b.deliveries != nil {
		b.deliveries.Add(1)
	}
}
func (b bootMark) Tick(string) {}

// TestScheduledRestartPlanReboots drives the faultline.Restart plan end
// to end on the mem cluster: the process crashes at After, stays inert
// for Downtime, then reboots with the automaton from Config.Rebuild and
// receives messages again.
func TestScheduledRestartPlanReboots(t *testing.T) {
	var boots, deliveries atomic.Int32
	inj := mustInjector(t, 2, 11, faultline.Plan{
		Restarts: []faultline.Restart{{ID: 0, After: 20 * time.Millisecond, Downtime: 30 * time.Millisecond}},
	})
	autos := []node.Automaton{
		bootMark{boots: &boots, deliveries: &deliveries},
		idleAutomaton{},
	}
	c, err := NewCluster(Config{
		N: 2, Seed: 11, Quiet: true, Fault: inj,
		Rebuild: func(id node.ID) node.Automaton {
			if id != 0 {
				t.Errorf("rebuild called for %d", id)
			}
			return bootMark{boots: &boots, deliveries: &deliveries}
		},
	}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor(t, 5*time.Second, func() bool { return c.stations[0].crashed.Load() }, "scheduled crash")
	waitFor(t, 5*time.Second, func() bool { return boots.Load() == 2 }, "reboot Start")
	if c.stations[0].crashed.Load() {
		t.Fatal("station still marked crashed after reboot")
	}
	before := deliveries.Load()
	waitFor(t, 5*time.Second, func() bool {
		c.Inject(1, 0, pingMsg())
		return deliveries.Load() > before
	}, "post-reboot delivery")
}

// TestRebuildRequiredForRestartPlan: a restart plan without a Rebuild
// hook cannot produce the next incarnation and must be rejected up front.
func TestRebuildRequiredForRestartPlan(t *testing.T) {
	inj := mustInjector(t, 2, 12, faultline.Plan{
		Restarts: []faultline.Restart{{ID: 0, After: time.Millisecond}},
	})
	if _, err := NewCluster(Config{N: 2, Seed: 12, Fault: inj}, idleAutomatons(2)); err == nil {
		t.Fatal("restart plan without Rebuild accepted")
	}
}

// TestRestartedReplicaRejoinsAndCatchesUp is the live kill -9 drill on
// the mem transport: a three-replica rsm cluster with per-process WALs
// commits a batch, the leader is crashed, the survivors keep deciding,
// and the leader is then rebuilt from its WAL directory. The restarted
// replica must catch up on what it missed and the union of all decision
// logs — pre-crash and post-recovery — must stay consistent.
func TestRestartedReplicaRejoinsAndCatchesUp(t *testing.T) {
	const n = 3
	const bound = 20 * time.Second
	base := t.TempDir()
	openStore := func(i int) *durable.WAL {
		w, err := durable.Open(filepath.Join(base, "p"+string(rune('0'+i))), durable.Options{Sync: durable.SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	build := func(i int, w *durable.WAL) (*core.Detector, *rsm.Node, node.Automaton) {
		det := core.New(core.WithEta(5*time.Millisecond), core.WithRebuff())
		log := rsm.New(det, rsm.Config{DriveInterval: 10 * time.Millisecond, Store: w})
		return det, log, node.Compose(det, log)
	}

	autos := make([]node.Automaton, n)
	dets := make([]*core.Detector, n)
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i], logs[i], autos[i] = build(i, openStore(i))
	}
	c, err := NewCluster(Config{N: n, Seed: 13, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// Commit a first batch under p0.
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, nil)
		return ok && l == 0
	}, "initial agreement")
	pumpCommands(t, c, dets, logs, []int{0, 1, 2}, "pre", 3, bound)

	// kill -9 the leader; the survivors re-elect and keep deciding the
	// entries the dead replica will have to recover later.
	c.Crash(0)
	waitFor(t, bound, func() bool {
		l, ok := agreement(dets, map[int]bool{0: true})
		return ok && l != 0
	}, "re-election after leader crash")
	pumpCommands(t, c, dets, logs, []int{1, 2}, "mid", 6, bound)

	// Restart p0 from its WAL directory: a fresh automaton over a fresh
	// durable.Open of the same state the dead incarnation persisted.
	// (The crashed incarnation's handle is simply abandoned, as kill -9
	// would; it can write nothing more.)
	det0, log0, auto0 := build(0, openStore(0))
	dets[0], logs[0] = det0, log0
	c.Restart(0, auto0)

	// The restarted replica converges on the current leader, recovers its
	// pre-crash decisions, and catches up on everything it missed.
	waitFor(t, bound, func() bool {
		_, ok := agreement(dets, nil)
		return ok
	}, "convergence after restart")
	waitFor(t, bound, func() bool { return logs[0].Recorder().Count() >= 6 }, "restarted replica catch-up")

	// And it participates in new consensus rounds like any correct node.
	pumpCommands(t, c, dets, logs, []int{0, 1, 2}, "post", 8, bound)

	recs := make([]*consensus.Recorder, n)
	for i, l := range logs {
		recs[i] = l.Recorder()
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("disagreement across restart: %v", rep.Violations)
	}
}
