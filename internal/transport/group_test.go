package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/group"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/node"
)

// groupCluster is the cluster surface the sharded tests drive, satisfied
// by both the mem and TCP clusters.
type groupCluster interface {
	Start()
	Stop()
	Inject(from, to node.ID, m node.Message)
}

// buildGroupFleet constructs n sharded processes: each runs a group.Engine
// with one Omega detector + rsm.Node per group, rotated into the group's
// logical id space. Detectors and logs are indexed [process][group] in
// physical process order.
func buildGroupFleet(n, groups int, eta time.Duration) (autos []node.Automaton, dets [][]*core.Detector, logs [][]*rsm.Node) {
	autos = make([]node.Automaton, n)
	dets = make([][]*core.Detector, n)
	logs = make([][]*rsm.Node, n)
	for i := 0; i < n; i++ {
		dets[i] = make([]*core.Detector, groups)
		logs[i] = make([]*rsm.Node, groups)
		i := i
		autos[i] = group.New(group.Config{
			Groups: groups,
			Build: func(g int) node.Automaton {
				dets[i][g] = core.New(core.WithEta(eta))
				logs[i][g] = rsm.New(dets[i][g], rsm.Config{DriveInterval: 10 * time.Millisecond, Group: g})
				return node.Compose(dets[i][g], logs[i][g])
			},
		})
	}
	return autos, dets, logs
}

// haltGroupFleet quiesces every engine's group loops; deferred after
// cluster Stop so in-flight loop goroutines never outlive the test.
func haltGroupFleet(autos []node.Automaton) {
	for _, a := range autos {
		a.(*group.Engine).Halt()
	}
}

// runGroupSharded is the multi-group smoke test: G groups over one shared
// cluster each stabilize on a *different* physical leader (the id
// rotation), decide their own command stream, and never leak a decision
// into another group's log.
func runGroupSharded(t *testing.T, groups int, build func(autos []node.Automaton) groupCluster) {
	const n = 3
	const perGroup = 5
	autos, dets, logs := buildGroupFleet(n, groups, 10*time.Millisecond)
	c := build(autos)
	c.Start()
	defer haltGroupFleet(autos)
	defer c.Stop()

	// Every group stabilizes on logical leader 0 = physical process g mod n.
	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < n; i++ {
			for g := 0; g < groups; g++ {
				if dets[i][g].History().Current() != 0 {
					return false
				}
			}
		}
		return true
	}, "all groups stabilized on logical leader 0")

	// Drive each group's writes at its own physical leader.
	waitFor(t, 15*time.Second, func() bool {
		for g := 0; g < groups; g++ {
			leader := group.Physical(0, g, n)
			from := node.ID((int(leader) + 1) % n)
			for k := 0; k < perGroup; k++ {
				c.Inject(from, leader, group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("g%d-%d", g, k))}))
			}
			for i := 0; i < n; i++ {
				if logs[i][g].Recorder().Count() < perGroup {
					return false
				}
			}
		}
		return true
	}, "every group decided its writes on every replica")

	// No cross-group bleed: each group's log holds only its own commands.
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			for _, d := range logs[i][g].Recorder().All() {
				want := fmt.Sprintf("g%d-", g)
				if len(d.Value) < len(want) || string(d.Value[:len(want)]) != want {
					t.Fatalf("p%d group %d decided foreign command %q", i, g, d.Value)
				}
			}
		}
	}
	if err := checkGroupSafety(logs); err != nil {
		t.Fatal(err)
	}
}

// checkGroupSafety runs the pairwise agreement check per group across all
// replicas' recorders.
func checkGroupSafety(logs [][]*rsm.Node) error {
	for g := 0; g < len(logs[0]); g++ {
		recs := make([]*consensus.Recorder, len(logs))
		for i := range logs {
			recs[i] = logs[i][g].Recorder()
		}
		rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
		if !rep.Agreement {
			return fmt.Errorf("group %d disagreement: %v", g, rep.Violations)
		}
	}
	return nil
}

func TestMemGroupSharded(t *testing.T) {
	runGroupSharded(t, 2, func(autos []node.Automaton) groupCluster {
		c, err := NewCluster(Config{N: 3, Seed: 11, Quiet: true}, autos)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

// TestTCPGroupSharded additionally asserts the shared-socket property from
// counters: a 4-group cluster still holds exactly one TCP connection per
// directed peer pair, and no link ever re-dialed.
func TestTCPGroupSharded(t *testing.T) {
	var tc *TCPCluster
	runGroupSharded(t, 4, func(autos []node.Automaton) groupCluster {
		c, err := NewTCPCluster(Config{N: 3, Seed: 11, Quiet: true}, autos)
		if err != nil {
			t.Fatal(err)
		}
		tc = c
		return c
	})
	// runGroupSharded has stopped the cluster; the counters are final.
	// Receiver-side conns are closed by Stop, but every directed link must
	// have dialed exactly once over the whole run: 4 groups' frames shared
	// n*(n-1) = 6 sockets.
	if got, want := tc.Dials(), uint64(3*2); got != want {
		t.Fatalf("lifetime dials = %d, want %d (one per directed pair, shared across groups)", got, want)
	}
}

// TestTCPGroupSharedConns asserts the live half of the shared-socket
// property: while a multi-group cluster is running and every link is in
// use, the receiver-side open-connection count is exactly n*(n-1).
func TestTCPGroupSharedConns(t *testing.T) {
	const n, groups = 3, 4
	autos, dets, logs := buildGroupFleet(n, groups, 10*time.Millisecond)
	c, err := NewTCPCluster(Config{N: n, Seed: 13, Quiet: true}, autos)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer haltGroupFleet(autos)
	defer c.Stop()
	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < n; i++ {
			for g := 0; g < groups; g++ {
				if dets[i][g].History().Current() != 0 {
					return false
				}
			}
		}
		return true
	}, "all groups stabilized")
	// Decide one write per group so every group has exercised the links.
	waitFor(t, 15*time.Second, func() bool {
		for g := 0; g < groups; g++ {
			leader := group.Physical(0, g, n)
			c.Inject(node.ID((int(leader)+1)%n), leader, group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("conn-g%d", g))}))
			for i := 0; i < n; i++ {
				if logs[i][g].Recorder().Count() < 1 {
					return false
				}
			}
		}
		return true
	}, "one decide per group")
	if got, want := c.OpenConns(), n*(n-1); got != want {
		t.Fatalf("open conns with %d groups = %d, want %d", groups, got, want)
	}
	if got, want := c.Dials(), uint64(n*(n-1)); got != want {
		t.Fatalf("dials with %d groups = %d, want %d", groups, got, want)
	}
}

// runGroupIsolation is the cross-group fault-isolation drill: isolate the
// physical process that leads group 0 and prove (a) group 1 — whose quorum
// is untouched — keeps deciding throughout the victim group's outage,
// without ever re-electing; (b) only group 0 re-elects, and it recovers.
func runGroupIsolation(t *testing.T, build func(inj *faultline.Injector, autos []node.Automaton) groupCluster) {
	const n, groups = 3, 2
	// A large eta keeps group 0's re-election comfortably slower than
	// group 1's per-decide latency, so "progress during the outage" is a
	// real window, not a race.
	const eta = 250 * time.Millisecond
	inj, err := faultline.New(n, 7, faultline.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	autos, dets, logs := buildGroupFleet(n, groups, eta)
	c := build(inj, autos)
	c.Start()
	defer haltGroupFleet(autos)
	defer c.Stop()

	waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < n; i++ {
			for g := 0; g < groups; g++ {
				if dets[i][g].History().Current() != 0 {
					return false
				}
			}
		}
		return true
	}, "both groups stabilized")

	// Pre-isolation traffic in both groups.
	waitFor(t, 10*time.Second, func() bool {
		for g := 0; g < groups; g++ {
			leader := group.Physical(0, g, n)
			from := node.ID((int(leader) + 1) % n)
			for k := 0; k < 3; k++ {
				c.Inject(from, leader, group.Wrap(g, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("pre-g%d-%d", g, k))}))
			}
			for i := 0; i < n; i++ {
				if logs[i][g].Recorder().Count() < 3 {
					return false
				}
			}
		}
		return true
	}, "pre-isolation writes decided in both groups")

	// Group 0 leads at physical 0; group 1 at physical 1. Isolating
	// process 0 beheads group 0 while group 1's quorum {p1, p2} is whole.
	g1Pre := logs[1][1].Recorder().Count()
	inj.Isolate(0)

	// Pump group 1 continuously; watch for group 0's re-election on the
	// survivors; once a new group-0 leader is visible, drive one command
	// at it. The loop exits when group 0 has decided post-isolation — the
	// full outage window.
	g0Decided := func(l *rsm.Node) bool {
		for _, d := range l.Recorder().All() {
			if d.Value == consensus.Value("post-g0") {
				return true
			}
		}
		return false
	}
	g1Reelected := false
	deadline := time.Now().Add(30 * time.Second)
	for k := 0; ; k++ {
		if time.Now().After(deadline) {
			t.Fatal("group 0 never recovered from isolation")
		}
		// Group 1's detector on each survivor must never move off its
		// stable leader: only the victim group re-elects.
		for _, i := range []int{1, 2} {
			if dets[i][1].History().Current() != 0 {
				g1Reelected = true
			}
		}
		c.Inject(2, 1, group.Wrap(1, rsm.RequestMsg{V: consensus.Value(fmt.Sprintf("post-g1-%d", k))}))
		if l := dets[1][0].History().Current(); l != node.None && l != 0 {
			// Survivors elected a new group-0 leader; send it work from
			// the other survivor's logical id.
			leadPhys := group.Physical(l, 0, n)
			from := node.ID(1)
			if leadPhys == 1 {
				from = 2
			}
			c.Inject(from, leadPhys, group.Wrap(0, rsm.RequestMsg{V: consensus.Value("post-g0")}))
			if g0Decided(logs[1][0]) && g0Decided(logs[2][0]) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Group 1 progressed during the outage: the victim group's election
	// interregnum (>= eta) never stalled it.
	if got := logs[1][1].Recorder().Count() - g1Pre; got < 5 {
		t.Fatalf("group 1 decided only %d commands during group 0's outage", got)
	}
	if g1Reelected {
		t.Fatal("group 1 re-elected during group 0's outage (fault bled across groups)")
	}
	// And the survivors' group-0 logs agree with each other.
	if err := checkGroupSafety([][]*rsm.Node{logs[1], logs[2]}); err != nil {
		t.Fatal(err)
	}
}

func TestMemGroupIsolation(t *testing.T) {
	runGroupIsolation(t, func(inj *faultline.Injector, autos []node.Automaton) groupCluster {
		c, err := NewCluster(Config{N: 3, Seed: 7, Quiet: true, Fault: inj}, autos)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestTCPGroupIsolation(t *testing.T) {
	runGroupIsolation(t, func(inj *faultline.Injector, autos []node.Automaton) groupCluster {
		c, err := NewTCPCluster(Config{N: 3, Seed: 7, Quiet: true, Fault: inj}, autos)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}
