// Package transport runs the protocol automatons on real time and real
// concurrency instead of the deterministic simulator: one goroutine per
// process, wall-clock timers, and either an in-memory network with
// injected delay/loss or real UDP/TCP sockets on the loopback interface.
// Messages cross process boundaries through the binary codec
// (internal/wire), so live runs exercise serialization exactly as a
// deployment would. The examples/livecluster program demonstrates it.
package transport

import "sync"

// mailbox is an unbounded FIFO ring buffer with a wake-up channel. Senders
// never block (deliveries and timer callbacks originate in arbitrary
// goroutines, so a bounded channel could deadlock the node loop); the
// consumer waits on C and empties the ring with drain — one lock
// acquisition per batch, not per event. Drained slots are zeroed so the
// mailbox never retains references to consumed events.
type mailbox struct {
	mu     sync.Mutex
	ring   []event // oldest at head, newest at (head+count-1) mod len
	head   int
	count  int
	closed bool

	// C receives a token whenever the mailbox may have items. It has
	// capacity 1: a pending token means "check again", which is enough
	// for a single consumer.
	C chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{C: make(chan struct{}, 1)}
}

// push appends an event and wakes the consumer. Events pushed after close
// are dropped.
func (m *mailbox) push(e event) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.count == len(m.ring) {
		m.grow()
	}
	m.ring[(m.head+m.count)%len(m.ring)] = e
	m.count++
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// grow doubles the ring, unwrapping it so head returns to zero.
func (m *mailbox) grow() {
	newCap := 2 * len(m.ring)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]event, newCap)
	for i := 0; i < m.count; i++ {
		next[i] = m.ring[(m.head+i)%len(m.ring)]
	}
	m.ring = next
	m.head = 0
}

// drain appends all pending events to dst in FIFO order and empties the
// mailbox, zeroing the vacated slots. It takes the lock once regardless of
// how many events are pending; callers reuse dst across batches.
func (m *mailbox) drain(dst []event) []event {
	m.mu.Lock()
	for i := 0; i < m.count; i++ {
		idx := (m.head + i) % len(m.ring)
		dst = append(dst, m.ring[idx])
		m.ring[idx] = event{}
	}
	m.head = 0
	m.count = 0
	m.mu.Unlock()
	return dst
}

// close marks the mailbox closed and wakes the consumer so it can exit.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.ring = nil
	m.head = 0
	m.count = 0
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// isClosed reports whether close was called.
func (m *mailbox) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
