// Package transport runs the protocol automatons on real time and real
// concurrency instead of the deterministic simulator: one goroutine per
// process, wall-clock timers, and either an in-memory network with
// injected delay/loss or real UDP sockets on the loopback interface.
// Messages cross process boundaries through the binary codec
// (internal/wire), so live runs exercise serialization exactly as a
// deployment would. The examples/livecluster program demonstrates it.
package transport

import "sync"

// mailbox is an unbounded FIFO queue with a wake-up channel. Senders never
// block (deliveries and timer callbacks originate in arbitrary goroutines,
// so a bounded channel could deadlock the node loop); the consumer waits on
// C and drains with pop.
type mailbox struct {
	mu     sync.Mutex
	items  []event
	closed bool

	// C receives a token whenever the mailbox may have items. It has
	// capacity 1: a pending token means "check again", which is enough
	// for a single consumer.
	C chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{C: make(chan struct{}, 1)}
}

// push appends an event and wakes the consumer. Events pushed after close
// are dropped.
func (m *mailbox) push(e event) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, e)
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// pop removes and returns the oldest event, if any.
func (m *mailbox) pop() (event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.items) == 0 {
		return event{}, false
	}
	e := m.items[0]
	m.items[0] = event{}
	m.items = m.items[1:]
	return e, true
}

// close marks the mailbox closed and wakes the consumer so it can exit.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.items = nil
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// isClosed reports whether close was called.
func (m *mailbox) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
