package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: no acknowledged
	// vote is ever lost, even to power failure. The slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncGroup fsyncs once per Options.GroupBytes of appended records
	// (group commit): bounded loss on power failure, none on kill -9.
	SyncGroup
	// SyncOff never fsyncs. Records still survive kill -9 — Append
	// write()s them into the page cache before returning, and the
	// kernel outlives the process — but not machine or power failure.
	// The right mode for sims, soaks, and benchmarks.
	SyncOff
)

// Options tunes a WAL. The zero value is safe: per-record fsync, 4 MiB
// segments.
type Options struct {
	Sync SyncPolicy
	// GroupBytes is the SyncGroup flush threshold (default 64 KiB).
	GroupBytes int
	// SegmentBytes is the segment rotation threshold (default 4 MiB).
	SegmentBytes int
	// OnAppend, when set, observes the framed size of every appended
	// record (telemetry: WAL append bytes).
	OnAppend func(bytes int)
	// OnFsync, when set, observes the latency of every fsync.
	OnFsync func(d time.Duration)
	// OnRecover, when set, observes how long Open spent loading the
	// snapshot and replaying the tail.
	OnRecover func(d time.Duration)
}

func (o *Options) fill() {
	if o.GroupBytes <= 0 {
		o.GroupBytes = 64 << 10
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// WAL is a disk-backed Store: a directory of numbered log segments plus
// at most one checkpoint file. Concurrency: the consensus automaton is
// single-threaded, but a mutex guards against Close/Snapshot racing an
// append from another goroutine; the lock is uncontended in practice.
//
// Append errors panic. Automaton callbacks cannot return errors, and a
// replica that cannot persist a vote must crash-stop rather than send
// the message and later deny the vote — panicking is the safe response.
type WAL struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	seq     uint64   // active segment number
	size    int64    // bytes in the active segment
	dirty   int      // bytes appended since the last fsync (SyncGroup)
	payload []byte   // reused encode buffers
	frame   []byte
	st      *State // state recovered at Open; nil for a fresh dir
}

var _ Store = (*WAL)(nil)

func segName(seq uint64) string  { return fmt.Sprintf("wal-%016x.seg", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.ckpt", seq) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name, returning ok=false for anything else.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open recovers a WAL directory: newest valid checkpoint, ordered replay
// of the segments it does not cover, torn-tail truncation on the newest
// segment. A missing or empty directory yields a fresh WAL whose State()
// is nil. Corruption anywhere except the newest segment's tail is an
// error — earlier records were acknowledged as durable and must parse.
func Open(dir string, opts Options) (*WAL, error) {
	opts.fill()
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // interrupted snapshot write
			continue
		}
		if seq, ok := parseSeq(name, "wal-", ".seg"); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(name, "snap-", ".ckpt"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	// Newest loadable checkpoint wins; a checkpoint that fails its CRC
	// is skipped in favor of an older one (the rename was atomic, so
	// this only happens to files damaged after the fact).
	var snap *State
	var replayFrom uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := loadSnapshot(filepath.Join(dir, snapName(snaps[i])))
		if err == nil {
			snap, replayFrom = st, snaps[i]
			break
		}
	}

	rp := newReplay(snap)
	w := &WAL{dir: dir, opts: opts, st: nil}
	for i, seq := range segs {
		if seq < replayFrom {
			continue
		}
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("durable: open %s: %w", dir, err)
		}
		last := i == len(segs)-1
		good, err := rp.run(data)
		if err != nil {
			if !last {
				return nil, fmt.Errorf("durable: %s: record %d bytes in: %w", segName(seq), good, err)
			}
			// Torn tail: the crash landed mid-append. Everything after
			// the last whole record was never acknowledged; cut it off.
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, fmt.Errorf("durable: truncate torn tail of %s: %w", segName(seq), err)
			}
		}
	}
	w.st = rp.finalize()

	// Reopen (or create) the active segment for appending.
	switch {
	case len(segs) > 0:
		w.seq = segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(w.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: open %s: %w", dir, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: open %s: %w", dir, err)
		}
		w.f, w.size = f, fi.Size()
	default:
		w.seq = replayFrom
		if w.seq == 0 {
			w.seq = 1
		}
		if err := w.createSegment(); err != nil {
			return nil, err
		}
	}

	// Best-effort prune of files the chosen checkpoint superseded (a
	// crash between checkpoint rename and deletion leaves them behind).
	for _, seq := range segs {
		if seq < replayFrom {
			os.Remove(filepath.Join(dir, segName(seq)))
		}
	}
	for _, seq := range snaps {
		if seq < replayFrom {
			os.Remove(filepath.Join(dir, snapName(seq)))
		}
	}

	if opts.OnRecover != nil {
		opts.OnRecover(time.Since(start))
	}
	return w, nil
}

// createSegment makes the file for w.seq and makes its dirent durable.
func (w *WAL) createSegment() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	w.f, w.size = f, 0
	if w.opts.Sync != SyncOff {
		syncDir(w.dir)
	}
	return nil
}

// State returns the state recovered by Open, nil for a fresh directory.
func (w *WAL) State() *State { return w.st }

// Dir returns the WAL's directory.
func (w *WAL) Dir() string { return w.dir }

func (w *WAL) Promise(b uint64)               { w.append(record{typ: recPromise, b: b}) }
func (w *WAL) Ballot(b uint64)                { w.append(record{typ: recBallot, b: b}) }
func (w *WAL) Accept(inst, b uint64, v string) { w.append(record{typ: recAccept, inst: inst, b: b, v: v}) }
func (w *WAL) Decide(inst uint64, v string)   { w.append(record{typ: recDecide, inst: inst, v: v}) }

func (w *WAL) append(rec record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.payload = appendRecordPayload(w.payload[:0], rec)
	w.frame = appendFrame(w.frame[:0], w.payload)
	if _, err := w.f.Write(w.frame); err != nil {
		panic("durable: wal append: " + err.Error())
	}
	n := len(w.frame)
	w.size += int64(n)
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(n)
	}
	switch w.opts.Sync {
	case SyncAlways:
		w.fsync()
	case SyncGroup:
		w.dirty += n
		if w.dirty >= w.opts.GroupBytes {
			w.fsync()
		}
	}
	if w.size >= int64(w.opts.SegmentBytes) {
		if err := w.rotate(); err != nil {
			panic("durable: wal rotate: " + err.Error())
		}
	}
}

func (w *WAL) fsync() {
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		panic("durable: wal fsync: " + err.Error())
	}
	w.dirty = 0
	if w.opts.OnFsync != nil {
		w.opts.OnFsync(time.Since(start))
	}
}

// rotate seals the active segment and starts the next one. Callers hold
// w.mu.
func (w *WAL) rotate() error {
	if w.opts.Sync != SyncOff && (w.dirty > 0 || w.opts.Sync == SyncAlways) {
		w.fsync()
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seq++
	return w.createSegment()
}

// Snapshot writes a checkpoint that absorbs st and compacts the log:
// rotate to a fresh segment S, durably write snap-S (tmp + rename), then
// delete every segment and checkpoint below S. Recovery replays exactly
// the records appended after this call. A failed snapshot leaves the old
// checkpoint and segments in place — the WAL keeps growing but loses
// nothing.
func (w *WAL) Snapshot(st *State) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotate(); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	w.payload = appendStatePayload(w.payload[:0], st)
	w.frame = appendFrame(w.frame[:0], w.payload)
	tmp := filepath.Join(w.dir, snapName(w.seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if _, err := f.Write(w.frame); err == nil && w.opts.Sync != SyncOff {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName(w.seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if w.opts.Sync != SyncOff {
		syncDir(w.dir)
	}
	// The checkpoint is durable; everything below it is garbage.
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil // compaction is best-effort; next Open prunes
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".seg"); ok && seq < w.seq {
			os.Remove(filepath.Join(w.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".ckpt"); ok && seq < w.seq {
			os.Remove(filepath.Join(w.dir, e.Name()))
		}
	}
	return nil
}

// Close flushes and releases the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if w.opts.Sync != SyncOff && w.dirty > 0 {
		w.fsync()
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
