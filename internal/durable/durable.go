// Package durable persists the safety-critical consensus state — the
// acceptor's promises and accepts, decided log entries, and the
// proposer's ballot — so a process can be killed (kill -9 included) and
// restarted without ever voting against its past self. The design is the
// classic write-ahead log + snapshot pair:
//
//   - every state change that must survive a crash is appended to a
//     segmented WAL as a length-prefixed, CRC-framed varint record
//     before the message that reveals it leaves the node;
//   - a snapshot absorbs the applied prefix (plus an opaque application
//     payload) into a single checkpoint file, after which older WAL
//     segments are deleted;
//   - recovery = load the newest valid snapshot, replay the WAL tail,
//     truncate a torn tail if the crash landed mid-write.
//
// Consumers program against the Store interface; Nop is the in-memory
// default that keeps simulation paths allocation-free and byte-identical
// (no records, no files, State() == nil).
//
// The package deliberately depends only on the standard library: the
// wire registry imports the consensus automatons, which hang their
// Config.Store on this package, so reusing wire's Encoder/Decoder here
// would close an import cycle. The record codec below follows the same
// uvarint + CRC32C framing conventions instead.
package durable

// Store is the persistence hook set for a consensus automaton. The three
// safety-critical points are Promise/Accept (acceptor votes) and Decide
// (learned log entries); Ballot keeps the proposer from reusing a ballot
// number it already attached a value to before the crash. Implementations
// must make each call durable before returning — the caller sends the
// corresponding protocol message immediately after.
//
// Methods take scalars and strings so the no-op implementation costs
// nothing on the hot path (no []byte conversions, no boxing).
type Store interface {
	// Promise records that the acceptor promised ballot b (and will
	// never again vote below it).
	Promise(b uint64)
	// Ballot records that the proposer owns ballot b; after restart the
	// proposer must pick a strictly higher one.
	Ballot(b uint64)
	// Accept records an acceptor vote for value v at (inst, b). An
	// accept implies a promise at b.
	Accept(inst, b uint64, v string)
	// Decide records that instance inst decided value v.
	Decide(inst uint64, v string)
	// Snapshot absorbs a full checkpoint of the caller's state; on
	// success the store may discard all records the checkpoint covers.
	Snapshot(st *State) error
	// State returns the state recovered when the store was opened, or
	// nil when there was nothing on disk (or the store is Nop). The
	// caller installs it once at startup.
	State() *State
	// Close releases the store. A final flush is implied.
	Close() error
}

// AcceptedRec is one undecided acceptor vote in a recovered State.
type AcceptedRec struct {
	Inst uint64
	B    uint64
	V    string
}

// DecidedRec is one decided log entry in a recovered State.
type DecidedRec struct {
	Inst uint64
	V    string
}

// State is a full checkpoint of the durable consensus state: what a node
// hands to Snapshot, and what it gets back from State() after recovery
// (snapshot merged with the replayed WAL tail).
type State struct {
	// Promised is the acceptor's highest promised ballot.
	Promised uint64
	// Ballot is the highest ballot this node ever owned as proposer.
	Ballot uint64
	// SnapIndex is the first instance NOT absorbed by the snapshot:
	// instances below it are folded into App and carry no log entries.
	SnapIndex uint64
	// SnapCount is the number of commands applied when the snapshot was
	// taken (the applier's progress metric).
	SnapCount uint64
	// Accepted holds undecided acceptor votes, ascending by Inst.
	// Votes for decided instances are folded into Decided.
	Accepted []AcceptedRec
	// Decided holds decided entries at/above SnapIndex, ascending.
	Decided []DecidedRec
	// App is the opaque application snapshot (rsm.Config.SnapshotState).
	App []byte
}

// Nop is the in-memory default store: every hook is free, nothing is
// recovered. Simulations and benchmarks run against it so the hot path
// stays exactly as it was before durability existed.
var Nop Store = nopStore{}

type nopStore struct{}

func (nopStore) Promise(uint64)               {}
func (nopStore) Ballot(uint64)                {}
func (nopStore) Accept(uint64, uint64, string) {}
func (nopStore) Decide(uint64, string)        {}
func (nopStore) Snapshot(*State) error        { return nil }
func (nopStore) State() *State                { return nil }
func (nopStore) Close() error                 { return nil }
