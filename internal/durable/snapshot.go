package durable

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// A checkpoint file is a single CRC frame whose payload serializes a
// State with the same varint conventions as WAL records:
//
//	promised | ballot | snapIndex | snapCount
//	| count | (inst | b | len | v)*    accepted
//	| count | (inst | len | v)*        decided
//	| len | app bytes

func appendStatePayload(dst []byte, st *State) []byte {
	dst = binary.AppendUvarint(dst, st.Promised)
	dst = binary.AppendUvarint(dst, st.Ballot)
	dst = binary.AppendUvarint(dst, st.SnapIndex)
	dst = binary.AppendUvarint(dst, st.SnapCount)
	dst = binary.AppendUvarint(dst, uint64(len(st.Accepted)))
	for _, a := range st.Accepted {
		dst = binary.AppendUvarint(dst, a.Inst)
		dst = binary.AppendUvarint(dst, a.B)
		dst = binary.AppendUvarint(dst, uint64(len(a.V)))
		dst = append(dst, a.V...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.Decided)))
	for _, d := range st.Decided {
		dst = binary.AppendUvarint(dst, d.Inst)
		dst = binary.AppendUvarint(dst, uint64(len(d.V)))
		dst = append(dst, d.V...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.App)))
	return append(dst, st.App...)
}

func parseStatePayload(p []byte) (*State, error) {
	c := cursor{b: p}
	st := &State{
		Promised:  c.uvarint(),
		Ballot:    c.uvarint(),
		SnapIndex: c.uvarint(),
		SnapCount: c.uvarint(),
	}
	nAcc := c.uvarint()
	if c.bad || nAcc > uint64(len(c.b)) { // each entry costs ≥1 byte
		return nil, ErrCorrupt
	}
	st.Accepted = make([]AcceptedRec, 0, nAcc)
	for i := uint64(0); i < nAcc && !c.bad; i++ {
		st.Accepted = append(st.Accepted, AcceptedRec{Inst: c.uvarint(), B: c.uvarint(), V: c.str()})
	}
	nDec := c.uvarint()
	if c.bad || nDec > uint64(len(c.b)) {
		return nil, ErrCorrupt
	}
	st.Decided = make([]DecidedRec, 0, nDec)
	for i := uint64(0); i < nDec && !c.bad; i++ {
		st.Decided = append(st.Decided, DecidedRec{Inst: c.uvarint(), V: c.str()})
	}
	nApp := c.uvarint()
	if c.bad || nApp > uint64(len(c.b)) {
		return nil, ErrCorrupt
	}
	st.App = append([]byte(nil), c.b[:nApp]...)
	c.b = c.b[nApp:]
	if c.bad || len(c.b) != 0 {
		return nil, ErrCorrupt
	}
	return st, nil
}

// loadSnapshot reads and validates one checkpoint file.
func loadSnapshot(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, rest, err := nextFrame(data)
	if err != nil {
		return nil, fmt.Errorf("durable: checkpoint %s: %w", path, ErrCorrupt)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("durable: checkpoint %s: trailing bytes: %w", path, ErrCorrupt)
	}
	return parseStatePayload(payload)
}

// replay folds WAL records over a starting checkpoint. Replay is
// idempotent and order-convergent: promises and ballots are monotone
// maxima, an accept overwrites only at an equal-or-higher ballot, and a
// decide is first-writer-wins (all writers carry the same value — that
// is the consensus safety property this layer exists to preserve).
type replay struct {
	st  State
	acc map[uint64]AcceptedRec
	dec map[uint64]string
	any bool
}

func newReplay(snap *State) *replay {
	rp := &replay{acc: make(map[uint64]AcceptedRec), dec: make(map[uint64]string)}
	if snap != nil {
		rp.st = *snap
		rp.any = true
		for _, a := range snap.Accepted {
			rp.acc[a.Inst] = a
		}
		for _, d := range snap.Decided {
			rp.dec[d.Inst] = d.V
		}
	}
	return rp
}

// run replays one segment's bytes, returning how many bytes of whole
// valid records it consumed. err is non-nil when the segment ends in a
// torn or corrupt record; the caller decides whether that tail is
// truncatable (newest segment) or fatal (any other).
func (rp *replay) run(data []byte) (good int, err error) {
	rest := data
	for {
		var payload []byte
		var ferr error
		payload, rest, ferr = nextFrame(rest)
		if ferr == io.EOF {
			return good, nil
		}
		if ferr != nil {
			return good, ferr
		}
		rec, perr := parseRecordPayload(payload)
		if perr != nil {
			return good, perr
		}
		rp.apply(rec)
		good = len(data) - len(rest)
	}
}

func (rp *replay) apply(rec record) {
	rp.any = true
	switch rec.typ {
	case recPromise:
		if rec.b > rp.st.Promised {
			rp.st.Promised = rec.b
		}
	case recBallot:
		if rec.b > rp.st.Ballot {
			rp.st.Ballot = rec.b
		}
	case recAccept:
		// Voting at b implies a promise at b.
		if rec.b > rp.st.Promised {
			rp.st.Promised = rec.b
		}
		if rec.inst >= rp.st.SnapIndex {
			if cur, ok := rp.acc[rec.inst]; !ok || rec.b >= cur.B {
				rp.acc[rec.inst] = AcceptedRec{Inst: rec.inst, B: rec.b, V: rec.v}
			}
		}
	case recDecide:
		if rec.inst >= rp.st.SnapIndex {
			if _, ok := rp.dec[rec.inst]; !ok {
				rp.dec[rec.inst] = rec.v
			}
		}
	}
}

// finalize flattens the replay into a State: decided entries win over
// accepted ones (mirroring the automaton, which drops an acceptor vote
// once the instance decides), and both lists come out sorted so recovery
// is deterministic. Returns nil when nothing at all was recovered.
func (rp *replay) finalize() *State {
	if !rp.any {
		return nil
	}
	st := rp.st
	st.Accepted, st.Decided = nil, nil
	for inst, v := range rp.dec {
		st.Decided = append(st.Decided, DecidedRec{Inst: inst, V: v})
	}
	sort.Slice(st.Decided, func(i, j int) bool { return st.Decided[i].Inst < st.Decided[j].Inst })
	for inst, a := range rp.acc {
		if _, decided := rp.dec[inst]; !decided {
			st.Accepted = append(st.Accepted, a)
		}
	}
	sort.Slice(st.Accepted, func(i, j int) bool { return st.Accepted[i].Inst < st.Accepted[j].Inst })
	return &st
}
