package durable

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the framed append path per fsync policy —
// the per-vote cost a durable replica pays on top of the in-memory
// protocol. SyncOff is the kill-9-durable mode; SyncAlways pays a real
// fsync per record.
func BenchmarkWALAppend(b *testing.B) {
	policies := []struct {
		name string
		opts Options
	}{
		{"off", Options{Sync: SyncOff}},
		{"group64k", Options{Sync: SyncGroup, GroupBytes: 64 << 10}},
		{"always", Options{Sync: SyncAlways}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), p.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Accept(uint64(i), 7, "0123456789abcdef0123456789abcdef")
			}
		})
	}
}

// BenchmarkWALRecovery measures Open (snapshot load + tail replay) as a
// function of log length: the dominant term in restart downtime.
func BenchmarkWALRecovery(b *testing.B) {
	for _, entries := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			dir := b.TempDir()
			w, err := Open(dir, Options{Sync: SyncOff})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < entries; i++ {
				w.Accept(uint64(i), 7, "0123456789abcdef")
				w.Decide(uint64(i), "0123456789abcdef")
			}
			w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w2, err := Open(dir, Options{Sync: SyncOff})
				if err != nil {
					b.Fatal(err)
				}
				if len(w2.State().Decided) != entries {
					b.Fatalf("recovered %d, want %d", len(w2.State().Decided), entries)
				}
				w2.Close()
			}
		})
	}
}
