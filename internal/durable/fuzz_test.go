package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecordRoundTrip drives arbitrary bytes through the WAL record
// parser (nextFrame + parseRecordPayload) and, whenever a record
// decodes, re-encodes it and demands a byte-stable fixpoint. Mirrors
// wire's FuzzEnvelopeRoundTrip. Invariants:
//
//  1. no input panics or over-allocates (lengths are range-checked
//     before any allocation);
//  2. decode∘encode is the identity on every decodable frame — the
//     re-encoded record reproduces the consumed bytes exactly;
//  3. canonical frames are strict — truncating one byte yields a torn
//     tail, flipping one payload byte breaks the CRC.
func FuzzWALRecordRoundTrip(f *testing.F) {
	canon := func(rec record) []byte {
		return appendFrame(nil, appendRecordPayload(nil, rec))
	}
	seeds := [][]byte{
		canon(record{typ: recPromise, b: 7}),
		canon(record{typ: recBallot, b: 1 << 40}),
		canon(record{typ: recAccept, inst: 3, b: 9, v: "cmd"}),
		canon(record{typ: recAccept, inst: 0, b: 0, v: ""}),
		canon(record{typ: recDecide, inst: 12, v: "\x00b\x02aa\x02bb"}), // batch-envelope-ish value
	}
	// Two records back to back.
	f.Add(append(append([]byte{}, seeds[0]...), seeds[2]...))
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)-1]) // truncated tail
		bad := append([]byte(nil), s...)
		bad[len(bad)-1] ^= 0xFF // CRC mismatch on the last payload byte
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})                         // zero-length record
	f.Add(appendFrame(nil, []byte{}))           // framed zero-length payload
	f.Add(appendFrame(nil, []byte{0x7F, 0x01})) // unknown record type
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // uvarint overflow

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			payload, after, err := nextFrame(rest)
			if err != nil {
				// Errors stop a scan: clean EOF, torn tail, or a
				// corrupt frame.
				return
			}
			rec, perr := parseRecordPayload(payload)
			if perr != nil {
				return
			}
			// Fixpoint: the canonical re-encoding decodes back to the
			// same record (raw input may use non-canonical varints, so
			// byte-identity with the input is not required).
			re := appendFrame(nil, appendRecordPayload(nil, rec))
			p2, rest2, err := nextFrame(re)
			if err != nil || len(rest2) != 0 {
				t.Fatalf("canonical frame failed to parse: %x (%v)", re, err)
			}
			rec2, err := parseRecordPayload(p2)
			if err != nil || rec2 != rec {
				t.Fatalf("round-trip mismatch: %+v vs %+v (%v)", rec, rec2, err)
			}
			// Strictness of the canonical frame: chop a byte → torn,
			// flip a payload byte → CRC failure.
			if _, _, err := nextFrame(re[:len(re)-1]); err == nil {
				t.Fatalf("truncated canonical frame parsed: %x", re)
			}
			flipped := append([]byte(nil), re...)
			flipped[len(flipped)-1] ^= 0xFF
			if p, _, err := nextFrame(flipped); err == nil {
				if _, perr := parseRecordPayload(p); perr == nil {
					t.Fatalf("bit-flipped canonical frame parsed: %x", flipped)
				}
			}
			rest = after
		}
	})
}

// FuzzStateRoundTrip covers the checkpoint payload codec with the same
// identity invariant.
func FuzzStateRoundTrip(f *testing.F) {
	st := &State{
		Promised: 9, Ballot: 9, SnapIndex: 4, SnapCount: 6,
		Accepted: []AcceptedRec{{Inst: 5, B: 9, V: "x"}},
		Decided:  []DecidedRec{{Inst: 4, V: "y"}},
		App:      []byte("payload"),
	}
	f.Add(appendStatePayload(nil, st))
	f.Add(appendStatePayload(nil, &State{}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := parseStatePayload(data)
		if err != nil {
			return
		}
		re := appendStatePayload(nil, st)
		st2, err := parseStatePayload(re)
		if err != nil {
			t.Fatalf("canonical state payload failed to parse: %v", err)
		}
		re2 := appendStatePayload(nil, st2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("state fixpoint mismatch:\n got %x\nwant %x", re2, re)
		}
	})
}
