package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w
}

func TestFreshDirHasNoState(t *testing.T) {
	w := openT(t, t.TempDir(), Options{Sync: SyncOff})
	if w.State() != nil {
		t.Fatalf("fresh WAL recovered state %+v, want nil", w.State())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncAlways})
	w.Promise(7)
	w.Ballot(7)
	w.Accept(0, 7, "a")
	w.Accept(1, 7, "b")
	w.Decide(0, "a")
	w.Promise(12) // later promise overrides
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openT(t, dir, Options{Sync: SyncAlways})
	defer w2.Close()
	st := w2.State()
	if st == nil {
		t.Fatal("no state recovered")
	}
	if st.Promised != 12 || st.Ballot != 7 {
		t.Fatalf("promised=%d ballot=%d, want 12/7", st.Promised, st.Ballot)
	}
	wantDec := []DecidedRec{{Inst: 0, V: "a"}}
	if !reflect.DeepEqual(st.Decided, wantDec) {
		t.Fatalf("decided = %+v, want %+v", st.Decided, wantDec)
	}
	// Instance 0 decided, so only instance 1's vote survives as accepted.
	wantAcc := []AcceptedRec{{Inst: 1, B: 7, V: "b"}}
	if !reflect.DeepEqual(st.Accepted, wantAcc) {
		t.Fatalf("accepted = %+v, want %+v", st.Accepted, wantAcc)
	}
}

func TestAcceptImpliesPromise(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff})
	w.Accept(3, 9, "v")
	w.Close()
	w2 := openT(t, dir, Options{Sync: SyncOff})
	defer w2.Close()
	if got := w2.State().Promised; got != 9 {
		t.Fatalf("promised after accept-only log = %d, want 9", got)
	}
}

func TestRecoveryIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff, SegmentBytes: 128})
	for i := 0; i < 200; i++ {
		w.Accept(uint64(i), 5, strings.Repeat("x", i%17))
		w.Decide(uint64(i), strings.Repeat("x", i%17))
	}
	w.Close()
	a := openT(t, dir, Options{Sync: SyncOff})
	stA := a.State()
	a.Close()
	b := openT(t, dir, Options{Sync: SyncOff})
	stB := b.State()
	b.Close()
	if !reflect.DeepEqual(stA, stB) {
		t.Fatal("two recoveries of the same directory disagree")
	}
	if len(stA.Decided) != 200 {
		t.Fatalf("recovered %d decided entries, want 200", len(stA.Decided))
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff})
	w.Decide(0, "keep")
	w.Decide(1, "keep2")
	w.Close()

	// Simulate a crash mid-append: a whole record plus a few bytes of
	// the next frame.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := appendFrame(nil, appendRecordPayload(nil, record{typ: recDecide, inst: 2, v: "lost"}))
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2 := openT(t, dir, Options{Sync: SyncOff})
	st := w2.State()
	if len(st.Decided) != 2 {
		t.Fatalf("recovered %d decided entries after torn tail, want 2", len(st.Decided))
	}
	// The tail was physically truncated, so appending and re-reading works.
	w2.Decide(2, "retry")
	w2.Close()
	w3 := openT(t, dir, Options{Sync: SyncOff})
	defer w3.Close()
	if got := len(w3.State().Decided); got != 3 {
		t.Fatalf("after truncate+append recovered %d decided, want 3", got)
	}
}

func TestCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff, SegmentBytes: 64})
	for i := 0; i < 50; i++ {
		w.Decide(uint64(i), "0123456789abcdef")
	}
	w.Close()
	// Flip a byte in the first (non-newest) segment.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncOff}); err == nil {
		t.Fatal("Open succeeded on a corrupt non-newest segment, want error")
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff})
	for i := 0; i < 10; i++ {
		w.Decide(uint64(i), "v")
	}
	err := w.Snapshot(&State{
		Promised:  4,
		Ballot:    4,
		SnapIndex: 10,
		SnapCount: 10,
		App:       []byte("app-bytes"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail.
	w.Decide(10, "tail")
	w.Accept(11, 6, "open")
	w.Close()

	// Compaction removed the pre-snapshot segment.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("pre-snapshot segment survived compaction: %v", err)
	}

	w2 := openT(t, dir, Options{Sync: SyncOff})
	defer w2.Close()
	st := w2.State()
	if st.SnapIndex != 10 || st.SnapCount != 10 || string(st.App) != "app-bytes" {
		t.Fatalf("snapshot fields lost: %+v", st)
	}
	if st.Promised != 6 { // raised by the post-snapshot accept
		t.Fatalf("promised = %d, want 6", st.Promised)
	}
	wantDec := []DecidedRec{{Inst: 10, V: "tail"}}
	if !reflect.DeepEqual(st.Decided, wantDec) {
		t.Fatalf("decided = %+v, want %+v", st.Decided, wantDec)
	}
	wantAcc := []AcceptedRec{{Inst: 11, B: 6, V: "open"}}
	if !reflect.DeepEqual(st.Accepted, wantAcc) {
		t.Fatalf("accepted = %+v, want %+v", st.Accepted, wantAcc)
	}
}

func TestSnapshotAbsorbsRecordsBelowIndex(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{Sync: SyncOff})
	if err := w.Snapshot(&State{SnapIndex: 5, SnapCount: 5}); err != nil {
		t.Fatal(err)
	}
	// A straggler record below the snapshot index must not resurface.
	w.Decide(3, "stale")
	w.Accept(2, 9, "stale")
	w.Close()
	w2 := openT(t, dir, Options{Sync: SyncOff})
	defer w2.Close()
	st := w2.State()
	if len(st.Decided) != 0 || len(st.Accepted) != 0 {
		t.Fatalf("records below SnapIndex resurfaced: %+v", st)
	}
}

func TestGroupCommitAndRotationSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	var fsyncs, appendBytes int
	w := openT(t, dir, Options{
		Sync:         SyncGroup,
		GroupBytes:   64,
		SegmentBytes: 256,
		OnFsync:      func(time.Duration) { fsyncs++ },
		OnAppend:     func(n int) { appendBytes += n },
	})
	for i := 0; i < 100; i++ {
		w.Decide(uint64(i), "0123456789abcdef")
	}
	w.Close()
	if fsyncs == 0 {
		t.Fatal("group commit never fsynced")
	}
	if appendBytes == 0 {
		t.Fatal("OnAppend never observed a record")
	}
	var recovered time.Duration
	w2, err := Open(dir, Options{Sync: SyncOff, OnRecover: func(d time.Duration) { recovered = d }})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(w2.State().Decided); got != 100 {
		t.Fatalf("recovered %d decided entries across rotated segments, want 100", got)
	}
	if recovered <= 0 {
		t.Fatal("OnRecover never fired")
	}
}
