package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// WAL record framing, mirroring the wire package's varint conventions:
//
//	frame   = uvarint(len(payload)) | crc32c(payload) LE32 | payload
//	payload = type byte | varint fields
//
// Record payloads by type:
//
//	promise = 0x01 | b
//	ballot  = 0x02 | b
//	accept  = 0x03 | inst | b | uvarint(len(v)) | v
//	decide  = 0x04 | inst | uvarint(len(v)) | v
//
// A frame is strict: the length prefix is a canonical uvarint, the CRC
// covers the whole payload, and the payload must be consumed exactly.
// Anything else is ErrCorrupt; a frame that runs off the end of the
// buffer is errTorn (the open path truncates it when — and only when —
// it sits at the tail of the newest segment).

const (
	recPromise byte = 0x01
	recBallot  byte = 0x02
	recAccept  byte = 0x03
	recDecide  byte = 0x04
)

// maxRecord bounds a single record so a corrupted length prefix cannot
// drive a giant allocation. Batch envelopes are the largest legitimate
// payload and stay far below this.
const maxRecord = 1 << 26

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a structurally invalid record: bad checksum,
// zero-length or oversized payload, unknown type, or trailing garbage.
var ErrCorrupt = errors.New("durable: corrupt record")

// errTorn reports a record that is cut off by the end of the buffer —
// the shape a crash mid-append leaves behind.
var errTorn = errors.New("durable: torn record")

type record struct {
	typ  byte
	inst uint64
	b    uint64
	v    string
}

// appendFrame frames payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// nextFrame splits one framed payload off b. io.EOF means a clean end,
// errTorn a truncated frame, ErrCorrupt an invalid one.
func nextFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) == 0 {
		return nil, nil, io.EOF
	}
	n, k := binary.Uvarint(b)
	if k < 0 {
		return nil, nil, ErrCorrupt // uvarint overflow
	}
	if k == 0 {
		return nil, nil, errTorn // length prefix itself is cut off
	}
	if n == 0 || n > maxRecord {
		return nil, nil, ErrCorrupt
	}
	b = b[k:]
	if len(b) < 4 {
		return nil, nil, errTorn
	}
	want := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < n {
		return nil, nil, errTorn
	}
	payload, rest = b[:n], b[n:]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, nil, ErrCorrupt
	}
	return payload, rest, nil
}

func appendRecordPayload(dst []byte, rec record) []byte {
	dst = append(dst, rec.typ)
	switch rec.typ {
	case recPromise, recBallot:
		dst = binary.AppendUvarint(dst, rec.b)
	case recAccept:
		dst = binary.AppendUvarint(dst, rec.inst)
		dst = binary.AppendUvarint(dst, rec.b)
		dst = binary.AppendUvarint(dst, uint64(len(rec.v)))
		dst = append(dst, rec.v...)
	case recDecide:
		dst = binary.AppendUvarint(dst, rec.inst)
		dst = binary.AppendUvarint(dst, uint64(len(rec.v)))
		dst = append(dst, rec.v...)
	}
	return dst
}

// parseRecordPayload decodes a record payload strictly: every byte must
// be consumed and every length must be in bounds.
func parseRecordPayload(p []byte) (record, error) {
	var rec record
	if len(p) == 0 {
		return rec, ErrCorrupt
	}
	rec.typ = p[0]
	c := cursor{b: p[1:]}
	switch rec.typ {
	case recPromise, recBallot:
		rec.b = c.uvarint()
	case recAccept:
		rec.inst = c.uvarint()
		rec.b = c.uvarint()
		rec.v = c.str()
	case recDecide:
		rec.inst = c.uvarint()
		rec.v = c.str()
	default:
		return rec, ErrCorrupt
	}
	if c.bad || len(c.b) != 0 {
		return rec, ErrCorrupt
	}
	return rec, nil
}

// cursor walks a payload, latching the first decode failure.
type cursor struct {
	b   []byte
	bad bool
}

func (c *cursor) uvarint() uint64 {
	n, k := binary.Uvarint(c.b)
	if k <= 0 {
		c.bad = true
		return 0
	}
	c.b = c.b[k:]
	return n
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.bad || n > uint64(len(c.b)) {
		c.bad = true
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}
