package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestSeriesPartitionsTheLog is a property test: for any send log, the
// bucketed series partitions it — bucket counts sum to the total number of
// sends within the horizon, and per-sender series sum to SentBy.
func TestSeriesPartitionsTheLog(t *testing.T) {
	property := func(offsetsMs []uint16, senders []uint8) bool {
		const n = 4
		s := NewMessageStats(n)
		limit := len(offsetsMs)
		if len(senders) < limit {
			limit = len(senders)
		}
		// Sends must be appended in non-decreasing time order (the
		// simulator guarantees this); sort by accumulating offsets.
		at := sim.TimeZero
		total := 0
		for i := 0; i < limit; i++ {
			at = at.Add(time.Duration(offsetsMs[i]%50) * time.Millisecond)
			from := int(senders[i]) % n
			to := (from + 1) % n
			s.RecordSend(at, from, to, "X")
			total++
		}
		horizon := at.Add(time.Millisecond)
		series := s.Series(10*time.Millisecond, horizon)
		var sum uint64
		for _, c := range series {
			sum += c
		}
		if sum != uint64(total) {
			return false
		}
		perSender := s.SeriesBySender(10*time.Millisecond, horizon)
		for id := 0; id < n; id++ {
			var got uint64
			for _, c := range perSender[id] {
				got += c
			}
			if got != s.SentBy(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowAdditivity: message counts over adjacent windows add up.
func TestWindowAdditivity(t *testing.T) {
	property := func(offsetsMs []uint16, splitMs uint16) bool {
		s := NewMessageStats(2)
		at := sim.TimeZero
		for _, off := range offsetsMs {
			at = at.Add(time.Duration(off%50) * time.Millisecond)
			s.RecordSend(at, 0, 1, "X")
		}
		end := at.Add(time.Millisecond)
		mid := sim.At(time.Duration(splitMs) * time.Millisecond)
		if mid > end {
			mid = end
		}
		left := s.MessagesInWindow(0, mid)
		right := s.MessagesInWindow(mid, end)
		return left+right == s.MessagesInWindow(0, end)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
