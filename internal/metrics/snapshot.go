package metrics

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Snapshot is an immutable view of a MessageStats at one instant: counter
// values plus the retained send-log window, copied out per sender. All
// checker and experiment queries run against snapshots, so a live cluster
// can keep recording while a verdict is computed.
//
// Records within one sender's slice are in non-decreasing time order (each
// process's clock is monotonic and each process has a single sending
// goroutine in every runtime). Queries that reach back past the retained
// window see only the retained records; the counters are always exact.
type Snapshot struct {
	n       int
	perFrom [][]SendRecord // indexed by sender, oldest first
	lastAt  []sim.Time     // max send time per sender, survives eviction

	sentBy        []uint64
	link          []uint64 // n*n flattened [from*n+to]
	delivered     uint64
	dropped       uint64
	kindSent      []uint64 // indexed by obs.Kind
	kindDelivered []uint64
	kindDropped   []uint64
	kinds         []obs.Kind // run-local first-seen order
}

// Snapshot captures the current counters and retained send log.
func (s *MessageStats) Snapshot() *Snapshot {
	nk := obs.NumKinds()
	snap := &Snapshot{
		n:             s.n,
		perFrom:       make([][]SendRecord, s.n),
		lastAt:        make([]sim.Time, s.n),
		sentBy:        make([]uint64, s.n),
		link:          make([]uint64, s.n*s.n),
		kindSent:      make([]uint64, nk),
		kindDelivered: make([]uint64, nk),
		kindDropped:   make([]uint64, nk),
	}
	for from, sh := range s.shards {
		snap.perFrom[from] = sh.records()
		sh.mu.Lock()
		snap.lastAt[from] = sh.lastAt
		sh.mu.Unlock()
		snap.sentBy[from] = sh.sentBy.Load()
		snap.delivered += sh.delivered.Load()
		snap.dropped += sh.dropped.Load()
		for to := range sh.link {
			snap.link[from*s.n+to] = sh.link[to].Load()
		}
		for k := 0; k < nk; k++ {
			snap.kindSent[k] += sh.kindSent[k].Load()
			snap.kindDelivered[k] += sh.kindDelivered[k].Load()
			snap.kindDropped[k] += sh.kindDropped[k].Load()
		}
	}
	s.obsMu.Lock()
	snap.kinds = append([]obs.Kind(nil), s.observed...)
	s.obsMu.Unlock()
	return snap
}

// N returns the number of processes.
func (sn *Snapshot) N() int { return sn.n }

// TotalSent returns the total number of messages sent.
func (sn *Snapshot) TotalSent() uint64 {
	var total uint64
	for _, c := range sn.sentBy {
		total += c
	}
	return total
}

// Delivered returns the total number of messages delivered.
func (sn *Snapshot) Delivered() uint64 { return sn.delivered }

// Dropped returns the total number of messages lost in transit.
func (sn *Snapshot) Dropped() uint64 { return sn.dropped }

// SentBy returns how many messages process id has sent.
func (sn *Snapshot) SentBy(id int) uint64 { return sn.sentBy[id] }

// LinkCount returns how many messages were sent on the from→to link.
func (sn *Snapshot) LinkCount(from, to int) uint64 { return sn.link[from*sn.n+to] }

func (sn *Snapshot) kindCount(counts []uint64, kind string) uint64 {
	id, ok := obs.Lookup(kind)
	if !ok || int(id) >= len(counts) {
		return 0
	}
	return counts[id]
}

// KindCount returns how many messages of the given kind were sent.
func (sn *Snapshot) KindCount(kind string) uint64 { return sn.kindCount(sn.kindSent, kind) }

// DeliveredByKind returns how many messages of the given kind were
// delivered.
func (sn *Snapshot) DeliveredByKind(kind string) uint64 {
	return sn.kindCount(sn.kindDelivered, kind)
}

// DroppedByKind returns how many messages of the given kind were lost.
func (sn *Snapshot) DroppedByKind(kind string) uint64 { return sn.kindCount(sn.kindDropped, kind) }

// Kinds returns the observed sent-message kinds in first-seen order.
func (sn *Snapshot) Kinds() []string {
	out := make([]string, len(sn.kinds))
	for i, id := range sn.kinds {
		out[i] = obs.KindName(id)
	}
	return out
}

// search returns the index of the first record in recs at or after t.
func search(recs []SendRecord, t sim.Time) int {
	return sort.Search(len(recs), func(i int) bool { return recs[i].At >= t })
}

// SendersSince returns the sorted set of processes that sent at least one
// message at or after t.
func (sn *Snapshot) SendersSince(t sim.Time) []int {
	var out []int
	for from := range sn.perFrom {
		if sn.sentBy[from] > 0 && sn.lastAt[from] >= t {
			out = append(out, from)
		}
	}
	return out
}

// LinksUsedSince returns how many distinct directed links carried at least
// one message at or after t.
func (sn *Snapshot) LinksUsedSince(t sim.Time) int {
	used := 0
	seen := make([]bool, sn.n)
	for _, recs := range sn.perFrom {
		for i := range seen {
			seen[i] = false
		}
		for _, rec := range recs[search(recs, t):] {
			if !seen[rec.To] {
				seen[rec.To] = true
				used++
			}
		}
	}
	return used
}

// MessagesInWindow counts retained records sent in the half-open window
// [from, to).
func (sn *Snapshot) MessagesInWindow(from, to sim.Time) uint64 {
	var total uint64
	for _, recs := range sn.perFrom {
		total += uint64(search(recs, to) - search(recs, from))
	}
	return total
}

// QuietSince returns the earliest instant q such that every message sent
// at or after q was sent by the given process. If nobody else ever sent,
// that instant is 0. Exact even after window eviction: each sender's
// latest send time is retained unconditionally.
func (sn *Snapshot) QuietSince(process int) sim.Time {
	var quiet sim.Time
	for from := range sn.perFrom {
		if from == process || sn.sentBy[from] == 0 {
			continue
		}
		if t := sn.lastAt[from] + 1; t > quiet {
			quiet = t
		}
	}
	return quiet
}

// LastSendBy returns the time of the last message sent by id, and whether
// id sent anything at all.
func (sn *Snapshot) LastSendBy(id int) (sim.Time, bool) {
	if sn.sentBy[id] == 0 {
		return 0, false
	}
	return sn.lastAt[id], true
}

// Series buckets the retained send log into fixed windows of width bucket,
// from time zero to horizon, and returns the per-bucket message counts.
func (sn *Snapshot) Series(bucket time.Duration, horizon sim.Time) []uint64 {
	if bucket <= 0 {
		panic("metrics: Series with non-positive bucket")
	}
	nb := int(int64(horizon)/bucket.Nanoseconds()) + 1
	out := make([]uint64, nb)
	for _, recs := range sn.perFrom {
		for _, rec := range recs {
			if rec.At > horizon {
				break
			}
			out[int64(rec.At)/bucket.Nanoseconds()]++
		}
	}
	return out
}

// SeriesBySender buckets the retained send log per sender.
func (sn *Snapshot) SeriesBySender(bucket time.Duration, horizon sim.Time) [][]uint64 {
	if bucket <= 0 {
		panic("metrics: SeriesBySender with non-positive bucket")
	}
	nb := int(int64(horizon)/bucket.Nanoseconds()) + 1
	out := make([][]uint64, sn.n)
	for from, recs := range sn.perFrom {
		out[from] = make([]uint64, nb)
		for _, rec := range recs {
			if rec.At > horizon {
				break
			}
			out[from][int64(rec.At)/bucket.Nanoseconds()]++
		}
	}
	return out
}

// Summary returns a one-line human-readable digest.
func (sn *Snapshot) Summary() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d kinds=%d",
		sn.TotalSent(), sn.delivered, sn.dropped, len(sn.kinds))
}
