// Package metrics collects message-level accounting for simulation runs.
//
// The reproduced paper's headline property is about message counts: a
// communication-efficient Omega implementation eventually has exactly one
// sender and uses exactly n-1 links forever. This package records every
// send/delivery/drop with its virtual timestamp so that the property
// checkers (internal/check) and the experiment harness
// (internal/experiments) can compute "who sent after time t", "how many
// messages per period", and "how many links carried traffic after t".
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// SendRecord is one recorded message transmission.
type SendRecord struct {
	At   sim.Time
	From int32
	To   int32
	Kind uint16
}

// MessageStats accumulates per-run message accounting. It is safe for
// concurrent use so that the same type serves both the single-threaded
// simulator and the live goroutine transports.
type MessageStats struct {
	mu sync.Mutex

	n         int
	sends     []SendRecord
	sentBy    []uint64
	link      []uint64 // n*n flattened [from*n+to]
	delivered uint64
	dropped   uint64

	kindIDs    map[string]uint16
	kindNames  []string
	kindCounts []uint64
}

// NewMessageStats returns stats for a system of n processes.
func NewMessageStats(n int) *MessageStats {
	return &MessageStats{
		n:       n,
		sentBy:  make([]uint64, n),
		link:    make([]uint64, n*n),
		kindIDs: make(map[string]uint16),
	}
}

// N returns the number of processes the stats were created for.
func (s *MessageStats) N() int { return s.n }

func (s *MessageStats) kindID(kind string) uint16 {
	id, ok := s.kindIDs[kind]
	if !ok {
		id = uint16(len(s.kindNames))
		s.kindIDs[kind] = id
		s.kindNames = append(s.kindNames, kind)
		s.kindCounts = append(s.kindCounts, 0)
	}
	return id
}

// RecordSend notes that from sent a message of the given kind to to at t.
func (s *MessageStats) RecordSend(t sim.Time, from, to int, kind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.kindID(kind)
	s.sends = append(s.sends, SendRecord{At: t, From: int32(from), To: int32(to), Kind: id})
	s.sentBy[from]++
	s.link[from*s.n+to]++
	s.kindCounts[id]++
}

// RecordDeliver notes a successful delivery.
func (s *MessageStats) RecordDeliver(t sim.Time, from, to int, kind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delivered++
}

// RecordDrop notes a message lost by its link.
func (s *MessageStats) RecordDrop(t sim.Time, from, to int, kind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropped++
}

// TotalSent returns the total number of messages sent.
func (s *MessageStats) TotalSent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.sends))
}

// Delivered returns the total number of messages delivered.
func (s *MessageStats) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Dropped returns the total number of messages lost in transit.
func (s *MessageStats) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SentBy returns how many messages process id has sent.
func (s *MessageStats) SentBy(id int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentBy[id]
}

// LinkCount returns how many messages were sent on the from→to link.
func (s *MessageStats) LinkCount(from, to int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.link[from*s.n+to]
}

// KindCount returns how many messages of the given kind were sent.
func (s *MessageStats) KindCount(kind string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.kindIDs[kind]
	if !ok {
		return 0
	}
	return s.kindCounts[id]
}

// Kinds returns the observed message kinds in first-seen order.
func (s *MessageStats) Kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.kindNames))
	copy(out, s.kindNames)
	return out
}

// SendersSince returns the sorted set of processes that sent at least one
// message at or after t.
func (s *MessageStats) SendersSince(t sim.Time) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int32]bool)
	for i := len(s.sends) - 1; i >= 0; i-- {
		rec := s.sends[i]
		if rec.At < t {
			break // records are appended in non-decreasing time order
		}
		seen[rec.From] = true
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// LinksUsedSince returns how many distinct directed links carried at least
// one message at or after t.
func (s *MessageStats) LinksUsedSince(t sim.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[int64]bool)
	for i := len(s.sends) - 1; i >= 0; i-- {
		rec := s.sends[i]
		if rec.At < t {
			break
		}
		seen[int64(rec.From)<<32|int64(rec.To)] = true
	}
	return len(seen)
}

// MessagesInWindow counts messages sent in the half-open window [from, to).
func (s *MessageStats) MessagesInWindow(from, to sim.Time) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo := s.searchLocked(from)
	hi := s.searchLocked(to)
	return uint64(hi - lo)
}

// searchLocked returns the index of the first send at or after t.
func (s *MessageStats) searchLocked(t sim.Time) int {
	return sort.Search(len(s.sends), func(i int) bool { return s.sends[i].At >= t })
}

// QuietSince returns the earliest instant q such that every message sent at
// or after q was sent by the given process. If nobody else ever sent, that
// instant is 0.
//
// This is the machine check for Definition "communication-efficient": pick
// the leader as the process and QuietSince is the stabilization point after
// which only the leader sends.
func (s *MessageStats) QuietSince(process int) sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.sends) - 1; i >= 0; i-- {
		rec := s.sends[i]
		if int(rec.From) != process {
			// The latest foreign send bounds quiescence from below.
			return rec.At + 1
		}
	}
	return 0
}

// LastSendBy returns the time of the last message sent by id, and whether
// id sent anything at all.
func (s *MessageStats) LastSendBy(id int) (sim.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.sends) - 1; i >= 0; i-- {
		if int(s.sends[i].From) == id {
			return s.sends[i].At, true
		}
	}
	return 0, false
}

// Series buckets the send log into fixed windows of width bucket, from time
// zero to horizon, and returns the per-bucket message counts.
func (s *MessageStats) Series(bucket time.Duration, horizon sim.Time) []uint64 {
	if bucket <= 0 {
		panic("metrics: Series with non-positive bucket")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nb := int(int64(horizon)/bucket.Nanoseconds()) + 1
	out := make([]uint64, nb)
	for _, rec := range s.sends {
		if rec.At > horizon {
			break
		}
		out[int64(rec.At)/bucket.Nanoseconds()]++
	}
	return out
}

// SeriesBySender buckets the send log per sender.
func (s *MessageStats) SeriesBySender(bucket time.Duration, horizon sim.Time) [][]uint64 {
	if bucket <= 0 {
		panic("metrics: SeriesBySender with non-positive bucket")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nb := int(int64(horizon)/bucket.Nanoseconds()) + 1
	out := make([][]uint64, s.n)
	for i := range out {
		out[i] = make([]uint64, nb)
	}
	for _, rec := range s.sends {
		if rec.At > horizon {
			break
		}
		out[rec.From][int64(rec.At)/bucket.Nanoseconds()]++
	}
	return out
}

// Summary returns a one-line human-readable digest.
func (s *MessageStats) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d kinds=%d",
		len(s.sends), s.delivered, s.dropped, len(s.kindNames))
}
