// Package metrics collects message-level accounting for simulation runs
// and live clusters.
//
// The reproduced paper's headline property is about message counts: a
// communication-efficient Omega implementation eventually has exactly one
// sender and uses exactly n-1 links forever. This package records every
// send/delivery/drop with its virtual timestamp so that the property
// checkers (internal/check) and the experiment harness
// (internal/experiments) can compute "who sent after time t", "how many
// messages per period", and "how many links carried traffic after t".
//
// MessageStats is an obs.Sink. The record path is contention-free: all
// counters are per-process sharded atomics, and the send log is a bounded
// ring per sender guarded only by that sender's own mutex (a single writer
// in every runtime, so the lock is uncontended). Queries over the send log
// go through an immutable Snapshot.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// SendRecord is one recorded message transmission.
type SendRecord struct {
	At   sim.Time
	From int32
	To   int32
	Kind obs.Kind
}

// DefaultWindow is the default per-sender send-log bound. It is generous —
// far beyond what any experiment in the suite produces per sender — so
// that by default the log behaves as unbounded while still giving long
// live runs a hard memory ceiling. See DESIGN.md ("Instrumentation
// pipeline") for sizing guidance.
const DefaultWindow = 1 << 20

// shard holds one process's slice of the accounting: counters it bumps as
// a sender (sends, out-links, drops) or as a receiver (deliveries), plus
// the bounded ring of its own send records. Shards are separately
// heap-allocated so different processes never share cache lines.
type shard struct {
	sentBy    atomic.Uint64
	delivered atomic.Uint64 // messages received by this process
	dropped   atomic.Uint64 // messages lost on this process's out-links
	bytesOut  atomic.Uint64 // wire bytes handed to this process's out-links

	link          []atomic.Uint64 // out-link counts, indexed by destination
	kindSent      [obs.MaxKinds]atomic.Uint64
	kindDelivered [obs.MaxKinds]atomic.Uint64
	kindDropped   [obs.MaxKinds]atomic.Uint64
	kindBytes     [obs.MaxKinds]atomic.Uint64

	// The send ring: oldest record at head, newest at (head+count-1) mod
	// len(ring). ring grows by doubling until window, then wraps, evicting
	// the oldest record. lastAt is the max timestamp ever recorded, which
	// survives eviction (QuietSince and SendersSince need the most recent
	// send even after the ring wraps).
	mu     sync.Mutex
	ring   []SendRecord
	head   int
	count  int
	window int
	lastAt sim.Time
}

func (sh *shard) appendRecord(rec SendRecord) {
	sh.mu.Lock()
	if sh.count == len(sh.ring) {
		if sh.count < sh.window {
			sh.grow()
		} else {
			// Full: evict the oldest in place.
			sh.ring[sh.head] = rec
			sh.head = (sh.head + 1) % len(sh.ring)
			if rec.At > sh.lastAt {
				sh.lastAt = rec.At
			}
			sh.mu.Unlock()
			return
		}
	}
	sh.ring[(sh.head+sh.count)%len(sh.ring)] = rec
	sh.count++
	if rec.At > sh.lastAt {
		sh.lastAt = rec.At
	}
	sh.mu.Unlock()
}

// grow doubles the ring (unwrapping it) up to the window bound.
func (sh *shard) grow() {
	newCap := 2 * len(sh.ring)
	if newCap == 0 {
		newCap = 64
	}
	if newCap > sh.window {
		newCap = sh.window
	}
	next := make([]SendRecord, newCap)
	for i := 0; i < sh.count; i++ {
		next[i] = sh.ring[(sh.head+i)%len(sh.ring)]
	}
	sh.ring = next
	sh.head = 0
}

// records returns the shard's retained records oldest-first.
func (sh *shard) records() []SendRecord {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]SendRecord, sh.count)
	for i := 0; i < sh.count; i++ {
		out[i] = sh.ring[(sh.head+i)%len(sh.ring)]
	}
	return out
}

// MessageStats accumulates per-run message accounting. It is safe for
// concurrent use — the same type serves the single-threaded simulator and
// the live goroutine transports — and its record path takes no global
// lock.
type MessageStats struct {
	n      int
	window int
	shards []*shard

	// observed is the run-local first-seen order of sent kinds; seen gates
	// the slow path so steady-state sends pay one atomic load.
	obsMu    sync.Mutex
	seen     [obs.MaxKinds]atomic.Bool
	observed []obs.Kind
}

var _ obs.Sink = (*MessageStats)(nil)

// NewMessageStats returns stats for a system of n processes with the
// default send-log window.
func NewMessageStats(n int) *MessageStats {
	return NewMessageStatsWindow(n, DefaultWindow)
}

// NewMessageStatsWindow returns stats whose send log retains at most
// window records per sender; older records are evicted, counters are
// never lost. window <= 0 means DefaultWindow.
func NewMessageStatsWindow(n, window int) *MessageStats {
	if window <= 0 {
		window = DefaultWindow
	}
	s := &MessageStats{n: n, window: window, shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{link: make([]atomic.Uint64, n), window: window}
	}
	return s
}

// N returns the number of processes the stats were created for.
func (s *MessageStats) N() int { return s.n }

// Window returns the per-sender send-log bound.
func (s *MessageStats) Window() int { return s.window }

func (s *MessageStats) noteKind(kind obs.Kind) {
	if s.seen[kind].Load() {
		return
	}
	s.obsMu.Lock()
	if !s.seen[kind].Load() {
		s.observed = append(s.observed, kind)
		s.seen[kind].Store(true)
	}
	s.obsMu.Unlock()
}

// OnSend implements obs.Sink: from sent a message of the given kind to to
// at t.
func (s *MessageStats) OnSend(t sim.Time, from, to int, kind obs.Kind) {
	sh := s.shards[from]
	sh.sentBy.Add(1)
	sh.link[to].Add(1)
	sh.kindSent[kind].Add(1)
	s.noteKind(kind)
	sh.appendRecord(SendRecord{At: t, From: int32(from), To: int32(to), Kind: kind})
}

// OnDeliver implements obs.Sink: a message of the given kind reached to.
func (s *MessageStats) OnDeliver(t sim.Time, from, to int, kind obs.Kind) {
	sh := s.shards[to]
	sh.delivered.Add(1)
	sh.kindDelivered[kind].Add(1)
}

// OnDrop implements obs.Sink: the from→to link lost a message.
func (s *MessageStats) OnDrop(t sim.Time, from, to int, kind obs.Kind) {
	sh := s.shards[from]
	sh.dropped.Add(1)
	sh.kindDropped[kind].Add(1)
}

// OnWireBytes implements obs.ByteSink: the from→to link was handed n
// encoded bytes for one message of the given kind. Only the serializing
// transports report it; simulator runs carry no wire bytes.
func (s *MessageStats) OnWireBytes(t sim.Time, from, to int, kind obs.Kind, n int) {
	sh := s.shards[from]
	sh.bytesOut.Add(uint64(n))
	sh.kindBytes[kind].Add(uint64(n))
}

// RecordSend notes that from sent a message of the given kind to to at t.
// It interns the kind name; hot paths should pre-intern and call OnSend.
func (s *MessageStats) RecordSend(t sim.Time, from, to int, kind string) {
	s.OnSend(t, from, to, obs.Intern(kind))
}

// RecordDeliver notes a successful delivery.
func (s *MessageStats) RecordDeliver(t sim.Time, from, to int, kind string) {
	s.OnDeliver(t, from, to, obs.Intern(kind))
}

// RecordDrop notes a message lost by its link.
func (s *MessageStats) RecordDrop(t sim.Time, from, to int, kind string) {
	s.OnDrop(t, from, to, obs.Intern(kind))
}

// --- counter queries (exact, never windowed) -----------------------------

// TotalSent returns the total number of messages sent.
func (s *MessageStats) TotalSent() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.sentBy.Load()
	}
	return total
}

// Delivered returns the total number of messages delivered.
func (s *MessageStats) Delivered() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.delivered.Load()
	}
	return total
}

// Dropped returns the total number of messages lost in transit.
func (s *MessageStats) Dropped() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.dropped.Load()
	}
	return total
}

// SentBy returns how many messages process id has sent.
func (s *MessageStats) SentBy(id int) uint64 { return s.shards[id].sentBy.Load() }

// SentByKind returns how many messages of the given kind process id has
// sent. Zero for kinds never interned.
func (s *MessageStats) SentByKind(id int, kind string) uint64 {
	k, ok := obs.Lookup(kind)
	if !ok {
		return 0
	}
	return s.shards[id].kindSent[k].Load()
}

// WireBytes returns the total encoded bytes handed to the links. Zero on
// runs whose transport never serializes (the simulator).
func (s *MessageStats) WireBytes() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.bytesOut.Load()
	}
	return total
}

// WireBytesBy returns the encoded bytes process id handed to its
// out-links.
func (s *MessageStats) WireBytesBy(id int) uint64 { return s.shards[id].bytesOut.Load() }

// WireBytesByKind returns the encoded bytes sent for the given kind.
func (s *MessageStats) WireBytesByKind(kind string) uint64 {
	id, ok := obs.Lookup(kind)
	if !ok {
		return 0
	}
	return s.sumKind(func(sh *shard) *atomic.Uint64 { return &sh.kindBytes[id] })
}

// LinkCount returns how many messages were sent on the from→to link.
func (s *MessageStats) LinkCount(from, to int) uint64 { return s.shards[from].link[to].Load() }

func (s *MessageStats) sumKind(counter func(*shard) *atomic.Uint64) uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += counter(sh).Load()
	}
	return total
}

// KindCount returns how many messages of the given kind were sent.
func (s *MessageStats) KindCount(kind string) uint64 {
	id, ok := obs.Lookup(kind)
	if !ok {
		return 0
	}
	return s.sumKind(func(sh *shard) *atomic.Uint64 { return &sh.kindSent[id] })
}

// DeliveredByKind returns how many messages of the given kind were
// delivered.
func (s *MessageStats) DeliveredByKind(kind string) uint64 {
	id, ok := obs.Lookup(kind)
	if !ok {
		return 0
	}
	return s.sumKind(func(sh *shard) *atomic.Uint64 { return &sh.kindDelivered[id] })
}

// DroppedByKind returns how many messages of the given kind were lost.
func (s *MessageStats) DroppedByKind(kind string) uint64 {
	id, ok := obs.Lookup(kind)
	if !ok {
		return 0
	}
	return s.sumKind(func(sh *shard) *atomic.Uint64 { return &sh.kindDropped[id] })
}

// Kinds returns the observed sent-message kinds in first-seen order.
func (s *MessageStats) Kinds() []string {
	s.obsMu.Lock()
	ids := make([]obs.Kind, len(s.observed))
	copy(ids, s.observed)
	s.obsMu.Unlock()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = obs.KindName(id)
	}
	return out
}

// Summary returns a one-line human-readable digest.
func (s *MessageStats) Summary() string {
	s.obsMu.Lock()
	kinds := len(s.observed)
	s.obsMu.Unlock()
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d kinds=%d",
		s.TotalSent(), s.Delivered(), s.Dropped(), kinds)
}

// --- send-log queries (windowed, via Snapshot) ---------------------------

// SendersSince returns the sorted set of processes that sent at least one
// message at or after t.
func (s *MessageStats) SendersSince(t sim.Time) []int { return s.Snapshot().SendersSince(t) }

// LinksUsedSince returns how many distinct directed links carried at least
// one message at or after t.
func (s *MessageStats) LinksUsedSince(t sim.Time) int { return s.Snapshot().LinksUsedSince(t) }

// MessagesInWindow counts messages sent in the half-open window [from, to).
func (s *MessageStats) MessagesInWindow(from, to sim.Time) uint64 {
	return s.Snapshot().MessagesInWindow(from, to)
}

// QuietSince returns the earliest instant q such that every message sent
// at or after q was sent by the given process. If nobody else ever sent,
// that instant is 0.
//
// This is the machine check for Definition "communication-efficient": pick
// the leader as the process and QuietSince is the stabilization point
// after which only the leader sends.
func (s *MessageStats) QuietSince(process int) sim.Time { return s.Snapshot().QuietSince(process) }

// LastSendBy returns the time of the last message sent by id, and whether
// id sent anything at all.
func (s *MessageStats) LastSendBy(id int) (sim.Time, bool) { return s.Snapshot().LastSendBy(id) }

// Series buckets the send log into fixed windows of width bucket, from
// time zero to horizon, and returns the per-bucket message counts.
func (s *MessageStats) Series(bucket time.Duration, horizon sim.Time) []uint64 {
	return s.Snapshot().Series(bucket, horizon)
}

// SeriesBySender buckets the send log per sender.
func (s *MessageStats) SeriesBySender(bucket time.Duration, horizon sim.Time) [][]uint64 {
	return s.Snapshot().SeriesBySender(bucket, horizon)
}
