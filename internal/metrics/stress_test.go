package metrics

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestConcurrentRecordingMatchesSequential drives the sink from one
// goroutine per process — the live-transport shape — with a deterministic
// per-process schedule, then checks every counter and snapshot query
// against a second MessageStats fed the same events sequentially. Run
// under -race this doubles as the data-race check for the sharded record
// path.
func TestConcurrentRecordingMatchesSequential(t *testing.T) {
	const (
		n      = 8
		perOp  = 2000
		window = 0 // default: retain everything, so record queries are exact
	)
	kinds := []obs.Kind{
		obs.Intern("stress-HB"),
		obs.Intern("stress-ACCUSE"),
		obs.Intern("stress-OK"),
	}

	// schedule returns the i-th operation of process p. Deterministic and
	// pure, so the concurrent and sequential runs see identical events.
	type op struct {
		send     bool // else: i%7==0 drop, otherwise deliver
		drop     bool
		at       sim.Time
		from, to int
		kind     obs.Kind
	}
	schedule := func(p, i int) op {
		to := (p + 1 + i%(n-1)) % n
		o := op{
			at:   sim.Time(i*n + p), // distinct, increasing per process
			from: p,
			to:   to,
			kind: kinds[(p+i)%len(kinds)],
		}
		switch i % 7 {
		case 0:
			o.drop = true
		case 1, 2:
			// deliver only
		default:
			o.send = true
		}
		return o
	}
	apply := func(s *MessageStats, o op) {
		switch {
		case o.send:
			s.OnSend(o.at, o.from, o.to, o.kind)
		case o.drop:
			s.OnDrop(o.at, o.from, o.to, o.kind)
		default:
			s.OnDeliver(o.at, o.from, o.to, o.kind)
		}
	}

	concurrent := NewMessageStatsWindow(n, window)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perOp; i++ {
				apply(concurrent, schedule(p, i))
			}
		}()
	}
	wg.Wait()

	sequential := NewMessageStatsWindow(n, window)
	for p := 0; p < n; p++ {
		for i := 0; i < perOp; i++ {
			apply(sequential, schedule(p, i))
		}
	}

	if got, want := concurrent.TotalSent(), sequential.TotalSent(); got != want {
		t.Errorf("TotalSent = %d, want %d", got, want)
	}
	if got, want := concurrent.Delivered(), sequential.Delivered(); got != want {
		t.Errorf("Delivered = %d, want %d", got, want)
	}
	if got, want := concurrent.Dropped(), sequential.Dropped(); got != want {
		t.Errorf("Dropped = %d, want %d", got, want)
	}
	for p := 0; p < n; p++ {
		if got, want := concurrent.SentBy(p), sequential.SentBy(p); got != want {
			t.Errorf("SentBy(%d) = %d, want %d", p, got, want)
		}
		for q := 0; q < n; q++ {
			if got, want := concurrent.LinkCount(p, q), sequential.LinkCount(p, q); got != want {
				t.Errorf("LinkCount(%d,%d) = %d, want %d", p, q, got, want)
			}
		}
	}
	for _, k := range kinds {
		name := obs.KindName(k)
		if got, want := concurrent.KindCount(name), sequential.KindCount(name); got != want {
			t.Errorf("KindCount(%q) = %d, want %d", name, got, want)
		}
		if got, want := concurrent.DeliveredByKind(name), sequential.DeliveredByKind(name); got != want {
			t.Errorf("DeliveredByKind(%q) = %d, want %d", name, got, want)
		}
		if got, want := concurrent.DroppedByKind(name), sequential.DroppedByKind(name); got != want {
			t.Errorf("DroppedByKind(%q) = %d, want %d", name, got, want)
		}
	}

	// Kinds(): first-seen order is scheduling-dependent under concurrency,
	// so compare as sets.
	cKinds, sKinds := concurrent.Kinds(), sequential.Kinds()
	if len(cKinds) != len(sKinds) {
		t.Fatalf("Kinds() lengths differ: %v vs %v", cKinds, sKinds)
	}
	set := make(map[string]bool, len(sKinds))
	for _, k := range sKinds {
		set[k] = true
	}
	for _, k := range cKinds {
		if !set[k] {
			t.Errorf("Kinds() contains unexpected %q", k)
		}
	}

	// Record queries: each shard is single-writer, so the retained logs
	// must match the sequential run exactly.
	cSnap, sSnap := concurrent.Snapshot(), sequential.Snapshot()
	horizon := sim.Time(perOp*n + n)
	for _, at := range []sim.Time{0, 17, sim.Time(perOp * n / 2), horizon} {
		cs, ss := cSnap.SendersSince(at), sSnap.SendersSince(at)
		if len(cs) != len(ss) {
			t.Fatalf("SendersSince(%d) = %v, want %v", at, cs, ss)
		}
		for i := range cs {
			if cs[i] != ss[i] {
				t.Fatalf("SendersSince(%d) = %v, want %v", at, cs, ss)
			}
		}
		if got, want := cSnap.LinksUsedSince(at), sSnap.LinksUsedSince(at); got != want {
			t.Errorf("LinksUsedSince(%d) = %d, want %d", at, got, want)
		}
		if got, want := cSnap.MessagesInWindow(at, horizon), sSnap.MessagesInWindow(at, horizon); got != want {
			t.Errorf("MessagesInWindow(%d, %d) = %d, want %d", at, horizon, got, want)
		}
	}
	for p := 0; p < n; p++ {
		if got, want := cSnap.QuietSince(p), sSnap.QuietSince(p); got != want {
			t.Errorf("QuietSince(%d) = %d, want %d", p, got, want)
		}
		cAt, cOK := cSnap.LastSendBy(p)
		sAt, sOK := sSnap.LastSendBy(p)
		if cAt != sAt || cOK != sOK {
			t.Errorf("LastSendBy(%d) = %d,%v, want %d,%v", p, cAt, cOK, sAt, sOK)
		}
	}
}

// TestConcurrentRecordingSmallWindow repeats the concurrent run with a
// window small enough to force eviction on every shard, checking that
// counters stay exact and lastAt-backed queries survive eviction.
func TestConcurrentRecordingSmallWindow(t *testing.T) {
	const (
		n      = 4
		perOp  = 1000
		window = 64
	)
	k := obs.Intern("stress-small-HB")

	concurrent := NewMessageStatsWindow(n, window)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perOp; i++ {
				concurrent.OnSend(sim.Time(i*n+p), p, (p+1)%n, k)
			}
		}()
	}
	wg.Wait()

	if got, want := concurrent.TotalSent(), uint64(n*perOp); got != want {
		t.Errorf("TotalSent = %d, want %d (counters must not be windowed)", got, want)
	}
	snap := concurrent.Snapshot()
	for p := 0; p < n; p++ {
		if got, want := concurrent.SentBy(p), uint64(perOp); got != want {
			t.Errorf("SentBy(%d) = %d, want %d", p, got, want)
		}
		wantLast := sim.Time((perOp-1)*n + p)
		if at, ok := snap.LastSendBy(p); !ok || at != wantLast {
			t.Errorf("LastSendBy(%d) = %d,%v, want %d,true (lastAt must survive eviction)", p, at, ok, wantLast)
		}
	}
	// The retained window holds exactly window records per sender.
	if got, want := snap.MessagesInWindow(0, sim.Time(perOp*n+n)), uint64(n*window); got != want {
		t.Errorf("MessagesInWindow over everything = %d, want %d (window bound)", got, want)
	}
}
