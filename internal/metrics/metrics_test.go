package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func at(ms int) sim.Time { return sim.At(time.Duration(ms) * time.Millisecond) }

func TestCountsAndKinds(t *testing.T) {
	s := NewMessageStats(3)
	s.RecordSend(at(1), 0, 1, "LEADER")
	s.RecordSend(at(2), 0, 2, "LEADER")
	s.RecordSend(at(3), 1, 0, "ACCUSE")
	s.RecordDeliver(at(4), 0, 1, "LEADER")
	s.RecordDrop(at(4), 0, 2, "LEADER")

	if got := s.TotalSent(); got != 3 {
		t.Fatalf("TotalSent = %d, want 3", got)
	}
	if got := s.Delivered(); got != 1 {
		t.Fatalf("Delivered = %d, want 1", got)
	}
	if got := s.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if got := s.SentBy(0); got != 2 {
		t.Fatalf("SentBy(0) = %d, want 2", got)
	}
	if got := s.LinkCount(0, 1); got != 1 {
		t.Fatalf("LinkCount(0,1) = %d, want 1", got)
	}
	if got := s.KindCount("LEADER"); got != 2 {
		t.Fatalf("KindCount(LEADER) = %d, want 2", got)
	}
	if got := s.KindCount("NONE"); got != 0 {
		t.Fatalf("KindCount(NONE) = %d, want 0", got)
	}
	kinds := s.Kinds()
	if len(kinds) != 2 || kinds[0] != "LEADER" || kinds[1] != "ACCUSE" {
		t.Fatalf("Kinds = %v", kinds)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSendersSince(t *testing.T) {
	s := NewMessageStats(4)
	s.RecordSend(at(1), 3, 0, "A")
	s.RecordSend(at(5), 1, 0, "A")
	s.RecordSend(at(10), 2, 0, "A")
	s.RecordSend(at(15), 2, 1, "A")

	if got := s.SendersSince(at(6)); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SendersSince(6ms) = %v, want [2]", got)
	}
	if got := s.SendersSince(at(5)); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SendersSince(5ms) = %v, want [1 2]", got)
	}
	if got := s.SendersSince(at(100)); len(got) != 0 {
		t.Fatalf("SendersSince(100ms) = %v, want empty", got)
	}
	if got := s.SendersSince(0); len(got) != 3 {
		t.Fatalf("SendersSince(0) = %v, want 3 senders", got)
	}
}

func TestLinksUsedSince(t *testing.T) {
	s := NewMessageStats(3)
	s.RecordSend(at(1), 0, 1, "A")
	s.RecordSend(at(2), 0, 1, "A") // same link, must not double-count
	s.RecordSend(at(3), 0, 2, "A")
	s.RecordSend(at(4), 1, 2, "A")
	if got := s.LinksUsedSince(0); got != 3 {
		t.Fatalf("LinksUsedSince(0) = %d, want 3", got)
	}
	if got := s.LinksUsedSince(at(3)); got != 2 {
		t.Fatalf("LinksUsedSince(3ms) = %d, want 2", got)
	}
}

func TestQuietSince(t *testing.T) {
	s := NewMessageStats(3)
	s.RecordSend(at(1), 1, 0, "A")
	s.RecordSend(at(2), 0, 1, "A")
	s.RecordSend(at(7), 2, 1, "A")
	s.RecordSend(at(9), 0, 1, "A")
	s.RecordSend(at(11), 0, 2, "A")
	if got := s.QuietSince(0); got != at(7)+1 {
		t.Fatalf("QuietSince(0) = %v, want just after 7ms", got)
	}
	// Process 2 is not quiet: 0 sends after it.
	if got := s.QuietSince(2); got != at(11)+1 {
		t.Fatalf("QuietSince(2) = %v, want just after 11ms", got)
	}
}

func TestQuietSinceNoForeignSends(t *testing.T) {
	s := NewMessageStats(2)
	s.RecordSend(at(1), 0, 1, "A")
	s.RecordSend(at(2), 0, 1, "A")
	if got := s.QuietSince(0); got != 0 {
		t.Fatalf("QuietSince = %v, want 0", got)
	}
}

func TestMessagesInWindow(t *testing.T) {
	s := NewMessageStats(2)
	for ms := 0; ms < 10; ms++ {
		s.RecordSend(at(ms), 0, 1, "A")
	}
	if got := s.MessagesInWindow(at(3), at(7)); got != 4 {
		t.Fatalf("MessagesInWindow = %d, want 4", got)
	}
	if got := s.MessagesInWindow(0, at(100)); got != 10 {
		t.Fatalf("MessagesInWindow(all) = %d, want 10", got)
	}
	if got := s.MessagesInWindow(at(50), at(60)); got != 0 {
		t.Fatalf("MessagesInWindow(empty) = %d, want 0", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewMessageStats(2)
	s.RecordSend(at(0), 0, 1, "A")
	s.RecordSend(at(1), 0, 1, "A")
	s.RecordSend(at(12), 1, 0, "A")
	series := s.Series(10*time.Millisecond, at(29))
	if len(series) != 3 {
		t.Fatalf("len(series) = %d, want 3", len(series))
	}
	if series[0] != 2 || series[1] != 1 || series[2] != 0 {
		t.Fatalf("series = %v, want [2 1 0]", series)
	}
}

func TestSeriesBySender(t *testing.T) {
	s := NewMessageStats(2)
	s.RecordSend(at(0), 0, 1, "A")
	s.RecordSend(at(12), 1, 0, "A")
	s.RecordSend(at(13), 1, 0, "A")
	per := s.SeriesBySender(10*time.Millisecond, at(19))
	if len(per) != 2 {
		t.Fatalf("len = %d", len(per))
	}
	if per[0][0] != 1 || per[0][1] != 0 || per[1][0] != 0 || per[1][1] != 2 {
		t.Fatalf("per-sender series = %v", per)
	}
}

func TestLastSendBy(t *testing.T) {
	s := NewMessageStats(2)
	if _, ok := s.LastSendBy(0); ok {
		t.Fatal("LastSendBy on empty stats reported ok")
	}
	s.RecordSend(at(3), 0, 1, "A")
	s.RecordSend(at(8), 0, 1, "A")
	got, ok := s.LastSendBy(0)
	if !ok || got != at(8) {
		t.Fatalf("LastSendBy = %v,%v want 8ms,true", got, ok)
	}
	if _, ok := s.LastSendBy(1); ok {
		t.Fatal("LastSendBy(1) reported ok for silent process")
	}
}

func TestSeriesPanicsOnBadBucket(t *testing.T) {
	s := NewMessageStats(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Series(0, at(10))
}

func TestSummary(t *testing.T) {
	s := NewMessageStats(2)
	s.RecordSend(at(1), 0, 1, "A")
	if got := s.Summary(); got == "" {
		t.Fatal("empty summary")
	}
}
