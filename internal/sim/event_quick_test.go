package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// TestHeapPopsSorted is a property test: for any multiset of event times,
// the heap pops them in non-decreasing (time, seq) order.
func TestHeapPopsSorted(t *testing.T) {
	property := func(offsets []uint32) bool {
		var h eventHeap
		for i, off := range offsets {
			h.Push(&Event{at: Time(off), seq: uint64(i)})
		}
		var popped []*Event
		for {
			e := h.Pop()
			if e == nil {
				break
			}
			popped = append(popped, e)
		}
		if len(popped) != len(offsets) {
			return false
		}
		for i := 1; i < len(popped); i++ {
			prev, cur := popped[i-1], popped[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapMatchesSortReference cross-checks the heap against sort.Slice on
// random workloads with interleaved pushes and pops.
func TestHeapMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h eventHeap
		var reference []*Event
		var seq uint64
		var popped, want []Time
		for op := 0; op < 400; op++ {
			if rng.Intn(3) != 0 || h.Len() == 0 {
				e := &Event{at: Time(rng.Int63n(1000)), seq: seq}
				seq++
				h.Push(e)
				reference = append(reference, e)
			} else {
				got := h.Pop()
				popped = append(popped, got.at)
				sort.SliceStable(reference, func(i, j int) bool {
					if reference[i].at != reference[j].at {
						return reference[i].at < reference[j].at
					}
					return reference[i].seq < reference[j].seq
				})
				want = append(want, reference[0].at)
				reference = reference[1:]
			}
		}
		for i := range popped {
			if popped[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %v, reference says %v", trial, i, popped[i], want[i])
			}
		}
	}
}

// TestKernelClockMonotone is a property test: no matter how events are
// scheduled, the clock observed inside callbacks never decreases.
func TestKernelClockMonotone(t *testing.T) {
	property := func(seed int64, delays []uint16) bool {
		k := NewKernel(seed)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.Schedule(time.Duration(d)*time.Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.RunFor(time.Hour)
		return ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
