// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap. Events scheduled
// for the same instant fire in scheduling order, which—together with a
// seeded random source—makes every simulation run bit-for-bit reproducible
// from its seed. All of the protocol substrates in this repository
// (internal/network, internal/node) are built on top of this kernel so that
// the "eventually forever" properties of the reproduced paper can be checked
// on deterministic, replayable executions.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: virtual time has a
// fixed, meaningful zero and no calendar semantics.
type Time int64

// Common virtual-time constants.
const (
	// TimeZero is the start of every simulation.
	TimeZero Time = 0
	// TimeMax is the largest representable virtual instant. It is used as
	// an "effectively never" horizon (for example, a GST of TimeMax means
	// links never stabilize).
	TimeMax Time = 1<<63 - 1
)

// At converts a duration-from-start into an absolute virtual instant.
func At(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Add returns the instant d after t, saturating at TimeMax.
func (t Time) Add(d time.Duration) Time {
	n := int64(t) + d.Nanoseconds()
	if d > 0 && n < int64(t) { // overflow
		return TimeMax
	}
	return Time(n)
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(int64(t) - int64(u)) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Duration returns t as a duration since the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since start, e.g. "1.5s".
func (t Time) String() string {
	if t == TimeMax {
		return "∞"
	}
	return fmt.Sprintf("%v", time.Duration(t))
}
