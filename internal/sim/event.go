package sim

// Event is one scheduled callback's slot in the kernel. Slots are owned and
// recycled by the kernel's free list: once an event fires or a cancelled
// event is collected, its slot is reused for a later Schedule call. Code
// outside the kernel never holds an *Event — it holds a Handle, which pins
// the slot's generation so operations through stale handles are no-ops.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool

	// gen is bumped every time the slot is recycled; a Handle is live only
	// while its generation matches. doneGen/doneFired record the outcome of
	// the most recently completed generation so a handle observed right
	// after completion still answers Fired/Cancelled correctly.
	gen       uint64
	doneGen   uint64
	doneFired bool
}

// Handle refers to one scheduled callback. The zero Handle is valid and
// refers to nothing; all methods on it are no-ops. Handles stay safe after
// their event completes: the kernel recycles event slots, and a handle
// whose generation no longer matches simply does nothing.
type Handle struct {
	e   *Event
	gen uint64
	at  Time
}

// live reports whether the handle's generation is still current, i.e. the
// event is queued (possibly cancelled but not yet collected).
func (h Handle) live() bool { return h.e != nil && h.e.gen == h.gen }

// At returns the virtual instant the event is (or was) scheduled for.
func (h Handle) At() Time { return h.at }

// Pending reports whether the event is still queued and will fire.
func (h Handle) Pending() bool { return h.live() && !h.e.cancelled }

// Cancel prevents the event from firing. It is safe to call repeatedly,
// after the event has fired, and after the event's slot has been recycled
// for an unrelated callback (the generation check makes it a no-op then).
func (h Handle) Cancel() {
	if !h.Pending() {
		return
	}
	h.e.cancelled = true
	h.e.fn = nil // release references for the garbage collector
}

// Cancelled reports whether this handle's event was cancelled before
// firing. Once the event's slot has been reused by a *second* later
// callback the answer degrades to false; Cancel itself is always safe.
func (h Handle) Cancelled() bool {
	if h.e == nil {
		return false
	}
	if h.live() {
		return h.e.cancelled
	}
	return h.e.doneGen == h.gen && !h.e.doneFired
}

// Fired reports whether this handle's event ran, with the same slot-reuse
// caveat as Cancelled.
func (h Handle) Fired() bool {
	if h.e == nil || h.live() {
		return false
	}
	return h.e.doneGen == h.gen && h.e.doneFired
}

// eventHeap is a binary min-heap ordered by (at, seq). The seq tie-break
// guarantees that events scheduled for the same instant fire in scheduling
// order, which keeps simulations deterministic.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Push inserts an event into the heap.
func (h *eventHeap) Push(e *Event) {
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) Pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) Peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
