package sim

// Event is a handle to a scheduled callback. It can be cancelled up until it
// fires; cancelling a fired or already-cancelled event is a no-op.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// At returns the virtual instant the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. It is safe to call repeatedly and
// after the event has fired.
func (e *Event) Cancel() {
	e.cancelled = true
	e.fn = nil // release references for the garbage collector
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// eventHeap is a binary min-heap ordered by (at, seq). The seq tie-break
// guarantees that events scheduled for the same instant fire in scheduling
// order, which keeps simulations deterministic.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Push inserts an event into the heap.
func (h *eventHeap) Push(e *Event) {
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) Pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) Peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
