package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelScheduleFire measures the schedule-one-fire-one cycle that
// dominates every simulation run. It must stay at 0 allocs/op: events are
// recycled through the kernel's free list.
func BenchmarkKernelScheduleFire(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	// Warm the free list and the heap's backing array.
	k.Schedule(time.Microsecond, fn)
	k.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Microsecond, fn)
		k.Step()
	}
}

// BenchmarkKernelScheduleCancel measures the schedule-then-cancel cycle
// (every heartbeat timer re-arm takes this path).
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.Schedule(time.Microsecond, fn)
		e.Cancel()
		k.RunFor(10 * time.Microsecond)
	}
}
