package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled callbacks run on the caller's goroutine
// inside Step/Run, which is exactly what makes executions deterministic.
//
// Event slots are recycled through a per-kernel free list, so the
// schedule → fire cycle allocates nothing in steady state; see Handle for
// how stale references to recycled slots stay safe.
type Kernel struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// free is the event slot free list (LIFO for cache locality).
	free []*Event

	// processed counts events that have fired (excluding cancelled ones).
	processed uint64
	// limit aborts runaway simulations; 0 means no limit.
	limit uint64
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Two kernels created with the same seed and driven by the same code
// produce identical executions.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Reset returns the kernel to the state NewKernel(seed) would produce —
// clock at zero, queue empty, counters cleared, random source reseeded —
// while keeping the event heap's backing array and the slot free list, so
// sweep workers can reuse one kernel across many runs without reallocating.
func (k *Kernel) Reset(seed int64) {
	for {
		e := k.heap.Pop()
		if e == nil {
			break
		}
		k.recycle(e, false)
	}
	k.now = TimeZero
	k.seq = 0
	k.processed = 0
	k.limit = 0
	k.rng.Seed(seed)
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. Protocol and link
// models must draw randomness only from here to preserve reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events currently queued (including
// cancelled events that have not been collected yet).
func (k *Kernel) Pending() int { return k.heap.Len() }

// Processed returns the number of events that have fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit aborts Run with a panic after n fired events; 0 disables
// the limit. It exists to catch accidental event storms in tests.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// alloc takes an event slot from the free list, or mints one.
func (k *Kernel) alloc() *Event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &Event{}
}

// recycle retires a popped event's generation and returns its slot to the
// free list. fired records the generation's outcome for Handle queries.
func (k *Kernel) recycle(e *Event, fired bool) {
	e.doneGen, e.doneFired = e.gen, fired
	e.gen++
	e.fn = nil
	e.cancelled = false
	k.free = append(k.free, e)
}

// fire advances the clock to e and runs its callback. e must already be
// popped from the heap; its slot is recycled before the callback runs, so
// callbacks that schedule immediately reuse the hot slot.
func (k *Kernel) fire(e *Event) {
	k.now = e.at
	fn := e.fn
	k.recycle(e, true)
	k.processed++
	if k.limit != 0 && k.processed > k.limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", k.limit, k.now))
	}
	fn()
}

// Schedule runs fn after virtual duration d (from now). A negative or zero
// d schedules fn for the current instant; it will still run after all
// callbacks already queued for this instant, preserving causal order.
func (k *Kernel) Schedule(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual instant t. Instants in the past
// are clamped to now.
func (k *Kernel) ScheduleAt(t Time, fn func()) Handle {
	if fn == nil {
		panic("sim: ScheduleAt called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	e := k.alloc()
	e.at, e.seq, e.fn = t, k.seq, fn
	k.seq++
	k.heap.Push(e)
	return Handle{e: e, gen: e.gen, at: t}
}

// Step fires the next event, advancing the clock to its instant. It returns
// false when no events remain. Cancelled events are collected silently.
func (k *Kernel) Step() bool {
	for {
		e := k.heap.Pop()
		if e == nil {
			return false
		}
		if e.cancelled {
			k.recycle(e, false)
			continue
		}
		k.fire(e)
		return true
	}
}

// RunUntil fires events until the virtual clock would pass horizon, until
// the queue drains, or until stop (if non-nil) returns true between events.
// It returns the reason the run ended.
func (k *Kernel) RunUntil(horizon Time, stop func() bool) RunResult {
	for {
		if stop != nil && stop() {
			return RunStopped
		}
		// One pop per event: cancelled events are drained in the same
		// pass, and the survivor is fired directly instead of being
		// re-popped by Step.
		e := k.heap.Pop()
		for e != nil && e.cancelled {
			k.recycle(e, false)
			e = k.heap.Pop()
		}
		if e == nil {
			// Simulate-until semantics: the clock reaches the horizon
			// even when nothing is left to do (except for the "run
			// forever" sentinel, which would wedge the clock at the
			// end of time).
			if horizon != TimeMax && horizon > k.now {
				k.now = horizon
			}
			return RunDrained
		}
		if e.at > horizon {
			// Do not fire past the horizon: put the event back (its seq
			// is unchanged, so ordering is preserved) and advance the
			// clock so repeated RunUntil calls observe monotonic time.
			k.heap.Push(e)
			k.now = horizon
			return RunHorizon
		}
		k.fire(e)
	}
}

// RunFor advances the simulation by virtual duration d.
func (k *Kernel) RunFor(d time.Duration) RunResult {
	return k.RunUntil(k.now.Add(d), nil)
}

// RunResult describes why a Run* call returned.
type RunResult int

// Run termination reasons.
const (
	// RunHorizon means the time horizon was reached.
	RunHorizon RunResult = iota + 1
	// RunDrained means the event queue emptied.
	RunDrained
	// RunStopped means the stop predicate returned true.
	RunStopped
)

// String returns a human-readable name for the result.
func (r RunResult) String() string {
	switch r {
	case RunHorizon:
		return "horizon"
	case RunDrained:
		return "drained"
	case RunStopped:
		return "stopped"
	default:
		return fmt.Sprintf("RunResult(%d)", int(r))
	}
}

// Every schedules fn to run every period, starting after initial delay, and
// returns a Ticker handle to stop the repetition. The callback runs until
// the ticker is stopped or the simulation ends.
func (k *Kernel) Every(initial, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every called with non-positive period")
	}
	t := &Ticker{kernel: k, period: period, fn: fn}
	t.tickFn = t.tick // bound once so re-arming allocates nothing
	t.next = k.Schedule(initial, t.tickFn)
	return t
}

// Ticker repeats a callback at a fixed virtual period.
type Ticker struct {
	kernel  *Kernel
	period  time.Duration
	fn      func()
	tickFn  func()
	next    Handle
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.next = t.kernel.Schedule(t.period, t.tickFn)
	t.fn()
}

// Stop halts the ticker. It is safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	t.next.Cancel()
	t.next = Handle{}
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
