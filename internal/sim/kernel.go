package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled callbacks run on the caller's goroutine
// inside Step/Run, which is exactly what makes executions deterministic.
type Kernel struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// processed counts events that have fired (excluding cancelled ones).
	processed uint64
	// limit aborts runaway simulations; 0 means no limit.
	limit uint64
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Two kernels created with the same seed and driven by the same code
// produce identical executions.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. Protocol and link
// models must draw randomness only from here to preserve reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events currently queued (including
// cancelled events that have not been popped yet).
func (k *Kernel) Pending() int { return k.heap.Len() }

// Processed returns the number of events that have fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit aborts Run with a panic after n fired events; 0 disables
// the limit. It exists to catch accidental event storms in tests.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// Schedule runs fn after virtual duration d (from now). A negative or zero
// d schedules fn for the current instant; it will still run after all
// callbacks already queued for this instant, preserving causal order.
func (k *Kernel) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual instant t. Instants in the past
// are clamped to now.
func (k *Kernel) ScheduleAt(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	k.heap.Push(e)
	return e
}

// Step fires the next event, advancing the clock to its instant. It returns
// false when no events remain. Cancelled events are skipped silently.
func (k *Kernel) Step() bool {
	for {
		e := k.heap.Pop()
		if e == nil {
			return false
		}
		if e.cancelled {
			continue
		}
		k.now = e.at
		e.fired = true
		fn := e.fn
		e.fn = nil
		k.processed++
		if k.limit != 0 && k.processed > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", k.limit, k.now))
		}
		fn()
		return true
	}
}

// RunUntil fires events until the virtual clock would pass horizon, until
// the queue drains, or until stop (if non-nil) returns true between events.
// It returns the reason the run ended.
func (k *Kernel) RunUntil(horizon Time, stop func() bool) RunResult {
	for {
		if stop != nil && stop() {
			return RunStopped
		}
		next := k.heap.Peek()
		for next != nil && next.cancelled {
			k.heap.Pop()
			next = k.heap.Peek()
		}
		if next == nil {
			// Simulate-until semantics: the clock reaches the horizon
			// even when nothing is left to do (except for the "run
			// forever" sentinel, which would wedge the clock at the
			// end of time).
			if horizon != TimeMax && horizon > k.now {
				k.now = horizon
			}
			return RunDrained
		}
		if next.at > horizon {
			// Do not fire past the horizon, but advance the clock to
			// it so repeated RunUntil calls observe monotonic time.
			k.now = horizon
			return RunHorizon
		}
		k.Step()
	}
}

// RunFor advances the simulation by virtual duration d.
func (k *Kernel) RunFor(d time.Duration) RunResult {
	return k.RunUntil(k.now.Add(d), nil)
}

// RunResult describes why a Run* call returned.
type RunResult int

// Run termination reasons.
const (
	// RunHorizon means the time horizon was reached.
	RunHorizon RunResult = iota + 1
	// RunDrained means the event queue emptied.
	RunDrained
	// RunStopped means the stop predicate returned true.
	RunStopped
)

// String returns a human-readable name for the result.
func (r RunResult) String() string {
	switch r {
	case RunHorizon:
		return "horizon"
	case RunDrained:
		return "drained"
	case RunStopped:
		return "stopped"
	default:
		return fmt.Sprintf("RunResult(%d)", int(r))
	}
}

// Every schedules fn to run every period, starting after initial delay, and
// returns a Ticker handle to stop the repetition. The callback runs until
// the ticker is stopped or the simulation ends.
func (k *Kernel) Every(initial, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every called with non-positive period")
	}
	t := &Ticker{kernel: k, period: period, fn: fn}
	t.next = k.Schedule(initial, t.tick)
	return t
}

// Ticker repeats a callback at a fixed virtual period.
type Ticker struct {
	kernel  *Kernel
	period  time.Duration
	fn      func()
	next    *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.next = t.kernel.Schedule(t.period, t.tick)
	t.fn()
}

// Stop halts the ticker. It is safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
		t.next = nil
	}
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
