package sim

import (
	"testing"
	"time"
)

// TestStaleHandleCancelAfterReuse is the free-list regression test: once an
// event fires and its slot is recycled into a new Schedule, the old handle's
// Cancel must be a generation-checked no-op — it must not kill the new
// event riding the same slot.
func TestStaleHandleCancelAfterReuse(t *testing.T) {
	k := NewKernel(1)
	first := k.Schedule(time.Millisecond, func() {})
	k.RunFor(10 * time.Millisecond)
	if !first.Fired() {
		t.Fatalf("first event did not fire")
	}

	// The free list is LIFO, so this Schedule reuses first's slot.
	fired := false
	second := k.Schedule(time.Millisecond, func() { fired = true })
	first.Cancel() // stale: must not touch the reused slot
	if !second.Pending() {
		t.Fatalf("stale Cancel hit the recycled event")
	}
	k.RunFor(10 * time.Millisecond)
	if !fired {
		t.Fatalf("recycled event did not fire after a stale Cancel")
	}
	if first.Fired() || first.Pending() {
		t.Fatalf("stale handle still reports live state after slot reuse")
	}
}

// TestStaleHandleQueriesAfterReuse pins down what a stale handle may answer:
// after its slot is recycled once, Fired/Cancelled for the completed
// generation still read correctly; after a second reuse they degrade to
// false, never to a wrong "pending".
func TestStaleHandleQueriesAfterReuse(t *testing.T) {
	k := NewKernel(1)
	cancelled := k.Schedule(time.Millisecond, func() {})
	cancelled.Cancel()
	k.RunFor(5 * time.Millisecond)
	if cancelled.Fired() {
		t.Fatalf("cancelled event reports Fired")
	}
	if !cancelled.Cancelled() {
		t.Fatalf("cancelled event lost its Cancelled answer after recycling")
	}
}

// TestKernelResetReproducesRun checks Reset(seed): a reset kernel must
// replay a schedule exactly as a fresh kernel with the same seed would,
// with no events leaking across the reset.
func TestKernelResetReproducesRun(t *testing.T) {
	trace := func(k *Kernel) []int64 {
		var out []int64
		for i := 0; i < 20; i++ {
			d := time.Duration(1+k.Rand().Intn(5)) * time.Millisecond
			k.Schedule(d, func() { out = append(out, int64(k.Now())) })
		}
		k.RunFor(50 * time.Millisecond)
		return out
	}

	k := NewKernel(7)
	// Leave a pending event behind to prove Reset drops it.
	leaked := false
	k.Schedule(time.Hour, func() { leaked = true })
	first := trace(k)

	k.Reset(7)
	if k.Now() != TimeZero {
		t.Fatalf("Reset left the clock at %v", k.Now())
	}
	second := trace(k)

	if len(first) != len(second) {
		t.Fatalf("replay length %d != %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %d != %d", i, second[i], first[i])
		}
	}
	if leaked {
		t.Fatalf("event scheduled before Reset fired after it")
	}

	fresh := trace(NewKernel(7))
	for i := range fresh {
		if first[i] != fresh[i] {
			t.Fatalf("reset kernel diverged from fresh kernel at %d", i)
		}
	}
}

// TestScheduleSteadyStateAllocs verifies the free list actually removes the
// per-event allocation once the pool is warm.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	k.Schedule(time.Microsecond, fn)
	k.RunFor(time.Millisecond) // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Microsecond, fn)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f objects per run, want 0", allocs)
	}
}
