package sim

import (
	"testing"
	"time"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if got := k.Now(); got != TimeZero {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	k.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if res := k.RunFor(time.Second); res != RunDrained {
		t.Fatalf("RunFor = %v, want drained", res)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	k.RunFor(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want ascending", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.Schedule(42*time.Millisecond, func() { at = k.Now() })
	k.RunFor(time.Second)
	if want := At(42 * time.Millisecond); at != want {
		t.Fatalf("callback observed t=%v, want %v", at, want)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10*time.Millisecond, func() { fired = true })
	e.Cancel()
	k.RunFor(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	if e.Fired() {
		t.Fatal("Fired() = true for cancelled event")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	k := NewKernel(1)
	e := k.Schedule(time.Millisecond, func() {})
	e.Cancel()
	e.Cancel() // must not panic
	k.RunFor(time.Second)
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*time.Millisecond, func() {
		fired := false
		k.Schedule(-5*time.Millisecond, func() { fired = true })
		_ = fired
	})
	var lateFired Time = -1
	k.Schedule(10*time.Millisecond, func() {
		k.ScheduleAt(TimeZero, func() { lateFired = k.Now() })
	})
	k.RunFor(time.Second)
	if want := At(10 * time.Millisecond); lateFired != want {
		t.Fatalf("past-scheduled event fired at %v, want clamped to %v", lateFired, want)
	}
}

func TestRunUntilHorizonDoesNotFirePastHorizon(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(100*time.Millisecond, func() { fired = true })
	res := k.RunUntil(At(50*time.Millisecond), nil)
	if res != RunHorizon {
		t.Fatalf("RunUntil = %v, want horizon", res)
	}
	if fired {
		t.Fatal("event past horizon fired")
	}
	if k.Now() != At(50*time.Millisecond) {
		t.Fatalf("Now() = %v, want horizon instant", k.Now())
	}
	// The event must still fire on a later run.
	k.RunUntil(At(time.Second), nil)
	if !fired {
		t.Fatal("event never fired after horizon extended")
	}
}

func TestRunUntilStopPredicate(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	res := k.RunUntil(At(time.Second), func() bool { return count >= 3 })
	if res != RunStopped {
		t.Fatalf("RunUntil = %v, want stopped", res)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDrainedRunStillReachesHorizon(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10*time.Millisecond, func() {})
	if res := k.RunUntil(At(100*time.Millisecond), nil); res != RunDrained {
		t.Fatalf("RunUntil = %v, want drained", res)
	}
	if k.Now() != At(100*time.Millisecond) {
		t.Fatalf("Now() = %v, want the horizon even after draining", k.Now())
	}
	// The "run forever" sentinel must not wedge the clock at TimeMax.
	k2 := NewKernel(1)
	k2.RunUntil(TimeMax, nil)
	if k2.Now() != TimeZero {
		t.Fatalf("Now() = %v after draining an empty run-forever", k2.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.Schedule(time.Millisecond, recurse)
		}
	}
	k.Schedule(0, recurse)
	if res := k.RunFor(time.Second); res != RunDrained {
		t.Fatalf("RunFor = %v, want drained", res)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestEveryTicksAtPeriod(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	tk := k.Every(10*time.Millisecond, 10*time.Millisecond, func() { at = append(at, k.Now()) })
	k.RunUntil(At(45*time.Millisecond), nil)
	tk.Stop()
	k.RunUntil(At(time.Second), nil)
	if len(at) != 4 {
		t.Fatalf("got %d ticks %v, want 4", len(at), at)
	}
	for i, got := range at {
		want := At(time.Duration(i+1) * 10 * time.Millisecond)
		if got != want {
			t.Fatalf("tick %d at %v, want %v", i, got, want)
		}
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tk *Ticker
	tk = k.Every(time.Millisecond, time.Millisecond, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	k.RunFor(time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(seed)
		var draws []int64
		// Random cascade: each event schedules the next at a random offset
		// and records a random draw; identical seeds must replay exactly.
		var step func()
		steps := 0
		step = func() {
			steps++
			draws = append(draws, k.Rand().Int63n(1000), int64(k.Now()))
			if steps < 200 {
				k.Schedule(time.Duration(k.Rand().Int63n(int64(time.Millisecond))), step)
			}
		}
		k.Schedule(0, step)
		k.RunFor(time.Hour)
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same && len(a) > 0 {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

func TestEventLimitPanics(t *testing.T) {
	k := NewKernel(1)
	k.SetEventLimit(10)
	var loop func()
	loop = func() { k.Schedule(time.Millisecond, loop) }
	k.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	k.RunFor(time.Hour)
}

func TestScheduleNilPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	k.Schedule(time.Millisecond, nil)
}

func TestTimeArithmetic(t *testing.T) {
	tt := At(time.Second)
	if got := tt.Add(500 * time.Millisecond); got != At(1500*time.Millisecond) {
		t.Fatalf("Add = %v", got)
	}
	if got := tt.Sub(At(200 * time.Millisecond)); got != 800*time.Millisecond {
		t.Fatalf("Sub = %v", got)
	}
	if !At(time.Second).Before(At(2 * time.Second)) {
		t.Fatal("Before failed")
	}
	if !At(2 * time.Second).After(At(time.Second)) {
		t.Fatal("After failed")
	}
	if got := TimeMax.Add(time.Hour); got != TimeMax {
		t.Fatalf("TimeMax.Add overflowed to %d", got)
	}
	if TimeMax.String() != "∞" {
		t.Fatalf("TimeMax.String() = %q", TimeMax.String())
	}
	if At(time.Second).String() != "1s" {
		t.Fatalf("String() = %q", At(time.Second).String())
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 7; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e := k.Schedule(time.Millisecond, func() {})
	e.Cancel()
	k.RunFor(time.Second)
	if got := k.Processed(); got != 7 {
		t.Fatalf("Processed = %d, want 7 (cancelled events must not count)", got)
	}
}
