package tracing

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// decode reads a dump document back for assertions.
func decode(t *testing.T, data []byte) Dump {
	t.Helper()
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	return d
}

func snapshot(t *testing.T, s *Set) Dump {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return decode(t, buf.Bytes())
}

// spansNamed collects every span with the given name across processes.
func spansNamed(d Dump, name string) []SpanJSON {
	var out []SpanJSON
	for _, p := range d.Procs {
		for _, sp := range p.Spans {
			if sp.Name == name {
				out = append(out, sp)
			}
		}
	}
	return out
}

func TestSpanLifecycle(t *testing.T) {
	s := New(Config{Procs: 2})
	tr := s.Tracer(0)

	root := tr.StartTrace(10, "request")
	if !root.Valid() {
		t.Fatal("StartTrace with SampleEvery<=1 must sample every call")
	}
	q := tr.Record(10, 20, root, "queue", -1, "")
	if !q.Valid() || q.Trace != root.Trace {
		t.Fatalf("Record context = %+v, want trace %d", q, root.Trace)
	}
	quorum := tr.Start(20, root, "quorum")
	tr.Event(25, quorum, "accepted", 1)
	tr.Event(26, quorum, "accepted", 2)
	tr.End(30, quorum)
	s.Tracer(1).Record(22, 22, quorum, "accept", 0, "ACCEPT")

	d := snapshot(t, s)
	if len(d.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(d.Procs))
	}
	req := spansNamed(d, "request")
	if len(req) != 1 || req[0].StartNS != 10 || req[0].EndNS != 10 || req[0].Parent != 0 {
		t.Fatalf("request span = %+v", req)
	}
	qs := spansNamed(d, "queue")
	if len(qs) != 1 || qs[0].Parent != uint64(root.Span) || qs[0].StartNS != 10 || qs[0].EndNS != 20 {
		t.Fatalf("queue span = %+v", qs)
	}
	qu := spansNamed(d, "quorum")
	if len(qu) != 1 || qu[0].EndNS != 30 || len(qu[0].Events) != 2 {
		t.Fatalf("quorum span = %+v", qu)
	}
	if qu[0].Events[0].Name != "accepted" || qu[0].Events[0].Peer != 1 || qu[0].Events[0].TNS != 25 {
		t.Fatalf("quorum events = %+v", qu[0].Events)
	}
	acc := spansNamed(d, "accept")
	if len(acc) != 1 || acc[0].Proc != 1 || acc[0].Parent != uint64(quorum.Span) || acc[0].Note != "ACCEPT" {
		t.Fatalf("accept span = %+v", acc)
	}
	// Span ids embed the process id, so cross-process ids cannot collide.
	if req[0].ID>>48 != 1 || acc[0].ID>>48 != 2 {
		t.Fatalf("span id proc tags: request %x accept %x", req[0].ID, acc[0].ID)
	}
}

func TestOpenSpansAppearFlagged(t *testing.T) {
	s := New(Config{Procs: 1})
	tr := s.Tracer(0)
	root := tr.StartTrace(1, "request")
	tr.Start(2, root, "quorum") // never ended
	d := snapshot(t, s)
	qu := spansNamed(d, "quorum")
	if len(qu) != 1 || !qu[0].Open {
		t.Fatalf("open span = %+v, want Open", qu)
	}
	// Ending an unknown context is a no-op, not a panic.
	tr.End(3, Context{Trace: root.Trace, Span: 0x7777})
}

func TestSampling(t *testing.T) {
	s := New(Config{Procs: 1, SampleEvery: 4})
	tr := s.Tracer(0)
	sampled := 0
	for i := 0; i < 40; i++ {
		if tr.StartTrace(sim.Time(i), "request").Valid() {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 with SampleEvery=4, want 10", sampled)
	}
	// Everything under a sampled-out context is free and records nothing.
	before := len(snapshot(t, s).Procs[0].Spans)
	tr.Record(1, 2, Context{}, "queue", -1, "")
	tr.Event(1, Context{}, "accepted", 1)
	tr.End(2, Context{})
	if after := len(snapshot(t, s).Procs[0].Spans); after != before {
		t.Fatalf("zero-context records grew the ring: %d -> %d", before, after)
	}
}

func TestMarkIsAlwaysRecorded(t *testing.T) {
	// Marks bypass sampling: leader changes must land even when request
	// sampling is effectively off.
	s := New(Config{Procs: 1, SampleEvery: 1 << 30})
	s.Tracer(0).Mark(7, "leader-change", 2)
	d := snapshot(t, s)
	m := spansNamed(d, "leader-change")
	if len(m) != 1 || m[0].Peer != 2 || m[0].StartNS != 7 || m[0].Parent != 0 {
		t.Fatalf("mark = %+v", m)
	}
}

func TestRingWrapEvictsOldestAndCountsDropped(t *testing.T) {
	const limit = 8
	s := New(Config{Procs: 1, Limit: limit})
	tr := s.Tracer(0)
	for i := 0; i < limit+5; i++ {
		tr.Mark(sim.Time(i), "m", -1)
	}
	if got := tr.Dropped(); got != 5 {
		t.Fatalf("Dropped = %d, want 5", got)
	}
	d := snapshot(t, s)
	spans := d.Procs[0].Spans
	if len(spans) != limit {
		t.Fatalf("retained %d spans, want %d", len(spans), limit)
	}
	for i, sp := range spans {
		if want := int64(i + 5); sp.StartNS != want {
			t.Fatalf("span %d start = %d, want %d (oldest-first after wrap)", i, sp.StartNS, want)
		}
	}
	if d.Procs[0].Dropped != 5 {
		t.Fatalf("dump dropped = %d, want 5", d.Procs[0].Dropped)
	}
}

// TestRingWrapConcurrent exercises wrap-around under concurrent writers —
// node loop, transport goroutines, and harness hooks all record into one
// tracer on live transports. Run with -race; the assertion is that every
// write is either retained or counted dropped, never lost.
func TestRingWrapConcurrent(t *testing.T) {
	const (
		limit   = 64
		writers = 8
		each    = 500
	)
	s := New(Config{Procs: 1, Limit: limit})
	tr := s.Tracer(0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch i % 3 {
				case 0:
					tr.Mark(sim.Time(i), "m", w)
				case 1:
					ctx := tr.StartTrace(sim.Time(i), "request")
					tr.Record(sim.Time(i), sim.Time(i+1), ctx, "queue", -1, "")
				case 2:
					ctx := tr.Start(sim.Time(i), Context{Trace: 1, Span: 1}, "quorum")
					tr.Event(sim.Time(i), ctx, "accepted", w)
					tr.End(sim.Time(i+1), ctx)
				}
			}
		}(w)
	}
	wg.Wait()
	d := snapshot(t, s)
	retained := len(d.Procs[0].Spans)
	if retained != limit {
		t.Fatalf("retained %d spans, want full ring of %d", retained, limit)
	}
	// 2 spans for case 0+1 rounds (mark, request+queue = 3 per triple), so
	// writers*each spans total across the mix: count completed pushes.
	perTriple := 4 // mark + (request root + queue) + quorum
	triples := writers * (each / 3)
	rem := each % 3 // writers see the same remainder pattern
	pushed := triples*perTriple + writers*map[int]int{0: 0, 1: 1, 2: 3}[rem]
	if got := int(tr.Dropped()); got != pushed-retained {
		t.Fatalf("Dropped = %d, want pushed(%d) - retained(%d) = %d", got, pushed, retained, pushed-retained)
	}
}

func TestOpenSpanBoundSheds(t *testing.T) {
	s := New(Config{Procs: 1, Limit: 16})
	tr := s.Tracer(0)
	parent := tr.StartTrace(0, "request")
	for i := 0; i < maxOpenSpans; i++ {
		if !tr.Start(1, parent, "quorum").Valid() {
			t.Fatalf("span %d shed below the bound", i)
		}
	}
	if tr.Start(1, parent, "quorum").Valid() {
		t.Fatal("span past maxOpenSpans must be shed")
	}
	if tr.Dropped() == 0 {
		t.Fatal("shed open span must count as dropped")
	}
}

func TestNilSetIsNoOp(t *testing.T) {
	tr := Nop.Tracer(0)
	if tr != nil {
		t.Fatal("nil set must hand out nil tracers")
	}
	if ctx := tr.StartTrace(1, "request"); ctx.Valid() {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(1, 2, Context{Trace: 1, Span: 1}, "queue", -1, "")
	tr.Event(1, Context{Trace: 1, Span: 1}, "accepted", 0)
	tr.End(2, Context{Trace: 1, Span: 1})
	tr.Mark(1, "leader-change", 0)
	tr.Trigger(1, "crash")
	Nop.MarkDown(0)
	Nop.MarkUp(0)
	Nop.Trigger(0, 0, "crash")
	Nop.SetWallStart(time.Now())
	if Nop.Stamp() != 0 || Nop.Triggered() != 0 || tr.Dropped() != 0 || tr.Proc() != -1 {
		t.Fatal("nil set accessors must return zero values")
	}
	if Nop.Sink() != nil {
		t.Fatal("nil set must expose a nil sink")
	}
	if hook := Nop.FsyncThreshold(0, time.Millisecond); hook != nil {
		t.Fatal("nil set must return a nil fsync hook")
	}
	var buf bytes.Buffer
	if err := Nop.WriteJSON(&buf); err != nil || buf.String() != "{}\n" {
		t.Fatalf("nil WriteJSON = %q, %v", buf.String(), err)
	}
	// WatchLeader's closure must also tolerate the nil tracer inside.
	Nop.WatchLeader(0)(1, 2)
	if path, err := Nop.Final(); path != "" || err != nil {
		t.Fatalf("nil Final = %q, %v", path, err)
	}
}

func TestZeroAllocDisabledAndSampledOut(t *testing.T) {
	// Disabled: the nil-tracer path the consensus hot loops take.
	nilTr := Nop.Tracer(3)
	if allocs := testing.AllocsPerRun(1000, func() {
		ctx := nilTr.StartTrace(1, "request")
		nilTr.Record(1, 2, ctx, "queue", -1, "")
		nilTr.Event(2, ctx, "accepted", 1)
		nilTr.End(3, ctx)
		nilTr.Mark(3, "leader-change", -1)
	}); allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f/op, want 0", allocs)
	}
	// Enabled but sampled out: ingress pays one atomic, everything under
	// the zero context is free.
	s := New(Config{Procs: 1, SampleEvery: 1 << 40})
	tr := s.Tracer(0)
	tr.StartTrace(0, "request") // burn the first (sampled) decision
	if allocs := testing.AllocsPerRun(1000, func() {
		ctx := tr.StartTrace(1, "request")
		tr.Record(1, 2, ctx, "queue", -1, "")
		tr.Event(2, ctx, "accepted", 1)
		tr.End(3, ctx)
	}); allocs != 0 {
		t.Fatalf("sampled-out tracing allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightRecorderDumps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "dumps")
	s := New(Config{Procs: 2, Dir: dir, MaxDumps: 2})
	s.Tracer(0).Mark(5, "leader-change", 1)

	s.Trigger(10, 0, "leader-change")
	s.Trigger(11, 0, "leader-change")
	s.Trigger(12, 0, "leader-change") // capped
	s.Trigger(13, 1, "crash")         // separate reason, separate cap
	if got := s.Triggered(); got != 3 {
		t.Fatalf("Triggered = %d, want 3 (third leader-change capped)", got)
	}
	path, err := s.Final()
	if err != nil {
		t.Fatalf("Final: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("dump dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{
		"trace-001-leader-change.json",
		"trace-002-leader-change.json",
		"trace-003-crash.json",
		"trace-004-final.json",
	}
	if len(names) != len(want) {
		t.Fatalf("dumps = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("dumps = %v, want %v", names, want)
		}
	}
	if filepath.Base(path) != "trace-004-final.json" {
		t.Fatalf("Final path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d := decode(t, data)
	if d.Reason != "final" || d.Proc != -1 || len(d.Procs) != 2 {
		t.Fatalf("final dump header = %+v", d)
	}
	if _, err := time.Parse(time.RFC3339Nano, d.WallStart); err != nil {
		t.Fatalf("wall_start %q: %v", d.WallStart, err)
	}
	if m := spansNamed(d, "leader-change"); len(m) != 1 {
		t.Fatalf("final dump lost the mark: %+v", d.Procs)
	}
	first, err := os.ReadFile(filepath.Join(dir, "trace-001-leader-change.json"))
	if err != nil {
		t.Fatal(err)
	}
	if fd := decode(t, first); fd.AtNS != 10 || fd.Proc != 0 || fd.Reason != "leader-change" {
		t.Fatalf("first dump header = %+v", fd)
	}
}

func TestHarnessHooks(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Procs: 2, Dir: dir})
	s.SetWallStart(time.Now().Add(-time.Second))

	s.WatchLeader(1)(42, node.ID(0))
	s.MarkDown(0)
	s.MarkUp(0)
	slow := s.FsyncThreshold(1, 10*time.Millisecond)
	slow(5 * time.Millisecond) // below threshold: no mark
	slow(20 * time.Millisecond)

	d := snapshot(t, s)
	lc := spansNamed(d, "leader-change")
	if len(lc) != 1 || lc[0].Proc != 1 || lc[0].Peer != 0 || lc[0].StartNS != 42 {
		t.Fatalf("leader-change = %+v", lc)
	}
	if len(spansNamed(d, "down")) != 1 || len(spansNamed(d, "up")) != 1 {
		t.Fatalf("down/up marks missing: %+v", d.Procs)
	}
	fs := spansNamed(d, "fsync-slow")
	if len(fs) != 1 || fs[0].Proc != 1 {
		t.Fatalf("fsync-slow = %+v", fs)
	}
	// leader-change + crash + fsync-slow triggers all dumped.
	if got := s.Triggered(); got != 3 {
		t.Fatalf("Triggered = %d, want 3", got)
	}
	// Stamp is wall time since the anchor: about a second here.
	if st := s.Stamp(); st < sim.Time(500*time.Millisecond) || st > sim.Time(5*time.Second) {
		t.Fatalf("Stamp = %v, want ~1s", st)
	}
}

func TestSinkRecordsSendsAndDumpsDrops(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Procs: 3, Dir: dir})
	sink := s.Sink()
	kind := obs.Intern("ACCEPT")

	root := s.Tracer(0).StartTrace(1, "request")
	if cs, ok := sink.(obs.CtxSink); !ok {
		t.Fatal("set sink must implement obs.CtxSink")
	} else {
		cs.OnSendCtx(2, 0, 2, kind, uint64(root.Trace), uint64(root.Span))
		cs.OnSendCtx(2, 0, 1, kind, 0, 0) // untraced message: no span
	}
	sink.OnSend(2, 0, 2, kind)    // plain sends are not recorded
	sink.OnDeliver(3, 0, 2, kind) // deliveries are not recorded
	d := snapshot(t, s)
	sends := spansNamed(d, "send")
	if len(sends) != 1 {
		t.Fatalf("send spans = %+v, want exactly one", sends)
	}
	if sends[0].Proc != 0 || sends[0].Peer != 2 || sends[0].Parent != uint64(root.Span) || sends[0].Note != "ACCEPT" {
		t.Fatalf("send span = %+v", sends[0])
	}

	sink.OnDrop(4, 1, 2, kind)
	if s.Triggered() != 1 {
		t.Fatal("drop must fire the flight recorder")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "trace-001-message-drop.json" {
		t.Fatalf("dump dir = %v", entries)
	}
}

func TestWrapExposesTraceContext(t *testing.T) {
	w := Wrap{Ctx: Context{Trace: 7, Span: 9}}
	var traced node.Traced = w
	tr, sp := traced.TraceContext()
	if tr != 7 || sp != 9 {
		t.Fatalf("TraceContext = %d, %d", tr, sp)
	}
	if w.Kind() != KindTrace || obs.KindName(w.KindID()) != KindTrace {
		t.Fatalf("kind = %s", w.Kind())
	}
}
