// Package tracing is the causal tracing layer: compact trace contexts
// propagated on the wire, per-process span recorders, and an anomaly
// flight recorder that dumps the recent span history when something goes
// wrong (a leader change, a fallback read, a slow fsync, a dropped
// message).
//
// Where internal/trace answers "what happened, in order" for one process
// and internal/telemetry answers "how many / how long" in aggregate,
// tracing answers "what happened to *this* command (or *this* election),
// across every process it touched". A sampled request carries a
// Context — trace id plus parent span id — on the wire inside a Wrap
// envelope (wire kind TRACE, see internal/wire); each layer it crosses
// records spans under that context, and cmd/traceview stitches the
// per-process dumps back into one causally ordered timeline.
//
// Tracing off is the zero value: a nil *Set (tracing.Nop) hands out nil
// *Tracers, and every method on a nil receiver is a cheap no-op — no
// allocation, no atomics, just a nil check — so the consensus hot paths
// pay nothing when tracing is disabled. Span records are pooled and the
// per-process ring is bounded, so tracing on costs O(ring) memory.
package tracing

import (
	"sync"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TraceID identifies one end-to-end trace (a request, an election). Zero
// means "not traced".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "none".
type SpanID uint64

// Context is the compact trace context carried on the wire: which trace
// an operation belongs to and which span new work should attach under.
// The zero Context means "not sampled"; every recording method treats it
// as a no-op, so the sampling decision made at ingress propagates for
// free.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a live trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// KindTrace is the wire kind of the trace-context wrapper.
const KindTrace = "TRACE"

var kindTraceID = obs.Intern(KindTrace)

// Wrap carries a trace context alongside an inner protocol message — the
// GROUP-wrapper pattern applied to tracing. The wire codec encodes the
// context then the inner message's own code and fields nested in place
// (see wire.registerTrace); the consensus engine unwraps it at Deliver,
// installs the context for the inner handler, and processes Inner as if
// it had arrived bare. Wrappers do not nest: TRACE inside TRACE is a
// codec error, and a TRACE wrapper rides *inside* a GROUP wrapper (the
// group demux must see its own envelope first).
type Wrap struct {
	Ctx   Context
	Inner node.Message
}

// Kind implements node.Message.
func (Wrap) Kind() string { return KindTrace }

// KindID implements node.KindIDer.
func (Wrap) KindID() obs.Kind { return kindTraceID }

// TraceContext implements node.Traced: the transports read the context
// off outbound messages to feed per-link send events into the tracer.
func (w Wrap) TraceContext() (trace, span uint64) {
	return uint64(w.Ctx.Trace), uint64(w.Ctx.Span)
}

// Event is a point-in-time annotation on a span (an ACCEPTED arriving
// from one peer, a decide). Peer is -1 when not applicable.
type Event struct {
	T    sim.Time
	Name string
	Peer int
}

// Span is one recorded operation: a named interval on one process,
// attached under a parent span (possibly on another process). Peer is
// the directed-link partner for wire-level child spans, -1 otherwise.
// Note carries an optional short annotation (the message kind for wire
// sends); it must be an interned or constant string — the record path
// never formats.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Proc   int
	Peer   int
	Start  sim.Time
	End    sim.Time
	Note   string
	Open   bool // still open when the dump was taken
	Events []Event
}

// spanPool recycles span records so steady-state tracing allocates only
// when a span outgrows its event slice.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

func newSpan() *Span {
	s := spanPool.Get().(*Span)
	*s = Span{Events: s.Events[:0], Peer: -1}
	return s
}

// maxOpenSpans bounds the open-span table: spans that are never closed
// (their instance lost leadership mid-quorum, say) must not leak. Past
// the bound new spans are dropped and counted.
const maxOpenSpans = 4096

// Tracer records spans for one process. All methods are safe on a nil
// receiver (the disabled state) and safe for concurrent use — a process
// may record from its node loop, group workers, and transport receive
// goroutines at once.
type Tracer struct {
	set  *Set
	proc int

	mu      sync.Mutex
	nextID  uint64
	open    map[SpanID]*Span
	ring    []*Span // completed spans, bounded at set.cfg.Limit
	head    int     // oldest entry once the ring wrapped
	dropped uint64
}

// Proc returns the process id this tracer records for (-1 on nil).
func (t *Tracer) Proc() int {
	if t == nil {
		return -1
	}
	return t.proc
}

func (t *Tracer) newID() SpanID {
	t.nextID++
	return SpanID(uint64(t.proc+1)<<48 | t.nextID)
}

// StartTrace makes the sampling decision for a new trace rooted at this
// process. One in SampleEvery calls is sampled (every call when
// SampleEvery <= 1): a sampled trace gets a fresh id and a completed
// zero-length root span named name, and the returned Context propagates
// it; a sampled-out call returns the zero Context and performs no work
// beyond one atomic increment.
func (t *Tracer) StartTrace(now sim.Time, name string) Context {
	if t == nil || !t.set.sample() {
		return Context{}
	}
	t.mu.Lock()
	id := t.newID()
	tr := TraceID(id)
	sp := newSpan()
	sp.Trace, sp.ID, sp.Name, sp.Proc = tr, id, name, t.proc
	sp.Start, sp.End = now, now
	t.pushLocked(sp)
	t.mu.Unlock()
	return Context{Trace: tr, Span: id}
}

// Start opens a child span under parent and returns its context. The
// zero parent (or a nil tracer) starts nothing.
func (t *Tracer) Start(now sim.Time, parent Context, name string) Context {
	if t == nil || !parent.Valid() {
		return Context{}
	}
	t.mu.Lock()
	if t.open == nil {
		t.open = make(map[SpanID]*Span, 64)
	}
	if len(t.open) >= maxOpenSpans {
		t.dropped++
		t.mu.Unlock()
		return Context{}
	}
	id := t.newID()
	sp := newSpan()
	sp.Trace, sp.ID, sp.Parent = parent.Trace, id, parent.Span
	sp.Name, sp.Proc, sp.Start = name, t.proc, now
	t.open[id] = sp
	t.mu.Unlock()
	return Context{Trace: parent.Trace, Span: id}
}

// End closes the span ctx points at. Unknown or zero contexts are
// ignored (the span may have been dropped under pressure).
func (t *Tracer) End(now sim.Time, ctx Context) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	if sp, ok := t.open[ctx.Span]; ok {
		delete(t.open, ctx.Span)
		sp.End = now
		t.pushLocked(sp)
	}
	t.mu.Unlock()
}

// Record adds a completed span [start, end] under parent in one call —
// the shape for operations observed only after the fact (a queue wait,
// a follower's synchronous accept). Peer is -1 when not applicable;
// note must be interned/constant ("" for none).
func (t *Tracer) Record(start, end sim.Time, parent Context, name string, peer int, note string) Context {
	if t == nil || !parent.Valid() {
		return Context{}
	}
	t.mu.Lock()
	id := t.newID()
	sp := newSpan()
	sp.Trace, sp.ID, sp.Parent = parent.Trace, id, parent.Span
	sp.Name, sp.Proc, sp.Peer = name, t.proc, peer
	sp.Start, sp.End, sp.Note = start, end, note
	t.pushLocked(sp)
	t.mu.Unlock()
	return Context{Trace: parent.Trace, Span: id}
}

// Event attaches a point-in-time annotation to the open span ctx points
// at. Events on completed or unknown spans are dropped silently.
func (t *Tracer) Event(now sim.Time, ctx Context, name string, peer int) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	if sp, ok := t.open[ctx.Span]; ok {
		sp.Events = append(sp.Events, Event{T: now, Name: name, Peer: peer})
	}
	t.mu.Unlock()
}

// Mark records an unsampled, parentless, zero-length span — the shape
// for rare cluster events that must always be captured (leader changes,
// crashes) and that traceview correlates by time rather than by trace
// id. Peer is -1 when not applicable.
func (t *Tracer) Mark(now sim.Time, name string, peer int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := t.newID()
	sp := newSpan()
	sp.Trace, sp.ID = TraceID(id), id
	sp.Name, sp.Proc, sp.Peer = name, t.proc, peer
	sp.Start, sp.End = now, now
	t.pushLocked(sp)
	t.mu.Unlock()
}

// Trigger asks the flight recorder for a dump on this process's behalf.
// Reason must be a constant string; dumps are capped per reason (see
// Config.MaxDumps), and a capped or dirless trigger costs one atomic
// load.
func (t *Tracer) Trigger(now sim.Time, reason string) {
	if t == nil {
		return
	}
	t.set.Trigger(now, t.proc, reason)
}

// Dropped returns how many spans this tracer evicted from its ring or
// shed at the open-span bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// pushLocked appends a completed span to the ring, evicting (and
// recycling) the oldest when full. Callers hold t.mu.
func (t *Tracer) pushLocked(sp *Span) {
	limit := t.set.cfg.Limit
	if len(t.ring) < limit {
		t.ring = append(t.ring, sp)
		return
	}
	old := t.ring[t.head]
	t.ring[t.head] = sp
	t.head = (t.head + 1) % limit
	t.dropped++
	spanPool.Put(old)
}

// snapshotLocked copies the retained spans oldest-first, then the open
// spans (flagged Open). Callers hold t.mu; the copies do not alias the
// pooled records.
func (t *Tracer) snapshotLocked() []Span {
	out := make([]Span, 0, len(t.ring)+len(t.open))
	for i := range t.ring {
		sp := t.ring[(t.head+i)%len(t.ring)]
		out = append(out, copySpan(sp, false))
	}
	for _, sp := range t.open {
		out = append(out, copySpan(sp, true))
	}
	return out
}

func copySpan(sp *Span, open bool) Span {
	c := *sp
	c.Open = open
	if len(sp.Events) > 0 {
		c.Events = append([]Event(nil), sp.Events...)
	} else {
		c.Events = nil
	}
	return c
}
