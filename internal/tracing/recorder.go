package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes a tracing Set. Zero values select defaults.
type Config struct {
	// Procs is the number of processes (required, > 0).
	Procs int
	// Limit bounds each process's completed-span ring (default 4096).
	Limit int
	// SampleEvery samples one in this many StartTrace calls (<= 1 traces
	// every call). Sampling is decided once at ingress; everything under
	// a sampled-out context is free.
	SampleEvery int
	// Dir is where flight-recorder dumps are written ("" disables
	// dumps; spans are still recorded and readable via WriteJSON).
	Dir string
	// MaxDumps caps dumps per trigger reason (default 4) so a repeating
	// anomaly cannot flood the directory. Final dumps are exempt.
	MaxDumps int
}

func (c *Config) fill() {
	if c.Limit <= 0 {
		c.Limit = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 4
	}
}

// Set is the cluster-wide tracing state: one Tracer per process, the
// sampling counter they share, and the flight recorder. A nil *Set
// (tracing.Nop) is the disabled layer; all methods no-op.
type Set struct {
	cfg     Config
	tracers []*Tracer

	wallMu    sync.Mutex
	wallStart time.Time

	sampleCtr atomic.Uint64

	dumpMu    sync.Mutex
	dumpSeq   int
	dumpsBy   map[string]int
	triggered atomic.Uint64 // total triggers accepted (capped ones excluded)
}

// Nop is the disabled tracing layer: a nil Set. Every method on a nil
// Set or the nil Tracers it hands out is a no-op costing one nil check,
// which is what keeps the sim and live hot paths at 0 allocs/op with
// tracing off.
var Nop *Set

// New returns an enabled tracing set for cfg.Procs processes, anchored
// at the current wall instant (see SetWallStart).
func New(cfg Config) *Set {
	cfg.fill()
	s := &Set{cfg: cfg, dumpsBy: make(map[string]int), wallStart: time.Now()}
	s.tracers = make([]*Tracer, cfg.Procs)
	for i := range s.tracers {
		s.tracers[i] = &Tracer{set: s, proc: i}
	}
	return s
}

// Tracer returns process proc's tracer, or nil when the set is nil or
// proc is out of range — callers hold the result and never re-check.
func (s *Set) Tracer(proc int) *Tracer {
	if s == nil || proc < 0 || proc >= len(s.tracers) {
		return nil
	}
	return s.tracers[proc]
}

// SetWallStart re-anchors span times to an absolute wall instant — the
// same contract as trace.Log.SetWallStart. Live clusters pass their
// start time so dumps from separate runs (or separate OS processes)
// merge on real timestamps; simulator harnesses leave the New anchor,
// where virtual time zero maps to the moment the set was built.
func (s *Set) SetWallStart(start time.Time) {
	if s == nil {
		return
	}
	s.wallMu.Lock()
	s.wallStart = start
	s.wallMu.Unlock()
}

// Stamp returns the current trace timestamp — wall time since the
// anchor — for harness code recording events (crashes, verdicts) on the
// same clock as the spans.
func (s *Set) Stamp() sim.Time {
	if s == nil {
		return 0
	}
	s.wallMu.Lock()
	start := s.wallStart
	s.wallMu.Unlock()
	return sim.Time(time.Since(start).Nanoseconds())
}

// sample makes one sampling decision.
func (s *Set) sample() bool {
	if s == nil {
		return false
	}
	if s.cfg.SampleEvery <= 1 {
		return true
	}
	return s.sampleCtr.Add(1)%uint64(s.cfg.SampleEvery) == 1
}

// WatchLeader returns a notify hook for process proc's detector.History:
// every leader-output transition is recorded as a "leader-change" mark
// (Peer = new leader) and fires the flight recorder. Install with
// History.AddNotify so telemetry's own subscription is undisturbed.
func (s *Set) WatchLeader(proc int) func(t sim.Time, leader node.ID) {
	tr := s.Tracer(proc)
	return func(t sim.Time, leader node.ID) {
		tr.Mark(t, "leader-change", int(leader))
		tr.Trigger(t, "leader-change")
	}
}

// MarkDown records process proc crashing at the set's current stamp —
// traceview excludes a down process from election agreement, exactly as
// telemetry.Collector.MarkDown does.
func (s *Set) MarkDown(proc int) {
	if s == nil {
		return
	}
	now := s.Stamp()
	s.Tracer(proc).Mark(now, "down", -1)
	s.Tracer(proc).Trigger(now, "crash")
}

// MarkUp records process proc rejoining at the set's current stamp.
func (s *Set) MarkUp(proc int) {
	if s == nil {
		return
	}
	s.Tracer(proc).Mark(s.Stamp(), "up", -1)
}

// FsyncThreshold returns an observer for WAL fsync durations that fires
// the flight recorder when one exceeds the threshold. Chain it with the
// telemetry hook on durable.Options.OnFsync.
func (s *Set) FsyncThreshold(proc int, threshold time.Duration) func(d time.Duration) {
	if s == nil || threshold <= 0 {
		return nil
	}
	tr := s.Tracer(proc)
	return func(d time.Duration) {
		if d >= threshold {
			now := s.Stamp()
			tr.Mark(now, "fsync-slow", -1)
			tr.Trigger(now, "fsync-slow")
		}
	}
}

// Triggered returns how many flight-recorder dumps have been accepted.
func (s *Set) Triggered() uint64 {
	if s == nil {
		return 0
	}
	return s.triggered.Load()
}

// Trigger fires the flight recorder: the current span history of every
// process is dumped to Config.Dir as one JSON file named
// trace-<seq>-<reason>.json. Recording continues afterwards — the ring
// is snapshotted, not frozen — so the anomaly's aftermath lands in the
// next dump or the final one. Dumps are capped per reason; a capped
// trigger (or a dirless set) returns immediately.
func (s *Set) Trigger(now sim.Time, proc int, reason string) {
	if s == nil || s.cfg.Dir == "" {
		return
	}
	s.dumpMu.Lock()
	if s.dumpsBy[reason] >= s.cfg.MaxDumps {
		s.dumpMu.Unlock()
		return
	}
	s.dumpsBy[reason]++
	s.dumpSeq++
	seq := s.dumpSeq
	s.dumpMu.Unlock()
	s.triggered.Add(1)
	if err := s.dumpFile(seq, reason, now, proc); err != nil {
		fmt.Fprintf(os.Stderr, "tracing: flight dump %q: %v\n", reason, err)
	}
}

// Final writes the end-of-run dump (reason "final", exempt from the
// per-reason cap) and returns its path. Harnesses call it before exit
// so traceview always has the complete tail even when nothing anomalous
// fired.
func (s *Set) Final() (string, error) {
	if s == nil || s.cfg.Dir == "" {
		return "", nil
	}
	s.dumpMu.Lock()
	s.dumpSeq++
	seq := s.dumpSeq
	s.dumpMu.Unlock()
	path := s.dumpPath(seq, "final")
	return path, s.writeDump(path, "final", s.Stamp(), -1)
}

func (s *Set) dumpPath(seq int, reason string) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("trace-%03d-%s.json", seq, reason))
}

func (s *Set) dumpFile(seq int, reason string, now sim.Time, proc int) error {
	return s.writeDump(s.dumpPath(seq, reason), reason, now, proc)
}

func (s *Set) writeDump(path, reason string, now sim.Time, proc int) error {
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("create -trace-dir %s: %w", s.cfg.Dir, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create dump under -trace-dir: %w", err)
	}
	werr := s.encodeDump(f, reason, now, proc)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// WriteJSON writes the current span history of every process as one
// dump document — the /trace endpoint's payload, same schema as the
// flight-recorder files.
func (s *Set) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	return s.encodeDump(w, "snapshot", s.Stamp(), -1)
}

// Dump is the on-disk flight-recorder document: one snapshot of every
// process's span history, wall-anchored so separate dumps (and separate
// runs' telemetry) merge on absolute time.
type Dump struct {
	Reason    string     `json:"reason"`
	WallStart string     `json:"wall_start"` // RFC3339Nano anchor for all *_ns offsets
	AtNS      int64      `json:"at_ns"`      // trigger instant, ns since WallStart
	Proc      int        `json:"proc"`       // triggering process, -1 for whole-set dumps
	Procs     []ProcDump `json:"procs"`
}

// ProcDump is one process's slice of a Dump.
type ProcDump struct {
	Proc    int        `json:"proc"`
	Dropped uint64     `json:"dropped"`
	Spans   []SpanJSON `json:"spans"`
}

// SpanJSON is the serialized span record.
type SpanJSON struct {
	Trace   uint64      `json:"trace"`
	ID      uint64      `json:"id"`
	Parent  uint64      `json:"parent,omitempty"`
	Name    string      `json:"name"`
	Proc    int         `json:"proc"`
	Peer    int         `json:"peer"`
	StartNS int64       `json:"start_ns"`
	EndNS   int64       `json:"end_ns"`
	Note    string      `json:"note,omitempty"`
	Open    bool        `json:"open,omitempty"`
	Events  []EventJSON `json:"events,omitempty"`
}

// EventJSON is the serialized span event.
type EventJSON struct {
	TNS  int64  `json:"t_ns"`
	Name string `json:"name"`
	Peer int    `json:"peer"`
}

func (s *Set) encodeDump(w io.Writer, reason string, now sim.Time, proc int) error {
	s.wallMu.Lock()
	wall := s.wallStart
	s.wallMu.Unlock()
	d := Dump{
		Reason:    reason,
		WallStart: wall.UTC().Format(time.RFC3339Nano),
		AtNS:      int64(now),
		Proc:      proc,
		Procs:     make([]ProcDump, 0, len(s.tracers)),
	}
	for _, t := range s.tracers {
		t.mu.Lock()
		spans := t.snapshotLocked()
		dropped := t.dropped
		t.mu.Unlock()
		pd := ProcDump{Proc: t.proc, Dropped: dropped, Spans: make([]SpanJSON, len(spans))}
		for i := range spans {
			pd.Spans[i] = spanToJSON(&spans[i])
		}
		d.Procs = append(d.Procs, pd)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&d)
}

func spanToJSON(sp *Span) SpanJSON {
	j := SpanJSON{
		Trace:   uint64(sp.Trace),
		ID:      uint64(sp.ID),
		Parent:  uint64(sp.Parent),
		Name:    sp.Name,
		Proc:    sp.Proc,
		Peer:    sp.Peer,
		StartNS: int64(sp.Start),
		EndNS:   int64(sp.End),
		Note:    sp.Note,
		Open:    sp.Open,
	}
	if len(sp.Events) > 0 {
		j.Events = make([]EventJSON, len(sp.Events))
		for i, e := range sp.Events {
			j.Events[i] = EventJSON{TNS: int64(e.T), Name: e.Name, Peer: e.Peer}
		}
	}
	return j
}

// Sink adapts the set to the observer pipeline. Wire-level send events
// for traced messages arrive through the OnSendCtx extension (the
// transports read the context off node.Traced messages); each becomes a
// completed zero-length "send" span under the carried parent — the
// per-directed-link children of a quorum span. Message drops fire the
// flight recorder (reason "message-drop", capped like any trigger).
func (s *Set) Sink() obs.Sink {
	if s == nil {
		return nil
	}
	return setSink{s}
}

type setSink struct{ s *Set }

var _ obs.Sink = setSink{}
var _ obs.CtxSink = setSink{}

func (k setSink) OnSend(t sim.Time, from, to int, kind obs.Kind) {}

func (k setSink) OnDeliver(t sim.Time, from, to int, kind obs.Kind) {}

func (k setSink) OnDrop(t sim.Time, from, to int, kind obs.Kind) {
	k.s.Trigger(t, from, "message-drop")
}

// OnSendCtx implements obs.CtxSink.
func (k setSink) OnSendCtx(t sim.Time, from, to int, kind obs.Kind, trace, span uint64) {
	tr := k.s.Tracer(from)
	if tr == nil {
		return
	}
	parent := Context{Trace: TraceID(trace), Span: SpanID(span)}
	tr.Record(t, t, parent, "send", to, obs.KindName(kind))
}
