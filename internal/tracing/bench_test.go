package tracing

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkTracingOff measures the disabled-tracing tax on the consensus
// hot path: the nil-tracer call shape Submit/pumpBatches/propose/apply
// make per command. It must stay at 0 allocs/op — tracing off is the
// default for every sim and bench run, so any regression here lands
// directly in the engine's steady-state numbers (compare FabricSendSteadyState
// and the consensus pipeline benches in BENCH_sweep.json across PRs).
func BenchmarkTracingOff(b *testing.B) {
	tr := Nop.Tracer(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := tr.StartTrace(sim.Time(i), "request")
		tr.Record(sim.Time(i), sim.Time(i+1), ctx, "queue", -1, "")
		child := tr.Start(sim.Time(i), ctx, "quorum")
		tr.Event(sim.Time(i), child, "accepted", 1)
		tr.End(sim.Time(i+1), child)
		tr.Mark(sim.Time(i), "leader-change", -1)
	}
}

// BenchmarkTracingSampledOut measures the enabled-but-not-sampled path:
// one shared atomic at ingress, nothing downstream.
func BenchmarkTracingSampledOut(b *testing.B) {
	s := New(Config{Procs: 1, SampleEvery: 1 << 40})
	tr := s.Tracer(0)
	tr.StartTrace(0, "request") // burn the first sampling decision
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := tr.StartTrace(sim.Time(i), "request")
		tr.Record(sim.Time(i), sim.Time(i+1), ctx, "queue", -1, "")
		tr.End(sim.Time(i+1), ctx)
	}
}

// BenchmarkTracingOn measures the full record path with the pooled span
// ring at steady state (the ring is full, so every push recycles).
func BenchmarkTracingOn(b *testing.B) {
	s := New(Config{Procs: 1})
	tr := s.Tracer(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := tr.StartTrace(sim.Time(i), "request")
		tr.Record(sim.Time(i), sim.Time(i+1), ctx, "queue", -1, "")
	}
}
