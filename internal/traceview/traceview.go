// Package traceview turns flight-recorder dumps (internal/tracing) from
// one or many processes into a single causally ordered timeline. It is
// the analysis half of the tracing layer: cmd/traceview is a thin CLI
// over this package.
//
// The pipeline is Load → (skew-correct) → BuildTraces / Requests /
// Elections:
//
//   - Load reads every dump, re-anchors each on its wall_start so dumps
//     from separate OS processes merge on absolute time, and dedupes
//     spans (ids embed the recording process, so a span evicted from one
//     dump survives via an earlier one).
//   - Skew correction uses the happens-before edges the dumps carry:
//     a wire "send" span on the sender and the receiver-side span it
//     caused share a parent, and the receive cannot precede the send.
//     Per-process offsets are relaxed until every such edge is causally
//     ordered; dumps from a single tracing.Set share one clock and get
//     zero offsets.
//   - Requests reconstructs request→queue→quorum→send/accept→apply
//     chains and their per-stage latency breakdown; Elections replays
//     leader-change/down/up marks through the same agreement state
//     machine telemetry.Collector uses, so the reconstructed downtime
//     intervals land in the same histogram buckets the live /metrics
//     endpoint reports.
package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/tracing"
)

// Merged is the deduped union of every loaded dump. All span times are
// nanoseconds since Base (the earliest wall anchor seen), after skew
// correction.
type Merged struct {
	Base    time.Time
	Procs   int
	Spans   []tracing.SpanJSON
	Dropped map[int]uint64 // per proc: spans evicted before any dump caught them
	Files   []string
	Offsets []int64 // per-proc skew correction applied, ns
}

// Load reads flight-recorder dumps from the given paths — directories
// are scanned for trace-*.json — and merges them.
func Load(paths ...string) (*Merged, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("traceview: %w", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		found, err := filepath.Glob(filepath.Join(p, "trace-*.json"))
		if err != nil {
			return nil, err
		}
		if len(found) == 0 {
			return nil, fmt.Errorf("traceview: no trace-*.json dumps under %s", p)
		}
		sort.Strings(found)
		files = append(files, found...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("traceview: no dump files given")
	}

	type stamped struct {
		dump tracing.Dump
		wall time.Time
	}
	dumps := make([]stamped, 0, len(files))
	base := time.Time{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("traceview: %w", err)
		}
		var d tracing.Dump
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("traceview: %s: %w", f, err)
		}
		wall, err := time.Parse(time.RFC3339Nano, d.WallStart)
		if err != nil {
			return nil, fmt.Errorf("traceview: %s: wall_start %q: %w", f, d.WallStart, err)
		}
		if base.IsZero() || wall.Before(base) {
			base = wall
		}
		dumps = append(dumps, stamped{d, wall})
	}

	m := &Merged{Base: base, Dropped: make(map[int]uint64), Files: files}
	// Dedupe on span id (ids embed the recording process, so they are
	// unique across the whole set). A closed record wins over an open
	// snapshot of the same span; among open snapshots the later dump —
	// more events — wins.
	best := make(map[uint64]tracing.SpanJSON)
	for _, st := range dumps {
		shift := st.wall.Sub(base).Nanoseconds()
		for _, pd := range st.dump.Procs {
			if pd.Proc+1 > m.Procs {
				m.Procs = pd.Proc + 1
			}
			if pd.Dropped > m.Dropped[pd.Proc] {
				m.Dropped[pd.Proc] = pd.Dropped
			}
			for _, sp := range pd.Spans {
				sp.StartNS += shift
				sp.EndNS += shift
				for i := range sp.Events {
					sp.Events[i].TNS += shift
				}
				cur, seen := best[sp.ID]
				switch {
				case !seen:
					best[sp.ID] = sp
				case cur.Open && !sp.Open:
					best[sp.ID] = sp
				case cur.Open && sp.Open && len(sp.Events) >= len(cur.Events):
					best[sp.ID] = sp
				}
			}
		}
	}
	m.Spans = make([]tracing.SpanJSON, 0, len(best))
	for _, sp := range best {
		m.Spans = append(m.Spans, sp)
	}
	m.correctSkew()
	sort.Slice(m.Spans, func(i, j int) bool {
		a, b := m.Spans[i], m.Spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.ID < b.ID
	})
	return m, nil
}

// correctSkew derives per-process clock offsets from send/receive
// happens-before edges and applies them. A "send" span (on the sender,
// zero-length, Peer = receiver) and the receiver-side span it caused
// share a Parent; the receive must not precede the send. Offsets are
// relaxed to the smallest values satisfying every edge, then normalized
// so the minimum is zero. Dumps from one tracing.Set share a clock and
// come out with all-zero offsets.
func (m *Merged) correctSkew() {
	m.Offsets = make([]int64, m.Procs)
	if m.Procs < 2 {
		return
	}
	byID := make(map[uint64]*tracing.SpanJSON, len(m.Spans))
	for i := range m.Spans {
		byID[m.Spans[i].ID] = &m.Spans[i]
	}
	type edge struct {
		from, to int
		lag      int64 // t_send - t_recv; recv'+off[to] >= send+off[from]
	}
	var edges []edge
	// Group receiver-side spans by parent, then match each send span to
	// the earliest span its peer recorded under the same parent.
	recv := make(map[uint64]map[int]int64) // parent -> proc -> earliest start
	for i := range m.Spans {
		sp := &m.Spans[i]
		if sp.Parent == 0 || sp.Name == "send" {
			continue
		}
		par, ok := byID[sp.Parent]
		if !ok || par.Proc == sp.Proc {
			continue
		}
		procs, ok := recv[sp.Parent]
		if !ok {
			procs = make(map[int]int64)
			recv[sp.Parent] = procs
		}
		if cur, ok := procs[sp.Proc]; !ok || sp.StartNS < cur {
			procs[sp.Proc] = sp.StartNS
		}
	}
	for i := range m.Spans {
		sp := &m.Spans[i]
		if sp.Name != "send" || sp.Peer < 0 || sp.Peer >= m.Procs {
			continue
		}
		if t, ok := recv[sp.Parent][sp.Peer]; ok {
			edges = append(edges, edge{from: sp.Proc, to: sp.Peer, lag: sp.StartNS - t})
		}
	}
	if len(edges) == 0 {
		return
	}
	// Bellman-Ford-style relaxation; procs is small, edges modest.
	for iter := 0; iter < m.Procs+1; iter++ {
		changed := false
		for _, e := range edges {
			if need := m.Offsets[e.from] + e.lag; need > m.Offsets[e.to] {
				m.Offsets[e.to] = need
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	min := m.Offsets[0]
	for _, o := range m.Offsets {
		if o < min {
			min = o
		}
	}
	any := false
	for i := range m.Offsets {
		m.Offsets[i] -= min
		if m.Offsets[i] != 0 {
			any = true
		}
	}
	if !any {
		return
	}
	for i := range m.Spans {
		sp := &m.Spans[i]
		off := m.Offsets[sp.Proc]
		sp.StartNS += off
		sp.EndNS += off
		for j := range sp.Events {
			sp.Events[j].TNS += off
		}
	}
}

// Trace is one causal tree: every span sharing a trace id, ordered by
// corrected start time.
type Trace struct {
	ID    uint64
	Root  *tracing.SpanJSON // nil when the root span was evicted
	Spans []tracing.SpanJSON
}

// BuildTraces groups spans into traces. Marks (parentless zero-length
// spans whose trace id is their own id and that have no children) are
// excluded — they are cluster events, not traces; see Elections.
func BuildTraces(m *Merged) []Trace {
	byTrace := make(map[uint64][]tracing.SpanJSON)
	for _, sp := range m.Spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	traces := make([]Trace, 0, len(byTrace))
	for id, spans := range byTrace {
		if len(spans) == 1 && isMark(spans[0]) {
			continue
		}
		tr := Trace{ID: id, Spans: spans}
		for i := range spans {
			if spans[i].ID == id && spans[i].Parent == 0 {
				tr.Root = &tr.Spans[i]
				break
			}
		}
		traces = append(traces, tr)
	}
	sort.Slice(traces, func(i, j int) bool {
		return traces[i].Spans[0].StartNS < traces[j].Spans[0].StartNS
	})
	return traces
}

func isMark(sp tracing.SpanJSON) bool {
	switch sp.Name {
	case "leader-change", "down", "up", "prepare", "prepared", "abdicate",
		"fallback-read", "fsync-slow":
		return true
	}
	return false
}

// Stages is the per-stage latency breakdown of one request: where the
// end-to-end time went.
type Stages struct {
	Queue  time.Duration // client batch enqueued → proposed
	Quorum time.Duration // ACCEPT broadcast → majority ACCEPTED (decide)
	Wire   time.Duration // leader send → follower accept, fastest link
	Apply  time.Duration // decide → state-machine apply
	Total  time.Duration // request ingress → last apply
}

// Request is one reconstructed request trace.
type Request struct {
	Trace    uint64
	Start    int64 // ns since Merged.Base
	Complete bool  // full request→queue→quorum→apply chain present
	Spans    int
	Stages   Stages
}

// Requests reconstructs every trace rooted at a "request" span. A
// request is Complete when the whole chain survived in the dumps: the
// root, at least one queue span, a closed quorum span, and an apply
// span.
func Requests(traces []Trace) []Request {
	var out []Request
	for _, tr := range traces {
		if tr.Root == nil || tr.Root.Name != "request" {
			continue
		}
		r := Request{Trace: tr.ID, Start: tr.Root.StartNS, Spans: len(tr.Spans)}
		var qFirst, qLast, quorumStart, quorumEnd, applyFirst, applyEnd int64 = -1, -1, -1, -1, -1, -1
		var quorumClosed bool
		sends := map[uint64][]tracing.SpanJSON{} // parent -> send spans
		recvs := map[uint64]map[int]int64{}      // parent -> proc -> earliest receiver span
		for _, sp := range tr.Spans {
			switch sp.Name {
			case "queue":
				if qFirst < 0 || sp.StartNS < qFirst {
					qFirst = sp.StartNS
				}
				if sp.EndNS > qLast {
					qLast = sp.EndNS
				}
			case "quorum":
				if quorumStart < 0 || sp.StartNS < quorumStart {
					quorumStart = sp.StartNS
				}
				if !sp.Open {
					quorumClosed = true
					if sp.EndNS > quorumEnd {
						quorumEnd = sp.EndNS
					}
				}
			case "apply":
				if applyFirst < 0 || sp.StartNS < applyFirst {
					applyFirst = sp.StartNS
				}
				if sp.EndNS > applyEnd {
					applyEnd = sp.EndNS
				}
			case "send":
				sends[sp.Parent] = append(sends[sp.Parent], sp)
			default:
			}
			if sp.Parent != 0 && sp.Name != "send" {
				procs, ok := recvs[sp.Parent]
				if !ok {
					procs = map[int]int64{}
					recvs[sp.Parent] = procs
				}
				if cur, ok := procs[sp.Proc]; !ok || sp.StartNS < cur {
					procs[sp.Proc] = sp.StartNS
				}
			}
		}
		if qFirst >= 0 && qLast > qFirst {
			r.Stages.Queue = time.Duration(qLast - qFirst)
		}
		if quorumClosed && quorumEnd > quorumStart {
			r.Stages.Quorum = time.Duration(quorumEnd - quorumStart)
		}
		wire := int64(-1)
		for parent, ss := range sends {
			for _, s := range ss {
				if t, ok := recvs[parent][s.Peer]; ok {
					if d := t - s.StartNS; d >= 0 && (wire < 0 || d < wire) {
						wire = d
					}
				}
			}
		}
		if wire >= 0 {
			r.Stages.Wire = time.Duration(wire)
		}
		if applyEnd > 0 {
			if applyFirst >= 0 && applyEnd > applyFirst {
				r.Stages.Apply = time.Duration(applyEnd - applyFirst)
			}
			r.Stages.Total = time.Duration(applyEnd - tr.Root.StartNS)
		}
		r.Complete = qFirst >= 0 && quorumClosed && applyEnd > 0
		out = append(out, r)
	}
	return out
}

// Interval is one downtime span: agreement broke (or the run started) at
// Start and re-formed at End, ns since Merged.Base. An open interval
// (End < 0) means agreement never re-formed before the dumps end.
type Interval struct {
	Start, End int64
	Leader     int // agreed leader once re-formed, -1 while open
}

// Duration returns the interval's length; open intervals measure to the
// given horizon.
func (iv Interval) Duration(horizon int64) time.Duration {
	if iv.End < 0 {
		return time.Duration(horizon - iv.Start)
	}
	return time.Duration(iv.End - iv.Start)
}

// Election is the reconstructed leader-election history.
type Election struct {
	Changes   int        // leader-change marks seen
	Elections int        // agreement formations (telemetry's elections counter)
	Intervals []Interval // downtime intervals, in time order
	Horizon   int64      // last mark's time, ns since Base
}

// Downtimes lists the interval durations — the values telemetry records
// into its election_downtime histogram.
func (e Election) Downtimes() []time.Duration {
	out := make([]time.Duration, 0, len(e.Intervals))
	for _, iv := range e.Intervals {
		if iv.End >= 0 {
			out = append(out, iv.Duration(e.Horizon))
		}
	}
	return out
}

// Elections replays the leader-change, down, and up marks through the
// agreement state machine telemetry.Collector.recomputeLocked implements:
// cluster-wide agreement holds when every live process outputs the same
// live leader; the run starts in downtime (the initial election counts,
// from time zero); a downtime interval runs from the instant agreement
// breaks to the instant it re-forms; an agreement that moves atomically
// between leaders is a zero-downtime election.
func Elections(m *Merged) Election {
	type mark struct {
		t    int64
		proc int
		name string
		peer int
	}
	var marks []mark
	for _, sp := range m.Spans {
		switch sp.Name {
		case "leader-change", "down", "up":
			marks = append(marks, mark{sp.StartNS, sp.Proc, sp.Name, sp.Peer})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].t != marks[j].t {
			return marks[i].t < marks[j].t
		}
		return marks[i].proc < marks[j].proc
	})

	el := Election{}
	leaders := make([]int, m.Procs)
	down := make([]bool, m.Procs)
	for i := range leaders {
		leaders[i] = -1
	}
	inDowntime := true
	var downSince int64
	stable := -1
	recompute := func(t int64) {
		leader, agreed := -1, true
		for p := 0; p < m.Procs; p++ {
			if down[p] {
				continue
			}
			if leaders[p] < 0 {
				agreed = false
				break
			}
			if leader < 0 {
				leader = leaders[p]
			} else if leaders[p] != leader {
				agreed = false
				break
			}
		}
		if leader < 0 || leader < m.Procs && down[leader] {
			agreed = false
		}
		switch {
		case agreed && inDowntime:
			inDowntime = false
			el.Intervals = append(el.Intervals, Interval{Start: downSince, End: t, Leader: leader})
			el.Elections++
			stable = leader
		case agreed && stable != leader:
			el.Intervals = append(el.Intervals, Interval{Start: t, End: t, Leader: leader})
			el.Elections++
			stable = leader
		case !agreed && !inDowntime:
			inDowntime = true
			downSince = t
			stable = -1
		}
	}
	for _, mk := range marks {
		if mk.proc < 0 || mk.proc >= m.Procs {
			continue
		}
		switch mk.name {
		case "leader-change":
			el.Changes++
			leaders[mk.proc] = mk.peer
		case "down":
			down[mk.proc] = true
		case "up":
			down[mk.proc] = false
			leaders[mk.proc] = -1
		}
		recompute(mk.t)
		if mk.t > el.Horizon {
			el.Horizon = mk.t
		}
	}
	if inDowntime {
		el.Intervals = append(el.Intervals, Interval{Start: downSince, End: -1, Leader: -1})
	}
	return el
}

// quantile returns the q-quantile of ds (nearest-rank), 0 when empty.
func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteSummary prints the merged view: request latency percentiles with
// per-stage breakdown, and the reconstructed election history.
func WriteSummary(w io.Writer, m *Merged, traces []Trace, reqs []Request, el Election) {
	fmt.Fprintf(w, "traceview: %d dumps, %d spans, %d procs", len(m.Files), len(m.Spans), m.Procs)
	var dropped uint64
	for _, d := range m.Dropped {
		dropped += d
	}
	if dropped > 0 {
		fmt.Fprintf(w, " (%d spans evicted before capture)", dropped)
	}
	maxOff := int64(0)
	for _, o := range m.Offsets {
		if o > maxOff {
			maxOff = o
		}
	}
	if maxOff > 0 {
		fmt.Fprintf(w, " skew<=%v", time.Duration(maxOff))
	}
	fmt.Fprintln(w)

	complete := 0
	var totals, queues, quorums, wires, applies []time.Duration
	for _, r := range reqs {
		if !r.Complete {
			continue
		}
		complete++
		totals = append(totals, r.Stages.Total)
		queues = append(queues, r.Stages.Queue)
		quorums = append(quorums, r.Stages.Quorum)
		wires = append(wires, r.Stages.Wire)
		applies = append(applies, r.Stages.Apply)
	}
	fmt.Fprintf(w, "requests:  %d traced, %d complete\n", len(reqs), complete)
	if complete > 0 {
		fmt.Fprintf(w, "latency:   total p50 %v p99 %v\n", quantile(totals, 0.50), quantile(totals, 0.99))
		fmt.Fprintf(w, "stages:    queue p50 %v p99 %v | quorum p50 %v p99 %v | wire p50 %v p99 %v | apply p50 %v p99 %v\n",
			quantile(queues, 0.50), quantile(queues, 0.99),
			quantile(quorums, 0.50), quantile(quorums, 0.99),
			quantile(wires, 0.50), quantile(wires, 0.99),
			quantile(applies, 0.50), quantile(applies, 0.99))
	}

	fmt.Fprintf(w, "election:  %d leader-change marks, %d agreements\n", el.Changes, el.Elections)
	for _, iv := range el.Intervals {
		if iv.End < 0 {
			fmt.Fprintf(w, "downtime:  [%v, …) OPEN — no agreement by the dumps' end\n", time.Duration(iv.Start))
			continue
		}
		fmt.Fprintf(w, "downtime:  [%v, %v] %v → leader p%d\n",
			time.Duration(iv.Start), time.Duration(iv.End), iv.Duration(el.Horizon), iv.Leader)
	}
}

// WriteTraceTree prints one trace as an indented, causally ordered tree.
func WriteTraceTree(w io.Writer, tr Trace) {
	children := make(map[uint64][]tracing.SpanJSON)
	var roots []tracing.SpanJSON
	byID := make(map[uint64]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = true
	}
	for _, sp := range tr.Spans {
		if sp.Parent != 0 && byID[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	order := func(ss []tracing.SpanJSON) {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartNS != ss[j].StartNS {
				return ss[i].StartNS < ss[j].StartNS
			}
			return ss[i].ID < ss[j].ID
		})
	}
	order(roots)
	fmt.Fprintf(w, "trace %016x (%d spans)\n", tr.ID, len(tr.Spans))
	var walk func(sp tracing.SpanJSON, depth int)
	walk = func(sp tracing.SpanJSON, depth int) {
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		state := ""
		if sp.Open {
			state = " OPEN"
		}
		note := ""
		if sp.Note != "" {
			note = " " + sp.Note
		}
		peer := ""
		if sp.Peer >= 0 {
			peer = fmt.Sprintf(" →p%d", sp.Peer)
		}
		fmt.Fprintf(w, "  %s%-9s p%d%s  +%v %v%s%s\n",
			indent, sp.Name, sp.Proc, peer,
			time.Duration(sp.StartNS), time.Duration(sp.EndNS-sp.StartNS), note, state)
		for _, e := range sp.Events {
			ep := ""
			if e.Peer >= 0 {
				ep = fmt.Sprintf(" p%d", e.Peer)
			}
			fmt.Fprintf(w, "  %s  · %s%s +%v\n", indent, e.Name, ep, time.Duration(e.TNS))
		}
		cs := children[sp.ID]
		order(cs)
		for _, c := range cs {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// WriteChrome emits the merged spans as Chrome trace_event JSON
// (chrome://tracing, Perfetto). Completed spans become "X" events,
// zero-length marks and span events become instants; pid/tid is the
// recording process.
func WriteChrome(w io.Writer, m *Merged) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"` // microseconds
		Dur   float64        `json:"dur,omitempty"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Scope string         `json:"s,omitempty"`
		Args  map[string]any `json:"args,omitempty"`
	}
	var events []chromeEvent
	for _, sp := range m.Spans {
		args := map[string]any{"trace": fmt.Sprintf("%016x", sp.Trace)}
		if sp.Note != "" {
			args["note"] = sp.Note
		}
		if sp.Peer >= 0 {
			args["peer"] = sp.Peer
		}
		cat := "span"
		if isMark(sp) {
			cat = "mark"
		}
		if sp.EndNS > sp.StartNS {
			events = append(events, chromeEvent{
				Name: sp.Name, Cat: cat, Phase: "X",
				TS: float64(sp.StartNS) / 1e3, Dur: float64(sp.EndNS-sp.StartNS) / 1e3,
				PID: sp.Proc, TID: sp.Proc, Args: args,
			})
		} else {
			events = append(events, chromeEvent{
				Name: sp.Name, Cat: cat, Phase: "i", Scope: "p",
				TS: float64(sp.StartNS) / 1e3, PID: sp.Proc, TID: sp.Proc, Args: args,
			})
		}
		for _, e := range sp.Events {
			events = append(events, chromeEvent{
				Name: sp.Name + ":" + e.Name, Cat: "event", Phase: "i", Scope: "t",
				TS: float64(e.TNS) / 1e3, PID: sp.Proc, TID: sp.Proc,
				Args: map[string]any{"peer": e.Peer},
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}{
		TraceEvents: events,
		Metadata: map[string]any{
			"wall_start": m.Base.UTC().Format(time.RFC3339Nano),
			"dumps":      len(m.Files),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
