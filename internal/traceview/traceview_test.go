package traceview

import (
	"bytes"
	"math/bits"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// record builds a full request chain on a live tracing.Set the way the
// consensus stack does: client root, queue, quorum with per-link sends,
// follower accepts, decide, apply.
func recordRequest(s *tracing.Set, at sim.Time) tracing.Context {
	leader, follower := s.Tracer(0), s.Tracer(1)
	root := follower.StartTrace(at, "request")
	leader.Record(at+10, at+30, root, "queue", -1, "")
	q := leader.Start(at+30, root, "quorum")
	leader.Record(at+31, at+31, q, "send", 1, "ACCEPT")
	leader.Record(at+31, at+31, q, "send", 2, "ACCEPT")
	follower.Record(at+45, at+45, q, "accept", 0, "")
	leader.Event(at+60, q, "accepted", 1)
	leader.End(at+60, q)
	leader.Record(at+60, at+70, root, "apply", -1, "")
	return root
}

func TestLoadMergeAndRequestStages(t *testing.T) {
	dir := t.TempDir()
	s := tracing.New(tracing.Config{Procs: 3, Dir: dir})
	root := recordRequest(s, 1000)
	s.Trigger(2000, 0, "leader-change") // mid-run dump: same spans twice on disk
	if _, err := s.Final(); err != nil {
		t.Fatal(err)
	}

	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 2 || m.Procs != 3 {
		t.Fatalf("files=%d procs=%d", len(m.Files), m.Procs)
	}
	// Dedupe: the chain appears once despite two dumps retaining it.
	traces := BuildTraces(m)
	if len(traces) != 1 || traces[0].ID != uint64(root.Trace) {
		t.Fatalf("traces = %+v", traces)
	}
	if got, want := len(traces[0].Spans), 7; got != want {
		t.Fatalf("spans = %d, want %d (deduped chain)", got, want)
	}
	reqs := Requests(traces)
	if len(reqs) != 1 || !reqs[0].Complete {
		t.Fatalf("requests = %+v", reqs)
	}
	st := reqs[0].Stages
	if st.Queue != 20 || st.Quorum != 30 || st.Apply != 10 {
		t.Fatalf("stages = %+v", st)
	}
	// Wire: leader's send to p1 at +31, follower's accept at +45.
	if st.Wire != 14 {
		t.Fatalf("wire = %v, want 14ns", st.Wire)
	}
	// Total: client ingress (+0 at root start 1000) to apply end 1070.
	if st.Total != 70 {
		t.Fatalf("total = %v, want 70ns", st.Total)
	}
}

func TestIncompleteRequestFlagged(t *testing.T) {
	dir := t.TempDir()
	s := tracing.New(tracing.Config{Procs: 2, Dir: dir})
	tr := s.Tracer(0)
	root := tr.StartTrace(1, "request")
	tr.Record(2, 3, root, "queue", -1, "")
	tr.Start(3, root, "quorum") // never decided: stays open
	if _, err := s.Final(); err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requests(BuildTraces(m))
	if len(reqs) != 1 || reqs[0].Complete {
		t.Fatalf("requests = %+v, want one incomplete", reqs)
	}
}

func TestSkewCorrectionOrdersSendBeforeReceive(t *testing.T) {
	// Two dumps, same wall anchor, but the receiver's clock runs 500ns
	// behind: its accept lands "before" the leader's send. The parent
	// quorum span lives on proc 0; the accept on proc 1 must be shifted
	// forward until the edge is causal.
	dir := t.TempDir()
	wall := time.Unix(0, 0).UTC().Format(time.RFC3339Nano)
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("trace-001-final.json", `{"reason":"final","wall_start":"`+wall+`","at_ns":0,"proc":-1,"procs":[
	 {"proc":0,"dropped":0,"spans":[
	   {"trace":10,"id":10,"name":"request","proc":0,"peer":-1,"start_ns":100,"end_ns":100},
	   {"trace":10,"id":11,"parent":10,"name":"quorum","proc":0,"peer":-1,"start_ns":200,"end_ns":900},
	   {"trace":10,"id":12,"parent":11,"name":"send","proc":0,"peer":1,"start_ns":300,"end_ns":300,"note":"ACCEPT"}]},
	 {"proc":1,"dropped":0,"spans":[
	   {"trace":10,"id":281474976710657,"parent":11,"name":"accept","proc":1,"peer":0,"start_ns":-200,"end_ns":-200}]}]}`)
	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offsets[1] != 500 {
		t.Fatalf("offsets = %v, want p1 shifted +500", m.Offsets)
	}
	for _, sp := range m.Spans {
		if sp.Name == "accept" && sp.StartNS != 300 {
			t.Fatalf("accept at %d, want clamped to send time 300", sp.StartNS)
		}
	}
}

// leaderEvent is one synthetic cluster transition fed identically to
// telemetry and tracing.
type leaderEvent struct {
	t      sim.Time
	proc   int
	kind   string // "leader", "down", "up"
	leader node.ID
}

// TestElectionsMatchTelemetryWithinOneBucket is the acceptance check:
// the same leader-crash event stream feeds telemetry.Collector (via
// detector.History and MarkDown/MarkUp, exactly as chaossoak wires it)
// and the tracing flight recorder; traceview's reconstructed downtime
// intervals must land within one power-of-two bucket of telemetry's
// election_downtime histogram.
func TestElectionsMatchTelemetryWithinOneBucket(t *testing.T) {
	const n = 3
	dir := t.TempDir()

	var clock sim.Time
	tel := telemetry.New(n)
	tel.SetClock(func() sim.Time { return clock })
	set := tracing.New(tracing.Config{Procs: n, Dir: dir})
	hists := make([]*detector.History, n)
	for i := 0; i < n; i++ {
		hists[i] = detector.NewHistory()
		tel.WatchOmega(node.ID(i), hists[i])
		hists[i].AddNotify(set.WatchLeader(i)) // after WatchOmega: SetNotify replaces
	}

	ms := func(d int) sim.Time { return sim.Time(d) * sim.Time(time.Millisecond) }
	events := []leaderEvent{
		// Initial election: everyone converges on p2 by 30ms.
		{ms(10), 0, "leader", 2},
		{ms(20), 1, "leader", 2},
		{ms(30), 2, "leader", 2},
		// Leader p2 crashes at 100ms; survivors re-elect p0 by 147ms.
		{ms(100), 2, "down", 0},
		{ms(120), 0, "leader", 0},
		{ms(147), 1, "leader", 0},
		// p2 restarts at 200ms and converges at 260ms.
		{ms(200), 2, "up", 0},
		{ms(260), 2, "leader", 0},
	}
	for _, e := range events {
		clock = e.t
		switch e.kind {
		case "leader":
			hists[e.proc].Record(e.t, e.leader)
		case "down":
			tel.MarkDown(node.ID(e.proc))
			// Set.MarkDown stamps wall time; this synthetic run drives a
			// virtual clock, so record the mark with an explicit stamp
			// (the same span MarkDown writes).
			set.Tracer(e.proc).Mark(e.t, "down", -1)
		case "up":
			tel.MarkUp(node.ID(e.proc))
			set.Tracer(e.proc).Mark(e.t, "up", -1)
		}
	}
	if _, err := set.Final(); err != nil {
		t.Fatal(err)
	}

	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	el := Elections(m)
	down := el.Downtimes()
	// Expected: initial [0,30ms], crash [100,147ms], re-join [200,260ms].
	if el.Elections != 3 || len(down) != 3 {
		t.Fatalf("elections = %d, downtimes = %v", el.Elections, down)
	}

	snap := tel.ElectionDowntime()
	if snap.Count != uint64(len(down)) {
		t.Fatalf("telemetry count %d, traceview %d", snap.Count, len(down))
	}
	bucketOf := func(d time.Duration) int {
		if d <= 0 {
			return 0
		}
		return bits.Len64(uint64(d))
	}
	var got [telemetry.HistBuckets]uint64
	for _, d := range down {
		got[bucketOf(d)]++
	}
	for b := 0; b < telemetry.HistBuckets; b++ {
		lo, hi := b-1, b+1
		if lo < 0 {
			lo = 0
		}
		if hi >= telemetry.HistBuckets {
			hi = telemetry.HistBuckets - 1
		}
		var want uint64
		for k := lo; k <= hi; k++ {
			want += snap.Buckets[k]
		}
		if got[b] > 0 && want == 0 {
			t.Fatalf("traceview downtime in bucket %d; telemetry has none within one bucket (telemetry %v, traceview %v)",
				b, snap.Buckets[:40], got[:40])
		}
	}
	// And the totals agree to the nanosecond here: one shared clock.
	var total time.Duration
	for _, d := range down {
		total += d
	}
	if total != snap.Sum {
		t.Fatalf("downtime sum: traceview %v, telemetry %v", total, snap.Sum)
	}
}

func TestWriteChromeAndSummary(t *testing.T) {
	dir := t.TempDir()
	s := tracing.New(tracing.Config{Procs: 3, Dir: dir})
	recordRequest(s, 500)
	s.Tracer(0).Mark(100, "leader-change", 0)
	s.Tracer(1).Mark(110, "leader-change", 0)
	s.Tracer(2).Mark(120, "leader-change", 0)
	if _, err := s.Final(); err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	traces := BuildTraces(m)
	reqs := Requests(traces)
	el := Elections(m)
	if el.Changes != 3 || el.Elections != 1 {
		t.Fatalf("election = %+v", el)
	}

	var sum bytes.Buffer
	WriteSummary(&sum, m, traces, reqs, el)
	for _, want := range []string{"1 traced, 1 complete", "leader p0"} {
		if !bytes.Contains(sum.Bytes(), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
	var tree bytes.Buffer
	WriteTraceTree(&tree, traces[0])
	for _, want := range []string{"request", "quorum", "accepted", "apply"} {
		if !bytes.Contains(tree.Bytes(), []byte(want)) {
			t.Fatalf("tree missing %q:\n%s", want, tree.String())
		}
	}
	var ch bytes.Buffer
	if err := WriteChrome(&ch, m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"ph":"i"`, `"name":"quorum:accepted"`} {
		if !bytes.Contains(ch.Bytes(), []byte(want)) {
			t.Fatalf("chrome output missing %q", want)
		}
	}
}
