package obs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestInternIsStableAndDense(t *testing.T) {
	a := Intern("obs-test-alpha")
	b := Intern("obs-test-beta")
	if a == b {
		t.Fatal("distinct names interned to the same id")
	}
	if got := Intern("obs-test-alpha"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	if KindName(a) != "obs-test-alpha" || KindName(b) != "obs-test-beta" {
		t.Fatalf("KindName round-trip failed: %q %q", KindName(a), KindName(b))
	}
	if k, ok := Lookup("obs-test-alpha"); !ok || k != a {
		t.Fatalf("Lookup = %d,%v", k, ok)
	}
	if _, ok := Lookup("obs-test-never-interned"); ok {
		t.Fatal("Lookup invented an id")
	}
}

func TestInternConcurrent(t *testing.T) {
	const goroutines = 8
	const names = 20
	var wg sync.WaitGroup
	got := make([][]Kind, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[g] = make([]Kind, names)
			for i := 0; i < names; i++ {
				got[g][i] = Intern(fmt.Sprintf("obs-test-conc-%d", i))
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < names; i++ {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d interned %q to %d, goroutine 0 to %d",
					g, fmt.Sprintf("obs-test-conc-%d", i), got[g][i], got[0][i])
			}
		}
	}
}

// countingSink tallies calls for Tee tests.
type countingSink struct{ sends, delivers, drops int }

func (c *countingSink) OnSend(sim.Time, int, int, Kind)    { c.sends++ }
func (c *countingSink) OnDeliver(sim.Time, int, int, Kind) { c.delivers++ }
func (c *countingSink) OnDrop(sim.Time, int, int, Kind)    { c.drops++ }

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	a, b := &countingSink{}, &countingSink{}
	s := Tee(nil, a, nil, b)
	s.OnSend(1, 0, 1, 0)
	s.OnSend(2, 0, 1, 0)
	s.OnDeliver(3, 0, 1, 0)
	s.OnDrop(4, 0, 1, 0)
	for _, c := range []*countingSink{a, b} {
		if c.sends != 2 || c.delivers != 1 || c.drops != 1 {
			t.Fatalf("sink saw %+v", *c)
		}
	}
}

func TestTeeDegenerateCases(t *testing.T) {
	if _, ok := Tee().(Nop); !ok {
		t.Fatal("empty Tee is not a Nop")
	}
	if _, ok := Tee(nil, nil).(Nop); !ok {
		t.Fatal("all-nil Tee is not a Nop")
	}
	a := &countingSink{}
	if got := Tee(nil, a); got != Sink(a) {
		t.Fatal("single-sink Tee did not unwrap")
	}
}
