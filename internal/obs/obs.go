// Package obs defines the observer pipeline shared by the deterministic
// simulator and the live transports: a single Sink interface through which
// every message event (send, deliver, drop) is reported, with message
// kinds pre-interned to small integer IDs so the hot path never hashes
// strings or takes a global lock.
//
// The simulator's network.Fabric and the live clusters in
// internal/transport all report through a Sink; metrics.MessageStats and
// the trace log are Sink implementations, and Tee composes several
// observers into one. This is what lets sim and live runs share one
// instrumentation stack.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Kind identifies an interned message kind. IDs are process-global and
// assigned in first-Intern order; they are dense, so observers can index
// arrays by Kind.
type Kind uint16

// MaxKinds bounds the kind space. Message kinds are registered by
// protocols at assembly time (the whole repository defines a few dozen),
// so the bound exists only to let observers use fixed-size arrays.
const MaxKinds = 256

// kindTable is an immutable snapshot of the interner; lookups load it with
// a single atomic read, so the read path is contention-free.
type kindTable struct {
	byName map[string]Kind
	names  []string
}

var (
	internMu sync.Mutex
	kinds    atomic.Pointer[kindTable]
)

func init() {
	kinds.Store(&kindTable{byName: map[string]Kind{}})
}

// Intern returns the ID for a kind name, assigning one on first use.
// Lookups of known names are lock-free.
func Intern(name string) Kind {
	if k, ok := kinds.Load().byName[name]; ok {
		return k
	}
	internMu.Lock()
	defer internMu.Unlock()
	t := kinds.Load()
	if k, ok := t.byName[name]; ok {
		return k
	}
	if len(t.names) >= MaxKinds {
		panic(fmt.Sprintf("obs: more than %d message kinds (interning %q)", MaxKinds, name))
	}
	next := &kindTable{
		byName: make(map[string]Kind, len(t.byName)+1),
		names:  append(append(make([]string, 0, len(t.names)+1), t.names...), name),
	}
	for n, k := range t.byName {
		next.byName[n] = k
	}
	k := Kind(len(t.names))
	next.byName[name] = k
	kinds.Store(next)
	return k
}

// Lookup returns the ID for a kind name without interning it.
func Lookup(name string) (Kind, bool) {
	k, ok := kinds.Load().byName[name]
	return k, ok
}

// KindName returns the name interned for k.
func KindName(k Kind) string {
	t := kinds.Load()
	if int(k) < len(t.names) {
		return t.names[k]
	}
	return fmt.Sprintf("KIND(%d)", uint16(k))
}

// NumKinds returns how many kinds have been interned so far.
func NumKinds() int { return len(kinds.Load().names) }

// Sink observes message-level events. Implementations must be safe for
// concurrent use: the live transports report from one goroutine per
// process plus delivery callbacks.
type Sink interface {
	// OnSend reports that from handed a message of the given kind to the
	// from→to link at t.
	OnSend(t sim.Time, from, to int, kind Kind)
	// OnDeliver reports that a message arrived at to.
	OnDeliver(t sim.Time, from, to int, kind Kind)
	// OnDrop reports that the from→to link lost a message.
	OnDrop(t sim.Time, from, to int, kind Kind)
}

// ByteSink is an optional extension of Sink for observers that account
// bytes on the wire. Transports that serialize messages report each
// frame's encoded size (as handed to the link, length prefixes included)
// alongside the OnSend event. Implementations must be safe for concurrent
// use, like Sink.
type ByteSink interface {
	// OnWireBytes reports that the from→to link was handed n encoded
	// bytes for one message of the given kind at t.
	OnWireBytes(t sim.Time, from, to int, kind Kind, n int)
}

// Bytes returns s's byte-accounting extension, or nil when s does not
// implement it. Callers hold the result so the hot path pays one nil
// check per message instead of a type assertion.
func Bytes(s Sink) ByteSink {
	if bs, ok := s.(ByteSink); ok {
		return bs
	}
	return nil
}

// CtxSink is an optional extension of Sink for observers that consume
// causal trace contexts (internal/tracing). Transports report each send
// of a context-carrying message (node.Traced with a nonzero trace id)
// through OnSendCtx alongside the ordinary OnSend event. Implementations
// must be safe for concurrent use, like Sink.
type CtxSink interface {
	// OnSendCtx reports that from handed a traced message of the given
	// kind to the from→to link at t, under the (trace, span) context.
	OnSendCtx(t sim.Time, from, to int, kind Kind, trace, span uint64)
}

// Ctx returns s's trace-context extension, or nil when s does not
// implement it — same holding pattern as Bytes: one nil check per
// message on the hot path, and a nil result makes the per-send type
// assertion on the message itself unnecessary too.
func Ctx(s Sink) CtxSink {
	if cs, ok := s.(CtxSink); ok {
		return cs
	}
	return nil
}

// Nop is a Sink that discards everything.
type Nop struct{}

// OnSend implements Sink.
func (Nop) OnSend(sim.Time, int, int, Kind) {}

// OnDeliver implements Sink.
func (Nop) OnDeliver(sim.Time, int, int, Kind) {}

// OnDrop implements Sink.
func (Nop) OnDrop(sim.Time, int, int, Kind) {}

// multi fans events out to several sinks in order.
type multi []Sink

func (m multi) OnSend(t sim.Time, from, to int, kind Kind) {
	for _, s := range m {
		s.OnSend(t, from, to, kind)
	}
}

func (m multi) OnDeliver(t sim.Time, from, to int, kind Kind) {
	for _, s := range m {
		s.OnDeliver(t, from, to, kind)
	}
}

func (m multi) OnDrop(t sim.Time, from, to int, kind Kind) {
	for _, s := range m {
		s.OnDrop(t, from, to, kind)
	}
}

// OnWireBytes implements ByteSink, forwarding to every member that
// accounts bytes. A multi always presents the extension; members that
// lack it are skipped.
func (m multi) OnWireBytes(t sim.Time, from, to int, kind Kind, n int) {
	for _, s := range m {
		if bs, ok := s.(ByteSink); ok {
			bs.OnWireBytes(t, from, to, kind, n)
		}
	}
}

// OnSendCtx implements CtxSink, forwarding to every member that consumes
// trace contexts. Like OnWireBytes, a multi always presents the
// extension and skips members that lack it.
func (m multi) OnSendCtx(t sim.Time, from, to int, kind Kind, trace, span uint64) {
	for _, s := range m {
		if cs, ok := s.(CtxSink); ok {
			cs.OnSendCtx(t, from, to, kind, trace, span)
		}
	}
}

// Tee composes sinks into one, skipping nils. Zero live sinks yield a Nop,
// one is returned unwrapped, several fan out in argument order.
func Tee(sinks ...Sink) Sink {
	live := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return live
}
