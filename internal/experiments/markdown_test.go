package experiments

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Note: "a note",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "with|pipe"}},
	}
	md := tab.Markdown()
	for _, want := range []string{"## EX — demo", "a note", "| a | b |", "| --- | --- |", "with\\|pipe"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown %q missing %q", md, want)
		}
	}
}

func TestSeriesMarkdown(t *testing.T) {
	s := Series{
		ID: "EY", Title: "curve", XLabel: "t",
		Names: []string{"c1", "c2"},
		X:     []float64{0, 5},
		Y:     [][]float64{{1, 2}, {3, 4}},
	}
	md := s.Markdown()
	for _, want := range []string{"## EY — curve", "| t | c1 | c2 |", "| 0 | 1.0 | 3.0 |", "| 5 | 2.0 | 4.0 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown %q missing %q", md, want)
		}
	}
}

func TestRunAllMarkdownQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite")
	}
	var b strings.Builder
	if err := RunAllMarkdown(&b, Opts{Quick: true, Seeds: 1}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"## E1", "## E5", "## E13"} {
		if !strings.Contains(out, id) {
			t.Fatalf("markdown suite missing %s", id)
		}
	}
}
