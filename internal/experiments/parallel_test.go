package experiments

import (
	"bytes"
	"testing"
)

// TestRunAllMarkdownWorkerDeterminism is the sweep engine's acceptance
// test: the full markdown suite rendered with one worker must be
// byte-identical to the same suite fanned across several workers. A fixed
// worker count (not GOMAXPROCS) keeps the concurrent merge path exercised
// even on single-core machines.
func TestRunAllMarkdownWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	o := Opts{Quick: true}

	var seq bytes.Buffer
	o.Workers = 1
	if err := RunAllMarkdown(&seq, o); err != nil {
		t.Fatalf("sequential run: %v", err)
	}

	var par bytes.Buffer
	o.Workers = 4
	if err := RunAllMarkdown(&par, o); err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		i := 0
		for i < len(seq.Bytes()) && i < len(par.Bytes()) && seq.Bytes()[i] == par.Bytes()[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) []byte {
			if hi > len(b) {
				return b[lo:]
			}
			return b[lo:hi]
		}
		t.Fatalf("parallel output diverges from sequential at byte %d:\nseq: %q\npar: %q",
			i, clip(seq.Bytes()), clip(par.Bytes()))
	}
}
