package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// E11FSourceBoundary regenerates Table 7: an empirical map of the
// ◊-f-source concept from the paper's line of work. The source process has
// eventually timely links to only its first k peers (in id order); every
// other link in the system is fair-lossy. We sweep k from 0 (no timely
// links at all) to n−1 (a full ◊-source) and report how often the core
// algorithm stabilizes.
//
// Expected shape: reliability degrades as k shrinks — processes outside
// the source's timely fan keep accusing whoever leads, so leadership
// churns. A full ◊-source (k = n−1) matches E8's source column; small k
// approaches the all-fair-lossy regime where nothing is guaranteed.
func E11FSourceBoundary(o Opts) Table {
	o.fill()
	const n = 5
	horizon := 60 * time.Second
	if o.Quick {
		horizon = 25 * time.Second
	}
	t := Table{
		ID:    "E11",
		Title: "◊-f-source boundary: timely links from the source vs stabilization (Table 7)",
		Note: fmt.Sprintf("n=%d, source=p%d with timely links to its first k peers; all other links fair-lossy (drop 0.3); horizon %v, %d seeds",
			n, n-1, horizon, o.Seeds),
		Columns: []string{"k (timely out-links)", "Ω holds", "mean leader changes", "mean msgs/η (tail)"},
	}
	ks := make([]int, n)
	for k := range ks {
		ks[k] = k
	}
	type run struct {
		holds   bool
		changes int
		rate    float64
	}
	res := sweepCells(o, ks, func(k, seed int) run {
		h, ch, rate := fSourceRun(n, k, int64(seed), horizon)
		return run{holds: h, changes: ch, rate: rate}
	})
	for ki, k := range ks {
		holds := 0
		var changes, rates []float64
		for _, r := range res[ki] {
			if r.holds {
				holds++
			}
			changes = append(changes, float64(r.changes))
			rates = append(rates, r.rate)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d/%d", holds, o.Seeds),
			fmt.Sprintf("%.0f", mean(changes)),
			fmt.Sprintf("%.1f", mean(rates)),
		})
	}
	return t
}

// fSourceRun executes one E11 cell: source p(n-1) gets timely links to its
// first k peers, the rest of the world is fair-lossy.
func fSourceRun(n, k int, seed int64, horizon time.Duration) (holds bool, changes int, msgsPerEta float64) {
	w, err := node.NewWorld(node.WorldConfig{
		N: n, Seed: seed,
		DefaultLink: network.FairLossy(2*time.Millisecond, 40*time.Millisecond, 0.3),
	})
	if err != nil {
		panic(err)
	}
	src := n - 1
	for peer := 0; peer < k; peer++ {
		if err := w.Fabric.SetProfile(src, peer, network.Timely(2*time.Millisecond)); err != nil {
			panic(err)
		}
	}
	dets := make([]*core.Detector, n)
	for i := range dets {
		dets[i] = core.New(core.WithEta(Eta))
		w.SetAutomaton(node.ID(i), dets[i])
	}
	w.Start()
	w.RunUntil(sim.At(horizon), nil)

	tailStart := sim.At(horizon * 3 / 4)
	leader := dets[0].Leader()
	agree := true
	lastChange := sim.TimeZero
	for _, d := range dets {
		changes += d.History().NumChanges()
		if d.Leader() != leader {
			agree = false
		}
		if at, _ := d.History().StableSince(); at > lastChange {
			lastChange = at
		}
	}
	holds = agree && lastChange <= tailStart
	msgsPerEta = float64(w.Stats.Snapshot().MessagesInWindow(tailStart, sim.At(horizon))) /
		(float64(horizon/4) / float64(Eta))
	return holds, changes, msgsPerEta
}
