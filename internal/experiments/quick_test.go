package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These are smoke-and-shape tests for the experiment drivers not covered
// elsewhere, run at Quick scale.

func TestE3StabilizationGrowsWithGST(t *testing.T) {
	tab := E3StabilizationVsGST(Opts{Quick: true, Seeds: 2})
	// For the core algorithm, mean stabilization at the largest GST must
	// exceed the one at GST=0.
	var first, last float64
	for _, row := range tab.Rows {
		if row[1] != "core" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "η"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if first == 0 && row[0] == "0" {
			first = v + 1 // avoid 0 sentinel
		}
		last = v
	}
	if last <= first {
		t.Fatalf("stabilization did not grow with GST: first=%v last=%v", first, last)
	}
	// Every cell converged.
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[4], "/2") || !strings.HasPrefix(row[4], "2") {
			t.Fatalf("cell %v did not converge in all seeds", row)
		}
	}
}

func TestE4RecoveryLatencyBounded(t *testing.T) {
	tab := E4CrashRecovery(Opts{Quick: true, Seeds: 2})
	for _, row := range tab.Rows {
		if row[4] == "FAILED" {
			t.Fatalf("row %v failed to re-elect", row)
		}
		lat, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "ms"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		// Re-election is governed by the ~30ms base timeout, far below
		// 100ms for every algorithm and size.
		if lat <= 0 || lat > 100 {
			t.Fatalf("row %v: latency %vms out of range", row, lat)
		}
	}
}

func TestE12PiggybackWinsOnlyStreaming(t *testing.T) {
	tab := E12PiggybackAblation(Opts{Quick: true, Seeds: 1})
	cells := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		cells[row[0]+"/"+row[1]] = v
	}
	if !(cells["streaming/piggyback"] < cells["streaming/plain"]) {
		t.Fatalf("piggyback no cheaper under streaming: %v", cells)
	}
	if cells["streaming/piggyback"] > 10.5 {
		t.Fatalf("streaming piggyback = %v msgs/cmd, want ≈ 8", cells["streaming/piggyback"])
	}
}

func TestE13RebuffRepairsPartition(t *testing.T) {
	tab := E13PartitionHeal(Opts{Quick: true, Seeds: 1})
	byAlgo := map[string][]string{}
	for _, row := range tab.Rows {
		byAlgo[row[0]] = row
	}
	if byAlgo["core"][1] != "no" {
		t.Fatalf("base core unexpectedly recovered: %v", byAlgo["core"])
	}
	if byAlgo["core-rebuff"][1] != "yes" || byAlgo["core-rebuff"][2] != "1" {
		t.Fatalf("rebuff did not repair: %v", byAlgo["core-rebuff"])
	}
}
