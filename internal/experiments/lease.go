package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
)

// readKinds is every message kind the read path can generate on top of
// the write-path rsmKinds: the read request/reply hops plus the lease
// maintenance traffic. E14 charges reads with all of it — the
// zero-message claim has to survive its own bookkeeping.
var readKinds = []string{
	rsm.KindLeaseGrant, rsm.KindLeaseAck, rsm.KindReadReq, rsm.KindReadReply,
}

// E14LeaseReads measures the read path with and without the leader
// lease. With a lease, a read at the leader is answered from the applied
// prefix — zero messages, zero log instances; a follower read costs one
// forward and one reply. Without a lease every read rides a no-op
// barrier through phase 2, so the per-read cost collapses only as far as
// barrier coalescing allows and each barrier burns a log instance.
func E14LeaseReads(o Opts) Table {
	o.fill()
	const n = 5
	reads := 100
	if o.Quick {
		reads = 40
	}
	t := Table{
		ID:    "E14",
		Title: "leader-lease local reads vs no-op read barriers",
		Note: fmt.Sprintf("n=%d, %d reads in bursts of 10 every 30ms after a settled write; msgs/read counts read+lease traffic; instances = log slots consumed by the read series",
			n, reads),
		Columns: []string{"variant", "origin", "msgs/read", "instances", "local", "fallback"},
	}
	type cell struct {
		lease  time.Duration
		origin int // node issuing the reads: 0 = leader, 1 = follower
	}
	cells := []cell{
		{lease: 500 * time.Millisecond, origin: 0},
		{lease: 500 * time.Millisecond, origin: 1},
		{lease: 0, origin: 0},
		{lease: 0, origin: 1},
	}
	type run struct {
		perRead         float64
		instances       int
		local, fallback uint64
	}
	res := sweepEach(o, cells, func(c cell) run {
		perRead, instances, local, fallback := leaseReadRun(n, reads, c.lease, c.origin)
		return run{perRead: perRead, instances: instances, local: local, fallback: fallback}
	})
	for ci, c := range cells {
		variant := "lease"
		if c.lease == 0 {
			variant = "barrier"
		}
		origin := "leader"
		if c.origin != 0 {
			origin = "follower"
		}
		t.Rows = append(t.Rows, []string{
			variant, origin,
			fmt.Sprintf("%.2f", res[ci].perRead),
			fmt.Sprintf("%d", res[ci].instances),
			fmt.Sprintf("%d", res[ci].local),
			fmt.Sprintf("%d", res[ci].fallback),
		})
	}
	return t
}

// leaseReadRun executes one E14 cell and returns the read-series message
// cost, the log instances the series consumed, and the local/fallback
// split at the leader.
func leaseReadRun(n, reads int, lease time.Duration, origin int) (perRead float64, instances int, local, fallback uint64) {
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: 41, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		panic(err)
	}
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(Eta))
		logs[i] = rsm.New(det, rsm.Config{Lease: lease})
		w.SetAutomaton(node.ID(i), node.Compose(det, logs[i]))
	}
	answered := 0
	logs[origin].OnReadReply(func(m rsm.ReadReplyMsg) { answered += int(m.Count) })
	w.Start()
	w.RunFor(500 * time.Millisecond)
	logs[0].Submit(consensus.Value("seed-write"))
	w.RunFor(500 * time.Millisecond)

	msgsBefore := kindTotal(w, rsmKinds) + kindTotal(w, readKinds)
	gapBefore := logs[0].FirstGap()
	seq := uint64(1)
	for issued := 0; issued < reads; {
		burst := 10
		if burst > reads-issued {
			burst = reads - issued
		}
		for i := 0; i < burst; i++ {
			logs[origin].Read(seq, 1)
			seq++
		}
		issued += burst
		w.RunFor(30 * time.Millisecond)
	}
	w.RunFor(time.Second)
	if answered != reads {
		panic(fmt.Sprintf("E14: %d of %d reads answered (lease=%v origin=%d)", answered, reads, lease, origin))
	}
	msgs := kindTotal(w, rsmKinds) + kindTotal(w, readKinds) - msgsBefore
	return float64(msgs) / float64(reads), logs[0].FirstGap() - gapBefore,
		logs[0].LocalReads(), logs[0].FallbackReads()
}
