package experiments

import (
	"fmt"
	"io"
)

// Renderable is anything the suite can print (Table or Series).
type Renderable interface {
	Render() string
}

// Item names one experiment of the suite.
type Item struct {
	ID   string
	Name string
	Run  func(Opts) Renderable
}

// Suite lists every experiment in DESIGN.md §4 order.
func Suite() []Item {
	return []Item{
		{"E1", "steady-state messages per η", func(o Opts) Renderable { return E1SteadyStateMessages(o) }},
		{"E2", "convergence time series", func(o Opts) Renderable { return E2ConvergenceSeries(o) }},
		{"E3", "stabilization vs GST", func(o Opts) Renderable { return E3StabilizationVsGST(o) }},
		{"E4", "leader-crash recovery", func(o Opts) Renderable { return E4CrashRecovery(o) }},
		{"E5", "links used forever", func(o Opts) Renderable { return E5LinksUsed(o) }},
		{"E6", "single-decree consensus cost", func(o Opts) Renderable { return E6ConsensusCost(o) }},
		{"E7", "repeated consensus cost", func(o Opts) Renderable { return E7RepeatedConsensus(o) }},
		{"E8", "assumption boundary matrix", func(o Opts) Renderable { return E8AssumptionMatrix(o) }},
		{"E9", "core-algorithm ablations", func(o Opts) Renderable { return E9Ablations(o) }},
		{"E10", "relaying: timely paths suffice", func(o Opts) Renderable { return E10RelayedPaths(o) }},
		{"E11", "◊-f-source boundary sweep", func(o Opts) Renderable { return E11FSourceBoundary(o) }},
		{"E12", "replicated-log decide piggybacking", func(o Opts) Renderable { return E12PiggybackAblation(o) }},
		{"E13", "lossy partition and heal", func(o Opts) Renderable { return E13PartitionHeal(o) }},
		{"E14", "leader-lease local reads", func(o Opts) Renderable { return E14LeaseReads(o) }},
	}
}

// RunAll executes every experiment and writes the rendered results to w.
func RunAll(w io.Writer, o Opts) error {
	for _, item := range Suite() {
		if _, err := fmt.Fprintf(w, "\n%s\n", item.Run(o).Render()); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment by id (e.g. "E3").
func RunOne(w io.Writer, id string, o Opts) error {
	for _, item := range Suite() {
		if item.ID == id {
			_, err := fmt.Fprintf(w, "\n%s\n", item.Run(o).Render())
			return err
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAllMarkdown executes every experiment and writes markdown sections to
// w (the format EXPERIMENTS.md records).
func RunAllMarkdown(w io.Writer, o Opts) error {
	for _, item := range Suite() {
		md, ok := item.Run(o).(Markdowner)
		if !ok {
			return fmt.Errorf("experiments: %s result cannot render markdown", item.ID)
		}
		if _, err := fmt.Fprintf(w, "%s\n", md.Markdown()); err != nil {
			return err
		}
	}
	return nil
}
