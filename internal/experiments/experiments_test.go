package experiments

import (
	"fmt"
	"strings"
	"testing"
)

var quick = Opts{Quick: true, Seeds: 2}

func TestE1ShapeHolds(t *testing.T) {
	tab := E1SteadyStateMessages(quick)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Core rows must be near n-1; baseline rows near n(n-1).
	for _, row := range tab.Rows {
		n := atoiOrFail(t, row[0])
		got := atofOrFail(t, row[2])
		switch row[1] {
		case "core":
			want := float64(n - 1)
			if got < want*0.8 || got > want*1.5 {
				t.Errorf("n=%d core msgs/η = %v, want ≈ %v", n, got, want)
			}
		case "alltoall", "source":
			want := float64(n * (n - 1))
			if got < want*0.8 || got > want*1.3 {
				t.Errorf("n=%d %s msgs/η = %v, want ≈ %v", n, row[1], got, want)
			}
		}
	}
}

func TestE2SeriesDecays(t *testing.T) {
	s := E2ConvergenceSeries(quick)
	if len(s.Names) != 3 || len(s.X) == 0 {
		t.Fatalf("series shape: %d names, %d points", len(s.Names), len(s.X))
	}
	// The core curve's tail must be far below the alltoall tail.
	var coreTail, allTail float64
	for i, name := range s.Names {
		tail := s.Y[i][len(s.Y[i])-1]
		switch name {
		case "core":
			coreTail = tail
		case "alltoall":
			allTail = tail
		}
	}
	if coreTail*5 > allTail {
		t.Fatalf("core tail %v not ≪ alltoall tail %v", coreTail, allTail)
	}
	if out := s.Render(); !strings.Contains(out, "E2") {
		t.Fatal("render missing id")
	}
}

func TestE5LinksShape(t *testing.T) {
	tab := E5LinksUsed(quick)
	for _, row := range tab.Rows {
		n := atoiOrFail(t, row[0])
		links := atoiOrFail(t, row[1+1])
		if row[1] == "core" && links != n-1 {
			t.Errorf("core n=%d links = %d, want %d", n, links, n-1)
		}
		if row[1] == "alltoall" && links != n*(n-1) {
			t.Errorf("alltoall n=%d links = %d, want %d", n, links, n*(n-1))
		}
	}
}

func TestE6SynodCheaperThanCT(t *testing.T) {
	tab := E6ConsensusCost(quick)
	// For every n, synod (no crash) must use fewer messages than ct.
	costs := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		n := row[0]
		if costs[n] == nil {
			costs[n] = map[string]float64{}
		}
		costs[n][row[1]] = atofOrFail(t, row[2])
	}
	for n, byProto := range costs {
		if byProto["synod+Ω"] >= byProto["ct-rotating"] {
			t.Errorf("n=%s: synod %v >= ct %v", n, byProto["synod+Ω"], byProto["ct-rotating"])
		}
	}
}

func TestE7SteadyStateNearPrediction(t *testing.T) {
	s := E7RepeatedConsensus(quick)
	ys := s.Y[0]
	if len(ys) < 4 {
		t.Fatalf("too few buckets: %d", len(ys))
	}
	// The bucket before the crash (first quarter) should be near 3(n-1)+1
	// = 13 for n=5 (requests from a non-leader add one).
	early := ys[1]
	if early < 10 || early > 20 {
		t.Errorf("steady-state msgs/cmd = %v, want ≈ 13", early)
	}
	// And the final bucket should return to the same regime.
	last := ys[len(ys)-1]
	if last < 10 || last > 22 {
		t.Errorf("post-crash steady-state msgs/cmd = %v, want ≈ 13-14", last)
	}
}

func TestE9AblationsBreakTheRightThing(t *testing.T) {
	tab := E9Ablations(Opts{Quick: true, Seeds: 1})
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	check := func(key, wantHolds string) {
		t.Helper()
		row, ok := byKey[key]
		if !ok {
			t.Fatalf("missing row %q in %v", key, byKey)
		}
		if row[2] != wantHolds {
			t.Errorf("%s: Ω holds = %s, want %s (row %v)", key, row[2], wantHolds, row)
		}
	}
	check("slow timely links (delay ≤ 5η)/core", "yes")
	check("slow timely links (delay ≤ 5η)/core-nogrowth", "no")
	check("dead link p0→p1 (split-brain bait)/core", "yes")
	check("dead link p0→p1 (split-brain bait)/core-noaccuse", "no")
}

func TestTableAndSeriesRender(t *testing.T) {
	tab := Table{ID: "X", Title: "t", Note: "n", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	out := tab.Render()
	for _, want := range []string{"X", "t", "n", "a", "b", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render %q missing %q", out, want)
		}
	}
	s := Series{ID: "Y", Title: "curve", XLabel: "x", YLabel: "y",
		Names: []string{"c"}, X: []float64{0, 1}, Y: [][]float64{{1, 2}}}
	if out := s.Render(); !strings.Contains(out, "curve") {
		t.Fatalf("series render: %q", out)
	}
}

func TestSuiteAndRunOne(t *testing.T) {
	items := Suite()
	if len(items) != 14 {
		t.Fatalf("suite has %d items, want 14", len(items))
	}
	var b strings.Builder
	if err := RunOne(&b, "E5", quick); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E5") {
		t.Fatal("RunOne output missing E5")
	}
	if err := RunOne(&b, "E99", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	var v int
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse int %q: %v", s, err)
	}
	return v
}

func atofOrFail(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse float %q: %v", s, err)
	}
	return v
}
