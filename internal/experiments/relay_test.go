package experiments

import "testing"

func TestE10RelayMakesPathsSufficient(t *testing.T) {
	tab := E10RelayedPaths(Opts{Quick: true, Seeds: 1})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	relayRow, ok := byName["core + relay"]
	if !ok {
		t.Fatalf("missing relay row: %v", byName)
	}
	if relayRow[1] != "yes" {
		t.Fatalf("relayed variant did not hold: %v", relayRow)
	}
	if relayRow[3] != "1" {
		t.Fatalf("relayed variant has %s originators in tail, want 1", relayRow[3])
	}
	bareRow := byName["core bare"]
	if bareRow[1] != "no" {
		t.Fatalf("bare variant unexpectedly held: %v", bareRow)
	}
}
