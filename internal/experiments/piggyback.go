package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
)

// E12PiggybackAblation regenerates Table 8: the decide-piggybacking
// optimization of the replicated log. With piggybacking, each ACCEPT
// carries the leader's commit index, so under a steady command stream
// followers learn decisions for free and the per-command cost drops from
// 3(n−1) to ≈2(n−1). Burst-then-idle workloads cannot benefit: nothing is
// committed when the burst's accepts go out, so the idle tail is learned
// through gap-fill requests at the same total cost as broadcasting.
func E12PiggybackAblation(o Opts) Table {
	o.fill()
	const n = 5
	cmds := 60
	if o.Quick {
		cmds = 30
	}
	t := Table{
		ID:    "E12",
		Title: "decide piggybacking in the replicated log (Table 8)",
		Note: fmt.Sprintf("n=%d, %d commands; streaming = one command per 30ms, burst = all at once; plain 3(n-1)=%d, piggybacked steady state ≈ 2(n-1)=%d",
			n, cmds, 3*(n-1), 2*(n-1)),
		Columns: []string{"workload", "variant", "msgs/cmd", "DECIDEs", "LEARNs"},
	}
	type cell struct {
		workload  string
		piggyback bool
	}
	var cells []cell
	for _, workload := range []string{"streaming", "burst"} {
		for _, piggyback := range []bool{false, true} {
			cells = append(cells, cell{workload: workload, piggyback: piggyback})
		}
	}
	type run struct {
		perCmd          float64
		decides, learns uint64
	}
	res := sweepEach(o, cells, func(c cell) run {
		perCmd, decides, learns := piggybackRun(n, cmds, c.workload == "streaming", c.piggyback)
		return run{perCmd: perCmd, decides: decides, learns: learns}
	})
	for ci, c := range cells {
		name := "plain"
		if c.piggyback {
			name = "piggyback"
		}
		t.Rows = append(t.Rows, []string{
			c.workload, name,
			fmt.Sprintf("%.1f", res[ci].perCmd),
			fmt.Sprintf("%d", res[ci].decides),
			fmt.Sprintf("%d", res[ci].learns),
		})
	}
	return t
}

// piggybackRun executes one E12 cell.
func piggybackRun(n, cmds int, streaming, piggyback bool) (perCmd float64, decides, learns uint64) {
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: 31, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		panic(err)
	}
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(Eta))
		logs[i] = rsm.New(det, rsm.Config{PiggybackDecides: piggyback})
		w.SetAutomaton(node.ID(i), node.Compose(det, logs[i]))
	}
	w.Start()
	w.RunFor(500 * time.Millisecond)
	before := kindTotal(w, rsmKinds)
	for i := 0; i < cmds; i++ {
		logs[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
		if streaming {
			w.RunFor(30 * time.Millisecond)
		}
	}
	// Let the idle tail settle (gap fills included in the cost).
	w.RunFor(2 * time.Second)
	total := kindTotal(w, rsmKinds) - before
	return float64(total) / float64(cmds),
		w.Stats.KindCount(rsm.KindDecide),
		w.Stats.KindCount(rsm.KindLearn)
}
