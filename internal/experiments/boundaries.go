package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// E8AssumptionMatrix regenerates Table 4: which algorithm implements Omega
// (and communication-efficiently) under which link regime. This is the
// boundary map the paper draws:
//
//   - the core algorithm needs reliable links + a ◊-source, and is the
//     only communication-efficient one;
//   - the gossiped-counter algorithm tolerates fair-lossy links with a
//     ◊-source but is never communication-efficient;
//   - the naive all-to-all detector needs timeliness everywhere and flaps
//     under persistent loss;
//   - nobody survives totally lossy links.
func E8AssumptionMatrix(o Opts) Table {
	o.fill()
	horizon := 60 * time.Second
	if o.Quick {
		horizon = 25 * time.Second
	}
	regimes := []scenario.Regime{
		scenario.RegimeAllTimely,
		scenario.RegimeAllET,
		scenario.RegimeSourceReliable,
		scenario.RegimeSourceFairLossy,
		scenario.RegimeLossy,
	}
	t := Table{
		ID:    "E8",
		Title: "assumption boundaries: Ω / communication efficiency by link regime (Table 4)",
		Note: fmt.Sprintf("n=4, ◊-source=p3, drop=0.3 (lossy regime drops everything), horizon %v; cells are 'holds k/%d seeds / comm-eff k/%d'",
			horizon, o.Seeds, o.Seeds),
		Columns: append([]string{"algorithm"}, regimeNames(regimes)...),
	}
	algos := []scenario.Algorithm{scenario.AlgoCore, scenario.AlgoAllToAll, scenario.AlgoSource}
	type cell struct {
		algo   scenario.Algorithm
		regime scenario.Regime
	}
	var cells []cell
	for _, algo := range algos {
		for _, regime := range regimes {
			cells = append(cells, cell{algo: algo, regime: regime})
		}
	}
	type run struct {
		holds, eff bool
	}
	res := sweepCells(o, cells, func(c cell, seed int) run {
		cfg := scenario.Config{
			N: 4, Seed: int64(seed), Algorithm: c.algo, Regime: c.regime,
			Eta: Eta, MaxDelay: 40 * time.Millisecond, DropProb: 0.3,
		}
		if c.regime == scenario.RegimeLossy {
			cfg.DropProb = 1.0
		}
		s, err := scenario.Build(cfg)
		if err != nil {
			panic(err)
		}
		s.Run(horizon)
		rep := s.OmegaReport()
		// "Holds" requires agreement AND stability margin: no change in
		// the final third of the run.
		if !rep.Holds || rep.StabilizedAt > sim.At(horizon*2/3) {
			return run{}
		}
		ce := s.CommEffReport(sim.At(horizon * 2 / 3))
		return run{holds: true, eff: ce.Efficient}
	})
	for ci := 0; ci < len(cells); ci += len(regimes) {
		row := []string{string(cells[ci].algo)}
		for ri := range regimes {
			holds, eff := 0, 0
			for _, r := range res[ci+ri] {
				if r.holds {
					holds++
				}
				if r.eff {
					eff++
				}
			}
			row = append(row, fmt.Sprintf("%d/%d · %d/%d", holds, o.Seeds, eff, o.Seeds))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func regimeNames(rs []scenario.Regime) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = string(r)
	}
	return out
}

// E9Ablations regenerates Table 5: each mechanism of the core algorithm is
// disabled in the scenario engineered to need it.
//
//   - Timeout growth vs a timely-but-slow leader link (delays near the
//     initial timeout): without growth, suspicions never die out.
//   - The accusation epoch guard vs long asynchronous delays (stale
//     accusations arrive after the accused moved on): without the guard,
//     counters inflate and leadership churns more.
//   - Accusation messages vs an asymmetric broken link (p0 cannot reach
//     p1): without them, p1 and p0 both believe they lead forever.
func E9Ablations(o Opts) Table {
	o.fill()
	t := Table{
		ID:      "E9",
		Title:   "core-algorithm ablations (Table 5)",
		Note:    "each row: the stressor scenario, with the protecting mechanism on vs off; 'max counter' is the largest accusation count any process holds at the end",
		Columns: []string{"scenario", "variant", "Ω holds", "stable senders", "leader changes", "max counter"},
	}

	run := func(algo scenario.Algorithm, mutate func(*scenario.System), horizon time.Duration, seed int64) []string {
		cfg := scenario.Config{N: 5, Seed: seed, Algorithm: algo, Regime: scenario.RegimeAllTimely, Eta: Eta}
		s, err := scenario.Build(cfg)
		if err != nil {
			panic(err)
		}
		if mutate != nil {
			mutate(s)
		}
		s.Run(horizon)
		rep := s.OmegaReport()
		ce := s.CommEffReport(sim.At(horizon * 3 / 4))
		holds := "no"
		if rep.Holds && rep.StabilizedAt <= sim.At(horizon*3/4) {
			holds = "yes"
		}
		return []string{
			string(algo), holds,
			fmt.Sprintf("%d", len(ce.Senders)),
			fmt.Sprintf("%d", rep.Changes),
			fmt.Sprintf("%d", maxCounter(s)),
		}
	}

	// (a) slow-but-timely links: delay up to 5η against a 3η base timeout.
	slowLinks := func(s *scenario.System) {
		if err := s.World.Fabric.SetAll(network.Timely(5 * Eta)); err != nil {
			panic(err)
		}
	}
	// (b) stale accusations: fully asynchronous reliable links, no timely
	// source. Several followers accuse the same reign concurrently; the
	// epoch guard keeps the accused's counter at one increment per reign,
	// the ablation counts every duplicate.
	asyncLinks := func(s *scenario.System) {
		if err := s.World.Fabric.SetAll(network.Reliable(Eta, 8*Eta)); err != nil {
			panic(err)
		}
	}
	// (c) asymmetric dead link p0→p1.
	cutLink := func(s *scenario.System) {
		if err := s.World.Fabric.SetProfile(0, 1, network.Down()); err != nil {
			panic(err)
		}
	}

	type cell struct {
		label   string
		algo    scenario.Algorithm
		mutate  func(*scenario.System)
		horizon time.Duration
		seed    int64
	}
	var cells []cell
	for _, algo := range []scenario.Algorithm{scenario.AlgoCore, scenario.AlgoCoreNoGrowth} {
		cells = append(cells, cell{"slow timely links (delay ≤ 5η)", algo, slowLinks, 20 * time.Second, 1})
	}
	for _, algo := range []scenario.Algorithm{scenario.AlgoCore, scenario.AlgoCoreNoGuard} {
		cells = append(cells, cell{"async delays ≤ 8η (duplicate accusations)", algo, asyncLinks, 30 * time.Second, 2})
	}
	for _, algo := range []scenario.Algorithm{scenario.AlgoCore, scenario.AlgoCoreNoAccuse} {
		cells = append(cells, cell{"dead link p0→p1 (split-brain bait)", algo, cutLink, 40 * time.Second, 3})
	}
	rows := sweepEach(o, cells, func(c cell) []string {
		return run(c.algo, c.mutate, c.horizon, c.seed)
	})
	for ci, c := range cells {
		t.Rows = append(t.Rows, append([]string{c.label}, rows[ci]...))
	}
	return t
}

// maxCounter returns the largest accusation count held by any core
// detector in the system (0 for other algorithms).
func maxCounter(s *scenario.System) uint64 {
	var max uint64
	for _, om := range s.Omegas {
		d, ok := om.(*core.Detector)
		if !ok {
			continue
		}
		for q := 0; q < s.Config.N; q++ {
			if c := d.Counter(node.ID(q)); c > max {
				max = c
			}
		}
	}
	return max
}
