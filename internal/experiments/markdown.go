package experiments

import (
	"fmt"
	"strings"
)

// Markdown renders the table as a GitHub-flavored markdown section, ready
// for EXPERIMENTS.md.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	writeMarkdownRow(&b, t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeMarkdownRow(&b, sep)
	for _, row := range t.Rows {
		writeMarkdownRow(&b, row)
	}
	return b.String()
}

// Markdown renders the series as a markdown section with one column per
// curve.
func (s Series) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", s.ID, s.Title)
	if s.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", s.Note)
	}
	writeMarkdownRow(&b, append([]string{s.XLabel}, s.Names...))
	sep := make([]string, 1+len(s.Names))
	for i := range sep {
		sep[i] = "---"
	}
	writeMarkdownRow(&b, sep)
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, curve := range s.Y {
			row = append(row, fmt.Sprintf("%.1f", curve[i]))
		}
		writeMarkdownRow(&b, row)
	}
	return b.String()
}

func writeMarkdownRow(b *strings.Builder, cells []string) {
	b.WriteString("|")
	for _, c := range cells {
		b.WriteString(" ")
		b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
		b.WriteString(" |")
	}
	b.WriteString("\n")
}

// Markdowner is implemented by both Table and Series.
type Markdowner interface {
	Markdown() string
}

var (
	_ Markdowner = Table{}
	_ Markdowner = Series{}
)
