package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// omegaAlgos are the three Omega implementations every message-cost
// experiment compares.
var omegaAlgos = []scenario.Algorithm{
	scenario.AlgoCore,
	scenario.AlgoAllToAll,
	scenario.AlgoSource,
}

// E1SteadyStateMessages regenerates Table 1: per-η message cost after
// stabilization, for each algorithm across system sizes. The paper's
// claim: the core algorithm converges to exactly n−1 messages per η (one
// leader broadcast), the baselines stay at n(n−1).
func E1SteadyStateMessages(o Opts) Table {
	o.fill()
	sizes := []int{3, 5, 10, 20, 40}
	horizon, tail := 400, 100
	if o.Quick {
		sizes = []int{3, 5, 10}
		horizon, tail = 150, 50
	}
	t := Table{
		ID:    "E1",
		Title: "steady-state messages per η (Table 1)",
		Note: fmt.Sprintf("all links eventually timely, GST=20η, measured over the final %dη of %dη; predictions: core n-1, baselines n(n-1)",
			tail, horizon),
		Columns: []string{"n", "algorithm", "msgs/η", "predicted", "senders"},
	}
	for _, n := range sizes {
		for _, algo := range omegaAlgos {
			var rates []float64
			senders := 0
			for seed := 0; seed < o.Seeds; seed++ {
				s, err := scenario.Build(scenario.Config{
					N: n, Seed: int64(seed), Algorithm: algo,
					Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(20),
				})
				if err != nil {
					panic(err)
				}
				s.Run(time.Duration(horizon) * Eta)
				from := etaT(horizon - tail)
				rep := s.CommEffReport(from)
				rates = append(rates, rep.MessagesPerPeriod)
				if len(rep.Senders) > senders {
					senders = len(rep.Senders)
				}
			}
			predicted := n * (n - 1)
			if algo == scenario.AlgoCore {
				predicted = n - 1
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				string(algo),
				fmt.Sprintf("%.1f", mean(rates)),
				fmt.Sprintf("%d", predicted),
				fmt.Sprintf("%d", senders),
			})
		}
	}
	return t
}

// E2ConvergenceSeries regenerates Figure 1: messages per η over time for
// each algorithm, showing the pre-GST spike and the core algorithm's decay
// to a single sender.
func E2ConvergenceSeries(o Opts) Series {
	o.fill()
	n, gstPeriods, horizon := 10, 50, 300
	if o.Quick {
		horizon = 150
	}
	step := 5 // sample every 5η for readable output
	s := Series{
		ID:     "E2",
		Title:  "messages per η over time, n=10, GST=50η (Figure 1)",
		Note:   "all links eventually timely; the core curve decays to n-1=9 per η, baselines plateau at n(n-1)=90",
		XLabel: "t (η)",
		YLabel: "msgs/η",
	}
	for _, algo := range omegaAlgos {
		sys, err := scenario.Build(scenario.Config{
			N: n, Seed: 1, Algorithm: algo,
			Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(gstPeriods),
		})
		if err != nil {
			panic(err)
		}
		sys.Run(time.Duration(horizon) * Eta)
		buckets := sys.World.Stats.Snapshot().Series(Eta, etaT(horizon))
		var xs, ys []float64
		for i := 0; i+step <= len(buckets); i += step {
			var sum uint64
			for j := 0; j < step; j++ {
				sum += buckets[i+j]
			}
			xs = append(xs, float64(i))
			ys = append(ys, float64(sum)/float64(step))
		}
		if s.X == nil {
			s.X = xs
		}
		s.Names = append(s.Names, string(algo))
		s.Y = append(s.Y, ys)
	}
	return s
}

// E3StabilizationVsGST regenerates Figure 2: how the empirical
// stabilization time tracks the (unknown to the algorithm) global
// stabilization time.
func E3StabilizationVsGST(o Opts) Table {
	o.fill()
	gsts := []int{0, 10, 25, 50, 100}
	if o.Quick {
		gsts = []int{0, 25, 50}
	}
	t := Table{
		ID:      "E3",
		Title:   "leader stabilization time vs GST, n=10 (Figure 2)",
		Note:    "all links eventually timely; stabilization = last leader change at any correct process; grows with GST for every algorithm",
		Columns: []string{"GST (η)", "algorithm", "stabilized (mean)", "stabilized (max)", "converged"},
	}
	for _, gst := range gsts {
		for _, algo := range omegaAlgos {
			var times []float64
			converged := 0
			for seed := 0; seed < o.Seeds; seed++ {
				s, err := scenario.Build(scenario.Config{
					N: 10, Seed: int64(seed), Algorithm: algo,
					Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(gst),
				})
				if err != nil {
					panic(err)
				}
				s.Run(time.Duration(gst)*Eta + 200*Eta)
				if at, ok := sysConvergence(s); ok {
					converged++
					times = append(times, float64(at)/float64(Eta.Nanoseconds()))
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", gst),
				string(algo),
				fmt.Sprintf("%.0fη", mean(times)),
				fmt.Sprintf("%.0fη", maxOf(times)),
				fmt.Sprintf("%d/%d", converged, o.Seeds),
			})
		}
	}
	return t
}

func sysConvergence(s *scenario.System) (sim.Time, bool) {
	rep := s.OmegaReport()
	if !rep.Holds {
		return 0, false
	}
	return rep.StabilizedAt, true
}

// E4CrashRecovery regenerates Table 2: time to re-agree on a leader after
// the stable leader crashes.
func E4CrashRecovery(o Opts) Table {
	o.fill()
	sizes := []int{5, 10, 20}
	if o.Quick {
		sizes = []int{5, 10}
	}
	crashAt := etaT(100)
	t := Table{
		ID:      "E4",
		Title:   "re-election latency after leader crash (Table 2)",
		Note:    "all links timely, leader p0 crashes at 100η; latency = last leader change − crash time",
		Columns: []string{"n", "algorithm", "latency (mean)", "latency (max)", "new leader"},
	}
	for _, n := range sizes {
		for _, algo := range omegaAlgos {
			var lats []float64
			leaderOK := true
			for seed := 0; seed < o.Seeds; seed++ {
				s, err := scenario.Build(scenario.Config{
					N: n, Seed: int64(seed), Algorithm: algo,
					Regime: scenario.RegimeAllTimely, Eta: Eta,
					Crashes: []scenario.Crash{{ID: 0, At: crashAt}},
				})
				if err != nil {
					panic(err)
				}
				s.Run(400 * Eta)
				rep := s.OmegaReport()
				if !rep.Holds || rep.Leader == 0 {
					leaderOK = false
					continue
				}
				lats = append(lats, float64(rep.StabilizedAt-crashAt)/float64(time.Millisecond))
			}
			status := "p1"
			if !leaderOK {
				status = "FAILED"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				string(algo),
				fmt.Sprintf("%.1fms", mean(lats)),
				fmt.Sprintf("%.1fms", maxOf(lats)),
				status,
			})
		}
	}
	return t
}

// E5LinksUsed regenerates Figure 3: the number of directed links carrying
// messages forever — the paper's second formulation of communication
// efficiency (n−1 links vs n(n−1)).
func E5LinksUsed(o Opts) Table {
	o.fill()
	sizes := []int{3, 5, 10, 20, 40}
	horizon, tail := 300, 50
	if o.Quick {
		sizes = []int{3, 5, 10}
		horizon, tail = 150, 30
	}
	t := Table{
		ID:      "E5",
		Title:   "directed links used forever (Figure 3)",
		Note:    fmt.Sprintf("all links timely; links counted over the final %dη of %dη", tail, horizon),
		Columns: []string{"n", "algorithm", "links used", "predicted"},
	}
	for _, n := range sizes {
		for _, algo := range omegaAlgos {
			s, err := scenario.Build(scenario.Config{
				N: n, Seed: 7, Algorithm: algo, Regime: scenario.RegimeAllTimely, Eta: Eta,
			})
			if err != nil {
				panic(err)
			}
			s.Run(time.Duration(horizon) * Eta)
			links := s.World.Stats.Snapshot().LinksUsedSince(etaT(horizon - tail))
			predicted := n * (n - 1)
			if algo == scenario.AlgoCore {
				predicted = n - 1
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				string(algo),
				fmt.Sprintf("%d", links),
				fmt.Sprintf("%d", predicted),
			})
		}
	}
	return t
}
