package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// omegaAlgos are the three Omega implementations every message-cost
// experiment compares.
var omegaAlgos = []scenario.Algorithm{
	scenario.AlgoCore,
	scenario.AlgoAllToAll,
	scenario.AlgoSource,
}

// E1SteadyStateMessages regenerates Table 1: per-η message cost after
// stabilization, for each algorithm across system sizes. The paper's
// claim: the core algorithm converges to exactly n−1 messages per η (one
// leader broadcast), the baselines stay at n(n−1).
func E1SteadyStateMessages(o Opts) Table {
	o.fill()
	sizes := []int{3, 5, 10, 20, 40}
	horizon, tail := 400, 100
	if o.Quick {
		sizes = []int{3, 5, 10}
		horizon, tail = 150, 50
	}
	t := Table{
		ID:    "E1",
		Title: "steady-state messages per η (Table 1)",
		Note: fmt.Sprintf("all links eventually timely, GST=20η, measured over the final %dη of %dη; predictions: core n-1, baselines n(n-1)",
			tail, horizon),
		Columns: []string{"n", "algorithm", "msgs/η", "predicted", "senders"},
	}
	cells := sizeAlgoCells(sizes)
	type run struct {
		rate    float64
		senders int
	}
	res := sweepCells(o, cells, func(c sizeAlgo, seed int) run {
		s, err := scenario.Build(scenario.Config{
			N: c.n, Seed: int64(seed), Algorithm: c.algo,
			Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(20),
		})
		if err != nil {
			panic(err)
		}
		s.Run(time.Duration(horizon) * Eta)
		rep := s.CommEffReport(etaT(horizon - tail))
		return run{rate: rep.MessagesPerPeriod, senders: len(rep.Senders)}
	})
	for ci, c := range cells {
		var rates []float64
		senders := 0
		for _, r := range res[ci] {
			rates = append(rates, r.rate)
			if r.senders > senders {
				senders = r.senders
			}
		}
		predicted := c.n * (c.n - 1)
		if c.algo == scenario.AlgoCore {
			predicted = c.n - 1
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.n),
			string(c.algo),
			fmt.Sprintf("%.1f", mean(rates)),
			fmt.Sprintf("%d", predicted),
			fmt.Sprintf("%d", senders),
		})
	}
	return t
}

// sizeAlgo is one (system size, algorithm) sweep cell.
type sizeAlgo struct {
	n    int
	algo scenario.Algorithm
}

// sizeAlgoCells enumerates sizes × omegaAlgos in table-row order.
func sizeAlgoCells(sizes []int) []sizeAlgo {
	cells := make([]sizeAlgo, 0, len(sizes)*len(omegaAlgos))
	for _, n := range sizes {
		for _, algo := range omegaAlgos {
			cells = append(cells, sizeAlgo{n: n, algo: algo})
		}
	}
	return cells
}

// E2ConvergenceSeries regenerates Figure 1: messages per η over time for
// each algorithm, showing the pre-GST spike and the core algorithm's decay
// to a single sender.
func E2ConvergenceSeries(o Opts) Series {
	o.fill()
	n, gstPeriods, horizon := 10, 50, 300
	if o.Quick {
		horizon = 150
	}
	step := 5 // sample every 5η for readable output
	s := Series{
		ID:     "E2",
		Title:  "messages per η over time, n=10, GST=50η (Figure 1)",
		Note:   "all links eventually timely; the core curve decays to n-1=9 per η, baselines plateau at n(n-1)=90",
		XLabel: "t (η)",
		YLabel: "msgs/η",
	}
	type curve struct {
		xs, ys []float64
	}
	curves := sweepEach(o, omegaAlgos, func(algo scenario.Algorithm) curve {
		sys, err := scenario.Build(scenario.Config{
			N: n, Seed: 1, Algorithm: algo,
			Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(gstPeriods),
		})
		if err != nil {
			panic(err)
		}
		sys.Run(time.Duration(horizon) * Eta)
		buckets := sys.World.Stats.Snapshot().Series(Eta, etaT(horizon))
		var c curve
		for i := 0; i+step <= len(buckets); i += step {
			var sum uint64
			for j := 0; j < step; j++ {
				sum += buckets[i+j]
			}
			c.xs = append(c.xs, float64(i))
			c.ys = append(c.ys, float64(sum)/float64(step))
		}
		return c
	})
	for ci, algo := range omegaAlgos {
		if s.X == nil {
			s.X = curves[ci].xs
		}
		s.Names = append(s.Names, string(algo))
		s.Y = append(s.Y, curves[ci].ys)
	}
	return s
}

// E3StabilizationVsGST regenerates Figure 2: how the empirical
// stabilization time tracks the (unknown to the algorithm) global
// stabilization time.
func E3StabilizationVsGST(o Opts) Table {
	o.fill()
	gsts := []int{0, 10, 25, 50, 100}
	if o.Quick {
		gsts = []int{0, 25, 50}
	}
	t := Table{
		ID:      "E3",
		Title:   "leader stabilization time vs GST, n=10 (Figure 2)",
		Note:    "all links eventually timely; stabilization = last leader change at any correct process; grows with GST for every algorithm",
		Columns: []string{"GST (η)", "algorithm", "stabilized (mean)", "stabilized (max)", "converged"},
	}
	type cell struct {
		gst  int
		algo scenario.Algorithm
	}
	var cells []cell
	for _, gst := range gsts {
		for _, algo := range omegaAlgos {
			cells = append(cells, cell{gst: gst, algo: algo})
		}
	}
	type run struct {
		at float64
		ok bool
	}
	res := sweepCells(o, cells, func(c cell, seed int) run {
		s, err := scenario.Build(scenario.Config{
			N: 10, Seed: int64(seed), Algorithm: c.algo,
			Regime: scenario.RegimeAllET, Eta: Eta, GST: etaT(c.gst),
		})
		if err != nil {
			panic(err)
		}
		s.Run(time.Duration(c.gst)*Eta + 200*Eta)
		at, ok := sysConvergence(s)
		return run{at: float64(at) / float64(Eta.Nanoseconds()), ok: ok}
	})
	for ci, c := range cells {
		var times []float64
		converged := 0
		for _, r := range res[ci] {
			if r.ok {
				converged++
				times = append(times, r.at)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.gst),
			string(c.algo),
			fmt.Sprintf("%.0fη", mean(times)),
			fmt.Sprintf("%.0fη", maxOf(times)),
			fmt.Sprintf("%d/%d", converged, o.Seeds),
		})
	}
	return t
}

func sysConvergence(s *scenario.System) (sim.Time, bool) {
	rep := s.OmegaReport()
	if !rep.Holds {
		return 0, false
	}
	return rep.StabilizedAt, true
}

// E4CrashRecovery regenerates Table 2: time to re-agree on a leader after
// the stable leader crashes.
func E4CrashRecovery(o Opts) Table {
	o.fill()
	sizes := []int{5, 10, 20}
	if o.Quick {
		sizes = []int{5, 10}
	}
	crashAt := etaT(100)
	t := Table{
		ID:      "E4",
		Title:   "re-election latency after leader crash (Table 2)",
		Note:    "all links timely, leader p0 crashes at 100η; latency = last leader change − crash time",
		Columns: []string{"n", "algorithm", "latency (mean)", "latency (max)", "new leader"},
	}
	cells := sizeAlgoCells(sizes)
	type run struct {
		lat float64
		ok  bool
	}
	res := sweepCells(o, cells, func(c sizeAlgo, seed int) run {
		s, err := scenario.Build(scenario.Config{
			N: c.n, Seed: int64(seed), Algorithm: c.algo,
			Regime: scenario.RegimeAllTimely, Eta: Eta,
			Crashes: []scenario.Crash{{ID: 0, At: crashAt}},
		})
		if err != nil {
			panic(err)
		}
		s.Run(400 * Eta)
		rep := s.OmegaReport()
		if !rep.Holds || rep.Leader == 0 {
			return run{}
		}
		return run{lat: float64(rep.StabilizedAt-crashAt) / float64(time.Millisecond), ok: true}
	})
	for ci, c := range cells {
		var lats []float64
		leaderOK := true
		for _, r := range res[ci] {
			if !r.ok {
				leaderOK = false
				continue
			}
			lats = append(lats, r.lat)
		}
		status := "p1"
		if !leaderOK {
			status = "FAILED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.n),
			string(c.algo),
			fmt.Sprintf("%.1fms", mean(lats)),
			fmt.Sprintf("%.1fms", maxOf(lats)),
			status,
		})
	}
	return t
}

// E5LinksUsed regenerates Figure 3: the number of directed links carrying
// messages forever — the paper's second formulation of communication
// efficiency (n−1 links vs n(n−1)).
func E5LinksUsed(o Opts) Table {
	o.fill()
	sizes := []int{3, 5, 10, 20, 40}
	horizon, tail := 300, 50
	if o.Quick {
		sizes = []int{3, 5, 10}
		horizon, tail = 150, 30
	}
	t := Table{
		ID:      "E5",
		Title:   "directed links used forever (Figure 3)",
		Note:    fmt.Sprintf("all links timely; links counted over the final %dη of %dη", tail, horizon),
		Columns: []string{"n", "algorithm", "links used", "predicted"},
	}
	cells := sizeAlgoCells(sizes)
	links := sweepEach(o, cells, func(c sizeAlgo) int {
		s, err := scenario.Build(scenario.Config{
			N: c.n, Seed: 7, Algorithm: c.algo, Regime: scenario.RegimeAllTimely, Eta: Eta,
		})
		if err != nil {
			panic(err)
		}
		s.Run(time.Duration(horizon) * Eta)
		return s.World.Stats.Snapshot().LinksUsedSince(etaT(horizon - tail))
	})
	for ci, c := range cells {
		predicted := c.n * (c.n - 1)
		if c.algo == scenario.AlgoCore {
			predicted = c.n - 1
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.n),
			string(c.algo),
			fmt.Sprintf("%d", links[ci]),
			fmt.Sprintf("%d", predicted),
		})
	}
	return t
}
