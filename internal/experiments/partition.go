package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// E13PartitionHeal regenerates Table 9: behaviour across a lossy network
// partition — the leader is fully isolated for 1.2 s (its messages and the
// accusations aimed at it are *dropped*, which is harsher than the paper's
// reliable-link model) and then rejoined.
//
// Expected shape: the base algorithm strands the stale leader — its
// self-count never catches up with the accusations that were swallowed, so
// it keeps broadcasting forever next to the new leader (two senders, Ω
// violated). The WithRebuff extension repairs this: the first post-heal
// heartbeat is answered with the true count, the stale leader demotes
// itself, and the system returns to one sender. The baselines, which
// gossip full state continuously, also recover — at their usual n(n−1)
// price.
func E13PartitionHeal(o Opts) Table {
	o.fill()
	horizon := 20 * time.Second
	if o.Quick {
		horizon = 12 * time.Second
	}
	t := Table{
		ID:    "E13",
		Title: "lossy partition and heal (Table 9)",
		Note: fmt.Sprintf("n=5, leader p0 isolated (messages dropped) during [0.3s, 1.5s), horizon %v; a lossy partition violates the paper's reliable-link assumption — rebuff is the repair",
			horizon),
		Columns: []string{"algorithm", "Ω holds", "stable senders", "leader changes"},
	}
	algos := []scenario.Algorithm{
		scenario.AlgoCore,
		scenario.AlgoCoreRebuff,
		scenario.AlgoAllToAll,
		scenario.AlgoSource,
	}
	type run struct {
		holds   string
		senders int
		changes int
	}
	res := sweepEach(o, algos, func(algo scenario.Algorithm) run {
		sys, err := scenario.Build(scenario.Config{
			N: 5, Seed: 1, Algorithm: algo, Regime: scenario.RegimeAllTimely, Eta: Eta,
		})
		if err != nil {
			panic(err)
		}
		sys.World.Kernel.ScheduleAt(sim.At(300*time.Millisecond), func() { sys.World.Fabric.Isolate(0) })
		sys.World.Kernel.ScheduleAt(sim.At(1500*time.Millisecond), func() { sys.World.Fabric.Rejoin(0) })
		sys.Run(horizon)
		rep := sys.OmegaReport()
		ce := sys.CommEffReport(sim.At(horizon * 3 / 4))
		holds := "no"
		if rep.Holds && rep.StabilizedAt <= sim.At(horizon*3/4) {
			holds = "yes"
		}
		return run{holds: holds, senders: len(ce.Senders), changes: rep.Changes}
	})
	for ci, algo := range algos {
		t.Rows = append(t.Rows, []string{
			string(algo), res[ci].holds,
			fmt.Sprintf("%d", res[ci].senders),
			fmt.Sprintf("%d", res[ci].changes),
		})
	}
	return t
}
