// Package experiments regenerates the reproduction's tables and figures
// (E1–E13, indexed in DESIGN.md §4 and reported in EXPERIMENTS.md). PODC
// 2004 is a theory paper, so each experiment validates one theorem-shaped
// claim empirically: steady-state message counts, links used forever,
// stabilization times, consensus costs, assumption boundaries, and
// ablations of the core algorithm's design choices.
//
// Every experiment is deterministic given its seeds and runs on the
// discrete-event simulator, so the tables in EXPERIMENTS.md can be
// regenerated bit-for-bit with cmd/benchtables or `go test -bench`.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Eta is the heartbeat period every experiment uses.
const Eta = 10 * time.Millisecond

// Opts scales experiments.
type Opts struct {
	// Quick shrinks sweeps and horizons for use in unit tests.
	Quick bool
	// Seeds is the number of seeds per cell (default 5, quick 2).
	Seeds int
	// Workers is the parallel sweep width: independent (cell, seed) runs
	// are fanned across this many workers. <= 0 means one per schedulable
	// core; 1 runs everything inline. Results are merged in (cell, seed)
	// order, so output is byte-identical for every worker count.
	Workers int
}

func (o *Opts) fill() {
	if o.Seeds <= 0 {
		if o.Quick {
			o.Seeds = 2
		} else {
			o.Seeds = 5
		}
	}
}

// pool returns the sweep pool experiments fan their independent runs on.
func (o Opts) pool() *sweep.Pool { return sweep.New(o.Workers) }

// sweepCells runs fn(cell, seed) for every cell × seed pair on o's pool and
// returns the results indexed [cell][seed]. fn must be self-contained: each
// call builds its own System/World on its own kernel, so runs can execute
// on any worker in any order. The merge is in (cell, seed) order, which
// keeps tables byte-identical to the sequential double loop they replace.
func sweepCells[C, T any](o Opts, cells []C, fn func(cell C, seed int) T) [][]T {
	flat := sweep.Map(o.pool(), len(cells)*o.Seeds, func(i int) T {
		return fn(cells[i/o.Seeds], i%o.Seeds)
	})
	out := make([][]T, len(cells))
	for ci := range cells {
		out[ci] = flat[ci*o.Seeds : (ci+1)*o.Seeds]
	}
	return out
}

// sweepEach is sweepCells for experiments without a seed dimension: one
// independent run per cell, merged in cell order.
func sweepEach[C, T any](o Opts, cells []C, fn func(cell C) T) []T {
	return sweep.Map(o.pool(), len(cells), func(i int) T { return fn(cells[i]) })
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// Render formats the table for terminals and EXPERIMENTS.md.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  %s\n", t.Note)
	}
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "  "+strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(w, "  "+strings.Join(underline, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, "  "+strings.Join(row, "\t"))
	}
	_ = w.Flush()
	return b.String()
}

// Series is a figure: one or more named curves over a shared x axis.
type Series struct {
	ID     string
	Title  string
	Note   string
	XLabel string
	YLabel string
	Names  []string
	X      []float64
	Y      [][]float64 // indexed [name][x]
}

// Render formats the series as a column table plus an ASCII sketch of each
// curve (log-ish bar per point), which is enough to see the shapes the
// paper predicts.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ID, s.Title)
	if s.Note != "" {
		fmt.Fprintf(&b, "  %s\n", s.Note)
	}
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	header := append([]string{s.XLabel}, s.Names...)
	fmt.Fprintln(w, "  "+strings.Join(header, "\t"))
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, curve := range s.Y {
			row = append(row, fmt.Sprintf("%.1f", curve[i]))
		}
		fmt.Fprintln(w, "  "+strings.Join(row, "\t"))
	}
	_ = w.Flush()
	// Sketch: scale each curve to its own max.
	for ci, name := range s.Names {
		max := 0.0
		for _, v := range s.Y[ci] {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
		fmt.Fprintf(&b, "  %s: ", name)
		for _, v := range s.Y[ci] {
			b.WriteByte(" .:-=+*#%@"[int(v/max*9+0.5)])
		}
		fmt.Fprintf(&b, "  (max %.1f %s)\n", max, s.YLabel)
	}
	return b.String()
}

// etaT converts a count of η periods into a sim.Time instant.
func etaT(periods int) sim.Time { return sim.At(time.Duration(periods) * Eta) }

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// maxOf returns the maximum of a slice.
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
