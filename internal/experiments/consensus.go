package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/ct"
	"repro/internal/consensus/rsm"
	"repro/internal/consensus/synod"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// synodKinds and ctKinds name the message kinds belonging to each
// consensus protocol, so Omega heartbeats can be excluded from counts.
var (
	synodKinds = []string{
		synod.KindPrepare, synod.KindPromise, synod.KindNack, synod.KindAccept,
		synod.KindAccepted, synod.KindDecide, synod.KindLearn, synod.KindRequest,
	}
	ctKinds = []string{
		ct.KindEstimate, ct.KindProposal, ct.KindAck, ct.KindNack, ct.KindDecide,
	}
	rsmKinds = []string{
		rsm.KindRequest, rsm.KindPrepare, rsm.KindPromise, rsm.KindNack,
		rsm.KindAccept, rsm.KindAccepted, rsm.KindDecide, rsm.KindLearn,
	}
)

func kindTotal(w *node.World, kinds []string) uint64 {
	var total uint64
	for _, k := range kinds {
		total += w.Stats.KindCount(k)
	}
	return total
}

// synodRun wires n processes running Omega+synod, proposes at every
// process, and runs until all correct processes decide (or the horizon).
// It returns the decision latency and the consensus message count.
func synodRun(n int, seed int64, crashLeader bool) (time.Duration, uint64, bool) {
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		panic(err)
	}
	nodes := make([]*synod.Node, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(Eta))
		nodes[i] = synod.New(det, synod.Config{})
		nodes[i].Propose(consensus.Value(fmt.Sprintf("v%d", i)))
		w.SetAutomaton(node.ID(i), node.Compose(det, nodes[i]))
	}
	w.Start()
	if crashLeader {
		// Crash p0 at t=0, before it can drive a ballot: the run pays
		// the full re-election-plus-consensus price.
		w.CrashAt(0, 0)
	}
	allDecided := func() bool {
		for i, s := range nodes {
			if !w.Alive(node.ID(i)) {
				continue
			}
			if _, ok := s.Decided(); !ok {
				return false
			}
		}
		return true
	}
	w.RunUntil(sim.At(20*time.Second), allDecided)
	return w.Kernel.Now().Duration(), kindTotal(w, synodKinds), allDecided()
}

// ctRun is the rotating-coordinator counterpart of synodRun.
func ctRun(n int, seed int64, crashLeader bool) (time.Duration, uint64, bool) {
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		panic(err)
	}
	nodes := make([]*ct.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = ct.New(ct.Config{})
		nodes[i].Propose(consensus.Value(fmt.Sprintf("v%d", i)))
		w.SetAutomaton(node.ID(i), nodes[i])
	}
	w.Start()
	if crashLeader {
		// Crash the round-0 coordinator at t=0: the run pays a failed
		// round plus the timeout before round 1 can decide.
		w.CrashAt(0, 0)
	}
	allDecided := func() bool {
		for i, s := range nodes {
			if !w.Alive(node.ID(i)) {
				continue
			}
			if _, ok := s.Decided(); !ok {
				return false
			}
		}
		return true
	}
	w.RunUntil(sim.At(20*time.Second), allDecided)
	return w.Kernel.Now().Duration(), kindTotal(w, ctKinds), allDecided()
}

// E6ConsensusCost regenerates Table 3: single-decree consensus cost — the
// Omega-driven synod protocol against the rotating-coordinator baseline.
// Expected shape: synod messages grow linearly in n, the baseline
// quadratically (its decide echo alone is n(n−1)).
func E6ConsensusCost(o Opts) Table {
	o.fill()
	sizes := []int{3, 5, 7, 9}
	if o.Quick {
		sizes = []int{3, 5}
	}
	t := Table{
		ID:      "E6",
		Title:   "single-decree consensus cost (Table 3)",
		Note:    "all links timely, every process proposes; messages are consensus kinds only (Omega heartbeats excluded); (×) marks a leader-crash variant",
		Columns: []string{"n", "protocol", "msgs (mean)", "latency (mean)", "decided"},
	}
	type proto struct {
		name  string
		run   func(n int, seed int64, crash bool) (time.Duration, uint64, bool)
		crash bool
	}
	protos := []proto{
		{"synod+Ω", synodRun, false},
		{"ct-rotating", ctRun, false},
		{"synod+Ω (×)", synodRun, true},
		{"ct-rotating (×)", ctRun, true},
	}
	type cell struct {
		n int
		p proto
	}
	var cells []cell
	for _, n := range sizes {
		for _, p := range protos {
			cells = append(cells, cell{n: n, p: p})
		}
	}
	type run struct {
		lat  time.Duration
		msgs uint64
		ok   bool
	}
	res := sweepCells(o, cells, func(c cell, seed int) run {
		lat, m, ok := c.p.run(c.n, int64(seed), c.p.crash)
		return run{lat: lat, msgs: m, ok: ok}
	})
	for ci, c := range cells {
		var msgs, lats []float64
		decided := 0
		for _, r := range res[ci] {
			if r.ok {
				decided++
				msgs = append(msgs, float64(r.msgs))
				lats = append(lats, float64(r.lat)/float64(time.Millisecond))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.n),
			c.p.name,
			fmt.Sprintf("%.0f", mean(msgs)),
			fmt.Sprintf("%.1fms", mean(lats)),
			fmt.Sprintf("%d/%d", decided, o.Seeds),
		})
	}
	return t
}

// e7World builds the n-process replicated-log world for E7 runs.
func e7World(n int, seed int64) (*node.World, []*rsm.Node) {
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		panic(err)
	}
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(Eta))
		logs[i] = rsm.New(det, rsm.Config{})
		w.SetAutomaton(node.ID(i), node.Compose(det, logs[i]))
	}
	w.Start()
	w.RunFor(500 * time.Millisecond) // leader stable, ballot prepared
	return w, logs
}

// e7SingleStream measures messages per command when commands arrive one
// at a time (each decided before the next is submitted).
func e7SingleStream(cmds, crashAfter int) []float64 {
	w, logs := e7World(5, 11)
	submitTo := 0
	perCmd := make([]float64, 0, cmds)
	prev := kindTotal(w, rsmKinds)
	prevGap := logs[2].FirstGap() // p2 stays alive throughout
	for i := 0; i < cmds; i++ {
		if i == crashAfter {
			w.Crash(0)
			submitTo = 1
		}
		logs[submitTo].Submit(consensus.Value(fmt.Sprintf("cmd-%d", i)))
		target := prevGap + 1
		w.RunUntil(w.Kernel.Now().Add(5*time.Second), func() bool {
			return logs[2].FirstGap() >= target
		})
		cur := kindTotal(w, rsmKinds)
		decidedNow := logs[2].FirstGap() - prevGap
		if decidedNow <= 0 {
			decidedNow = 1
		}
		perCmd = append(perCmd, float64(cur-prev)/float64(decidedNow))
		prev = cur
		prevGap = logs[2].FirstGap()
	}
	return perCmd
}

// e7Batched measures messages per command when commands arrive in bursts
// that the engine coalesces into batch envelopes: each burst costs one
// (or a few) instances' worth of phase-2 traffic, so the per-command cost
// drops by roughly the batch size.
func e7Batched(cmds, crashAfter, burst int) []float64 {
	w, logs := e7World(5, 11)
	submitTo := 0
	perCmd := make([]float64, 0, cmds)
	prev := kindTotal(w, rsmKinds)
	prevApplied := logs[2].Applied()
	for i := 0; i < cmds; i += burst {
		if i >= crashAfter && submitTo == 0 {
			w.Crash(0)
			submitTo = 1
		}
		k := burst
		if i+k > cmds {
			k = cmds - i
		}
		for j := 0; j < k; j++ {
			logs[submitTo].Submit(consensus.Value(fmt.Sprintf("cmd-%d", i+j)))
		}
		target := prevApplied + k
		w.RunUntil(w.Kernel.Now().Add(5*time.Second), func() bool {
			return logs[2].Applied() >= target
		})
		cur := kindTotal(w, rsmKinds)
		applied := logs[2].Applied() - prevApplied
		if applied <= 0 {
			applied = 1
		}
		v := float64(cur-prev) / float64(applied)
		for j := 0; j < k; j++ {
			perCmd = append(perCmd, v)
		}
		prev = cur
		prevApplied = logs[2].Applied()
	}
	return perCmd
}

// E7RepeatedConsensus regenerates Figure 4: per-command message cost of
// the replicated log over a stream of commands, with a leader crash
// mid-stream. Expected shape: ≈3(n−1)+1 messages per command in steady
// state when commands trickle in one at a time, one spike at the crash
// (re-prepare + re-proposals), then back; the batched curve amortizes
// the same 3(n−1) per-instance cost over each burst.
func E7RepeatedConsensus(o Opts) Series {
	o.fill()
	const n = 5
	const burst = 16 // the engine's default BatchMax
	cmds := 200
	crashAfter := 100
	if o.Quick {
		cmds = 60
		crashAfter = 30
	}
	single := e7SingleStream(cmds, crashAfter)
	batched := e7Batched(cmds, crashAfter, burst)

	const bucket = 5
	s := Series{
		ID:    "E7",
		Title: fmt.Sprintf("messages per command, replicated log, n=%d (Figure 4)", n),
		Note: fmt.Sprintf("leader crashes after command %d; steady state ≈ 3(n-1) = %d consensus messages per leader-submitted command, amortized to ≈ 3(n-1)/%d when bursts of %d coalesce into batch envelopes (accepted replies shrink with the surviving cluster after the crash)",
			crashAfter, 3*(n-1), burst, burst),
		XLabel: "command #",
		YLabel: "msgs/cmd",
		Names:  []string{"rsm+Ω", fmt.Sprintf("rsm+Ω batch=%d", burst)},
	}
	var xs, ys, yb []float64
	for i := 0; i+bucket <= len(single); i += bucket {
		xs = append(xs, float64(i))
		ys = append(ys, mean(single[i:i+bucket]))
		yb = append(yb, mean(batched[i:i+bucket]))
	}
	s.X = xs
	s.Y = [][]float64{ys, yb}
	return s
}
