package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/relay"
	"repro/internal/sim"
)

// E10RelayedPaths regenerates Table 6: the paper's relaxed assumption.
// With message relaying, the core algorithm needs only an eventually
// timely *path* from some correct process to every other, instead of
// direct links. The topology: p3→p2 and p2→{p0,p1} are timely (plus the
// reverse path back to p3); every other link drops 90% of its messages.
//
// Expected shape: the relayed algorithm stabilizes and eventually only the
// leader *originates* messages (the flooding itself keeps all links busy —
// the paper's "communication-efficient with respect to new messages");
// the bare algorithm cannot stabilize on this topology.
func E10RelayedPaths(o Opts) Table {
	o.fill()
	horizon := 40 * time.Second
	if o.Quick {
		horizon = 20 * time.Second
	}
	t := Table{
		ID:    "E10",
		Title: "relaying: timely paths instead of timely links (Table 6)",
		Note: fmt.Sprintf("n=4; timely chain p3→p2→{p0,p1} (and back); all other links drop 90%%; horizon %v; 'originators' counts processes creating new messages in the final quarter",
			horizon),
		Columns: []string{"variant", "Ω holds", "agreed leader", "originators (tail)", "msgs/η (tail)", "leader changes"},
	}
	type run struct {
		holds   string
		leader  node.ID
		origins int
		rate    float64
		changes int
	}
	variants := []bool{true, false}
	res := sweepEach(o, variants, func(relayOn bool) run {
		holds, leader, origins, rate, changes := relayRun(relayOn, horizon, 9)
		return run{holds: holds, leader: leader, origins: origins, rate: rate, changes: changes}
	})
	for ci, relayOn := range variants {
		r := res[ci]
		name := "core bare"
		if relayOn {
			name = "core + relay"
		}
		leaderStr := "—"
		if r.leader != node.None {
			leaderStr = fmt.Sprintf("p%d", r.leader)
		}
		t.Rows = append(t.Rows, []string{
			name, r.holds, leaderStr,
			fmt.Sprintf("%d", r.origins),
			fmt.Sprintf("%.1f", r.rate),
			fmt.Sprintf("%d", r.changes),
		})
	}
	return t
}

// relayRun executes one E10 cell and extracts its metrics.
func relayRun(relayOn bool, horizon time.Duration, seed int64) (holds string, leader node.ID, originators int, msgsPerEta float64, changes int) {
	w, err := node.NewWorld(node.WorldConfig{
		N: 4, Seed: seed,
		DefaultLink: network.FairLossy(time.Millisecond, 30*time.Millisecond, 0.9),
	})
	if err != nil {
		panic(err)
	}
	for _, link := range [][2]int{{3, 2}, {2, 0}, {2, 1}, {0, 2}, {1, 2}, {2, 3}} {
		if err := w.Fabric.SetProfile(link[0], link[1], network.Timely(2*time.Millisecond)); err != nil {
			panic(err)
		}
	}
	dets := make([]*core.Detector, 4)
	wraps := make([]*relay.Wrapper, 4)
	for i := range dets {
		dets[i] = core.New(core.WithEta(Eta))
		if relayOn {
			wraps[i] = relay.Wrap(dets[i])
			w.SetAutomaton(node.ID(i), wraps[i])
		} else {
			w.SetAutomaton(node.ID(i), dets[i])
		}
	}
	w.Start()

	tailStart := sim.At(horizon * 3 / 4)
	w.RunUntil(tailStart, nil)
	var originatedAtTail [4]uint64
	if relayOn {
		for i, wr := range wraps {
			originatedAtTail[i] = wr.Originated()
		}
	}
	w.RunUntil(sim.At(horizon), nil)

	for _, d := range dets {
		changes += d.History().NumChanges()
	}
	leader = dets[0].Leader()
	agree := true
	lastChange := sim.TimeZero
	for _, d := range dets {
		if d.Leader() != leader {
			agree = false
		}
		if at, _ := d.History().StableSince(); at > lastChange {
			lastChange = at
		}
	}
	holds = "no"
	if agree && lastChange <= tailStart {
		holds = "yes"
	} else {
		leader = node.None
	}

	if relayOn {
		for i, wr := range wraps {
			if wr.Originated() > originatedAtTail[i] {
				originators++
			}
		}
	}
	snap := w.Stats.Snapshot()
	if !relayOn {
		originators = len(snap.SendersSince(tailStart))
	}
	msgsPerEta = float64(snap.MessagesInWindow(tailStart, sim.At(horizon))) /
		(float64(horizon/4) / float64(Eta))
	return holds, leader, originators, msgsPerEta, changes
}
