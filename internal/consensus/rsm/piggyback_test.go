package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
)

// newPiggybackCluster is newCluster with the piggyback option.
func newPiggybackCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: network.Timely(2 * ms)})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{world: w, dets: make([]*core.Detector, n), nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		c.dets[i] = core.New(core.WithEta(10 * ms))
		c.nodes[i] = New(c.dets[i], Config{PiggybackDecides: true})
		w.SetAutomaton(node.ID(i), node.Compose(c.dets[i], c.nodes[i]))
	}
	return c
}

func TestPiggybackDecidesConvergeWithoutDecideBroadcasts(t *testing.T) {
	c := newPiggybackCluster(t, 5, 21)
	c.world.Start()
	c.world.RunFor(500 * ms)
	// Streaming workload: each command's ACCEPT piggybacks the previous
	// command's commit, so followers learn without DECIDE broadcasts.
	for i := 0; i < 10; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
		c.world.RunFor(30 * ms)
	}
	c.world.RunFor(2 * time.Second)
	for i, s := range c.nodes {
		if s.FirstGap() < 10 {
			t.Fatalf("p%d decided %d instances, want 10", i, s.FirstGap())
		}
	}
	c.assertPrefixAgreement(t)
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
	// Only the idle tail needs LEARN-triggered decides: the last one or
	// two instances per follower, far below the 10·(n−1)=40 of the
	// broadcast scheme.
	if got := c.world.Stats.KindCount(KindDecide); got > 12 {
		t.Fatalf("DECIDE messages = %d, want ≤ 12 with piggybacking", got)
	}
}

func TestPiggybackCheaperUnderLoad(t *testing.T) {
	run := func(piggyback bool) float64 {
		w, err := node.NewWorld(node.WorldConfig{N: 5, Seed: 22, DefaultLink: network.Timely(2 * ms)})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*Node, 5)
		for i := 0; i < 5; i++ {
			det := core.New(core.WithEta(10 * ms))
			nodes[i] = New(det, Config{PiggybackDecides: piggyback})
			w.SetAutomaton(node.ID(i), node.Compose(det, nodes[i]))
		}
		w.Start()
		w.RunFor(500 * ms)
		const cmds = 30
		for i := 0; i < cmds; i++ {
			nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
			w.RunFor(30 * ms) // continuous stream
		}
		w.RunFor(time.Second)
		total := w.Stats.KindCount(KindAccept) + w.Stats.KindCount(KindAccepted) +
			w.Stats.KindCount(KindDecide) + w.Stats.KindCount(KindLearn)
		return float64(total) / cmds
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("piggyback %.1f msgs/cmd >= plain %.1f", with, without)
	}
	// Plain ≈ 3(n-1) = 12; piggyback ≈ 2(n-1) = 8 plus idle-tail learns.
	if without < 11 || without > 14 {
		t.Fatalf("plain msgs/cmd = %.1f, want ≈ 12", without)
	}
	if with > 10.5 {
		t.Fatalf("piggyback msgs/cmd = %.1f, want ≈ 8-10", with)
	}
}

func TestPiggybackSafetyUnderLeaderCrash(t *testing.T) {
	c := newPiggybackCluster(t, 5, 23)
	c.world.Start()
	c.world.RunFor(300 * ms)
	for i := 0; i < 6; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("pre%d", i)))
	}
	c.world.RunFor(25 * ms)
	c.world.Crash(0)
	c.nodes[1].Submit("after")
	c.world.RunFor(5 * time.Second)
	c.assertPrefixAgreement(t)
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestCommitUpToOnlyAppliesAtSameBallot(t *testing.T) {
	// An acceptor holding a value from an older ballot must NOT treat it
	// as decided when a new leader's CommitUpTo covers the instance.
	r := New(consensus.StaticLeader(1), Config{PiggybackDecides: true})
	env := newFakeEnv(2, 3)
	r.Start(env)
	oldB := consensus.MakeBallot(1, 0, 3)
	newB := consensus.MakeBallot(5, 1, 3)
	r.Deliver(0, AcceptMsg{B: oldB, Inst: 0, V: "old"})
	env.drain()
	// New leader commits instance 1 but our instance-0 entry is from the
	// old ballot: it must stay undecided.
	r.Deliver(1, AcceptMsg{B: newB, Inst: 1, V: "new", CommitUpTo: 1})
	if _, ok := r.Get(0); ok {
		t.Fatal("instance 0 decided from a stale-ballot entry")
	}
	// Once the same instance is re-accepted at the new ballot, a later
	// CommitUpTo does decide it.
	r.Deliver(1, AcceptMsg{B: newB, Inst: 0, V: "repaired", CommitUpTo: 0})
	r.Deliver(1, AcceptMsg{B: newB, Inst: 2, V: "x", CommitUpTo: 2})
	v, ok := r.Get(0)
	if !ok || v != "repaired" {
		t.Fatalf("instance 0 = %q,%v; want repaired value decided", v, ok)
	}
	if _, ok := r.Get(1); !ok {
		t.Fatal("instance 1 not decided by CommitUpTo=2")
	}
}
