package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

type cluster struct {
	world *node.World
	dets  []*core.Detector
	nodes []*Node
}

func newCluster(t *testing.T, n int, seed int64, link network.Profile) *cluster {
	t.Helper()
	return newClusterCfg(t, n, seed, link, Config{})
}

// newClusterCfg builds a simulated cluster with an explicit engine
// config — the lease tests need Config.Lease, everything else uses the
// defaults via newCluster.
func newClusterCfg(t *testing.T, n int, seed int64, link network.Profile, cfg Config) *cluster {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{world: w, dets: make([]*core.Detector, n), nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		c.dets[i] = core.New(core.WithEta(10 * ms))
		c.nodes[i] = New(c.dets[i], cfg)
		w.SetAutomaton(node.ID(i), node.Compose(c.dets[i], c.nodes[i]))
	}
	return c
}

func (c *cluster) safety() consensus.SafetyReport {
	recs := make([]*consensus.Recorder, len(c.nodes))
	for i, s := range c.nodes {
		recs[i] = s.Recorder()
	}
	return consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
}

// appliedSet returns the individual commands decided at node i, decoded
// out of their batch envelopes.
func (c *cluster) appliedSet(i int) map[consensus.Value]bool {
	out := make(map[consensus.Value]bool)
	for inst := 0; inst < c.nodes[i].FirstGap(); inst++ {
		v, _ := c.nodes[i].Get(inst)
		for _, cmd := range decodeBatch(v) {
			out[cmd] = true
		}
	}
	return out
}

// assertPrefixAgreement verifies that all alive replicas have identical
// decided prefixes up to the shortest FirstGap.
func (c *cluster) assertPrefixAgreement(t *testing.T) {
	t.Helper()
	minGap := -1
	for i, s := range c.nodes {
		if !c.world.Alive(node.ID(i)) {
			continue
		}
		if minGap == -1 || s.FirstGap() < minGap {
			minGap = s.FirstGap()
		}
	}
	for inst := 0; inst < minGap; inst++ {
		var want consensus.Value
		first := true
		for i, s := range c.nodes {
			if !c.world.Alive(node.ID(i)) {
				continue
			}
			v, ok := s.Get(inst)
			if !ok {
				t.Fatalf("p%d missing decided instance %d below its gap", i, inst)
			}
			if first {
				want = v
				first = false
			} else if v != want {
				t.Fatalf("instance %d: p%d has %q, others %q", inst, i, v, want)
			}
		}
	}
}

func TestCommandsFromLeaderGetDecidedEverywhere(t *testing.T) {
	c := newCluster(t, 5, 1, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms) // let Omega stabilize on p0
	for i := 0; i < 10; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("cmd-%d", i)))
	}
	c.world.RunFor(2 * time.Second)
	for i := range c.nodes {
		applied := c.appliedSet(i)
		for j := 0; j < 10; j++ {
			if !applied[consensus.Value(fmt.Sprintf("cmd-%d", j))] {
				t.Fatalf("p%d never applied cmd-%d", i, j)
			}
		}
	}
	c.assertPrefixAgreement(t)
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestCommandsFromFollowersAreForwarded(t *testing.T) {
	c := newCluster(t, 4, 2, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms)
	for i, s := range c.nodes {
		s.Submit(consensus.Value(fmt.Sprintf("from-p%d", i)))
	}
	c.world.RunFor(3 * time.Second)
	c.assertPrefixAgreement(t)
	// Every submitted command must appear somewhere in every decided log.
	for i := range c.nodes {
		decided := c.appliedSet(i)
		for j := range c.nodes {
			if !decided[consensus.Value(fmt.Sprintf("from-p%d", j))] {
				t.Fatalf("p%d never decided the command from p%d", i, j)
			}
		}
	}
}

func TestLeaderCrashMidStream(t *testing.T) {
	c := newCluster(t, 5, 3, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms)
	for i := 0; i < 6; i++ {
		c.nodes[2].Submit(consensus.Value(fmt.Sprintf("pre-%d", i)))
	}
	c.world.RunFor(100 * ms)
	c.world.Crash(0) // the stable leader dies
	c.world.RunFor(100 * ms)
	for i := 0; i < 6; i++ {
		c.nodes[3].Submit(consensus.Value(fmt.Sprintf("post-%d", i)))
	}
	c.world.RunFor(5 * time.Second)
	c.assertPrefixAgreement(t)
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
	// All post-crash commands must be decided at every survivor
	// (pre-crash ones may appear duplicated — at-least-once semantics —
	// but must not be lost if they were acked into a quorum; we assert
	// only the post-crash ones which have a stable leader).
	for idx := 1; idx < 5; idx++ {
		decided := c.appliedSet(idx)
		for i := 0; i < 6; i++ {
			if !decided[consensus.Value(fmt.Sprintf("post-%d", i))] {
				t.Fatalf("p%d missing post-crash command %d", idx, i)
			}
		}
	}
}

func TestSteadyStateCostIsLinearPerBatch(t *testing.T) {
	// E7-style accounting with batching: a burst of commands coalesces
	// into a handful of instances, and each instance — whatever its batch
	// size — costs ≈ 3(n−1) consensus messages (ACCEPT + ACCEPTED +
	// DECIDE) under a prepared ballot. The per-command cost therefore
	// drops with the batch size.
	const n = 5
	// Leases on: the trailing read series below asserts the zero-message
	// read path. A long lease keeps idle refresh traffic out of the
	// measurement windows.
	c := newClusterCfg(t, n, 4, network.Timely(2*ms), Config{Lease: 2 * time.Second})
	var readsAnswered, readsLocal int
	c.nodes[0].OnReadReply(func(m ReadReplyMsg) {
		readsAnswered += int(m.Count)
		if m.Local {
			readsLocal += int(m.Count)
		}
	})
	c.world.Start()
	c.world.RunFor(500 * ms) // leader stable, ballot prepared
	startGap := c.nodes[0].FirstGap()
	startApplied := c.nodes[0].Applied()
	const cmds = 20
	for i := 0; i < cmds; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
	}
	c.world.RunFor(2 * time.Second)
	if got := c.nodes[0].Applied() - startApplied; got < cmds {
		t.Fatalf("leader applied %d new commands, want %d", got, cmds)
	}
	batches := c.nodes[0].FirstGap() - startGap
	if batches >= cmds {
		t.Fatalf("burst of %d commands used %d instances — batching never kicked in", cmds, batches)
	}
	consensusMsgs := float64(c.world.Stats.KindCount(KindAccept) +
		c.world.Stats.KindCount(KindAccepted) +
		c.world.Stats.KindCount(KindDecide))
	perBatch := consensusMsgs / float64(batches)
	if perBatch > 3.6*float64(n-1) {
		t.Fatalf("consensus messages per batch = %.1f, want ≈ 3(n-1) = %d", perBatch, 3*(n-1))
	}
	// Amortization: the per-command cost must land well below the
	// unbatched 3(n−1).
	if perCmd := consensusMsgs / cmds; perCmd > 1.5*float64(n-1) {
		t.Fatalf("consensus messages per command = %.1f with batching, want ≤ 1.5(n-1) = %.0f", perCmd, 1.5*float64(n-1))
	}

	// Read series: with the quorum lease held after the write burst, the
	// leader serves reads locally — the per-read consensus cost is ~0.
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("leader does not hold the lease after the write burst")
	}
	kinds := []string{KindPrepare, KindPromise, KindAccept, KindAccepted,
		KindDecide, KindLeaseGrant, KindLeaseAck, KindReadReq, KindReadReply}
	before := make(map[string]uint64, len(kinds))
	for _, k := range kinds {
		before[k] = c.world.Stats.KindCount(k)
	}
	const readSeries = 200
	for i := 0; i < readSeries; i++ {
		c.nodes[0].Read(uint64(1+i), 1)
	}
	c.world.RunFor(200 * ms)
	if readsAnswered != readSeries || readsLocal != readSeries {
		t.Fatalf("answered %d reads (%d local), want %d local", readsAnswered, readsLocal, readSeries)
	}
	// Leader-origin reads under a lease touch the wire not at all; the
	// only tolerated traffic is a stray idle lease refresh.
	var total uint64
	for _, k := range kinds {
		delta := c.world.Stats.KindCount(k) - before[k]
		total += delta
		if k != KindLeaseGrant && k != KindLeaseAck && delta != 0 {
			t.Fatalf("read series sent %d %s messages, want 0", delta, k)
		}
	}
	if perRead := float64(total) / readSeries; perRead >= 0.1 {
		t.Fatalf("consensus messages per read = %.3f while lease held, want ~0", perRead)
	}
	if got := c.nodes[0].LocalReads(); got < readSeries {
		t.Fatalf("leader's local-read counter = %d, want >= %d", got, readSeries)
	}
}

func TestNoPhase1PerCommandAfterStableLeader(t *testing.T) {
	c := newCluster(t, 4, 5, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(500 * ms)
	prepares := c.world.Stats.KindCount(KindPrepare)
	for i := 0; i < 15; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
		c.world.RunFor(50 * ms)
	}
	if got := c.world.Stats.KindCount(KindPrepare); got != prepares {
		t.Fatalf("PREPAREs grew from %d to %d during steady state (phase 1 must run once)", prepares, got)
	}
}

func TestSafetyUnderChurnManySeeds(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := newCluster(t, 5, seed, network.Reliable(ms, 50*ms))
		c.world.Start()
		for i := 0; i < 8; i++ {
			c.nodes[int(seed+int64(i))%5].Submit(consensus.Value(fmt.Sprintf("s%d-c%d", seed, i)))
		}
		c.world.CrashAt(node.ID(seed%5), sim.At(time.Duration(seed%7)*30*ms))
		c.world.RunFor(20 * time.Second)
		if rep := c.safety(); !rep.Holds() {
			t.Fatalf("seed %d: %v", seed, rep.Violations)
		}
		c.assertPrefixAgreement(t)
	}
}

func TestGapFillViaLearn(t *testing.T) {
	c := newCluster(t, 3, 6, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms)
	for i := 0; i < 5; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
	}
	c.world.RunFor(time.Second)
	// Simulate a replica that missed decisions: wipe p2's view by
	// delivering a fresh node... instead, check the learn path directly.
	var env2 = c.world.Env(2)
	_ = env2
	lagger := c.nodes[2]
	gap := c.nodes[0].FirstGap() // instances, fewer than commands when batched
	if gap < 2 || lagger.FirstGap() != gap {
		t.Fatalf("p2 gap = %d before test, want the leader's %d", lagger.FirstGap(), gap)
	}
	if got := lagger.Applied(); got < 5 {
		t.Fatalf("p2 applied %d commands, want 5", got)
	}
	// Direct unit probe of onLearn: ask p0 for all decided instances.
	before := c.world.Stats.KindCount(KindDecide)
	c.nodes[0].Deliver(2, LearnMsg{FirstGap: 0})
	if got := c.world.Stats.KindCount(KindDecide); got != before+uint64(gap) {
		t.Fatalf("learn reply sent %d decides, want %d", got-before, gap)
	}
}

func TestNoopFillerOnLeaderChange(t *testing.T) {
	// Force a gap: leader accepts an instance with only itself, crashes;
	// next leader must fill with no-op or re-propose. We approximate by
	// crashing the leader right after submissions and checking the final
	// log has no holes below every survivor's gap.
	c := newCluster(t, 5, 7, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(300 * ms)
	for i := 0; i < 4; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
	}
	c.world.RunFor(21 * ms) // mid-flight
	c.world.Crash(0)
	c.nodes[1].Submit("after")
	c.world.RunFor(5 * time.Second)
	c.assertPrefixAgreement(t)
	for i := 1; i < 5; i++ {
		gap := c.nodes[i].FirstGap()
		for inst := 0; inst < gap; inst++ {
			if _, ok := c.nodes[i].Get(inst); !ok {
				t.Fatalf("p%d has a hole at %d below its gap", i, inst)
			}
		}
	}
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestIsLeaderReflectsPreparedState(t *testing.T) {
	c := newCluster(t, 3, 8, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(time.Second)
	if !c.nodes[0].IsLeader() {
		t.Fatal("p0 not leader after stabilization")
	}
	if c.nodes[1].IsLeader() || c.nodes[2].IsLeader() {
		t.Fatal("follower claims leadership")
	}
}

func TestHighestDecidedAndGetters(t *testing.T) {
	c := newCluster(t, 3, 9, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms)
	c.nodes[0].Submit("only")
	c.world.RunFor(time.Second)
	if c.nodes[1].HighestDecided() != 0 {
		t.Fatalf("HighestDecided = %d", c.nodes[1].HighestDecided())
	}
	v, ok := c.nodes[1].Get(0)
	if !ok || v != "only" {
		t.Fatalf("Get(0) = %q,%v", v, ok)
	}
	if _, ok := c.nodes[1].Get(7); ok {
		t.Fatal("Get(7) found a value")
	}
}
