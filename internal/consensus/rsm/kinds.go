package rsm

import "repro/internal/obs"

// Kind ids are interned once at package init so the replicated-log send
// path (node.KindIDer fast path) never hashes a kind string.
var (
	kindRequestID  = obs.Intern(KindRequest)
	kindPrepareID  = obs.Intern(KindPrepare)
	kindPromiseID  = obs.Intern(KindPromise)
	kindNackID     = obs.Intern(KindNack)
	kindAcceptID   = obs.Intern(KindAccept)
	kindAcceptedID = obs.Intern(KindAccepted)
	kindDecideID   = obs.Intern(KindDecide)
	kindLearnID    = obs.Intern(KindLearn)
)

// KindID implements node.KindIDer.
func (RequestMsg) KindID() obs.Kind { return kindRequestID }

// KindID implements node.KindIDer.
func (PrepareMsg) KindID() obs.Kind { return kindPrepareID }

// KindID implements node.KindIDer.
func (PromiseMsg) KindID() obs.Kind { return kindPromiseID }

// KindID implements node.KindIDer.
func (NackMsg) KindID() obs.Kind { return kindNackID }

// KindID implements node.KindIDer.
func (AcceptMsg) KindID() obs.Kind { return kindAcceptID }

// KindID implements node.KindIDer.
func (AcceptedMsg) KindID() obs.Kind { return kindAcceptedID }

// KindID implements node.KindIDer.
func (DecideMsg) KindID() obs.Kind { return kindDecideID }

// KindID implements node.KindIDer.
func (LearnMsg) KindID() obs.Kind { return kindLearnID }
