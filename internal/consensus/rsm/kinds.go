package rsm

import "repro/internal/obs"

// Kind ids are interned once at package init so the replicated-log send
// path (node.KindIDer fast path) never hashes a kind string.
var (
	kindRequestID  = obs.Intern(KindRequest)
	kindPrepareID  = obs.Intern(KindPrepare)
	kindPromiseID  = obs.Intern(KindPromise)
	kindNackID     = obs.Intern(KindNack)
	kindAcceptID   = obs.Intern(KindAccept)
	kindAcceptedID = obs.Intern(KindAccepted)
	kindDecideID   = obs.Intern(KindDecide)
	kindLearnID    = obs.Intern(KindLearn)

	kindLeaseGrantID = obs.Intern(KindLeaseGrant)
	kindLeaseAckID   = obs.Intern(KindLeaseAck)
	kindReadReqID    = obs.Intern(KindReadReq)
	kindReadReplyID  = obs.Intern(KindReadReply)
)

// KindID implements node.KindIDer.
func (RequestMsg) KindID() obs.Kind { return kindRequestID }

// KindID implements node.KindIDer.
func (PrepareMsg) KindID() obs.Kind { return kindPrepareID }

// KindID implements node.KindIDer.
func (PromiseMsg) KindID() obs.Kind { return kindPromiseID }

// KindID implements node.KindIDer.
func (NackMsg) KindID() obs.Kind { return kindNackID }

// KindID implements node.KindIDer.
func (AcceptMsg) KindID() obs.Kind { return kindAcceptID }

// KindID implements node.KindIDer.
func (AcceptedMsg) KindID() obs.Kind { return kindAcceptedID }

// KindID implements node.KindIDer.
func (DecideMsg) KindID() obs.Kind { return kindDecideID }

// KindID implements node.KindIDer.
func (LearnMsg) KindID() obs.Kind { return kindLearnID }

// KindID implements node.KindIDer.
func (LeaseGrantMsg) KindID() obs.Kind { return kindLeaseGrantID }

// KindID implements node.KindIDer.
func (LeaseAckMsg) KindID() obs.Kind { return kindLeaseAckID }

// KindID implements node.KindIDer.
func (ReadReqMsg) KindID() obs.Kind { return kindReadReqID }

// KindID implements node.KindIDer.
func (ReadReplyMsg) KindID() obs.Kind { return kindReadReplyID }
