package rsm

import (
	"sort"
	"time"

	"repro/internal/consensus"
	"repro/internal/durable"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// This file is the applier layer: it walks the contiguous decided prefix
// in order, unpacks batch envelopes, and fans out one Decision per
// command. Latency is per command, enqueue-to-apply: the proposing leader
// remembers when each command entered its queue and stamps the difference
// at apply time; everywhere else Elapsed is zero ("unknown").

// proposal remembers what the leader proposed in an instance and when
// each command in it was enqueued.
type proposal struct {
	env consensus.Value
	enq []sim.Time
	// reqs are the per-command trace contexts (nil when no command in
	// the batch is traced) and decidedAt the quorum-completion instant,
	// so apply can record the final stage span under each trace.
	reqs      []tracing.Context
	decidedAt sim.Time
}

// applier tracks apply progress and decision fan-out.
type applier struct {
	next    int // next instance to apply; always firstGap after apply()
	count   int // commands applied, noops included
	onApply func(inst, cmd int, v consensus.Value)
	props   map[int]proposal
}

func newApplier() applier { return applier{props: make(map[int]proposal)} }

// track remembers a proposal for latency stamping at apply time.
func (a *applier) track(inst int, env consensus.Value, enq []sim.Time, reqs []tracing.Context) {
	a.props[inst] = proposal{env: env, enq: enq, reqs: reqs}
}

// apply runs the applier over every newly contiguous decided instance:
// decode, fan out per-command Decisions, retire matching pending
// commands, and advance the Done vector's own entry.
func (r *Node) apply() {
	now := r.env.Now()
	for {
		v, ok := r.log.get(r.app.next)
		if !ok {
			break
		}
		inst := r.app.next
		r.app.next++
		prop, tracked := r.app.props[inst]
		if tracked {
			delete(r.app.props, inst)
			if prop.env != v {
				tracked = false // our proposal lost this instance
			}
		}
		for k, cmd := range decodeBatch(v) {
			var elapsed time.Duration
			if tracked && k < len(prop.enq) {
				elapsed = now.Sub(prop.enq[k])
			}
			if tracked && k < len(prop.reqs) && prop.reqs[k].Valid() {
				// Stage three, closing the trace: decide to apply. An
				// instance decided without our own quorum (learned via
				// DecideMsg) has no decidedAt; its apply span is a point.
				start := prop.decidedAt
				if start == 0 {
					start = now
				}
				r.cfg.Tracer.Record(start, now, prop.reqs[k], "apply", -1, "")
			}
			r.rec.Record(consensus.Decision{
				Instance: inst, Cmd: k, Value: cmd,
				At: now, By: r.me, Elapsed: elapsed,
			})
			if r.app.onApply != nil {
				r.app.onApply(inst, k, cmd)
			}
			r.app.count++
			r.bat.retire(cmd)
		}
	}
	r.dones.observe(r.me, r.log.firstGap)
	if r.cfg.Forget && r.prop.prepared {
		r.maybeForget(r.dones.min())
	}
	r.completeFallbackReads()
	r.maybeSnapshot()
}

// maybeSnapshot checkpoints the durable store once SnapshotEvery
// commands have been applied since the last checkpoint. The snapshot
// absorbs the contiguous applied prefix (below firstGap) into the App
// payload; entries at or above it — decided-but-unapplied islands and
// open acceptor votes — ride along explicitly. In-memory forgetting is
// untouched: logbook.retained() stays governed by the Done vector, the
// snapshot only moves the *durable* horizon.
func (r *Node) maybeSnapshot() {
	if r.cfg.SnapshotEvery <= 0 || r.app.count-r.snapBase < r.cfg.SnapshotEvery {
		return
	}
	st := &durable.State{
		Promised:  uint64(r.acc.promised),
		Ballot:    uint64(r.prop.ballot),
		SnapIndex: uint64(r.log.firstGap),
		SnapCount: uint64(r.app.count),
	}
	if r.cfg.SnapshotState != nil {
		st.App = r.cfg.SnapshotState()
	}
	for inst, v := range r.log.entries {
		if inst >= r.log.firstGap {
			st.Decided = append(st.Decided, durable.DecidedRec{Inst: uint64(inst), V: string(v)})
		}
	}
	sort.Slice(st.Decided, func(i, j int) bool { return st.Decided[i].Inst < st.Decided[j].Inst })
	for inst, e := range r.acc.accepted {
		st.Accepted = append(st.Accepted, durable.AcceptedRec{Inst: uint64(inst), B: uint64(e.b), V: string(e.v)})
	}
	sort.Slice(st.Accepted, func(i, j int) bool { return st.Accepted[i].Inst < st.Accepted[j].Inst })
	if err := r.cfg.Store.Snapshot(st); err != nil {
		// Nothing is lost on a failed checkpoint — the WAL keeps every
		// record — it just cannot compact yet. Retry at the next batch.
		r.env.Logf("rsm: snapshot at %d failed: %v", r.log.firstGap, err)
		return
	}
	r.snapBase = r.app.count
}
