package rsm

import (
	"time"

	"repro/internal/consensus"
	"repro/internal/sim"
)

// This file is the applier layer: it walks the contiguous decided prefix
// in order, unpacks batch envelopes, and fans out one Decision per
// command. Latency is per command, enqueue-to-apply: the proposing leader
// remembers when each command entered its queue and stamps the difference
// at apply time; everywhere else Elapsed is zero ("unknown").

// proposal remembers what the leader proposed in an instance and when
// each command in it was enqueued.
type proposal struct {
	env consensus.Value
	enq []sim.Time
}

// applier tracks apply progress and decision fan-out.
type applier struct {
	next    int // next instance to apply; always firstGap after apply()
	count   int // commands applied, noops included
	onApply func(inst, cmd int, v consensus.Value)
	props   map[int]proposal
}

func newApplier() applier { return applier{props: make(map[int]proposal)} }

// track remembers a proposal for latency stamping at apply time.
func (a *applier) track(inst int, env consensus.Value, enq []sim.Time) {
	a.props[inst] = proposal{env: env, enq: enq}
}

// apply runs the applier over every newly contiguous decided instance:
// decode, fan out per-command Decisions, retire matching pending
// commands, and advance the Done vector's own entry.
func (r *Node) apply() {
	now := r.env.Now()
	for {
		v, ok := r.log.get(r.app.next)
		if !ok {
			break
		}
		inst := r.app.next
		r.app.next++
		prop, tracked := r.app.props[inst]
		if tracked {
			delete(r.app.props, inst)
			if prop.env != v {
				tracked = false // our proposal lost this instance
			}
		}
		for k, cmd := range decodeBatch(v) {
			var elapsed time.Duration
			if tracked && k < len(prop.enq) {
				elapsed = now.Sub(prop.enq[k])
			}
			r.rec.Record(consensus.Decision{
				Instance: inst, Cmd: k, Value: cmd,
				At: now, By: r.me, Elapsed: elapsed,
			})
			if r.app.onApply != nil {
				r.app.onApply(inst, k, cmd)
			}
			r.app.count++
			r.bat.retire(cmd)
		}
	}
	r.dones.observe(r.me, r.log.firstGap)
	if r.cfg.Forget && r.prop.prepared {
		r.maybeForget(r.dones.min())
	}
	r.completeFallbackReads()
}
