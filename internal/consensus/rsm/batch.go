package rsm

import (
	"encoding/binary"
	"strings"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// This file is the batching layer: queued client commands and the
// envelope codec that packs many commands into one proposable value. A
// batch of k commands costs the same phase-2 traffic as a single command
// — 3(n−1) messages (2(n−1) piggybacked) — so throughput scales with
// Config.BatchMax while per-instance cost stays flat.

// batchPrefix marks an encoded batch envelope. Client commands are
// opaque; one that happens to start with the marker is wrapped in a
// (single-command) envelope so decoding stays unambiguous.
const batchPrefix = "\x00b"

// encodeBatch packs commands into one proposable value. A lone command
// without the marker prefix is proposed raw — the unbatched fast path
// keeps old logs, tests and tools readable.
func encodeBatch(cmds []consensus.Value) consensus.Value {
	if len(cmds) == 1 && !strings.HasPrefix(string(cmds[0]), batchPrefix) {
		return cmds[0]
	}
	size := len(batchPrefix) + binary.MaxVarintLen64
	for _, c := range cmds {
		size += binary.MaxVarintLen64 + len(c)
	}
	b := make([]byte, 0, size)
	b = append(b, batchPrefix...)
	b = binary.AppendUvarint(b, uint64(len(cmds)))
	for _, c := range cmds {
		b = binary.AppendUvarint(b, uint64(len(c)))
		b = append(b, c...)
	}
	return consensus.Value(b)
}

// decodeBatch unpacks an envelope into its commands. A value without the
// marker is a single raw command. A malformed envelope (impossible from
// encodeBatch) decodes as itself, so a corrupt value can at worst apply
// as one odd command rather than derail the applier.
func decodeBatch(v consensus.Value) []consensus.Value {
	s := string(v)
	if !strings.HasPrefix(s, batchPrefix) {
		return []consensus.Value{v}
	}
	rest := s[len(batchPrefix):]
	count, n := binary.Uvarint([]byte(rest))
	if n <= 0 {
		return []consensus.Value{v}
	}
	rest = rest[n:]
	out := make([]consensus.Value, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint([]byte(rest))
		if n <= 0 || uint64(len(rest)-n) < size {
			return []consensus.Value{v}
		}
		out = append(out, consensus.Value(rest[n:n+int(size)]))
		rest = rest[n+int(size):]
	}
	return out
}

// pendingCmd is one locally submitted command not yet applied anywhere
// this replica knows of.
type pendingCmd struct {
	v consensus.Value
	// enq is when this replica queued the command — the start of the
	// per-command latency the applier stamps on Decisions.
	enq        sim.Time
	lastSentTo node.ID
	lastSentAt sim.Time
	// tctx is the command's trace context (zero when unsampled), carried
	// from ingress through forwarding, batching and apply.
	tctx tracing.Context
}

// batcher is the client-command queue. On a leader, commands wait here
// until pump packs them into batches; on a follower they are forwarded
// (and re-forwarded) to the believed leader until seen applied.
type batcher struct {
	pending []*pendingCmd
}

// add queues a command.
func (b *batcher) add(v consensus.Value, now sim.Time, tctx tracing.Context) {
	b.pending = append(b.pending, &pendingCmd{v: v, enq: now, lastSentTo: node.None, tctx: tctx})
}

// take collects up to max commands not yet assigned by leader me,
// marking them assigned. A partial batch is only taken when allowPartial
// — the caller allows it when the pipeline is empty (nothing to overlap
// with, so waiting buys nothing) or on the drive tick (bounding queue
// latency at one tick).
func (b *batcher) take(me node.ID, max int, allowPartial bool, now sim.Time) ([]consensus.Value, []sim.Time, []tracing.Context) {
	var picked []*pendingCmd
	for _, p := range b.pending {
		if p.lastSentTo == me {
			continue // already riding in an instance
		}
		picked = append(picked, p)
		if len(picked) == max {
			break
		}
	}
	if len(picked) == 0 || (len(picked) < max && !allowPartial) {
		return nil, nil, nil
	}
	cmds := make([]consensus.Value, len(picked))
	enqs := make([]sim.Time, len(picked))
	var tctxs []tracing.Context // allocated only when a picked command is traced
	for i, p := range picked {
		p.lastSentTo = me
		p.lastSentAt = now
		cmds[i] = p.v
		enqs[i] = p.enq
		if p.tctx.Valid() {
			if tctxs == nil {
				tctxs = make([]tracing.Context, len(picked))
			}
			tctxs[i] = p.tctx
		}
	}
	return cmds, enqs, tctxs
}

// retire drops the first pending command matching an applied value.
func (b *batcher) retire(v consensus.Value) {
	for i, p := range b.pending {
		if p.v == v {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// pump packs queued commands into batches and feeds the pipeline while
// the window has room. Policy: a full batch goes immediately; a partial
// batch goes only when nothing is in flight (force=false) or on the
// drive tick (force=true), so bursts coalesce but queue latency stays
// bounded by one DriveInterval.
func (r *Node) pump() { r.pumpBatches(false) }

func (r *Node) pumpBatches(force bool) {
	if !r.prop.prepared {
		return
	}
	for r.pipe.hasRoom(r.cfg.Window) {
		allowPartial := force || len(r.pipe.inflights) == 0
		now := r.env.Now()
		cmds, enqs, tctxs := r.bat.take(r.me, r.cfg.BatchMax, allowPartial, now)
		if len(cmds) == 0 {
			return
		}
		for i, ctx := range tctxs {
			// Stage one of a traced command's life: the queue wait,
			// enqueue to batch formation.
			r.cfg.Tracer.Record(enqs[i], now, ctx, "queue", -1, "")
		}
		r.propose(encodeBatch(cmds), enqs, tctxs)
	}
}

// forwardPending sends unserved local commands to the believed leader.
func (r *Node) forwardPending(leader node.ID) {
	if leader == node.None || leader == r.me {
		return
	}
	now := r.env.Now()
	for _, p := range r.bat.pending {
		if p.lastSentTo == leader && now.Sub(p.lastSentAt) <= r.cfg.RetryTimeout {
			continue
		}
		p.lastSentTo = leader
		p.lastSentAt = now
		r.env.Send(leader, r.traced(p.tctx, RequestMsg{V: p.v}))
	}
}

// DecodeBatch unpacks a decided value into its constituent commands —
// the offline counterpart of the applier's fan-out, for tools replaying
// recovered logs (cmd/chaossoak's replay-equivalence check). A value
// without the batch marker is one raw command.
func DecodeBatch(v consensus.Value) []consensus.Value { return decodeBatch(v) }

// BatchRequest packs several client commands into one request message;
// the serving leader unpacks the envelope into individual pending
// commands. Clients with their own queues use this to amortize the
// request hop the same way the leader amortizes phase 2.
func BatchRequest(cmds []consensus.Value) RequestMsg {
	return RequestMsg{V: encodeBatch(cmds)}
}

func (r *Node) onRequest(m RequestMsg) {
	if !r.prop.prepared || r.omega.Leader() != r.me {
		return // the client will re-forward to the real leader
	}
	now := r.env.Now()
	// A traced request (wrapped by the client or a forwarding replica)
	// hands its context to every command it carries; the sampling
	// decision stays with the trace originator.
	for _, v := range decodeBatch(m.V) {
		r.bat.add(v, now, r.curCtx)
	}
	r.pump()
}
