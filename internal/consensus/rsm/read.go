package rsm

import (
	"repro/internal/consensus"
	"repro/internal/node"
)

// This file is the read path. A linearizable read must observe every
// write that completed before it was issued. While the leader holds a
// quorum lease (lease.go) its applied prefix is guaranteed current, so
// it positions reads at its applied index and replies immediately — zero
// consensus messages per read. When the lease does not hold (disabled,
// lapsed, or leadership in doubt) the read falls back to a phase-2
// no-op barrier: the leader proposes consensus.Noop through the normal
// pipeline and answers once its applier passes the barrier instance. If
// a competing ballot has superseded ours, the barrier's quorum cannot
// form (intersection with the promoters of the higher ballot), so a
// stale reply is never sent — the read simply times out at the client
// and is retried against the new leader. All reads arriving while one
// barrier is in flight coalesce onto it: the reply index is sampled at
// completion time, which lies between each such read's arrival and its
// reply, so sharing the barrier preserves linearizability.

// readState is the leader-side fallback-read bookkeeping.
type readState struct {
	pending []ReadReqMsg // reads awaiting the barrier
	barrier int          // in-flight no-op barrier instance, -1 when none
	onReply func(ReadReplyMsg)
}

// Read submits Count reads numbered [Seq, Seq+Count) from this replica.
// The reply arrives through the OnReadReply hook — immediately and
// locally when this replica is the lease-holding leader, otherwise after
// a forward to the believed leader. Unknown leader or lost messages mean
// no reply: clients retry with the same sequence numbers.
func (r *Node) Read(seq uint64, count int) {
	if count <= 0 {
		count = 1
	}
	r.onReadReq(r.me, ReadReqMsg{Seq: seq, Count: uint32(count), Origin: r.me})
}

// OnReadReply installs the read-reply hook, invoked once per served
// ReadReqMsg that named this replica as Origin. Install before Start;
// the hook runs on the node's event loop.
func (r *Node) OnReadReply(fn func(ReadReplyMsg)) { r.reads.onReply = fn }

// onReadReq serves, forwards, or drops one read request.
func (r *Node) onReadReq(from node.ID, m ReadReqMsg) {
	if m.Count == 0 {
		m.Count = 1
	}
	leader := r.omega.Leader()
	if leader != r.me {
		// Forward toward the believed leader, Origin preserved. No
		// leader to believe in → drop; the client retries.
		if leader != node.None && from == m.Origin {
			r.env.Send(leader, m)
		}
		return
	}
	if !r.prop.prepared {
		return // preparing: the client retries after the dust settles
	}
	now := r.env.Now()
	if r.holdsLease(now) {
		r.lease.localReads.Add(uint64(m.Count))
		r.replyRead(m, true)
		return
	}
	// Fallback: ride the (shared) no-op barrier through phase 2.
	r.reads.pending = append(r.reads.pending, m)
	if r.reads.barrier < 0 {
		r.reads.barrier = r.propose(consensus.Noop, nil)
	}
}

// completeFallbackReads answers pending reads once the applier has
// passed the barrier instance. Called at the end of every apply pass.
func (r *Node) completeFallbackReads() {
	if r.reads.barrier < 0 || r.app.next <= r.reads.barrier {
		return
	}
	r.reads.barrier = -1
	pending := r.reads.pending
	r.reads.pending = nil
	for _, m := range pending {
		r.lease.fallbackReads.Add(uint64(m.Count))
		r.replyRead(m, false)
	}
}

// failPendingReads drops reads waiting on a barrier that can no longer
// complete under this leadership. Clients retry elsewhere.
func (r *Node) failPendingReads() {
	r.reads.pending = nil
	r.reads.barrier = -1
}

// replyRead answers one read batch at the current applied index. A reply
// to this very replica is delivered straight to the hook — stations
// refuse self-sends, and there is nothing to serialize anyway.
func (r *Node) replyRead(m ReadReqMsg, local bool) {
	reply := ReadReplyMsg{Seq: m.Seq, Count: m.Count, Index: r.app.count, Local: local}
	if m.Origin == r.me {
		if r.reads.onReply != nil {
			r.reads.onReply(reply)
		}
		return
	}
	r.env.Send(m.Origin, reply)
}

// onReadReply delivers a forwarded read's answer to the hook.
func (r *Node) onReadReply(m ReadReplyMsg) {
	if r.reads.onReply != nil {
		r.reads.onReply(m)
	}
}
