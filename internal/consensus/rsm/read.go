package rsm

import (
	"repro/internal/consensus"
	"repro/internal/node"
)

// This file is the read path. A linearizable read must observe every
// write that completed before it was issued. While the leader holds a
// quorum lease (lease.go) its applied prefix is guaranteed current, so
// it positions reads at its applied index and replies immediately — zero
// consensus messages per read. When the lease does not hold (disabled,
// lapsed, or leadership in doubt) the read falls back to a phase-2
// no-op barrier: the leader proposes consensus.Noop through the normal
// pipeline and answers once its applier passes the barrier instance —
// but only if the barrier was decided by this node's own quorum at its
// current ballot (readState.barrierOwn). That condition is the safety
// proof: a majority of ACCEPTEDs at ballot b means no higher ballot had
// completed phase 1 with a quorum before those acks (the two majorities
// would intersect in an acceptor that NACKs one of them), so no write
// this leader's applied prefix misses was completed before the reads
// arrived. A deposed leader's barrier instead gets decided out from
// under it — a follower that already learned a newer leader's value at
// that instance answers the ACCEPT with a DecideMsg, not an ACCEPTED —
// and the pending reads are failed, never answered at the stale applied
// index; clients retry against the new leader. All reads arriving while
// one barrier is in flight coalesce onto it: the reply index is sampled
// at completion time, which lies between each such read's arrival and
// its reply, so sharing the barrier preserves linearizability.

// maxPendingReads caps the fallback queue. A leader whose barrier cannot
// complete (say, minority-partitioned with a stale Omega view) would
// otherwise grow reads.pending with every client retry until it finally
// abdicates; past the cap new fallback reads are shed and the clients
// simply retry later.
const maxPendingReads = 4096

// readState is the leader-side fallback-read bookkeeping.
type readState struct {
	pending []ReadReqMsg // reads awaiting the barrier
	barrier int          // in-flight no-op barrier instance, -1 when none
	// barrierOwn records that the barrier instance was decided by this
	// node's own ack quorum at its current ballot (set in maybeDecide) —
	// the only completion that proves the applied prefix is current. A
	// barrier decided any other way (a DecideMsg carrying a competing
	// leader's value — possibly an identical no-op from its gap fill)
	// fails the pending reads instead of answering them.
	barrierOwn bool
	onReply    func(ReadReplyMsg)
}

// Read submits Count reads numbered [Seq, Seq+Count) from this replica.
// The reply arrives through the OnReadReply hook — immediately and
// locally when this replica is the lease-holding leader, otherwise after
// a forward to the believed leader. Unknown leader or lost messages mean
// no reply: clients retry with the same sequence numbers.
//
// Like Submit, Deliver, and Tick, Read mutates node state and must run
// on the node's event loop: call it from a hook or while the simulator
// world is paused. On live transports, client goroutines must not call
// it directly — inject a ReadReqMsg through the transport instead, as
// cmd/consload does.
func (r *Node) Read(seq uint64, count int) {
	if count <= 0 {
		count = 1
	}
	r.onReadReq(r.me, ReadReqMsg{Seq: seq, Count: uint32(count), Origin: r.me})
}

// OnReadReply installs the read-reply hook, invoked once per served
// ReadReqMsg that named this replica as Origin. Install before Start;
// the hook runs on the node's event loop.
func (r *Node) OnReadReply(fn func(ReadReplyMsg)) { r.reads.onReply = fn }

// onReadReq serves, forwards, or drops one read request.
func (r *Node) onReadReq(from node.ID, m ReadReqMsg) {
	if m.Count == 0 {
		m.Count = 1
	}
	leader := r.omega.Leader()
	if leader != r.me {
		// Forward toward the believed leader, Origin preserved. No
		// leader to believe in → drop; the client retries.
		if leader != node.None && from == m.Origin {
			r.env.Send(leader, m)
		}
		return
	}
	if !r.prop.prepared {
		return // preparing: the client retries after the dust settles
	}
	now := r.env.Now()
	if r.holdsLease(now) {
		r.lease.localReads.Add(uint64(m.Count))
		r.replyRead(m, true)
		return
	}
	// Fallback: ride the (shared) no-op barrier through phase 2.
	if len(r.reads.pending) >= maxPendingReads {
		return // barrier stuck, queue full: shed, the client retries
	}
	r.reads.pending = append(r.reads.pending, m)
	if r.reads.barrier < 0 {
		// A barrier opening is the read-path anomaly the flight recorder
		// watches for: the lease did not hold, so reads are paying a full
		// phase-2 round. Marked once per barrier, not per read.
		r.cfg.Tracer.Mark(now, "fallback-read", -1)
		r.cfg.Tracer.Trigger(now, "fallback-read")
		r.openBarrier()
	}
}

// openBarrier proposes the shared no-op read barrier. The instance is
// recorded before propose runs: with a one-process majority the proposal
// decides — and applies — synchronously inside propose, and maybeDecide
// must already see it as the barrier to credit the own-quorum decision.
func (r *Node) openBarrier() {
	r.reads.barrierOwn = false
	r.reads.barrier = r.pipe.nextInst
	r.propose(consensus.Noop, nil, nil)
}

// completeFallbackReads answers pending reads once the applier has
// passed the barrier instance — or fails them when the barrier decided
// without this node's quorum, because the applied prefix may then be
// missing a newer leader's writes. Called at the end of every apply pass.
func (r *Node) completeFallbackReads() {
	if r.reads.barrier < 0 || r.app.next <= r.reads.barrier {
		return
	}
	if !r.reads.barrierOwn {
		r.failPendingReads()
		return
	}
	r.reads.barrier = -1
	r.reads.barrierOwn = false
	pending := r.reads.pending
	r.reads.pending = nil
	for _, m := range pending {
		r.lease.fallbackReads.Add(uint64(m.Count))
		r.replyRead(m, false)
	}
}

// failPendingReads drops reads waiting on a barrier that can no longer
// complete under this leadership. Clients retry elsewhere.
func (r *Node) failPendingReads() {
	r.reads.pending = nil
	r.reads.barrier = -1
	r.reads.barrierOwn = false
}

// replyRead answers one read batch at the current applied index. A reply
// to this very replica is delivered straight to the hook — stations
// refuse self-sends, and there is nothing to serialize anyway.
func (r *Node) replyRead(m ReadReqMsg, local bool) {
	reply := ReadReplyMsg{Seq: m.Seq, Count: m.Count, Index: r.app.count, Local: local}
	if m.Origin == r.me {
		if r.reads.onReply != nil {
			r.reads.onReply(reply)
		}
		return
	}
	r.env.Send(m.Origin, reply)
}

// onReadReply delivers a forwarded read's answer to the hook.
func (r *Node) onReadReply(m ReadReplyMsg) {
	if r.reads.onReply != nil {
		r.reads.onReply(m)
	}
}
