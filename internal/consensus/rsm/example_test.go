package rsm_test

import (
	"fmt"
	"time"

	"repro/internal/consensus/rsm"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
)

// Example replicates three commands across a five-node cluster: each
// process runs an Omega detector composed with a replicated-log engine;
// commands submitted at any replica are forwarded to the leader and come
// back decided in the same order everywhere.
func Example() {
	const n = 5
	world, err := node.NewWorld(node.WorldConfig{
		N:           n,
		Seed:        1,
		DefaultLink: network.Timely(2 * time.Millisecond),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	logs := make([]*rsm.Node, n)
	for i := 0; i < n; i++ {
		det := core.New(core.WithEta(10 * time.Millisecond))
		logs[i] = rsm.New(det, rsm.Config{})
		world.SetAutomaton(node.ID(i), node.Compose(det, logs[i]))
	}
	world.Start()
	world.RunFor(500 * time.Millisecond) // leader elected, ballot prepared

	logs[3].Submit("alpha") // follower: forwarded to the leader
	logs[0].Submit("beta")  // leader: proposed directly
	logs[2].Submit("gamma")
	world.RunFor(2 * time.Second)

	// Every replica holds the same decided prefix.
	for inst := 0; inst < logs[4].FirstGap(); inst++ {
		v, _ := logs[4].Get(inst)
		fmt.Printf("instance %d: %s\n", inst, v)
	}
	// The leader's own command wins instance 0 (forwarded ones take one
	// extra hop); the run is deterministic for a fixed seed.
	// Output:
	// instance 0: beta
	// instance 1: alpha
	// instance 2: gamma
}
