package rsm

import (
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// This file is the pipeline layer: windowed multi-instance phase 2. The
// prepared leader drives up to Config.Window instances concurrently, each
// carrying one value (a single command or a batch envelope). Every
// instance costs (n−1) ACCEPT + (n−1) ACCEPTED + (n−1) DECIDE — or
// 2(n−1) with piggybacked commits — whatever the batch size, which is
// where batching's amortization comes from.

// maxRetryTimeout caps retry backoffs.
const maxRetryTimeout = 5 * time.Second

type inflight struct {
	v       consensus.Value
	acks    map[node.ID]bool
	started sim.Time
	timeout time.Duration // per-instance retry backoff
	// tctx is the instance's open "quorum" span (zero when untraced):
	// ACCEPTs broadcast under it, ACCEPTED arrivals are events on it,
	// and the majority closes it.
	tctx tracing.Context
}

// pipeline is the leader-side phase-2 state.
type pipeline struct {
	inflights map[int]*inflight
	nextInst  int
}

// hasRoom reports whether a new instance may be opened under the window.
func (p *pipeline) hasRoom(window int) bool { return len(p.inflights) < window }

// open assigns the next free instance.
func (p *pipeline) open(v consensus.Value, now sim.Time) int {
	inst := p.nextInst
	p.nextInst++
	p.inflights[inst] = &inflight{v: v, acks: make(map[node.ID]bool, 4), started: now}
	return inst
}

// propose drives value v in a fresh instance of the pipeline. enqs, when
// non-nil, are the enqueue times of the envelope's commands, registered
// with the applier for latency stamping before any message can decide
// the instance. tctxs, when non-nil, are the commands' trace contexts:
// the instance opens a "quorum" span under the first traced command and
// the applier later closes out every command's trace.
func (r *Node) propose(v consensus.Value, enqs []sim.Time, tctxs []tracing.Context) int {
	now := r.env.Now()
	inst := r.pipe.open(v, now)
	fl := r.pipe.inflights[inst]
	fl.acks[r.me] = true
	for _, ctx := range tctxs {
		if ctx.Valid() {
			// Stage two: the quorum wait, open until a majority accepts.
			// One span per instance — a batch shares its first traced
			// command's trace.
			fl.tctx = r.cfg.Tracer.Start(now, ctx, "quorum")
			break
		}
	}
	if enqs != nil {
		r.app.track(inst, v, enqs, tctxs)
	}
	r.acc.accepted[inst] = acceptedEntry{b: r.prop.ballot, v: v}
	// The leader's self-accept is a vote like any other: durable before
	// the ACCEPT broadcast makes it visible.
	r.cfg.Store.Accept(uint64(inst), uint64(r.prop.ballot), string(v))
	r.env.Broadcast(r.traced(fl.tctx, r.acceptMsg(inst, v)))
	r.maybeDecide(inst)
	return inst
}

// reopen re-drives an existing instance at the current ballot — the
// leader-change path (re-proposals and no-op fillers). Bypasses the
// window: these instances block the decided prefix.
func (r *Node) reopen(inst int, v consensus.Value) {
	r.pipe.inflights[inst] = &inflight{v: v, acks: map[node.ID]bool{r.me: true}, started: r.env.Now()}
	r.acc.accepted[inst] = acceptedEntry{b: r.prop.ballot, v: v}
	r.cfg.Store.Accept(uint64(inst), uint64(r.prop.ballot), string(v))
	r.env.Broadcast(r.acceptMsg(inst, v))
}

// redrive rebroadcasts stalled instances with per-instance backoff.
func (r *Node) redrive(now sim.Time) {
	for inst, fl := range r.pipe.inflights {
		if fl.timeout == 0 {
			fl.timeout = r.cfg.RetryTimeout
		}
		if now.Sub(fl.started) >= fl.timeout {
			fl.started = now
			if fl.timeout < maxRetryTimeout {
				fl.timeout *= 2
			}
			r.env.Broadcast(r.traced(fl.tctx, r.acceptMsg(inst, fl.v)))
		}
	}
}

// onAccept is the acceptor's phase-2 handler.
func (r *Node) onAccept(from node.ID, m AcceptMsg) {
	if v, decided := r.log.get(m.Inst); decided {
		r.env.Send(from, DecideMsg{Inst: m.Inst, V: v})
		return
	}
	if m.Inst < r.log.low {
		return // forgotten: decided and applied cluster-wide long ago
	}
	if m.B >= r.acc.promised {
		now := r.env.Now()
		r.acc.promised = m.B
		r.acc.accepted[m.Inst] = acceptedEntry{b: m.B, v: m.V}
		r.acc.lastAcceptAt = now
		// Durable before visible: the vote must survive a crash once the
		// ACCEPTED is out. The record also implies the promise at m.B, so
		// no separate promise record is written here.
		r.cfg.Store.Accept(uint64(m.Inst), uint64(m.B), string(m.V))
		// The ACCEPTED doubles as the lease ack for a piggybacked grant.
		ack := r.noteGrant(m.B, m.LeaseSeq, now)
		// A traced ACCEPT earns a synchronous "accept" span here and the
		// reply carries that span's context back, closing the round trip
		// in the trace tree. Untraced (or tracing off): plain send.
		actx := r.cfg.Tracer.Record(now, now, r.curCtx, "accept", int(from), "")
		r.env.Send(from, r.traced(actx, AcceptedMsg{B: m.B, Inst: m.Inst, Done: r.log.firstGap, LeaseSeq: ack}))
		// Piggybacked commit information: everything below CommitUpTo
		// that we accepted at this very ballot carries the decided
		// value (a ballot binds one value per instance).
		for inst := r.log.firstGap; inst < m.CommitUpTo; inst++ {
			if e, ok := r.acc.accepted[inst]; ok && e.b == m.B {
				r.learn(inst, e.v)
			}
		}
		r.maybeForget(m.MinDone)
	} else {
		r.env.Send(from, NackMsg{B: m.B, Promised: r.acc.promised})
	}
}

func (r *Node) onAccepted(from node.ID, m AcceptedMsg) {
	r.dones.observe(from, m.Done)
	if m.B != r.prop.ballot {
		return
	}
	r.onLeaseAck(from, m.B, m.LeaseSeq)
	fl, ok := r.pipe.inflights[m.Inst]
	if !ok {
		return
	}
	fl.acks[from] = true
	r.cfg.Tracer.Event(r.env.Now(), fl.tctx, "accepted", int(from))
	r.maybeDecide(m.Inst)
}

func (r *Node) maybeDecide(inst int) {
	fl, ok := r.pipe.inflights[inst]
	if !ok || len(fl.acks) < consensus.Majority(r.n) {
		return
	}
	delete(r.pipe.inflights, inst)
	if fl.tctx.Valid() {
		now := r.env.Now()
		r.cfg.Tracer.End(now, fl.tctx) // quorum complete
		if p, ok := r.app.props[inst]; ok {
			p.decidedAt = now // start of the apply stage for this batch
			r.app.props[inst] = p
		}
	}
	if inst == r.reads.barrier {
		// Our own ack quorum at our own ballot decided the read barrier —
		// the completion proof completeFallbackReads requires.
		r.reads.barrierOwn = true
	}
	r.learn(inst, fl.v)
	if !r.cfg.PiggybackDecides {
		r.env.Broadcast(DecideMsg{Inst: inst, V: fl.v})
	}
	// A window slot freed up: pull in queued work.
	r.pump()
}

// acceptMsg builds a phase-2 message carrying the current commit index,
// forgetting horizon, and lease grant.
func (r *Node) acceptMsg(inst int, v consensus.Value) AcceptMsg {
	m := AcceptMsg{B: r.prop.ballot, Inst: inst, V: v}
	if r.cfg.PiggybackDecides {
		m.CommitUpTo = r.log.firstGap
	}
	if r.cfg.Forget {
		m.MinDone = r.dones.min()
	}
	m.LeaseSeq = r.grantSeq(r.env.Now())
	return m
}
