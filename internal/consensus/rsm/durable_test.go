package rsm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/durable"
)

// Tests for the durable-store integration: what survives a kill -9 and
// how the restarted automaton re-enters the protocol. "Restart" here is
// the real recovery path — a fresh Node over a fresh durable.Open of the
// same directory — driven on the fakeEnv harness.

func openWAL(t *testing.T, dir string) *durable.WAL {
	t.Helper()
	w, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		t.Fatalf("durable.Open(%s): %v", dir, err)
	}
	return w
}

func TestRestartKeepsAcceptorPromise(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(1), Config{Store: w})
	env := newFakeEnv(2, 3)
	r.Start(env)
	high := consensus.MakeBallot(5, 1, 3)
	r.Deliver(1, PrepareMsg{B: high})
	if len(env.drain()) != 1 {
		t.Fatal("no promise sent")
	}
	w.Close()

	// kill -9, restart: the promise must still bind this acceptor.
	r2 := New(consensus.StaticLeader(1), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(2, 3)
	r2.Start(env2)
	low := consensus.MakeBallot(2, 0, 3)
	r2.Deliver(0, PrepareMsg{B: low})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	if n, ok := out[0].msg.(NackMsg); !ok || n.Promised != high {
		t.Fatalf("reply = %+v, want nack at promised %v", out[0].msg, high)
	}
}

func TestRestartKeepsAcceptedVote(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(1), Config{Store: w})
	env := newFakeEnv(2, 3)
	r.Start(env)
	b := consensus.MakeBallot(3, 1, 3)
	r.Deliver(1, AcceptMsg{B: b, Inst: 0, V: "voted"})
	env.drain()
	w.Close()

	// After restart, a competing prepare must learn of the vote so the
	// new leader re-proposes "voted" — never a different value.
	r2 := New(consensus.StaticLeader(1), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(2, 3)
	r2.Start(env2)
	higher := consensus.MakeBallot(7, 0, 3)
	r2.Deliver(0, PrepareMsg{B: higher})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	p, ok := out[0].msg.(PromiseMsg)
	if !ok || len(p.Entries) != 1 || p.Entries[0].Inst != 0 || p.Entries[0].AccV != "voted" || p.Entries[0].AccB != b {
		t.Fatalf("promise = %+v, want the pre-crash vote reported", out[0].msg)
	}
}

func TestRestartedLeaderOutbidsItsOwnBallot(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(0), Config{Store: w})
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.Tick(timerDrive)
	first := r.prop.ballot
	r.Deliver(1, PromiseMsg{B: first})
	if !r.prop.prepared {
		t.Fatal("phase 1 did not complete")
	}
	r.Submit("v1") // attaches "v1" to an instance at ballot `first`
	w.Close()

	// The restarted proposer must never reuse `first` (it could attach a
	// different value to an instance that already carries v1 at first).
	r2 := New(consensus.StaticLeader(0), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(0, 3)
	r2.Start(env2)
	r2.Tick(timerDrive)
	if !r2.prop.preparing {
		t.Fatal("restarted leader did not start preparing")
	}
	if r2.prop.ballot <= first {
		t.Fatalf("restarted ballot %v does not outbid pre-crash ballot %v", r2.prop.ballot, first)
	}
}

func TestRestartRestoresApplicationFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	var applied1 []string
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(1), Config{
		Store:         w,
		SnapshotEvery: 4,
		SnapshotState: func() []byte { return []byte(strings.Join(applied1, ",")) },
	})
	r.OnApply(func(inst, cmd int, v consensus.Value) { applied1 = append(applied1, string(v)) })
	env := newFakeEnv(2, 3)
	r.Start(env)
	for i := 0; i < 10; i++ {
		r.learn(i, consensus.Value(fmt.Sprintf("c%d", i)))
	}
	if r.Applied() != 10 {
		t.Fatalf("applied %d, want 10", r.Applied())
	}
	w.Close()

	// Recovery = RestoreState(snapshot payload) + replay of the decided
	// tail through OnApply. Together they rebuild the exact sequence.
	var restored []string
	var tail []string
	r2 := New(consensus.StaticLeader(1), Config{
		Store:        openWAL(t, dir),
		RestoreState: func(b []byte) { restored = strings.Split(string(b), ",") },
	})
	r2.OnApply(func(inst, cmd int, v consensus.Value) { tail = append(tail, string(v)) })
	env2 := newFakeEnv(2, 3)
	r2.Start(env2)
	if r2.Applied() != 10 {
		t.Fatalf("restarted Applied() = %d, want 10", r2.Applied())
	}
	got := strings.Join(append(restored, tail...), ",")
	want := strings.Join(applied1, ",")
	if got != want {
		t.Fatalf("recovered application sequence %q, want %q", got, want)
	}
	if len(tail) >= 10 {
		t.Fatalf("snapshot absorbed nothing: whole log (%d entries) replayed", len(tail))
	}
}

func TestRestartHoldsLeaseWindowConservatively(t *testing.T) {
	const lease = time.Second
	dir := t.TempDir()
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(1), Config{Store: w, Lease: lease})
	env := newFakeEnv(2, 3)
	r.Start(env)
	r.learn(0, "x") // any durable state so recovery has something to restore
	w.Close()

	r2 := New(consensus.StaticLeader(2), Config{Store: openWAL(t, dir), Lease: lease})
	env2 := newFakeEnv(2, 3)
	r2.Start(env2)
	env2.drain()

	// A pre-crash grant may still be running: every foreign prepare is
	// deferred silently…
	r2.Deliver(0, PrepareMsg{B: consensus.MakeBallot(9, 0, 3)})
	if out := env2.drain(); len(out) != 0 {
		t.Fatalf("prepare answered during restart hold: %v", out)
	}
	// …our own prepare waits too, and no local read could be served.
	r2.Tick(timerDrive)
	if r2.prop.preparing {
		t.Fatal("own prepare started during restart hold")
	}
	if r2.holdsLease(env2.now) {
		t.Fatal("lease considered held during restart hold")
	}

	// Once a full Lease has passed on the local clock, any pre-crash
	// grant has expired everywhere; the protocol resumes.
	env2.now = env2.now.Add(lease + time.Millisecond)
	r2.Deliver(0, PrepareMsg{B: consensus.MakeBallot(9, 0, 3)})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("prepare after hold expiry got %v, want a promise", out)
	}
	if _, ok := out[0].msg.(PromiseMsg); !ok {
		t.Fatalf("reply = %+v, want promise", out[0].msg)
	}
	r2.Tick(timerDrive)
	if !r2.prop.preparing {
		t.Fatal("own prepare still deferred after hold expiry")
	}
}

func TestRecoveryIsIdempotentAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	r := New(consensus.StaticLeader(1), Config{Store: w, SnapshotEvery: 3})
	env := newFakeEnv(2, 3)
	r.Start(env)
	for i := 0; i < 7; i++ {
		r.learn(i, consensus.Value(fmt.Sprintf("c%d", i)))
	}
	w.Close()

	// Restart twice; the second recovery must see exactly what the
	// first one saw (recovering writes no records of its own beyond
	// what re-running the protocol would).
	for round := 0; round < 2; round++ {
		w2 := openWAL(t, dir)
		r2 := New(consensus.StaticLeader(1), Config{Store: w2})
		env2 := newFakeEnv(2, 3)
		r2.Start(env2)
		if r2.Applied() != 7 {
			t.Fatalf("round %d: Applied() = %d, want 7", round, r2.Applied())
		}
		if got, _ := r2.Get(6); got != "c6" {
			t.Fatalf("round %d: Get(6) = %q, want c6", round, got)
		}
		w2.Close()
	}
}
