package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/network"
	"repro/internal/node"
)

// newTunedCluster is newCluster with an explicit engine config.
func newTunedCluster(t *testing.T, n int, seed int64, cfg Config) *cluster {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: network.Timely(2 * ms)})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{world: w, dets: make([]*core.Detector, n), nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		c.dets[i] = core.New(core.WithEta(10 * ms))
		c.nodes[i] = New(c.dets[i], cfg)
		w.SetAutomaton(node.ID(i), node.Compose(c.dets[i], c.nodes[i]))
	}
	return c
}

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := [][]consensus.Value{
		{"single"},
		{"a", "b", "c"},
		{"", "x", ""}, // empty commands survive
		{"\x00bstartswithmarker"},
		{"binary\x00\xffstuff", consensus.Value(make([]byte, 300))},
	}
	for _, cmds := range cases {
		env := encodeBatch(cmds)
		got := decodeBatch(env)
		if len(got) != len(cmds) {
			t.Fatalf("round-trip of %q: %d commands, want %d", cmds, len(got), len(cmds))
		}
		for i := range cmds {
			if got[i] != cmds[i] {
				t.Fatalf("round-trip of %q: cmd %d = %q", cmds, i, got[i])
			}
		}
	}
	// The unbatched fast path: a lone marker-free command is proposed raw.
	if env := encodeBatch([]consensus.Value{"plain"}); env != "plain" {
		t.Fatalf("single command encoded as %q, want raw", env)
	}
	// A marker-prefixed command must NOT pass through raw.
	if env := encodeBatch([]consensus.Value{"\x00boops"}); env == "\x00boops" {
		t.Fatal("marker-prefixed command leaked through unwrapped")
	}
	// Arbitrary non-envelope values decode as one command.
	if got := decodeBatch("legacy"); len(got) != 1 || got[0] != "legacy" {
		t.Fatalf("raw value decoded as %v", got)
	}
}

func TestLogbookForgetBelow(t *testing.T) {
	l := newLogbook()
	for i := 0; i < 10; i++ {
		l.insert(i, consensus.Value(fmt.Sprintf("v%d", i)))
	}
	l.forgetBelow(5)
	if l.retained() != 5 {
		t.Fatalf("retained = %d, want 5", l.retained())
	}
	if _, ok := l.get(3); ok {
		t.Fatal("forgotten entry still readable")
	}
	if v, ok := l.get(7); !ok || v != "v7" {
		t.Fatal("retained entry lost")
	}
	if l.insert(3, "zombie") {
		t.Fatal("re-insert below the forgetting horizon accepted")
	}
	if l.firstGap != 10 {
		t.Fatalf("firstGap = %d after forgetting, want 10", l.firstGap)
	}
	// The horizon never regresses, and never passes the applied prefix.
	l.forgetBelow(2)
	if l.low != 5 {
		t.Fatalf("low regressed to %d", l.low)
	}
	l.forgetBelow(99)
	if l.low != 10 || l.retained() != 0 {
		t.Fatalf("low = %d retained = %d, want horizon capped at firstGap", l.low, l.retained())
	}
}

func TestDoneVectorMin(t *testing.T) {
	d := newDoneVector(3)
	if d.min() != 0 {
		t.Fatalf("fresh min = %d", d.min())
	}
	d.observe(0, 7)
	d.observe(1, 5)
	if d.min() != 0 {
		t.Fatal("min advanced without hearing from p2")
	}
	d.observe(2, 6)
	if d.min() != 5 {
		t.Fatalf("min = %d, want 5", d.min())
	}
	d.observe(1, 3) // stale advertisement must not regress
	if d.min() != 5 {
		t.Fatalf("min regressed to %d", d.min())
	}
}

func TestLeaderChangeMidPipelineConvergesWithoutReordering(t *testing.T) {
	// Load the pipeline (small window, small batches → many concurrent
	// instances), crash the leader mid-flight, and require the survivors
	// to re-propose in-flight instances, close the rest with no-ops, and
	// apply one identical command sequence.
	c := newTunedCluster(t, 5, 31, Config{Window: 4, BatchMax: 4})
	c.world.Start()
	c.world.RunFor(300 * ms)
	for i := 0; i < 24; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
	}
	c.world.RunFor(21 * ms) // several windowed instances in flight
	c.world.Crash(0)
	c.nodes[1].Submit("after")
	c.world.RunFor(5 * time.Second)
	c.assertPrefixAgreement(t)
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
	for i := 1; i < 5; i++ {
		// No holes below the gap: every lost instance was re-proposed or
		// no-op filled.
		for inst := 0; inst < c.nodes[i].FirstGap(); inst++ {
			if _, ok := c.nodes[i].Get(inst); !ok {
				t.Fatalf("p%d has a hole at instance %d", i, inst)
			}
		}
		if !c.appliedSet(i)["after"] {
			t.Fatalf("p%d never applied the post-crash command", i)
		}
	}
	// No reordering: survivors applied the same (instance, cmd, value)
	// sequence — Recorder order is apply order.
	ref := c.nodes[1].Recorder().All()
	for i := 2; i < 5; i++ {
		got := c.nodes[i].Recorder().All()
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k].Instance != ref[k].Instance || got[k].Cmd != ref[k].Cmd || got[k].Value != ref[k].Value {
				t.Fatalf("apply order diverged at %d: p%d applied (%d,%d,%q), p1 applied (%d,%d,%q)",
					k, i, got[k].Instance, got[k].Cmd, got[k].Value, ref[k].Instance, ref[k].Cmd, ref[k].Value)
			}
		}
	}
}

func TestForgettingBoundsRetainedLog(t *testing.T) {
	c := newTunedCluster(t, 3, 32, Config{Forget: true})
	c.world.Start()
	c.world.RunFor(300 * ms)
	// Sustained load in waves: each wave's accepts carry the followers'
	// applied-through counts forward, so earlier waves get pruned while
	// later ones stream in.
	const waves, perWave = 10, 60
	for w := 0; w < waves; w++ {
		for i := 0; i < perWave; i++ {
			c.nodes[0].Submit(consensus.Value(fmt.Sprintf("w%d-c%d", w, i)))
		}
		c.world.RunFor(300 * ms)
	}
	c.world.RunFor(time.Second)
	for i, s := range c.nodes {
		if got := s.Applied(); got < waves*perWave {
			t.Fatalf("p%d applied %d commands, want ≥ %d", i, got, waves*perWave)
		}
		if s.MinDone() == 0 {
			t.Fatalf("p%d never advanced its forgetting horizon", i)
		}
		// Bounded memory: far fewer entries retained than were decided.
		if gap := s.FirstGap(); s.Retained() > gap/2 {
			t.Fatalf("p%d retains %d of %d decided instances — forgetting is not pruning", i, s.Retained(), gap)
		}
	}
	// A forgetful log can't serve Get() on its whole prefix, so agreement
	// is checked on the recorders (which keep every applied decision).
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestForgettingOffRetainsEverything(t *testing.T) {
	c := newTunedCluster(t, 3, 33, Config{})
	c.world.Start()
	c.world.RunFor(300 * ms)
	for i := 0; i < 40; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("c%d", i)))
	}
	c.world.RunFor(2 * time.Second)
	for i, s := range c.nodes {
		if s.Retained() != s.FirstGap() || s.MinDone() != 0 {
			t.Fatalf("p%d pruned with Forget off (retained %d of %d)", i, s.Retained(), s.FirstGap())
		}
	}
}

func TestPerCommandElapsedIsEnqueueToApply(t *testing.T) {
	// Three commands, staggered 5ms apart, riding in at most two
	// instances: each must get its own enqueue-to-apply latency at the
	// leader — earlier enqueue, strictly larger Elapsed when they share a
	// batch.
	c := newTunedCluster(t, 3, 34, Config{Window: 1, BatchMax: 8})
	c.world.Start()
	c.world.RunFor(500 * ms)
	if !c.nodes[0].IsLeader() {
		t.Skip("p0 not leader under this seed")
	}
	c.nodes[0].Submit("first") // proposed immediately (pipeline idle)
	c.world.RunFor(5 * ms)
	c.nodes[0].Submit("second") // queued: window of 1 is busy
	c.world.RunFor(5 * ms)
	c.nodes[0].Submit("third") // queued behind second
	c.world.RunFor(2 * time.Second)
	byValue := make(map[consensus.Value]consensus.Decision)
	for _, d := range c.nodes[0].Recorder().All() {
		byValue[d.Value] = d
	}
	for _, v := range []consensus.Value{"first", "second", "third"} {
		d, ok := byValue[v]
		if !ok {
			t.Fatalf("%q never applied at the leader", v)
		}
		if d.Elapsed <= 0 {
			t.Fatalf("%q applied with Elapsed = %v, want > 0 at the proposing leader", v, d.Elapsed)
		}
	}
	// second and third shared a batch (window 1 held them back) yet their
	// latencies differ by their enqueue stagger.
	ds, dt := byValue["second"], byValue["third"]
	if ds.Instance == dt.Instance && ds.Elapsed <= dt.Elapsed {
		t.Fatalf("batched commands share latency: second %v ≤ third %v", ds.Elapsed, dt.Elapsed)
	}
	// Followers do not know proposer-side latency.
	for _, d := range c.nodes[1].Recorder().All() {
		if d.Elapsed != 0 {
			t.Fatalf("follower decision %q has Elapsed %v, want 0", d.Value, d.Elapsed)
		}
	}
}

func TestSnapshotRestartIgnoresAcceptsBelowIndex(t *testing.T) {
	// Snapshot/forgetting interaction: a node that checkpointed at index
	// k and restarted has absorbed everything below k. Stale phase-2
	// traffic for those instances — a laggard leader's retransmissions —
	// must neither re-grow logbook.retained() nor re-apply commands.
	const k = 5
	dir := t.TempDir()
	w, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	r := New(consensus.StaticLeader(1), Config{Store: w, SnapshotEvery: 1, Forget: true})
	env := newFakeEnv(2, 3)
	r.Start(env)
	for i := 0; i < k; i++ {
		r.learn(i, consensus.Value(fmt.Sprintf("c%d", i)))
	}
	w.Close()

	w2, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(consensus.StaticLeader(1), Config{Store: w2, SnapshotEvery: 1, Forget: true})
	env2 := newFakeEnv(2, 3)
	r2.Start(env2)
	env2.drain()
	if r2.MinDone() != k {
		t.Fatalf("restored forgetting horizon = %d, want %d", r2.MinDone(), k)
	}
	if r2.Retained() != 0 {
		t.Fatalf("restored log retains %d absorbed entries, want 0", r2.Retained())
	}
	baseApplied := r2.Applied()

	// Stale ACCEPT below the snapshot index: silently dropped.
	r2.Deliver(1, AcceptMsg{B: consensus.MakeBallot(9, 1, 3), Inst: 2, V: "zombie"})
	if out := env2.drain(); len(out) != 0 {
		t.Fatalf("stale accept answered: %v", out)
	}
	// Stale DECIDE below the snapshot index: same.
	r2.Deliver(1, DecideMsg{Inst: 3, V: "zombie"})
	if got := r2.Retained(); got != 0 {
		t.Fatalf("retained grew to %d on stale traffic below k", got)
	}
	if got := r2.Applied(); got != baseApplied {
		t.Fatalf("stale traffic re-applied commands: %d → %d", baseApplied, got)
	}
	if len(r2.acc.accepted) != 0 {
		t.Fatalf("stale accept recorded a vote: %v", r2.acc.accepted)
	}

	// Fresh traffic at/above the snapshot index still flows normally.
	r2.Deliver(1, AcceptMsg{B: consensus.MakeBallot(9, 1, 3), Inst: k, V: "new"})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("live accept got %d replies, want ACCEPTED", len(out))
	}
	if _, ok := out[0].msg.(AcceptedMsg); !ok {
		t.Fatalf("reply = %+v, want AcceptedMsg", out[0].msg)
	}
}
