package rsm

import (
	"sort"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
)

// This file is the proposer layer: ballot arithmetic and the one-time
// phase 1 that establishes a stable ballot covering every log instance.
// Once prepared, the leader never runs phase 1 again while its ballot
// stands — each command (batch) costs only phase-2 traffic.

// proposer is the leader-side ballot state.
type proposer struct {
	ballot      consensus.Ballot
	prepared    bool
	preparing   bool
	prepStarted sim.Time
	prepTimeout time.Duration // exponential backoff on stalled prepares
	promises    map[node.ID]PromiseMsg
}

// abdicate drops any leader role; the next drive tick re-prepares if
// Omega still nominates this process.
func (p *proposer) abdicate() {
	p.prepared = false
	p.preparing = false
}

// startPrepare opens (or re-opens) the stable ballot.
func (r *Node) startPrepare() {
	base := r.acc.promised
	if r.prop.ballot > base {
		base = r.prop.ballot
	}
	r.prop.ballot = base.Next(r.me, r.n)
	r.prop.preparing = true
	r.prop.prepStarted = r.env.Now()
	if r.prop.prepTimeout == 0 {
		r.prop.prepTimeout = r.cfg.RetryTimeout
	} else if r.prop.prepTimeout < maxRetryTimeout {
		r.prop.prepTimeout *= 2
	}
	r.prop.promises = make(map[node.ID]PromiseMsg, r.n)
	r.acc.promised = r.prop.ballot
	// Durable before visible: the ballot (so a restart outbids it, never
	// reattaching a new value to it) and the self-promise must hit the
	// store before the PREPARE leaves this node.
	r.cfg.Store.Ballot(uint64(r.prop.ballot))
	r.cfg.Store.Promise(uint64(r.prop.ballot))
	r.prop.promises[r.me] = PromiseMsg{B: r.prop.ballot, Entries: r.undecidedAccepted()}
	r.cfg.Tracer.Mark(r.prop.prepStarted, "prepare", -1)
	r.env.Logf("rsm: preparing ballot %v", r.prop.ballot)
	r.env.Broadcast(PrepareMsg{B: r.prop.ballot})
	r.maybeFinishPrepare()
}

// undecidedAccepted lists this acceptor's accepted entries for instances
// not yet known decided.
func (r *Node) undecidedAccepted() []PromEntry {
	var out []PromEntry
	for inst, e := range r.acc.accepted {
		if _, decided := r.log.get(inst); decided {
			continue
		}
		out = append(out, PromEntry{Inst: inst, AccB: e.b, AccV: e.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inst < out[j].Inst })
	return out
}

func (r *Node) onPrepare(from node.ID, m PrepareMsg) {
	if r.leaseBlocks(m.B, r.env.Now()) {
		// A standing lease grant forbids promising this ballot: defer
		// silently. The preparer retries on its backoff; by then the
		// grant has expired — this is what makes the lease holder's
		// local reads safe across leader changes.
		return
	}
	if m.B > r.acc.promised {
		r.acc.promised = m.B
		// Durable before visible: once the PROMISE is out, this acceptor
		// may never again vote below m.B — not even after kill -9.
		r.cfg.Store.Promise(uint64(m.B))
		if m.B > r.prop.ballot {
			// A higher ballot exists: abdicate leader duties (and any
			// read lease that came with them) before promising.
			r.abdicateLeader()
		}
		r.env.Send(from, PromiseMsg{B: m.B, Entries: r.undecidedAccepted()})
	} else {
		r.env.Send(from, NackMsg{B: m.B, Promised: r.acc.promised})
	}
}

func (r *Node) onPromise(from node.ID, m PromiseMsg) {
	if !r.prop.preparing || m.B != r.prop.ballot {
		return
	}
	r.prop.promises[from] = m
	r.maybeFinishPrepare()
}

// maybeFinishPrepare completes phase 1 once a majority has promised:
// adopt the highest accepted value per instance across the quorum,
// re-propose those instances at the new ballot, and close unconstrained
// gaps with no-ops so the decided prefix can grow.
func (r *Node) maybeFinishPrepare() {
	if !r.prop.preparing || len(r.prop.promises) < consensus.Majority(r.n) {
		return
	}
	r.prop.preparing = false
	r.prop.prepared = true
	best := make(map[int]acceptedEntry)
	for _, p := range r.prop.promises {
		for _, e := range p.Entries {
			if cur, ok := best[e.Inst]; !ok || e.AccB > cur.b {
				best[e.Inst] = acceptedEntry{b: e.AccB, v: e.AccV}
			}
		}
	}
	maxInst := r.log.highestDecided
	insts := make([]int, 0, len(best))
	for inst := range best {
		insts = append(insts, inst)
		if inst > maxInst {
			maxInst = inst
		}
	}
	sort.Ints(insts)
	if r.pipe.nextInst <= maxInst {
		r.pipe.nextInst = maxInst + 1
	}
	if r.pipe.nextInst < r.log.firstGap {
		r.pipe.nextInst = r.log.firstGap
	}
	// Re-propose constrained instances at the new ballot. These bypass the
	// pipelining window: they block the decided prefix, so they must be
	// driven regardless of how much new work is in flight.
	for _, inst := range insts {
		if _, decided := r.log.get(inst); decided {
			continue
		}
		r.reopen(inst, best[inst].v)
	}
	// Close unconstrained gaps below nextInst with no-ops so the log's
	// decided prefix can grow.
	for inst := r.log.firstGap; inst < r.pipe.nextInst; inst++ {
		if _, decided := r.log.get(inst); decided {
			continue
		}
		if _, driving := r.pipe.inflights[inst]; driving {
			continue
		}
		r.reopen(inst, consensus.Noop)
	}
	r.cfg.Tracer.Mark(r.env.Now(), "prepared", -1)
	r.env.Logf("rsm: ballot %v prepared (%d constrained)", r.prop.ballot, len(insts))
	// A freshly prepared ballot may find commands already queued.
	r.pump()
}

func (r *Node) onNack(m NackMsg) {
	if m.B != r.prop.ballot {
		return
	}
	if m.Promised > r.acc.promised {
		r.acc.promised = m.Promised
	}
	// The next drive tick re-prepares with a higher ballot if Omega
	// still says we lead.
	r.abdicateLeader()
}
