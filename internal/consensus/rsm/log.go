package rsm

import (
	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
)

// This file is the storage layer: the decided log (learner state), the
// acceptor's per-instance promises, and the Done-vector bookkeeping that
// lets the cluster forget applied prefixes (Config.Forget).

// logbook is one replica's decided log. Entries live in a map so the log
// tolerates holes; firstGap tracks the contiguous decided prefix and low
// tracks the forgetting horizon — everything below low has been applied by
// every process and pruned.
type logbook struct {
	entries        map[int]consensus.Value
	firstGap       int
	highestDecided int
	low            int
}

func newLogbook() logbook {
	return logbook{entries: make(map[int]consensus.Value), highestDecided: -1}
}

func (l *logbook) get(inst int) (consensus.Value, bool) {
	v, ok := l.entries[inst]
	return v, ok
}

// insert stores a decision if the instance is new, advances the gap, and
// reports whether anything was installed.
func (l *logbook) insert(inst int, v consensus.Value) bool {
	if inst < l.low {
		return false // already forgotten: decided, applied and pruned
	}
	if _, ok := l.entries[inst]; ok {
		return false
	}
	l.entries[inst] = v
	if inst > l.highestDecided {
		l.highestDecided = inst
	}
	for {
		if _, ok := l.entries[l.firstGap]; !ok {
			break
		}
		l.firstGap++
	}
	return true
}

// forgetBelow prunes every entry below min. Only the applied prefix may
// go: the caller guarantees min ≤ firstGap (the Done vector's minimum
// includes this process's own applied count).
func (l *logbook) forgetBelow(min int) {
	if min > l.firstGap {
		min = l.firstGap
	}
	for inst := l.low; inst < min; inst++ {
		delete(l.entries, inst)
	}
	if min > l.low {
		l.low = min
	}
}

// retained reports how many decided entries the log currently holds — the
// bounded-memory metric the forgetting tests assert on.
func (l *logbook) retained() int { return len(l.entries) }

// acceptor is the synod acceptor state: the highest promised ballot and
// the accepted-but-not-yet-decided entries. Accepted entries for decided
// instances are dropped at learn time (dead weight for promises).
type acceptor struct {
	promised consensus.Ballot
	accepted map[int]acceptedEntry
	// lastAcceptAt is when this acceptor last took a phase-2 message;
	// gap-fill asks are suppressed while accepts keep flowing (the next
	// CommitUpTo will deliver the decisions more cheaply).
	lastAcceptAt sim.Time
}

type acceptedEntry struct {
	b consensus.Ballot
	v consensus.Value
}

// doneVector tracks, per process, how far it is known to have applied the
// log (its advertised first gap). The cluster minimum is the forgetting
// horizon: below it, every process has applied, so nothing will ever be
// re-read or re-proposed.
type doneVector struct {
	done []int
}

func newDoneVector(n int) doneVector { return doneVector{done: make([]int, n)} }

// observe records that process id has applied through count.
func (d *doneVector) observe(id node.ID, count int) {
	if int(id) < len(d.done) && count > d.done[id] {
		d.done[id] = count
	}
}

// min returns the cluster-wide applied-through minimum.
func (d *doneVector) min() int {
	if len(d.done) == 0 {
		return 0
	}
	m := d.done[0]
	for _, v := range d.done[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// learn installs a decision locally and lets the applier run the newly
// contiguous prefix.
func (r *Node) learn(inst int, v consensus.Value) {
	if !r.log.insert(inst, v) {
		return
	}
	r.cfg.Store.Decide(uint64(inst), string(v))
	delete(r.acc.accepted, inst) // acceptor state for decided instances is dead weight
	if r.pipe.nextInst <= inst {
		r.pipe.nextInst = inst + 1
	}
	r.apply()
}

// onLearn serves a lagging follower's gap-fill request and folds its
// advertised progress into the Done vector.
func (r *Node) onLearn(from node.ID, m LearnMsg) {
	r.dones.observe(from, m.FirstGap)
	start := m.FirstGap
	if start < r.log.low {
		start = r.log.low
	}
	sent := 0
	for inst := start; inst <= r.log.highestDecided && sent < learnBatch; inst++ {
		if v, ok := r.log.get(inst); ok {
			r.env.Send(from, DecideMsg{Inst: inst, V: v})
			sent++
		}
	}
}

// maybeForget prunes the log below the Done vector's minimum. Leaders call
// it as the vector advances; followers call it with the MinDone horizon
// piggybacked on accepts.
func (r *Node) maybeForget(min int) {
	if !r.cfg.Forget || min <= r.log.low {
		return
	}
	r.log.forgetBelow(min)
}
