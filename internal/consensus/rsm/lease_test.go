package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/network"
)

// TestLeaseAcquiredWhileIdle: a prepared leader with no client traffic
// still converges on a held lease — explicit grant/ack refreshes cover
// the idle case that accept piggybacking cannot.
func TestLeaseAcquiredWhileIdle(t *testing.T) {
	c := newClusterCfg(t, 3, 21, network.Timely(2*ms), Config{Lease: 200 * ms})
	c.world.Start()
	c.world.RunFor(time.Second)
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("idle leader never acquired the lease")
	}
	for i := 1; i < 3; i++ {
		if c.nodes[i].LeaseHeld() {
			t.Fatalf("follower p%d claims the lease", i)
		}
	}
	if c.world.Stats.KindCount(KindLeaseGrant) == 0 || c.world.Stats.KindCount(KindLeaseAck) == 0 {
		t.Fatal("no explicit grant/ack traffic on an idle cluster")
	}
}

// TestLeaseRidesAccepts: under a write stream the lease is maintained by
// piggybacked grant sequence numbers alone — no explicit LeaseGrant
// messages beyond what the idle prefix needed.
func TestLeaseRidesAccepts(t *testing.T) {
	c := newClusterCfg(t, 3, 22, network.Timely(2*ms), Config{Lease: 400 * ms})
	c.world.Start()
	c.world.RunFor(500 * ms)
	grantsBefore := c.world.Stats.KindCount(KindLeaseGrant)
	// A steady trickle of writes: every accept renews the grant stream.
	for i := 0; i < 20; i++ {
		c.nodes[0].Submit(consensus.Value(fmt.Sprintf("w%d", i)))
		c.world.RunFor(20 * ms)
	}
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("lease lapsed under a write stream")
	}
	if got := c.world.Stats.KindCount(KindLeaseGrant) - grantsBefore; got != 0 {
		t.Fatalf("write stream triggered %d explicit lease grants, want 0 (piggyback only)", got)
	}
}

// TestFollowerReadForwardedAndServedLocally: a read issued at a follower
// is forwarded to the lease-holding leader, served at its applied index
// without consensus, and the reply routes back to the origin.
func TestFollowerReadForwardedAndServedLocally(t *testing.T) {
	c := newClusterCfg(t, 3, 23, network.Timely(2*ms), Config{Lease: 300 * ms})
	var got []ReadReplyMsg
	c.nodes[1].OnReadReply(func(m ReadReplyMsg) { got = append(got, m) })
	c.world.Start()
	c.world.RunFor(500 * ms)
	c.nodes[0].Submit("w0")
	c.world.RunFor(200 * ms)
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("leader has no lease")
	}
	c.nodes[1].Read(7, 16)
	c.world.RunFor(100 * ms)
	if len(got) != 1 {
		t.Fatalf("follower received %d read replies, want 1", len(got))
	}
	r := got[0]
	if r.Seq != 7 || r.Count != 16 || !r.Local {
		t.Fatalf("reply = %+v, want Seq 7 Count 16 Local", r)
	}
	if r.Index != c.nodes[0].Applied() {
		t.Fatalf("reply index %d, leader applied %d", r.Index, c.nodes[0].Applied())
	}
	if c.nodes[0].LocalReads() < 16 {
		t.Fatalf("leader local-read counter = %d, want >= 16", c.nodes[0].LocalReads())
	}
}

// TestFallbackReadWithoutLease: with leases disabled every read takes the
// no-op barrier through phase 2 — answered correctly, marked non-local,
// and counted as a fallback.
func TestFallbackReadWithoutLease(t *testing.T) {
	c := newCluster(t, 3, 24, network.Timely(2*ms))
	var got []ReadReplyMsg
	c.nodes[0].OnReadReply(func(m ReadReplyMsg) { got = append(got, m) })
	c.world.Start()
	c.world.RunFor(500 * ms)
	c.nodes[0].Submit("w0")
	c.world.RunFor(300 * ms)
	if c.nodes[0].LeaseHeld() {
		t.Fatal("lease held with Lease unset")
	}
	acceptsBefore := c.world.Stats.KindCount(KindAccept)
	c.nodes[0].Read(1, 4)
	c.world.RunFor(300 * ms)
	if len(got) != 1 {
		t.Fatalf("received %d read replies, want 1", len(got))
	}
	if got[0].Local {
		t.Fatal("fallback read claimed to be local")
	}
	if got[0].Index < c.nodes[0].Applied() {
		t.Fatalf("fallback reply index %d below applied %d", got[0].Index, c.nodes[0].Applied())
	}
	if c.nodes[0].FallbackReads() != 4 {
		t.Fatalf("fallback counter = %d, want 4", c.nodes[0].FallbackReads())
	}
	if c.world.Stats.KindCount(KindAccept) == acceptsBefore {
		t.Fatal("fallback read cost no accepts — barrier never ran")
	}
}

// TestFallbackReadsCoalesceOnOneBarrier: reads arriving while a barrier
// is in flight share it — many reads, one no-op instance.
func TestFallbackReadsCoalesceOnOneBarrier(t *testing.T) {
	c := newCluster(t, 3, 25, network.Timely(2*ms))
	answered := 0
	c.nodes[0].OnReadReply(func(m ReadReplyMsg) { answered += int(m.Count) })
	c.world.Start()
	c.world.RunFor(500 * ms)
	gapBefore := c.nodes[0].FirstGap()
	for i := 0; i < 10; i++ {
		c.nodes[0].Read(uint64(1+i), 1)
	}
	c.world.RunFor(300 * ms)
	if answered != 10 {
		t.Fatalf("answered %d reads, want 10", answered)
	}
	if used := c.nodes[0].FirstGap() - gapBefore; used > 2 {
		t.Fatalf("10 coalesced reads consumed %d instances, want <= 2", used)
	}
	if c.nodes[0].FallbackReads() != 10 {
		t.Fatalf("fallback counter = %d, want 10", c.nodes[0].FallbackReads())
	}
}

// TestStaleBarrierFailsPendingReads: a deposed leader whose no-op read
// barrier lands on an instance a newer leader already used must fail the
// pending reads when the foreign decision applies — even when the
// decided value is an identical no-op (the new leader's gap fill).
// Positional completion alone would answer at a stale applied index and
// miss every write the new leader committed at later instances.
func TestStaleBarrierFailsPendingReads(t *testing.T) {
	r, env := prepareLeader(t, nil)
	var replies []ReadReplyMsg
	r.OnReadReply(func(m ReadReplyMsg) { replies = append(replies, m) })
	env.drain()
	r.Read(1, 2)
	if r.reads.barrier < 0 || len(r.reads.pending) != 1 {
		t.Fatalf("barrier = %d, pending = %d, want an armed barrier", r.reads.barrier, len(r.reads.pending))
	}
	// A follower that already learned a newer leader's decision at the
	// barrier instance answers the ACCEPT with the decision, not an
	// ACCEPTED (TestAcceptorAnswersDecidedInstanceWithDecide).
	r.Deliver(1, DecideMsg{Inst: r.reads.barrier, V: consensus.Noop})
	if len(replies) != 0 {
		t.Fatalf("stale barrier answered %d read batches, want 0", len(replies))
	}
	if len(r.reads.pending) != 0 || r.reads.barrier != -1 {
		t.Fatal("pending reads not failed after a foreign barrier decision")
	}
	if r.FallbackReads() != 0 {
		t.Fatal("failed reads counted as served")
	}
}

// TestOwnQuorumBarrierAnswersReads: the healthy fallback path on the
// unit harness — a majority of ACCEPTEDs at the leader's own ballot
// completes the barrier and answers the pending reads.
func TestOwnQuorumBarrierAnswersReads(t *testing.T) {
	r, env := prepareLeader(t, nil)
	var replies []ReadReplyMsg
	r.OnReadReply(func(m ReadReplyMsg) { replies = append(replies, m) })
	env.drain()
	r.Read(5, 3)
	r.Deliver(1, AcceptedMsg{B: r.prop.ballot, Inst: r.reads.barrier})
	if len(replies) != 1 || replies[0].Seq != 5 || replies[0].Count != 3 {
		t.Fatalf("replies = %+v, want one batch for seq 5 count 3", replies)
	}
	if replies[0].Local {
		t.Fatal("barrier read claimed to be local")
	}
	if r.reads.barrier != -1 || r.reads.barrierOwn || len(r.reads.pending) != 0 {
		t.Fatal("barrier state not reset after completion")
	}
	if r.FallbackReads() != 3 {
		t.Fatalf("fallback counter = %d, want 3", r.FallbackReads())
	}
}

// TestPendingFallbackReadsAreCapped: a stuck barrier must not let client
// retries grow the pending queue without bound.
func TestPendingFallbackReadsAreCapped(t *testing.T) {
	r, env := prepareLeader(t, nil)
	env.drain()
	for i := 0; i < maxPendingReads+100; i++ {
		r.Read(uint64(i), 1)
	}
	if len(r.reads.pending) != maxPendingReads {
		t.Fatalf("pending queue = %d, want capped at %d", len(r.reads.pending), maxPendingReads)
	}
}

// TestLeaseBlocksCompetingPrepareUntilExpiry: after the lease-holding
// leader crashes, the survivors' first successful phase 1 cannot land
// before the granted lease windows run out — and once they do, the
// cluster recovers and decides fresh commands (safety then liveness).
func TestLeaseBlocksCompetingPrepareUntilExpiry(t *testing.T) {
	const lease = 400 * ms
	c := newClusterCfg(t, 3, 26, network.Timely(2*ms), Config{Lease: lease})
	c.world.Start()
	c.world.RunFor(500 * ms)
	c.nodes[0].Submit("pre")
	c.world.RunFor(100 * ms)
	if !c.nodes[0].LeaseHeld() {
		t.Fatal("leader has no lease before the crash")
	}
	crashAt := c.world.Kernel.Now()
	c.world.Crash(0)
	// Well inside the lease window: detectors have long suspected p0, but
	// no survivor may complete phase 1 against the outstanding grants.
	c.world.RunFor(lease / 2)
	for i := 1; i < 3; i++ {
		if c.nodes[i].IsLeader() {
			t.Fatalf("p%d prepared a ballot %v after the crash, inside the lease window", i, c.world.Kernel.Now().Sub(crashAt))
		}
	}
	// Past expiry: a survivor takes over and the log makes progress.
	c.nodes[1].Submit("post")
	c.nodes[2].Submit("post2")
	c.world.RunFor(5 * time.Second)
	decided := c.appliedSet(1)
	if !decided["post"] || !decided["post2"] {
		t.Fatal("survivors never decided fresh commands after lease expiry")
	}
	if rep := c.safety(); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

// TestLeaseSkewDefault: a configured lease without an explicit skew gets
// the documented Lease/10 margin.
func TestLeaseSkewDefault(t *testing.T) {
	cfg := Config{Lease: time.Second}
	cfg.fill()
	if cfg.LeaseSkew != 100*ms {
		t.Fatalf("default LeaseSkew = %v, want %v", cfg.LeaseSkew, 100*ms)
	}
}
