package rsm

import (
	"repro/internal/consensus"
	"repro/internal/node"
)

// Message kind tags.
const (
	// KindRequest tags command forwarding to the leader.
	KindRequest = "RSM-REQ"
	// KindPrepare tags the leader's one-time phase-1 broadcast.
	KindPrepare = "RSM-PREPARE"
	// KindPromise tags phase-1 acknowledgements with accepted entries.
	KindPromise = "RSM-PROMISE"
	// KindNack tags ballot rejections.
	KindNack = "RSM-NACK"
	// KindAccept tags per-instance phase-2 proposals.
	KindAccept = "RSM-ACCEPT"
	// KindAccepted tags per-instance phase-2 acknowledgements.
	KindAccepted = "RSM-ACCEPTED"
	// KindDecide tags per-instance decision announcements.
	KindDecide = "RSM-DECIDE"
	// KindLearn tags gap-fill requests from lagging followers.
	KindLearn = "RSM-LEARN"
	// KindLeaseGrant tags idle-path lease refreshes; under load, grants
	// ride on ACCEPTs instead (see lease.go).
	KindLeaseGrant = "RSM-LEASE"
	// KindLeaseAck tags explicit grant acknowledgements; under load,
	// acks ride on ACCEPTEDs.
	KindLeaseAck = "RSM-LEASEACK"
	// KindReadReq tags linearizable read requests.
	KindReadReq = "RSM-READ"
	// KindReadReply tags read answers.
	KindReadReply = "RSM-READR"
)

// RequestMsg forwards a client command to the leader.
type RequestMsg struct{ V consensus.Value }

// Kind implements node.Message.
func (RequestMsg) Kind() string { return KindRequest }

// PrepareMsg opens a stable ballot covering all instances.
type PrepareMsg struct{ B consensus.Ballot }

// Kind implements node.Message.
func (PrepareMsg) Kind() string { return KindPrepare }

// PromEntry reports one accepted-but-not-decided instance in a promise.
type PromEntry struct {
	Inst int
	AccB consensus.Ballot
	AccV consensus.Value
}

// PromiseMsg acknowledges a stable ballot and reports accepted entries.
type PromiseMsg struct {
	B       consensus.Ballot
	Entries []PromEntry
}

// Kind implements node.Message.
func (PromiseMsg) Kind() string { return KindPromise }

// NackMsg rejects ballot B in favor of Promised.
type NackMsg struct {
	B        consensus.Ballot
	Promised consensus.Ballot
}

// Kind implements node.Message.
func (NackMsg) Kind() string { return KindNack }

// AcceptMsg proposes value V for log instance Inst at ballot B.
//
// CommitUpTo piggybacks decision information (see
// Config.PiggybackDecides): every instance below it that the receiver has
// accepted at ballot B is decided with its accepted value.
//
// MinDone piggybacks the Done vector's cluster minimum (see
// Config.Forget): every process has applied instances below it, so the
// receiver may forget them. Zero means "no forgetting".
//
// LeaseSeq, when non-zero, piggybacks a read-lease grant (see lease.go):
// the receiver promises not to promise a ballot owned by anyone else for
// Config.Lease from receipt, and acks the grant on its ACCEPTED.
type AcceptMsg struct {
	B          consensus.Ballot
	Inst       int
	V          consensus.Value
	CommitUpTo int
	MinDone    int
	LeaseSeq   uint64
}

// Kind implements node.Message.
func (AcceptMsg) Kind() string { return KindAccept }

// AcceptedMsg acknowledges acceptance of instance Inst at ballot B. Done
// advertises the sender's applied-through count (its first gap) — the
// sender's entry in the leader's Done vector (see Config.Forget).
// LeaseSeq, when non-zero, acknowledges the lease grant of that sequence
// number (see lease.go).
type AcceptedMsg struct {
	B        consensus.Ballot
	Inst     int
	Done     int
	LeaseSeq uint64
}

// Kind implements node.Message.
func (AcceptedMsg) Kind() string { return KindAccepted }

// DecideMsg announces instance Inst's decision.
type DecideMsg struct {
	Inst int
	V    consensus.Value
}

// Kind implements node.Message.
func (DecideMsg) Kind() string { return KindDecide }

// LearnMsg asks the receiver for decisions starting at FirstGap. It
// doubles as a Done-vector advertisement: the sender has applied
// everything below FirstGap.
type LearnMsg struct{ FirstGap int }

// Kind implements node.Message.
func (LearnMsg) Kind() string { return KindLearn }

// LeaseGrantMsg refreshes the leader's read lease when no ACCEPT traffic
// is flowing to carry the grant (see lease.go). B is the granting
// leader's stable ballot; Seq identifies the grant for acknowledgement.
type LeaseGrantMsg struct {
	B   consensus.Ballot
	Seq uint64
}

// Kind implements node.Message.
func (LeaseGrantMsg) Kind() string { return KindLeaseGrant }

// LeaseAckMsg acknowledges lease grant Seq at ballot B when no ACCEPTED
// is about to carry the ack.
type LeaseAckMsg struct {
	B   consensus.Ballot
	Seq uint64
}

// Kind implements node.Message.
func (LeaseAckMsg) Kind() string { return KindLeaseAck }

// ReadReqMsg asks the leader to position the Count reads numbered
// [Seq, Seq+Count) against the log (see read.go). Origin is the process
// the reply goes to; followers forward requests to the believed leader
// with Origin preserved, so one client hop reaches the serving replica.
type ReadReqMsg struct {
	Seq    uint64
	Count  uint32
	Origin node.ID
}

// Kind implements node.Message.
func (ReadReqMsg) Kind() string { return KindReadReq }

// ReadReplyMsg answers reads [Seq, Seq+Count): state that has applied
// Index commands reflects every write that completed before the reads
// were served. Local reports whether the leader served from its lease
// (zero consensus messages) or fell back to a phase-2 no-op barrier.
type ReadReplyMsg struct {
	Seq   uint64
	Count uint32
	Index int
	Local bool
}

// Kind implements node.Message.
func (ReadReplyMsg) Kind() string { return KindReadReply }

// learnBatch bounds how many decisions a LearnMsg response carries.
const learnBatch = 64
