package rsm

import "repro/internal/consensus"

// Message kind tags.
const (
	// KindRequest tags command forwarding to the leader.
	KindRequest = "RSM-REQ"
	// KindPrepare tags the leader's one-time phase-1 broadcast.
	KindPrepare = "RSM-PREPARE"
	// KindPromise tags phase-1 acknowledgements with accepted entries.
	KindPromise = "RSM-PROMISE"
	// KindNack tags ballot rejections.
	KindNack = "RSM-NACK"
	// KindAccept tags per-instance phase-2 proposals.
	KindAccept = "RSM-ACCEPT"
	// KindAccepted tags per-instance phase-2 acknowledgements.
	KindAccepted = "RSM-ACCEPTED"
	// KindDecide tags per-instance decision announcements.
	KindDecide = "RSM-DECIDE"
	// KindLearn tags gap-fill requests from lagging followers.
	KindLearn = "RSM-LEARN"
)

// RequestMsg forwards a client command to the leader.
type RequestMsg struct{ V consensus.Value }

// Kind implements node.Message.
func (RequestMsg) Kind() string { return KindRequest }

// PrepareMsg opens a stable ballot covering all instances.
type PrepareMsg struct{ B consensus.Ballot }

// Kind implements node.Message.
func (PrepareMsg) Kind() string { return KindPrepare }

// PromEntry reports one accepted-but-not-decided instance in a promise.
type PromEntry struct {
	Inst int
	AccB consensus.Ballot
	AccV consensus.Value
}

// PromiseMsg acknowledges a stable ballot and reports accepted entries.
type PromiseMsg struct {
	B       consensus.Ballot
	Entries []PromEntry
}

// Kind implements node.Message.
func (PromiseMsg) Kind() string { return KindPromise }

// NackMsg rejects ballot B in favor of Promised.
type NackMsg struct {
	B        consensus.Ballot
	Promised consensus.Ballot
}

// Kind implements node.Message.
func (NackMsg) Kind() string { return KindNack }

// AcceptMsg proposes value V for log instance Inst at ballot B.
//
// CommitUpTo piggybacks decision information (see
// Config.PiggybackDecides): every instance below it that the receiver has
// accepted at ballot B is decided with its accepted value.
//
// MinDone piggybacks the Done vector's cluster minimum (see
// Config.Forget): every process has applied instances below it, so the
// receiver may forget them. Zero means "no forgetting".
type AcceptMsg struct {
	B          consensus.Ballot
	Inst       int
	V          consensus.Value
	CommitUpTo int
	MinDone    int
}

// Kind implements node.Message.
func (AcceptMsg) Kind() string { return KindAccept }

// AcceptedMsg acknowledges acceptance of instance Inst at ballot B. Done
// advertises the sender's applied-through count (its first gap) — the
// sender's entry in the leader's Done vector (see Config.Forget).
type AcceptedMsg struct {
	B    consensus.Ballot
	Inst int
	Done int
}

// Kind implements node.Message.
func (AcceptedMsg) Kind() string { return KindAccepted }

// DecideMsg announces instance Inst's decision.
type DecideMsg struct {
	Inst int
	V    consensus.Value
}

// Kind implements node.Message.
func (DecideMsg) Kind() string { return KindDecide }

// LearnMsg asks the receiver for decisions starting at FirstGap. It
// doubles as a Done-vector advertisement: the sender has applied
// everything below FirstGap.
type LearnMsg struct{ FirstGap int }

// Kind implements node.Message.
func (LearnMsg) Kind() string { return KindLearn }

// learnBatch bounds how many decisions a LearnMsg response carries.
const learnBatch = 64
