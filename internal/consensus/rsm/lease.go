package rsm

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
)

// This file is the lease layer: leader read leases that make queries free
// in steady state. The prepared leader numbers lease grants with a
// monotonically increasing sequence and piggybacks the current grant on
// every ACCEPT it already broadcasts; followers piggyback the ack on the
// ACCEPTED they already return, so while commands flow the lease costs
// zero extra messages. Only when phase-2 traffic idles does the leader
// fall back to an explicit LeaseGrantMsg/LeaseAckMsg pair per refresh
// interval (Config.Lease/4).
//
// A follower that honors grant seq at ballot b promises: "until
// Config.Lease after I received this grant (my clock), I will not
// promise any ballot owned by a process other than b's owner". It
// enforces the promise by deferring — silently ignoring — PREPAREs from
// other would-be leaders (they retry on their usual backoff), and by
// holding off its own phase 1 while a foreign grant is unexpired.
//
// The leader counts grant seq acked by follower f as valid until
// issued(seq) + Config.Lease − Config.LeaseSkew on its own clock, where
// issued(seq) is when it FIRST sent that grant. It holds the lease while
// a majority (its own vote included) of grants are valid. Safety needs
// only a bound on clock *rate* divergence over one lease interval, not
// synchronized clocks: the follower's window starts at receipt, which is
// at or after first-send in real time, so the leader's window starts no
// later than the follower's; LeaseSkew then covers the follower's clock
// running fast relative to the leader's by up to LeaseSkew over one
// Lease. Under that assumption, while the leader's conservative window
// holds, every quorum of any competing prepare intersects a follower
// still inside its deferral window, so no other ballot can complete
// phase 1 — and nothing can be decided this replica's applied prefix
// would miss. Serving a read at the leader's applied index while the
// lease holds is therefore linearizable (see read.go for the fallback
// when it does not hold).
//
// A lease holder that learns of a higher ballot (PREPARE or NACK) drops
// its lease state along with leadership before acknowledging the ballot,
// so it can never serve a local read after helping a competitor — the
// lease breaks early, never stale.

// leaseState holds both sides of the lease protocol for one replica.
type leaseState struct {
	// Leader side.
	seq      uint64              // current grant sequence number
	issued   map[uint64]sim.Time // grant seq → first-send time
	granted  []sim.Time          // per follower: conservative grant expiry
	lastSent sim.Time            // when a grant last rode out (any carrier)

	// Follower side.
	holder     node.ID  // owner of the last honored grant
	blockUntil sim.Time // defer foreign prepares until then

	// restartHold covers the blind spot after crash-recovery: grant
	// state lived only in RAM, so a restarted replica cannot know
	// whether its previous incarnation granted (or held) a lease that
	// is still running. Until this instant — recovery time + Lease —
	// it defers every prepare, its own included, and serves no local
	// reads. Conservative and bounded, so liveness is only delayed.
	restartHold sim.Time

	// heldUntil mirrors the leader-side quorum expiry (unix-ish env
	// nanos) for observers outside the node loop; 0 when not held.
	heldUntil atomic.Int64
	// localReads / fallbackReads count individual reads served from the
	// lease vs through the no-op barrier (telemetry).
	localReads    atomic.Uint64
	fallbackReads atomic.Uint64
}

// leaseRefresh is the grant rollover period: a fresh grant sequence is
// issued every quarter lease, so the quorum expiry is re-extended three
// times before it can lapse under healthy links.
func (r *Node) leaseRefresh() time.Duration {
	q := r.cfg.Lease / 4
	if q < r.cfg.DriveInterval {
		q = r.cfg.DriveInterval
	}
	return q
}

// grantSeq returns the lease grant to piggyback on an outgoing ACCEPT,
// rolling the sequence forward once per refresh interval. Zero when
// leases are disabled.
func (r *Node) grantSeq(now sim.Time) uint64 {
	if r.cfg.Lease <= 0 {
		return 0
	}
	if r.lease.seq == 0 || now.Sub(r.lease.issued[r.lease.seq]) >= r.leaseRefresh() {
		r.lease.seq++
		if r.lease.issued == nil {
			r.lease.issued = make(map[uint64]sim.Time, 8)
		}
		r.lease.issued[r.lease.seq] = now
		// Prune grants too old to extend any expiry.
		for s, t := range r.lease.issued {
			if now.Sub(t) > r.cfg.Lease {
				delete(r.lease.issued, s)
			}
		}
	}
	r.lease.lastSent = now
	return r.lease.seq
}

// refreshLease keeps grants flowing when no ACCEPT traffic carries them:
// the drive tick broadcasts an explicit grant once per refresh interval.
func (r *Node) refreshLease(now sim.Time) {
	if r.cfg.Lease <= 0 || !r.prop.prepared {
		return
	}
	if now.Sub(r.lease.lastSent) < r.leaseRefresh() {
		return
	}
	r.env.Broadcast(LeaseGrantMsg{B: r.prop.ballot, Seq: r.grantSeq(now)})
}

// noteGrant is the follower side: honor a grant carried by an ACCEPT or
// a LeaseGrantMsg whose ballot this acceptor has (just) promised.
// Returns the sequence to ack, or zero when the grant is not honored.
func (r *Node) noteGrant(b consensus.Ballot, seq uint64, now sim.Time) uint64 {
	if r.cfg.Lease <= 0 || seq == 0 || b < r.acc.promised {
		return 0
	}
	r.lease.holder = b.Owner(r.n)
	if until := now.Add(r.cfg.Lease); until.After(r.lease.blockUntil) {
		r.lease.blockUntil = until
	}
	return seq
}

// onLeaseGrant handles an explicit idle-path grant.
func (r *Node) onLeaseGrant(from node.ID, m LeaseGrantMsg) {
	if seq := r.noteGrant(m.B, m.Seq, r.env.Now()); seq != 0 {
		r.env.Send(from, LeaseAckMsg{B: m.B, Seq: seq})
	}
}

// onLeaseAck is the leader side: follower from has honored grant seq.
// The grant is valid until first-send + Lease − LeaseSkew; the quorum
// expiry is the Majority-th largest per-follower expiry (own vote
// included).
func (r *Node) onLeaseAck(from node.ID, b consensus.Ballot, seq uint64) {
	if r.cfg.Lease <= 0 || seq == 0 || !r.prop.prepared || b != r.prop.ballot {
		return
	}
	issued, ok := r.lease.issued[seq]
	if !ok {
		return // too old: conservatively worthless
	}
	until := issued.Add(r.cfg.Lease - r.cfg.LeaseSkew)
	if r.lease.granted == nil {
		r.lease.granted = make([]sim.Time, r.n)
	}
	if until.After(r.lease.granted[from]) {
		r.lease.granted[from] = until
	}
	// Recompute the quorum expiry: with our own vote, we need
	// Majority-1 unexpired follower grants.
	need := consensus.Majority(r.n) - 1
	if need <= 0 {
		r.lease.heldUntil.Store(int64(until))
		return
	}
	exp := make([]sim.Time, 0, r.n-1)
	for f, t := range r.lease.granted {
		if node.ID(f) != r.me && t > 0 {
			exp = append(exp, t)
		}
	}
	if len(exp) < need {
		return
	}
	sort.Slice(exp, func(i, j int) bool { return exp[i] > exp[j] })
	r.lease.heldUntil.Store(int64(exp[need-1]))
}

// holdsLease reports whether local reads are safe right now: prepared,
// still nominated by Omega, a quorum of grants unexpired, and no
// post-restart blind spot in effect.
func (r *Node) holdsLease(now sim.Time) bool {
	return r.cfg.Lease > 0 && r.prop.prepared && r.omega.Leader() == r.me &&
		!r.lease.restartHold.After(now) &&
		sim.Time(r.lease.heldUntil.Load()).After(now)
}

// leaseDefersOwnPrepare reports whether this process, freshly nominated
// by Omega, must wait out a standing grant to the previous leader before
// opening its own ballot.
func (r *Node) leaseDefersOwnPrepare(now sim.Time) bool {
	if r.cfg.Lease <= 0 {
		return false
	}
	if r.lease.restartHold.After(now) {
		return true // pre-crash grants are unknown: wait out a full Lease
	}
	if r.lease.holder == node.None || r.lease.holder == r.me {
		return false
	}
	if !r.lease.blockUntil.After(now) {
		r.lease.holder = node.None // expired
		return false
	}
	return true
}

// leaseBlocks reports whether this acceptor's grant to another leader
// forbids promising ballot b right now.
func (r *Node) leaseBlocks(b consensus.Ballot, now sim.Time) bool {
	if r.cfg.Lease <= 0 {
		return false
	}
	if r.lease.restartHold.After(now) {
		// Whoever held a lease before the crash, promising any ballot
		// now could break it. Defer all prepares until it must have
		// expired; preparers retry on their backoff.
		return true
	}
	if r.lease.holder == node.None {
		return false
	}
	if !r.lease.blockUntil.After(now) {
		r.lease.holder = node.None // expired
		return false
	}
	return b.Owner(r.n) != r.lease.holder
}

// abdicateLeader drops leader duties and every lease- and read-serving
// right that came with them. Pending fallback reads are dropped (clients
// retry against the new leader); the gauge clears before any competing
// ballot gets our promise.
func (r *Node) abdicateLeader() {
	if r.prop.prepared || r.prop.preparing {
		// Only an actual demotion is an election transition worth a span;
		// the follower housekeeping path calls this every tick.
		r.cfg.Tracer.Mark(r.env.Now(), "abdicate", -1)
	}
	r.prop.abdicate()
	if r.lease.heldUntil.Load() != 0 {
		r.lease.heldUntil.Store(0)
	}
	if r.lease.granted != nil {
		for i := range r.lease.granted {
			r.lease.granted[i] = 0
		}
	}
	r.lease.seq = 0
	if len(r.lease.issued) > 0 {
		clear(r.lease.issued)
	}
	r.failPendingReads()
}

// LeaseHeld reports whether this replica currently holds a quorum read
// lease. Safe from any goroutine on live transports; in the simulator
// call it only while the world is paused.
func (r *Node) LeaseHeld() bool {
	if r.env == nil {
		return false
	}
	return sim.Time(r.lease.heldUntil.Load()).After(r.env.Now())
}

// LocalReads returns how many reads this replica served from its lease.
// Safe from any goroutine.
func (r *Node) LocalReads() uint64 { return r.lease.localReads.Load() }

// FallbackReads returns how many reads this replica served through the
// phase-2 no-op barrier. Safe from any goroutine.
func (r *Node) FallbackReads() uint64 { return r.lease.fallbackReads.Load() }
