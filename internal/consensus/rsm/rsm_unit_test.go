package rsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
)

// sent records one outbound message from the fake environment.
type sent struct {
	to  node.ID
	msg node.Message
}

// fakeEnv is a hand-driven node.Env for unit-testing the leader-change
// logic without a simulator.
type fakeEnv struct {
	id     node.ID
	n      int
	now    sim.Time
	outbox []sent
	timers map[string]time.Duration
}

var _ node.Env = (*fakeEnv)(nil)

func newFakeEnv(id node.ID, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, timers: make(map[string]time.Duration)}
}

func (e *fakeEnv) ID() node.ID   { return e.id }
func (e *fakeEnv) N() int        { return e.n }
func (e *fakeEnv) Now() sim.Time { return e.now }

func (e *fakeEnv) Send(to node.ID, m node.Message) {
	e.outbox = append(e.outbox, sent{to: to, msg: m})
}

func (e *fakeEnv) Broadcast(m node.Message) {
	for to := 0; to < e.n; to++ {
		if node.ID(to) != e.id {
			e.Send(node.ID(to), m)
		}
	}
}

func (e *fakeEnv) SetTimer(key string, d time.Duration) { e.timers[key] = d }
func (e *fakeEnv) StopTimer(key string)                 { delete(e.timers, key) }
func (e *fakeEnv) Logf(format string, args ...any)      { _ = fmt.Sprintf(format, args...) }

func (e *fakeEnv) drain() []sent {
	out := e.outbox
	e.outbox = nil
	return out
}

// acceptsOf extracts the AcceptMsg broadcasts per instance from an outbox.
func acceptsOf(msgs []sent) map[int]consensus.Value {
	out := make(map[int]consensus.Value)
	for _, s := range msgs {
		if a, ok := s.msg.(AcceptMsg); ok {
			out[a.Inst] = a.V
		}
	}
	return out
}

// prepareLeader boots a 3-process leader on a fake env and completes
// phase 1 with the given peer promise.
func prepareLeader(t *testing.T, peerPromise *PromiseMsg) (*Node, *fakeEnv) {
	t.Helper()
	r := New(consensus.StaticLeader(0), Config{})
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.Tick(timerDrive) // starts the prepare
	if !r.prop.preparing {
		t.Fatal("leader did not start preparing")
	}
	ballot := r.prop.ballot
	env.drain()
	if peerPromise != nil {
		p := *peerPromise
		p.B = ballot
		r.Deliver(1, p)
	} else {
		r.Deliver(1, PromiseMsg{B: ballot})
	}
	if !r.prop.prepared {
		t.Fatal("quorum promise did not complete phase 1")
	}
	return r, env
}

func TestNewLeaderReproposesHighestAcceptedValue(t *testing.T) {
	// The peer reports instance 2 accepted at a high ballot; the new
	// leader must re-propose that value, and close gaps 0–1 with no-ops.
	promise := &PromiseMsg{
		Entries: []PromEntry{{Inst: 2, AccB: consensus.MakeBallot(4, 1, 3), AccV: "locked"}},
	}
	r, env := prepareLeader(t, promise)
	accepts := acceptsOf(env.drain())
	if accepts[2] != "locked" {
		t.Fatalf("instance 2 re-proposed %q, want locked value", accepts[2])
	}
	if accepts[0] != consensus.Noop || accepts[1] != consensus.Noop {
		t.Fatalf("gaps not filled with no-ops: %v", accepts)
	}
	if r.pipe.nextInst != 3 {
		t.Fatalf("nextInst = %d, want 3", r.pipe.nextInst)
	}
}

func TestNewLeaderPicksHighestBallotAmongConflicts(t *testing.T) {
	// Self has an accepted entry too (from an older reign); the peer's
	// higher-ballot entry must win.
	r := New(consensus.StaticLeader(0), Config{})
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.acc.accepted[0] = acceptedEntry{b: consensus.MakeBallot(1, 0, 3), v: "mine"}
	r.Tick(timerDrive)
	env.drain()
	r.Deliver(1, PromiseMsg{
		B:       r.prop.ballot,
		Entries: []PromEntry{{Inst: 0, AccB: consensus.MakeBallot(7, 1, 3), AccV: "theirs"}},
	})
	accepts := acceptsOf(env.drain())
	if accepts[0] != "theirs" {
		t.Fatalf("instance 0 re-proposed %q, want higher-ballot value", accepts[0])
	}
}

func TestDecidedInstancesNotReproposed(t *testing.T) {
	r := New(consensus.StaticLeader(0), Config{})
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.learn(0, "done")
	r.Tick(timerDrive)
	env.drain()
	r.Deliver(1, PromiseMsg{
		B:       r.prop.ballot,
		Entries: []PromEntry{{Inst: 0, AccB: consensus.MakeBallot(2, 1, 3), AccV: "stale"}},
	})
	accepts := acceptsOf(env.drain())
	if _, ok := accepts[0]; ok {
		t.Fatalf("decided instance re-proposed: %v", accepts)
	}
}

func TestHigherPrepareAbdicates(t *testing.T) {
	r, env := prepareLeader(t, nil)
	env.drain()
	high := r.prop.ballot + 100
	r.Deliver(2, PrepareMsg{B: high})
	if r.prop.prepared {
		t.Fatal("leader did not abdicate on higher prepare")
	}
	out := env.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	if p, ok := out[0].msg.(PromiseMsg); !ok || p.B != high {
		t.Fatalf("reply = %+v, want promise at %v", out[0].msg, high)
	}
}

func TestNackAbdicatesAndOutbidsLater(t *testing.T) {
	r, env := prepareLeader(t, nil)
	first := r.prop.ballot
	r.Deliver(2, NackMsg{B: first, Promised: first + 50})
	if r.prop.prepared || r.prop.preparing {
		t.Fatal("leader did not reset on nack")
	}
	env.drain()
	// Force the next prepare attempt (backoff makes the drive tick skip
	// until the window passes; jump the clock).
	env.now = env.now.Add(time.Hour)
	r.Tick(timerDrive)
	if !r.prop.preparing {
		t.Fatal("no re-prepare after nack")
	}
	if r.prop.ballot <= first+50 {
		t.Fatalf("new ballot %v does not outbid nack's %v", r.prop.ballot, first+50)
	}
}

func TestAcceptorAnswersDecidedInstanceWithDecide(t *testing.T) {
	r := New(consensus.StaticLeader(1), Config{})
	env := newFakeEnv(2, 3)
	r.Start(env)
	r.learn(3, "v")
	env.drain()
	r.Deliver(1, AcceptMsg{B: 10, Inst: 3, V: "other"})
	out := env.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	d, ok := out[0].msg.(DecideMsg)
	if !ok || d.Inst != 3 || d.V != "v" {
		t.Fatalf("reply = %+v, want decide of the learned value", out[0].msg)
	}
}

func TestLearnBatchIsBounded(t *testing.T) {
	r := New(consensus.StaticLeader(0), Config{})
	env := newFakeEnv(0, 3)
	r.Start(env)
	for i := 0; i < learnBatch+40; i++ {
		r.learn(i, consensus.Value(fmt.Sprintf("v%d", i)))
	}
	env.drain()
	r.Deliver(2, LearnMsg{FirstGap: 0})
	out := env.drain()
	if len(out) != learnBatch {
		t.Fatalf("learn reply sent %d decides, want %d", len(out), learnBatch)
	}
}

func TestFollowerDropsRequests(t *testing.T) {
	r := New(consensus.StaticLeader(1), Config{}) // someone else leads
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.Deliver(2, RequestMsg{V: "cmd"})
	if len(r.pipe.inflights) != 0 {
		t.Fatal("follower proposed a request")
	}
}

func TestLearnAdvancesGapAcrossHoles(t *testing.T) {
	r := New(consensus.StaticLeader(0), Config{})
	env := newFakeEnv(0, 3)
	r.Start(env)
	r.learn(0, "a")
	r.learn(2, "c")
	if r.FirstGap() != 1 {
		t.Fatalf("FirstGap = %d, want 1", r.FirstGap())
	}
	if r.HighestDecided() != 2 {
		t.Fatalf("HighestDecided = %d", r.HighestDecided())
	}
	r.learn(1, "b")
	if r.FirstGap() != 3 {
		t.Fatalf("FirstGap = %d after hole closed, want 3", r.FirstGap())
	}
}
