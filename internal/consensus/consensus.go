// Package consensus holds the types shared by the consensus protocols in
// this repository — the paper's leader-driven, communication-efficient
// synod protocol (internal/consensus/synod), its repeated/replicated-log
// form (internal/consensus/rsm), and the classic rotating-coordinator
// baseline (internal/consensus/ct) — together with ballot arithmetic and a
// safety checker (agreement, validity, integrity) used by tests and
// experiments.
package consensus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

// Value is a proposable command. The empty string is "no value".
type Value string

// NoValue is the absence of a value.
const NoValue Value = ""

// Noop is the filler command a new leader proposes for log gaps it must
// close before serving fresh commands (see internal/consensus/rsm).
const Noop Value = "__noop__"

// Decision records one learned outcome.
type Decision struct {
	// Instance is the consensus instance (always 0 for single-decree).
	Instance int
	// Value is the decided value.
	Value Value
	// At is when this process learned the decision.
	At sim.Time
	// By is the learning process.
	By node.ID
	// Elapsed is the proposer-side decision latency — how long the
	// deciding phase-2 round ran before a quorum formed. Only the
	// proposing leader knows it; everywhere else it is zero ("unknown").
	Elapsed time.Duration
}

// Recorder collects the decisions one process learns. It is safe for
// concurrent use so live transports can observe it.
type Recorder struct {
	mu        sync.Mutex
	decisions map[int]Decision
	order     []Decision
	notify    func(d Decision)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{decisions: make(map[int]Decision)}
}

// SetNotify installs a hook invoked after each first-time decision record
// (the telemetry layer's feed for decision counting and latency). The hook
// runs on the recording goroutine, outside the recorder's lock; it must
// not block and must be safe for concurrent use if shared.
func (r *Recorder) SetNotify(fn func(d Decision)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notify = fn
}

// Record stores the first decision for an instance; later records for the
// same instance are ignored (integrity is checked elsewhere).
func (r *Recorder) Record(d Decision) {
	r.mu.Lock()
	if _, ok := r.decisions[d.Instance]; ok {
		r.mu.Unlock()
		return
	}
	r.decisions[d.Instance] = d
	r.order = append(r.order, d)
	notify := r.notify
	r.mu.Unlock()
	if notify != nil {
		notify(d)
	}
}

// Get returns the decision for an instance, if learned.
func (r *Recorder) Get(instance int) (Decision, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.decisions[instance]
	return d, ok
}

// Count returns how many instances this process has decided.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.decisions)
}

// All returns the decisions in learning order (copy).
func (r *Recorder) All() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, len(r.order))
	copy(out, r.order)
	return out
}

// Ballot is a totally ordered proposal number with an owner. Ballot 0 means
// "none"; real ballots are round*n + owner + 1 so that distinct processes
// never collide and a process can always outbid any ballot it has seen.
type Ballot uint64

// NoBallot is the absence of a ballot.
const NoBallot Ballot = 0

// MakeBallot builds the ballot of the given round owned by id in an
// n-process system.
func MakeBallot(round int, id node.ID, n int) Ballot {
	return Ballot(uint64(round)*uint64(n) + uint64(id) + 1)
}

// Owner returns the process owning b in an n-process system.
func (b Ballot) Owner(n int) node.ID {
	if b == NoBallot {
		return node.None
	}
	return node.ID((uint64(b) - 1) % uint64(n))
}

// Round returns b's round in an n-process system.
func (b Ballot) Round(n int) int {
	if b == NoBallot {
		return -1
	}
	return int((uint64(b) - 1) / uint64(n))
}

// Next returns the smallest ballot owned by id that is strictly greater
// than b.
func (b Ballot) Next(id node.ID, n int) Ballot {
	round := 0
	if b != NoBallot {
		// Start in b's own round: a larger owner id may already outbid
		// b there, which keeps Next minimal.
		round = b.Round(n)
	}
	for {
		cand := MakeBallot(round, id, n)
		if cand > b {
			return cand
		}
		round++
	}
}

// String renders the ballot.
func (b Ballot) String() string {
	if b == NoBallot {
		return "⊥"
	}
	return fmt.Sprintf("b%d", uint64(b))
}

// Majority returns the minimum quorum size for n processes.
func Majority(n int) int { return n/2 + 1 }

// SafetyInput bundles what the safety checker needs.
type SafetyInput struct {
	// Recorders holds each process's learned decisions, indexed by id.
	Recorders []*Recorder
	// Proposed maps each instance to the set of values proposed for it
	// (for validity). A nil map skips the validity check.
	Proposed map[int][]Value
	// Crashed marks processes whose missing decisions are excusable.
	Crashed map[node.ID]sim.Time
}

// SafetyReport is the verdict of CheckSafety.
type SafetyReport struct {
	// Agreement: no two processes decided differently in any instance.
	Agreement bool
	// Validity: every decided value was proposed for its instance.
	Validity bool
	// TotalDecisions counts (process, instance) decisions observed.
	TotalDecisions int
	// Instances counts distinct decided instances.
	Instances int
	// Violations lists human-readable problems found.
	Violations []string
}

// Holds reports whether all checked properties hold.
func (r SafetyReport) Holds() bool { return r.Agreement && r.Validity }

// CheckSafety verifies consensus agreement and validity across a run.
func CheckSafety(in SafetyInput) SafetyReport {
	rep := SafetyReport{Agreement: true, Validity: true}
	chosen := make(map[int]Value)
	var instances []int
	for id, r := range in.Recorders {
		if r == nil {
			continue
		}
		for _, d := range r.All() {
			rep.TotalDecisions++
			prev, ok := chosen[d.Instance]
			if !ok {
				chosen[d.Instance] = d.Value
				instances = append(instances, d.Instance)
				continue
			}
			if prev != d.Value {
				rep.Agreement = false
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"instance %d: p%d decided %q but %q was decided elsewhere", d.Instance, id, d.Value, prev))
			}
		}
	}
	sort.Ints(instances)
	rep.Instances = len(instances)
	if in.Proposed != nil {
		for inst, v := range chosen {
			if !contains(in.Proposed[inst], v) {
				rep.Validity = false
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"instance %d: decided %q was never proposed", inst, v))
			}
		}
	}
	return rep
}

func contains(vs []Value, v Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// Leadership is the view a consensus engine has of its co-located Omega
// module. detector.Omega satisfies it.
type Leadership interface {
	Leader() node.ID
}

// StaticLeader is a Leadership that always returns the same process —
// useful in unit tests.
type StaticLeader node.ID

// Leader implements Leadership.
func (s StaticLeader) Leader() node.ID { return node.ID(s) }
