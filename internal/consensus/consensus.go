// Package consensus holds the types shared by the consensus protocols in
// this repository — the paper's leader-driven, communication-efficient
// synod protocol (internal/consensus/synod), its repeated/replicated-log
// form (internal/consensus/rsm), and the classic rotating-coordinator
// baseline (internal/consensus/ct) — together with ballot arithmetic and a
// safety checker (agreement, validity, integrity) used by tests and
// experiments.
package consensus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

// Value is a proposable command. The empty string is "no value".
type Value string

// NoValue is the absence of a value.
const NoValue Value = ""

// Noop is the filler command a new leader proposes for log gaps it must
// close before serving fresh commands (see internal/consensus/rsm).
const Noop Value = "__noop__"

// Decision records one learned outcome. With command batching a single
// decided instance carries several client commands; each gets its own
// Decision, distinguished by Cmd, so latency and safety are tracked per
// command rather than per batch.
type Decision struct {
	// Instance is the consensus instance (always 0 for single-decree).
	Instance int
	// Cmd is the command's position within the instance's decided value
	// (0 for unbatched values and single-decree protocols).
	Cmd int
	// Value is the decided value — the individual command, not the batch
	// envelope it rode in.
	Value Value
	// At is when this process learned the decision.
	At sim.Time
	// By is the learning process.
	By node.ID
	// Elapsed is the proposer-side decision latency for this command —
	// from the moment the leader enqueued it until it was applied. Only
	// the proposing leader knows it; everywhere else it is zero
	// ("unknown").
	Elapsed time.Duration
}

// decisionKey identifies one command slot: batching means an instance can
// decide several commands, each recorded once.
type decisionKey struct {
	inst, cmd int
}

// Recorder collects the decisions one process learns. It is safe for
// concurrent use so live transports can observe it.
type Recorder struct {
	mu        sync.Mutex
	decisions map[decisionKey]Decision
	order     []Decision
	notify    func(d Decision)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{decisions: make(map[decisionKey]Decision)}
}

// SetNotify installs a hook invoked after each first-time decision record
// (the telemetry layer's feed for decision counting and latency). The hook
// runs on the recording goroutine, outside the recorder's lock; it must
// not block and must be safe for concurrent use if shared.
func (r *Recorder) SetNotify(fn func(d Decision)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notify = fn
}

// Record stores the first decision for a command slot; later records for
// the same (instance, cmd) are ignored (integrity is checked elsewhere).
func (r *Recorder) Record(d Decision) {
	key := decisionKey{d.Instance, d.Cmd}
	r.mu.Lock()
	if _, ok := r.decisions[key]; ok {
		r.mu.Unlock()
		return
	}
	r.decisions[key] = d
	r.order = append(r.order, d)
	notify := r.notify
	r.mu.Unlock()
	if notify != nil {
		notify(d)
	}
}

// Get returns the first command's decision for an instance, if learned —
// the whole decision for unbatched values.
func (r *Recorder) Get(instance int) (Decision, bool) {
	return r.GetCmd(instance, 0)
}

// GetCmd returns the decision for one command slot of an instance, if
// learned.
func (r *Recorder) GetCmd(instance, cmd int) (Decision, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.decisions[decisionKey{instance, cmd}]
	return d, ok
}

// Count returns how many commands this process has decided (equals the
// instance count when nothing is batched).
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.decisions)
}

// All returns the decisions in learning order (copy).
func (r *Recorder) All() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, len(r.order))
	copy(out, r.order)
	return out
}

// Ballot is a totally ordered proposal number with an owner. Ballot 0 means
// "none"; real ballots are round*n + owner + 1 so that distinct processes
// never collide and a process can always outbid any ballot it has seen.
type Ballot uint64

// NoBallot is the absence of a ballot.
const NoBallot Ballot = 0

// MakeBallot builds the ballot of the given round owned by id in an
// n-process system.
func MakeBallot(round int, id node.ID, n int) Ballot {
	return Ballot(uint64(round)*uint64(n) + uint64(id) + 1)
}

// Owner returns the process owning b in an n-process system.
func (b Ballot) Owner(n int) node.ID {
	if b == NoBallot {
		return node.None
	}
	return node.ID((uint64(b) - 1) % uint64(n))
}

// Round returns b's round in an n-process system.
func (b Ballot) Round(n int) int {
	if b == NoBallot {
		return -1
	}
	return int((uint64(b) - 1) / uint64(n))
}

// Next returns the smallest ballot owned by id that is strictly greater
// than b.
func (b Ballot) Next(id node.ID, n int) Ballot {
	round := 0
	if b != NoBallot {
		// Start in b's own round: a larger owner id may already outbid
		// b there, which keeps Next minimal.
		round = b.Round(n)
	}
	for {
		cand := MakeBallot(round, id, n)
		if cand > b {
			return cand
		}
		round++
	}
}

// String renders the ballot.
func (b Ballot) String() string {
	if b == NoBallot {
		return "⊥"
	}
	return fmt.Sprintf("b%d", uint64(b))
}

// Majority returns the minimum quorum size for n processes.
func Majority(n int) int { return n/2 + 1 }

// SafetyInput bundles what the safety checker needs.
type SafetyInput struct {
	// Recorders holds each process's learned decisions, indexed by id.
	Recorders []*Recorder
	// Proposed maps each instance to the set of values proposed for it
	// (for validity). A nil map skips the validity check.
	Proposed map[int][]Value
	// Crashed marks processes whose missing decisions are excusable.
	Crashed map[node.ID]sim.Time
}

// SafetyReport is the verdict of CheckSafety.
type SafetyReport struct {
	// Agreement: no two processes decided differently in any instance.
	Agreement bool
	// Validity: every decided value was proposed for its instance.
	Validity bool
	// TotalDecisions counts (process, instance) decisions observed.
	TotalDecisions int
	// Instances counts distinct decided instances.
	Instances int
	// Violations lists human-readable problems found.
	Violations []string
}

// Holds reports whether all checked properties hold.
func (r SafetyReport) Holds() bool { return r.Agreement && r.Validity }

// CheckSafety verifies consensus agreement and validity across a run.
// Agreement is checked per command slot: with batching, two processes must
// decide the same command at every (instance, position) pair, not merely
// the same batch envelope.
func CheckSafety(in SafetyInput) SafetyReport {
	rep := SafetyReport{Agreement: true, Validity: true}
	chosen := make(map[decisionKey]Value)
	seen := make(map[int]bool)
	for id, r := range in.Recorders {
		if r == nil {
			continue
		}
		for _, d := range r.All() {
			rep.TotalDecisions++
			key := decisionKey{d.Instance, d.Cmd}
			prev, ok := chosen[key]
			if !ok {
				chosen[key] = d.Value
				seen[d.Instance] = true
				continue
			}
			if prev != d.Value {
				rep.Agreement = false
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"instance %d cmd %d: p%d decided %q but %q was decided elsewhere", d.Instance, d.Cmd, id, d.Value, prev))
			}
		}
	}
	var instances []int
	for inst := range seen {
		instances = append(instances, inst)
	}
	sort.Ints(instances)
	rep.Instances = len(instances)
	if in.Proposed != nil {
		for key, v := range chosen {
			if v == Noop {
				continue // gap filler, proposed by the protocol itself
			}
			if !contains(in.Proposed[key.inst], v) {
				rep.Validity = false
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"instance %d cmd %d: decided %q was never proposed", key.inst, key.cmd, v))
			}
		}
	}
	return rep
}

func contains(vs []Value, v Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// Leadership is the view a consensus engine has of its co-located Omega
// module. detector.Omega satisfies it.
type Leadership interface {
	Leader() node.ID
}

// StaticLeader is a Leadership that always returns the same process —
// useful in unit tests.
type StaticLeader node.ID

// Leader implements Leadership.
func (s StaticLeader) Leader() node.ID { return node.ID(s) }
