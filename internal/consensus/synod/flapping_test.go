package synod

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

// flappingOracle is a Leadership whose output rotates on every call for a
// while before settling — a worst-case Omega that lies during the
// unstable period. Safety must hold throughout; liveness must follow once
// it settles.
type flappingOracle struct {
	n       int
	calls   int
	settleA int // calls after which the output settles
	settled node.ID
}

func (f *flappingOracle) Leader() node.ID {
	f.calls++
	if f.calls < f.settleA {
		return node.ID(f.calls % f.n)
	}
	return f.settled
}

func TestSafetyAndLivenessUnderFlappingOracle(t *testing.T) {
	const n = 5
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: 17, DefaultLink: network.Timely(2 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		// Every process thinks it leads every n-th drive tick during
		// the flapping phase: dueling proposers, the synod stress case.
		oracle := &flappingOracle{n: n, settleA: 60, settled: 2}
		nodes[i] = New(oracle, Config{})
		nodes[i].Propose(consensus.Value(fmt.Sprintf("v%d", i)))
		w.SetAutomaton(node.ID(i), nodes[i])
	}
	w.Start()
	w.RunUntil(sim.At(30*time.Second), func() bool {
		for _, s := range nodes {
			if _, ok := s.Decided(); !ok {
				return false
			}
		}
		return true
	})
	recs := make([]*consensus.Recorder, n)
	var decided consensus.Value
	for i, s := range nodes {
		recs[i] = s.Recorder()
		v, ok := s.Decided()
		if !ok {
			t.Fatalf("p%d undecided after the oracle settled", i)
		}
		if decided == consensus.NoValue {
			decided = v
		} else if v != decided {
			t.Fatalf("p%d decided %q, others %q", i, v, decided)
		}
	}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("agreement violated under flapping oracle: %v", rep.Violations)
	}
}
