package synod

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/durable"
)

// Restart tests for the durable acceptor: a kill -9'd synod process must
// come back bound by its pre-crash promises and votes.

func openWAL(t *testing.T, dir string) *durable.WAL {
	t.Helper()
	w, err := durable.Open(dir, durable.Options{Sync: durable.SyncOff})
	if err != nil {
		t.Fatalf("durable.Open(%s): %v", dir, err)
	}
	return w
}

func TestRestartKeepsPromiseAndVote(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	s := New(consensus.StaticLeader(1), Config{Store: w})
	env := newFakeEnv(2, 3)
	s.Start(env)
	b := consensus.MakeBallot(4, 1, 3)
	s.Deliver(1, PrepareMsg{B: b})
	s.Deliver(1, AcceptMsg{B: b, V: "voted"})
	env.drain()
	w.Close()

	s2 := New(consensus.StaticLeader(1), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(2, 3)
	s2.Start(env2)

	// A lower ballot must be nacked — the pre-crash promise stands.
	low := consensus.MakeBallot(1, 0, 3)
	s2.Deliver(0, PrepareMsg{B: low})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	if n, ok := out[0].msg.(NackMsg); !ok || n.Promised != b {
		t.Fatalf("reply = %+v, want nack at %v", out[0].msg, b)
	}

	// A higher prepare must learn of the pre-crash vote, so the new
	// leader is forced to re-propose "voted".
	high := consensus.MakeBallot(9, 0, 3)
	s2.Deliver(0, PrepareMsg{B: high})
	out = env2.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	p, ok := out[0].msg.(PromiseMsg)
	if !ok || p.AccB != b || p.AccV != "voted" {
		t.Fatalf("promise = %+v, want pre-crash vote (%v, voted)", out[0].msg, b)
	}
}

func TestRestartKeepsDecision(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	s := New(consensus.StaticLeader(1), Config{Store: w})
	env := newFakeEnv(2, 3)
	s.Start(env)
	s.Deliver(1, DecideMsg{V: "final"})
	w.Close()

	s2 := New(consensus.StaticLeader(1), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(2, 3)
	s2.Start(env2)
	if v, ok := s2.Decided(); !ok || v != "final" {
		t.Fatalf("Decided() = %q,%v after restart, want final,true", v, ok)
	}
	// And it serves the decision to laggards immediately.
	s2.Deliver(0, LearnMsg{})
	out := env2.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	if d, ok := out[0].msg.(DecideMsg); !ok || d.V != "final" {
		t.Fatalf("reply = %+v, want the decision", out[0].msg)
	}
}

func TestRestartedProposerOutbidsItself(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	s := New(consensus.StaticLeader(0), Config{Store: w})
	env := newFakeEnv(0, 3)
	s.Start(env)
	s.Propose("mine")
	s.Tick(timerDrive)
	first := s.cur
	if first == consensus.NoBallot {
		t.Fatal("no ballot opened")
	}
	w.Close()

	s2 := New(consensus.StaticLeader(0), Config{Store: openWAL(t, dir)})
	env2 := newFakeEnv(0, 3)
	s2.Start(env2)
	s2.Propose("mine")
	env2.now = env2.now.Add(maxRetryTimeout) // past any stall backoff
	s2.Tick(timerDrive)
	if s2.cur <= first {
		t.Fatalf("restarted ballot %v does not outbid pre-crash %v", s2.cur, first)
	}
}
