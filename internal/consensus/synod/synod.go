// Package synod implements the paper's leader-driven single-decree
// consensus: a Paxos-style synod protocol whose proposer role is gated by
// the co-located Omega module, so that once Omega stabilizes exactly one
// process drives ballots.
//
// With a majority of correct processes and reliable links, the protocol is
// safe under any asynchrony (ballot/quorum intersection — the classic synod
// argument) and live once Omega stabilizes on a correct leader. Its message
// cost is the paper's selling point: a stable leader decides in two
// round-trips — (n−1) PREPARE + (n−1) PROMISE + (n−1) ACCEPT + (n−1)
// ACCEPTED — plus an (n−1) DECIDE broadcast, all Θ(n), where the classic
// rotating-coordinator protocol (internal/consensus/ct) pays Θ(n²) per
// round through its per-round all-to-all phases and reliable decision
// broadcast. Experiment E6 regenerates that comparison.
package synod

import (
	"time"

	"repro/internal/consensus"
	"repro/internal/durable"
	"repro/internal/node"
	"repro/internal/sim"
)

// Message kind tags.
const (
	// KindPrepare tags phase-1a ballot announcements.
	KindPrepare = "PREPARE"
	// KindPromise tags phase-1b acknowledgements.
	KindPromise = "PROMISE"
	// KindNack tags ballot rejections.
	KindNack = "NACK"
	// KindAccept tags phase-2a value proposals.
	KindAccept = "ACCEPT"
	// KindAccepted tags phase-2b acknowledgements.
	KindAccepted = "ACCEPTED"
	// KindDecide tags decision announcements.
	KindDecide = "DECIDE"
	// KindLearn tags "please resend the decision" requests from
	// undecided processes to the current leader.
	KindLearn = "LEARN"
	// KindRequest tags proposal forwarding from non-leaders to the
	// leader.
	KindRequest = "SYNOD-REQ"
)

// RequestMsg forwards a non-leader's proposal to the believed leader.
type RequestMsg struct{ V consensus.Value }

// Kind implements node.Message.
func (RequestMsg) Kind() string { return KindRequest }

// PrepareMsg opens ballot B (phase 1a).
type PrepareMsg struct{ B consensus.Ballot }

// Kind implements node.Message.
func (PrepareMsg) Kind() string { return KindPrepare }

// PromiseMsg acknowledges ballot B and reports the acceptor's
// highest-accepted (ballot, value) pair (phase 1b).
type PromiseMsg struct {
	B    consensus.Ballot
	AccB consensus.Ballot
	AccV consensus.Value
}

// Kind implements node.Message.
func (PromiseMsg) Kind() string { return KindPromise }

// NackMsg rejects ballot B because the sender already promised Promised.
type NackMsg struct {
	B        consensus.Ballot
	Promised consensus.Ballot
}

// Kind implements node.Message.
func (NackMsg) Kind() string { return KindNack }

// AcceptMsg asks acceptors to accept value V at ballot B (phase 2a).
type AcceptMsg struct {
	B consensus.Ballot
	V consensus.Value
}

// Kind implements node.Message.
func (AcceptMsg) Kind() string { return KindAccept }

// AcceptedMsg acknowledges acceptance of ballot B (phase 2b).
type AcceptedMsg struct{ B consensus.Ballot }

// Kind implements node.Message.
func (AcceptedMsg) Kind() string { return KindAccepted }

// DecideMsg announces the decided value.
type DecideMsg struct{ V consensus.Value }

// Kind implements node.Message.
func (DecideMsg) Kind() string { return KindDecide }

// LearnMsg asks its receiver to resend the decision if it knows one.
type LearnMsg struct{}

// Kind implements node.Message.
func (LearnMsg) Kind() string { return KindLearn }

const timerDrive = "synod/drive"

// Config parameterizes the protocol. Zero values select defaults.
type Config struct {
	// DriveInterval is how often a potential leader re-evaluates whether
	// to (re)start a ballot (default 20ms).
	DriveInterval time.Duration
	// RetryTimeout is how long an in-flight ballot may stall before the
	// leader outbids itself (default 100ms).
	RetryTimeout time.Duration
	// Store persists the acceptor's promise and vote, the proposer's
	// ballot, and the decision, so a restarted process re-enters the
	// protocol bound by its pre-crash past. Nil selects durable.Nop.
	// Single-decree consensus uses instance number 0 for every record.
	Store durable.Store
}

func (c *Config) fill() {
	if c.DriveInterval <= 0 {
		c.DriveInterval = 20 * time.Millisecond
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 100 * time.Millisecond
	}
	if c.Store == nil {
		c.Store = durable.Nop
	}
}

// ballot phases.
const (
	phaseIdle = iota
	phasePrepare
	phaseAccept
)

// Node is the synod automaton for one process. Compose it with an Omega
// detector via node.Compose.
type Node struct {
	cfg   Config
	env   node.Env
	me    node.ID
	n     int
	omega consensus.Leadership
	rec   *consensus.Recorder

	proposal consensus.Value

	// Acceptor state.
	promised consensus.Ballot
	accB     consensus.Ballot
	accV     consensus.Value

	// Learner state.
	decided  bool
	decision consensus.Value

	// Proposer (leader) state.
	cur        consensus.Ballot
	curStarted sim.Time
	curTimeout time.Duration // exponential backoff on stalled ballots
	phase      int
	chosenV    consensus.Value
	promises   map[node.ID]PromiseMsg
	accepts    map[node.ID]bool
}

// maxRetryTimeout caps the ballot retry backoff.
const maxRetryTimeout = 5 * time.Second

var _ node.Automaton = (*Node)(nil)

// New returns a synod node steered by the given leadership oracle.
func New(omega consensus.Leadership, cfg Config) *Node {
	cfg.fill()
	return &Node{cfg: cfg, omega: omega, rec: consensus.NewRecorder()}
}

// Propose submits this process's input value. Calling it again, or after a
// decision, has no effect.
func (s *Node) Propose(v consensus.Value) {
	if s.proposal == consensus.NoValue {
		s.proposal = v
	}
}

// Decided returns the decision, if learned.
func (s *Node) Decided() (consensus.Value, bool) { return s.decision, s.decided }

// Recorder returns this process's decision log.
func (s *Node) Recorder() *consensus.Recorder { return s.rec }

// Start implements node.Automaton.
func (s *Node) Start(env node.Env) {
	s.env = env
	s.me = env.ID()
	s.n = env.N()
	if st := s.cfg.Store.State(); st != nil {
		s.restore(st)
	}
	env.SetTimer(timerDrive, s.cfg.DriveInterval)
}

// restore re-installs recovered acceptor, proposer, and learner state:
// the restarted process may never promise below its pre-crash promise,
// vote against its pre-crash vote, or reuse a pre-crash ballot.
func (s *Node) restore(st *durable.State) {
	s.promised = consensus.Ballot(st.Promised)
	s.cur = consensus.Ballot(st.Ballot) // Next() outbids it on the next drive
	for _, a := range st.Accepted {
		if a.Inst == 0 {
			s.accB, s.accV = consensus.Ballot(a.B), consensus.Value(a.V)
		}
	}
	for _, d := range st.Decided {
		if d.Inst == 0 {
			s.decided, s.decision = true, consensus.Value(d.V)
			s.rec.Record(consensus.Decision{Instance: 0, Value: s.decision, At: s.env.Now(), By: s.me})
		}
	}
}

// Tick implements node.Automaton.
func (s *Node) Tick(key string) {
	if key != timerDrive {
		return
	}
	if s.decided {
		return // decision learned: the drive loop retires
	}
	s.env.SetTimer(timerDrive, s.cfg.DriveInterval)
	leader := s.omega.Leader()
	if leader != s.me {
		if leader != node.None {
			// Nudge the leader for a decision we may have missed, and
			// forward our proposal so a leader without its own input
			// can still drive.
			s.env.Send(leader, LearnMsg{})
			if s.proposal != consensus.NoValue {
				s.env.Send(leader, RequestMsg{V: s.proposal})
			}
		}
		return
	}
	if s.proposal == consensus.NoValue && s.accV == consensus.NoValue {
		return // nothing to drive yet
	}
	if s.curTimeout == 0 {
		s.curTimeout = s.cfg.RetryTimeout
	}
	stalled := s.cur != consensus.NoBallot && s.env.Now().Sub(s.curStarted) >= s.curTimeout
	if s.cur == consensus.NoBallot || stalled {
		s.startBallot()
	}
}

// startBallot opens a fresh ballot above everything this process has seen.
func (s *Node) startBallot() {
	base := s.promised
	if s.cur > base {
		base = s.cur
	}
	s.cur = base.Next(s.me, s.n)
	s.curStarted = s.env.Now()
	// Back off exponentially: an abandoned ballot usually means the
	// retry window was shorter than the quorum round trip.
	if s.curTimeout == 0 {
		s.curTimeout = s.cfg.RetryTimeout
	} else if s.curTimeout < maxRetryTimeout {
		s.curTimeout *= 2
	}
	s.phase = phasePrepare
	s.promises = make(map[node.ID]PromiseMsg, s.n)
	s.accepts = nil
	// Self-prepare: adopt the ballot locally and promise to ourselves —
	// durably, before the PREPARE makes the ballot visible.
	s.promised = s.cur
	s.cfg.Store.Ballot(uint64(s.cur))
	s.cfg.Store.Promise(uint64(s.cur))
	s.promises[s.me] = PromiseMsg{B: s.cur, AccB: s.accB, AccV: s.accV}
	s.env.Logf("synod: ballot %v opened", s.cur)
	s.env.Broadcast(PrepareMsg{B: s.cur})
	s.maybeFinishPrepare()
}

// Deliver implements node.Automaton.
func (s *Node) Deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case PrepareMsg:
		s.onPrepare(from, msg)
	case PromiseMsg:
		s.onPromise(from, msg)
	case NackMsg:
		s.onNack(from, msg)
	case AcceptMsg:
		s.onAccept(from, msg)
	case AcceptedMsg:
		s.onAccepted(from, msg)
	case DecideMsg:
		s.decide(msg.V)
	case LearnMsg:
		if s.decided {
			s.env.Send(from, DecideMsg{V: s.decision})
		}
	case RequestMsg:
		s.Propose(msg.V)
	}
}

func (s *Node) onPrepare(from node.ID, m PrepareMsg) {
	if s.decided {
		s.env.Send(from, DecideMsg{V: s.decision})
		return
	}
	if m.B > s.promised {
		s.promised = m.B
		// Durable before visible: the promise binds even across kill -9.
		s.cfg.Store.Promise(uint64(m.B))
		s.env.Send(from, PromiseMsg{B: m.B, AccB: s.accB, AccV: s.accV})
	} else {
		s.env.Send(from, NackMsg{B: m.B, Promised: s.promised})
	}
}

func (s *Node) onPromise(from node.ID, m PromiseMsg) {
	if s.decided || s.phase != phasePrepare || m.B != s.cur {
		return
	}
	s.promises[from] = m
	s.maybeFinishPrepare()
}

func (s *Node) maybeFinishPrepare() {
	if s.phase != phasePrepare || len(s.promises) < consensus.Majority(s.n) {
		return
	}
	// Choose the value of the highest accepted ballot in the quorum, or
	// our own proposal if the quorum is unconstrained.
	var bestB consensus.Ballot
	value := consensus.NoValue
	for _, p := range s.promises {
		if p.AccB > bestB {
			bestB = p.AccB
			value = p.AccV
		}
	}
	if value == consensus.NoValue {
		value = s.proposal
	}
	if value == consensus.NoValue {
		// A leader with no input and an unconstrained quorum waits for
		// a proposal; the ballot stays open.
		return
	}
	s.phase = phaseAccept
	s.chosenV = value
	s.accepts = map[node.ID]bool{s.me: true}
	// Self-accept, durable before the broadcast makes it visible.
	s.accB = s.cur
	s.accV = value
	s.cfg.Store.Accept(0, uint64(s.cur), string(value))
	s.env.Broadcast(AcceptMsg{B: s.cur, V: value})
	s.maybeFinishAccept()
}

func (s *Node) onNack(from node.ID, m NackMsg) {
	if s.decided || m.B != s.cur || s.cur == consensus.NoBallot {
		return
	}
	if m.Promised > s.promised {
		s.promised = m.Promised
	}
	// Force a retry at the next drive tick: the ballot lost.
	s.phase = phaseIdle
	s.curStarted = s.curStarted.Add(-maxRetryTimeout)
}

func (s *Node) onAccept(from node.ID, m AcceptMsg) {
	if s.decided {
		s.env.Send(from, DecideMsg{V: s.decision})
		return
	}
	if m.B >= s.promised {
		s.promised = m.B
		s.accB = m.B
		s.accV = m.V
		// Durable before visible; the record also implies the promise.
		s.cfg.Store.Accept(0, uint64(m.B), string(m.V))
		s.env.Send(from, AcceptedMsg{B: m.B})
	} else {
		s.env.Send(from, NackMsg{B: m.B, Promised: s.promised})
	}
}

func (s *Node) onAccepted(from node.ID, m AcceptedMsg) {
	if s.decided || s.phase != phaseAccept || m.B != s.cur {
		return
	}
	s.accepts[from] = true
	s.maybeFinishAccept()
}

func (s *Node) maybeFinishAccept() {
	if s.phase != phaseAccept || len(s.accepts) < consensus.Majority(s.n) {
		return
	}
	v := s.chosenV
	s.decide(v)
	s.env.Broadcast(DecideMsg{V: v})
}

func (s *Node) decide(v consensus.Value) {
	if s.decided {
		return
	}
	s.decided = true
	s.decision = v
	s.phase = phaseIdle
	s.cfg.Store.Decide(0, string(v))
	s.rec.Record(consensus.Decision{Instance: 0, Value: v, At: s.env.Now(), By: s.me})
	s.env.Logf("synod: decided %q", string(v))
	s.env.StopTimer(timerDrive)
}
