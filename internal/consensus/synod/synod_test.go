package synod

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

// cluster bundles a world running Omega+synod on every process.
type cluster struct {
	world *node.World
	dets  []*core.Detector
	nodes []*Node
}

func newCluster(t *testing.T, n int, seed int64, link network.Profile) *cluster {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{world: w, dets: make([]*core.Detector, n), nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		c.dets[i] = core.New(core.WithEta(10 * ms))
		c.nodes[i] = New(c.dets[i], Config{})
		w.SetAutomaton(node.ID(i), node.Compose(c.dets[i], c.nodes[i]))
	}
	return c
}

func (c *cluster) proposeAll() map[int][]consensus.Value {
	proposed := map[int][]consensus.Value{0: nil}
	for i, s := range c.nodes {
		v := consensus.Value(fmt.Sprintf("v%d", i))
		s.Propose(v)
		proposed[0] = append(proposed[0], v)
	}
	return proposed
}

func (c *cluster) safety(proposed map[int][]consensus.Value) consensus.SafetyReport {
	recs := make([]*consensus.Recorder, len(c.nodes))
	for i, s := range c.nodes {
		recs[i] = s.Recorder()
	}
	return consensus.CheckSafety(consensus.SafetyInput{Recorders: recs, Proposed: proposed})
}

func TestAllDecideSameValue(t *testing.T) {
	c := newCluster(t, 5, 1, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.RunFor(2 * time.Second)
	var decision consensus.Value
	for i, s := range c.nodes {
		v, ok := s.Decided()
		if !ok {
			t.Fatalf("p%d undecided", i)
		}
		if decision == consensus.NoValue {
			decision = v
		} else if v != decision {
			t.Fatalf("p%d decided %q, others %q", i, v, decision)
		}
	}
	rep := c.safety(proposed)
	if !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestDecidesDespiteLeaderCrash(t *testing.T) {
	c := newCluster(t, 5, 2, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	// Crash the initial leader almost immediately — often mid-ballot.
	c.world.CrashAt(0, sim.At(25*ms))
	c.world.RunFor(5 * time.Second)
	for i := 1; i < 5; i++ {
		if _, ok := c.nodes[i].Decided(); !ok {
			t.Fatalf("p%d undecided after leader crash", i)
		}
	}
	rep := c.safety(proposed)
	if !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestMinorityCrashStillLive(t *testing.T) {
	c := newCluster(t, 5, 3, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.CrashAt(3, sim.At(10*ms))
	c.world.CrashAt(4, sim.At(15*ms))
	c.world.RunFor(5 * time.Second)
	for i := 0; i < 3; i++ {
		if _, ok := c.nodes[i].Decided(); !ok {
			t.Fatalf("p%d undecided with minority crashed", i)
		}
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestMajorityCrashLosesLivenessNotSafety(t *testing.T) {
	c := newCluster(t, 4, 4, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.CrashAt(1, sim.At(5*ms))
	c.world.CrashAt(2, sim.At(5*ms))
	c.world.CrashAt(3, sim.At(5*ms))
	c.world.RunFor(2 * time.Second)
	if _, ok := c.nodes[0].Decided(); ok {
		t.Fatal("decided without a correct majority")
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestSafetyUnderAdversarialDelaysManySeeds(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := newCluster(t, 5, seed, network.Reliable(ms, 80*ms))
		proposed := c.proposeAll()
		c.world.Start()
		// Crash up to two processes at pseudo-random times.
		c.world.CrashAt(node.ID(seed%5), sim.At(time.Duration(seed%13)*7*ms))
		c.world.CrashAt(node.ID((seed+2)%5), sim.At(time.Duration(seed%29)*5*ms))
		c.world.RunFor(15 * time.Second)
		rep := c.safety(proposed)
		if !rep.Holds() {
			t.Fatalf("seed %d: safety violated: %v", seed, rep.Violations)
		}
		// Three correct processes remain: liveness must hold too.
		for i := 0; i < 5; i++ {
			if c.world.Alive(node.ID(i)) {
				if _, ok := c.nodes[i].Decided(); !ok {
					t.Fatalf("seed %d: correct p%d undecided after 15s", seed, i)
				}
			}
		}
	}
}

func TestDecisionCostIsLinear(t *testing.T) {
	const n = 7
	c := newCluster(t, n, 6, network.Timely(2*ms))
	c.proposeAll()
	c.world.Start()
	c.world.RunFor(2 * time.Second)
	if _, ok := c.nodes[0].Decided(); !ok {
		t.Fatal("undecided")
	}
	// Count only consensus traffic (exclude Omega heartbeats). A stable
	// leader decides in prepare/promise/accept/accepted/decide plus a few
	// LEARN nudges: well below the Θ(n²) of a rotating-coordinator
	// protocol, which exceeds n² from the decide echo alone.
	synodKinds := []string{KindPrepare, KindPromise, KindNack, KindAccept, KindAccepted, KindDecide, KindLearn, KindRequest}
	var total uint64
	for _, k := range synodKinds {
		total += c.world.Stats.KindCount(k)
	}
	if total > uint64(8*(n-1)) {
		t.Fatalf("consensus messages = %d, want <= %d (Θ(n))", total, 8*(n-1))
	}
}

func TestProposeAfterStartStillDecides(t *testing.T) {
	c := newCluster(t, 3, 7, network.Timely(2*ms))
	c.world.Start()
	c.world.RunFor(200 * ms)
	// Nobody proposed yet: no decision possible.
	for i, s := range c.nodes {
		if _, ok := s.Decided(); ok {
			t.Fatalf("p%d decided without any proposal", i)
		}
	}
	c.nodes[2].Propose("late")
	c.world.RunFor(2 * time.Second)
	for i, s := range c.nodes {
		v, ok := s.Decided()
		if !ok {
			t.Fatalf("p%d undecided", i)
		}
		if v != "late" {
			t.Fatalf("p%d decided %q", i, v)
		}
	}
}

func TestDecidedProcessAnswersLearn(t *testing.T) {
	c := newCluster(t, 3, 8, network.Timely(2*ms))
	c.proposeAll()
	c.world.Start()
	c.world.RunFor(2 * time.Second)
	v0, ok := c.nodes[0].Decided()
	if !ok {
		t.Fatal("undecided")
	}
	// A LEARN delivered directly must be answered with DECIDE.
	before := c.world.Stats.KindCount(KindDecide)
	c.nodes[0].Deliver(1, LearnMsg{})
	if got := c.world.Stats.KindCount(KindDecide); got != before+1 {
		t.Fatalf("decide count %d → %d, want one more", before, got)
	}
	_ = v0
}

func TestPromiseQuorumAdoptsHighestAccepted(t *testing.T) {
	// Unit-level: feed promises directly. p0 leads a 3-process system.
	det := consensus.StaticLeader(0)
	s := New(det, Config{})
	env := newFakeEnv(0, 3)
	s.Start(env)
	s.Propose("mine")
	s.Tick(timerDrive) // opens ballot b1 (self-promise included)
	if s.phase != phasePrepare {
		t.Fatalf("phase = %d, want prepare", s.phase)
	}
	// A promise reporting an accepted value at a higher ballot than ours
	// must be adopted instead of our own proposal.
	s.Deliver(1, PromiseMsg{B: s.cur, AccB: consensus.MakeBallot(0, 2, 3), AccV: "theirs"})
	if s.phase != phaseAccept {
		t.Fatalf("phase = %d, want accept after quorum", s.phase)
	}
	if s.chosenV != "theirs" {
		t.Fatalf("chosenV = %q, want adopted value", s.chosenV)
	}
}

func TestNackForcesHigherBallot(t *testing.T) {
	det := consensus.StaticLeader(0)
	s := New(det, Config{})
	env := newFakeEnv(0, 3)
	s.Start(env)
	s.Propose("mine")
	s.Tick(timerDrive)
	first := s.cur
	s.Deliver(1, NackMsg{B: first, Promised: consensus.MakeBallot(5, 1, 3)})
	s.Tick(timerDrive) // retry fires immediately because the nack back-dated the ballot
	if s.cur <= consensus.MakeBallot(5, 1, 3) {
		t.Fatalf("retry ballot %v does not outbid the nack's %v", s.cur, consensus.MakeBallot(5, 1, 3))
	}
	if s.cur.Owner(3) != 0 {
		t.Fatalf("retry ballot owner = %v", s.cur.Owner(3))
	}
}

func TestAcceptorRejectsStaleBallot(t *testing.T) {
	s := New(consensus.StaticLeader(1), Config{})
	env := newFakeEnv(2, 3)
	s.Start(env)
	high := consensus.MakeBallot(4, 1, 3)
	s.Deliver(1, PrepareMsg{B: high})
	env.drain()
	low := consensus.MakeBallot(1, 0, 3)
	s.Deliver(0, PrepareMsg{B: low})
	out := env.drain()
	if len(out) != 1 {
		t.Fatalf("replies = %v", out)
	}
	nack, ok := out[0].msg.(NackMsg)
	if !ok || nack.Promised != high {
		t.Fatalf("reply = %+v, want NACK with promised %v", out[0].msg, high)
	}
	s.Deliver(0, AcceptMsg{B: low, V: "x"})
	out = env.drain()
	if _, ok := out[0].msg.(NackMsg); !ok {
		t.Fatalf("accept at stale ballot answered with %T", out[0].msg)
	}
}
