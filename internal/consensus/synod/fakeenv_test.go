package synod

import (
	"fmt"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

// sent records one outbound message from the fake environment.
type sent struct {
	to  node.ID
	msg node.Message
}

// fakeEnv is a hand-driven node.Env for unit-testing protocol logic.
type fakeEnv struct {
	id     node.ID
	n      int
	now    sim.Time
	outbox []sent
	timers map[string]time.Duration
}

var _ node.Env = (*fakeEnv)(nil)

func newFakeEnv(id node.ID, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, timers: make(map[string]time.Duration)}
}

func (e *fakeEnv) ID() node.ID   { return e.id }
func (e *fakeEnv) N() int        { return e.n }
func (e *fakeEnv) Now() sim.Time { return e.now }

func (e *fakeEnv) Send(to node.ID, m node.Message) {
	e.outbox = append(e.outbox, sent{to: to, msg: m})
}

func (e *fakeEnv) Broadcast(m node.Message) {
	for to := 0; to < e.n; to++ {
		if node.ID(to) != e.id {
			e.Send(node.ID(to), m)
		}
	}
}

func (e *fakeEnv) SetTimer(key string, d time.Duration) { e.timers[key] = d }
func (e *fakeEnv) StopTimer(key string)                 { delete(e.timers, key) }
func (e *fakeEnv) Logf(format string, args ...any)      { _ = fmt.Sprintf(format, args...) }

func (e *fakeEnv) drain() []sent {
	out := e.outbox
	e.outbox = nil
	return out
}
