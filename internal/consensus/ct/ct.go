// Package ct implements the classic rotating-coordinator consensus in the
// style of Chandra–Toueg's ◊S protocol, used as the paper's message-cost
// baseline (experiment E6).
//
// Computation proceeds in asynchronous rounds; the coordinator of round r
// is process r mod n. Each round has four phases: every process sends its
// timestamped estimate to the coordinator; the coordinator picks the
// estimate with the highest timestamp among a majority and broadcasts it
// as the round's proposal; each process either adopts and ACKs the
// proposal or times out and NACKs; a coordinator collecting a majority of
// ACKs decides and disseminates the decision by reliable broadcast (every
// process re-broadcasts the first DECIDE it sees). Safety is the classic
// locking argument — a decided value has a majority of timestamps ≥ its
// round, and every later proposal is chosen as the max-timestamp estimate
// of a majority, which intersects that quorum. Liveness needs a majority
// of correct processes plus eventually reliable round coordination, which
// the adaptive round timeout provides once links stabilize.
//
// Message cost per round is Θ(n) to the coordinator, Θ(n) from it, Θ(n)
// replies, and the decision costs Θ(n²) through the reliable broadcast —
// and unlike the synod protocol the round structure keeps **every**
// process sending in **every** round, so repeated consensus never becomes
// communication-efficient. That contrast is the paper's point.
package ct

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
)

// Message kind tags.
const (
	// KindEstimate tags phase-1 estimates sent to the coordinator.
	KindEstimate = "CT-EST"
	// KindProposal tags the coordinator's phase-2 broadcast.
	KindProposal = "CT-PROP"
	// KindAck tags phase-3 adoptions.
	KindAck = "CT-ACK"
	// KindNack tags phase-3 suspicions.
	KindNack = "CT-NACK"
	// KindDecide tags the reliable decision broadcast.
	KindDecide = "CT-DECIDE"
)

// EstimateMsg carries a process's current estimate to a round coordinator.
type EstimateMsg struct {
	R   int
	Est consensus.Value
	TS  int
}

// Kind implements node.Message.
func (EstimateMsg) Kind() string { return KindEstimate }

// ProposalMsg is the coordinator's proposal for round R.
type ProposalMsg struct {
	R int
	V consensus.Value
}

// Kind implements node.Message.
func (ProposalMsg) Kind() string { return KindProposal }

// AckMsg acknowledges adoption of round R's proposal.
type AckMsg struct{ R int }

// Kind implements node.Message.
func (AckMsg) Kind() string { return KindAck }

// NackMsg reports a timeout on round R's coordinator.
type NackMsg struct{ R int }

// Kind implements node.Message.
func (NackMsg) Kind() string { return KindNack }

// DecideMsg announces the decided value (reliably re-broadcast).
type DecideMsg struct{ V consensus.Value }

// Kind implements node.Message.
func (DecideMsg) Kind() string { return KindDecide }

// Timer keys.
const (
	timerRound = "ct/round"
	timerBoot  = "ct/boot"
)

// Config parameterizes the protocol. Zero values select defaults.
type Config struct {
	// RoundTimeout is the initial wait for a coordinator proposal
	// (default 30ms).
	RoundTimeout time.Duration
	// Increment grows the wait after each timeout (default 10ms).
	Increment time.Duration
}

func (c *Config) fill() {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Millisecond
	}
	if c.Increment <= 0 {
		c.Increment = 10 * time.Millisecond
	}
}

// coordState is the coordinator-side bookkeeping for one round.
type coordState struct {
	estimates map[node.ID]EstimateMsg
	proposed  bool
	proposal  consensus.Value
	acks      map[node.ID]bool
	nacks     map[node.ID]bool
	closed    bool
}

// Node is the rotating-coordinator consensus automaton for one process.
type Node struct {
	cfg Config
	env node.Env
	me  node.ID
	n   int
	rec *consensus.Recorder

	est     consensus.Value
	ts      int
	round   int
	replied bool // replied (ack/nack) in the current round
	timeout time.Duration

	decided  bool
	decision consensus.Value

	coord map[int]*coordState
}

var _ node.Automaton = (*Node)(nil)

// New returns a rotating-coordinator node.
func New(cfg Config) *Node {
	cfg.fill()
	return &Node{cfg: cfg, rec: consensus.NewRecorder(), coord: make(map[int]*coordState)}
}

// Propose submits this process's input. It must be called before the world
// starts (the protocol enters round 0 with the proposal as estimate).
func (c *Node) Propose(v consensus.Value) {
	if c.est == consensus.NoValue {
		c.est = v
	}
}

// Decided returns the decision, if learned.
func (c *Node) Decided() (consensus.Value, bool) { return c.decision, c.decided }

// Recorder returns this process's decision log.
func (c *Node) Recorder() *consensus.Recorder { return c.rec }

// Start implements node.Automaton.
func (c *Node) Start(env node.Env) {
	c.env = env
	c.me = env.ID()
	c.n = env.N()
	c.round = -1
	c.timeout = c.cfg.RoundTimeout
	if c.est == consensus.NoValue {
		// No input yet: poll until Propose is called.
		env.SetTimer(timerBoot, c.cfg.RoundTimeout)
		return
	}
	c.enterRound(0)
}

// Tick implements node.Automaton.
func (c *Node) Tick(key string) {
	switch key {
	case timerBoot:
		if c.decided {
			return
		}
		if c.est == consensus.NoValue {
			c.env.SetTimer(timerBoot, c.cfg.RoundTimeout)
			return
		}
		if c.round < 0 {
			c.enterRound(0)
		}
	case timerRound:
		if c.decided || c.replied {
			return
		}
		// Suspect the coordinator: NACK and move on. Growing the wait
		// keeps false suspicions finite after stabilization.
		c.timeout += c.cfg.Increment
		c.reply(false)
	}
}

func (c *Node) coordinator(r int) node.ID { return node.ID(r % c.n) }

// enterRound moves to round r and sends the phase-1 estimate.
func (c *Node) enterRound(r int) {
	c.round = r
	c.replied = false
	c.env.SetTimer(timerRound, c.timeout)
	co := c.coordinator(r)
	est := EstimateMsg{R: r, Est: c.est, TS: c.ts}
	if co == c.me {
		c.onEstimate(c.me, est)
	} else {
		c.env.Send(co, est)
	}
}

// reply sends this round's ACK/NACK to the coordinator and advances.
func (c *Node) reply(ack bool) {
	r := c.round
	c.replied = true
	c.env.StopTimer(timerRound)
	co := c.coordinator(r)
	if co == c.me {
		if ack {
			c.onReply(c.me, r, true)
		} else {
			c.onReply(c.me, r, false)
		}
	} else {
		if ack {
			c.env.Send(co, AckMsg{R: r})
		} else {
			c.env.Send(co, NackMsg{R: r})
		}
	}
	if !c.decided {
		c.enterRound(r + 1)
	}
}

// Deliver implements node.Automaton.
func (c *Node) Deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case EstimateMsg:
		c.onEstimate(from, msg)
	case ProposalMsg:
		c.onProposal(msg)
	case AckMsg:
		c.onReply(from, msg.R, true)
	case NackMsg:
		c.onReply(from, msg.R, false)
	case DecideMsg:
		c.onDecide(msg.V)
	}
}

func (c *Node) state(r int) *coordState {
	st, ok := c.coord[r]
	if !ok {
		st = &coordState{
			estimates: make(map[node.ID]EstimateMsg),
			acks:      make(map[node.ID]bool),
			nacks:     make(map[node.ID]bool),
		}
		c.coord[r] = st
	}
	return st
}

func (c *Node) onEstimate(from node.ID, m EstimateMsg) {
	if c.decided {
		c.env.Send(from, DecideMsg{V: c.decision})
		return
	}
	if c.coordinator(m.R) != c.me {
		return
	}
	st := c.state(m.R)
	if st.closed || st.proposed {
		return
	}
	st.estimates[from] = m
	if len(st.estimates) < consensus.Majority(c.n) {
		return
	}
	// Pick the estimate with the highest timestamp; ties carry the same
	// value (a timestamp names the single proposal of that round).
	best := EstimateMsg{TS: -1}
	for _, e := range st.estimates {
		if e.TS > best.TS {
			best = e
		}
	}
	st.proposed = true
	st.proposal = best.Est
	prop := ProposalMsg{R: m.R, V: best.Est}
	c.env.Broadcast(prop)
	c.onProposal(prop) // the coordinator participates in its own round
}

func (c *Node) onProposal(m ProposalMsg) {
	if c.decided {
		return
	}
	if m.R < c.round || (m.R == c.round && c.replied) {
		return // stale: we already gave up on that round
	}
	if m.R > c.round {
		// We lag behind; jump to the proposal's round so our ACK counts.
		c.timeout += c.cfg.Increment
		c.round = m.R
		c.replied = false
	}
	c.est = m.V
	c.ts = m.R
	c.reply(true)
}

func (c *Node) onReply(from node.ID, r int, ack bool) {
	if c.decided {
		if !ack {
			return
		}
		c.env.Send(from, DecideMsg{V: c.decision})
		return
	}
	if c.coordinator(r) != c.me {
		return
	}
	st := c.state(r)
	if st.closed || !st.proposed {
		return
	}
	if ack {
		st.acks[from] = true
	} else {
		st.nacks[from] = true
	}
	if len(st.acks) >= consensus.Majority(c.n) {
		st.closed = true
		c.onDecide(st.proposal)
		return
	}
	if len(st.acks)+len(st.nacks) >= consensus.Majority(c.n) && len(st.nacks) > 0 {
		// The round failed; participants have timed out or will. Close
		// the book on it.
		st.closed = true
	}
}

// onDecide implements the reliable broadcast: the first DECIDE a process
// learns is re-broadcast to everyone before being recorded.
func (c *Node) onDecide(v consensus.Value) {
	if c.decided {
		return
	}
	c.decided = true
	c.decision = v
	c.env.StopTimer(timerRound)
	c.env.StopTimer(timerBoot)
	c.env.Broadcast(DecideMsg{V: v})
	c.rec.Record(consensus.Decision{Instance: 0, Value: v, At: c.env.Now(), By: c.me})
	c.env.Logf("ct: decided %q in round %d", string(v), c.round)
}

// String aids debugging.
func (c *Node) String() string {
	return fmt.Sprintf("ct{p%d round=%d est=%q ts=%d decided=%v}", c.me, c.round, c.est, c.ts, c.decided)
}
