package ct

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const ms = time.Millisecond

type cluster struct {
	world *node.World
	nodes []*Node
}

func newCluster(t *testing.T, n int, seed int64, link network.Profile) *cluster {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{world: w, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		c.nodes[i] = New(Config{})
		w.SetAutomaton(node.ID(i), c.nodes[i])
	}
	return c
}

func (c *cluster) proposeAll() map[int][]consensus.Value {
	proposed := map[int][]consensus.Value{0: nil}
	for i, s := range c.nodes {
		v := consensus.Value(fmt.Sprintf("v%d", i))
		s.Propose(v)
		proposed[0] = append(proposed[0], v)
	}
	return proposed
}

func (c *cluster) safety(proposed map[int][]consensus.Value) consensus.SafetyReport {
	recs := make([]*consensus.Recorder, len(c.nodes))
	for i, s := range c.nodes {
		recs[i] = s.Recorder()
	}
	return consensus.CheckSafety(consensus.SafetyInput{Recorders: recs, Proposed: proposed})
}

func TestAllDecideSameValue(t *testing.T) {
	c := newCluster(t, 5, 1, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.RunFor(3 * time.Second)
	var decision consensus.Value
	for i, s := range c.nodes {
		v, ok := s.Decided()
		if !ok {
			t.Fatalf("p%d undecided: %v", i, s)
		}
		if decision == consensus.NoValue {
			decision = v
		} else if v != decision {
			t.Fatalf("p%d decided %q, others %q", i, v, decision)
		}
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestDecidesWithCrashedFirstCoordinator(t *testing.T) {
	c := newCluster(t, 5, 2, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.CrashAt(0, sim.At(5*ms)) // round-0 coordinator dies early
	c.world.RunFor(5 * time.Second)
	for i := 1; i < 5; i++ {
		if _, ok := c.nodes[i].Decided(); !ok {
			t.Fatalf("p%d undecided with crashed coordinator", i)
		}
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestMinorityCrashStillLive(t *testing.T) {
	c := newCluster(t, 5, 3, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	c.world.CrashAt(1, sim.At(12*ms))
	c.world.CrashAt(3, sim.At(30*ms))
	c.world.RunFor(10 * time.Second)
	for _, i := range []int{0, 2, 4} {
		if _, ok := c.nodes[i].Decided(); !ok {
			t.Fatalf("p%d undecided", i)
		}
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestMajorityCrashLosesLivenessNotSafety(t *testing.T) {
	c := newCluster(t, 4, 4, network.Timely(2*ms))
	proposed := c.proposeAll()
	c.world.Start()
	// Crash at t=0, before any replies can flow: with only p0 alive no
	// quorum can ever form.
	c.world.CrashAt(1, 0)
	c.world.CrashAt(2, 0)
	c.world.CrashAt(3, 0)
	c.world.RunFor(2 * time.Second)
	if _, ok := c.nodes[0].Decided(); ok {
		t.Fatal("decided without a correct majority")
	}
	if rep := c.safety(proposed); !rep.Holds() {
		t.Fatalf("safety: %v", rep.Violations)
	}
}

func TestSafetyUnderAdversarialDelaysManySeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := newCluster(t, 5, seed, network.Reliable(ms, 60*ms))
		proposed := c.proposeAll()
		c.world.Start()
		c.world.CrashAt(node.ID(seed%5), sim.At(time.Duration(seed%11)*9*ms))
		c.world.RunFor(30 * time.Second)
		rep := c.safety(proposed)
		if !rep.Holds() {
			t.Fatalf("seed %d: safety violated: %v", seed, rep.Violations)
		}
		for i := 0; i < 5; i++ {
			if c.world.Alive(node.ID(i)) {
				if _, ok := c.nodes[i].Decided(); !ok {
					t.Fatalf("seed %d: correct p%d undecided after 30s", seed, i)
				}
			}
		}
	}
}

func TestDecisionCostIsQuadratic(t *testing.T) {
	const n = 7
	c := newCluster(t, n, 6, network.Timely(2*ms))
	c.proposeAll()
	c.world.Start()
	c.world.RunFor(3 * time.Second)
	if _, ok := c.nodes[0].Decided(); !ok {
		t.Fatal("undecided")
	}
	// The reliable decide broadcast alone costs n(n-1): each process
	// re-broadcasts the first DECIDE it learns.
	if got := c.world.Stats.KindCount(KindDecide); got < uint64(n*(n-1)) {
		t.Fatalf("DECIDE messages = %d, want >= n(n-1) = %d (reliable broadcast)", got, n*(n-1))
	}
}

func TestLatecomerLearnsViaEstimateReply(t *testing.T) {
	c := newCluster(t, 3, 7, network.Timely(2*ms))
	for i := 0; i < 2; i++ {
		c.nodes[i].Propose(consensus.Value(fmt.Sprintf("v%d", i)))
	}
	c.world.Start()
	c.world.RunFor(time.Second)
	// p2 proposes only now; everyone else has decided. Its estimates to
	// decided coordinators are answered with DECIDE.
	c.nodes[2].Propose("late")
	c.world.RunFor(2 * time.Second)
	if _, ok := c.nodes[2].Decided(); !ok {
		t.Fatal("latecomer never learned the decision")
	}
	recs := []*consensus.Recorder{c.nodes[0].Recorder(), c.nodes[1].Recorder(), c.nodes[2].Recorder()}
	rep := consensus.CheckSafety(consensus.SafetyInput{Recorders: recs})
	if !rep.Agreement {
		t.Fatalf("disagreement: %v", rep.Violations)
	}
}

func TestTimestampLockingPreservedAcrossRounds(t *testing.T) {
	// Directed unit check of the locking rule: a coordinator must pick
	// the estimate with the highest timestamp.
	n := New(Config{})
	env := newFakeEnv(0, 3) // p0 coordinates round 0
	n.Propose("own")
	n.Start(env)
	env.drain()
	n.Deliver(1, EstimateMsg{R: 0, Est: "locked", TS: 0})
	// Majority of 3 is 2: p0's own estimate (ts 0, "own") and p1's. The
	// tie at ts 0 picks whichever arrives... both ts 0; but a genuinely
	// higher timestamp must always win:
	n2 := New(Config{})
	env2 := newFakeEnv(1, 3)
	n2.Propose("own2")
	n2.Start(env2)
	env2.drain()
	// p1 coordinates round 1. Feed it two estimates, one carrying a
	// locked value from round 0.
	n2.round = 1 // unusual, but onEstimate only checks coordinator(m.R)
	n2.Deliver(0, EstimateMsg{R: 1, Est: "stale", TS: 0})
	n2.Deliver(2, EstimateMsg{R: 1, Est: "locked", TS: 1})
	var prop *ProposalMsg
	for _, s := range env2.drain() {
		if p, ok := s.msg.(ProposalMsg); ok {
			prop = &p
			break
		}
	}
	if prop == nil {
		t.Fatal("coordinator did not propose after majority estimates")
	}
	if prop.V != "locked" {
		t.Fatalf("proposal = %q, want the max-timestamp estimate", prop.V)
	}
}
