package ct

import "repro/internal/obs"

// Kind ids are interned once at package init so the consensus send path
// (node.KindIDer fast path) never hashes a kind string.
var (
	kindEstimateID = obs.Intern(KindEstimate)
	kindProposalID = obs.Intern(KindProposal)
	kindAckID      = obs.Intern(KindAck)
	kindNackID     = obs.Intern(KindNack)
	kindDecideID   = obs.Intern(KindDecide)
)

// KindID implements node.KindIDer.
func (EstimateMsg) KindID() obs.Kind { return kindEstimateID }

// KindID implements node.KindIDer.
func (ProposalMsg) KindID() obs.Kind { return kindProposalID }

// KindID implements node.KindIDer.
func (AckMsg) KindID() obs.Kind { return kindAckID }

// KindID implements node.KindIDer.
func (NackMsg) KindID() obs.Kind { return kindNackID }

// KindID implements node.KindIDer.
func (DecideMsg) KindID() obs.Kind { return kindDecideID }
