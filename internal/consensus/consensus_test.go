package consensus

import (
	"testing"
	"testing/quick"

	"repro/internal/node"
)

func TestBallotArithmetic(t *testing.T) {
	const n = 5
	b := MakeBallot(0, 2, n)
	if b != 3 {
		t.Fatalf("MakeBallot(0,2,5) = %d, want 3", b)
	}
	if b.Owner(n) != 2 {
		t.Fatalf("Owner = %v", b.Owner(n))
	}
	if b.Round(n) != 0 {
		t.Fatalf("Round = %d", b.Round(n))
	}
	b2 := MakeBallot(3, 4, n)
	if b2.Owner(n) != 4 || b2.Round(n) != 3 {
		t.Fatalf("round 3 owner 4: got owner %v round %d", b2.Owner(n), b2.Round(n))
	}
	if NoBallot.Owner(n) != node.None || NoBallot.Round(n) != -1 {
		t.Fatal("NoBallot owner/round")
	}
	if NoBallot.String() != "⊥" || b.String() == "" {
		t.Fatal("String rendering")
	}
}

func TestBallotNextProperties(t *testing.T) {
	property := func(rawB uint64, rawID uint8, rawN uint8) bool {
		n := int(rawN%16) + 2
		id := node.ID(int(rawID) % n)
		b := Ballot(rawB % 1_000_000)
		next := b.Next(id, n)
		if next <= b {
			return false
		}
		if next.Owner(n) != id {
			return false
		}
		// Minimality: the ballot one round earlier with the same owner
		// must not also beat b.
		if r := next.Round(n); r > 0 {
			if prev := MakeBallot(r-1, id, n); prev > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBallotOwnersNeverCollide(t *testing.T) {
	const n = 7
	seen := make(map[Ballot]node.ID)
	for round := 0; round < 20; round++ {
		for id := 0; id < n; id++ {
			b := MakeBallot(round, node.ID(id), n)
			if other, ok := seen[b]; ok {
				t.Fatalf("ballot %v owned by both %v and %v", b, other, id)
			}
			seen[b] = node.ID(id)
			if b.Owner(n) != node.ID(id) {
				t.Fatalf("Owner(%v) = %v, want %v", b, b.Owner(n), id)
			}
		}
	}
}

func TestMajority(t *testing.T) {
	cases := map[int]int{2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4}
	for n, want := range cases {
		if got := Majority(n); got != want {
			t.Fatalf("Majority(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record(Decision{Instance: 0, Value: "a", By: 1})
	r.Record(Decision{Instance: 0, Value: "b", By: 1}) // ignored duplicate
	r.Record(Decision{Instance: 2, Value: "c", By: 1})
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	d, ok := r.Get(0)
	if !ok || d.Value != "a" {
		t.Fatalf("Get(0) = %+v,%v", d, ok)
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("Get(1) found a decision")
	}
	all := r.All()
	if len(all) != 2 || all[0].Value != "a" || all[1].Value != "c" {
		t.Fatalf("All = %v", all)
	}
}

func TestRecorderKeysPerCommand(t *testing.T) {
	r := NewRecorder()
	// One batched instance deciding three commands: each slot records
	// independently, duplicates per slot are still ignored.
	r.Record(Decision{Instance: 0, Cmd: 0, Value: "a"})
	r.Record(Decision{Instance: 0, Cmd: 1, Value: "b"})
	r.Record(Decision{Instance: 0, Cmd: 2, Value: "c"})
	r.Record(Decision{Instance: 0, Cmd: 1, Value: "z"}) // ignored duplicate
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
	if d, ok := r.GetCmd(0, 1); !ok || d.Value != "b" {
		t.Fatalf("GetCmd(0,1) = %+v,%v", d, ok)
	}
	if d, ok := r.Get(0); !ok || d.Value != "a" {
		t.Fatalf("Get(0) = %+v,%v — want the cmd-0 decision", d, ok)
	}
	if _, ok := r.GetCmd(0, 3); ok {
		t.Fatal("GetCmd(0,3) found a decision")
	}
}

func TestCheckSafetyPerCommandAgreement(t *testing.T) {
	// Same batch envelope, but the processes disagree on the command in
	// slot 1 — per-instance checking would miss this.
	r0, r1 := NewRecorder(), NewRecorder()
	r0.Record(Decision{Instance: 0, Cmd: 0, Value: "a"})
	r0.Record(Decision{Instance: 0, Cmd: 1, Value: "b"})
	r1.Record(Decision{Instance: 0, Cmd: 0, Value: "a"})
	r1.Record(Decision{Instance: 0, Cmd: 1, Value: "x"})
	rep := CheckSafety(SafetyInput{Recorders: []*Recorder{r0, r1}})
	if rep.Agreement {
		t.Fatal("per-command disagreement not caught")
	}
	if rep.Instances != 1 || rep.TotalDecisions != 4 {
		t.Fatalf("Instances=%d TotalDecisions=%d", rep.Instances, rep.TotalDecisions)
	}
}

func TestCheckSafetyNoopIsAlwaysValid(t *testing.T) {
	// Gap fillers are proposed by the protocol, not a client; validity
	// must not flag them.
	r0 := NewRecorder()
	r0.Record(Decision{Instance: 0, Value: Noop})
	r0.Record(Decision{Instance: 1, Value: "a"})
	rep := CheckSafety(SafetyInput{
		Recorders: []*Recorder{r0},
		Proposed:  map[int][]Value{1: {"a"}},
	})
	if !rep.Holds() {
		t.Fatalf("noop flagged: %v", rep.Violations)
	}
}

func TestCheckSafetyAgreementViolation(t *testing.T) {
	r0, r1 := NewRecorder(), NewRecorder()
	r0.Record(Decision{Instance: 0, Value: "x"})
	r1.Record(Decision{Instance: 0, Value: "y"})
	rep := CheckSafety(SafetyInput{Recorders: []*Recorder{r0, r1}})
	if rep.Agreement || rep.Holds() {
		t.Fatal("agreement violation not caught")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation message")
	}
}

func TestCheckSafetyValidity(t *testing.T) {
	r0 := NewRecorder()
	r0.Record(Decision{Instance: 0, Value: "ghost"})
	rep := CheckSafety(SafetyInput{
		Recorders: []*Recorder{r0},
		Proposed:  map[int][]Value{0: {"a", "b"}},
	})
	if rep.Validity {
		t.Fatal("validity violation not caught")
	}
	ok := CheckSafety(SafetyInput{
		Recorders: []*Recorder{r0},
		Proposed:  map[int][]Value{0: {"ghost"}},
	})
	if !ok.Holds() {
		t.Fatalf("valid run rejected: %v", ok.Violations)
	}
}

func TestCheckSafetyCountsInstances(t *testing.T) {
	r0, r1 := NewRecorder(), NewRecorder()
	for i := 0; i < 5; i++ {
		r0.Record(Decision{Instance: i, Value: Value(rune('a' + i))})
		if i%2 == 0 {
			r1.Record(Decision{Instance: i, Value: Value(rune('a' + i))})
		}
	}
	rep := CheckSafety(SafetyInput{Recorders: []*Recorder{r0, r1, nil}})
	if !rep.Holds() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Instances != 5 || rep.TotalDecisions != 8 {
		t.Fatalf("Instances=%d TotalDecisions=%d", rep.Instances, rep.TotalDecisions)
	}
}

func TestStaticLeader(t *testing.T) {
	var l Leadership = StaticLeader(3)
	if l.Leader() != 3 {
		t.Fatal("StaticLeader")
	}
}
