package group

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

// Config parameterizes an Engine.
type Config struct {
	// Groups is the shard count G (required, >= 1).
	Groups int
	// Build constructs group g's automaton — typically an Omega detector
	// composed with an rsm.Node (and, for durable configurations, a
	// per-group durable.Store opened on the group's own WAL directory).
	// It runs once per group inside New, in group order, on the caller's
	// goroutine; the automaton it returns lives in the group's logical id
	// space and is driven only by that group's loop goroutine.
	Build func(g int) node.Automaton
}

// Engine is the sharded write engine: one node.Automaton that runs G
// independent group automatons, each on its own event-loop goroutine with
// its own mailbox, all multiplexed over the process's shared transport
// links via Msg wrappers.
//
// Delivery is two-tier. The transport's node loop can hand messages over
// through Deliver like any automaton; transports that support it instead
// call DeliverConcurrent from their receive goroutines (see
// transport.ConcurrentDeliverer), demuxing frames straight into the
// per-group mailboxes without serializing through the single station
// loop.
type Engine struct {
	cfg     Config
	workers []*worker

	env     node.Env
	n       int
	started atomic.Bool
	halted  atomic.Bool
	wg      sync.WaitGroup
}

var _ node.Automaton = (*Engine)(nil)

// New builds an engine; Build runs immediately for every group so the
// caller can capture references to the per-group automatons it creates.
func New(cfg Config) *Engine {
	if cfg.Groups < 1 {
		panic(fmt.Sprintf("group: Groups = %d, need at least 1", cfg.Groups))
	}
	if cfg.Build == nil {
		panic("group: Config.Build is required")
	}
	e := &Engine{cfg: cfg, workers: make([]*worker, cfg.Groups)}
	for g := range e.workers {
		e.workers[g] = &worker{
			eng:    e,
			g:      g,
			auto:   cfg.Build(g),
			mbox:   newGMailbox(),
			timers: make(map[string]uint64),
			done:   make(chan struct{}),
		}
	}
	return e
}

// Groups returns the shard count.
func (e *Engine) Groups() int { return e.cfg.Groups }

// Start implements node.Automaton: it records the shared Env and spawns
// one loop goroutine per group. Each group automaton's Start runs on its
// own loop, seeing a single-threaded Env exactly as an unsharded process
// would.
func (e *Engine) Start(env node.Env) {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	e.env = env
	e.n = env.N()
	e.wg.Add(len(e.workers))
	for _, w := range e.workers {
		go w.run(&e.wg)
	}
}

// Deliver implements node.Automaton: the station-loop delivery path.
// Non-group messages are ignored — a sharded process speaks only Msg.
func (e *Engine) Deliver(from node.ID, m node.Message) {
	e.route(from, m)
}

// DeliverConcurrent demuxes a wrapped message straight into its group's
// mailbox. Safe from any goroutine; reports whether the message was
// consumed (it was a Msg — valid or not) so transports can fall back to
// the node loop for anything else. This is the transport fast path: TCP
// read loops and mem-transport delivery timers push group frames here
// without waking the station loop.
func (e *Engine) DeliverConcurrent(from node.ID, m node.Message) bool {
	return e.route(from, m)
}

func (e *Engine) route(from node.ID, m node.Message) bool {
	gm, ok := m.(Msg)
	if !ok {
		return false
	}
	if gm.Group < 0 || gm.Group >= len(e.workers) || gm.Inner == nil {
		return true // consumed: a misrouted tag is dropped, never crashes
	}
	// The physical sender id is translated to the group's logical space
	// at dispatch time, on the group loop: pushes may race boot (the
	// transport fast path can deliver before Start records the cluster
	// size), but the loop goroutines only exist after Start.
	e.workers[gm.Group].mbox.push(gevent{from: from, msg: gm.Inner})
	return true
}

// Tick implements node.Automaton. The engine arms no station timers —
// each group loop runs its own — so every key is ignored.
func (e *Engine) Tick(string) {}

// Automaton returns group g's automaton, as Build returned it.
func (e *Engine) Automaton(g int) node.Automaton { return e.workers[g].auto }

// Halt stops every group loop and waits for them to exit. It is the
// in-process analogue of the last instant of a killed process: no more
// sends, no more timer callbacks, no more durable-store appends. Callers
// rebuilding a replica from its WAL directories (transport.Cluster
// restart paths) must Halt the dead incarnation first so its loops cannot
// race the new incarnation's recovery — kill -9 semantics are preserved
// by abandoning the stores un-Closed (no final flush), merely quiescing
// the goroutines that write to them. Idempotent; safe from any goroutine.
func (e *Engine) Halt() {
	if !e.halted.CompareAndSwap(false, true) {
		return
	}
	for _, w := range e.workers {
		w.mbox.close()
	}
	if e.started.Load() {
		e.wg.Wait()
	}
}

// gevent is one unit of work for a group loop: a delivery (from is the
// physical sender id, translated at dispatch) or a timer firing.
type gevent struct {
	from     node.ID
	msg      node.Message
	timerKey string
	timerGen uint64
}

// worker runs one group: a single goroutine consumes the mailbox and
// invokes the group automaton, so the node.Env single-threading contract
// holds per group. worker itself is the automaton's Env, translating ids
// and wrapping sends.
type worker struct {
	eng  *Engine
	g    int
	auto node.Automaton
	mbox *gmailbox
	done chan struct{}

	// timers maps key → latest generation, exactly as the transport
	// station does; accessed only from the group loop.
	timers map[string]uint64
}

var _ node.Env = (*worker)(nil)

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(w.done)
	w.auto.Start(w)
	var batch []gevent
	for range w.mbox.C {
		for {
			batch = w.mbox.drain(batch[:0])
			if len(batch) == 0 {
				break
			}
			for i := range batch {
				w.dispatch(batch[i])
				batch[i] = gevent{} // do not retain messages until the next batch
			}
		}
		if w.mbox.isClosed() {
			return
		}
	}
}

func (w *worker) dispatch(e gevent) {
	if e.timerKey != "" {
		if w.timers[e.timerKey] != e.timerGen {
			return // superseded or stopped
		}
		delete(w.timers, e.timerKey)
		w.auto.Tick(e.timerKey)
		return
	}
	w.auto.Deliver(Logical(e.from, w.g, w.eng.n), e.msg)
}

// --- node.Env (logical id space) ----------------------------------------

// ID implements node.Env: this process's logical id within the group.
func (w *worker) ID() node.ID { return Logical(w.eng.env.ID(), w.g, w.eng.n) }

// N implements node.Env.
func (w *worker) N() int { return w.eng.n }

// Now implements node.Env, reading the shared transport clock (the
// stations' Now is a wall-clock difference, safe from any goroutine).
func (w *worker) Now() sim.Time { return w.eng.env.Now() }

// Send implements node.Env: the logical address is rotated to its
// physical process and the message is wrapped with the group tag. The
// shared Env's send path carries it over the same per-peer link every
// other group uses.
func (w *worker) Send(to node.ID, m node.Message) {
	if w.eng.halted.Load() {
		return
	}
	w.eng.env.Send(Physical(to, w.g, w.eng.n), Msg{Group: w.g, Inner: m})
}

// Broadcast implements node.Env, in ascending logical id order.
func (w *worker) Broadcast(m node.Message) {
	self := w.ID()
	for to := 0; to < w.eng.n; to++ {
		if node.ID(to) != self {
			w.Send(node.ID(to), m)
		}
	}
}

// SetTimer implements node.Env. Must be called from the group loop (the
// automaton's callbacks), which is the node.Env contract; the expiry
// callback pushes into this group's mailbox, never the station's.
func (w *worker) SetTimer(key string, d time.Duration) {
	if w.eng.halted.Load() {
		return
	}
	gen := w.timers[key] + 1
	w.timers[key] = gen
	time.AfterFunc(d, func() {
		w.mbox.push(gevent{timerKey: key, timerGen: gen})
	})
}

// StopTimer implements node.Env.
func (w *worker) StopTimer(key string) {
	if _, ok := w.timers[key]; ok {
		w.timers[key]++
	}
}

// Logf implements node.Env, prefixing the group id.
func (w *worker) Logf(format string, args ...any) {
	w.eng.env.Logf("g%d: %s", w.g, fmt.Sprintf(format, args...))
}
