// Package group runs G independent replicated-log state machines in one
// process — the sharded write engine. Every command belongs to exactly one
// group (shard), each group runs its own Omega election, its own stable
// ballot, its own pipeline and its own (optional) WAL directory, and the
// G event loops run on separate goroutines, so decided-write throughput
// scales with cores instead of saturating one single-threaded node loop.
//
// Crucially, the groups multiplex over the *same* physical links. Engine
// wraps every outbound protocol message in a Msg carrying a varint GroupID
// routing tag and hands it to the shared transport Env, so a 4-group
// cluster still dials one TCP connection per directed peer pair and the
// per-link senders writev-coalesce frames from all groups into shared
// batches — more frames per flush, not more sockets. The paper's
// steady-state link count (n−1 after stabilization, per group all on the
// same n−1 physical connections) is preserved.
//
// Leader spread: inside group g, process identities are rotated —
// logical id ℓ lives on physical process (ℓ+g) mod n — so the Omega
// detectors (which break ties toward the lowest id) elect a *different*
// physical leader per group: group g stabilizes on physical process
// g mod n. Writes therefore spread across processes as well as cores.
//
// Engine implements node.Automaton but is live-transport-only: its group
// loops call Env.Send, Env.Now and Env.Logf from their own goroutines,
// which internal/transport's stations support (their send paths are
// goroutine-safe) and the deterministic simulator does not.
package group

import (
	"repro/internal/node"
	"repro/internal/obs"
)

// KindGroup tags the group-routing wrapper message.
const KindGroup = "GROUP"

var kindGroupID = obs.Intern(KindGroup)

// Msg wraps one inner protocol message with its group routing tag — the
// only message kind a sharded process sends or understands. On the wire
// it is the group-aware envelope kind: a varint GroupID followed by the
// inner message's own encoding (see internal/wire).
type Msg struct {
	// Group is the shard this message belongs to, 0..Groups-1.
	Group int
	// Inner is the wrapped protocol message, addressed in the group's
	// logical id space on send and translated back on delivery.
	Inner node.Message
}

// Kind implements node.Message.
func (Msg) Kind() string { return KindGroup }

// KindID implements node.KindIDer.
func (Msg) KindID() obs.Kind { return kindGroupID }

// TraceContext implements node.Traced by delegating to the inner
// message: a trace wrapper rides *inside* the group envelope (the demux
// must see its own tag first), so the transports reach through one
// level to find the context. Untraced inner messages report zero.
func (m Msg) TraceContext() (trace, span uint64) {
	if t, ok := m.Inner.(node.Traced); ok {
		return t.TraceContext()
	}
	return 0, 0
}

// Wrap tags m with group g.
func Wrap(g int, m node.Message) Msg { return Msg{Group: g, Inner: m} }

// Physical maps a group-g logical process id to the physical process that
// hosts it: (logical + g) mod n. Group 0 is the identity; higher groups
// rotate, so each group's lowest logical id — the Omega tie-break winner —
// lands on a different physical process.
func Physical(logical node.ID, g, n int) node.ID {
	return node.ID((int(logical) + g) % n)
}

// Logical is Physical's inverse: the group-g logical id of a physical
// process.
func Logical(phys node.ID, g, n int) node.ID {
	return node.ID(((int(phys)-g)%n + n) % n)
}
