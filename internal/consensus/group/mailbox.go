package group

import "sync"

// gmailbox is an unbounded FIFO ring buffer with a wake-up channel — the
// per-group twin of the transport station's mailbox. Producers never
// block (transport receive goroutines, timer callbacks and the station
// loop all push here); the group loop waits on C and empties the ring
// with drain, one lock acquisition per batch. Drained slots are zeroed so
// the mailbox never retains references to consumed events.
type gmailbox struct {
	mu     sync.Mutex
	ring   []gevent // oldest at head, newest at (head+count-1) mod len
	head   int
	count  int
	closed bool

	// C receives a token whenever the mailbox may have items; capacity 1
	// suffices for the single consumer.
	C chan struct{}
}

func newGMailbox() *gmailbox {
	return &gmailbox{C: make(chan struct{}, 1)}
}

// push appends an event and wakes the consumer. Events pushed after close
// are dropped — the group died with its process incarnation.
func (m *gmailbox) push(e gevent) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.count == len(m.ring) {
		m.grow()
	}
	m.ring[(m.head+m.count)%len(m.ring)] = e
	m.count++
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// grow doubles the ring, unwrapping it so head returns to zero.
func (m *gmailbox) grow() {
	newCap := 2 * len(m.ring)
	if newCap == 0 {
		newCap = 16
	}
	next := make([]gevent, newCap)
	for i := 0; i < m.count; i++ {
		next[i] = m.ring[(m.head+i)%len(m.ring)]
	}
	m.ring = next
	m.head = 0
}

// drain appends all pending events to dst in FIFO order and empties the
// mailbox, zeroing the vacated slots.
func (m *gmailbox) drain(dst []gevent) []gevent {
	m.mu.Lock()
	for i := 0; i < m.count; i++ {
		idx := (m.head + i) % len(m.ring)
		dst = append(dst, m.ring[idx])
		m.ring[idx] = gevent{}
	}
	m.head = 0
	m.count = 0
	m.mu.Unlock()
	return dst
}

// close marks the mailbox closed and wakes the consumer so it can exit.
func (m *gmailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.ring = nil
	m.head = 0
	m.count = 0
	m.mu.Unlock()
	select {
	case m.C <- struct{}{}:
	default:
	}
}

// isClosed reports whether close was called.
func (m *gmailbox) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
