package group

import "repro/internal/consensus"

// Router hashes command keys to groups: the client-side half of sharding.
// The hash is FNV-1a over the key bytes, reduced mod G — deterministic
// across processes and runs, so every ingress point routes the same key
// to the same group without coordination.
type Router struct {
	groups int
}

// NewRouter returns a router over g groups (g >= 1).
func NewRouter(g int) *Router {
	if g < 1 {
		g = 1
	}
	return &Router{groups: g}
}

// Groups returns the shard count.
func (r *Router) Groups() int { return r.groups }

// FNV-1a constants (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Group returns the shard owning key.
func (r *Router) Group(key string) int {
	var h uint64 = fnvOffset
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int(h % uint64(r.groups))
}

// Route fans a command batch out per group: out[g] holds the commands
// whose keys hash to g, in input order. A batch ingress point routes one
// client envelope into per-group BatchRequests with one pass.
func (r *Router) Route(cmds []consensus.Value) [][]consensus.Value {
	out := make([][]consensus.Value, r.groups)
	for _, c := range cmds {
		g := r.Group(string(c))
		out[g] = append(out[g], c)
	}
	return out
}
