package group

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/node"
	"repro/internal/sim"
)

// TestRotationRoundTrip proves Physical and Logical are inverses on every
// (id, group, n) triple in a realistic range, and that each group's logical
// id 0 — the Omega tie-break winner — lands on a distinct physical process
// when G <= n.
func TestRotationRoundTrip(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for g := 0; g < 2*n; g++ {
			for p := 0; p < n; p++ {
				l := Logical(node.ID(p), g, n)
				if l < 0 || int(l) >= n {
					t.Fatalf("Logical(%d,%d,%d) = %d out of range", p, g, n, l)
				}
				if back := Physical(l, g, n); back != node.ID(p) {
					t.Fatalf("Physical(Logical(%d,%d,%d)) = %d", p, g, n, back)
				}
			}
			if lead := Physical(0, g, n); int(lead) != g%n {
				t.Fatalf("group %d leader at physical %d, want %d", g, lead, g%n)
			}
		}
	}
}

// TestRouterMatchesFNV pins the router's hash to the standard library's
// FNV-1a: the routing function is part of the client contract (every
// ingress must route a key identically), so it must never drift.
func TestRouterMatchesFNV(t *testing.T) {
	r := NewRouter(4)
	for _, key := range []string{"", "a", "key-17", "x=y", "the quick brown fox"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		want := int(h.Sum64() % 4)
		if got := r.Group(key); got != want {
			t.Fatalf("Group(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestRouterSpread checks the hash actually spreads realistic keys: over
// 4k distinct keys and 4 groups, no group holds more than twice its fair
// share. (Not a statistical property test — a regression tripwire for
// accidentally hashing, say, only the first byte.)
func TestRouterSpread(t *testing.T) {
	r := NewRouter(4)
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		counts[r.Group(fmt.Sprintf("key-%d=value", i))]++
	}
	for g, c := range counts {
		if c > 2048 || c < 256 {
			t.Fatalf("group %d holds %d of 4096 keys: %v", g, c, counts)
		}
	}
}

// TestRouterRoute checks the batch fan-out: per-group slices, input order
// preserved, every command present exactly once.
func TestRouterRoute(t *testing.T) {
	r := NewRouter(3)
	var cmds []consensus.Value
	for i := 0; i < 64; i++ {
		cmds = append(cmds, consensus.Value(fmt.Sprintf("k%d", i)))
	}
	out := r.Route(cmds)
	if len(out) != 3 {
		t.Fatalf("Route returned %d slices, want 3", len(out))
	}
	total := 0
	for g, part := range out {
		prev := -1
		for _, c := range part {
			if got := r.Group(string(c)); got != g {
				t.Fatalf("command %q routed to slice %d but hashes to %d", c, g, got)
			}
			var idx int
			if _, err := fmt.Sscanf(string(c), "k%d", &idx); err != nil {
				t.Fatal(err)
			}
			if idx <= prev {
				t.Fatalf("group %d out of input order: %v", g, part)
			}
			prev = idx
		}
		total += len(part)
	}
	if total != len(cmds) {
		t.Fatalf("Route kept %d of %d commands", total, len(cmds))
	}
}

// --- engine tests --------------------------------------------------------

// recAuto records deliveries and echoes each one back with Send, so tests
// can observe both the inbound logical translation and the outbound
// wrapping.
type recAuto struct {
	mu     sync.Mutex
	env    node.Env
	donech chan struct{}
	got    []delivery
}

type delivery struct {
	from node.ID
	self node.ID
	msg  node.Message
}

func (a *recAuto) Start(env node.Env) { a.env = env }
func (a *recAuto) Deliver(from node.ID, m node.Message) {
	a.mu.Lock()
	a.got = append(a.got, delivery{from: from, self: a.env.ID(), msg: m})
	a.mu.Unlock()
	a.env.Send(from, m) // echo back: exercises the wrapping send path
	select {
	case a.donech <- struct{}{}:
	default:
	}
}
func (a *recAuto) Tick(string) {}

func (a *recAuto) deliveries() []delivery {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]delivery(nil), a.got...)
}

// fakeEnv is the shared transport Env an Engine runs over in these tests:
// it records wrapped sends from any goroutine.
type fakeEnv struct {
	id node.ID
	n  int

	mu    sync.Mutex
	sends []sendRec
}

type sendRec struct {
	to  node.ID
	msg node.Message
}

func (f *fakeEnv) ID() node.ID { return f.id }
func (f *fakeEnv) N() int      { return f.n }
func (f *fakeEnv) Now() sim.Time {
	return sim.Time(time.Now().UnixNano())
}
func (f *fakeEnv) Send(to node.ID, m node.Message) {
	f.mu.Lock()
	f.sends = append(f.sends, sendRec{to: to, msg: m})
	f.mu.Unlock()
}
func (f *fakeEnv) Broadcast(m node.Message) {
	for i := 0; i < f.n; i++ {
		if node.ID(i) != f.id {
			f.Send(node.ID(i), m)
		}
	}
}
func (f *fakeEnv) SetTimer(string, time.Duration) {}
func (f *fakeEnv) StopTimer(string)               {}
func (f *fakeEnv) Logf(string, ...any)            {}

func (f *fakeEnv) sent() []sendRec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]sendRec(nil), f.sends...)
}

type ping struct{ tag string }

func (ping) Kind() string { return "PING-TEST" }

// TestEngineDemux drives wrapped messages through both delivery paths and
// checks each lands on its own group's automaton with ids translated into
// the group's logical space, and that the echo leaves the engine wrapped
// and re-rotated back to the physical space.
func TestEngineDemux(t *testing.T) {
	const n, groups = 3, 2
	autos := make([]*recAuto, groups)
	eng := New(Config{
		Groups: groups,
		Build: func(g int) node.Automaton {
			autos[g] = &recAuto{donech: make(chan struct{}, 16)}
			return autos[g]
		},
	})
	defer eng.Halt()
	env := &fakeEnv{id: 1, n: n} // we are physical process 1
	eng.Start(env)

	// Physical sender 2 → group 0: logical sender 2, logical self 1.
	if !eng.DeliverConcurrent(2, Wrap(0, ping{tag: "a"})) {
		t.Fatal("group message not consumed")
	}
	// Physical sender 2 → group 1: logical sender 1, logical self 0.
	eng.Deliver(2, Wrap(1, ping{tag: "b"}))

	for g := 0; g < groups; g++ {
		select {
		case <-autos[g].donech:
		case <-time.After(2 * time.Second):
			t.Fatalf("group %d never saw its delivery", g)
		}
	}

	d0 := autos[0].deliveries()
	if len(d0) != 1 || d0[0].from != 2 || d0[0].self != 1 || d0[0].msg.(ping).tag != "a" {
		t.Fatalf("group 0 deliveries = %+v", d0)
	}
	d1 := autos[1].deliveries()
	if len(d1) != 1 || d1[0].from != 1 || d1[0].self != 0 || d1[0].msg.(ping).tag != "b" {
		t.Fatalf("group 1 deliveries = %+v", d1)
	}

	// Each automaton echoed to its logical sender; the engine must have
	// wrapped and rotated both back to physical process 2.
	sends := env.sent()
	if len(sends) != 2 {
		t.Fatalf("engine sent %d messages, want 2: %+v", len(sends), sends)
	}
	for _, s := range sends {
		gm, ok := s.msg.(Msg)
		if !ok {
			t.Fatalf("outbound message not wrapped: %T", s.msg)
		}
		if s.to != 2 {
			t.Fatalf("group %d echo went to physical %d, want 2", gm.Group, s.to)
		}
	}
}

// TestEngineDropsMisrouted checks malformed wrappers are consumed without
// crashing or reaching any group: bad group ids, nil inner, and that a
// non-group message is NOT consumed (the transport falls back to the
// station loop).
func TestEngineDropsMisrouted(t *testing.T) {
	autos := make([]*recAuto, 2)
	eng := New(Config{Groups: 2, Build: func(g int) node.Automaton {
		autos[g] = &recAuto{donech: make(chan struct{}, 1)}
		return autos[g]
	}})
	defer eng.Halt()
	eng.Start(&fakeEnv{id: 0, n: 3})

	if !eng.DeliverConcurrent(1, Wrap(-1, ping{})) {
		t.Fatal("negative group id not consumed")
	}
	if !eng.DeliverConcurrent(1, Wrap(2, ping{})) {
		t.Fatal("out-of-range group id not consumed")
	}
	if !eng.DeliverConcurrent(1, Msg{Group: 0}) {
		t.Fatal("nil inner not consumed")
	}
	if eng.DeliverConcurrent(1, ping{}) {
		t.Fatal("unwrapped message consumed by the group engine")
	}
	time.Sleep(50 * time.Millisecond)
	for g, a := range autos {
		if d := a.deliveries(); len(d) != 0 {
			t.Fatalf("group %d saw misrouted deliveries: %+v", g, d)
		}
	}
}

// TestEngineTimers checks per-group timers fire on the group's own loop and
// that StopTimer invalidates a pending expiry.
func TestEngineTimers(t *testing.T) {
	fired := make(chan string, 4)
	eng := New(Config{Groups: 2, Build: func(g int) node.Automaton {
		return &tickAuto{g: g, fired: fired}
	}})
	defer eng.Halt()
	eng.Start(&fakeEnv{id: 0, n: 3})
	select {
	case key := <-fired:
		if key != "g1-keep" {
			t.Fatalf("first firing = %q, want g1-keep (g0's was stopped)", key)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	select {
	case key := <-fired:
		t.Fatalf("stopped timer fired: %q", key)
	case <-time.After(100 * time.Millisecond):
	}
}

// tickAuto arms one timer per group at Start; group 0 immediately stops
// its own.
type tickAuto struct {
	g     int
	fired chan string
}

func (a *tickAuto) Start(env node.Env) {
	if a.g == 0 {
		env.SetTimer("g0-stop", 20*time.Millisecond)
		env.StopTimer("g0-stop")
		return
	}
	env.SetTimer("g1-keep", 20*time.Millisecond)
}
func (a *tickAuto) Deliver(node.ID, node.Message) {}
func (a *tickAuto) Tick(key string) {
	a.fired <- "g" + fmt.Sprint(a.g) + "-" + key[3:]
}

// TestEngineHalt checks Halt quiesces every loop, is idempotent, and that
// post-Halt deliveries and sends are dropped.
func TestEngineHalt(t *testing.T) {
	var a *recAuto
	eng := New(Config{Groups: 1, Build: func(int) node.Automaton {
		a = &recAuto{donech: make(chan struct{}, 1)}
		return a
	}})
	env := &fakeEnv{id: 0, n: 2}
	eng.Start(env)
	eng.DeliverConcurrent(1, Wrap(0, ping{tag: "pre"}))
	<-a.donech
	eng.Halt()
	eng.Halt() // idempotent
	eng.DeliverConcurrent(1, Wrap(0, ping{tag: "post"}))
	time.Sleep(50 * time.Millisecond)
	if d := a.deliveries(); len(d) != 1 {
		t.Fatalf("post-Halt delivery dispatched: %+v", d)
	}
}

// TestEngineHaltBeforeStart: halting an engine that never started must not
// hang (the loops it would wait for were never spawned).
func TestEngineHaltBeforeStart(t *testing.T) {
	eng := New(Config{Groups: 2, Build: func(int) node.Automaton {
		return &recAuto{donech: make(chan struct{}, 1)}
	}})
	done := make(chan struct{})
	go func() { eng.Halt(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Halt before Start hung")
	}
}
