package detector

import (
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/sim"
)

func at(ms int) sim.Time { return sim.At(time.Duration(ms) * time.Millisecond) }

func TestHistoryEmpty(t *testing.T) {
	h := NewHistory()
	if h.Current() != node.None {
		t.Fatalf("Current = %v, want None", h.Current())
	}
	if h.NumChanges() != 0 {
		t.Fatal("NumChanges != 0")
	}
	if at0, l := h.StableSince(); at0 != 0 || l != node.None {
		t.Fatalf("StableSince = %v,%v", at0, l)
	}
	if h.LeaderAt(at(100)) != node.None {
		t.Fatal("LeaderAt on empty history")
	}
}

func TestHistoryDeduplicatesConsecutive(t *testing.T) {
	h := NewHistory()
	h.Record(at(1), 0)
	h.Record(at(2), 0) // same leader: no new entry
	h.Record(at(3), 1)
	h.Record(at(4), 0)
	if got := h.NumChanges(); got != 3 {
		t.Fatalf("NumChanges = %d, want 3", got)
	}
	if h.Current() != 0 {
		t.Fatalf("Current = %v", h.Current())
	}
}

func TestHistoryLeaderAt(t *testing.T) {
	h := NewHistory()
	h.Record(at(10), 2)
	h.Record(at(20), 1)
	h.Record(at(30), 0)
	cases := []struct {
		t    sim.Time
		want node.ID
	}{
		{at(5), node.None},
		{at(10), 2},
		{at(15), 2},
		{at(20), 1},
		{at(25), 1},
		{at(31), 0},
		{at(1000), 0},
	}
	for _, tc := range cases {
		if got := h.LeaderAt(tc.t); got != tc.want {
			t.Fatalf("LeaderAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestHistoryStableSince(t *testing.T) {
	h := NewHistory()
	h.Record(at(10), 2)
	h.Record(at(25), 1)
	atT, l := h.StableSince()
	if atT != at(25) || l != 1 {
		t.Fatalf("StableSince = %v,%v", atT, l)
	}
}

func TestHistoryChangesIsCopy(t *testing.T) {
	h := NewHistory()
	h.Record(at(10), 2)
	cs := h.Changes()
	cs[0].Leader = 9
	if h.Changes()[0].Leader != 2 {
		t.Fatal("Changes returned aliased storage")
	}
}
