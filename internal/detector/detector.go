// Package detector defines the Omega failure-detector abstraction shared by
// the paper's core algorithm (internal/core) and the baseline
// implementations (internal/detector/alltoall, internal/detector/source).
//
// Omega, introduced by Chandra, Hadzilacos and Toueg, is the weakest failure
// detector for consensus: each process continuously outputs a single
// process it trusts, and there is a time after which all correct processes
// forever output the same correct process. The reproduced paper asks how
// cheaply (in messages) and under how little link synchrony Omega can be
// implemented.
package detector

import (
	"sync"

	"repro/internal/node"
	"repro/internal/sim"
)

// Omega is an eventual leader election module running as a protocol
// automaton. Leader returns the process currently trusted.
type Omega interface {
	node.Automaton
	// Leader returns the process this module currently trusts.
	Leader() node.ID
	// History returns the recorded sequence of leader changes.
	History() *History
}

// Change is one leader-output transition.
type Change struct {
	At     sim.Time
	Leader node.ID
}

// History records the evolution of a process's Omega output. It is safe
// for concurrent use so live transports can observe it from other
// goroutines.
type History struct {
	mu      sync.Mutex
	changes []Change
	notify  []func(t sim.Time, leader node.ID)
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// SetNotify installs a hook invoked after every recorded transition (the
// telemetry layer's feed for election tracking), replacing any hooks
// already installed. The hook runs on the recording goroutine, outside
// the history's lock; it must not block and must be safe for concurrent
// use if several histories share it.
func (h *History) SetNotify(fn func(t sim.Time, leader node.ID)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.notify = h.notify[:0]
	if fn != nil {
		h.notify = append(h.notify, fn)
	}
}

// AddNotify appends a transition hook without disturbing those already
// installed — so the tracing layer can watch elections alongside
// telemetry. Same contract as SetNotify.
func (h *History) AddNotify(fn func(t sim.Time, leader node.ID)) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.notify = append(h.notify, fn)
}

// Record appends a change if the leader differs from the current output.
func (h *History) Record(t sim.Time, leader node.ID) {
	h.mu.Lock()
	if n := len(h.changes); n > 0 && h.changes[n-1].Leader == leader {
		h.mu.Unlock()
		return
	}
	h.changes = append(h.changes, Change{At: t, Leader: leader})
	notify := h.notify[:len(h.notify):len(h.notify)]
	h.mu.Unlock()
	for _, fn := range notify {
		fn(t, leader)
	}
}

// Current returns the present output, or node.None before the first record.
func (h *History) Current() node.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.changes) == 0 {
		return node.None
	}
	return h.changes[len(h.changes)-1].Leader
}

// Changes returns a copy of all transitions.
func (h *History) Changes() []Change {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Change, len(h.changes))
	copy(out, h.changes)
	return out
}

// NumChanges returns how many transitions occurred.
func (h *History) NumChanges() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.changes)
}

// LeaderAt returns the output in force at instant t, or node.None if t
// precedes the first record.
func (h *History) LeaderAt(t sim.Time) node.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	leader := node.None
	for _, c := range h.changes {
		if c.At > t {
			break
		}
		leader = c.Leader
	}
	return leader
}

// StableSince returns the instant of the last transition and the output it
// installed. Before any record it returns (0, node.None).
func (h *History) StableSince() (sim.Time, node.ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.changes) == 0 {
		return 0, node.None
	}
	last := h.changes[len(h.changes)-1]
	return last.At, last.Leader
}
