package source

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
)

const (
	ms  = time.Millisecond
	eta = 10 * ms
)

func buildWorld(t *testing.T, n int, seed int64, link network.Profile, gst sim.Time) (*node.World, []*Detector) {
	t.Helper()
	w, err := node.NewWorld(node.WorldConfig{N: n, Seed: seed, GST: gst, DefaultLink: link})
	if err != nil {
		t.Fatal(err)
	}
	ds := make([]*Detector, n)
	for i := range ds {
		ds[i] = New(Config{Eta: eta})
		w.SetAutomaton(node.ID(i), ds[i])
	}
	return w, ds
}

func assertAgreement(t *testing.T, w *node.World, ds []*Detector) node.ID {
	t.Helper()
	leader := node.None
	for i, d := range ds {
		if !w.Alive(node.ID(i)) {
			continue
		}
		if leader == node.None {
			leader = d.Leader()
		} else if d.Leader() != leader {
			t.Fatalf("disagreement: p%d trusts p%v, others trust p%v", i, d.Leader(), leader)
		}
	}
	if !w.Alive(leader) {
		t.Fatalf("agreed leader p%v is crashed", leader)
	}
	return leader
}

func TestConvergesWithTimelyLinks(t *testing.T) {
	w, ds := buildWorld(t, 5, 1, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	if got := assertAgreement(t, w, ds); got != 0 {
		t.Fatalf("leader = p%v, want p0", got)
	}
}

func TestLeaderCrashPromotesNext(t *testing.T) {
	w, ds := buildWorld(t, 5, 2, network.Timely(2*ms), 0)
	w.Start()
	w.CrashAt(0, sim.At(200*ms))
	w.RunFor(2 * time.Second)
	if got := assertAgreement(t, w, ds); got != 1 {
		t.Fatalf("leader = p%v, want p1", got)
	}
}

func TestSurvivesFairLossyWithSource(t *testing.T) {
	// The paper's weak-assumption regime: all links fair-lossy except the
	// ◊-source's output links. The gossiped-counter detector must still
	// converge where the plain all-to-all one flaps (see the alltoall
	// package test).
	const n, src = 4, 2
	w, ds := buildWorld(t, n, 3, network.FairLossy(ms, 30*ms, 0.5), 0)
	if err := w.Fabric.SetOutgoing(src, network.Timely(2*ms)); err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.RunFor(60 * time.Second)
	leader := assertAgreement(t, w, ds)
	if !w.Alive(leader) {
		t.Fatalf("leader p%v crashed", leader)
	}
	// Stability: no change in the final 20 seconds at any process.
	for i, d := range ds {
		if at, _ := d.History().StableSince(); at > sim.At(40*time.Second) {
			t.Fatalf("p%d still flapping at %v", i, at)
		}
	}
}

func TestNotCommunicationEfficient(t *testing.T) {
	w, _ := buildWorld(t, 5, 4, network.Timely(2*ms), 0)
	w.Start()
	w.RunFor(time.Second)
	senders := w.Stats.SendersSince(sim.At(900 * ms))
	if len(senders) != 5 {
		t.Fatalf("steady-state senders = %v, want all 5", senders)
	}
}

func TestCountersGossipToMax(t *testing.T) {
	w, ds := buildWorld(t, 3, 5, network.Timely(2*ms), 0)
	w.Start()
	w.CrashAt(2, sim.At(50*ms))
	w.RunFor(2 * time.Second)
	// Everyone times out on the crashed p2 repeatedly; gossip must keep
	// the surviving processes' views of counter[2] close (within the
	// in-flight window) and strictly positive.
	c0, c1 := ds[0].Counter(2), ds[1].Counter(2)
	if c0 == 0 || c1 == 0 {
		t.Fatalf("counters for crashed process = %d,%d; want positive", c0, c1)
	}
	diff := int64(c0) - int64(c1)
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Fatalf("gossiped counters diverged: %d vs %d", c0, c1)
	}
}

func TestMergeIsMonotoneIdempotentCommutative(t *testing.T) {
	// Property test on the counter-merge lattice the correctness argument
	// leans on: max-merge never decreases entries, is idempotent, and is
	// commutative.
	merge := func(a, b []uint64) []uint64 {
		out := make([]uint64, len(a))
		copy(out, a)
		for i := range b {
			if i < len(out) && b[i] > out[i] {
				out[i] = b[i]
			}
		}
		return out
	}
	property := func(a, b []uint64) bool {
		if len(a) < len(b) {
			a, b = b, a
		}
		b = append([]uint64(nil), b...)
		for len(b) < len(a) {
			b = append(b, 0)
		}
		ab := merge(a, b)
		ba := merge(b, a)
		for i := range ab {
			if ab[i] != ba[i] { // commutative
				return false
			}
			if ab[i] < a[i] || ab[i] < b[i] { // monotone
				return false
			}
		}
		again := merge(ab, b)
		for i := range again {
			if again[i] != ab[i] { // idempotent
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAliveMsgCopiesCounters(t *testing.T) {
	counters := []uint64{1, 2, 3}
	m := NewAliveMsg(counters)
	counters[0] = 99
	if m.Counters[0] != 1 {
		t.Fatal("AliveMsg aliased the caller's slice")
	}
}

func TestMalformedVectorIgnored(t *testing.T) {
	w, ds := buildWorld(t, 3, 6, network.Timely(ms), 0)
	w.Start()
	w.RunFor(50 * ms)
	before := ds[1].Counter(0)
	ds[1].Deliver(0, AliveMsg{Counters: []uint64{9, 9}}) // wrong length for n=3
	if ds[1].Counter(0) != before {
		t.Fatal("malformed vector merged")
	}
	ds[1].Deliver(0, strangeMsg{})
	if ds[1].Counter(0) != before {
		t.Fatal("unknown message merged")
	}
}

type strangeMsg struct{}

func (strangeMsg) Kind() string { return "STRANGE" }

func TestConfigDefaults(t *testing.T) {
	d := New(Config{})
	if d.cfg.Eta != 10*ms || d.cfg.BaseTimeout != 30*ms || d.cfg.Increment != 10*ms {
		t.Fatalf("defaults = %+v", d.cfg)
	}
}
