// Package source implements the gossiped-accusation-counter Omega of the
// PODC 2003 companion paper ("On implementing Ω with weak reliability and
// synchrony assumptions"), used here as the weak-assumption baseline.
//
// Every alive process broadcasts, every η, an ALIVE message carrying its
// whole accusation-counter vector; counters merge by component-wise max.
// Each process monitors every other with an adaptive timeout and bumps the
// counter of a process that times out. The leader is argmin (counter, id).
//
// Compared with internal/core, this algorithm tolerates much weaker links —
// fair-lossy everywhere, as long as one correct process is an eventually
// timely source (its counter then stabilizes while every faulty or
// partitioned process's counter grows without bound, and continuous gossip
// equalizes stabilized entries) — but it is maximally expensive: all alive
// processes broadcast forever, Θ(n²) messages per η (experiments E1, E8).
package source

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/node"
	"repro/internal/obs"
)

// KindAlive tags the counter-carrying heartbeat.
const KindAlive = "ALIVE-V"

// kindAliveID is interned once so the per-η broadcast never hashes a string.
var kindAliveID = obs.Intern(KindAlive)

// AliveMsg is the periodic heartbeat carrying the sender's accusation
// counter vector. The slice is copied at construction and must not be
// mutated afterwards.
type AliveMsg struct {
	Counters []uint64
}

// Kind implements node.Message.
func (AliveMsg) Kind() string { return KindAlive }

// KindID implements node.KindIDer.
func (AliveMsg) KindID() obs.Kind { return kindAliveID }

// NewAliveMsg builds a heartbeat with a defensive copy of counters.
func NewAliveMsg(counters []uint64) AliveMsg {
	c := make([]uint64, len(counters))
	copy(c, counters)
	return AliveMsg{Counters: c}
}

const timerHeartbeat = "source/hb"

func monitorKey(q node.ID) string { return fmt.Sprintf("source/mon/%d", q) }

// Config parameterizes the detector. Zero values select defaults.
type Config struct {
	// Eta is the heartbeat period (default 10ms).
	Eta time.Duration
	// BaseTimeout is the initial suspicion timeout (default 3·Eta).
	BaseTimeout time.Duration
	// Increment is added to a process's timeout on each suspicion
	// (default Eta).
	Increment time.Duration
}

func (c *Config) fill() {
	if c.Eta <= 0 {
		c.Eta = 10 * time.Millisecond
	}
	if c.BaseTimeout <= 0 {
		c.BaseTimeout = 3 * c.Eta
	}
	if c.Increment <= 0 {
		c.Increment = c.Eta
	}
}

// Detector is the gossiped-counter Omega automaton for one process.
type Detector struct {
	cfg  Config
	env  node.Env
	me   node.ID
	n    int
	hist *detector.History

	counter []uint64
	timeout []time.Duration
	leader  node.ID
}

var _ detector.Omega = (*Detector)(nil)

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, hist: detector.NewHistory(), leader: node.None}
}

// Leader implements detector.Omega.
func (d *Detector) Leader() node.ID { return d.leader }

// History implements detector.Omega.
func (d *Detector) History() *detector.History { return d.hist }

// Counter returns the current accusation count for q (test hook).
func (d *Detector) Counter(q node.ID) uint64 { return d.counter[q] }

// Start implements node.Automaton.
func (d *Detector) Start(env node.Env) {
	d.env = env
	d.me = env.ID()
	d.n = env.N()
	d.counter = make([]uint64, d.n)
	d.timeout = make([]time.Duration, d.n)
	for q := 0; q < d.n; q++ {
		d.timeout[q] = d.cfg.BaseTimeout
		if node.ID(q) != d.me {
			env.SetTimer(monitorKey(node.ID(q)), d.timeout[q])
		}
	}
	d.elect()
	env.SetTimer(timerHeartbeat, d.cfg.Eta)
	env.Broadcast(NewAliveMsg(d.counter))
}

// Deliver implements node.Automaton.
func (d *Detector) Deliver(from node.ID, m node.Message) {
	alive, ok := m.(AliveMsg)
	if !ok || len(alive.Counters) != d.n {
		return
	}
	for q, c := range alive.Counters {
		if c > d.counter[q] {
			d.counter[q] = c
		}
	}
	d.env.SetTimer(monitorKey(from), d.timeout[from])
	d.elect()
}

// Tick implements node.Automaton.
func (d *Detector) Tick(key string) {
	if key == timerHeartbeat {
		d.env.SetTimer(timerHeartbeat, d.cfg.Eta)
		d.env.Broadcast(NewAliveMsg(d.counter))
		return
	}
	var q int
	if _, err := fmt.Sscanf(key, "source/mon/%d", &q); err != nil {
		return
	}
	d.counter[q]++
	d.timeout[q] += d.cfg.Increment
	// Keep monitoring: with fair-lossy links the next heartbeat may be
	// lost too, and an unmonitored process's counter would freeze.
	d.env.SetTimer(monitorKey(node.ID(q)), d.timeout[q])
	d.elect()
}

// elect recomputes argmin (counter, id).
func (d *Detector) elect() {
	best := node.ID(0)
	for q := 1; q < d.n; q++ {
		if d.counter[q] < d.counter[best] {
			best = node.ID(q)
		}
	}
	if best == d.leader {
		return
	}
	d.leader = best
	d.hist.Record(d.env.Now(), best)
	d.env.Logf("leader → p%d (counter=%d)", best, d.counter[best])
}
